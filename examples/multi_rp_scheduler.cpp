// Multi-partition module scheduler — the adaptive-SoC scenario the
// paper's introduction motivates: several reconfigurable partitions
// whose modules are swapped at runtime by the RISC-V core, without
// halting the rest of the SoC.
//
// RP0 is the streaming case-study partition; two more partitions are
// planned on free fabric columns and hold "service" modules that the
// scheduler rotates with the RV-CAP controller while RP0 keeps
// processing frames — demonstrating that DPR of one partition does not
// interfere with modules in others (the isolation property DPR is for).
#include <cstdio>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "common/units.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

using namespace rvcap;

int main() {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Plan two extra partitions around the case-study one.
  const auto rp1 = fabric::plan_partition(
      soc.device(), "RP1", resources::ResourceVec{800, 1600, 0, 0}, 1,
      soc.rp0().columns());
  auto avoid = soc.rp0().columns();
  avoid.insert(avoid.end(), rp1->columns().begin(), rp1->columns().end());
  const auto rp2 = fabric::plan_partition(
      soc.device(), "RP2", resources::ResourceVec{400, 800, 10, 0}, 5,
      avoid);
  if (!rp1 || !rp2) {
    std::printf("partition planning failed\n");
    return 1;
  }
  const usize h1 = soc.add_partition(*rp1);
  const usize h2 = soc.add_partition(*rp2);
  std::printf("planned %s (%u frames, %llu-byte pbit) and %s (%u frames, "
              "%llu-byte pbit)\n",
              rp1->name().c_str(), rp1->frame_count(soc.device()),
              static_cast<unsigned long long>(rp1->pbit_bytes(soc.device())),
              rp2->name().c_str(), rp2->frame_count(soc.device()),
              static_cast<unsigned long long>(rp2->pbit_bytes(soc.device())));

  // Stage bitstreams: filters for RP0, "service" modules for RP1/RP2.
  auto stage = [&](const fabric::Partition& rp, u32 rm_id,
                   Addr addr) -> driver::ReconfigModule {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), rp, {rm_id, "svc" + std::to_string(rm_id)});
    soc.ddr().poke(addr, pbit);
    return {"", rm_id, addr, static_cast<u32>(pbit.size())};
  };
  const auto sobel = stage(soc.rp0(), accel::kRmIdSobel, 0x8800'0000);
  const driver::ReconfigModule svc[] = {stage(*rp1, 11, 0x8900'0000),
                                        stage(*rp1, 12, 0x8980'0000),
                                        stage(*rp2, 21, 0x8A00'0000),
                                        stage(*rp2, 22, 0x8A80'0000)};

  // Load the Sobel filter into RP0 once.
  if (!ok(drv.init_reconfig_process(sobel, driver::DmaMode::kInterrupt))) {
    return 1;
  }
  const accel::Image img = accel::make_test_image(512, 512, 33);
  const accel::Image golden =
      accel::apply_golden(accel::FilterKind::kSobel, img);
  soc.ddr().poke(soc::MemoryMap::kImageInBase, img.pixels);

  // Scheduler loop: rotate the service partitions while RP0 computes.
  std::printf("\n%5s %-8s %-24s %-10s %s\n", "round", "frame",
              "swap", "T_r(us)", "partition states (RP0/RP1/RP2)");
  bool all_ok = true;
  for (int round = 0; round < 4; ++round) {
    // 1. RP0 processes a frame (acceleration mode).
    all_ok &= ok(drv.run_accelerator(soc::MemoryMap::kImageInBase,
                                     512 * 512, soc::MemoryMap::kImageOutBase,
                                     512 * 512, driver::DmaMode::kInterrupt));
    std::vector<u8> out(512 * 512);
    soc.ddr().peek(soc::MemoryMap::kImageOutBase, out);
    all_ok &= (out == golden.pixels);

    // 2. Swap the next service module into RP1 or RP2.
    const auto& m = svc[round % 4];
    all_ok &=
        ok(drv.init_reconfig_process(m, driver::DmaMode::kInterrupt));
    soc.sim().run_cycles(4);

    const auto s0 = soc.config_memory().partition_state(soc.rp0_handle());
    const auto s1 = soc.config_memory().partition_state(h1);
    const auto s2 = soc.config_memory().partition_state(h2);
    std::printf("%5d %-8s rm_id %-2u -> %-12s %8.1f   rm=%u/%u/%u\n",
                round, all_ok ? "exact" : "BROKEN", m.rm_id,
                (round % 4 < 2) ? rp1->name().c_str() : rp2->name().c_str(),
                drv.last_timing().reconfig_us(), s0.rm_id,
                s1.loaded ? s1.rm_id : 0, s2.loaded ? s2.rm_id : 0);

    // RP0's Sobel module must survive every foreign reconfiguration.
    all_ok &= s0.loaded && s0.rm_id == accel::kRmIdSobel;
  }

  std::printf("\nRP0 module retained across all swaps, frames bit-exact: "
              "%s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
