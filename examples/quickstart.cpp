// Quickstart: assemble the FPGA-based RISC-V SoC, load a reconfigurable
// module through the RV-CAP controller, and print the timing the paper
// reports (T_d, T_r, throughput).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "driver/console.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

using namespace rvcap;

int main() {
  // 1. Bring up the SoC of Fig. 1: Ariane CPU context, 64-bit AXI
  //    crossbar, DDR, CLINT/PLIC, SPI/SD, the model Kintex-7 fabric,
  //    and the RV-CAP controller with one reconfigurable partition.
  soc::ArianeSoc soc((soc::SocConfig()));
  std::printf("SoC up: device %s, RP0 '%s' = %u frames, pbit %llu bytes\n",
              soc.device().name().c_str(), soc.rp0().name().c_str(),
              soc.rp0().frame_count(soc.device()),
              static_cast<unsigned long long>(
                  soc.rp0().pbit_bytes(soc.device())));

  // 2. "Synthesize" a partial bitstream for the Sobel module (the
  //    reproduction's stand-in for the Vivado flow) and stage it in
  //    DDR, as the paper does before measuring.
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  soc.ddr().poke(soc::MemoryMap::kPbitStagingBase, pbit);

  // 3. Run the Listing-1 reconfiguration flow from the RISC-V driver:
  //    decouple the RP, select the ICAP route, DMA the bitstream, wait
  //    for the completion interrupt, recouple.
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::ReconfigModule sobel{"sobel.pb", accel::kRmIdSobel,
                               soc::MemoryMap::kPbitStagingBase,
                               static_cast<u32>(pbit.size())};
  const Status st =
      drv.init_reconfig_process(sobel, driver::DmaMode::kInterrupt);
  if (!ok(st)) {
    std::printf("reconfiguration failed: %s\n",
                std::string(to_string(st)).c_str());
    return 1;
  }

  // 4. Check that the fabric actually hosts the module now.
  soc.sim().run_cycles(4);
  const auto state = soc.config_memory().partition_state(soc.rp0_handle());
  driver::uart_puts(soc.cpu(), "reconfiguration successful\n");

  const auto& t = drv.last_timing();
  std::printf("module loaded: rm_id=%u (%s active in RP0)\n", state.rm_id,
              soc.rm_slot().active_rm() == accel::kRmIdSobel ? "Sobel"
                                                             : "nothing");
  std::printf("T_d = %.1f us (paper: 18 us)\n", t.decision_us());
  std::printf("T_r = %.1f us (paper: 1651 us)\n", t.reconfig_us());
  std::printf("throughput = %.1f MB/s (paper: 398.1 MB/s max, ICAP "
              "ceiling 400)\n",
              sobel.pbit_size / t.reconfig_us());
  std::printf("console: %s", soc.uart().output().c_str());
  return 0;
}
