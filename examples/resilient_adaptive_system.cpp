// Resilient adaptive system: the extension features working together.
//
// A mission-style loop on the RISC-V SoC:
//   * the DPR manager owns three named filter modules (staged in DDR),
//     activating whichever the "mission phase" requests and skipping
//     reconfiguration when it is already loaded;
//   * every processed frame is verified bit-exact against golden
//     software;
//   * a scrubber periodically checks the partition's configuration
//     memory; injected SEUs are detected and repaired by reloading;
//   * one module is also relocated to a spare partition, demonstrating
//     bitstream retargeting.
#include <cstdio>

#include "bitstream/generator.hpp"
#include "bitstream/relocate.hpp"
#include "common/units.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/scrubber.hpp"
#include "soc/ariane_soc.hpp"

using namespace rvcap;

int main() {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(),
                         nullptr);
  driver::Scrubber scrubber(
      drv, soc.device(),
      driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000});

  // Stage all modules and register them with the manager.
  struct ModInfo {
    const char* name;
    u32 rm_id;
    Addr addr;
    u32 size;
  };
  ModInfo mods[] = {{"sobel", accel::kRmIdSobel, 0x8800'0000, 0},
                    {"median", accel::kRmIdMedian, 0x8880'0000, 0},
                    {"gaussian", accel::kRmIdGaussian, 0x8900'0000, 0}};
  for (auto& m : mods) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {m.rm_id, m.name});
    m.size = static_cast<u32>(pbit.size());
    soc.ddr().poke(m.addr, pbit);
    if (!ok(mgr.register_staged(m.name, m.rm_id, m.addr, m.size))) return 1;
  }

  const accel::Image img = accel::make_test_image(512, 512, 7);
  soc.ddr().poke(soc::MemoryMap::kImageInBase, img.pixels);

  // Mission plan: phases reuse modules, so the manager's already-active
  // shortcut should fire on repeats.
  const char* plan[] = {"sobel", "sobel", "median", "median",
                        "median", "gaussian", "sobel"};
  bool all_exact = true;
  std::printf("%5s %-10s %-12s %s\n", "phase", "module", "action",
              "frame check");
  for (usize phase = 0; phase < std::size(plan); ++phase) {
    const u64 reconfigs_before = mgr.stats().reconfigurations;
    if (!ok(mgr.activate(plan[phase]))) return 1;
    const bool swapped = mgr.stats().reconfigurations != reconfigs_before;
    if (swapped && !ok(scrubber.snapshot(soc.rp0()))) return 1;

    if (!ok(drv.run_accelerator(soc::MemoryMap::kImageInBase, 512 * 512,
                                soc::MemoryMap::kImageOutBase, 512 * 512,
                                driver::DmaMode::kInterrupt))) {
      return 1;
    }
    std::vector<u8> out(512 * 512);
    soc.ddr().peek(soc::MemoryMap::kImageOutBase, out);
    const auto golden = accel::apply_golden(
        accel::rm_id_to_kind(soc.rm_slot().active_rm()), img);
    const bool exact = out == golden.pixels;
    all_exact &= exact;
    std::printf("%5zu %-10s %-12s %s\n", phase, plan[phase],
                swapped ? "reconfigured" : "kept", exact ? "exact" : "BAD");

    // Radiation event mid-mission: phase 3 takes an SEU.
    if (phase == 3) {
      const auto addrs = soc.rp0().frame_addrs(soc.device());
      soc.config_memory().inject_upset(addrs[200], 101, 19);
      driver::ReconfigModule m{plan[phase],
                               soc.rm_slot().active_rm(),
                               mods[1].addr, mods[1].size};
      const Status st = scrubber.scrub_and_repair(soc.rp0(), m);
      std::printf("      [scrub] SEU injected -> %s (detections=%llu, "
                  "repairs=%llu)\n",
                  ok(st) ? "detected & repaired" : "FAILED",
                  static_cast<unsigned long long>(
                      scrubber.stats().detections),
                  static_cast<unsigned long long>(scrubber.stats().repairs));
      if (!ok(st)) return 1;
    }
  }

  // Relocation finale: move the Gaussian module to a spare partition.
  std::vector<fabric::Partition::ColumnRef> cols;
  for (u32 c = 37; c <= 49; ++c) cols.push_back({5, c});
  const fabric::Partition spare("RP_SPARE", cols);
  const usize h_spare = soc.add_partition(spare);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdGaussian, "gaussian"});
  std::vector<u8> moved;
  if (!ok(bitstream::relocate_bitstream(soc.device(), soc.rp0(), spare,
                                        pbit, &moved))) {
    return 1;
  }
  soc.ddr().poke(0x8A00'0000, moved);
  driver::ReconfigModule rm{"gaussian@spare", accel::kRmIdGaussian,
                            0x8A00'0000, static_cast<u32>(moved.size())};
  if (!ok(drv.init_reconfig_process(rm, driver::DmaMode::kInterrupt))) {
    return 1;
  }
  const bool spare_loaded =
      soc.config_memory().partition_state(h_spare).loaded;
  std::printf("\nrelocated Gaussian into %s: %s\n", spare.name().c_str(),
              spare_loaded ? "loaded" : "FAILED");

  std::printf("manager: %llu requests, %llu reconfigs, %llu skips; total "
              "T_r %.2f ms; frames %s\n",
              static_cast<unsigned long long>(
                  mgr.stats().activation_requests),
              static_cast<unsigned long long>(mgr.stats().reconfigurations),
              static_cast<unsigned long long>(
                  mgr.stats().already_active_hits),
              mgr.total_reconfig_us() / 1000.0,
              all_exact ? "all bit-exact" : "BROKEN");
  return (all_exact && spare_loaded) ? 0 : 1;
}
