// Vendor-controller deployment (§III-C): manage DPR with the Xilinx
// AXI_HWICAP core instead of RV-CAP, driving the full software stack —
// SD-card init over SPI, the from-scratch FAT32, init_RModules staging
// into DDR, and the Listing-2 keyhole transfer with loop unrolling.
//
// A small service partition keeps the (realistically slow) SPI transfer
// short; the printed comparison shows why the paper built RV-CAP
// instead of shipping this path.
#include <cstdio>

#include "bitstream/generator.hpp"
#include "common/units.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/spi_sd.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

using namespace rvcap;

int main() {
  soc::SocConfig cfg;
  cfg.with_hwicap = true;  // vendor controller alongside the RP plumbing
  soc::ArianeSoc soc(cfg);

  // ---- host side: put a module's bitstream on the SD card ----------
  const auto rp_small = fabric::Partition(
      "RP_SVC", {{1, 10}, {1, 11}, {1, 12}});  // 3 CLB columns
  const usize handle = soc.add_partition(rp_small);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), rp_small, {31, "service"});
  {
    storage::MemBlockIo host_io(soc.sd_card());
    if (!ok(storage::fat32_format(host_io))) return 1;
    storage::Fat32Volume host_vol(host_io);
    if (!ok(host_vol.mount())) return 1;
    if (!ok(host_vol.make_dir("BITS"))) return 1;
    if (!ok(host_vol.write_file("BITS/SERVICE.PB", pbit))) return 1;
  }
  std::printf("SD card prepared: BITS/SERVICE.PB, %zu bytes\n", pbit.size());

  // ---- target side: the full driver stack on the RISC-V CPU --------
  driver::SpiSdDriver sd(soc.cpu());
  if (!ok(sd.init_card())) {
    std::printf("SD init failed\n");
    return 1;
  }
  driver::CpuBlockIo io(sd, soc.sd_card().block_count());
  storage::Fat32Volume vol(io);
  if (!ok(vol.mount())) {
    std::printf("FAT32 mount failed\n");
    return 1;
  }

  driver::RvCapDriver loader(soc.cpu(), soc.plic());  // only for staging
  driver::ReconfigModule mods[] = {{"BITS/SERVICE.PB", 31, 0, 0}};
  const Cycles load0 = soc.sim().now();
  if (!ok(loader.init_RModules(mods, vol))) {
    std::printf("init_RModules failed\n");
    return 1;
  }
  std::printf("init_RModules: %u bytes SD->DDR at 0x%llx in %.2f ms "
              "(timed SPI path)\n",
              mods[0].pbit_size,
              static_cast<unsigned long long>(mods[0].start_address),
              cycles_to_ms(soc.sim().now() - load0));

  // ---- Listing-2 reconfiguration through the keyhole ---------------
  std::printf("\n%8s %12s %10s\n", "unroll", "T_r (ms)", "MB/s");
  for (const u32 unroll : {1u, 16u}) {
    driver::HwIcapDriver hw(soc.cpu(), unroll);
    if (!ok(hw.init_reconfig_process(mods[0]))) {
      std::printf("HWICAP reconfiguration failed\n");
      return 1;
    }
    std::printf("%8u %12.2f %10.2f\n", unroll,
                hw.last_timing().reconfig_us() / 1000.0,
                mods[0].pbit_size / hw.last_timing().reconfig_us());
  }
  const auto st = soc.config_memory().partition_state(handle);
  std::printf("\npartition %s hosts rm_id %u: %s\n", rp_small.name().c_str(),
              st.rm_id, st.loaded ? "loaded" : "NOT LOADED");

  // ---- contrast with the RV-CAP path on the same bitstream ---------
  if (!ok(loader.init_reconfig_process(mods[0],
                                       driver::DmaMode::kInterrupt))) {
    return 1;
  }
  std::printf("same transfer through RV-CAP: %.2f ms (%.1f MB/s) — the\n"
              "~48x gap is why the paper replaces the vendor keyhole\n"
              "path with a DMA-fed ICAP.\n",
              loader.last_timing().reconfig_us() / 1000.0,
              mods[0].pbit_size / loader.last_timing().reconfig_us());
  return st.loaded ? 0 : 1;
}
