// The §IV-D case study as an application: an adaptive image-processing
// pipeline that swaps Sobel / Median / Gaussian modules into one
// reconfigurable partition and streams 512x512 frames through whichever
// is loaded, verifying every output against the golden software filters.
//
// The partial bitstreams are staged in DDR up front (exactly the
// setup under the paper's Table IV measurements; see hwicap_fallback
// for the timed SD-card loading path).
#include <cstdio>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "common/units.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

using namespace rvcap;

int main() {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Stage all three modules' bitstreams (Vivado-flow stand-in).
  struct Mod {
    const char* name;
    u32 rm_id;
    Addr staging;
  };
  const Mod mods[] = {
      {"Sobel", accel::kRmIdSobel, 0x8800'0000},
      {"Median", accel::kRmIdMedian, 0x8810'0000},
      {"Gaussian", accel::kRmIdGaussian, 0x8820'0000},
  };
  for (const Mod& m : mods) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {m.rm_id, m.name});
    soc.ddr().poke(m.staging, pbit);
  }
  const u32 pbit_size =
      static_cast<u32>(soc.rp0().pbit_bytes(soc.device()));

  // Two camera frames to process with every filter.
  const accel::Image frames[] = {accel::make_test_image(512, 512, 1),
                                 accel::make_test_image(512, 512, 2)};

  std::printf("%-10s %8s %8s %8s %9s  %s\n", "module", "T_d(us)", "T_r(us)",
              "T_c(us)", "T_ex(us)", "output");
  bool all_exact = true;
  for (const Mod& m : mods) {
    // Swap the module in (Listing 1).
    driver::ReconfigModule rm{m.name, m.rm_id, m.staging, pbit_size};
    if (!ok(drv.init_reconfig_process(rm, driver::DmaMode::kInterrupt))) {
      std::printf("%s: reconfiguration failed\n", m.name);
      return 1;
    }
    const double td = drv.last_timing().decision_us();
    const double tr = drv.last_timing().reconfig_us();

    // Process both frames back to back — no reconfiguration between
    // frames of the same filter (T_r amortizes across the workload).
    double tc_first = 0;
    for (int f = 0; f < 2; ++f) {
      soc.ddr().poke(soc::MemoryMap::kImageInBase, frames[f].pixels);
      const Cycles c0 = soc.sim().now();
      if (!ok(drv.run_accelerator(soc::MemoryMap::kImageInBase, 512 * 512,
                                  soc::MemoryMap::kImageOutBase, 512 * 512,
                                  driver::DmaMode::kInterrupt))) {
        std::printf("%s: acceleration failed\n", m.name);
        return 1;
      }
      if (f == 0) tc_first = cycles_to_us(soc.sim().now() - c0);

      std::vector<u8> out(512 * 512);
      soc.ddr().peek(soc::MemoryMap::kImageOutBase, out);
      const accel::Image golden =
          accel::apply_golden(accel::rm_id_to_kind(m.rm_id), frames[f]);
      all_exact &= (out == golden.pixels);
    }
    std::printf("%-10s %8.1f %8.1f %8.1f %9.1f  %s\n", m.name, td, tr,
                tc_first, td + tr + tc_first,
                all_exact ? "bit-exact vs golden" : "MISMATCH");
  }

  std::printf("\n%llu reconfigurations, %llu frames processed, outputs %s\n",
              static_cast<unsigned long long>(soc.rm_slot().activations()),
              static_cast<unsigned long long>(6),
              all_exact ? "all verified" : "BROKEN");
  return all_exact ? 0 : 1;
}
