// Software-defined-radio receiver chain — the second application
// domain the paper's §II names for adaptive SoCs.
//
// One reconfigurable partition alternates between two module classes at
// runtime:
//   * a FIR channel filter whose coefficients pick the band (low-pass
//     for the narrowband channel, high-pass for the wideband one);
//   * the stream cipher, decrypting a protected burst.
// All datapaths run through the RV-CAP acceleration mode, with every
// output checked against the software reference models.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "accel/fir_filter.hpp"
#include "accel/stream_cipher.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

using namespace rvcap;

namespace {

std::vector<i16> synthesize_rf(usize n, u64 seed) {
  // Two tones (0.02 and 0.40 cycles/sample) + noise: the "antenna".
  SplitMix64 rng(seed);
  std::vector<i16> s(n);
  for (usize i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double v = 9000.0 * std::sin(2 * 3.14159265 * 0.02 * t) +
               6000.0 * std::sin(2 * 3.14159265 * 0.40 * t);
    v += static_cast<double>(rng.next_below(512)) - 256.0;
    s[i] = static_cast<i16>(std::clamp(v, -32768.0, 32767.0));
  }
  return s;
}

double band_energy(std::span<const i16> v, bool high) {
  // Crude two-bin detector: difference energy ~ high band, sum ~ low.
  double e = 0;
  for (usize i = accel::kFirTaps + 1; i < v.size(); ++i) {
    const double d = high ? (v[i] - v[i - 1]) : (v[i] + v[i - 1]);
    e += d * d;
  }
  return e / static_cast<double>(v.size());
}

}  // namespace

int main() {
  soc::ArianeSoc soc((soc::SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Stage the two module bitstreams.
  auto stage = [&](u32 rm_id, const char* name, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    return driver::ReconfigModule{name, rm_id, addr,
                                  static_cast<u32>(pbit.size())};
  };
  const auto fir_mod = stage(accel::kRmIdFir, "fir", 0x8800'0000);
  const auto ciph_mod = stage(accel::kRmIdCipher, "cipher", 0x8880'0000);

  const usize n = 8192;
  const auto rf = synthesize_rf(n, 42);
  std::vector<u8> rf_bytes(n * 2);
  std::memcpy(rf_bytes.data(), rf.data(), rf_bytes.size());

  auto run_fir = [&](std::span<const i16, accel::kFirTaps> coeffs,
                     std::vector<i16>* out) -> bool {
    for (u32 r = 0; r < accel::kFirTaps / 2; ++r) {
      drv.rm_reg_write(r,
                       (u32{static_cast<u16>(coeffs[2 * r + 1])} << 16) |
                           static_cast<u16>(coeffs[2 * r]));
    }
    soc.ddr().poke(soc::MemoryMap::kImageInBase, rf_bytes);
    if (!ok(drv.run_accelerator(soc::MemoryMap::kImageInBase,
                                static_cast<u32>(rf_bytes.size()),
                                soc::MemoryMap::kImageOutBase,
                                static_cast<u32>(rf_bytes.size()),
                                driver::DmaMode::kInterrupt))) {
      return false;
    }
    std::vector<u8> raw(rf_bytes.size());
    soc.ddr().peek(soc::MemoryMap::kImageOutBase, raw);
    out->assign(n, 0);
    std::memcpy(out->data(), raw.data(), raw.size());
    const auto golden = accel::fir_reference(
        rf, std::span<const i16>(coeffs.data(), accel::kFirTaps));
    return *out == golden;
  };

  std::printf("RF input:  low-band energy %8.0f | high-band energy %8.0f\n",
              band_energy(rf, false), band_energy(rf, true));

  // --- channel A: narrowband (low-pass FIR) -----------------------------
  if (!ok(drv.init_reconfig_process(fir_mod, driver::DmaMode::kInterrupt)))
    return 1;
  soc.sim().run_cycles(4);
  const auto lp = accel::fir_lowpass_coeffs();
  std::vector<i16> ch_a;
  if (!run_fir(std::span<const i16, accel::kFirTaps>(lp), &ch_a)) return 1;
  std::printf("channel A: low-band energy %8.0f | high-band energy %8.0f  "
              "(low-pass FIR, output matches reference)\n",
              band_energy(ch_a, false), band_energy(ch_a, true));

  // --- channel B: wideband (high-pass coefficients, same module) --------
  const auto hp = accel::fir_highpass_coeffs();
  std::vector<i16> ch_b;
  if (!run_fir(std::span<const i16, accel::kFirTaps>(hp), &ch_b)) return 1;
  std::printf("channel B: low-band energy %8.0f | high-band energy %8.0f  "
              "(high-pass FIR, output matches reference)\n",
              band_energy(ch_b, false), band_energy(ch_b, true));

  // --- protected burst: swap in the cipher via DPR -----------------------
  if (!ok(drv.init_reconfig_process(ciph_mod, driver::DmaMode::kInterrupt)))
    return 1;
  soc.sim().run_cycles(4);
  drv.rm_reg_write(0, 0xC0FFEE11);
  drv.rm_reg_write(1, 0x00000042);
  soc.ddr().poke(soc::MemoryMap::kImageInBase, rf_bytes);
  if (!ok(drv.run_accelerator(soc::MemoryMap::kImageInBase,
                              static_cast<u32>(rf_bytes.size()),
                              soc::MemoryMap::kImageOutBase,
                              static_cast<u32>(rf_bytes.size()),
                              driver::DmaMode::kInterrupt))) {
    return 1;
  }
  std::vector<u8> burst(rf_bytes.size());
  soc.ddr().peek(soc::MemoryMap::kImageOutBase, burst);
  bool cipher_ok = true;
  const u64 key = 0x00000042C0FFEE11ULL;
  for (usize beat = 0; beat < burst.size() / 8; ++beat) {
    u64 p = 0, c = 0;
    std::memcpy(&p, rf_bytes.data() + beat * 8, 8);
    std::memcpy(&c, burst.data() + beat * 8, 8);
    cipher_ok &= (c == (p ^ accel::StreamCipher::keystream(key, beat)));
  }
  std::printf("burst:     encrypted through the cipher RM, keystream "
              "verified: %s\n", cipher_ok ? "yes" : "NO");

  std::printf("\n%llu reconfigurations; T_r last = %.1f us — one partition, "
              "three radio personalities.\n",
              static_cast<unsigned long long>(soc.rm_slot().activations()),
              drv.last_timing().reconfig_us());
  return cipher_ok ? 0 : 1;
}
