file(REMOVE_RECURSE
  "CMakeFiles/bench_safety.dir/bench_safety.cpp.o"
  "CMakeFiles/bench_safety.dir/bench_safety.cpp.o.d"
  "bench_safety"
  "bench_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
