file(REMOVE_RECURSE
  "CMakeFiles/rvcap-pbit.dir/rvcap_pbit.cpp.o"
  "CMakeFiles/rvcap-pbit.dir/rvcap_pbit.cpp.o.d"
  "rvcap-pbit"
  "rvcap-pbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap-pbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
