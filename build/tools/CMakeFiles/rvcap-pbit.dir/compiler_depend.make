# Empty compiler generated dependencies file for rvcap-pbit.
# This may be replaced when dependencies are built.
