file(REMOVE_RECURSE
  "librvcap_accel.a"
)
