file(REMOVE_RECURSE
  "CMakeFiles/rvcap_accel.dir/filters.cpp.o"
  "CMakeFiles/rvcap_accel.dir/filters.cpp.o.d"
  "CMakeFiles/rvcap_accel.dir/fir_filter.cpp.o"
  "CMakeFiles/rvcap_accel.dir/fir_filter.cpp.o.d"
  "CMakeFiles/rvcap_accel.dir/rm_slot.cpp.o"
  "CMakeFiles/rvcap_accel.dir/rm_slot.cpp.o.d"
  "CMakeFiles/rvcap_accel.dir/stream_cipher.cpp.o"
  "CMakeFiles/rvcap_accel.dir/stream_cipher.cpp.o.d"
  "CMakeFiles/rvcap_accel.dir/stream_filter.cpp.o"
  "CMakeFiles/rvcap_accel.dir/stream_filter.cpp.o.d"
  "librvcap_accel.a"
  "librvcap_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
