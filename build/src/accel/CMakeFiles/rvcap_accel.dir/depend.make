# Empty dependencies file for rvcap_accel.
# This may be replaced when dependencies are built.
