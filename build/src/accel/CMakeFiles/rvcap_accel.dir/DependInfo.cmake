
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/filters.cpp" "src/accel/CMakeFiles/rvcap_accel.dir/filters.cpp.o" "gcc" "src/accel/CMakeFiles/rvcap_accel.dir/filters.cpp.o.d"
  "/root/repo/src/accel/fir_filter.cpp" "src/accel/CMakeFiles/rvcap_accel.dir/fir_filter.cpp.o" "gcc" "src/accel/CMakeFiles/rvcap_accel.dir/fir_filter.cpp.o.d"
  "/root/repo/src/accel/rm_slot.cpp" "src/accel/CMakeFiles/rvcap_accel.dir/rm_slot.cpp.o" "gcc" "src/accel/CMakeFiles/rvcap_accel.dir/rm_slot.cpp.o.d"
  "/root/repo/src/accel/stream_cipher.cpp" "src/accel/CMakeFiles/rvcap_accel.dir/stream_cipher.cpp.o" "gcc" "src/accel/CMakeFiles/rvcap_accel.dir/stream_cipher.cpp.o.d"
  "/root/repo/src/accel/stream_filter.cpp" "src/accel/CMakeFiles/rvcap_accel.dir/stream_filter.cpp.o" "gcc" "src/accel/CMakeFiles/rvcap_accel.dir/stream_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/axi/CMakeFiles/rvcap_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rvcap_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/rvcap/CMakeFiles/rvcap_rvcap.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/rvcap_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/icap/CMakeFiles/rvcap_icap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/rvcap_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
