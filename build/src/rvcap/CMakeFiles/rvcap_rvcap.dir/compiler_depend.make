# Empty compiler generated dependencies file for rvcap_rvcap.
# This may be replaced when dependencies are built.
