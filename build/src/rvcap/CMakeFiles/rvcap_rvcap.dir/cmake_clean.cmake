file(REMOVE_RECURSE
  "CMakeFiles/rvcap_rvcap.dir/axis2icap.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/axis2icap.cpp.o.d"
  "CMakeFiles/rvcap_rvcap.dir/controller.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/controller.cpp.o.d"
  "CMakeFiles/rvcap_rvcap.dir/decompressor.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/decompressor.cpp.o.d"
  "CMakeFiles/rvcap_rvcap.dir/dma.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/dma.cpp.o.d"
  "CMakeFiles/rvcap_rvcap.dir/icap2axis.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/icap2axis.cpp.o.d"
  "CMakeFiles/rvcap_rvcap.dir/rp_control.cpp.o"
  "CMakeFiles/rvcap_rvcap.dir/rp_control.cpp.o.d"
  "librvcap_rvcap.a"
  "librvcap_rvcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_rvcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
