
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rvcap/axis2icap.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/axis2icap.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/axis2icap.cpp.o.d"
  "/root/repo/src/rvcap/controller.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/controller.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/controller.cpp.o.d"
  "/root/repo/src/rvcap/decompressor.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/decompressor.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/decompressor.cpp.o.d"
  "/root/repo/src/rvcap/dma.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/dma.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/dma.cpp.o.d"
  "/root/repo/src/rvcap/icap2axis.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/icap2axis.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/icap2axis.cpp.o.d"
  "/root/repo/src/rvcap/rp_control.cpp" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/rp_control.cpp.o" "gcc" "src/rvcap/CMakeFiles/rvcap_rvcap.dir/rp_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/axi/CMakeFiles/rvcap_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/rvcap_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/icap/CMakeFiles/rvcap_icap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/rvcap_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rvcap_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
