file(REMOVE_RECURSE
  "librvcap_rvcap.a"
)
