file(REMOVE_RECURSE
  "librvcap_sim.a"
)
