# Empty compiler generated dependencies file for rvcap_sim.
# This may be replaced when dependencies are built.
