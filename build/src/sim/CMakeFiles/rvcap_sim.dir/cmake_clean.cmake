file(REMOVE_RECURSE
  "CMakeFiles/rvcap_sim.dir/simulator.cpp.o"
  "CMakeFiles/rvcap_sim.dir/simulator.cpp.o.d"
  "librvcap_sim.a"
  "librvcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
