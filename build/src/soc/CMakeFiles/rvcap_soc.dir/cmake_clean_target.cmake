file(REMOVE_RECURSE
  "librvcap_soc.a"
)
