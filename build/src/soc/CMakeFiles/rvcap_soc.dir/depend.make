# Empty dependencies file for rvcap_soc.
# This may be replaced when dependencies are built.
