file(REMOVE_RECURSE
  "CMakeFiles/rvcap_soc.dir/ariane_soc.cpp.o"
  "CMakeFiles/rvcap_soc.dir/ariane_soc.cpp.o.d"
  "librvcap_soc.a"
  "librvcap_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
