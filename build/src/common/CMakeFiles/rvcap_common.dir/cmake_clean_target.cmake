file(REMOVE_RECURSE
  "librvcap_common.a"
)
