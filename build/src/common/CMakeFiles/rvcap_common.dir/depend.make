# Empty dependencies file for rvcap_common.
# This may be replaced when dependencies are built.
