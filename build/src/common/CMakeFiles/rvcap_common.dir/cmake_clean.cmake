file(REMOVE_RECURSE
  "CMakeFiles/rvcap_common.dir/hexdump.cpp.o"
  "CMakeFiles/rvcap_common.dir/hexdump.cpp.o.d"
  "CMakeFiles/rvcap_common.dir/log.cpp.o"
  "CMakeFiles/rvcap_common.dir/log.cpp.o.d"
  "librvcap_common.a"
  "librvcap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
