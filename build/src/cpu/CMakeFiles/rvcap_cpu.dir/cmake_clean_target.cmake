file(REMOVE_RECURSE
  "librvcap_cpu.a"
)
