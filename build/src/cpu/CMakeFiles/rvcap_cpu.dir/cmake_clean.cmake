file(REMOVE_RECURSE
  "CMakeFiles/rvcap_cpu.dir/cpu.cpp.o"
  "CMakeFiles/rvcap_cpu.dir/cpu.cpp.o.d"
  "librvcap_cpu.a"
  "librvcap_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
