# Empty compiler generated dependencies file for rvcap_cpu.
# This may be replaced when dependencies are built.
