file(REMOVE_RECURSE
  "CMakeFiles/rvcap_hwicap.dir/hwicap.cpp.o"
  "CMakeFiles/rvcap_hwicap.dir/hwicap.cpp.o.d"
  "librvcap_hwicap.a"
  "librvcap_hwicap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_hwicap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
