file(REMOVE_RECURSE
  "librvcap_hwicap.a"
)
