# Empty compiler generated dependencies file for rvcap_hwicap.
# This may be replaced when dependencies are built.
