file(REMOVE_RECURSE
  "librvcap_irq.a"
)
