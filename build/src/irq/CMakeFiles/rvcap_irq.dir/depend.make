# Empty dependencies file for rvcap_irq.
# This may be replaced when dependencies are built.
