file(REMOVE_RECURSE
  "CMakeFiles/rvcap_irq.dir/clint.cpp.o"
  "CMakeFiles/rvcap_irq.dir/clint.cpp.o.d"
  "CMakeFiles/rvcap_irq.dir/plic.cpp.o"
  "CMakeFiles/rvcap_irq.dir/plic.cpp.o.d"
  "librvcap_irq.a"
  "librvcap_irq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_irq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
