# Empty compiler generated dependencies file for rvcap_soa.
# This may be replaced when dependencies are built.
