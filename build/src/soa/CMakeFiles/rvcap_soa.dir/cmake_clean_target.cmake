file(REMOVE_RECURSE
  "librvcap_soa.a"
)
