file(REMOVE_RECURSE
  "CMakeFiles/rvcap_soa.dir/controllers.cpp.o"
  "CMakeFiles/rvcap_soa.dir/controllers.cpp.o.d"
  "librvcap_soa.a"
  "librvcap_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
