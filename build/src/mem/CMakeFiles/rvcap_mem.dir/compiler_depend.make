# Empty compiler generated dependencies file for rvcap_mem.
# This may be replaced when dependencies are built.
