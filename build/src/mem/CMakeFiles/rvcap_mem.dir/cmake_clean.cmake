file(REMOVE_RECURSE
  "CMakeFiles/rvcap_mem.dir/ddr.cpp.o"
  "CMakeFiles/rvcap_mem.dir/ddr.cpp.o.d"
  "CMakeFiles/rvcap_mem.dir/sram.cpp.o"
  "CMakeFiles/rvcap_mem.dir/sram.cpp.o.d"
  "librvcap_mem.a"
  "librvcap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
