file(REMOVE_RECURSE
  "librvcap_mem.a"
)
