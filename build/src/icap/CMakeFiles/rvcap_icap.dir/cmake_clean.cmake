file(REMOVE_RECURSE
  "CMakeFiles/rvcap_icap.dir/icap.cpp.o"
  "CMakeFiles/rvcap_icap.dir/icap.cpp.o.d"
  "librvcap_icap.a"
  "librvcap_icap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_icap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
