file(REMOVE_RECURSE
  "librvcap_icap.a"
)
