
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/icap/icap.cpp" "src/icap/CMakeFiles/rvcap_icap.dir/icap.cpp.o" "gcc" "src/icap/CMakeFiles/rvcap_icap.dir/icap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/rvcap_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rvcap_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
