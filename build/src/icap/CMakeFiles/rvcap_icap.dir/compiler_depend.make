# Empty compiler generated dependencies file for rvcap_icap.
# This may be replaced when dependencies are built.
