# Empty dependencies file for rvcap_fabric.
# This may be replaced when dependencies are built.
