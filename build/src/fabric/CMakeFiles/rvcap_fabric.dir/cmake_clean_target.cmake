file(REMOVE_RECURSE
  "librvcap_fabric.a"
)
