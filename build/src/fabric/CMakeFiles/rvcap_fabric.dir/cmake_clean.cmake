file(REMOVE_RECURSE
  "CMakeFiles/rvcap_fabric.dir/config_memory.cpp.o"
  "CMakeFiles/rvcap_fabric.dir/config_memory.cpp.o.d"
  "CMakeFiles/rvcap_fabric.dir/floorplan.cpp.o"
  "CMakeFiles/rvcap_fabric.dir/floorplan.cpp.o.d"
  "CMakeFiles/rvcap_fabric.dir/geometry.cpp.o"
  "CMakeFiles/rvcap_fabric.dir/geometry.cpp.o.d"
  "librvcap_fabric.a"
  "librvcap_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
