
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/fat32.cpp" "src/storage/CMakeFiles/rvcap_storage.dir/fat32.cpp.o" "gcc" "src/storage/CMakeFiles/rvcap_storage.dir/fat32.cpp.o.d"
  "/root/repo/src/storage/sd_card.cpp" "src/storage/CMakeFiles/rvcap_storage.dir/sd_card.cpp.o" "gcc" "src/storage/CMakeFiles/rvcap_storage.dir/sd_card.cpp.o.d"
  "/root/repo/src/storage/spi.cpp" "src/storage/CMakeFiles/rvcap_storage.dir/spi.cpp.o" "gcc" "src/storage/CMakeFiles/rvcap_storage.dir/spi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/axi/CMakeFiles/rvcap_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
