# Empty dependencies file for rvcap_storage.
# This may be replaced when dependencies are built.
