file(REMOVE_RECURSE
  "CMakeFiles/rvcap_storage.dir/fat32.cpp.o"
  "CMakeFiles/rvcap_storage.dir/fat32.cpp.o.d"
  "CMakeFiles/rvcap_storage.dir/sd_card.cpp.o"
  "CMakeFiles/rvcap_storage.dir/sd_card.cpp.o.d"
  "CMakeFiles/rvcap_storage.dir/spi.cpp.o"
  "CMakeFiles/rvcap_storage.dir/spi.cpp.o.d"
  "librvcap_storage.a"
  "librvcap_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
