file(REMOVE_RECURSE
  "librvcap_storage.a"
)
