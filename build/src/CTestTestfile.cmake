# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("axi")
subdirs("mem")
subdirs("irq")
subdirs("storage")
subdirs("fabric")
subdirs("bitstream")
subdirs("icap")
subdirs("cpu")
subdirs("rvcap")
subdirs("hwicap")
subdirs("accel")
subdirs("resources")
subdirs("soa")
subdirs("driver")
subdirs("soc")
