file(REMOVE_RECURSE
  "librvcap_bitstream.a"
)
