
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/compress.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/compress.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/compress.cpp.o.d"
  "/root/repo/src/bitstream/generator.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/generator.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/generator.cpp.o.d"
  "/root/repo/src/bitstream/parser.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/parser.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/parser.cpp.o.d"
  "/root/repo/src/bitstream/readback.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/readback.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/readback.cpp.o.d"
  "/root/repo/src/bitstream/relocate.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/relocate.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/relocate.cpp.o.d"
  "/root/repo/src/bitstream/writer.cpp" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/writer.cpp.o" "gcc" "src/bitstream/CMakeFiles/rvcap_bitstream.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/rvcap_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
