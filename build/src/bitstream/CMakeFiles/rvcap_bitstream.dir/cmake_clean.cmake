file(REMOVE_RECURSE
  "CMakeFiles/rvcap_bitstream.dir/compress.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/compress.cpp.o.d"
  "CMakeFiles/rvcap_bitstream.dir/generator.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/generator.cpp.o.d"
  "CMakeFiles/rvcap_bitstream.dir/parser.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/parser.cpp.o.d"
  "CMakeFiles/rvcap_bitstream.dir/readback.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/readback.cpp.o.d"
  "CMakeFiles/rvcap_bitstream.dir/relocate.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/relocate.cpp.o.d"
  "CMakeFiles/rvcap_bitstream.dir/writer.cpp.o"
  "CMakeFiles/rvcap_bitstream.dir/writer.cpp.o.d"
  "librvcap_bitstream.a"
  "librvcap_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
