# Empty compiler generated dependencies file for rvcap_bitstream.
# This may be replaced when dependencies are built.
