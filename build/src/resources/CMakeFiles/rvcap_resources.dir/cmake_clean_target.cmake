file(REMOVE_RECURSE
  "librvcap_resources.a"
)
