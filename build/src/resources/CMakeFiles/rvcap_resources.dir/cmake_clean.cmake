file(REMOVE_RECURSE
  "CMakeFiles/rvcap_resources.dir/database.cpp.o"
  "CMakeFiles/rvcap_resources.dir/database.cpp.o.d"
  "librvcap_resources.a"
  "librvcap_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
