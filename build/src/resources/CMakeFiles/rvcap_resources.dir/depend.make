# Empty dependencies file for rvcap_resources.
# This may be replaced when dependencies are built.
