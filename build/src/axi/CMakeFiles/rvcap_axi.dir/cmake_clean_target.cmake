file(REMOVE_RECURSE
  "librvcap_axi.a"
)
