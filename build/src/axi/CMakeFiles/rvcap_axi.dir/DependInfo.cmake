
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/crossbar.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/crossbar.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/crossbar.cpp.o.d"
  "/root/repo/src/axi/isolator.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/isolator.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/isolator.cpp.o.d"
  "/root/repo/src/axi/lite_bridge.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/lite_bridge.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/lite_bridge.cpp.o.d"
  "/root/repo/src/axi/lite_bus.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/lite_bus.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/lite_bus.cpp.o.d"
  "/root/repo/src/axi/lite_slave.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/lite_slave.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/lite_slave.cpp.o.d"
  "/root/repo/src/axi/stream_switch.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/stream_switch.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/stream_switch.cpp.o.d"
  "/root/repo/src/axi/width_converter.cpp" "src/axi/CMakeFiles/rvcap_axi.dir/width_converter.cpp.o" "gcc" "src/axi/CMakeFiles/rvcap_axi.dir/width_converter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
