# Empty dependencies file for rvcap_axi.
# This may be replaced when dependencies are built.
