file(REMOVE_RECURSE
  "CMakeFiles/rvcap_axi.dir/crossbar.cpp.o"
  "CMakeFiles/rvcap_axi.dir/crossbar.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/isolator.cpp.o"
  "CMakeFiles/rvcap_axi.dir/isolator.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/lite_bridge.cpp.o"
  "CMakeFiles/rvcap_axi.dir/lite_bridge.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/lite_bus.cpp.o"
  "CMakeFiles/rvcap_axi.dir/lite_bus.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/lite_slave.cpp.o"
  "CMakeFiles/rvcap_axi.dir/lite_slave.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/stream_switch.cpp.o"
  "CMakeFiles/rvcap_axi.dir/stream_switch.cpp.o.d"
  "CMakeFiles/rvcap_axi.dir/width_converter.cpp.o"
  "CMakeFiles/rvcap_axi.dir/width_converter.cpp.o.d"
  "librvcap_axi.a"
  "librvcap_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
