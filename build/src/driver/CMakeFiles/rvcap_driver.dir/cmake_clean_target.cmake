file(REMOVE_RECURSE
  "librvcap_driver.a"
)
