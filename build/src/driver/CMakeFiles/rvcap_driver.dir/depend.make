# Empty dependencies file for rvcap_driver.
# This may be replaced when dependencies are built.
