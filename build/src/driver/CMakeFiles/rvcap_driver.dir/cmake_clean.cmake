file(REMOVE_RECURSE
  "CMakeFiles/rvcap_driver.dir/boot_table.cpp.o"
  "CMakeFiles/rvcap_driver.dir/boot_table.cpp.o.d"
  "CMakeFiles/rvcap_driver.dir/dpr_manager.cpp.o"
  "CMakeFiles/rvcap_driver.dir/dpr_manager.cpp.o.d"
  "CMakeFiles/rvcap_driver.dir/hwicap_driver.cpp.o"
  "CMakeFiles/rvcap_driver.dir/hwicap_driver.cpp.o.d"
  "CMakeFiles/rvcap_driver.dir/rvcap_driver.cpp.o"
  "CMakeFiles/rvcap_driver.dir/rvcap_driver.cpp.o.d"
  "CMakeFiles/rvcap_driver.dir/scrubber.cpp.o"
  "CMakeFiles/rvcap_driver.dir/scrubber.cpp.o.d"
  "CMakeFiles/rvcap_driver.dir/spi_sd.cpp.o"
  "CMakeFiles/rvcap_driver.dir/spi_sd.cpp.o.d"
  "librvcap_driver.a"
  "librvcap_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvcap_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
