file(REMOVE_RECURSE
  "CMakeFiles/resilient_adaptive_system.dir/resilient_adaptive_system.cpp.o"
  "CMakeFiles/resilient_adaptive_system.dir/resilient_adaptive_system.cpp.o.d"
  "resilient_adaptive_system"
  "resilient_adaptive_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_adaptive_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
