# Empty compiler generated dependencies file for resilient_adaptive_system.
# This may be replaced when dependencies are built.
