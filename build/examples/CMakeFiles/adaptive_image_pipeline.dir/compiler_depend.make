# Empty compiler generated dependencies file for adaptive_image_pipeline.
# This may be replaced when dependencies are built.
