file(REMOVE_RECURSE
  "CMakeFiles/adaptive_image_pipeline.dir/adaptive_image_pipeline.cpp.o"
  "CMakeFiles/adaptive_image_pipeline.dir/adaptive_image_pipeline.cpp.o.d"
  "adaptive_image_pipeline"
  "adaptive_image_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_image_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
