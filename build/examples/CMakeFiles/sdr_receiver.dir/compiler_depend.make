# Empty compiler generated dependencies file for sdr_receiver.
# This may be replaced when dependencies are built.
