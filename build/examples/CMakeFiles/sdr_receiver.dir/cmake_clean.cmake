file(REMOVE_RECURSE
  "CMakeFiles/sdr_receiver.dir/sdr_receiver.cpp.o"
  "CMakeFiles/sdr_receiver.dir/sdr_receiver.cpp.o.d"
  "sdr_receiver"
  "sdr_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
