# Empty dependencies file for multi_rp_scheduler.
# This may be replaced when dependencies are built.
