file(REMOVE_RECURSE
  "CMakeFiles/multi_rp_scheduler.dir/multi_rp_scheduler.cpp.o"
  "CMakeFiles/multi_rp_scheduler.dir/multi_rp_scheduler.cpp.o.d"
  "multi_rp_scheduler"
  "multi_rp_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rp_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
