# Empty compiler generated dependencies file for hwicap_fallback.
# This may be replaced when dependencies are built.
