file(REMOVE_RECURSE
  "CMakeFiles/hwicap_fallback.dir/hwicap_fallback.cpp.o"
  "CMakeFiles/hwicap_fallback.dir/hwicap_fallback.cpp.o.d"
  "hwicap_fallback"
  "hwicap_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwicap_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
