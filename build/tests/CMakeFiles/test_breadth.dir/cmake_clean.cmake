file(REMOVE_RECURSE
  "CMakeFiles/test_breadth.dir/test_breadth.cpp.o"
  "CMakeFiles/test_breadth.dir/test_breadth.cpp.o.d"
  "test_breadth"
  "test_breadth.pdb"
  "test_breadth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_breadth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
