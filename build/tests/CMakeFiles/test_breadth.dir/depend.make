# Empty dependencies file for test_breadth.
# This may be replaced when dependencies are built.
