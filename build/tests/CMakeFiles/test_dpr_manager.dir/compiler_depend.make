# Empty compiler generated dependencies file for test_dpr_manager.
# This may be replaced when dependencies are built.
