file(REMOVE_RECURSE
  "CMakeFiles/test_dpr_manager.dir/test_dpr_manager.cpp.o"
  "CMakeFiles/test_dpr_manager.dir/test_dpr_manager.cpp.o.d"
  "test_dpr_manager"
  "test_dpr_manager.pdb"
  "test_dpr_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpr_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
