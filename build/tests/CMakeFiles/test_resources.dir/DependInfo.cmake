
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resources.cpp" "tests/CMakeFiles/test_resources.dir/test_resources.cpp.o" "gcc" "tests/CMakeFiles/test_resources.dir/test_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/rvcap_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/rvcap_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/rvcap/CMakeFiles/rvcap_rvcap.dir/DependInfo.cmake"
  "/root/repo/build/src/hwicap/CMakeFiles/rvcap_hwicap.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/rvcap_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/rvcap_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/soa/CMakeFiles/rvcap_soa.dir/DependInfo.cmake"
  "/root/repo/build/src/icap/CMakeFiles/rvcap_icap.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/rvcap_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rvcap_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rvcap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rvcap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/rvcap_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rvcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/rvcap_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rvcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rvcap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
