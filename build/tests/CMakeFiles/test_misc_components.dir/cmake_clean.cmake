file(REMOVE_RECURSE
  "CMakeFiles/test_misc_components.dir/test_misc_components.cpp.o"
  "CMakeFiles/test_misc_components.dir/test_misc_components.cpp.o.d"
  "test_misc_components"
  "test_misc_components.pdb"
  "test_misc_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
