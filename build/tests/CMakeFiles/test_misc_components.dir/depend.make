# Empty dependencies file for test_misc_components.
# This may be replaced when dependencies are built.
