# Empty dependencies file for test_combos.
# This may be replaced when dependencies are built.
