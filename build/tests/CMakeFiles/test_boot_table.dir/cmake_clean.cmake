file(REMOVE_RECURSE
  "CMakeFiles/test_boot_table.dir/test_boot_table.cpp.o"
  "CMakeFiles/test_boot_table.dir/test_boot_table.cpp.o.d"
  "test_boot_table"
  "test_boot_table.pdb"
  "test_boot_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boot_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
