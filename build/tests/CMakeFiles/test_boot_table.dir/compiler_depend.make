# Empty compiler generated dependencies file for test_boot_table.
# This may be replaced when dependencies are built.
