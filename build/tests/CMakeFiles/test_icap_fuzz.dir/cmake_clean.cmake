file(REMOVE_RECURSE
  "CMakeFiles/test_icap_fuzz.dir/test_icap_fuzz.cpp.o"
  "CMakeFiles/test_icap_fuzz.dir/test_icap_fuzz.cpp.o.d"
  "test_icap_fuzz"
  "test_icap_fuzz.pdb"
  "test_icap_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icap_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
