# Empty dependencies file for test_icap_fuzz.
# This may be replaced when dependencies are built.
