file(REMOVE_RECURSE
  "CMakeFiles/test_rvcap.dir/test_rvcap.cpp.o"
  "CMakeFiles/test_rvcap.dir/test_rvcap.cpp.o.d"
  "test_rvcap"
  "test_rvcap.pdb"
  "test_rvcap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
