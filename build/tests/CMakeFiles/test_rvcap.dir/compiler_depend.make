# Empty compiler generated dependencies file for test_rvcap.
# This may be replaced when dependencies are built.
