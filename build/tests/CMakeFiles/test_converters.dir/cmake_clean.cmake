file(REMOVE_RECURSE
  "CMakeFiles/test_converters.dir/test_converters.cpp.o"
  "CMakeFiles/test_converters.dir/test_converters.cpp.o.d"
  "test_converters"
  "test_converters.pdb"
  "test_converters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
