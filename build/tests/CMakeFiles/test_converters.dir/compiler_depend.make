# Empty compiler generated dependencies file for test_converters.
# This may be replaced when dependencies are built.
