#include <gtest/gtest.h>

#include "axi/isolator.hpp"
#include "axi/stream_switch.hpp"
#include "sim/simulator.hpp"

namespace rvcap {
namespace {

using axi::AxisBeat;
using axi::AxisIsolator;
using axi::AxisSwitch;

struct SwitchFixture : ::testing::Test {
  SwitchFixture() : sw("axis_switch") { s.add(&sw); }
  sim::Simulator s;
  AxisSwitch sw;

  std::vector<u64> drain(axi::AxisFifo& f) {
    std::vector<u64> out;
    while (f.can_pop()) out.push_back(f.pop()->data);
    return out;
  }
};

TEST_F(SwitchFixture, ReconfigModeRoutesDmaToIcap) {
  sw.set_select_icap(true);
  sw.from_dma().push(AxisBeat{0x11});
  sw.from_dma().push(AxisBeat{0x22});
  s.run_cycles(4);
  EXPECT_EQ(drain(sw.to_icap()), (std::vector<u64>{0x11, 0x22}));
  EXPECT_TRUE(sw.to_rm().empty());
}

TEST_F(SwitchFixture, AccelModeRoutesDmaToRm) {
  sw.set_select_icap(false);
  sw.from_dma().push(AxisBeat{0x33});
  s.run_cycles(3);
  EXPECT_EQ(drain(sw.to_rm()), (std::vector<u64>{0x33}));
  EXPECT_TRUE(sw.to_icap().empty());
}

TEST_F(SwitchFixture, AccelModeReturnsRmOutputToDma) {
  sw.set_select_icap(false);
  sw.from_rm().push(AxisBeat{0x44, 0xFF, true});
  s.run_cycles(3);
  ASSERT_TRUE(sw.to_dma().can_pop());
  const AxisBeat b = *sw.to_dma().pop();
  EXPECT_EQ(b.data, 0x44u);
  EXPECT_TRUE(b.last);
}

TEST_F(SwitchFixture, ReconfigModeParksRmOutput) {
  sw.set_select_icap(true);
  sw.from_rm().push(AxisBeat{0x55});
  s.run_cycles(5);
  EXPECT_TRUE(sw.to_dma().empty());
}

TEST_F(SwitchFixture, OneBeatPerCycleThroughput) {
  sw.set_select_icap(true);
  // Large back-to-back sequence through a 4-deep switch: feed as space
  // frees up, count cycles.
  u64 fed = 0, got = 0;
  const u64 total = 100;
  const Cycles t0 = s.now();
  while (got < total) {
    if (fed < total && sw.from_dma().can_push()) {
      sw.from_dma().push(AxisBeat{fed});
      ++fed;
    }
    s.step();
    while (sw.to_icap().can_pop()) {
      EXPECT_EQ(sw.to_icap().pop()->data, got);
      ++got;
    }
  }
  const Cycles dt = s.now() - t0;
  EXPECT_GE(dt, total);          // at most 1 beat/cycle
  EXPECT_LE(dt, total + 10);     // and no long stalls
}

TEST_F(SwitchFixture, ModeChangeMidstreamRedirectsSubsequentBeats) {
  sw.set_select_icap(true);
  sw.from_dma().push(AxisBeat{1});
  s.run_cycles(2);
  sw.set_select_icap(false);
  sw.from_dma().push(AxisBeat{2});
  s.run_cycles(2);
  EXPECT_EQ(drain(sw.to_icap()), (std::vector<u64>{1}));
  EXPECT_EQ(drain(sw.to_rm()), (std::vector<u64>{2}));
}

struct IsolatorFixture : ::testing::Test {
  IsolatorFixture() : iso("iso") { s.add(&iso); }
  sim::Simulator s;
  AxisIsolator iso;
};

TEST_F(IsolatorFixture, CoupledPassesBothDirections) {
  iso.in_to_rp().push(AxisBeat{0xA});
  iso.in_from_rp().push(AxisBeat{0xB});
  s.run_cycles(3);
  ASSERT_TRUE(iso.out_to_rp().can_pop());
  ASSERT_TRUE(iso.out_from_rp().can_pop());
  EXPECT_EQ(iso.out_to_rp().pop()->data, 0xAu);
  EXPECT_EQ(iso.out_from_rp().pop()->data, 0xBu);
  EXPECT_EQ(iso.dropped_beats(), 0u);
}

TEST_F(IsolatorFixture, DecoupledDropsAndCounts) {
  iso.set_decoupled(true);
  iso.in_to_rp().push(AxisBeat{0xA});
  iso.in_from_rp().push(AxisBeat{0xB});
  s.run_cycles(3);
  EXPECT_TRUE(iso.out_to_rp().empty());
  EXPECT_TRUE(iso.out_from_rp().empty());
  EXPECT_EQ(iso.dropped_beats(), 2u);
}

TEST_F(IsolatorFixture, RecouplingRestoresFlow) {
  iso.set_decoupled(true);
  iso.in_to_rp().push(AxisBeat{1});
  s.run_cycles(2);
  iso.set_decoupled(false);
  iso.in_to_rp().push(AxisBeat{2});
  s.run_cycles(2);
  ASSERT_TRUE(iso.out_to_rp().can_pop());
  EXPECT_EQ(iso.out_to_rp().pop()->data, 2u);  // beat 1 was dropped
  EXPECT_EQ(iso.dropped_beats(), 1u);
}

TEST_F(IsolatorFixture, BackpressurePropagatesWhenCoupled) {
  // Feed more beats than the FIFOs hold; input must stall, not drop.
  u64 fed = 0;
  while (fed < 8) {
    if (iso.in_to_rp().push(AxisBeat{fed})) ++fed;
    s.step();
  }
  s.run_cycles(20);
  EXPECT_EQ(iso.dropped_beats(), 0u);
  usize delivered = 0;
  while (iso.out_to_rp().can_pop()) {
    EXPECT_EQ(iso.out_to_rp().pop()->data, delivered);
    ++delivered;
    s.run_cycles(2);
  }
  EXPECT_EQ(delivered, 8u);
}

}  // namespace
}  // namespace rvcap
