// Boot-table: RM discovery from on-chip boot memory, end to end with
// init_RModules.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "driver/boot_table.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/spi_sd.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

namespace rvcap {
namespace {

using driver::BootTableEntry;
using driver::kBootTableOffset;
using driver::pack_boot_table;
using driver::read_boot_table;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

TEST(BootTablePack, RoundtripThroughBootMemory) {
  ArianeSoc soc((SocConfig()));
  const BootTableEntry entries[] = {
      {accel::kRmIdSobel, false, "SOBEL.PB"},
      {accel::kRmIdMedian, true, "BITS/MED.PBZ"},
      {accel::kRmIdGaussian, false, "GAUSS.PB"},
  };
  std::vector<u8> blob;
  ASSERT_EQ(pack_boot_table(entries, &blob), Status::kOk);
  soc.boot_mem().poke(kBootTableOffset, blob);

  std::vector<BootTableEntry> back;
  ASSERT_EQ(read_boot_table(soc.cpu(), &back), Status::kOk);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].rm_id, accel::kRmIdSobel);
  EXPECT_EQ(back[0].pbit_name, "SOBEL.PB");
  EXPECT_FALSE(back[0].compressed);
  EXPECT_EQ(back[1].pbit_name, "BITS/MED.PBZ");
  EXPECT_TRUE(back[1].compressed);
}

TEST(BootTablePack, MissingTableNotFound) {
  ArianeSoc soc((SocConfig()));
  std::vector<BootTableEntry> back;
  EXPECT_EQ(read_boot_table(soc.cpu(), &back), Status::kNotFound);
}

TEST(BootTablePack, OverlongNameRejected) {
  const BootTableEntry bad[] = {{1, false, "A_VERY_LONG_FILE_NAME.BIN"}};
  std::vector<u8> blob;
  EXPECT_EQ(pack_boot_table(bad, &blob), Status::kInvalidArgument);
}

TEST(BootTablePack, CorruptHeaderRejected) {
  ArianeSoc soc((SocConfig()));
  const BootTableEntry entries[] = {{1, false, "A.PB"}};
  std::vector<u8> blob;
  ASSERT_EQ(pack_boot_table(entries, &blob), Status::kOk);
  blob[5] = 9;  // bogus version
  soc.boot_mem().poke(kBootTableOffset, blob);
  std::vector<BootTableEntry> back;
  EXPECT_EQ(read_boot_table(soc.cpu(), &back), Status::kNotSupported);
}

TEST(BootTableFlow, DiscoverStageReconfigure) {
  // Full firmware startup: read the RM table from boot memory, load
  // the named bitstream from SD via FAT32, reconfigure.
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Provisioning (host side): small partition, SD card, boot table.
  const fabric::Partition small("RPS", {{0, 2}});
  const usize handle = soc.add_partition(small);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), small, {9, "tiny"});
  storage::MemBlockIo host_io(soc.sd_card());
  ASSERT_EQ(storage::fat32_format(host_io), Status::kOk);
  {
    storage::Fat32Volume host_vol(host_io);
    ASSERT_EQ(host_vol.mount(), Status::kOk);
    ASSERT_EQ(host_vol.write_file("TINY.PB", pbit), Status::kOk);
  }
  const BootTableEntry entries[] = {{9, false, "TINY.PB"}};
  std::vector<u8> blob;
  ASSERT_EQ(pack_boot_table(entries, &blob), Status::kOk);
  soc.boot_mem().poke(kBootTableOffset, blob);

  // Firmware side.
  std::vector<BootTableEntry> table;
  ASSERT_EQ(read_boot_table(soc.cpu(), &table), Status::kOk);
  auto mods = driver::to_reconfig_modules(table);
  ASSERT_EQ(mods.size(), 1u);

  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  driver::CpuBlockIo io(sd, soc.sd_card().block_count());
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  ASSERT_EQ(drv.init_RModules(mods, vol), Status::kOk);
  ASSERT_EQ(drv.init_reconfig_process(mods[0], driver::DmaMode::kInterrupt),
            Status::kOk);
  const auto st = soc.config_memory().partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 9u);
}

}  // namespace
}  // namespace rvcap
