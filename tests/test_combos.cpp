// Cross-feature integration: determinism of the whole stack, and
// compositions of the extension features (relocate + compress +
// readback + scrub) that no single-feature suite exercises together.
#include <gtest/gtest.h>

#include "bitstream/compress.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/relocate.hpp"
#include "common/bytes.hpp"
#include "driver/scrubber.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

driver::ReconfigModule stage(ArianeSoc& soc, std::span<const u8> pbit,
                             u32 rm_id, Addr addr) {
  soc.ddr().poke(addr, pbit);
  return driver::ReconfigModule{"", rm_id, addr,
                                static_cast<u32>(pbit.size())};
}

TEST(Determinism, TwoFreshSocsProduceIdenticalTimings) {
  // The entire stack is deterministic: same inputs, same cycle counts.
  std::vector<u64> td, tr, end_cycle;
  for (int run = 0; run < 2; ++run) {
    ArianeSoc soc((SocConfig()));
    driver::RvCapDriver drv(soc.cpu(), soc.plic());
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
    const auto m = stage(soc, pbit, accel::kRmIdSobel, 0x8800'0000);
    ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
    td.push_back(drv.last_timing().decision_ticks);
    tr.push_back(drv.last_timing().reconfig_ticks);
    end_cycle.push_back(soc.sim().now());
  }
  EXPECT_EQ(td[0], td[1]);
  EXPECT_EQ(tr[0], tr[1]);
  EXPECT_EQ(end_cycle[0], end_cycle[1]);
}

TEST(Determinism, GeneratedBitstreamsAreStable) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp = fabric::case_study_partition(dev);
  const auto a = bitstream::generate_partial_bitstream(dev, rp, {1, "x"});
  const auto b = bitstream::generate_partial_bitstream(dev, rp, {1, "x"});
  EXPECT_EQ(a, b);
}

TEST(Combos, CompressedRelocatedBitstreamLoads) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Build for RP0, relocate to the same window in row 0, compress.
  std::vector<fabric::Partition::ColumnRef> cols;
  const u32 start = soc.device().accel_window_start();
  for (u32 c = start; c < start + 13; ++c) cols.push_back({0, c});
  const fabric::Partition alt("RP_R0", cols);
  const usize h_alt = soc.add_partition(alt);

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdGaussian, "g"},
      bitstream::FrameFill::kSparse);
  std::vector<u8> moved, packed;
  ASSERT_EQ(bitstream::relocate_bitstream(soc.device(), soc.rp0(), alt,
                                          pbit, &moved),
            Status::kOk);
  ASSERT_EQ(bitstream::compress_bitstream(moved, &packed), Status::kOk);
  EXPECT_LT(packed.size(), moved.size() / 3);

  const auto m = stage(soc, packed, accel::kRmIdGaussian, 0x8800'0000);
  ASSERT_EQ(drv.init_reconfig_process_compressed(m, DmaMode::kInterrupt),
            Status::kOk);
  ASSERT_TRUE(soc.sim().run_until_idle(2'000'000));

  const auto st = soc.config_memory().partition_state(h_alt);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdGaussian);
  EXPECT_FALSE(soc.icap().crc_error());
}

TEST(Combos, ReadbackOfRelocatedPartitionMatchesOriginalPayload) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  std::vector<fabric::Partition::ColumnRef> cols;
  const u32 start = soc.device().accel_window_start();
  for (u32 c = start; c < start + 13; ++c) cols.push_back({5, c});
  const fabric::Partition alt("RP_R5", cols);
  soc.add_partition(alt);

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdMedian, "m"});
  // Load the ORIGINAL into RP0 and the RELOCATED copy into row 5.
  const auto m0 = stage(soc, pbit, accel::kRmIdMedian, 0x8800'0000);
  ASSERT_EQ(drv.init_reconfig_process(m0, DmaMode::kInterrupt), Status::kOk);
  std::vector<u8> moved;
  ASSERT_EQ(bitstream::relocate_bitstream(soc.device(), soc.rp0(), alt,
                                          pbit, &moved),
            Status::kOk);
  const auto m5 = stage(soc, moved, accel::kRmIdMedian, 0x8900'0000);
  ASSERT_EQ(drv.init_reconfig_process(m5, DmaMode::kInterrupt), Status::kOk);

  // Read both partitions back: identical frame payloads.
  u32 w0 = 0, w5 = 0;
  ASSERT_EQ(drv.readback_partition(soc.device(), soc.rp0(), 0x8C00'0000,
                                   0x8D00'0000, &w0),
            Status::kOk);
  ASSERT_EQ(drv.readback_partition(soc.device(), alt, 0x8C00'0000,
                                   0x8E00'0000, &w5),
            Status::kOk);
  ASSERT_EQ(w0, w5);
  std::vector<u8> a(usize{w0} * 4), b(usize{w5} * 4);
  soc.ddr().peek(0x8D00'0000, a);
  soc.ddr().peek(0x8E00'0000, b);
  EXPECT_EQ(a, b) << "relocation must not alter the configured logic";
}

TEST(Combos, ScrubRelocatedPartition) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  driver::Scrubber scrubber(
      drv, soc.device(),
      driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000});

  std::vector<fabric::Partition::ColumnRef> cols;
  const u32 start = soc.device().accel_window_start();
  for (u32 c = start; c < start + 13; ++c) cols.push_back({6, c});
  const fabric::Partition alt("RP_R6", cols);
  soc.add_partition(alt);

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
  std::vector<u8> moved;
  ASSERT_EQ(bitstream::relocate_bitstream(soc.device(), soc.rp0(), alt,
                                          pbit, &moved),
            Status::kOk);
  const auto m = stage(soc, moved, accel::kRmIdSobel, 0x8800'0000);
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  ASSERT_EQ(scrubber.snapshot(alt), Status::kOk);
  bool clean = false;
  EXPECT_EQ(scrubber.scrub(alt, &clean), Status::kOk);
  EXPECT_TRUE(clean);
  // Inject + repair on the relocated partition.
  soc.config_memory().inject_upset(alt.frame_addrs(soc.device())[7], 3, 3);
  ASSERT_EQ(scrubber.scrub_and_repair(alt, m), Status::kOk);
  EXPECT_EQ(scrubber.stats().repairs, 1u);
}

}  // namespace
}  // namespace rvcap
