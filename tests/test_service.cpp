// Deadline-aware ReconfigService: admission control, watchdog hang
// detection, and graceful degradation under queued load.
//
// Covers the three robustness layers end to end over a live SoC:
//  * admission — malformed / wrong-device / wrong-RP images are refused
//    before a single ICAP word is written and quarantined so resubmits
//    fail fast;
//  * watchdog — a wedged DMA (frozen beat counter) is declared a hang
//    long before the iteration timeout, diagnosed with a register
//    snapshot, recovered by the self-healing pipeline, and the rest of
//    the queue still completes;
//  * degradation — priority scheduling, coalescing, shedding at
//    saturation, deadline misses and cancellation, plus a randomized
//    stress run under fault injection with same-seed determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/reconfig_service.hpp"
#include "driver/scrubber.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"
#include "soc/memory_map.hpp"
#include "soc/service_regs.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using driver::DprManager;
using driver::FailStage;
using driver::ReconfigService;
using sim::FaultInjector;
using soc::ArianeSoc;
using soc::SocConfig;
namespace sites = sim::fault_sites;

using Req = ReconfigService::ActivationRequest;
using State = ReconfigService::RequestState;

// ---------------------------------------------------------------------
// World: SoC + self-healing DprManager with three pre-staged modules.
// ---------------------------------------------------------------------

struct ServiceWorld {
  ServiceWorld()
      : soc(make_config()),
        drv(soc.cpu(), soc.plic()),
        hwicap_drv(soc.cpu()),
        scrubber(drv, soc.device(),
                 driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000}),
        fi(0x5EED),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    mgr.attach_fallback(&hwicap_drv);
    mgr.attach_scrubber(&scrubber, &soc.rp0());
    stage("sobel", accel::kRmIdSobel, 0x8A00'0000);
    stage("median", accel::kRmIdMedian, 0x8B00'0000);
    stage("gauss", accel::kRmIdGaussian, 0x8900'0000);
  }

  static SocConfig make_config() {
    SocConfig cfg;
    cfg.with_hwicap = true;
    return cfg;
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  /// Stage raw bytes under a module name (for malformed images).
  void stage_raw(const char* name, u32 rm_id, Addr addr,
                 std::span<const u8> bytes) {
    soc.ddr().poke(addr, bytes);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(bytes.size())),
              Status::kOk);
  }

  /// A one-column partition that shares no column-row with RP0 — the
  /// "wrong floorplan" target for admission tests.
  fabric::Partition foreign_partition() {
    const auto& taken = soc.rp0().columns();
    for (u32 row = 0; row < soc.device().rows(); ++row) {
      for (u32 col = 0; col < soc.device().num_columns(); ++col) {
        const fabric::Partition::ColumnRef ref{row, col};
        if (std::find(taken.begin(), taken.end(), ref) == taken.end()) {
          return fabric::Partition("RPX", {ref});
        }
      }
    }
    ADD_FAILURE() << "device fully covered by RP0?";
    return fabric::Partition("RPX", {{0, 0}});
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::HwIcapDriver hwicap_drv;
  driver::Scrubber scrubber;
  FaultInjector fi;
  DprManager mgr;
};

struct ServiceFixture : ::testing::Test, ServiceWorld {};

// ---------------------------------------------------------------------
// Lifecycle basics
// ---------------------------------------------------------------------

TEST_F(ServiceFixture, SingleRequestCompletes) {
  ReconfigService svc(mgr);
  ReconfigService::RequestId id = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 3, 0, 11}, &id), Status::kOk);
  EXPECT_EQ(svc.queue_depth(), 1u);
  ASSERT_NE(svc.record(id), nullptr);
  EXPECT_EQ(svc.record(id)->state, State::kQueued);

  EXPECT_TRUE(svc.step());
  EXPECT_FALSE(svc.step());  // queue drained

  const auto* r = svc.record(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->state, State::kCompleted);
  EXPECT_EQ(r->status, Status::kOk);
  EXPECT_GE(r->start_mtime, r->submit_mtime);
  EXPECT_GE(r->done_mtime, r->start_mtime);
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_EQ(svc.stats().completed, 1u);
  EXPECT_EQ(svc.stats().accepted, 1u);
}

TEST_F(ServiceFixture, DispatchFollowsPriorityThenDeadline) {
  ReconfigService svc(mgr);
  ASSERT_EQ(svc.submit(Req{"sobel", 1}), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"median", 5}), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"gauss", 9}), Status::kOk);

  EXPECT_TRUE(svc.step());
  EXPECT_EQ(mgr.active_module(), "gauss");  // highest priority first
  EXPECT_TRUE(svc.step());
  EXPECT_EQ(mgr.active_module(), "median");
  EXPECT_TRUE(svc.step());
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_EQ(svc.stats().completed, 3u);
}

TEST_F(ServiceFixture, DuplicateRequestsCoalesce) {
  ReconfigService svc(mgr);
  ReconfigService::RequestId first = 0, dup = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 1, 0, 1}, &first), Status::kOk);
  const u64 deadline = drv.mtime() + 1'000'000;
  ASSERT_EQ(svc.submit(Req{"sobel", 7, deadline, 2}, &dup), Status::kOk);

  EXPECT_EQ(svc.queue_depth(), 1u);  // merged, not queued twice
  const auto* d = svc.record(dup);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->state, State::kCoalesced);
  EXPECT_EQ(d->merged_into, first);
  // Survivor inherited the higher priority and the tighter deadline.
  const auto* f = svc.record(first);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->req.priority, 7u);
  EXPECT_EQ(f->req.deadline_mtime, deadline);
  EXPECT_EQ(svc.stats().coalesced, 1u);

  EXPECT_EQ(svc.drain(), 1u);
  EXPECT_EQ(svc.record(first)->state, State::kCompleted);
}

TEST_F(ServiceFixture, SaturationShedsLowestPriorityOrRefusesArrival) {
  ReconfigService::Config cfg;
  cfg.queue_capacity = 2;
  ReconfigService svc(mgr, cfg);

  ReconfigService::RequestId low = 0, mid = 0, high = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 1}, &low), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"median", 4}, &mid), Status::kOk);
  // Queue full; a higher-priority arrival evicts the priority-1 entry.
  ASSERT_EQ(svc.submit(Req{"gauss", 8}, &high), Status::kOk);
  EXPECT_EQ(svc.record(low)->state, State::kShed);
  EXPECT_EQ(svc.record(low)->status, Status::kRejected);
  EXPECT_EQ(svc.queue_depth(), 2u);
  EXPECT_EQ(svc.stats().shed, 1u);

  // An arrival that does not outrank the weakest entry is refused.
  ReconfigService::RequestId weak = 0;
  EXPECT_EQ(svc.submit(Req{"sobel", 2}, &weak), Status::kRejected);
  EXPECT_EQ(svc.record(weak)->state, State::kRejected);
  EXPECT_EQ(svc.stats().rejected_full, 1u);
  EXPECT_EQ(svc.queue_depth(), 2u);

  EXPECT_EQ(svc.drain(), 2u);
  EXPECT_EQ(svc.record(mid)->state, State::kCompleted);
  EXPECT_EQ(svc.record(high)->state, State::kCompleted);
}

TEST_F(ServiceFixture, DeadlineMissedAtSubmitAndAtDispatch) {
  ReconfigService svc(mgr);
  // Burn some simulated time so a tiny absolute deadline is in the past.
  ASSERT_EQ(svc.submit(Req{"gauss", 0}), Status::kOk);
  ASSERT_TRUE(svc.step());
  ASSERT_GT(drv.mtime(), 1u);

  // Already expired at submission: refused without touching hardware.
  ReconfigService::RequestId expired = 0;
  EXPECT_EQ(svc.submit(Req{"sobel", 9, 1, 0}, &expired),
            Status::kDeadlineMissed);
  EXPECT_EQ(svc.record(expired)->state, State::kDeadlineMissed);

  // Expires while queued behind a long-running higher-priority request:
  // skipped at dispatch with kDeadlineMissed.
  ReconfigService::RequestId blocker = 0, victim = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 5}, &blocker), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"median", 1, drv.mtime() + 100, 0}, &victim),
            Status::kOk);
  const u64 reconfigs_before = mgr.stats().reconfigurations;
  EXPECT_TRUE(svc.step());  // runs "sobel", far longer than 100 ticks
  EXPECT_TRUE(svc.step());  // dispatches the expired "median": skip
  const auto* v = svc.record(victim);
  EXPECT_EQ(v->state, State::kDeadlineMissed);
  EXPECT_EQ(v->status, Status::kDeadlineMissed);
  EXPECT_EQ(v->start_mtime, 0u);  // never reached the hardware
  EXPECT_EQ(mgr.stats().reconfigurations, reconfigs_before + 1);
  EXPECT_EQ(svc.stats().deadline_missed, 2u);
}

TEST_F(ServiceFixture, CancelWhileQueued) {
  ReconfigService svc(mgr);
  ReconfigService::RequestId id = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 1}, &id), Status::kOk);
  EXPECT_EQ(svc.cancel(id), Status::kOk);
  EXPECT_EQ(svc.record(id)->state, State::kCancelled);
  EXPECT_EQ(svc.record(id)->status, Status::kCancelled);

  EXPECT_EQ(svc.cancel(id), Status::kInvalidArgument);  // already terminal
  EXPECT_EQ(svc.cancel(999), Status::kNotFound);

  // A cancelled request never reaches the hardware.
  EXPECT_FALSE(svc.step());
  EXPECT_EQ(mgr.stats().reconfigurations, 0u);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST_F(ServiceFixture, UnknownModuleRefused) {
  ReconfigService svc(mgr);
  EXPECT_EQ(svc.submit(Req{"no-such-module", 1}), Status::kNotFound);
  EXPECT_TRUE(svc.history().empty());
  EXPECT_EQ(svc.stats().submitted, 1u);
  EXPECT_EQ(svc.stats().accepted, 0u);
}

// ---------------------------------------------------------------------
// Admission control: pre-flight parse + quarantine
// ---------------------------------------------------------------------

TEST_F(ServiceFixture, WrongRpFarRejectedBeforeAnyIcapWord) {
  // An image whose frame addresses target a different partition must be
  // refused at admission, with zero configuration traffic.
  const auto rpx = foreign_partition();
  const auto evil = bitstream::generate_partial_bitstream(
      soc.device(), rpx, {7, "evil"});
  stage_raw("evil", 7, 0x8800'0000, evil);

  ReconfigService svc(mgr);
  const u64 words_before = soc.icap().words_consumed();

  ReconfigService::RequestId id = 0;
  EXPECT_EQ(svc.submit(Req{"evil", 9}, &id), Status::kRejected);
  EXPECT_EQ(svc.record(id)->state, State::kRejected);
  EXPECT_EQ(soc.icap().words_consumed(), words_before);
  EXPECT_EQ(soc.icap().frames_committed(), 0u);
  EXPECT_EQ(svc.stats().preflight_rejects, 1u);
  EXPECT_TRUE(svc.quarantined("evil"));

  // Quarantine fast-fail: the resubmit is refused without re-parsing.
  EXPECT_EQ(svc.submit(Req{"evil", 9}), Status::kQuarantined);
  EXPECT_EQ(svc.stats().quarantine_rejects, 1u);
  EXPECT_EQ(svc.stats().preflight_rejects, 1u);  // no second parse
  EXPECT_EQ(soc.icap().words_consumed(), words_before);

  // The RP itself is unharmed: a good module still activates.
  ASSERT_EQ(svc.submit(Req{"sobel", 1}), Status::kOk);
  EXPECT_EQ(svc.drain(), 1u);
  EXPECT_EQ(mgr.active_module(), "sobel");
}

TEST_F(ServiceFixture, WrongIdcodeRejected) {
  ReconfigService::Config cfg;
  cfg.expected_idcode = bitstream::kIdCode ^ 1;  // "different device"
  ReconfigService svc(mgr, cfg);
  const u64 words_before = soc.icap().words_consumed();
  EXPECT_EQ(svc.submit(Req{"sobel", 1}), Status::kRejected);
  EXPECT_EQ(soc.icap().words_consumed(), words_before);
  EXPECT_TRUE(svc.quarantined("sobel"));
}

TEST_F(ServiceFixture, GarbageImageRejected) {
  // No sync word anywhere: the parse fails before any hardware access.
  const std::vector<u8> junk(4096, 0xFF);
  stage_raw("junk", 9, 0x8800'0000, junk);
  ReconfigService svc(mgr);
  EXPECT_EQ(svc.submit(Req{"junk", 1}), Status::kRejected);
  EXPECT_EQ(svc.stats().preflight_rejects, 1u);
  EXPECT_TRUE(svc.quarantined("junk"));
}

// ---------------------------------------------------------------------
// Watchdog hang detection
// ---------------------------------------------------------------------

TEST_F(ServiceFixture, WatchdogDetectsWedgedDmaAndQueueSurvives) {
  ReconfigService::Config cfg;
  cfg.watchdog_interval_ticks = 50;
  cfg.watchdog_stall_polls = 4;
  ReconfigService svc(mgr, cfg);
  // Hung attempt + recovery (blank + retry) + a second full
  // reconfiguration emit ~1.3M events; retain them all so the early
  // hang record survives for the trace assertions below.
  soc.sim().obs().sink().set_capacity(usize{1} << 21);
  soc.sim().obs().sink().set_enabled(true);

  fi.arm(sites::kDmaMm2sStall, /*count=*/1);
  ReconfigService::RequestId hung = 0, next = 0;
  ASSERT_EQ(svc.submit(Req{"sobel", 5}, &hung), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"median", 1}, &next), Status::kOk);
  EXPECT_EQ(svc.drain(), 2u);

  // The wedge was declared a hang (frozen progress counter), not a
  // bounded-iteration timeout.
  EXPECT_EQ(svc.stats().hangs, 1u);
  EXPECT_EQ(mgr.stats().dma_hangs, 1u);
  EXPECT_EQ(mgr.stats().dma_timeouts, 0u);

  // Diagnosis carries the last register snapshot of the wedged engine.
  ASSERT_EQ(svc.hang_log().size(), 1u);
  const auto& d = svc.hang_log().front();
  EXPECT_EQ(d.request, hung);
  EXPECT_EQ(d.polls_without_progress, cfg.watchdog_stall_polls);
  EXPECT_GT(d.expected_beats, 0u);
  EXPECT_LT(d.snapshot.beats, d.expected_beats);
  EXPECT_EQ(d.outstanding_beats, d.expected_beats - d.snapshot.beats);
  EXPECT_GT(d.mtime, 0u);

  // The hang entered the self-healing pipeline: journaled at the DMA
  // stage with kHang, then recovered, and both requests completed.
  const auto j = mgr.journal();
  ASSERT_GE(j.size(), 2u);
  EXPECT_EQ(j.front().stage, FailStage::kDma);
  EXPECT_EQ(j.front().status, Status::kHang);
  EXPECT_EQ(j.back().stage, FailStage::kRecovered);
  EXPECT_EQ(mgr.stats().recoveries, 1u);
  EXPECT_EQ(svc.record(hung)->state, State::kCompleted);
  EXPECT_EQ(svc.record(next)->state, State::kCompleted);
  EXPECT_EQ(mgr.active_module(), "median");

  // The same story told by the trace stream: the hang event carries
  // the diagnosis payload, and no request completes before dispatch.
  if (obs::trace_compiled_in()) {
    const obs::TraceSink& sink = soc.sim().obs().sink();
    const obs::TraceEvent* hang = test::expect_event(
        sink, obs::EventKind::kSvcHang, "reconfig_service");
    ASSERT_NE(hang, nullptr);
    EXPECT_EQ(hang->a0, hung);
    EXPECT_EQ(hang->a1, d.outstanding_beats);
    EXPECT_EQ(hang->a2, cfg.watchdog_stall_polls);
    EXPECT_EQ(test::count_events(sink, obs::EventKind::kSvcAdmit), 2u);
    EXPECT_EQ(test::count_events(sink, obs::EventKind::kSvcComplete), 2u);
    test::expect_ordered(sink, obs::EventKind::kSvcAdmit,
                         obs::EventKind::kSvcHang);
    test::expect_ordered(sink, obs::EventKind::kSvcHang,
                         obs::EventKind::kSvcComplete);
  }
}

TEST_F(ServiceFixture, WatchdogFiresWellBeforeIterationTimeout) {
  // The point of progress probes: detection latency is bounded by
  // interval * polls, not by the multi-million-cycle iteration budget.
  ReconfigService::Config cfg;
  cfg.watchdog_interval_ticks = 50;
  cfg.watchdog_stall_polls = 4;
  ReconfigService svc(mgr, cfg);

  fi.arm(sites::kDmaMm2sStall, /*count=*/1);
  ASSERT_EQ(svc.submit(Req{"sobel", 1}), Status::kOk);
  const u64 t0 = drv.mtime();
  EXPECT_EQ(svc.drain(), 1u);
  ASSERT_EQ(svc.hang_log().size(), 1u);
  const u64 detect_ticks = svc.hang_log().front().mtime - t0;
  // Generous bound: a couple of orders of magnitude under the default
  // 4M-cycle (200k-tick) interrupt-wait budget.
  EXPECT_LT(detect_ticks, 20'000u);
}

// ---------------------------------------------------------------------
// Randomized queue stress under fault injection
// ---------------------------------------------------------------------

struct StressOutcome {
  std::vector<std::pair<State, Status>> terminal;  // per record, in order
  std::vector<DprManager::JournalEntry> journal;
  std::vector<std::pair<std::string, u64>> fire_report;
};

StressOutcome run_stress(ServiceWorld& w, u64 seed) {
  // Keep every run on the DMA path and skip the (slow) readback scrub:
  // determinism is the property under test, not scrub coverage.
  DprManager::RecoveryPolicy pol;
  pol.scrub_after_recovery = false;
  w.mgr.set_policy(pol);

  // Every PR 1 fault site armed (bounded counts so the run converges;
  // the SD/staging sites are armed too even though pinned modules do
  // not exercise them — arming must be harmless).
  w.fi.arm(sites::kDmaMm2sSlvErr, 3, 0.35);
  w.fi.arm(sites::kDmaMm2sStall, 1, 0.5);
  w.fi.arm(sites::kDmaMm2sEarlyIoc, 2, 0.25);
  w.fi.arm(sites::kIcapSyncLoss, 2, 0.2);
  w.fi.arm(sites::kIcapCrcCorrupt, 2, 0.005);
  w.fi.arm(sites::kSdReadToken, 2, 0.5);
  w.fi.arm(sites::kSdReadCrc, 2, 0.5);
  w.fi.arm(sites::kStageBitFlip, 1, 0.5);

  ReconfigService::Config cfg;
  cfg.queue_capacity = 4;
  cfg.watchdog_interval_ticks = 50;
  cfg.watchdog_stall_polls = 4;
  ReconfigService svc(w.mgr, cfg);

  const char* modules[] = {"sobel", "median", "gauss"};
  SplitMix64 rng(seed);
  std::vector<ReconfigService::RequestId> ids;
  for (int i = 0; i < 14; ++i) {
    Req r;
    r.module = modules[rng.next_below(3)];
    r.priority = static_cast<u32>(rng.next_below(8));
    r.client_id = static_cast<u32>(i);
    switch (rng.next_below(3)) {
      case 0: r.deadline_mtime = 0; break;                           // none
      case 1: r.deadline_mtime = w.drv.mtime() + 50 +
                                 rng.next_below(5'000); break;       // tight
      default: r.deadline_mtime = w.drv.mtime() + 10'000'000; break; // loose
    }
    ReconfigService::RequestId id = 0;
    svc.submit(r, &id);
    if (id != 0) ids.push_back(id);

    // Occasionally cancel a random earlier request or let the queue run.
    if (!ids.empty() && rng.next_below(4) == 0) {
      svc.cancel(ids[rng.next_below(ids.size())]);
    }
    if (rng.next_below(3) == 0) svc.step();
  }
  svc.drain();

  // ---- invariants: no request lost, duplicated, or left in flight ----
  EXPECT_EQ(svc.queue_depth(), 0u);
  const auto& hist = svc.history();
  EXPECT_EQ(svc.stats().submitted, hist.size());  // nothing lost
  u64 completed = 0, failed = 0, shed = 0, cancelled = 0, coalesced = 0,
      rejected = 0, missed = 0, missed_at_dispatch = 0;
  StressOutcome out;
  for (usize i = 0; i < hist.size(); ++i) {
    const auto& r = hist[i];
    EXPECT_EQ(r.id, i + 1);  // ids unique and dense: no duplication
    EXPECT_NE(r.state, State::kQueued) << r.id;
    EXPECT_NE(r.state, State::kActive) << r.id;
    switch (r.state) {
      case State::kCompleted: ++completed; break;
      case State::kFailed: ++failed; break;
      case State::kShed: ++shed; break;
      case State::kCancelled: ++cancelled; break;
      case State::kCoalesced: ++coalesced; break;
      case State::kRejected: ++rejected; break;
      case State::kDeadlineMissed:
        ++missed;
        // A submit-time miss is stamped terminal at its submit mtime; a
        // dispatch-time miss was queued first, and time must advance
        // past the deadline before the skip.
        if (r.done_mtime > r.submit_mtime) ++missed_at_dispatch;
        break;
      case State::kQueued:
      case State::kActive: break;  // unreachable, asserted above
    }
    // Nothing runs after being cancelled / shed / refused / expired.
    if (r.state == State::kCancelled || r.state == State::kShed ||
        r.state == State::kRejected || r.state == State::kDeadlineMissed) {
      EXPECT_EQ(r.start_mtime, 0u) << r.id;
    }
    out.terminal.emplace_back(r.state, r.status);
  }
  EXPECT_EQ(completed, svc.stats().completed);
  EXPECT_EQ(failed, svc.stats().failed);
  EXPECT_EQ(shed, svc.stats().shed);
  EXPECT_EQ(cancelled, svc.stats().cancelled);
  EXPECT_EQ(coalesced, svc.stats().coalesced);
  EXPECT_EQ(rejected, svc.stats().rejected_full +
                          svc.stats().preflight_rejects +
                          svc.stats().quarantine_rejects);
  EXPECT_EQ(missed, svc.stats().deadline_missed);
  // Every admitted request reached exactly one terminal state.
  EXPECT_EQ(svc.stats().accepted,
            completed + failed + shed + cancelled + missed_at_dispatch);

  const auto j = w.mgr.journal();
  out.journal.assign(j.begin(), j.end());
  out.fire_report = w.fi.fire_report();
  return out;
}

TEST(ServiceStress, SameSeedSameOutcomeAndJournal) {
  ServiceWorld w1;
  const StressOutcome a = run_stress(w1, 0xC0FFEE);
  ServiceWorld w2;
  const StressOutcome b = run_stress(w2, 0xC0FFEE);

  EXPECT_FALSE(a.terminal.empty());
  ASSERT_EQ(a.terminal.size(), b.terminal.size());
  for (usize i = 0; i < a.terminal.size(); ++i) {
    EXPECT_EQ(a.terminal[i].first, b.terminal[i].first) << i;
    EXPECT_EQ(a.terminal[i].second, b.terminal[i].second) << i;
  }
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (usize i = 0; i < a.journal.size(); ++i) {
    EXPECT_EQ(a.journal[i].mtime, b.journal[i].mtime) << i;
    EXPECT_EQ(a.journal[i].stage, b.journal[i].stage) << i;
    EXPECT_EQ(a.journal[i].status, b.journal[i].status) << i;
    EXPECT_EQ(a.journal[i].rm_id, b.journal[i].rm_id) << i;
    EXPECT_EQ(a.journal[i].attempt, b.journal[i].attempt) << i;
  }
  EXPECT_EQ(a.fire_report, b.fire_report);
}

TEST(ServiceStress, DifferentSeedsDiverge) {
  ServiceWorld w1;
  const StressOutcome a = run_stress(w1, 1);
  ServiceWorld w2;
  const StressOutcome b = run_stress(w2, 2);
  // Not a hard guarantee per field, but the combined trace of terminal
  // states + fault report diverging is astronomically likely.
  EXPECT_TRUE(a.terminal != b.terminal || a.fire_report != b.fire_report);
}

// ---------------------------------------------------------------------
// Telemetry mailbox
// ---------------------------------------------------------------------

TEST_F(ServiceFixture, MailboxMirrorsCounters) {
  ReconfigService::Config cfg;
  cfg.mailbox_base = soc::MemoryMap::kServiceRegs.base;
  ReconfigService svc(mgr, cfg);

  ASSERT_EQ(svc.submit(Req{"sobel", 1}), Status::kOk);
  ASSERT_EQ(svc.submit(Req{"sobel", 2}), Status::kOk);  // coalesces
  EXPECT_EQ(svc.drain(), 1u);

  auto reg = [&](Addr off) {
    return soc.cpu().load32_uncached(cfg.mailbox_base + off);
  };
  using soc::ServiceRegs;
  EXPECT_EQ(reg(ServiceRegs::kSubmitted), 2u);
  EXPECT_EQ(reg(ServiceRegs::kAccepted), 1u);
  EXPECT_EQ(reg(ServiceRegs::kCompleted), 1u);
  EXPECT_EQ(reg(ServiceRegs::kCoalesced), 1u);
  EXPECT_EQ(reg(ServiceRegs::kQueueDepth), 0u);
  EXPECT_EQ(reg(ServiceRegs::kMaxQueueDepth), 1u);
  EXPECT_EQ(reg(ServiceRegs::kFailed), 0u);
  EXPECT_EQ(reg(ServiceRegs::kHangs), 0u);
}

}  // namespace
}  // namespace rvcap
