// Continuous SEU mitigation: frame ECC, the background upset process,
// and the scrub service's detect -> localize -> repair loop under live
// traffic.
//
// Layers covered bottom-up: SECDED syndrome math and the essential-bits
// mask (pure functions), ConfigMemory upset bookkeeping (observer hook,
// in-place repair exception), single-frame rewrite and full-reload
// escalation through the real driver/ICAP path, IRQ + ServiceRegs
// telemetry, and the closed-loop acceptance demo — a Poisson upset
// process corrupting a streaming RM while the scrub service repairs it,
// ending bit-exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <tuple>

#include "accel/filters.hpp"
#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/reconfig_service.hpp"
#include "driver/scrub_service.hpp"
#include "driver/scrubber.hpp"
#include "fabric/frame_ecc.hpp"
#include "fabric/seu_process.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"
#include "soc/memory_map.hpp"
#include "soc/service_regs.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using driver::DprManager;
using driver::ReconfigService;
using driver::ScrubService;
using fabric::compute_frame_ecc;
using fabric::decode_frame_ecc;
using fabric::EccClass;
using fabric::essential_bit;
using fabric::FrameAddr;
using fabric::FrameEcc;
using fabric::kFrameWords;
using fabric::SeuProcess;
using sim::FaultInjector;
using sim::Simulator;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;
namespace sites = sim::fault_sites;

using Req = ReconfigService::ActivationRequest;

// ---------------------------------------------------------------------
// Frame ECC: syndrome math and essential-bits mask
// ---------------------------------------------------------------------

std::vector<u32> test_frame(u32 salt) {
  std::vector<u32> w(kFrameWords);
  SplitMix64 rng(0xECC0 + salt);
  for (u32& x : w) x = static_cast<u32>(rng.next());
  return w;
}

TEST(FrameEcc, CleanFrameDecodesClean) {
  const auto w = test_frame(1);
  const FrameEcc g = compute_frame_ecc(w);
  const auto d = decode_frame_ecc(g, compute_frame_ecc(w), kFrameWords);
  EXPECT_EQ(d.cls, EccClass::kClean);
}

TEST(FrameEcc, SingleBitFlipLocalizedExactly) {
  const auto golden = test_frame(2);
  const FrameEcc g = compute_frame_ecc(golden);
  // Every corner: first bit, a middle bit, the very last bit.
  const std::pair<u32, u32> cases[] = {
      {0, 0}, {57, 13}, {kFrameWords - 1, 31}};
  for (const auto& [word, bit] : cases) {
    auto w = golden;
    w[word] ^= 1u << bit;
    const auto d = decode_frame_ecc(g, compute_frame_ecc(w), kFrameWords);
    EXPECT_EQ(d.cls, EccClass::kCorrectable);
    EXPECT_EQ(d.word, word);
    EXPECT_EQ(d.bit, bit);
  }
}

TEST(FrameEcc, DoubleBitFlipUncorrectable) {
  auto w = test_frame(3);
  const FrameEcc g = compute_frame_ecc(w);
  w[10] ^= 1u << 4;
  w[190] ^= 1u << 29;
  const auto d = decode_frame_ecc(g, compute_frame_ecc(w), kFrameWords);
  EXPECT_EQ(d.cls, EccClass::kUncorrectable);
}

TEST(FrameEcc, DoubleFlipInSameWordUncorrectable) {
  auto w = test_frame(4);
  const FrameEcc g = compute_frame_ecc(w);
  w[33] ^= (1u << 2) | (1u << 30);
  const auto d = decode_frame_ecc(g, compute_frame_ecc(w), kFrameWords);
  EXPECT_EQ(d.cls, EccClass::kUncorrectable);
}

TEST(FrameEcc, EssentialMaskDeterministicManifestAlwaysEssential) {
  // Manifest words of the base frame are unconditionally essential.
  for (u32 word = 0; word < 4; ++word) {
    for (u32 bit : {0u, 15u, 31u}) {
      EXPECT_TRUE(essential_bit(7, 0, word, bit));
    }
  }
  // Pure function: identical on repeat, and distinct RMs get distinct
  // masks (different routed designs use different bits).
  u32 set = 0, diff = 0;
  const u32 n = 4000;
  for (u32 i = 0; i < n; ++i) {
    const u32 f = 1 + i % 800, w = i % kFrameWords, b = i % 32;
    const bool a = essential_bit(7, f, w, b);
    EXPECT_EQ(a, essential_bit(7, f, w, b));
    set += a ? 1 : 0;
    diff += (a != essential_bit(8, f, w, b)) ? 1 : 0;
  }
  // ~25% density, loosely bounded.
  EXPECT_GT(set, n / 6);
  EXPECT_LT(set, n / 3);
  EXPECT_GT(diff, n / 8);
}

// ---------------------------------------------------------------------
// ConfigMemory upset bookkeeping (no SoC: direct fabric access)
// ---------------------------------------------------------------------

struct FabricFixture : ::testing::Test {
  FabricFixture()
      : dev(fabric::DeviceGeometry::kintex7_325t()),
        rp(fabric::case_study_partition(dev)),
        mem(dev),
        addrs(rp.frame_addrs(dev)) {
    handle = mem.register_partition(rp);
  }

  void load(u32 rm_id) {
    mem.notify_rcrc();
    std::vector<u32> frame(kFrameWords, 0);
    fabric::RmManifest{rm_id, static_cast<u32>(addrs.size())}.encode(
        std::span(frame).subspan(0, 4));
    mem.write_frame(addrs[0], frame);
    std::vector<u32> plain(kFrameWords, 1);
    for (usize i = 1; i < addrs.size(); ++i) mem.write_frame(addrs[i], plain);
  }

  fabric::DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory mem;
  std::vector<FrameAddr> addrs;
  usize handle = 0;
};

TEST_F(FabricFixture, UpsetObserverReportsEveryLandedHit) {
  load(3);
  std::vector<fabric::ConfigMemory::UpsetEvent> seen;
  mem.set_upset_observer([&](const auto& ev) { seen.push_back(ev); });

  EXPECT_FALSE(mem.inject_upset(FrameAddr{63, 0, 0}, 0, 0));  // never written
  EXPECT_TRUE(seen.empty());

  ASSERT_TRUE(mem.inject_upset(addrs[5], 7, 19));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].fa, addrs[5]);
  EXPECT_EQ(seen[0].word, 7u);
  EXPECT_EQ(seen[0].bit, 19u);
  EXPECT_TRUE(seen[0].loaded_frame);
  EXPECT_EQ(seen[0].total, 1u);
  EXPECT_EQ(mem.upsets_injected(), 1u);
  ASSERT_TRUE(mem.last_upset().has_value());
  EXPECT_EQ(mem.last_upset()->fa, addrs[5]);
  EXPECT_EQ(mem.outstanding_flips(addrs[5]), 1u);

  // Same bit again: the flip cancels out, but the event still reports.
  ASSERT_TRUE(mem.inject_upset(addrs[5], 7, 19));
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(mem.upsets_injected(), 2u);
  EXPECT_EQ(mem.outstanding_flips(addrs[5]), 0u);
}

TEST_F(FabricFixture, EssentialUpsetAccountingMatchesMask) {
  load(3);
  const auto st0 = mem.partition_state(handle);
  ASSERT_TRUE(st0.loaded);
  // Find one essential and one benign coordinate in frame 5.
  std::optional<std::pair<u32, u32>> ess, ben;
  for (u32 w = 0; w < kFrameWords && (!ess || !ben); ++w) {
    for (u32 b = 0; b < 32; ++b) {
      if (essential_bit(st0.rm_id, 5, w, b)) {
        if (!ess) ess = {w, b};
      } else if (!ben) {
        ben = {w, b};
      }
    }
  }
  ASSERT_TRUE(ess && ben);
  ASSERT_TRUE(mem.inject_upset(addrs[5], ben->first, ben->second));
  EXPECT_EQ(mem.partition_state(handle).essential_upsets, 0u);
  ASSERT_TRUE(mem.inject_upset(addrs[5], ess->first, ess->second));
  EXPECT_EQ(mem.partition_state(handle).essential_upsets, 1u);
  EXPECT_TRUE(mem.last_upset()->essential);
  // Undo the essential flip: the count returns to zero.
  ASSERT_TRUE(mem.inject_upset(addrs[5], ess->first, ess->second));
  EXPECT_EQ(mem.partition_state(handle).essential_upsets, 0u);
}

TEST_F(FabricFixture, InPlaceFrameRepairKeepsModuleLoaded) {
  load(3);
  ASSERT_TRUE(mem.inject_upset(addrs[5], 7, 19));
  ASSERT_TRUE(mem.partition_state(handle).loaded);

  // Rewriting the damaged frame with its exact pre-upset contents is an
  // in-place repair: no pass restart, module stays active.
  mem.write_frame(addrs[5], std::vector<u32>(kFrameWords, 1));
  EXPECT_TRUE(mem.partition_state(handle).loaded);
  EXPECT_EQ(mem.frame_repairs(), 1u);
  EXPECT_EQ(mem.outstanding_flips(addrs[5]), 0u);
}

TEST_F(FabricFixture, OutOfOrderWriteWithNewContentStillInvalidates) {
  load(3);
  // A mid-partition write with DIFFERENT content is not a repair — it
  // is an out-of-order configuration write, which wrecks the region.
  mem.write_frame(addrs[5], std::vector<u32>(kFrameWords, 9));
  EXPECT_FALSE(mem.partition_state(handle).loaded);
  EXPECT_EQ(mem.frame_repairs(), 0u);
}

TEST_F(FabricFixture, BaseFrameRewriteIsNeverAnInPlaceRepair) {
  load(3);
  ASSERT_TRUE(mem.inject_upset(addrs[0], 9, 1));
  // Restoring the base frame's exact contents restarts a configuration
  // pass (it carries the manifest) rather than repairing in place; the
  // partition drops out of the loaded state mid-pass.
  std::vector<u32> frame(kFrameWords, 0);
  fabric::RmManifest{3, static_cast<u32>(addrs.size())}.encode(
      std::span(frame).subspan(0, 4));
  mem.write_frame(addrs[0], frame);
  EXPECT_EQ(mem.frame_repairs(), 0u);
  EXPECT_FALSE(mem.partition_state(handle).loaded);
}

// ---------------------------------------------------------------------
// Scrub service over the live SoC
// ---------------------------------------------------------------------

struct ScrubWorld {
  explicit ScrubWorld(u64 seed = 0x5EED,
                      Simulator::Mode mode = Simulator::Mode::kScheduled)
      : soc(make_config(mode)),
        drv(soc.cpu(), soc.plic()),
        hwicap_drv(soc.cpu()),
        scrubber(drv, soc.device(),
                 driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000}),
        fi(seed),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr),
        svc(mgr, svc_config()),
        scrub(drv, soc.config_memory(), svc, scrub_config()) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    mgr.attach_fallback(&hwicap_drv);
    mgr.attach_scrubber(&scrubber, &soc.rp0());
    stage("sobel", accel::kRmIdSobel, 0x8A00'0000);
    stage("median", accel::kRmIdMedian, 0x8B00'0000);
    scrub.watch_partition(soc.rp0_handle(), "sobel");
    scrub.install_upset_feed();
    scrub.set_irqs(
        irq::IrqLine(&soc.plic(), soc::IrqMap::kScrubDone),
        irq::IrqLine(&soc.plic(), soc::IrqMap::kScrubError));
  }

  static SocConfig make_config(Simulator::Mode mode) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    cfg.with_hwicap = true;
    return cfg;
  }

  static ReconfigService::Config svc_config() {
    ReconfigService::Config cfg;
    cfg.mailbox_base = MemoryMap::kServiceRegs.base;
    return cfg;
  }

  static ScrubService::Config scrub_config() {
    ScrubService::Config cfg;
    cfg.cmd_staging = 0x8C00'0000;
    cfg.rb_buffer = 0x8D00'0000;
    cfg.frames_per_slice = 128;
    cfg.mailbox_base = MemoryMap::kServiceRegs.base;
    return cfg;
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  void activate(const char* name) {
    ReconfigService::RequestId id = 0;
    ASSERT_EQ(svc.submit(Req{name, 1}, &id), Status::kOk);
    svc.drain();
    ASSERT_EQ(svc.record(id)->state, ReconfigService::RequestState::kCompleted);
  }

  fabric::ConfigMemory& mem() { return soc.config_memory(); }
  std::vector<FrameAddr> rp_addrs() {
    return soc.rp0().frame_addrs(soc.device());
  }

  /// First essential (frame >= 1) coordinate of the loaded RM.
  std::tuple<u32, u32, u32> find_essential() {
    const u32 rm = mem().partition_state(soc.rp0_handle()).rm_id;
    for (u32 f = 1; f < 64; ++f) {
      for (u32 w = 0; w < kFrameWords; ++w) {
        for (u32 b = 0; b < 32; ++b) {
          if (essential_bit(rm, f, w, b)) return {f, w, b};
        }
      }
    }
    ADD_FAILURE() << "no essential bit in 64 frames?";
    return {1, 0, 0};
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::HwIcapDriver hwicap_drv;
  driver::Scrubber scrubber;
  FaultInjector fi;
  DprManager mgr;
  ReconfigService svc;
  ScrubService scrub;
  // Owned here, not in run_demo(): the simulator keeps a pointer, and
  // post-demo MMIO reads still tick the kernel.
  std::unique_ptr<SeuProcess> seu;
};

struct ScrubFixture : ::testing::Test, ScrubWorld {};

TEST_F(ScrubFixture, CleanPassFindsNothingAndRaisesDoneIrq) {
  activate("sobel");
  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);
  const auto& st = scrub.stats();
  EXPECT_EQ(st.passes, 1u);
  EXPECT_EQ(st.frames_scrubbed, rp_addrs().size());
  EXPECT_EQ(st.detections, 0u);
  EXPECT_EQ(st.frame_rewrites, 0u);
  EXPECT_EQ(st.done_irqs, 1u);
  EXPECT_GT(st.last_pass_frames_per_sec, 0u);

  // The level line is held until acked; enable the source at the PLIC
  // (keeping the DMA sources the driver enabled) and claim it.
  auto& cpu = soc.cpu();
  const Addr plic = MemoryMap::kPlic.base;
  cpu.store32_uncached(plic + irq::Plic::kEnableBase,
                       (1u << soc::IrqMap::kDmaMm2s) |
                           (1u << soc::IrqMap::kDmaS2mm) |
                           (1u << soc::IrqMap::kScrubDone));
  const u32 src =
      cpu.wait_for_irq(soc.plic(), plic + irq::Plic::kClaimComplete, 10'000);
  EXPECT_EQ(src, soc::IrqMap::kScrubDone);
  scrub.ack_irqs();
  cpu.complete_irq(plic + irq::Plic::kClaimComplete, src);
  EXPECT_FALSE(soc.plic().eip());
}

TEST_F(ScrubFixture, SingleBitUpsetRepairedByOneFrameRewrite) {
  activate("sobel");
  const u64 reconfigs = mgr.stats().reconfigurations;
  soc.sim().obs().sink().set_capacity(usize{1} << 19);
  soc.sim().obs().sink().set_enabled(true);
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[7], 3, 3));
  EXPECT_EQ(scrub.pending_upsets(), 1u);

  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);
  const auto& st = scrub.stats();
  EXPECT_EQ(st.detections, 1u);
  EXPECT_EQ(st.correctable, 1u);
  EXPECT_EQ(st.uncorrectable, 0u);
  EXPECT_EQ(st.frame_rewrites, 1u);
  EXPECT_EQ(st.partition_reloads, 0u);
  EXPECT_EQ(st.essential + st.benign, 1u);
  EXPECT_EQ(scrub.pending_upsets(), 0u);
  EXPECT_EQ(st.upsets_repaired, 1u);
  EXPECT_GT(scrub.mean_mttd_cycles(), 0.0);
  EXPECT_GE(scrub.mean_mttr_cycles(), scrub.mean_mttd_cycles());

  // The repair was in place: module still loaded, no reconfiguration,
  // and the fabric confirms the single-frame restore.
  EXPECT_EQ(mgr.stats().reconfigurations, reconfigs);
  EXPECT_TRUE(mem().partition_state(soc.rp0_handle()).loaded);
  EXPECT_EQ(mem().frame_repairs(), 1u);
  EXPECT_EQ(mem().outstanding_flips(rp_addrs()[7]), 0u);

  // Journal records the rewrite with the exact localized coordinates.
  ASSERT_EQ(scrub.journal().size(), 1u);
  const auto& j = scrub.journal().front();
  EXPECT_EQ(j.far, rp_addrs()[7].encode());
  EXPECT_EQ(j.cls, static_cast<u8>(EccClass::kCorrectable));
  EXPECT_EQ(j.action, static_cast<u8>(ScrubService::Action::kRewrite));
  EXPECT_EQ(j.word, 3u);
  EXPECT_EQ(j.bit, 3u);

  // The trace stream tells the whole detect -> repair causality chain
  // with the localized coordinates in the payloads.
  if (obs::trace_compiled_in()) {
    const obs::TraceSink& sink = soc.sim().obs().sink();
    const u32 far = rp_addrs()[7].encode();
    const obs::TraceEvent* upset = test::expect_event(
        sink, obs::EventKind::kScrubUpset, "scrub_service");
    ASSERT_NE(upset, nullptr);
    EXPECT_EQ(upset->a0, far);
    EXPECT_EQ(upset->a1, (u64{3} << 8) | 3);
    const obs::TraceEvent* detect = test::expect_event(
        sink, obs::EventKind::kScrubDetect, "scrub_service");
    ASSERT_NE(detect, nullptr);
    EXPECT_EQ(detect->a0, far);
    EXPECT_EQ(detect->a1, static_cast<u64>(EccClass::kCorrectable));
    const obs::TraceEvent* rewrite = test::expect_event(
        sink, obs::EventKind::kScrubRewrite, "scrub_service");
    ASSERT_NE(rewrite, nullptr);
    EXPECT_EQ(rewrite->a0, far);
    test::expect_ordered(sink, obs::EventKind::kScrubUpset,
                         obs::EventKind::kScrubDetect);
    test::expect_ordered(sink, obs::EventKind::kScrubDetect,
                         obs::EventKind::kScrubRewrite);
    EXPECT_EQ(test::count_events(sink, obs::EventKind::kScrubReload), 0u);
    // MTTD/MTTR histograms recorded the ground-truth latencies.
    const obs::CounterRegistry& reg = soc.sim().obs().counters();
    for (usize i = 0; i < reg.histogram_count(); ++i) {
      if (reg.histogram_name(i) == "scrub.mttd_cycles" ||
          reg.histogram_name(i) == "scrub.mttr_cycles") {
        EXPECT_EQ(reg.histogram_at(i).count(), 1u)
            << reg.histogram_name(i);
        EXPECT_GT(reg.histogram_at(i).max(), 0u) << reg.histogram_name(i);
      }
    }
  }
}

TEST_F(ScrubFixture, MultiBitDamageEscalatesToPartitionReload) {
  activate("sobel");
  const u64 reconfigs = mgr.stats().reconfigurations;
  // Two flips in one frame: detectable, not localizable.
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[9], 3, 3));
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[9], 100, 17));

  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);
  const auto& st = scrub.stats();
  EXPECT_EQ(st.uncorrectable, 1u);
  EXPECT_EQ(st.frame_rewrites, 0u);
  EXPECT_EQ(st.partition_reloads, 1u);
  EXPECT_EQ(st.upsets_repaired, 2u);
  EXPECT_EQ(scrub.pending_upsets(), 0u);
  // The reload went through the full (forced) reconfiguration path.
  EXPECT_GT(mgr.stats().reconfigurations, reconfigs);
  EXPECT_TRUE(mem().partition_state(soc.rp0_handle()).loaded);
  EXPECT_EQ(mem().outstanding_flips(rp_addrs()[9]), 0u);
}

TEST_F(ScrubFixture, BaseFrameDamageEscalatesEvenWhenCorrectable) {
  activate("sobel");
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[0], 9, 1));
  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);
  const auto& st = scrub.stats();
  EXPECT_EQ(st.correctable, 1u);
  EXPECT_EQ(st.frame_rewrites, 0u);  // never rewrites the manifest frame
  EXPECT_EQ(st.partition_reloads, 1u);
  EXPECT_EQ(scrub.pending_upsets(), 0u);
  EXPECT_TRUE(mem().partition_state(soc.rp0_handle()).loaded);
}

TEST_F(ScrubFixture, YieldsToForegroundRequestsMidPass) {
  activate("sobel");
  // Queue a foreground swap but do NOT dispatch it: the scrub slice
  // must dispatch it before touching the ICAP.
  ReconfigService::RequestId id = 0;
  ASSERT_EQ(svc.submit(Req{"median", 9}, &id), Status::kOk);
  ASSERT_EQ(svc.queue_depth(), 1u);

  (void)scrub.step();
  EXPECT_GE(scrub.stats().yields, 1u);
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(svc.record(id)->state, ReconfigService::RequestState::kCompleted);
  EXPECT_EQ(mgr.active_module(), "median");
}

TEST_F(ScrubFixture, TelemetryVisibleThroughServiceRegs) {
  activate("sobel");
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[7], 3, 3));
  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);

  auto reg = [&](Addr off) {
    return soc.cpu().load32_uncached(MemoryMap::kServiceRegs.base + off);
  };
  using R = soc::ServiceRegs;
  EXPECT_EQ(reg(R::kScrubPasses), 1u);
  EXPECT_EQ(reg(R::kScrubFrames), rp_addrs().size());
  EXPECT_EQ(reg(R::kScrubDetections), 1u);
  EXPECT_EQ(reg(R::kScrubCorrectable), 1u);
  EXPECT_EQ(reg(R::kScrubRewrites), 1u);
  EXPECT_EQ(reg(R::kScrubReloads), 0u);
  EXPECT_EQ(reg(R::kScrubPending), 0u);
  EXPECT_GT(reg(R::kScrubMeanMttd), 0u);
  EXPECT_GE(reg(R::kScrubMeanMttr), reg(R::kScrubMeanMttd));
  EXPECT_GT(reg(R::kScrubFramesPerSec), 0u);
}

TEST_F(ScrubFixture, EssentialUpsetCorruptsStreamUntilRepaired) {
  activate("sobel");
  const auto [f, w, b] = find_essential();
  ASSERT_TRUE(mem().inject_upset(rp_addrs()[f], w, b));
  ASSERT_EQ(mem().partition_state(soc.rp0_handle()).essential_upsets, 1u);

  const accel::Image img = accel::make_test_image(512, 512, 21);
  const accel::Image golden =
      accel::apply_golden(accel::FilterKind::kSobel, img);
  soc.ddr().poke(MemoryMap::kImageInBase, img.pixels);
  const u32 bytes = static_cast<u32>(img.pixels.size());

  // Damaged logic visibly corrupts the streamed output.
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase, bytes,
                                MemoryMap::kImageOutBase, bytes,
                                DmaMode::kInterrupt),
            Status::kOk);
  std::vector<u8> out(img.pixels.size());
  soc.ddr().peek(MemoryMap::kImageOutBase, out);
  EXPECT_NE(out, golden.pixels);
  EXPECT_GT(soc.rm_slot().corrupted_beats(), 0u);

  // Repair, then stream again: bit-exact.
  ASSERT_EQ(scrub.scrub_pass(), Status::kOk);
  EXPECT_EQ(scrub.stats().essential, 1u);
  EXPECT_EQ(scrub.pending_upsets(), 0u);
  ASSERT_EQ(mem().partition_state(soc.rp0_handle()).essential_upsets, 0u);
  const u64 corrupted_after_repair = soc.rm_slot().corrupted_beats();
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase, bytes,
                                MemoryMap::kImageOutBase, bytes,
                                DmaMode::kInterrupt),
            Status::kOk);
  soc.ddr().peek(MemoryMap::kImageOutBase, out);
  EXPECT_EQ(out, golden.pixels);
  EXPECT_EQ(soc.rm_slot().corrupted_beats(), corrupted_after_repair);
}

// ---------------------------------------------------------------------
// Closed-loop acceptance demo: Poisson upsets under live traffic
// ---------------------------------------------------------------------

struct DemoOutcome {
  u64 landed = 0;
  u64 repaired = 0;
  u64 cancelled = 0;
  u64 rewrites = 0;
  u64 reloads = 0;
  Cycles final_cycle = 0;
  std::vector<SeuProcess::Event> events;
  std::vector<ScrubService::JournalEntry> journal;
  bool final_image_exact = false;
};

DemoOutcome run_demo(ScrubWorld& w, u32 upset_budget) {
  DemoOutcome out;
  w.activate("sobel");

  SeuProcess::Config sc;
  sc.mean_cycles = 30'000;
  sc.targets = {w.soc.rp0_handle()};
  w.seu = std::make_unique<SeuProcess>("seu0", w.mem(), w.fi, sc);
  w.soc.sim().add(w.seu.get());
  w.fi.arm(sites::kSeuUpset, /*count=*/upset_budget);
  SeuProcess& seu = *w.seu;

  const accel::Image img = accel::make_test_image(512, 512, 99);
  const accel::Image golden =
      accel::apply_golden(accel::FilterKind::kSobel, img);
  w.soc.ddr().poke(MemoryMap::kImageInBase, img.pixels);
  const u32 bytes = static_cast<u32>(img.pixels.size());

  // Phase A — stream while the radiation process is live. The image may
  // come out damaged; keep scrubbing until the armed upset budget has
  // fired out AND every landed hit is resolved (each pass advances sim
  // time, so pending events on the wheel get their chance to land).
  EXPECT_EQ(w.drv.run_accelerator(MemoryMap::kImageInBase, bytes,
                                  MemoryMap::kImageOutBase, bytes,
                                  DmaMode::kInterrupt),
            Status::kOk);
  for (int pass = 0; pass < 20; ++pass) {
    if (w.fi.fires(sites::kSeuUpset) >= upset_budget &&
        w.scrub.pending_upsets() == 0) {
      break;
    }
    EXPECT_EQ(w.scrub.scrub_pass(), Status::kOk);
  }
  EXPECT_GE(w.fi.fires(sites::kSeuUpset), upset_budget);
  EXPECT_EQ(w.scrub.pending_upsets(), 0u);
  EXPECT_EQ(w.scrub.max_pending_age(w.soc.sim().now()), 0u);

  // Phase B — the upset budget is exhausted and every hit repaired:
  // the next frame must be bit-exact.
  EXPECT_EQ(w.drv.run_accelerator(MemoryMap::kImageInBase, bytes,
                                  MemoryMap::kImageOutBase, bytes,
                                  DmaMode::kInterrupt),
            Status::kOk);
  std::vector<u8> final_img(img.pixels.size());
  w.soc.ddr().peek(MemoryMap::kImageOutBase, final_img);
  out.final_image_exact = (final_img == golden.pixels);

  out.landed = seu.landed();
  out.repaired = w.scrub.stats().upsets_repaired;
  out.cancelled = w.scrub.stats().upsets_self_cancelled;
  out.rewrites = w.scrub.stats().frame_rewrites;
  out.reloads = w.scrub.stats().partition_reloads;
  out.final_cycle = w.soc.sim().now();
  out.events = seu.log();
  out.journal = w.scrub.journal();
  return out;
}

TEST(ScrubDemo, ContinuousUpsetsRepairedUnderLiveTraffic) {
  ScrubWorld w(0xBEEF);
  const DemoOutcome o = run_demo(w, 6);

  // The environment actually did something...
  EXPECT_GT(o.landed, 0u);
  EXPECT_GE(o.events.size(), o.landed);
  // ...every landed upset was detected and repaired (or cancelled out)...
  EXPECT_EQ(o.repaired + o.cancelled, o.landed);
  EXPECT_GT(o.rewrites + o.reloads, 0u);
  EXPECT_GT(w.scrub.mean_mttd_cycles(), 0.0);
  EXPECT_GE(w.scrub.mean_mttr_cycles(), w.scrub.mean_mttd_cycles());
  // ...and the hosted function is fully restored.
  EXPECT_TRUE(o.final_image_exact);

  // MTTD/MTTR remain observable over the bus after the run.
  using R = soc::ServiceRegs;
  EXPECT_GT(w.soc.cpu().load32_uncached(MemoryMap::kServiceRegs.base +
                                        R::kScrubMeanMttd),
            0u);
}

TEST(ScrubDemo, SameSeedReplaysIdenticalUpsetAndRepairHistory) {
  ScrubWorld w1(0xBEEF), w2(0xBEEF);
  const DemoOutcome a = run_demo(w1, 6);
  const DemoOutcome b = run_demo(w2, 6);

  EXPECT_EQ(a.final_cycle, b.final_cycle);
  EXPECT_EQ(a.landed, b.landed);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (usize i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].fa, b.events[i].fa) << i;
    EXPECT_EQ(a.events[i].word, b.events[i].word) << i;
    EXPECT_EQ(a.events[i].bit, b.events[i].bit) << i;
    EXPECT_EQ(a.events[i].landed, b.events[i].landed) << i;
  }
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (usize i = 0; i < a.journal.size(); ++i) {
    EXPECT_TRUE(a.journal[i] == b.journal[i]) << i;
  }
}

TEST(ScrubDemo, DifferentSeedsDiverge) {
  ScrubWorld w1(1), w2(2);
  const DemoOutcome a = run_demo(w1, 4);
  const DemoOutcome b = run_demo(w2, 4);
  EXPECT_TRUE(a.final_cycle != b.final_cycle || a.events.size() != b.events.size());
}

}  // namespace
}  // namespace rvcap
