#include <gtest/gtest.h>

#include "irq/clint.hpp"
#include "irq/plic.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using irq::Clint;
using irq::IrqLine;
using irq::Plic;

// Read a 32-bit lite register and wait for the response.
u32 lite_read(sim::Simulator& s, axi::AxiLitePort& p, Addr a) {
  EXPECT_TRUE(p.ar.push(axi::LiteAr{a}));
  EXPECT_TRUE(s.run_until([&] { return p.r.can_pop(); }, 10000));
  return p.r.pop()->data;
}

void lite_write(sim::Simulator& s, axi::AxiLitePort& p, Addr a, u32 v) {
  EXPECT_TRUE(p.aw.push(axi::LiteAw{a}));
  EXPECT_TRUE(p.w.push(axi::LiteW{v, 0xF}));
  EXPECT_TRUE(s.run_until([&] { return p.b.can_pop(); }, 10000));
  p.b.pop();
}

struct ClintFixture : ::testing::Test {
  ClintFixture() : clint("clint") { s.add(&clint); }
  sim::Simulator s;
  Clint clint;
};

TEST_F(ClintFixture, MtimeTicksAt5MHz) {
  s.run_cycles(200);  // 200 core cycles = 10 CLINT ticks
  EXPECT_EQ(clint.mtime(), 10u);
}

TEST_F(ClintFixture, MtimeQuantizationIs200ns) {
  s.run_cycles(19);
  EXPECT_EQ(clint.mtime(), 0u);  // not yet a full 5 MHz period
  s.run_cycles(1);
  EXPECT_EQ(clint.mtime(), 1u);
}

TEST_F(ClintFixture, MtimeReadableOverBus) {
  s.run_cycles(2000);
  const u32 lo = lite_read(s, clint.port(), Clint::kMtimeLo);
  EXPECT_GE(lo, 100u);
  EXPECT_EQ(lite_read(s, clint.port(), Clint::kMtimeHi), 0u);
}

TEST_F(ClintFixture, TimerInterruptFiresAtMtimecmp) {
  lite_write(s, clint.port(), Clint::kMtimecmpLo, 50);
  lite_write(s, clint.port(), Clint::kMtimecmpHi, 0);
  EXPECT_FALSE(clint.timer_irq_pending());
  s.run_cycles(50 * kCyclesPerClintTick + 1);
  EXPECT_TRUE(clint.timer_irq_pending());
}

TEST_F(ClintFixture, SoftwareInterruptViaMsip) {
  EXPECT_FALSE(clint.software_irq_pending());
  lite_write(s, clint.port(), Clint::kMsip, 1);
  EXPECT_TRUE(clint.software_irq_pending());
  lite_write(s, clint.port(), Clint::kMsip, 0);
  EXPECT_FALSE(clint.software_irq_pending());
}

struct PlicFixture : ::testing::Test {
  PlicFixture() : plic("plic", 4) { s.add(&plic); }
  sim::Simulator s;
  Plic plic;
};

TEST_F(PlicFixture, DisabledSourceDoesNotRaiseEip) {
  plic.set_source_level(1, true);
  s.run_cycles(2);
  EXPECT_FALSE(plic.eip());
}

TEST_F(PlicFixture, EnabledSourceRaisesEip) {
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 1);
  plic.set_source_level(1, true);
  s.run_cycles(2);
  EXPECT_TRUE(plic.eip());
}

TEST_F(PlicFixture, ClaimReturnsSourceAndClearsPending) {
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 2);
  plic.set_source_level(2, true);
  s.run_cycles(2);
  EXPECT_EQ(lite_read(s, plic.port(), Plic::kClaimComplete), 2u);
  // In-flight: the still-high level must not re-pend until complete.
  plic.set_source_level(2, false);
  s.run_cycles(2);
  EXPECT_FALSE(plic.eip());
}

TEST_F(PlicFixture, CompleteReArmsGateway) {
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 1);
  plic.set_source_level(1, true);
  s.run_cycles(2);
  EXPECT_EQ(lite_read(s, plic.port(), Plic::kClaimComplete), 1u);
  s.run_cycles(2);
  EXPECT_FALSE(plic.eip()) << "claimed source must stay masked";
  lite_write(s, plic.port(), Plic::kClaimComplete, 1);  // complete
  s.run_cycles(2);
  EXPECT_TRUE(plic.eip()) << "level still high: re-pend after complete";
}

TEST_F(PlicFixture, HigherPriorityWinsClaim) {
  lite_write(s, plic.port(), Plic::kEnableBase, (1u << 1) | (1u << 3));
  lite_write(s, plic.port(), Plic::kPriorityBase + 4 * 1, 1);
  lite_write(s, plic.port(), Plic::kPriorityBase + 4 * 3, 5);
  plic.set_source_level(1, true);
  plic.set_source_level(3, true);
  s.run_cycles(2);
  EXPECT_EQ(lite_read(s, plic.port(), Plic::kClaimComplete), 3u);
}

TEST_F(PlicFixture, ThresholdMasksLowPriority) {
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 1);
  lite_write(s, plic.port(), Plic::kPriorityBase + 4, 2);
  lite_write(s, plic.port(), Plic::kThreshold, 3);
  plic.set_source_level(1, true);
  s.run_cycles(2);
  EXPECT_FALSE(plic.eip());
  lite_write(s, plic.port(), Plic::kThreshold, 0);
  EXPECT_TRUE(plic.eip());
}

TEST_F(PlicFixture, PendingRegisterReflectsGateways) {
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 2);
  plic.set_source_level(2, true);
  s.run_cycles(2);
  EXPECT_EQ(lite_read(s, plic.port(), Plic::kPendingBase) & (1u << 2),
            1u << 2);
}

TEST_F(PlicFixture, IrqLineHandleDrivesSource) {
  IrqLine line(&plic, 1);
  lite_write(s, plic.port(), Plic::kEnableBase, 1u << 1);
  line.set(true);
  s.run_cycles(2);
  EXPECT_TRUE(plic.eip());
  EXPECT_TRUE(line.connected());
  EXPECT_EQ(line.source(), 1u);
  IrqLine unconnected;
  unconnected.set(true);  // must be a harmless no-op
  EXPECT_FALSE(unconnected.connected());
}

}  // namespace
}  // namespace rvcap
