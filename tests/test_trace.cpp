// Observability layer (DESIGN.md §11): TraceSink semantics, histogram
// edge cases, golden-trace determinism, the PerfRegs MMIO window, and
// the Chrome-trace / stats exporters.
//
// The golden-trace tests pin down the event stream of a fixed Sobel
// reconfiguration: a change in what the SoC emits (new event point,
// reordered phase, shifted cycle) shows up as a digest mismatch here
// before it shows up as a confusing Perfetto diff.
#include <gtest/gtest.h>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "driver/rvcap_driver.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "soc/ariane_soc.hpp"
#include "soc/perf_regs.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using obs::EventKind;
using obs::Histogram;
using obs::TraceSink;
using sim::Simulator;
using soc::ArianeSoc;
using soc::SocConfig;

// ---------------------------------------------------------------------
// TraceSink mechanics
// ---------------------------------------------------------------------

TEST(TraceSink, DisabledByDefaultAndEmitIsANoOp) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  const u64 d0 = sink.digest();
  sink.emit(EventKind::kIcapWord, 0, 100, 42);
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_EQ(sink.digest(), d0);
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSink, InternDeduplicatesSourceNames) {
  TraceSink sink;
  const u16 a = sink.intern("rvcap.dma");
  const u16 b = sink.intern("icap");
  const u16 c = sink.intern("rvcap.dma");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.source_name(a), "rvcap.dma");
  EXPECT_EQ(sink.source_name(0xFFFF), "?");
}

TEST(TraceSink, DigestCoversEveryFieldAndSurvivesEviction) {
  TraceSink sink(/*capacity=*/4);
  sink.set_enabled(true);
  const u16 src = sink.intern("s");
  for (u64 i = 0; i < 10; ++i) {
    sink.emit(EventKind::kAxisBeat, src, i, i, 0, 0);
  }
  // Ring holds the newest 4; totals and digest see all 10.
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.total_events(), 10u);
  EXPECT_EQ(sink.dropped_events(), 6u);
  EXPECT_EQ(sink.events().front().ts, 6u);

  // An identical replay reproduces the digest; a one-bit payload
  // change anywhere in the stream does not.
  TraceSink replay(4);
  replay.set_enabled(true);
  const u16 rsrc = replay.intern("s");
  for (u64 i = 0; i < 10; ++i) {
    replay.emit(EventKind::kAxisBeat, rsrc, i, i, 0, 0);
  }
  EXPECT_EQ(replay.digest(), sink.digest());

  TraceSink skewed(4);
  skewed.set_enabled(true);
  const u16 ssrc = skewed.intern("s");
  for (u64 i = 0; i < 10; ++i) {
    skewed.emit(EventKind::kAxisBeat, ssrc, i, i == 3 ? i ^ 1 : i, 0, 0);
  }
  EXPECT_NE(skewed.digest(), sink.digest());
}

TEST(TraceSink, ClearResetsStreamState) {
  TraceSink sink;
  sink.set_enabled(true);
  const u64 d0 = sink.digest();
  sink.emit(EventKind::kIcapWord, 0, 1, 2);
  EXPECT_NE(sink.digest(), d0);
  sink.clear();
  EXPECT_EQ(sink.digest(), d0);
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_TRUE(sink.enabled()) << "clear() drops events, not the enable";
}

// ---------------------------------------------------------------------
// Histogram edge cases
// ---------------------------------------------------------------------

TEST(Histogram, ZeroWidthSampleLandsInBucketZero) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index((u64{1} << 31)), 32u);
  EXPECT_EQ(Histogram::bucket_index((u64{1} << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(Histogram::kBuckets - 1), ~u64{0});
}

TEST(Histogram, SamplesAtOrAbove2To32Saturate) {
  Histogram h;
  h.record(u64{1} << 32);
  h.record(u64{1} << 40);
  h.record(~u64{0});
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 3u);
  EXPECT_EQ(h.max(), ~u64{0});
  // The percentile clamps to the exact max, not the bucket bound.
  EXPECT_EQ(h.percentile(1.0), ~u64{0});
}

TEST(Histogram, MergeCombinesBucketsAndExactStats) {
  Histogram a;
  a.record(0);
  a.record(5);
  Histogram b;
  b.record(100);
  b.record(u64{1} << 33);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 105u + (u64{1} << 33));
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), u64{1} << 33);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(3), 1u);   // 5 -> [4,8)
  EXPECT_EQ(a.bucket(7), 1u);   // 100 -> [64,128)
  EXPECT_EQ(a.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, PercentileOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0u);
  EXPECT_EQ(h.min(), 0u);
}

// ---------------------------------------------------------------------
// Golden trace: a fixed reconfiguration has one event stream
// ---------------------------------------------------------------------

struct TracedRun {
  explicit TracedRun(Simulator::Mode mode = Simulator::Mode::kScheduled)
      : soc(make_config(mode)), drv(soc.cpu(), soc.plic()) {
    // A full reconfiguration emits ~250k events; keep them all so
    // the golden assertions can see the earliest DMA/service records.
    soc.sim().obs().sink().set_capacity(usize{1} << 19);
    soc.sim().obs().sink().set_enabled(true);
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
    const Addr staging = soc::MemoryMap::kPbitStagingBase;
    soc.ddr().poke(staging, pbit);
    module = {"", accel::kRmIdSobel, staging, static_cast<u32>(pbit.size())};
  }

  static SocConfig make_config(Simulator::Mode mode) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    return cfg;
  }

  Status reconfigure(DmaMode mode = DmaMode::kInterrupt) {
    return drv.init_reconfig_process(module, mode);
  }

  const TraceSink& sink() { return soc.sim().obs().sink(); }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::ReconfigModule module;
};

TEST(GoldenTrace, ReconfigurationStreamIsDeterministic) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "built with RVCAP_NO_TRACE";
  TracedRun a;
  TracedRun b;
  ASSERT_TRUE(ok(a.reconfigure()));
  ASSERT_TRUE(ok(b.reconfigure()));
  EXPECT_GT(a.sink().total_events(), 0u);
  EXPECT_EQ(a.sink().total_events(), b.sink().total_events());
  EXPECT_EQ(a.sink().digest(), b.sink().digest());
}

TEST(GoldenTrace, ReconfigurationEmitsAllTracks) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "built with RVCAP_NO_TRACE";
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure(DmaMode::kInterrupt)));
  const TraceSink& sink = run.sink();

  // The DMA descriptor lifecycle: at least one MM2S job started and
  // completed, with a positive latency and byte count.
  const obs::TraceEvent* start =
      test::expect_event(sink, EventKind::kDmaMm2sStart, "rvcap.dma");
  const obs::TraceEvent* done =
      test::expect_event(sink, EventKind::kDmaMm2sDone, "rvcap.dma");
  ASSERT_NE(start, nullptr);
  ASSERT_NE(done, nullptr);
  EXPECT_GT(done->a0, 0u);  // bytes
  EXPECT_GT(done->a2, 0u);  // latency cycles
  EXPECT_LE(done->a2, done->ts);

  // ICAP consumed words; the IRQ path raised, was claimed, completed.
  EXPECT_GT(test::count_events(sink, EventKind::kIcapWord), 0u);
  EXPECT_GT(test::count_events(sink, EventKind::kIrqRaise), 0u);
  EXPECT_GT(test::count_events(sink, EventKind::kIrqClaim), 0u);
  EXPECT_GT(test::count_events(sink, EventKind::kIrqComplete), 0u);

  // Causality inside the retained ring: a raise precedes any claim.
  test::expect_ordered(sink, EventKind::kIrqRaise, EventKind::kIrqClaim);
}

TEST(GoldenTrace, EventsBetweenSlicesTheStream) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "built with RVCAP_NO_TRACE";
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure()));
  const TraceSink& sink = run.sink();
  ASSERT_FALSE(sink.events().empty());
  const Cycles first = sink.events().front().ts;
  const Cycles last = sink.events().back().ts;
  const auto all = test::events_between(sink, first, last);
  EXPECT_EQ(all.size(), sink.events().size());
  EXPECT_TRUE(test::events_between(sink, last + 1, last + 2).empty());
}

// ---------------------------------------------------------------------
// PerfRegs window: firmware-style counter access over the bus
// ---------------------------------------------------------------------

TEST(PerfRegs, CountAndStableSimIndices) {
  TracedRun run;
  const u32 n = run.drv.perf_count();
  ASSERT_GT(n, 0u);
  EXPECT_EQ(n, run.soc.sim().obs().counters().counter_count());
  // The Simulator registers its own counters first: index 0 is
  // sim.ticks_issued in every SoC.
  EXPECT_EQ(run.soc.sim().obs().counters().counter_name(0),
            "sim.ticks_issued");
}

TEST(PerfRegs, ReadsMatchTheRegistry) {
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure()));
  const obs::CounterRegistry& reg = run.soc.sim().obs().counters();
  const usize idx = reg.counter_index("icap.words");
  ASSERT_LT(idx, reg.counter_count());
  const u64 expected = reg.counter_value(idx);
  EXPECT_GT(expected, 0u);
  // The ICAP is quiet now, so the MMIO round trips cannot move it.
  run.drv.perf_select(static_cast<u32>(idx));
  EXPECT_EQ(run.drv.perf_read(), expected);
}

TEST(PerfRegs, SelectWrapsModuloCount) {
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure()));
  const obs::CounterRegistry& reg = run.soc.sim().obs().counters();
  const u32 n = run.drv.perf_count();
  const u32 idx =
      static_cast<u32>(reg.counter_index("icap.words"));
  ASSERT_LT(idx, n);
  run.drv.perf_select(idx);
  const u64 direct = run.drv.perf_read();
  // A free-running scan index k*count + idx lands on the same counter.
  run.drv.perf_select(2 * n + idx);
  EXPECT_EQ(run.drv.perf_read(), direct);
  run.drv.perf_select(n + idx);
  EXPECT_EQ(run.drv.perf_read(), direct);
}

u32 lite_read(sim::Simulator& s, axi::AxiLitePort& p, Addr a) {
  EXPECT_TRUE(p.ar.push(axi::LiteAr{a}));
  EXPECT_TRUE(s.run_until([&] { return p.r.can_pop(); }, 10000));
  return p.r.pop()->data;
}

void lite_write(sim::Simulator& s, axi::AxiLitePort& p, Addr a, u32 v) {
  EXPECT_TRUE(p.aw.push(axi::LiteAw{a}));
  EXPECT_TRUE(p.w.push(axi::LiteW{v, 0xF}));
  EXPECT_TRUE(s.run_until([&] { return p.b.can_pop(); }, 10000));
  p.b.pop();
}

TEST(PerfRegs, ValueLatchIsTearFree) {
  // The LO read latches the full 64-bit value; the HI read returns the
  // latched half even if the counter moved in between.
  soc::PerfRegs regs("perf");
  obs::CounterRegistry reg;
  obs::Counter* c = reg.counter("x");
  regs.bind(&reg);
  sim::Simulator s;
  s.add(&regs);
  c->add(0x1'2345'6789ULL);
  lite_write(s, regs.port(), soc::PerfRegs::kSelect, 0);
  const u64 lo = lite_read(s, regs.port(), soc::PerfRegs::kValueLo);
  c->add(~u64{0} / 2);  // counter races ahead between LO and HI
  const u64 hi = lite_read(s, regs.port(), soc::PerfRegs::kValueHi);
  EXPECT_EQ((hi << 32) | lo, 0x1'2345'6789ULL);
}

TEST(PerfRegs, UnboundWindowReadsZero) {
  soc::PerfRegs regs("perf");
  sim::Simulator s;
  s.add(&regs);
  EXPECT_EQ(lite_read(s, regs.port(), soc::PerfRegs::kCount), 0u);
  EXPECT_EQ(lite_read(s, regs.port(), soc::PerfRegs::kValueLo), 0u);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST(Exporter, ChromeTraceJsonHasTracksAndSpans) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "built with RVCAP_NO_TRACE";
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure()));
  const std::string json = obs::chrome_trace_json(run.soc.sim().obs());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Track (process) metadata for the busy tracks of a reconfiguration.
  for (const char* track : {"ICAP", "DMA", "AXI Bus", "IRQ"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + track),
              std::string::npos)
        << track;
  }
  // Completed DMA jobs export as complete-span events with durations.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("dma_mm2s_done"), std::string::npos);
}

TEST(Exporter, StatsTextListsCountersAndHistograms) {
  TracedRun run;
  ASSERT_TRUE(ok(run.reconfigure()));
  const std::string text = obs::stats_text(run.soc.sim().obs());
  EXPECT_NE(text.find("sim.ticks_issued"), std::string::npos);
  EXPECT_NE(text.find("icap.words"), std::string::npos);
  EXPECT_NE(text.find("rvcap.dma.mm2s_job_cycles"), std::string::npos);
}

}  // namespace
}  // namespace rvcap
