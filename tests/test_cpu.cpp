// CPU software-execution model: the documented Ariane timing behaviour
// the HWICAP measurements depend on.
#include <gtest/gtest.h>

#include "cpu/cpu.hpp"
#include "mem/sram.hpp"
#include "obs/link_probe.hpp"
#include "sim/simulator.hpp"
#include "soc/ariane_soc.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using cpu::CpuContext;
using cpu::CpuTimingModel;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

struct CpuFixture : ::testing::Test {
  CpuFixture() : cpu(s), mem("mem", 65536), xbar("xbar") {
    xbar.add_manager(&cpu.port());
    xbar.add_subordinate(axi::AddrRange{0, 65536}, &mem.port());
    s.add(&xbar);
    s.add(&mem);
  }
  sim::Simulator s;
  CpuContext cpu;
  mem::AxiSram mem;
  axi::AxiCrossbar xbar;
};

TEST_F(CpuFixture, UncachedAccessCostsPipelineDrain) {
  const CpuTimingModel tm;
  const Cycles t0 = s.now();
  cpu.store32_uncached(0x100, 7);
  const Cycles store_cost = s.now() - t0;
  EXPECT_GE(store_cost, tm.uncached_access_core_cycles);
  // Core drain + a short bus round trip, but no runaway.
  EXPECT_LE(store_cost, tm.uncached_access_core_cycles + 24);

  const Cycles t1 = s.now();
  cpu.store64(0x108, 9);  // cached store: far cheaper on the core side
  const Cycles cached_cost = s.now() - t1;
  EXPECT_LT(cached_cost, store_cost);
}

TEST_F(CpuFixture, Lane32BitSemantics) {
  cpu.store64(0x200, 0);
  cpu.store32_uncached(0x200, 0x11111111);
  cpu.store32_uncached(0x204, 0x22222222);
  EXPECT_EQ(cpu.load32_uncached(0x200), 0x11111111u);
  EXPECT_EQ(cpu.load32_uncached(0x204), 0x22222222u);
  EXPECT_EQ(cpu.load64(0x200), 0x2222222211111111ULL);
}

TEST_F(CpuFixture, ByteAccess) {
  cpu.store64(0x300, 0);
  cpu.store8(0x303, 0xAB);
  EXPECT_EQ(cpu.load8(0x303), 0xAB);
  EXPECT_EQ(cpu.load64(0x300), 0xAB000000ULL);
}

TEST_F(CpuFixture, SpendAdvancesTimeExactly) {
  const CpuTimingModel tm;
  const Cycles t0 = s.now();
  cpu.spend_instructions(100);
  EXPECT_EQ(s.now() - t0, 100 * tm.cycles_per_instruction);
  const Cycles t1 = s.now();
  cpu.spend_loop_overhead();
  EXPECT_EQ(s.now() - t1, tm.loop_overhead_cycles);
  const Cycles t2 = s.now();
  cpu.spend_call_overhead();
  EXPECT_EQ(s.now() - t2, tm.call_overhead_cycles);
}

TEST_F(CpuFixture, BufferTransfersAmortizeToOneCyclePerBeat) {
  std::vector<u8> data(4096);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  const Cycles t0 = s.now();
  cpu.write_buffer(0x1000, data);
  const Cycles write_cost = s.now() - t0;
  // 512 beats; cached streaming should land near 2-4 cycles/beat
  // (burst setup + response amortized), far from 512 blocking stores.
  EXPECT_LT(write_cost, 512 * 8);
  EXPECT_GE(write_cost, 512);

  std::vector<u8> back(4096);
  const Cycles t1 = s.now();
  cpu.read_buffer(0x1000, back);
  EXPECT_LT(s.now() - t1, 512 * 8);
  EXPECT_EQ(back, data);
}

TEST_F(CpuFixture, BusCountersTrack) {
  const u64 r0 = cpu.bus_reads(), w0 = cpu.bus_writes();
  cpu.store64(0x10, 1);
  (void)cpu.load64(0x10);
  EXPECT_EQ(cpu.bus_writes(), w0 + 1);
  EXPECT_EQ(cpu.bus_reads(), r0 + 1);
}

TEST(CpuTimingConstants, MatchTheDocumentedCalibration) {
  const CpuTimingModel tm;
  // These constants reproduce §IV-B; changing them silently would skew
  // the paper-facing numbers, so pin them here.
  EXPECT_EQ(tm.uncached_access_core_cycles, 36u);
  EXPECT_EQ(tm.loop_overhead_cycles, 44u);
  EXPECT_EQ(tm.irq_entry_cycles, 40u);
}

TEST(CpuIrqPath, WaitForIrqClaimsAndCompletes) {
  ArianeSoc soc((SocConfig()));
  // Enable SPI source, then raise it manually.
  soc.cpu().store32_uncached(
      MemoryMap::kPlic.base + irq::Plic::kEnableBase,
      1u << soc::IrqMap::kSpi);
  soc.plic().set_source_level(soc::IrqMap::kSpi, true);
  const u32 src = soc.cpu().wait_for_irq(
      soc.plic(), MemoryMap::kPlic.base + irq::Plic::kClaimComplete, 10000);
  EXPECT_EQ(src, soc::IrqMap::kSpi);
  soc.plic().set_source_level(soc::IrqMap::kSpi, false);
  soc.cpu().complete_irq(
      MemoryMap::kPlic.base + irq::Plic::kClaimComplete, src);
  soc.sim().run_cycles(4);
  EXPECT_FALSE(soc.plic().eip());
}

TEST(CpuIrqPath, WaitForIrqTimesOut) {
  ArianeSoc soc((SocConfig()));
  const u32 src = soc.cpu().wait_for_irq(
      soc.plic(), MemoryMap::kPlic.base + irq::Plic::kClaimComplete, 500);
  EXPECT_EQ(src, 0u);
}

TEST(ProbeTest, MeasuresLinkUtilization) {
  sim::Simulator s;
  sim::Fifo<int> link(4);
  obs::LinkProbe<int> probe("p", link);
  s.add(&probe);
  // 10 cycles: transfer on even cycles only.
  for (int c = 0; c < 10; ++c) {
    if (c % 2 == 0) {
      link.push(c);
      link.pop();
    }
    s.step();
  }
  EXPECT_EQ(probe.transfers(), 5u);
  EXPECT_NEAR(probe.utilization(), 0.5, 0.01);
  EXPECT_NEAR(probe.rate(), 0.5, 0.01);
  probe.reset();
  EXPECT_EQ(probe.window_cycles(), 0u);
  EXPECT_EQ(probe.transfers(), 0u);
}

}  // namespace
}  // namespace rvcap
