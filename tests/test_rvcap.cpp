// RV-CAP controller components: DMA engine, RP control, AXIS2ICAP, and
// the full controller datapath (DDR -> DMA -> switch -> ICAP).
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "common/bytes.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "hwicap/hwicap.hpp"
#include "mem/ddr.hpp"
#include "rvcap/controller.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using fabric::case_study_partition;
using fabric::DeviceGeometry;
using rvcap_ctrl::AxiDma;
using rvcap_ctrl::Axis2Icap;
using rvcap_ctrl::RvCapController;
using test::bfm_write64;

// ---------------------------------------------------------------------------
// DMA engine standalone (directly driving its lite port)
// ---------------------------------------------------------------------------

struct DmaFixture : ::testing::Test {
  DmaFixture() : ddr("ddr"), dma("dma"), plic("plic", 2) {
    xbar.emplace("memxbar");
    xbar->add_manager(&dma.mem_port());
    xbar->add_subordinate(axi::AddrRange{0, 1 << 24}, &ddr.port());
    s.add(&*xbar);
    s.add(&ddr);
    s.add(&dma);
    s.add(&plic);
    dma.set_mm2s_irq(irq::IrqLine(&plic, 1));
    dma.set_s2mm_irq(irq::IrqLine(&plic, 2));
  }

  void reg_write(Addr a, u32 v) {
    dma.port().aw.push(axi::LiteAw{a});
    dma.port().w.push(axi::LiteW{v, 0xF});
    ASSERT_TRUE(s.run_until([&] { return dma.port().b.can_pop(); }, 10000));
    dma.port().b.pop();
  }
  u32 reg_read(Addr a) {
    dma.port().ar.push(axi::LiteAr{a});
    EXPECT_TRUE(s.run_until([&] { return dma.port().r.can_pop(); }, 10000));
    return dma.port().r.pop()->data;
  }

  sim::Simulator s;
  mem::DdrController ddr;
  AxiDma dma;
  irq::Plic plic;
  std::optional<axi::AxiCrossbar> xbar;
};

TEST_F(DmaFixture, Mm2sStreamsBufferFromDdr) {
  for (u32 i = 0; i < 64; ++i) ddr.poke64(0x1000 + 8 * i, 0xAB00 + i);
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  reg_write(AxiDma::kMm2sSa, 0x1000);
  reg_write(AxiDma::kMm2sLength, 64 * 8);

  std::vector<u64> got;
  bool saw_last = false;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (dma.mm2s_stream().can_pop()) {
          const axi::AxisBeat b = *dma.mm2s_stream().pop();
          got.push_back(b.data);
          saw_last = b.last;
        }
        return got.size() == 64;
      },
      100000));
  EXPECT_TRUE(saw_last);
  for (u32 i = 0; i < 64; ++i) EXPECT_EQ(got[i], 0xAB00 + i);
  EXPECT_TRUE(reg_read(AxiDma::kMm2sSr) & AxiDma::kSrIocIrq);
}

TEST_F(DmaFixture, Mm2sRespectsBurstLimit) {
  // 100 beats with max burst 16 -> at least 7 AR bursts; we just check
  // the transfer completes and streams the exact beat count.
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  reg_write(AxiDma::kMm2sSa, 0);
  reg_write(AxiDma::kMm2sLength, 100 * 8);
  u32 beats = 0;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (dma.mm2s_stream().can_pop()) {
          dma.mm2s_stream().pop();
          ++beats;
        }
        return dma.mm2s_idle() && beats == 100;
      },
      100000));
}

TEST_F(DmaFixture, Mm2sLengthIgnoredWhileHalted) {
  ScopedLogLevel quiet(LogLevel::kError);
  reg_write(AxiDma::kMm2sSa, 0x1000);
  reg_write(AxiDma::kMm2sLength, 64);  // CR.RS not set
  s.run_cycles(100);
  EXPECT_TRUE(dma.mm2s_idle());
  EXPECT_TRUE(dma.mm2s_stream().empty());
}

TEST_F(DmaFixture, Mm2sInterruptGatedByIrqEn) {
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrRunStop);  // no IOC_IrqEn
  reg_write(AxiDma::kMm2sSa, 0);
  reg_write(AxiDma::kMm2sLength, 8);
  ASSERT_TRUE(s.run_until(
      [&] {
        while (dma.mm2s_stream().can_pop()) dma.mm2s_stream().pop();
        return dma.mm2s_idle();
      },
      100000));
  s.run_cycles(4);
  EXPECT_FALSE(plic.eip()) << "IRQ must stay low without IOC_IrqEn";

  // Enable and re-run in interrupt ("non-blocking") mode.
  reg_write(AxiDma::kMm2sSr, AxiDma::kSrIocIrq);  // clear sticky bit
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrRunStop | AxiDma::kCrIocIrqEn);
  reg_write(AxiDma::kMm2sLength, 8);
  plic.port().aw.push(axi::LiteAw{irq::Plic::kEnableBase});
  plic.port().w.push(axi::LiteW{1u << 1, 0xF});
  ASSERT_TRUE(s.run_until(
      [&] {
        while (dma.mm2s_stream().can_pop()) dma.mm2s_stream().pop();
        return plic.eip();
      },
      100000));
  // W1C clears the interrupt.
  reg_write(AxiDma::kMm2sSr, AxiDma::kSrIocIrq);
  s.run_cycles(4);
  EXPECT_FALSE((reg_read(AxiDma::kMm2sSr) & AxiDma::kSrIocIrq));
}

TEST_F(DmaFixture, S2mmWritesStreamToDdr) {
  reg_write(AxiDma::kS2mmCr, AxiDma::kCrRunStop);
  reg_write(AxiDma::kS2mmDa, 0x4000);
  reg_write(AxiDma::kS2mmLength, 40 * 8);
  u32 fed = 0;
  ASSERT_TRUE(s.run_until(
      [&] {
        if (fed < 40 &&
            dma.s2mm_stream().push(
                axi::AxisBeat{0xCC00u + fed, 0xFF, fed == 39})) {
          ++fed;
        }
        return dma.s2mm_idle() && fed == 40 &&
               (reg_read(AxiDma::kS2mmSr) & AxiDma::kSrIocIrq);
      },
      200000));
  for (u32 i = 0; i < 40; ++i) {
    EXPECT_EQ(ddr.peek64(0x4000 + 8 * i), 0xCC00u + i) << i;
  }
}

TEST_F(DmaFixture, ResetClearsEngineState) {
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  reg_write(AxiDma::kMm2sSa, 0);
  reg_write(AxiDma::kMm2sLength, 512 * 8);
  s.run_cycles(10);
  reg_write(AxiDma::kMm2sCr, AxiDma::kCrReset);
  EXPECT_TRUE(dma.mm2s_idle());
  EXPECT_TRUE(reg_read(AxiDma::kMm2sSr) & AxiDma::kSrHalted);
}

// ---------------------------------------------------------------------------
// Axis2Icap byte ordering
// ---------------------------------------------------------------------------

TEST(Axis2IcapTest, SplitsBeatIntoTwoBigEndianWords) {
  sim::Simulator s;
  axi::AxisFifo in(4);
  sim::Fifo<u32> out(4);
  Axis2Icap conv("conv", in, out);
  s.add(&conv);
  // DDR bytes AA 99 55 66 | 20 00 00 00 (sync word then NOP, as stored
  // in the little-endian memory).
  in.push(axi::AxisBeat{0x00000020'66559'9AAULL, 0xFF, true});
  s.run_cycles(4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*out.pop(), 0xAA995566u);
  EXPECT_EQ(*out.pop(), 0x20000000u);
}

TEST(Axis2IcapTest, HalfBeatEmitsOneWord) {
  sim::Simulator s;
  axi::AxisFifo in(4);
  sim::Fifo<u32> out(4);
  Axis2Icap conv("conv", in, out);
  s.add(&conv);
  in.push(axi::AxisBeat{0x44332211, 0x0F, true});  // only low half valid
  s.run_cycles(4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out.pop(), 0x11223344u);
  EXPECT_EQ(conv.words_emitted(), 1u);
}

TEST(Axis2IcapTest, EmitsOneWordPerCycle) {
  sim::Simulator s;
  axi::AxisFifo in(16);
  sim::Fifo<u32> out(1024);
  Axis2Icap conv("conv", in, out);
  s.add(&conv);
  for (u32 i = 0; i < 16; ++i) in.push(axi::AxisBeat{i, 0xFF, false});
  const Cycles t0 = s.now();
  ASSERT_TRUE(s.run_until([&] { return out.size() == 32; }, 1000));
  EXPECT_GE(s.now() - t0, 32u);  // one 32-bit word per cycle maximum
}

// ---------------------------------------------------------------------------
// Full controller datapath
// ---------------------------------------------------------------------------

struct ControllerFixture : ::testing::Test {
  static constexpr Addr kDdrBase = 0x8000'0000;

  ControllerFixture()
      : dev(DeviceGeometry::kintex7_325t()),
        rp(case_study_partition(dev)),
        cfg(dev),
        icap("icap", cfg),
        ddr("ddr"),
        ctrl(icap, ddr.port(), axi::AddrRange{kDdrBase, 1u << 30}) {
    handle = cfg.register_partition(rp);
    s.add(&ddr);
    s.add(&icap);
    ctrl.register_components(s);
    main_xbar.emplace("main_xbar");
    main_xbar->add_manager(&cpu_port);
    main_xbar->add_subordinate(axi::AddrRange{0x4100'0000, 0x1000},
                               &ctrl.dma_ctrl_port());
    main_xbar->add_subordinate(axi::AddrRange{0x4200'0000, 0x1000},
                               &ctrl.rp_ctrl_port());
    main_xbar->add_subordinate(axi::AddrRange{kDdrBase, 1u << 30},
                               &ctrl.main_bus_ddr_port());
    s.add(&*main_xbar);
  }

  void mmio32(Addr a, u32 v) {
    const bool high = (a & 4) != 0;
    bfm_write64(s, cpu_port, a, high ? (u64{v} << 32) : u64{v},
                high ? 0xF0 : 0x0F);
  }

  DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory cfg;
  icap::Icap icap;
  mem::DdrController ddr;
  RvCapController ctrl;
  sim::Simulator s;
  axi::AxiPort cpu_port;
  std::optional<axi::AxiCrossbar> main_xbar;
  usize handle = 0;
};

TEST_F(ControllerFixture, ReconfiguresPartitionNear400MBps) {
  const auto pbit =
      bitstream::generate_partial_bitstream(dev, rp, {3, "median"});
  ddr.poke(kDdrBase + 0x10000, pbit);

  // Listing 1 flow: decouple, select ICAP, start DMA.
  mmio32(0x4200'0000 + rvcap_ctrl::RpControl::kControl,
         rvcap_ctrl::RpControl::kCtlDecouple |
             rvcap_ctrl::RpControl::kCtlSelectIcap);
  mmio32(0x4100'0000 + AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  mmio32(0x4100'0000 + AxiDma::kMm2sSa, 0x10000 + kDdrBase);
  mmio32(0x4100'0000 + AxiDma::kMm2sSaMsb, 0);
  const Cycles t0 = s.now();
  mmio32(0x4100'0000 + AxiDma::kMm2sLength,
         static_cast<u32>(pbit.size()));
  ASSERT_TRUE(s.run_until(
      [&] { return icap.words_consumed() == pbit.size() / 4; }, 1'000'000));
  const Cycles dt = s.now() - t0;
  EXPECT_EQ(icap.desync_count(), 1u);

  EXPECT_FALSE(icap.crc_error());
  const auto st = cfg.partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 3u);

  const double mbps = throughput_mbps(pbit.size(), dt);
  // The controller must sit just below the 400 MB/s ICAP ceiling
  // (paper: 398.1 MB/s max, 394 MB/s at this size incl. overheads).
  EXPECT_GT(mbps, 390.0);
  EXPECT_LT(mbps, 400.0);
}

TEST_F(ControllerFixture, AccelerationModeUntouchedByIcapPath) {
  // Without select_ICAP, the DMA stream goes to the RM (and is dropped
  // by the decoupled isolator if decoupled) — ICAP sees nothing.
  mmio32(0x4200'0000 + rvcap_ctrl::RpControl::kControl, 0);  // coupled
  ddr.poke64(kDdrBase, 0x1111);
  mmio32(0x4100'0000 + AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  mmio32(0x4100'0000 + AxiDma::kMm2sSa, static_cast<u32>(kDdrBase));
  mmio32(0x4100'0000 + AxiDma::kMm2sLength, 8);
  s.run_cycles(200);
  EXPECT_EQ(icap.words_consumed(), 0u);
  // The beat ends up at the RM attachment point.
  EXPECT_TRUE(ctrl.rm_input().can_pop());
}

TEST_F(ControllerFixture, DecoupledStreamIsDroppedNotDelivered) {
  mmio32(0x4200'0000 + rvcap_ctrl::RpControl::kControl,
         rvcap_ctrl::RpControl::kCtlDecouple);  // decoupled, accel route
  ddr.poke64(kDdrBase, 0x2222);
  mmio32(0x4100'0000 + AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  mmio32(0x4100'0000 + AxiDma::kMm2sSa, static_cast<u32>(kDdrBase));
  mmio32(0x4100'0000 + AxiDma::kMm2sLength, 8);
  s.run_cycles(300);
  EXPECT_FALSE(ctrl.rm_input().can_pop());
  EXPECT_EQ(ctrl.isolator().dropped_beats(), 1u);
}

TEST_F(ControllerFixture, RpStatusReflectsControl) {
  mmio32(0x4200'0000 + rvcap_ctrl::RpControl::kControl,
         rvcap_ctrl::RpControl::kCtlDecouple);
  EXPECT_TRUE(ctrl.rp_control().decoupled());
  EXPECT_FALSE(ctrl.rp_control().icap_selected());
  mmio32(0x4200'0000 + rvcap_ctrl::RpControl::kControl,
         rvcap_ctrl::RpControl::kCtlSelectIcap);
  EXPECT_FALSE(ctrl.rp_control().decoupled());
  EXPECT_TRUE(ctrl.rp_control().icap_selected());
}

// ---------------------------------------------------------------------------
// AXI_HWICAP baseline
// ---------------------------------------------------------------------------

struct HwicapFixture : ::testing::Test {
  HwicapFixture()
      : dev(DeviceGeometry::kintex7_325t()),
        rp(case_study_partition(dev)),
        cfg(dev),
        icap("icap", cfg),
        hw("hwicap", icap, 1024) {
    handle = cfg.register_partition(rp);
    s.add(&icap);
    s.add(&hw);
  }

  void reg_write(Addr a, u32 v) {
    hw.port().aw.push(axi::LiteAw{a});
    hw.port().w.push(axi::LiteW{v, 0xF});
    ASSERT_TRUE(s.run_until([&] { return hw.port().b.can_pop(); }, 100000));
    hw.port().b.pop();
  }
  u32 reg_read(Addr a) {
    hw.port().ar.push(axi::LiteAr{a});
    EXPECT_TRUE(s.run_until([&] { return hw.port().r.can_pop(); }, 100000));
    return hw.port().r.pop()->data;
  }

  DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory cfg;
  icap::Icap icap;
  hwicap::HwIcap hw;
  sim::Simulator s;
  usize handle = 0;
};

TEST_F(HwicapFixture, VacancyTracksFifoDepth) {
  EXPECT_EQ(reg_read(hwicap::HwIcap::kWfv), 1024u);
  reg_write(hwicap::HwIcap::kWf, 0x12345678);
  EXPECT_EQ(reg_read(hwicap::HwIcap::kWfv), 1023u);
}

TEST_F(HwicapFixture, CrWriteDrainsFifoToIcap) {
  reg_write(hwicap::HwIcap::kWf, bitstream::kSyncWord);
  reg_write(hwicap::HwIcap::kWf, bitstream::kNop);
  reg_write(hwicap::HwIcap::kCr, hwicap::HwIcap::kCrWrite);
  ASSERT_TRUE(s.run_until(
      [&] { return reg_read(hwicap::HwIcap::kSr) & hwicap::HwIcap::kSrDone; },
      100000));
  ASSERT_TRUE(s.run_until_idle(1000));  // let the ICAP drain its port
  EXPECT_EQ(icap.words_consumed(), 2u);
  EXPECT_TRUE(icap.synced());
}

TEST_F(HwicapFixture, FullBitstreamLoadsThroughKeyhole) {
  const auto pbit =
      bitstream::generate_partial_bitstream(dev, rp, {7, "sobel"});
  // Chunked fill-and-flush exactly like Listing 2.
  usize i = 0;
  while (i < pbit.size()) {
    u32 vacancy = reg_read(hwicap::HwIcap::kWfv);
    while (vacancy > 0 && i < pbit.size()) {
      reg_write(hwicap::HwIcap::kWf,
                load_be32(std::span<const u8>(pbit).subspan(i, 4)));
      i += 4;
      --vacancy;
    }
    reg_write(hwicap::HwIcap::kCr, hwicap::HwIcap::kCrWrite);
    ASSERT_TRUE(s.run_until(
        [&] {
          return reg_read(hwicap::HwIcap::kSr) & hwicap::HwIcap::kSrDone;
        },
        1'000'000));
  }
  EXPECT_FALSE(icap.crc_error());
  const auto st = cfg.partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 7u);
}

TEST_F(HwicapFixture, SwResetClearsFifo) {
  reg_write(hwicap::HwIcap::kWf, 1);
  reg_write(hwicap::HwIcap::kWf, 2);
  reg_write(hwicap::HwIcap::kCr, hwicap::HwIcap::kCrSwReset);
  EXPECT_EQ(reg_read(hwicap::HwIcap::kWfv), 1024u);
  EXPECT_EQ(icap.words_consumed(), 0u);
}

TEST_F(HwicapFixture, ResizedFifoDepthIsConfigurable) {
  hwicap::HwIcap small("hw64", icap, 64);  // vendor default
  EXPECT_EQ(small.write_fifo_depth(), 64u);
  EXPECT_EQ(hw.write_fifo_depth(), 1024u);  // paper's resized FIFO
}

}  // namespace
}  // namespace rvcap
