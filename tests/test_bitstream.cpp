// Bitstream writer/parser/generator and the ICAP primitive.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/writer.hpp"
#include "common/bytes.hpp"
#include "common/log.hpp"
#include "fabric/pbit_layout.hpp"
#include "icap/icap.hpp"
#include "sim/simulator.hpp"

namespace rvcap {
namespace {

using bitstream::BitstreamWriter;
using bitstream::FrameFill;
using bitstream::generate_partial_bitstream;
using bitstream::ParsedBitstream;
using bitstream::parse_bitstream;
using bitstream::RmDescriptor;
using fabric::case_study_partition;
using fabric::DeviceGeometry;
using fabric::kFrameWords;
using fabric::Partition;

struct BitstreamFixture : ::testing::Test {
  BitstreamFixture()
      : dev(DeviceGeometry::kintex7_325t()), rp(case_study_partition(dev)) {}
  DeviceGeometry dev;
  Partition rp;
};

TEST_F(BitstreamFixture, GeneratedSizeMatchesPaper) {
  const auto pbit = generate_partial_bitstream(dev, rp, {1, "sobel"});
  EXPECT_EQ(pbit.size(), 650892u);
}

TEST_F(BitstreamFixture, ParsesOwnOutput) {
  const auto pbit = generate_partial_bitstream(dev, rp, {1, "sobel"});
  ParsedBitstream parsed;
  ASSERT_EQ(parse_bitstream(pbit, &parsed), Status::kOk);
  EXPECT_TRUE(parsed.saw_sync);
  EXPECT_TRUE(parsed.saw_desync);
  EXPECT_TRUE(parsed.crc_ok);
  EXPECT_EQ(parsed.idcode, bitstream::kIdCode);
  ASSERT_EQ(parsed.sections.size(), 1u);
  EXPECT_EQ(parsed.sections[0].frame_count, 805u);
  EXPECT_EQ(parsed.payload_words, 805u * kFrameWords);
}

TEST_F(BitstreamFixture, MultiRangePartitionGetsMultipleSections) {
  const Partition p("multi", {{0, 2}, {0, 3}, {0, 10}, {0, 11}});
  const auto pbit = generate_partial_bitstream(dev, p, {2, "x"});
  ParsedBitstream parsed;
  ASSERT_EQ(parse_bitstream(pbit, &parsed), Status::kOk);
  EXPECT_EQ(parsed.sections.size(), 2u);
  EXPECT_EQ(pbit.size(), p.pbit_bytes(dev));
  EXPECT_EQ(fabric::count_ranges(p), 2u);
}

TEST_F(BitstreamFixture, CorruptionBreaksCrc) {
  auto pbit = generate_partial_bitstream(dev, rp, {1, "sobel"});
  pbit[pbit.size() / 2] ^= 0x10;  // flip one payload bit
  ParsedBitstream parsed;
  ASSERT_EQ(parse_bitstream(pbit, &parsed), Status::kOk);
  EXPECT_FALSE(parsed.crc_ok);
}

TEST_F(BitstreamFixture, TruncationIsProtocolError) {
  auto pbit = generate_partial_bitstream(dev, rp, {1, "sobel"});
  pbit.resize(pbit.size() / 2);
  ParsedBitstream parsed;
  EXPECT_EQ(parse_bitstream(pbit, &parsed), Status::kProtocolError);
}

TEST_F(BitstreamFixture, UnalignedInputRejected) {
  ParsedBitstream parsed;
  const u8 junk[] = {1, 2, 3};
  EXPECT_EQ(parse_bitstream(junk, &parsed), Status::kProtocolError);
}

TEST_F(BitstreamFixture, SparseFillIsMostlyZero) {
  const auto dense = generate_partial_bitstream(dev, rp, {1, "a"},
                                                FrameFill::kHashed);
  const auto sparse = generate_partial_bitstream(dev, rp, {1, "a"},
                                                 FrameFill::kSparse);
  EXPECT_EQ(dense.size(), sparse.size());
  const auto zeros = [](std::span<const u8> v) {
    usize n = 0;
    for (u8 b : v) n += (b == 0);
    return n;
  };
  EXPECT_GT(zeros(sparse), zeros(dense) * 4);
}

TEST_F(BitstreamFixture, DifferentModulesProduceDifferentPayloads) {
  const auto a = generate_partial_bitstream(dev, rp, {1, "a"});
  const auto b = generate_partial_bitstream(dev, rp, {2, "b"});
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);
}

TEST(ConfigCrcTest, ResetAndDeterminism) {
  bitstream::ConfigCrc a, b;
  a.update(2, 0x1234);
  b.update(2, 0x1234);
  EXPECT_EQ(a.value(), b.value());
  a.update(2, 0x9999);
  EXPECT_NE(a.value(), b.value());
  a.reset();
  EXPECT_EQ(a.value(), 0u);
}

TEST(ConfigCrcTest, RegisterAddressMatters) {
  bitstream::ConfigCrc a, b;
  a.update(1, 0xABCD);
  b.update(2, 0xABCD);
  EXPECT_NE(a.value(), b.value());
}

TEST(PacketCodec, Type1RoundTrip) {
  using namespace rvcap::bitstream;
  const u32 w = type1(PacketOp::kWrite, ConfigReg::kFar, 1);
  const PacketHeader h = decode_packet(w);
  EXPECT_EQ(h.type, 1u);
  EXPECT_EQ(h.op, PacketOp::kWrite);
  EXPECT_EQ(h.reg, static_cast<u32>(ConfigReg::kFar));
  EXPECT_EQ(h.count, 1u);
}

TEST(PacketCodec, Type2CarriesLargeCounts) {
  using namespace rvcap::bitstream;
  const u32 w = type2(PacketOp::kWrite, 805 * kFrameWords);
  const PacketHeader h = decode_packet(w);
  EXPECT_EQ(h.type, 2u);
  EXPECT_EQ(h.count, 805u * kFrameWords);
}

TEST(PacketCodec, NopIsNotAPayloadPacket) {
  const auto h = bitstream::decode_packet(bitstream::kNop);
  EXPECT_EQ(h.type, 1u);
  EXPECT_EQ(h.op, bitstream::PacketOp::kNop);
}

// ---------------------------------------------------------------------------
// ICAP primitive
// ---------------------------------------------------------------------------

struct IcapFixture : ::testing::Test {
  IcapFixture()
      : dev(DeviceGeometry::kintex7_325t()),
        rp(case_study_partition(dev)),
        cfg(dev),
        icap("icap", cfg) {
    handle = cfg.register_partition(rp);
    s.add(&icap);
  }

  /// Feed a byte stream into the 32-bit ICAP port with back-pressure.
  void feed(std::span<const u8> bytes) {
    usize i = 0;
    while (i < bytes.size()) {
      if (icap.port().push(load_be32(bytes.subspan(i, 4)))) {
        i += 4;
      }
      s.step();
    }
    ASSERT_TRUE(s.run_until_idle(1'000'000));
  }

  DeviceGeometry dev;
  Partition rp;
  fabric::ConfigMemory cfg;
  icap::Icap icap;
  sim::Simulator s;
  usize handle = 0;
};

TEST_F(IcapFixture, LoadsGeneratedBitstreamAndActivatesRm) {
  const auto pbit = generate_partial_bitstream(dev, rp, {3, "median"});
  feed(pbit);
  EXPECT_FALSE(icap.crc_error());
  EXPECT_FALSE(icap.synced()) << "DESYNC must end the pass";
  EXPECT_EQ(icap.frames_committed(), 805u);
  const auto st = cfg.partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 3u);
}

TEST_F(IcapFixture, ConsumesOneWordPerCycle) {
  const auto pbit = generate_partial_bitstream(dev, rp, {1, "x"});
  const Cycles t0 = s.now();
  feed(pbit);
  const Cycles dt = s.now() - t0;
  const Cycles words = pbit.size() / 4;
  EXPECT_GE(dt, words);        // hard 400 MB/s ceiling
  EXPECT_LE(dt, words + 64);   // feeding adds no real gaps
}

TEST_F(IcapFixture, CorruptPayloadSetsCrcErrorAndBlocksActivation) {
  ScopedLogLevel quiet(LogLevel::kError);
  auto pbit = generate_partial_bitstream(dev, rp, {4, "g"});
  pbit[200 * 1024] ^= 0x01;
  feed(pbit);
  EXPECT_TRUE(icap.crc_error());
  EXPECT_FALSE(cfg.partition_state(handle).loaded);
}

TEST_F(IcapFixture, WrongIdcodeBlocksFrameCommits) {
  ScopedLogLevel quiet(LogLevel::kError);
  const BitstreamWriter writer(0xDEADBEEF);  // wrong device
  BitstreamWriter::Section sec;
  sec.start = rp.base_frame(dev);
  sec.frame_words.assign(kFrameWords, 0x11111111);
  const auto bytes = BitstreamWriter::to_bytes(writer.build({{sec}}));
  feed(bytes);
  EXPECT_TRUE(icap.idcode_mismatch());
  EXPECT_EQ(icap.frames_committed(), 0u);
  icap.clear_errors();
  EXPECT_FALSE(icap.idcode_mismatch());
}

TEST_F(IcapFixture, GarbageBeforeSyncIsIgnored) {
  std::vector<u8> noise(256, 0x77);
  feed(noise);
  EXPECT_FALSE(icap.synced());
  const auto pbit = generate_partial_bitstream(dev, rp, {5, "y"});
  feed(pbit);
  EXPECT_TRUE(cfg.partition_state(handle).loaded);
}

TEST_F(IcapFixture, BackToBackLoadsSwapModules) {
  feed(generate_partial_bitstream(dev, rp, {1, "a"}));
  EXPECT_EQ(cfg.partition_state(handle).rm_id, 1u);
  feed(generate_partial_bitstream(dev, rp, {2, "b"}));
  const auto st = cfg.partition_state(handle);
  EXPECT_EQ(st.rm_id, 2u);
  EXPECT_EQ(st.loads_completed, 2u);
  EXPECT_EQ(icap.desync_count(), 2u);
}

TEST_F(IcapFixture, WordAndFrameCountersTrack) {
  const auto pbit = generate_partial_bitstream(dev, rp, {1, "a"});
  feed(pbit);
  EXPECT_EQ(icap.words_consumed(), pbit.size() / 4);
  EXPECT_EQ(icap.frames_committed(), 805u);
}

}  // namespace
}  // namespace rvcap
