// Full-SoC integration: the paper's driver flows end to end on the
// assembled platform (Fig. 1 + Fig. 2).
#include <gtest/gtest.h>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "driver/console.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/spi_sd.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

namespace rvcap {
namespace {

using accel::FilterKind;
using driver::DmaMode;
using driver::ReconfigModule;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

std::vector<u8> case_pbit(ArianeSoc& soc, u32 rm_id) {
  return bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {rm_id, std::string(to_string(
                                           accel::rm_id_to_kind(rm_id)))});
}

/// Stage a bitstream in DDR via the backdoor (the paper also measures
/// with pre-staged bitstreams; SD loading is timed separately).
ReconfigModule stage(ArianeSoc& soc, u32 rm_id, Addr addr) {
  const auto pbit = case_pbit(soc, rm_id);
  soc.ddr().poke(addr, pbit);
  return ReconfigModule{"", rm_id, addr, static_cast<u32>(pbit.size())};
}

struct RvCapSocFixture : ::testing::Test {
  RvCapSocFixture() : soc(SocConfig{}), drv(soc.cpu(), soc.plic()) {}
  ArianeSoc soc;
  driver::RvCapDriver drv;
};

TEST_F(RvCapSocFixture, ReconfigurationMatchesPaperHeadlineNumbers) {
  const ReconfigModule m = stage(soc, accel::kRmIdMedian, 0x8810'0000);
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  const auto st = soc.config_memory().partition_state(soc.rp0_handle());
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdMedian);

  const auto& t = drv.last_timing();
  // Paper §IV-B: T_d = 18 us, T_r = 1651 us (650892-byte bitstream).
  EXPECT_NEAR(t.decision_us(), 18.0, 3.0);
  EXPECT_NEAR(t.reconfig_us(), 1651.0, 30.0);
  const double mbps = m.pbit_size / t.reconfig_us();
  EXPECT_GT(mbps, 390.0);
  EXPECT_LT(mbps, 400.0);
}

TEST_F(RvCapSocFixture, BlockingAndInterruptModesAgree) {
  const ReconfigModule m = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kBlocking), Status::kOk);
  const double tr_blocking = drv.last_timing().reconfig_us();
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  const double tr_irq = drv.last_timing().reconfig_us();
  // Both bounded by the ICAP; polling costs slightly more CPU but the
  // measured T_r must agree within ~2%.
  EXPECT_NEAR(tr_blocking, tr_irq, tr_irq * 0.02);
}

TEST_F(RvCapSocFixture, ModuleSwapFlow) {
  const ReconfigModule sobel = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  const ReconfigModule median = stage(soc, accel::kRmIdMedian, 0x8820'0000);
  const ReconfigModule gauss = stage(soc, accel::kRmIdGaussian, 0x8830'0000);
  for (const auto* m : {&sobel, &median, &gauss}) {
    ASSERT_EQ(drv.init_reconfig_process(*m, DmaMode::kInterrupt),
              Status::kOk);
    soc.sim().run_cycles(4);  // let the slot pick up the new module
    EXPECT_EQ(soc.rm_slot().active_rm(), m->rm_id);
  }
  EXPECT_EQ(soc.rm_slot().activations(), 3u);
}

TEST_F(RvCapSocFixture, AccelerationModeBitExactVsGolden) {
  // Configure the Sobel RM, then stream a 512x512 image through it.
  const ReconfigModule m = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  const accel::Image img = accel::make_test_image(512, 512, 99);
  soc.ddr().poke(MemoryMap::kImageInBase, img.pixels);

  const u64 t0 = soc.sim().now();
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase,
                                static_cast<u32>(img.pixels.size()),
                                MemoryMap::kImageOutBase,
                                static_cast<u32>(img.pixels.size()),
                                DmaMode::kInterrupt),
            Status::kOk);
  const double tc_us = cycles_to_us(soc.sim().now() - t0);

  std::vector<u8> out(img.pixels.size());
  soc.ddr().peek(MemoryMap::kImageOutBase, out);
  const accel::Image golden = accel::apply_golden(FilterKind::kSobel, img);
  EXPECT_EQ(out, golden.pixels) << "hardware output must be bit-exact";
  // Table IV: Sobel T_c = 588 us.
  EXPECT_NEAR(tc_us, 588.0, 25.0);
}

TEST_F(RvCapSocFixture, ComputeTimesOrderedAcrossFilters) {
  std::map<u32, double> tc;
  const accel::Image img = accel::make_test_image(512, 512, 7);
  soc.ddr().poke(MemoryMap::kImageInBase, img.pixels);
  for (u32 rm : {accel::kRmIdSobel, accel::kRmIdMedian,
                 accel::kRmIdGaussian}) {
    const ReconfigModule m = stage(soc, rm, 0x8810'0000);
    ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
    const u64 t0 = soc.sim().now();
    ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase, 512 * 512,
                                  MemoryMap::kImageOutBase, 512 * 512,
                                  DmaMode::kInterrupt),
              Status::kOk);
    tc[rm] = cycles_to_us(soc.sim().now() - t0);
  }
  // Table IV ordering: Sobel < Median < Gaussian.
  EXPECT_LT(tc[accel::kRmIdSobel], tc[accel::kRmIdMedian]);
  EXPECT_LT(tc[accel::kRmIdMedian], tc[accel::kRmIdGaussian]);
}

TEST_F(RvCapSocFixture, RmRegistersReachActiveModule) {
  const ReconfigModule m = stage(soc, accel::kRmIdGaussian, 0x8810'0000);
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  soc.sim().run_cycles(4);
  EXPECT_EQ(drv.rm_reg_read(3), static_cast<u32>(FilterKind::kGaussian));
  EXPECT_EQ(drv.rm_reg_read(15), accel::kRmIdGaussian);
  drv.rm_reg_write(0, 256);  // width
  drv.rm_reg_write(1, 128);  // height
  EXPECT_EQ(drv.rm_reg_read(0), 256u);
  EXPECT_EQ(drv.rm_reg_read(1), 128u);
}

TEST_F(RvCapSocFixture, CorruptBitstreamDoesNotActivateModule) {
  ScopedLogLevel quiet(LogLevel::kError);
  auto pbit = case_pbit(soc, accel::kRmIdSobel);
  pbit[100'000] ^= 0x40;
  soc.ddr().poke(0x8810'0000, pbit);
  const ReconfigModule m{"", accel::kRmIdSobel, 0x8810'0000,
                         static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  EXPECT_TRUE(soc.icap().crc_error());
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
  soc.sim().run_cycles(4);
  EXPECT_EQ(soc.rm_slot().active_rm(), 0u);
}

TEST_F(RvCapSocFixture, UartConsoleCollectsDriverMessages) {
  driver::uart_puts(soc.cpu(), "reconfiguration successful\n");
  EXPECT_EQ(soc.uart().output(), "reconfiguration successful\n");
}

TEST_F(RvCapSocFixture, ClintTimerMeasuresSimTime) {
  driver::TimerDriver timer(soc.cpu());
  const u64 a = timer.read_mtime();
  soc.sim().run_cycles(20'000);  // 1000 CLINT ticks
  const u64 b = timer.read_mtime();
  // The reads themselves cost some cycles; allow slack.
  EXPECT_NEAR(static_cast<double>(b - a), 1000.0, 40.0);
}

// ---------------------------------------------------------------------------
// HWICAP deployment (both controllers instantiated; vendor path driven)
// ---------------------------------------------------------------------------

struct HwicapSocFixture : ::testing::Test {
  static SocConfig config() {
    SocConfig c;
    c.with_hwicap = true;
    return c;
  }
  HwicapSocFixture() : soc(config()), hw_drv(soc.cpu(), 16) {}
  ArianeSoc soc;
  driver::HwIcapDriver hw_drv;
};

TEST_F(HwicapSocFixture, Unrolled16TransferMatchesPaperThroughput) {
  const ReconfigModule m = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  ASSERT_EQ(hw_drv.init_reconfig_process(m), Status::kOk);
  EXPECT_TRUE(
      soc.config_memory().partition_state(soc.rp0_handle()).loaded);
  const double mbps = m.pbit_size / hw_drv.last_timing().reconfig_us();
  // Paper §IV-B: 8.23 MB/s with the 16-unrolled loop.
  EXPECT_NEAR(mbps, 8.23, 0.8);
}

TEST_F(HwicapSocFixture, UnrollOneIsRoughlyTwiceSlower) {
  const ReconfigModule m = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  hw_drv.set_unroll(1);
  ASSERT_EQ(hw_drv.init_reconfig_process(m), Status::kOk);
  const double mbps1 = m.pbit_size / hw_drv.last_timing().reconfig_us();
  // Paper: 4.16 MB/s without unrolling.
  EXPECT_NEAR(mbps1, 4.16, 0.6);
}

TEST_F(HwicapSocFixture, HigherUnrollGainsLessThan5Percent) {
  const ReconfigModule m = stage(soc, accel::kRmIdSobel, 0x8810'0000);
  hw_drv.set_unroll(16);
  ASSERT_EQ(hw_drv.init_reconfig_process(m), Status::kOk);
  const double mbps16 = m.pbit_size / hw_drv.last_timing().reconfig_us();
  hw_drv.set_unroll(64);
  ASSERT_EQ(hw_drv.init_reconfig_process(m), Status::kOk);
  const double mbps64 = m.pbit_size / hw_drv.last_timing().reconfig_us();
  EXPECT_LT((mbps64 - mbps16) / mbps16, 0.05);  // §IV-B: "< 5%"
}

// ---------------------------------------------------------------------------
// SD card + FAT32 + init_RModules (the timed software loading path)
// ---------------------------------------------------------------------------

TEST(SdLoadingPath, InitRModulesLoadsBitstreamFromSdToDdr) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Host-side: format the card and store a small module's bitstream
  // (a single-CLB-column partition keeps the timed SPI transfer short).
  const auto small = fabric::Partition("RP_SMALL", {{0, 2}});
  const usize small_handle = soc.add_partition(small);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), small, {9, "tiny"});
  storage::MemBlockIo host_io(soc.sd_card());
  ASSERT_EQ(storage::fat32_format(host_io), Status::kOk);
  {
    storage::Fat32Volume host_vol(host_io);
    ASSERT_EQ(host_vol.mount(), Status::kOk);
    ASSERT_EQ(host_vol.write_file("TINY.PB", pbit), Status::kOk);
  }

  // Target-side: SD init + mount + init_RModules through the CPU model.
  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  driver::CpuBlockIo io(sd, soc.sd_card().block_count());
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);

  ReconfigModule mods[] = {{"TINY.PB", 9, 0, 0}};
  ASSERT_EQ(drv.init_RModules(mods, vol), Status::kOk);
  EXPECT_EQ(mods[0].pbit_size, pbit.size());
  EXPECT_EQ(mods[0].start_address, MemoryMap::kPbitStagingBase);

  // The staged copy must be byte-identical.
  std::vector<u8> staged(pbit.size());
  soc.ddr().peek(mods[0].start_address, staged);
  EXPECT_EQ(staged, pbit);

  // And it must actually reconfigure the small partition.
  ASSERT_EQ(drv.init_reconfig_process(mods[0], DmaMode::kInterrupt),
            Status::kOk);
  const auto st = soc.config_memory().partition_state(small_handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 9u);
}

}  // namespace
}  // namespace rvcap
