// Portability: the paper's conclusion claims RV-CAP "can be ported to
// all Xilinx FPGA devices that support DPR". The same controller,
// drivers, bitstream flow and case study run unchanged on the smaller
// Artix-7 model device.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "common/units.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using soc::ArianeSoc;
using soc::DeviceModel;
using soc::MemoryMap;
using soc::SocConfig;

SocConfig artix_config() {
  SocConfig cfg;
  cfg.device = DeviceModel::kArtix7_100t;
  return cfg;
}

TEST(ArtixDevice, GeometryApproximatesXC7A100T) {
  const auto dev = fabric::DeviceGeometry::artix7_100t();
  const auto total = dev.total_resources();
  // Real XC7A100T: 63400 LUT, 126800 FF, 135 BRAM36, 240 DSP.
  EXPECT_NEAR(total.luts, 63400, 63400 * 0.05);
  EXPECT_NEAR(total.ffs, 126800, 126800 * 0.05);
  EXPECT_EQ(total.dsps, 240u);
  EXPECT_EQ(dev.rows(), 4u);
}

TEST(ArtixDevice, CaseStudyPartitionFootprintIsIdentical) {
  const auto kintex = fabric::DeviceGeometry::kintex7_325t();
  const auto artix = fabric::DeviceGeometry::artix7_100t();
  const auto rp_k = fabric::case_study_partition(kintex);
  const auto rp_a = fabric::case_study_partition(artix);
  // Same resources, same frame count, same bitstream size — the RP is
  // a device-independent footprint.
  EXPECT_EQ(rp_k.resources(kintex), rp_a.resources(artix));
  EXPECT_EQ(rp_a.frame_count(artix), 805u);
  EXPECT_EQ(rp_a.pbit_bytes(artix), 650892u);
}

TEST(ArtixSoC, FullReconfigurationFlowUnchanged) {
  ArianeSoc soc(artix_config());
  EXPECT_EQ(soc.device().name(), "xc7a100t-model");
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdMedian, "median"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdMedian,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  const auto st = soc.config_memory().partition_state(soc.rp0_handle());
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdMedian);
  // Same ICAP, same throughput envelope as on the Kintex-7.
  const double mbps = m.pbit_size / drv.last_timing().reconfig_us();
  EXPECT_GT(mbps, 390.0);
  EXPECT_LT(mbps, 400.0);
}

TEST(ArtixSoC, AccelerationModeBitExact) {
  ArianeSoc soc(artix_config());
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  const accel::Image img = accel::make_test_image(512, 512, 12);
  soc.ddr().poke(MemoryMap::kImageInBase, img.pixels);
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase, 512 * 512,
                                MemoryMap::kImageOutBase, 512 * 512,
                                DmaMode::kInterrupt),
            Status::kOk);
  std::vector<u8> out(512 * 512);
  soc.ddr().peek(MemoryMap::kImageOutBase, out);
  EXPECT_EQ(out,
            accel::apply_golden(accel::FilterKind::kSobel, img).pixels);
}

TEST(ArtixSoC, BitstreamsAreNotCrossDeviceCompatible) {
  // A Kintex bitstream must not configure the Artix model: the window
  // columns differ, so frame addresses land outside the partition.
  ArianeSoc artix(artix_config());
  const auto kintex = fabric::DeviceGeometry::kintex7_325t();
  const auto rp_k = fabric::case_study_partition(kintex);
  const auto pbit = bitstream::generate_partial_bitstream(
      kintex, rp_k, {accel::kRmIdSobel, "s"});
  driver::RvCapDriver drv(artix.cpu(), artix.plic());
  artix.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  EXPECT_FALSE(
      artix.config_memory().partition_state(artix.rp0_handle()).loaded);
}

}  // namespace
}  // namespace rvcap
