#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "common/hexdump.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace rvcap {
namespace {

TEST(Units, ClintDividerMatchesPaperClocks) {
  EXPECT_EQ(kCoreClockHz, 100'000'000u);
  EXPECT_EQ(kClintClockHz, 5'000'000u);
  EXPECT_EQ(kCyclesPerClintTick, 20u);
}

TEST(Units, CyclesToMicroseconds) {
  EXPECT_DOUBLE_EQ(cycles_to_us(100), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_us(165'100), 1651.0);
  EXPECT_DOUBLE_EQ(cycles_to_ms(15'645'000), 156.45);
}

TEST(Units, ThroughputMatchesPaperHeadline) {
  // 650892 bytes in 1651 us -> 394.2 MB/s (the paper's largest-case
  // number; 398.1 is the max across sizes).
  const double t = throughput_mbps(650892, 165100);
  EXPECT_NEAR(t, 394.2, 0.1);
}

TEST(Units, ThroughputZeroCyclesIsZero) {
  EXPECT_DOUBLE_EQ(throughput_mbps(1000, 0), 0.0);
}

TEST(Units, ByteSizes) {
  EXPECT_EQ(KiB(4), 4096u);
  EXPECT_EQ(MiB(1), 1048576u);
}

TEST(Bytes, LittleEndianRoundtrip16) {
  u8 buf[2];
  store_le16(buf, 0xBEEF);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(load_le16(buf), 0xBEEF);
}

TEST(Bytes, LittleEndianRoundtrip32) {
  u8 buf[4];
  store_le32(buf, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(load_le32(buf), 0xDEADBEEFu);
}

TEST(Bytes, LittleEndianRoundtrip64) {
  u8 buf[8];
  store_le64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0123456789ABCDEFULL);
}

TEST(Bytes, BigEndian32) {
  u8 buf[4];
  store_be32(buf, 0xAA995566);  // the Xilinx sync word
  EXPECT_EQ(buf[0], 0xAA);
  EXPECT_EQ(buf[3], 0x66);
  EXPECT_EQ(load_be32(buf), 0xAA995566u);
}

TEST(Bytes, BitFieldExtraction) {
  EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
  EXPECT_EQ(bits(0x12345678, 8, 8), 0x56u);
  EXPECT_EQ(bits(0x12345678, 28, 4), 0x1u);
  EXPECT_EQ(bits64(0xFF00000000ULL, 32, 8), 0xFFu);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangeBounds) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.next_range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Status, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kCrcError), "crc_error");
  EXPECT_EQ(to_string(Status::kDecoupled), "decoupled");
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kTimeout));
}

TEST(Status, EveryEnumeratorHasDistinctNonEmptyName) {
  const Status all[] = {
      Status::kOk,            Status::kInvalidArgument,
      Status::kOutOfRange,    Status::kNotFound,
      Status::kAlreadyExists, Status::kDeviceBusy,
      Status::kTimeout,       Status::kIoError,
      Status::kCrcError,      Status::kProtocolError,
      Status::kNoSpace,       Status::kNotSupported,
      Status::kDecoupled,     Status::kInternal,
  };
  std::set<std::string_view> seen;
  for (const Status s : all) {
    const std::string_view name = to_string(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << static_cast<int>(s);
    EXPECT_TRUE(seen.insert(name).second) << name;  // round-trip unique
  }
  EXPECT_EQ(seen.size(), std::size(all));
}

TEST(Bytes, Crc32MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const u8 check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const u8>{}), 0u);
}

TEST(Bytes, Crc32ChainsIncrementally) {
  const u8 check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const auto span = std::span<const u8>(check);
  u32 crc = crc32(span.first(4));
  crc = crc32(span.subspan(4), crc);
  EXPECT_EQ(crc, crc32(span));
}

TEST(Hexdump, FormatsAsciiGutter) {
  const u8 data[] = {'R', 'V', '-', 'C', 'A', 'P', 0x00, 0xFF};
  const std::string out = hexdump(data, 0x1000);
  EXPECT_NE(out.find("00001000"), std::string::npos);
  EXPECT_NE(out.find("|RV-CAP..|"), std::string::npos);
}

TEST(Hexdump, EmptyInputProducesNothing) {
  EXPECT_TRUE(hexdump({}).empty());
}

}  // namespace
}  // namespace rvcap
