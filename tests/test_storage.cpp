#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/fat32.hpp"
#include "storage/sd_card.hpp"
#include "storage/spi.hpp"

namespace rvcap {
namespace {

using storage::Fat32Volume;
using storage::kBlockSize;
using storage::MemBlockIo;
using storage::SdCard;
using storage::SpiController;

// ---------------------------------------------------------------------------
// SD card protocol
// ---------------------------------------------------------------------------

class SdProto : public ::testing::Test {
 protected:
  SdProto() : card(131072) {}  // 64 MiB

  // Send a command frame and collect the R1 byte.
  u8 command(u8 cmd, u32 arg) {
    std::array<u8, 6> frame{static_cast<u8>(0x40 | cmd),
                            static_cast<u8>(arg >> 24),
                            static_cast<u8>(arg >> 16),
                            static_cast<u8>(arg >> 8),
                            static_cast<u8>(arg),
                            0xFF};
    frame[5] = static_cast<u8>((SdCard::crc7({frame.data(), 5}) << 1) | 1);
    for (u8 b : frame) card.exchange(b, true);
    for (int i = 0; i < 10; ++i) {
      const u8 r = card.exchange(0xFF, true);
      if (r != 0xFF) return r;
    }
    return 0xFF;
  }

  void init_card() {
    command(0, 0);
    command(8, 0x1AA);
    // ACMD41 until ready.
    for (int i = 0; i < 10 && !card.initialized(); ++i) {
      command(55, 0);
      command(41, 0x40000000);
    }
    ASSERT_TRUE(card.initialized());
  }

  SdCard card;
};

TEST_F(SdProto, Cmd0EntersIdle) {
  EXPECT_EQ(command(0, 0), 0x01);
  EXPECT_FALSE(card.initialized());
}

TEST_F(SdProto, Cmd0RejectsBadCrc) {
  std::array<u8, 6> frame{0x40, 0, 0, 0, 0, 0x00};  // wrong CRC7
  for (u8 b : frame) card.exchange(b, true);
  u8 r1 = 0xFF;
  for (int i = 0; i < 10 && r1 == 0xFF; ++i) r1 = card.exchange(0xFF, true);
  EXPECT_EQ(r1, 0x04);  // illegal command
}

TEST_F(SdProto, Cmd8EchoesCheckPattern) {
  command(0, 0);
  const u8 r1 = command(8, 0x1AA);
  EXPECT_EQ(r1, 0x01);
  // Remaining 4 R7 bytes follow immediately.
  card.exchange(0xFF, true);  // 0x00
  card.exchange(0xFF, true);  // 0x00
  EXPECT_EQ(card.exchange(0xFF, true), 0x01);  // voltage
  EXPECT_EQ(card.exchange(0xFF, true), 0xAA);  // check pattern
}

TEST_F(SdProto, Acmd41InitializesAfterRetries) {
  command(0, 0);
  command(55, 0);
  EXPECT_EQ(command(41, 0x40000000), 0x01) << "first poll still idle";
  command(55, 0);
  EXPECT_EQ(command(41, 0x40000000), 0x00);
  EXPECT_TRUE(card.initialized());
}

TEST_F(SdProto, ReadBlockDeliversTokenDataCrc) {
  init_card();
  std::array<u8, kBlockSize> ref{};
  for (u32 i = 0; i < kBlockSize; ++i) ref[i] = static_cast<u8>(i * 7);
  card.backdoor_write(5, ref);

  EXPECT_EQ(command(17, 5), 0x00);
  // Hunt for the 0xFE token.
  u8 b = 0xFF;
  for (int i = 0; i < 16 && b != 0xFE; ++i) b = card.exchange(0xFF, true);
  ASSERT_EQ(b, 0xFE);
  std::array<u8, kBlockSize> got{};
  for (auto& x : got) x = card.exchange(0xFF, true);
  EXPECT_EQ(got, ref);
  const u16 crc = static_cast<u16>((card.exchange(0xFF, true) << 8) |
                                   card.exchange(0xFF, true));
  EXPECT_EQ(crc, SdCard::crc16(ref));
  EXPECT_EQ(card.blocks_read(), 1u);
}

TEST_F(SdProto, WriteBlockRoundtrip) {
  init_card();
  std::array<u8, kBlockSize> data{};
  for (u32 i = 0; i < kBlockSize; ++i) data[i] = static_cast<u8>(255 - i);

  EXPECT_EQ(command(24, 9), 0x00);
  card.exchange(0xFF, true);  // gap
  card.exchange(0xFE, true);  // start token
  for (u8 byte : data) card.exchange(byte, true);
  const u16 crc = SdCard::crc16(data);
  card.exchange(static_cast<u8>(crc >> 8), true);
  card.exchange(static_cast<u8>(crc), true);
  // Data response then busy.
  u8 resp = 0xFF;
  for (int i = 0; i < 8 && resp == 0xFF; ++i) resp = card.exchange(0xFF, true);
  EXPECT_EQ(resp & 0x1F, 0x05);
  while (card.exchange(0xFF, true) == 0x00) {
  }
  std::array<u8, kBlockSize> got{};
  card.backdoor_read(9, got);
  EXPECT_EQ(got, data);
  EXPECT_EQ(card.blocks_written(), 1u);
}

TEST_F(SdProto, WriteWithBadCrcRejected) {
  init_card();
  std::array<u8, kBlockSize> data{};
  EXPECT_EQ(command(24, 3), 0x00);
  card.exchange(0xFE, true);
  for (u8 byte : data) card.exchange(byte, true);
  card.exchange(0xDE, true);  // wrong CRC
  card.exchange(0xAD, true);
  u8 resp = 0xFF;
  for (int i = 0; i < 8 && resp == 0xFF; ++i) resp = card.exchange(0xFF, true);
  EXPECT_EQ(resp & 0x1F, 0x0B);
  EXPECT_EQ(card.crc_errors(), 1u);
  EXPECT_EQ(card.blocks_written(), 0u);
}

TEST_F(SdProto, ReadBeforeInitIsIllegal) {
  command(0, 0);
  EXPECT_EQ(command(17, 0), 0x04);
}

TEST_F(SdProto, OutOfRangeReadIsParameterError) {
  init_card();
  EXPECT_EQ(command(17, card.block_count()), 0x40);
}

TEST_F(SdProto, DeselectAbortsCommandFrame) {
  card.exchange(0x40, true);  // first byte of CMD0
  EXPECT_EQ(card.exchange(0xFF, false), 0xFF);  // deselected
  // Card must have reset the frame: a fresh CMD0 works.
  EXPECT_EQ(command(0, 0), 0x01);
}

TEST(SdCrc, KnownVectors) {
  // CRC16-CCITT of 512 x 0xFF is a known SD value: 0x7FA1.
  std::array<u8, kBlockSize> ff{};
  ff.fill(0xFF);
  EXPECT_EQ(SdCard::crc16(ff), 0x7FA1);
  // CRC7 of CMD0 (0x40 00 00 00 00) is 0x4A -> frame byte 0x95.
  const u8 cmd0[] = {0x40, 0, 0, 0, 0};
  EXPECT_EQ(static_cast<u8>((SdCard::crc7(cmd0) << 1) | 1), 0x95);
}

// ---------------------------------------------------------------------------
// SPI controller
// ---------------------------------------------------------------------------

struct SpiFixture : ::testing::Test {
  SpiFixture() : card(4096), spi("spi", card, 4) { s.add(&spi); }

  u32 reg_read(Addr a) {
    spi.port().ar.push(axi::LiteAr{a});
    EXPECT_TRUE(s.run_until([&] { return spi.port().r.can_pop(); }, 10000));
    return spi.port().r.pop()->data;
  }
  void reg_write(Addr a, u32 v) {
    spi.port().aw.push(axi::LiteAw{a});
    spi.port().w.push(axi::LiteW{v, 0xF});
    EXPECT_TRUE(s.run_until([&] { return spi.port().b.can_pop(); }, 10000));
    spi.port().b.pop();
  }
  u8 xfer(u8 b) {
    reg_write(SpiController::kDtr, b);
    while (reg_read(SpiController::kSr) & SpiController::kSrRxEmpty) {
    }
    return static_cast<u8>(reg_read(SpiController::kDrr));
  }

  sim::Simulator s;
  SdCard card;
  SpiController spi;
};

TEST_F(SpiFixture, IdleStatus) {
  const u32 sr = reg_read(SpiController::kSr);
  EXPECT_TRUE(sr & SpiController::kSrRxEmpty);
  EXPECT_TRUE(sr & SpiController::kSrTxEmpty);
  EXPECT_FALSE(sr & SpiController::kSrBusy);
}

TEST_F(SpiFixture, DisabledControllerDoesNotShift) {
  reg_write(SpiController::kDtr, 0xFF);
  s.run_cycles(200);
  EXPECT_TRUE(reg_read(SpiController::kSr) & SpiController::kSrRxEmpty);
}

TEST_F(SpiFixture, ByteTransferTakesEightDividedClocks) {
  reg_write(SpiController::kCr, 1);           // enable
  reg_write(SpiController::kSsr, 1);          // deselected
  const Cycles t0 = s.now();
  const u8 miso = xfer(0xFF);
  EXPECT_EQ(miso, 0xFF);  // deselected card tristates high
  // 8 bits * divider 4 = 32 wire cycles, plus register-access time.
  EXPECT_GE(s.now() - t0, 32u);
  EXPECT_EQ(spi.bytes_transferred(), 1u);
}

TEST_F(SpiFixture, FullSdInitThroughController) {
  reg_write(SpiController::kCr, 1);
  reg_write(SpiController::kSsr, 0);  // select card
  auto cmd = [&](u8 c, u32 arg) -> u8 {
    std::array<u8, 6> f{static_cast<u8>(0x40 | c), static_cast<u8>(arg >> 24),
                        static_cast<u8>(arg >> 16), static_cast<u8>(arg >> 8),
                        static_cast<u8>(arg), 0};
    f[5] = static_cast<u8>((SdCard::crc7({f.data(), 5}) << 1) | 1);
    for (u8 b : f) xfer(b);
    u8 r = 0xFF;
    for (int i = 0; i < 10 && r == 0xFF; ++i) r = xfer(0xFF);
    return r;
  };
  EXPECT_EQ(cmd(0, 0), 0x01);
  cmd(8, 0x1AA);
  for (int i = 0; i < 4; ++i) xfer(0xFF);  // drain R7 tail
  for (int i = 0; i < 5 && !card.initialized(); ++i) {
    cmd(55, 0);
    cmd(41, 0x40000000);
  }
  EXPECT_TRUE(card.initialized());
}

// ---------------------------------------------------------------------------
// FAT32
// ---------------------------------------------------------------------------

struct Fat32Fixture : ::testing::Test {
  Fat32Fixture() : card(131072), io(card), vol(io) {
    EXPECT_EQ(storage::fat32_format(io), Status::kOk);
    EXPECT_EQ(vol.mount(), Status::kOk);
  }
  SdCard card;
  MemBlockIo io;
  Fat32Volume vol;
};

TEST_F(Fat32Fixture, MountParsesGeometry) {
  EXPECT_TRUE(vol.mounted());
  EXPECT_EQ(vol.cluster_bytes(), 4096u);
  EXPECT_GT(vol.total_clusters(), 16000u);
}

TEST_F(Fat32Fixture, MountRejectsUnformattedDevice) {
  SdCard blank(4096);
  MemBlockIo bio(blank);
  Fat32Volume v(bio);
  EXPECT_EQ(v.mount(), Status::kProtocolError);
}

TEST_F(Fat32Fixture, WriteReadSmallFile) {
  const std::string text = "hello reconfigurable world";
  ASSERT_EQ(vol.write_file("HELLO.TXT",
                           {reinterpret_cast<const u8*>(text.data()),
                            text.size()}),
            Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("HELLO.TXT", out), Status::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), text);
}

TEST_F(Fat32Fixture, CaseInsensitiveLookup) {
  const u8 data[] = {1, 2, 3};
  ASSERT_EQ(vol.write_file("Sobel.Pb", data), Status::kOk);
  u32 size = 0;
  EXPECT_EQ(vol.file_size("SOBEL.PB", &size), Status::kOk);
  EXPECT_EQ(size, 3u);
}

TEST_F(Fat32Fixture, MultiClusterFileRoundtrip) {
  SplitMix64 rng(42);
  std::vector<u8> big(3 * 4096 + 777);  // spans 4 clusters
  for (auto& b : big) b = rng.next_byte();
  ASSERT_EQ(vol.write_file("BIG.BIN", big), Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("BIG.BIN", out), Status::kOk);
  EXPECT_EQ(out, big);
}

TEST_F(Fat32Fixture, BitstreamSizedFileRoundtrip) {
  // The paper's partial bitstream: 650892 bytes (159 clusters).
  SplitMix64 rng(7);
  std::vector<u8> pbit(650892);
  for (auto& b : pbit) b = rng.next_byte();
  ASSERT_EQ(vol.write_file("SOBEL.PB", pbit), Status::kOk);
  u32 size = 0;
  ASSERT_EQ(vol.file_size("SOBEL.PB", &size), Status::kOk);
  EXPECT_EQ(size, 650892u);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("SOBEL.PB", out), Status::kOk);
  EXPECT_EQ(out, pbit);
}

TEST_F(Fat32Fixture, OverwriteShrinksFile) {
  std::vector<u8> big(10000, 0xAB), small(100, 0xCD);
  const u32 free0 = vol.free_clusters();
  ASSERT_EQ(vol.write_file("F.BIN", big), Status::kOk);
  ASSERT_EQ(vol.write_file("F.BIN", small), Status::kOk);  // overwrite
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("F.BIN", out), Status::kOk);
  EXPECT_EQ(out, small);
  // All but one cluster reclaimed.
  EXPECT_EQ(vol.free_clusters(), free0 - 1);
}

TEST_F(Fat32Fixture, OverwriteGrowsFile) {
  std::vector<u8> small(10, 1), big(9000, 2);
  ASSERT_EQ(vol.write_file("G.BIN", small), Status::kOk);
  ASSERT_EQ(vol.write_file("G.BIN", big), Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("G.BIN", out), Status::kOk);
  EXPECT_EQ(out, big);
}

TEST_F(Fat32Fixture, EmptyFile) {
  ASSERT_EQ(vol.write_file("EMPTY", {}), Status::kOk);
  u32 size = 99;
  ASSERT_EQ(vol.file_size("EMPTY", &size), Status::kOk);
  EXPECT_EQ(size, 0u);
  std::vector<u8> out{1, 2, 3};
  ASSERT_EQ(vol.read_file("EMPTY", out), Status::kOk);
  EXPECT_TRUE(out.empty());
}

TEST_F(Fat32Fixture, ReadRangeAcrossClusterBoundary) {
  std::vector<u8> data(8192);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  ASSERT_EQ(vol.write_file("R.BIN", data), Status::kOk);
  std::vector<u8> out(1000);
  ASSERT_EQ(vol.read_file_range("R.BIN", 3700, out), Status::kOk);
  for (usize i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<u8>(3700 + i));
  }
}

TEST_F(Fat32Fixture, ReadRangePastEofRejected) {
  std::vector<u8> data(100, 5);
  ASSERT_EQ(vol.write_file("S.BIN", data), Status::kOk);
  std::vector<u8> out(50);
  EXPECT_EQ(vol.read_file_range("S.BIN", 80, out), Status::kOutOfRange);
}

TEST_F(Fat32Fixture, MissingFileNotFound) {
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("NOPE.BIN", out), Status::kNotFound);
  u32 size = 0;
  EXPECT_EQ(vol.file_size("NOPE.BIN", &size), Status::kNotFound);
}

TEST_F(Fat32Fixture, InvalidNamesRejected) {
  const u8 d[] = {1};
  EXPECT_EQ(vol.write_file("TOOLONGNAME.BIN", d), Status::kInvalidArgument);
  EXPECT_EQ(vol.write_file("A.LONG", d), Status::kInvalidArgument);
  EXPECT_EQ(vol.write_file("", d), Status::kInvalidArgument);
  std::array<u8, 11> raw{};
  EXPECT_EQ(Fat32Volume::to_83("OK.BIN", &raw), Status::kOk);
  EXPECT_EQ(std::memcmp(raw.data(), "OK      BIN", 11), 0);
}

TEST_F(Fat32Fixture, SubdirectoryCreateAndUse) {
  ASSERT_EQ(vol.make_dir("BITS"), Status::kOk);
  const u8 d[] = {9, 9, 9};
  ASSERT_EQ(vol.write_file("BITS/MEDIAN.PB", d), Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("BITS/MEDIAN.PB", out), Status::kOk);
  EXPECT_EQ(out.size(), 3u);
  // Not visible at root.
  std::vector<u8> dummy;
  EXPECT_EQ(vol.read_file("MEDIAN.PB", dummy), Status::kNotFound);
}

TEST_F(Fat32Fixture, ListRootAndSubdir) {
  ASSERT_EQ(vol.make_dir("SUB"), Status::kOk);
  const u8 d[] = {1};
  ASSERT_EQ(vol.write_file("A.BIN", d), Status::kOk);
  ASSERT_EQ(vol.write_file("SUB/B.BIN", d), Status::kOk);
  std::vector<storage::DirEntryInfo> entries;
  ASSERT_EQ(vol.list("", entries), Status::kOk);
  ASSERT_EQ(entries.size(), 2u);
  std::vector<storage::DirEntryInfo> sub;
  ASSERT_EQ(vol.list("SUB", sub), Status::kOk);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub[0].name, "B.BIN");
}

TEST_F(Fat32Fixture, RemoveFileFreesClusters) {
  const u32 free0 = vol.free_clusters();
  std::vector<u8> data(20000, 3);
  ASSERT_EQ(vol.write_file("DEL.BIN", data), Status::kOk);
  EXPECT_LT(vol.free_clusters(), free0);
  ASSERT_EQ(vol.remove("DEL.BIN"), Status::kOk);
  EXPECT_EQ(vol.free_clusters(), free0);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("DEL.BIN", out), Status::kNotFound);
}

TEST_F(Fat32Fixture, RemoveNonEmptyDirRefused) {
  ASSERT_EQ(vol.make_dir("D"), Status::kOk);
  const u8 d[] = {1};
  ASSERT_EQ(vol.write_file("D/X.BIN", d), Status::kOk);
  EXPECT_EQ(vol.remove("D"), Status::kDeviceBusy);
  ASSERT_EQ(vol.remove("D/X.BIN"), Status::kOk);
  EXPECT_EQ(vol.remove("D"), Status::kOk);
}

TEST_F(Fat32Fixture, DuplicateMkdirRejected) {
  ASSERT_EQ(vol.make_dir("DUP"), Status::kOk);
  EXPECT_EQ(vol.make_dir("DUP"), Status::kAlreadyExists);
}

TEST_F(Fat32Fixture, ManyFilesExtendDirectory) {
  // 4 KiB root cluster = 128 entries; exceed it so the chain grows.
  const u8 d[] = {7};
  for (int i = 0; i < 200; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "F%03d.BIN", i);
    ASSERT_EQ(vol.write_file(name, d), Status::kOk) << name;
  }
  std::vector<storage::DirEntryInfo> entries;
  ASSERT_EQ(vol.list("", entries), Status::kOk);
  EXPECT_EQ(entries.size(), 200u);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("F199.BIN", out), Status::kOk);
}

TEST_F(Fat32Fixture, MountSurvivesRemount) {
  const u8 d[] = {4, 5, 6};
  ASSERT_EQ(vol.write_file("PERSIST.BIN", d), Status::kOk);
  Fat32Volume second(io);
  ASSERT_EQ(second.mount(), Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(second.read_file("PERSIST.BIN", out), Status::kOk);
  EXPECT_EQ(out, (std::vector<u8>{4, 5, 6}));
}

// Property test: random create/overwrite/remove against an in-memory
// reference model, parameterized over seeds.
class Fat32Property : public ::testing::TestWithParam<u64> {};

TEST_P(Fat32Property, RandomOpsMatchReferenceModel) {
  SdCard card(131072);
  MemBlockIo io(card);
  EXPECT_EQ(storage::fat32_format(io), Status::kOk);
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);

  SplitMix64 rng(GetParam());
  std::map<std::string, std::vector<u8>> ref;
  const char* names[] = {"A.BIN", "B.BIN", "C.PB", "D.TXT", "E.DAT",
                         "F.BIN", "G.PB", "H.BIN"};

  for (int step = 0; step < 120; ++step) {
    const std::string name = names[rng.next_below(8)];
    switch (rng.next_below(3)) {
      case 0: {  // write / overwrite
        std::vector<u8> data(rng.next_below(12000));
        for (auto& b : data) b = rng.next_byte();
        ASSERT_EQ(vol.write_file(name, data), Status::kOk);
        ref[name] = std::move(data);
        break;
      }
      case 1: {  // read
        std::vector<u8> out;
        const Status st = vol.read_file(name, out);
        if (ref.count(name)) {
          ASSERT_EQ(st, Status::kOk);
          ASSERT_EQ(out, ref[name]);
        } else {
          ASSERT_EQ(st, Status::kNotFound);
        }
        break;
      }
      case 2: {  // remove
        const Status st = vol.remove(name);
        if (ref.count(name)) {
          ASSERT_EQ(st, Status::kOk);
          ref.erase(name);
        } else {
          ASSERT_EQ(st, Status::kNotFound);
        }
        break;
      }
    }
  }
  // Final sweep: everything in the reference must read back intact.
  for (const auto& [name, data] : ref) {
    std::vector<u8> out;
    ASSERT_EQ(vol.read_file(name, out), Status::kOk);
    ASSERT_EQ(out, data) << name;
  }
  std::vector<storage::DirEntryInfo> entries;
  ASSERT_EQ(vol.list("", entries), Status::kOk);
  EXPECT_EQ(entries.size(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fat32Property,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// FAT corruption: cluster-chain cycles and truncation must surface as
// errors, never as hangs or silent reads of unrelated clusters.
// ---------------------------------------------------------------------------

class Fat32Corruption : public ::testing::Test {
 protected:
  Fat32Corruption() : card(131072), io(card) {
    EXPECT_EQ(storage::fat32_format(io), Status::kOk);
    Fat32Volume vol(io);
    EXPECT_EQ(vol.mount(), Status::kOk);
    cluster_bytes = vol.cluster_bytes();
    payload.resize(3 * cluster_bytes);
    for (usize i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<u8>(i * 31);
    }
    EXPECT_EQ(vol.write_file("BIG.BIN", payload), Status::kOk);

    // Geometry straight from the BPB (the fields are not exposed by the
    // volume API, deliberately — tests corrupt below it).
    std::array<u8, kBlockSize> bpb{};
    EXPECT_EQ(io.read(0, bpb), Status::kOk);
    auto le16 = [&](u32 off) {
      return u32{bpb[off]} | (u32{bpb[off + 1]} << 8);
    };
    auto le32 = [&](u32 off) { return le16(off) | (le16(off + 2) << 16); };
    sectors_per_cluster = bpb[13];
    fat_begin = le16(14);  // reserved sectors
    const u32 num_fats = bpb[16];
    fat_size = le32(36);
    root_cluster = le32(44);
    data_start = fat_begin + num_fats * fat_size;

    std::vector<storage::DirEntryInfo> entries;
    EXPECT_EQ(vol.list("/", entries), Status::kOk);
    EXPECT_EQ(entries.size(), 1u);
    c0 = entries.front().first_cluster;
    c1 = fat_entry(c0);
    c2 = fat_entry(c1);
    EXPECT_GE(c1, 2u);
    EXPECT_GE(c2, 2u);
  }

  u32 fat_entry(u32 cluster) {
    std::array<u8, kBlockSize> sec{};
    EXPECT_EQ(io.read(fat_begin + cluster / 128, sec), Status::kOk);
    const u32 off = (cluster % 128) * 4;
    return (u32{sec[off]} | (u32{sec[off + 1]} << 8) |
            (u32{sec[off + 2]} << 16) | (u32{sec[off + 3]} << 24)) &
           0x0FFF'FFFF;
  }

  void set_fat_entry(u32 cluster, u32 value) {
    std::array<u8, kBlockSize> sec{};
    const u32 lba = fat_begin + cluster / 128;
    ASSERT_EQ(io.read(lba, sec), Status::kOk);
    const u32 off = (cluster % 128) * 4;
    sec[off] = static_cast<u8>(value);
    sec[off + 1] = static_cast<u8>(value >> 8);
    sec[off + 2] = static_cast<u8>(value >> 16);
    sec[off + 3] = static_cast<u8>(value >> 24);
    ASSERT_EQ(io.write(lba, sec), Status::kOk);
  }

  SdCard card;
  MemBlockIo io;
  std::vector<u8> payload;
  u32 cluster_bytes = 0;
  u32 sectors_per_cluster = 0;
  u32 fat_begin = 0;
  u32 fat_size = 0;
  u32 root_cluster = 0;
  u32 data_start = 0;
  u32 c0 = 0, c1 = 0, c2 = 0;
};

TEST_F(Fat32Corruption, IntactChainReadsBack) {
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  std::vector<u8> out;
  ASSERT_EQ(vol.read_file("BIG.BIN", out), Status::kOk);
  EXPECT_EQ(out, payload);
}

TEST_F(Fat32Corruption, ChainCycleOnRemoveTerminatesAndFrees) {
  // Last cluster points back at the first. free_chain zeroes links as
  // it walks, so the revisit finds a freed entry and the walk stops —
  // bounded, with every cluster of the cycle reclaimed.
  set_fat_entry(c2, c0);
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  EXPECT_EQ(vol.remove("BIG.BIN"), Status::kOk);
  EXPECT_EQ(fat_entry(c0), 0u);
  EXPECT_EQ(fat_entry(c1), 0u);
  EXPECT_EQ(fat_entry(c2), 0u);
  // The volume stays serviceable: the freed clusters are reusable.
  EXPECT_EQ(vol.write_file("NEW.BIN", payload), Status::kOk);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("NEW.BIN", out), Status::kOk);
  EXPECT_EQ(out, payload);
}

TEST_F(Fat32Corruption, ChainCycleOnOverwriteTerminates) {
  // Overwrite frees the old (cyclic) chain first; the rewrite must
  // terminate and produce a readable file.
  set_fat_entry(c2, c0);
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  const std::vector<u8> small(64, 0x55);
  EXPECT_EQ(vol.write_file("BIG.BIN", small), Status::kOk);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("BIG.BIN", out), Status::kOk);
  EXPECT_EQ(out, small);
}

TEST_F(Fat32Corruption, TruncatedChainDetectedOnRead) {
  // Middle link marked free: the file claims three clusters but the
  // chain ends after two. The read must fail, not return stale data.
  set_fat_entry(c1, 0);
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("BIG.BIN", out), Status::kIoError);
}

TEST_F(Fat32Corruption, DirectoryChainCycleDetected) {
  // Root directory cluster full of deleted entries (no end-of-dir
  // marker) with its FAT entry pointing at itself: any lookup walks the
  // chain and must hit the cycle bound instead of spinning.
  std::array<u8, kBlockSize> sec{};
  sec.fill(0xE5);
  const u32 root_lba = data_start + (root_cluster - 2) * sectors_per_cluster;
  for (u32 s = 0; s < sectors_per_cluster; ++s) {
    ASSERT_EQ(io.write(root_lba + s, sec), Status::kOk);
  }
  set_fat_entry(root_cluster, root_cluster);
  Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  std::vector<u8> out;
  EXPECT_EQ(vol.read_file("BIG.BIN", out), Status::kIoError);
  std::vector<storage::DirEntryInfo> entries;
  EXPECT_EQ(vol.list("/", entries), Status::kIoError);
}

}  // namespace
}  // namespace rvcap
