// Shared test helpers: a bus-functional manager for driving AxiPort /
// AxiLitePort links cycle-accurately from tests, a scriptable register
// device, and assertion helpers over the obs:: trace stream.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "axi/lite_slave.hpp"
#include "axi/types.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace rvcap::test {

/// Issue a single-beat 64-bit write as a bus manager and wait for B.
inline axi::Resp bfm_write64(sim::Simulator& s, axi::AxiPort& p, Addr addr,
                             u64 data, u8 strb = 0xFF) {
  EXPECT_TRUE(p.aw.push(axi::AxiAw{addr, 0, 3}));
  EXPECT_TRUE(p.w.push(axi::AxiW{data, strb, true}));
  EXPECT_TRUE(s.run_until([&] { return p.b.can_pop(); }, 100000));
  return p.b.pop()->resp;
}

/// Issue a single-beat 64-bit read and wait for the data beat.
inline std::pair<u64, axi::Resp> bfm_read64(sim::Simulator& s, axi::AxiPort& p,
                                            Addr addr) {
  EXPECT_TRUE(p.ar.push(axi::AxiAr{addr, 0, 3}));
  EXPECT_TRUE(s.run_until([&] { return p.r.can_pop(); }, 100000));
  const axi::AxiR r = *p.r.pop();
  EXPECT_TRUE(r.last);
  return {r.data, r.resp};
}

/// Issue a burst read of `beats` 64-bit beats; returns the payload.
inline std::vector<u64> bfm_read_burst(sim::Simulator& s, axi::AxiPort& p,
                                       Addr addr, u32 beats) {
  EXPECT_TRUE(p.ar.push(axi::AxiAr{addr, static_cast<u8>(beats - 1), 3}));
  std::vector<u64> out;
  while (out.size() < beats) {
    EXPECT_TRUE(s.run_until([&] { return p.r.can_pop(); }, 100000));
    const axi::AxiR r = *p.r.pop();
    out.push_back(r.data);
    if (r.last) break;
  }
  EXPECT_EQ(out.size(), beats);
  return out;
}

/// Issue a burst write; waits for the B response.
inline axi::Resp bfm_write_burst(sim::Simulator& s, axi::AxiPort& p, Addr addr,
                                 std::span<const u64> data) {
  EXPECT_TRUE(p.aw.push(
      axi::AxiAw{addr, static_cast<u8>(data.size() - 1), 3}));
  usize i = 0;
  while (i < data.size()) {
    if (p.w.push(axi::AxiW{data[i], 0xFF, i + 1 == data.size()})) {
      ++i;
    } else {
      s.step();
    }
  }
  EXPECT_TRUE(s.run_until([&] { return p.b.can_pop(); }, 100000));
  return p.b.pop()->resp;
}

/// Sparse 32-bit register file with access logging — stands in for any
/// AXI4-Lite device under test.
class ScratchRegs : public axi::AxiLiteSlave {
 public:
  explicit ScratchRegs(std::string name, u32 latency = 1)
      : AxiLiteSlave(std::move(name), latency) {}

  std::map<Addr, u32> regs;
  std::vector<std::pair<Addr, u32>> write_log;

 protected:
  u32 read_reg(Addr addr) override {
    const auto it = regs.find(addr);
    return it == regs.end() ? 0 : it->second;
  }
  void write_reg(Addr addr, u32 value) override {
    regs[addr] = value;
    write_log.emplace_back(addr, value);
  }
};

// ---- trace-stream assertion helpers (obs::TraceSink) ----
//
// These read the retained ring only, so tests using them should size
// the sink (or keep runs short) such that the events they assert on
// are not evicted. All helpers are RVCAP_NO_TRACE-safe: with tracing
// compiled out no events are ever emitted, so guard tests with
//   if (!obs::trace_compiled_in()) GTEST_SKIP();

/// All retained events of one kind, optionally restricted to a source.
inline std::vector<obs::TraceEvent> events_of(const obs::TraceSink& sink,
                                              obs::EventKind kind,
                                              std::string_view src = {}) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.kind != kind) continue;
    if (!src.empty() && sink.source_name(e.src) != src) continue;
    out.push_back(e);
  }
  return out;
}

/// Retained events with ts in [from, to] (inclusive), oldest first.
inline std::vector<obs::TraceEvent> events_between(const obs::TraceSink& sink,
                                                   Cycles from, Cycles to) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.ts >= from && e.ts <= to) out.push_back(e);
  }
  return out;
}

/// Count of retained events of one kind.
inline usize count_events(const obs::TraceSink& sink, obs::EventKind kind,
                          std::string_view src = {}) {
  return events_of(sink, kind, src).size();
}

/// EXPECT that at least one event of `kind` was retained; returns a
/// pointer to the first match (nullptr on failure) so callers can
/// assert on its payload.
inline const obs::TraceEvent* expect_event(const obs::TraceSink& sink,
                                           obs::EventKind kind,
                                           std::string_view src = {}) {
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.kind != kind) continue;
    if (!src.empty() && sink.source_name(e.src) != src) continue;
    return &e;
  }
  ADD_FAILURE() << "no retained trace event of kind '"
                << obs::event_name(kind) << "'"
                << (src.empty() ? "" : " from source '")
                << (src.empty() ? "" : std::string(src) + "'");
  return nullptr;
}

/// EXPECT that every `before` event precedes every `after` event in
/// emission order (causality: e.g. all kSvcDispatch before kSvcHang).
inline void expect_ordered(const obs::TraceSink& sink, obs::EventKind before,
                           obs::EventKind after) {
  bool saw_after = false;
  usize idx = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.kind == after) saw_after = true;
    if (e.kind == before && saw_after) {
      ADD_FAILURE() << "trace ordering violated: '"
                    << obs::event_name(before) << "' at ring index " << idx
                    << " appears after an '" << obs::event_name(after)
                    << "'";
      return;
    }
    ++idx;
  }
}

}  // namespace rvcap::test
