// Coverage for the smaller components: floorplan rendering, the lite
// peripheral bus, channel wires, and the UART model.
#include <gtest/gtest.h>

#include <sstream>

#include "axi/lite_bus.hpp"
#include "axi/wires.hpp"
#include "fabric/floorplan.hpp"
#include "sim/simulator.hpp"
#include "soc/uart.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

TEST(Floorplan, RendersGridWithPartitionMarker) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp = fabric::case_study_partition(dev);
  const fabric::FloorplanRegion regions[] = {{"RP0", &rp, '#'}};
  const std::string fp = fabric::render_floorplan(dev, regions);

  // One line per row plus legend; the marker appears exactly 13 times
  // (the partition's columns, one row).
  EXPECT_NE(fp.find("Y0"), std::string::npos);
  EXPECT_NE(fp.find("Y6"), std::string::npos);
  EXPECT_NE(fp.find("legend"), std::string::npos);
  EXPECT_NE(fp.find("RP0"), std::string::npos);
  EXPECT_NE(fp.find("3200 LUT"), std::string::npos);
  usize markers = 0;
  for (char c : fp) markers += (c == '#');
  EXPECT_EQ(markers, 13u + 1u);  // 13 grid cells + 1 legend occurrence
}

TEST(Floorplan, NoRegionsStillRendersDevice) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const std::string fp = fabric::render_floorplan(dev, {});
  // 72 CLB columns per row, 7 rows — counted on grid lines only (the
  // header and legend also contain '.' characters).
  usize clbs = 0;
  std::istringstream lines(fp);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("  Y", 0) != 0) continue;
    for (char c : line) clbs += (c == '.');
  }
  EXPECT_EQ(clbs, 72u * 7u);
}

struct LiteBusFixture : ::testing::Test {
  LiteBusFixture()
      : bus("litebus"), dev_a("a", 1), dev_b("b", 1) {
    bus.add_device(axi::AddrRange{0x1000, 0x100}, &dev_a.port());
    bus.add_device(axi::AddrRange{0x2000, 0x100}, &dev_b.port());
    s.add(&bus);
    s.add(&dev_a);
    s.add(&dev_b);
  }
  sim::Simulator s;
  axi::LiteBus bus;
  test::ScratchRegs dev_a, dev_b;
};

TEST_F(LiteBusFixture, RoutesByWindow) {
  bus.upstream().aw.push(axi::LiteAw{0x1010});
  bus.upstream().w.push(axi::LiteW{42, 0xF});
  ASSERT_TRUE(s.run_until([&] { return bus.upstream().b.can_pop(); }, 1000));
  EXPECT_EQ(bus.upstream().b.pop()->resp, axi::Resp::kOkay);
  EXPECT_EQ(dev_a.regs[0x1010], 42u);
  EXPECT_TRUE(dev_b.write_log.empty());
}

TEST_F(LiteBusFixture, ReadReturnsDeviceData) {
  dev_b.regs[0x2004] = 0xBEEF;
  bus.upstream().ar.push(axi::LiteAr{0x2004});
  ASSERT_TRUE(s.run_until([&] { return bus.upstream().r.can_pop(); }, 1000));
  EXPECT_EQ(bus.upstream().r.pop()->data, 0xBEEFu);
}

TEST_F(LiteBusFixture, UnmappedAccessGetsDecErr) {
  bus.upstream().ar.push(axi::LiteAr{0x9999});
  ASSERT_TRUE(s.run_until([&] { return bus.upstream().r.can_pop(); }, 1000));
  EXPECT_EQ(bus.upstream().r.pop()->resp, axi::Resp::kDecErr);
  bus.upstream().aw.push(axi::LiteAw{0x9999});
  bus.upstream().w.push(axi::LiteW{1, 0xF});
  ASSERT_TRUE(s.run_until([&] { return bus.upstream().b.can_pop(); }, 1000));
  EXPECT_EQ(bus.upstream().b.pop()->resp, axi::Resp::kDecErr);
  EXPECT_EQ(bus.decode_errors(), 2u);
}

TEST_F(LiteBusFixture, ResponsesStayInRequestOrder) {
  dev_a.regs[0x1000] = 1;
  dev_b.regs[0x2000] = 2;
  bus.upstream().ar.push(axi::LiteAr{0x1000});
  bus.upstream().ar.push(axi::LiteAr{0x2000});
  std::vector<u32> got;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (bus.upstream().r.can_pop()) {
          got.push_back(bus.upstream().r.pop()->data);
        }
        return got.size() == 2;
      },
      1000));
  EXPECT_EQ(got, (std::vector<u32>{1, 2}));
}

TEST_F(LiteBusFixture, OverlappingWindowRejected) {
  axi::AxiLitePort extra;
  EXPECT_THROW(bus.add_device(axi::AddrRange{0x1080, 0x100}, &extra),
               std::invalid_argument);
}

TEST(Wires, AxisWireMovesOneBeatPerCycle) {
  sim::Simulator s;
  axi::AxisFifo a(8), b(8);
  axi::AxisWire wire("w", a, b);
  s.add(&wire);
  for (u64 i = 0; i < 5; ++i) a.push(axi::AxisBeat{i});
  s.run_cycles(5);
  EXPECT_EQ(b.size(), 5u);
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(b.pop()->data, i);
}

TEST(Wires, LiteWireCarriesBothDirections) {
  sim::Simulator s;
  axi::AxiLitePort a, b;
  axi::LiteWire wire("w", a, b);
  s.add(&wire);
  a.ar.push(axi::LiteAr{0x4});
  s.run_cycles(2);
  ASSERT_TRUE(b.ar.can_pop());
  b.r.push(axi::LiteR{7, axi::Resp::kOkay});
  s.run_cycles(2);
  ASSERT_TRUE(a.r.can_pop());
  EXPECT_EQ(a.r.pop()->data, 7u);
}

TEST(UartModel, LsrAlwaysReady) {
  sim::Simulator s;
  soc::Uart uart("uart");
  s.add(&uart);
  uart.port().ar.push(axi::LiteAr{soc::Uart::kLsr});
  ASSERT_TRUE(s.run_until([&] { return uart.port().r.can_pop(); }, 100));
  EXPECT_EQ(uart.port().r.pop()->data & 0x60, 0x60u);
}

}  // namespace
}  // namespace rvcap
