// Relocation and scrubbing: the safe-DPR extension suite.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/relocate.hpp"
#include "driver/scrubber.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using bitstream::partitions_compatible;
using bitstream::relocate_bitstream;
using driver::DmaMode;
using driver::Scrubber;
using fabric::Partition;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

// ---------------------------------------------------------------------------
// Relocation
// ---------------------------------------------------------------------------

struct RelocFixture : ::testing::Test {
  RelocFixture() : soc(SocConfig{}), drv(soc.cpu(), soc.plic()) {}
  ArianeSoc soc;
  driver::RvCapDriver drv;
};

TEST_F(RelocFixture, CompatibilityRules) {
  const auto& dev = soc.device();
  const Partition a("a", {{0, 2}, {0, 3}});       // CLB CLB
  const Partition b("b", {{4, 10}, {4, 11}});     // CLB CLB, other row
  const Partition c("c", {{0, 2}});               // one CLB
  const Partition d("d", {{0, 2}, {0, 4}});       // CLB CLB, gap
  const Partition e("e", {{0, 2}, {0, 26}});      // CLB BRAM
  EXPECT_TRUE(partitions_compatible(dev, a, b));
  EXPECT_TRUE(partitions_compatible(dev, b, a));
  EXPECT_FALSE(partitions_compatible(dev, a, c));  // size mismatch
  EXPECT_FALSE(partitions_compatible(dev, a, d));  // contiguity mismatch
  EXPECT_FALSE(partitions_compatible(dev, a, e));  // type mismatch
}

TEST_F(RelocFixture, RelocatedBitstreamIsStructurallyValid) {
  const auto& dev = soc.device();
  const Partition from("from", {{0, 2}, {0, 3}});
  const Partition to("to", {{4, 10}, {4, 11}});
  const auto pbit =
      bitstream::generate_partial_bitstream(dev, from, {9, "m"});
  std::vector<u8> moved;
  ASSERT_EQ(relocate_bitstream(dev, from, to, pbit, &moved), Status::kOk);
  EXPECT_EQ(moved.size(), pbit.size());

  bitstream::ParsedBitstream parsed;
  ASSERT_EQ(bitstream::parse_bitstream(moved, &parsed), Status::kOk);
  EXPECT_TRUE(parsed.crc_ok) << "CRC checkpoints must be recomputed";
  ASSERT_EQ(parsed.sections.size(), 1u);
  EXPECT_EQ(parsed.sections[0].start, (fabric::FrameAddr{4, 10, 0}));
}

TEST_F(RelocFixture, RelocatedModuleActivatesInTargetPartition) {
  const auto& dev = soc.device();
  // The case-study window exists at every row: relocate RP0's module
  // from row 3 to the same columns in row 1.
  std::vector<Partition::ColumnRef> cols;
  for (u32 c = 37; c <= 49; ++c) cols.push_back({1, c});
  const Partition rp_alt("RP_ALT", cols);
  const usize h_alt = soc.add_partition(rp_alt);

  const auto pbit = bitstream::generate_partial_bitstream(
      dev, soc.rp0(), {accel::kRmIdMedian, "median"});
  std::vector<u8> moved;
  ASSERT_EQ(relocate_bitstream(dev, soc.rp0(), rp_alt, pbit, &moved),
            Status::kOk);

  soc.ddr().poke(MemoryMap::kPbitStagingBase, moved);
  driver::ReconfigModule m{"", accel::kRmIdMedian,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(moved.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);

  EXPECT_FALSE(soc.icap().crc_error());
  const auto st_alt = soc.config_memory().partition_state(h_alt);
  EXPECT_TRUE(st_alt.loaded);
  EXPECT_EQ(st_alt.rm_id, accel::kRmIdMedian);
  // RP0 itself is untouched.
  EXPECT_FALSE(
      soc.config_memory().partition_state(soc.rp0_handle()).loaded);
}

TEST_F(RelocFixture, IncompatibleRelocationRejected) {
  const auto& dev = soc.device();
  const Partition from("from", {{0, 2}, {0, 3}});
  const Partition bad("bad", {{0, 2}});
  const auto pbit =
      bitstream::generate_partial_bitstream(dev, from, {9, "m"});
  std::vector<u8> out;
  EXPECT_EQ(relocate_bitstream(dev, from, bad, pbit, &out),
            Status::kInvalidArgument);
}

TEST_F(RelocFixture, MalformedInputRejected) {
  const auto& dev = soc.device();
  const Partition a("a", {{0, 2}}), b("b", {{1, 2}});
  std::vector<u8> out;
  const u8 junk[] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(relocate_bitstream(dev, a, b, junk, &out),
            Status::kProtocolError);
}

// ---------------------------------------------------------------------------
// Scrubbing
// ---------------------------------------------------------------------------

struct ScrubFixture : ::testing::Test {
  ScrubFixture()
      : soc(SocConfig{}),
        drv(soc.cpu(), soc.plic()),
        scrubber(drv, soc.device(),
                 Scrubber::Config{0x8C00'0000, 0x8D00'0000}) {}

  driver::ReconfigModule load(u32 rm_id) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, "m"});
    soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", rm_id, MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    EXPECT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
    return m;
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  Scrubber scrubber;
};

TEST_F(ScrubFixture, CleanPartitionScrubsClean) {
  load(accel::kRmIdSobel);
  ASSERT_EQ(scrubber.snapshot(soc.rp0()), Status::kOk);
  bool clean = false;
  EXPECT_EQ(scrubber.scrub(soc.rp0(), &clean), Status::kOk);
  EXPECT_TRUE(clean);
  EXPECT_EQ(scrubber.stats().detections, 0u);
  EXPECT_GT(scrubber.stats().words_scrubbed, 160'000u);
}

TEST_F(ScrubFixture, ScrubWithoutSnapshotRejected) {
  EXPECT_EQ(scrubber.scrub(soc.rp0()), Status::kInternal);
}

TEST_F(ScrubFixture, DetectsInjectedUpset) {
  load(accel::kRmIdMedian);
  ASSERT_EQ(scrubber.snapshot(soc.rp0()), Status::kOk);
  // Flip one configuration bit deep inside the partition.
  const auto addrs = soc.rp0().frame_addrs(soc.device());
  ASSERT_TRUE(soc.config_memory().inject_upset(addrs[400], 77, 13));
  bool clean = true;
  EXPECT_EQ(scrubber.scrub(soc.rp0(), &clean), Status::kCrcError);
  EXPECT_FALSE(clean);
  EXPECT_EQ(scrubber.stats().detections, 1u);
  // The functional model keeps the module loaded (an SEU is silent) —
  // which is exactly why scrubbing is needed.
  EXPECT_TRUE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
}

TEST_F(ScrubFixture, RepairRestoresPartition) {
  const auto m = load(accel::kRmIdGaussian);
  ASSERT_EQ(scrubber.snapshot(soc.rp0()), Status::kOk);
  const auto addrs = soc.rp0().frame_addrs(soc.device());
  ASSERT_TRUE(soc.config_memory().inject_upset(addrs[10], 5, 31));

  ASSERT_EQ(scrubber.scrub_and_repair(soc.rp0(), m), Status::kOk);
  EXPECT_EQ(scrubber.stats().repairs, 1u);

  // Post-repair: clean scrub and an active module again.
  bool clean = false;
  EXPECT_EQ(scrubber.scrub(soc.rp0(), &clean), Status::kOk);
  EXPECT_TRUE(clean);
  const auto st = soc.config_memory().partition_state(soc.rp0_handle());
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdGaussian);
}

TEST_F(ScrubFixture, RepairSkippedWhenClean) {
  const auto m = load(accel::kRmIdSobel);
  ASSERT_EQ(scrubber.snapshot(soc.rp0()), Status::kOk);
  ASSERT_EQ(scrubber.scrub_and_repair(soc.rp0(), m), Status::kOk);
  EXPECT_EQ(scrubber.stats().repairs, 0u);
}

TEST_F(ScrubFixture, UpsetInjectionBoundsChecked) {
  load(accel::kRmIdSobel);
  const auto addrs = soc.rp0().frame_addrs(soc.device());
  EXPECT_FALSE(soc.config_memory().inject_upset(
      fabric::FrameAddr{60, 0, 0}, 0, 0));              // invalid frame
  EXPECT_FALSE(soc.config_memory().inject_upset(addrs[0], 999, 0));
  EXPECT_FALSE(soc.config_memory().inject_upset(addrs[0], 0, 40));
}

}  // namespace
}  // namespace rvcap
