#include <gtest/gtest.h>

#include <optional>

#include "axi/crossbar.hpp"
#include "common/bytes.hpp"
#include "common/log.hpp"
#include "mem/sram.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using axi::AddrRange;
using axi::AxiCrossbar;
using axi::AxiPort;
using axi::Resp;
using test::bfm_read64;
using test::bfm_read_burst;
using test::bfm_write64;
using test::bfm_write_burst;

struct XbarFixture : ::testing::Test {
  XbarFixture()
      : xbar("xbar"), mem_a("mem_a", 4096), mem_b("mem_b", 4096) {
    xbar.add_manager(&m0);
    xbar.add_manager(&m1);
    xbar.add_subordinate(AddrRange{0x1000, 0x1000}, &mem_a.port());
    xbar.add_subordinate(AddrRange{0x8000, 0x1000}, &mem_b.port());
    s.add(&xbar);
    s.add(&mem_a);
    s.add(&mem_b);
    quiet.emplace(LogLevel::kError);
  }

  sim::Simulator s;
  AxiPort m0, m1;
  AxiCrossbar xbar;
  mem::AxiSram mem_a, mem_b;
  std::optional<ScopedLogLevel> quiet;
};

TEST_F(XbarFixture, RoutesWriteThenReadBack) {
  EXPECT_EQ(bfm_write64(s, m0, 0x1010, 0xCAFEBABEDEADBEEF), Resp::kOkay);
  const auto [v, r] = bfm_read64(s, m0, 0x1010);
  EXPECT_EQ(r, Resp::kOkay);
  EXPECT_EQ(v, 0xCAFEBABEDEADBEEFULL);
}

TEST_F(XbarFixture, RoutesByAddressWindow) {
  bfm_write64(s, m0, 0x1000, 111);
  bfm_write64(s, m0, 0x8000, 222);
  EXPECT_EQ(bfm_read64(s, m0, 0x1000).first, 111u);
  EXPECT_EQ(bfm_read64(s, m0, 0x8000).first, 222u);
  // The two windows are different devices: offset 0 of each.
  u8 a0[8], b0[8];
  mem_a.peek(0, a0);
  mem_b.peek(0, b0);
  EXPECT_EQ(load_le64(a0), 111u);
  EXPECT_EQ(load_le64(b0), 222u);
}

TEST_F(XbarFixture, UnmappedReadGetsDecErr) {
  const auto [v, r] = bfm_read64(s, m0, 0xFF000);
  EXPECT_EQ(r, Resp::kDecErr);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(xbar.decode_errors(), 1u);
}

TEST_F(XbarFixture, UnmappedWriteGetsDecErr) {
  EXPECT_EQ(bfm_write64(s, m0, 0xFF000, 1), Resp::kDecErr);
  EXPECT_EQ(xbar.decode_errors(), 1u);
}

TEST_F(XbarFixture, UnmappedBurstReadReturnsAllBeats) {
  m0.ar.push(axi::AxiAr{0xFF000, 3, 3});  // 4 beats, unmapped
  int beats = 0;
  bool saw_last = false;
  while (!saw_last) {
    ASSERT_TRUE(s.run_until([&] { return m0.r.can_pop(); }, 1000));
    const axi::AxiR r = *m0.r.pop();
    EXPECT_EQ(r.resp, Resp::kDecErr);
    ++beats;
    saw_last = r.last;
  }
  EXPECT_EQ(beats, 4);
}

TEST_F(XbarFixture, TwoManagersReachDisjointSlavesConcurrently) {
  bfm_write64(s, m0, 0x1020, 0xA);
  bfm_write64(s, m1, 0x8020, 0xB);
  EXPECT_EQ(bfm_read64(s, m0, 0x1020).first, 0xAu);
  EXPECT_EQ(bfm_read64(s, m1, 0x8020).first, 0xBu);
}

TEST_F(XbarFixture, TwoManagersContendOnOneSlaveWithoutCorruption) {
  // Kick off both writes in the same cycle; arbitration must serialize
  // them without mixing W beats.
  m0.aw.push(axi::AxiAw{0x1100, 0, 3});
  m0.w.push(axi::AxiW{0x1111111111111111ULL, 0xFF, true});
  m1.aw.push(axi::AxiAw{0x1108, 0, 3});
  m1.w.push(axi::AxiW{0x2222222222222222ULL, 0xFF, true});
  ASSERT_TRUE(s.run_until(
      [&] { return m0.b.can_pop() && m1.b.can_pop(); }, 10000));
  m0.b.pop();
  m1.b.pop();
  EXPECT_EQ(bfm_read64(s, m0, 0x1100).first, 0x1111111111111111ULL);
  EXPECT_EQ(bfm_read64(s, m1, 0x1108).first, 0x2222222222222222ULL);
}

TEST_F(XbarFixture, BurstWriteAndReadBack) {
  std::vector<u64> data = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(bfm_write_burst(s, m0, 0x1200, data), Resp::kOkay);
  const auto out = bfm_read_burst(s, m0, 0x1200, 8);
  EXPECT_EQ(out, data);
}

TEST_F(XbarFixture, InterleavedBurstReadsStayOrdered) {
  std::vector<u64> da = {10, 11, 12, 13}, db = {20, 21, 22, 23};
  bfm_write_burst(s, m0, 0x1300, da);
  bfm_write_burst(s, m0, 0x8300, db);
  // Both managers read 4-beat bursts from *different* subs in parallel.
  m0.ar.push(axi::AxiAr{0x1300, 3, 3});
  m1.ar.push(axi::AxiAr{0x8300, 3, 3});
  std::vector<u64> ra, rb;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (m0.r.can_pop()) ra.push_back(m0.r.pop()->data);
        while (m1.r.can_pop()) rb.push_back(m1.r.pop()->data);
        return ra.size() == 4 && rb.size() == 4;
      },
      10000));
  EXPECT_EQ(ra, da);
  EXPECT_EQ(rb, db);
}

TEST_F(XbarFixture, OverlappingWindowRejected) {
  AxiPort extra;
  EXPECT_THROW(xbar.add_subordinate(AddrRange{0x1800, 0x1000}, &extra),
               std::invalid_argument);
}

TEST_F(XbarFixture, BusyReflectsInFlightTransactions) {
  EXPECT_FALSE(xbar.busy());
  m0.ar.push(axi::AxiAr{0x1000, 0, 3});
  s.step();
  EXPECT_TRUE(xbar.busy());
  ASSERT_TRUE(s.run_until([&] { return m0.r.can_pop(); }, 1000));
  m0.r.pop();
  EXPECT_FALSE(xbar.busy());
}

TEST(AddrRange, ContainsAndOverlaps) {
  const AddrRange r{0x1000, 0x100};
  EXPECT_TRUE(r.contains(0x1000));
  EXPECT_TRUE(r.contains(0x10FF));
  EXPECT_FALSE(r.contains(0x1100));
  EXPECT_FALSE(r.contains(0xFFF));
  EXPECT_TRUE(r.overlaps(AddrRange{0x10F0, 0x100}));
  EXPECT_FALSE(r.overlaps(AddrRange{0x1100, 0x100}));
}

}  // namespace
}  // namespace rvcap
