// DPR manager: module registry, staging cache (LRU), activation
// shortcuts, and cost accounting.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/spi_sd.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

namespace rvcap {
namespace {

using driver::DprManager;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

// Pre-staged-modules fixture (no SD involvement).
struct ManagerFixture : ::testing::Test {
  ManagerFixture()
      : soc(SocConfig{}),
        drv(soc.cpu(), soc.plic()),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    stage("sobel", accel::kRmIdSobel, 0x8800'0000);
    stage("median", accel::kRmIdMedian, 0x8880'0000);
    stage("gaussian", accel::kRmIdGaussian, 0x8900'0000);
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  DprManager mgr;
};

TEST_F(ManagerFixture, ActivateLoadsModule) {
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_EQ(mgr.stats().reconfigurations, 1u);
  EXPECT_GT(mgr.total_reconfig_us(), 1000.0);
}

TEST_F(ManagerFixture, RepeatActivationSkipsReconfiguration) {
  ASSERT_EQ(mgr.activate("median"), Status::kOk);
  ASSERT_EQ(mgr.activate("median"), Status::kOk);
  ASSERT_EQ(mgr.activate("median"), Status::kOk);
  EXPECT_EQ(mgr.stats().reconfigurations, 1u);
  EXPECT_EQ(mgr.stats().already_active_hits, 2u);
  EXPECT_EQ(mgr.stats().activation_requests, 3u);
}

TEST_F(ManagerFixture, SwitchingModulesReconfigures) {
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(mgr.activate("gaussian"), Status::kOk);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(mgr.stats().reconfigurations, 3u);
  EXPECT_EQ(mgr.active_module(), "sobel");
}

TEST_F(ManagerFixture, UnknownModuleNotFound) {
  EXPECT_EQ(mgr.activate("does-not-exist"), Status::kNotFound);
  EXPECT_EQ(mgr.prefetch("nope"), Status::kNotFound);
}

TEST_F(ManagerFixture, DuplicateRegistrationRejected) {
  EXPECT_EQ(mgr.register_staged("sobel", 9, 0x8000'0000, 4),
            Status::kAlreadyExists);
}

TEST_F(ManagerFixture, FileBackedRegistrationNeedsVolume) {
  EXPECT_EQ(mgr.register_module("x", 9, "X.PB"), Status::kInvalidArgument);
}

// SD-backed fixture with a tiny partition so staging stays fast.
struct SdManagerFixture : ::testing::Test {
  SdManagerFixture()
      : soc(SocConfig{}),
        drv(soc.cpu(), soc.plic()),
        small_a("RPA", {{0, 2}}),
        small_b("RPB", {{0, 4}}),
        host_io(soc.sd_card()) {
    // Manager over the small partition A.
    handle_a = soc.add_partition(small_a);
    EXPECT_EQ(storage::fat32_format(host_io), Status::kOk);
    storage::Fat32Volume host_vol(host_io);
    EXPECT_EQ(host_vol.mount(), Status::kOk);
    for (u32 id : {40u, 41u, 42u}) {
      const auto pbit = bitstream::generate_partial_bitstream(
          soc.device(), small_a, {id, "m"});
      EXPECT_EQ(host_vol.write_file("M" + std::to_string(id) + ".PB", pbit),
                Status::kOk);
      pbit_size = static_cast<u32>(pbit.size());
    }

    sd = std::make_unique<driver::SpiSdDriver>(soc.cpu());
    EXPECT_EQ(sd->init_card(), Status::kOk);
    io = std::make_unique<driver::CpuBlockIo>(*sd,
                                              soc.sd_card().block_count());
    vol = std::make_unique<storage::Fat32Volume>(*io);
    EXPECT_EQ(vol->mount(), Status::kOk);

    DprManager::Config cfg;
    cfg.num_slots = 2;  // force evictions with 3 modules
    cfg.slot_bytes = 64 * 1024;
    mgr = std::make_unique<DprManager>(drv, soc.config_memory(), handle_a,
                                       vol.get(), cfg);
    for (u32 id : {40u, 41u, 42u}) {
      EXPECT_EQ(mgr->register_module("m" + std::to_string(id), id,
                                     "M" + std::to_string(id) + ".PB"),
                Status::kOk);
    }
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  fabric::Partition small_a, small_b;
  usize handle_a = 0;
  u32 pbit_size = 0;
  storage::MemBlockIo host_io;
  std::unique_ptr<driver::SpiSdDriver> sd;
  std::unique_ptr<driver::CpuBlockIo> io;
  std::unique_ptr<storage::Fat32Volume> vol;
  std::unique_ptr<DprManager> mgr;
};

TEST_F(SdManagerFixture, MissLoadsFromSdThenHits) {
  ASSERT_EQ(mgr->activate("m40"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_loads, 1u);
  ASSERT_EQ(mgr->activate("m41"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_loads, 2u);
  // Re-activating m40: staged copy still resident (2 slots).
  ASSERT_EQ(mgr->activate("m40"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_hits, 1u);
  EXPECT_EQ(mgr->stats().staging_loads, 2u);
}

TEST_F(SdManagerFixture, LruEvictionWithTwoSlots) {
  ASSERT_EQ(mgr->activate("m40"), Status::kOk);  // slot 0
  ASSERT_EQ(mgr->activate("m41"), Status::kOk);  // slot 1
  ASSERT_EQ(mgr->activate("m42"), Status::kOk);  // evicts m40 (LRU)
  EXPECT_EQ(mgr->stats().evictions, 1u);
  // m41 must still be resident; m40 needs a reload.
  ASSERT_EQ(mgr->activate("m41"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_hits, 1u);
  const u64 loads_before = mgr->stats().staging_loads;
  ASSERT_EQ(mgr->activate("m40"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_loads, loads_before + 1);
}

TEST_F(SdManagerFixture, PrefetchAvoidsLaterStall) {
  ASSERT_EQ(mgr->prefetch("m42"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_loads, 1u);
  EXPECT_EQ(mgr->stats().reconfigurations, 0u);
  ASSERT_EQ(mgr->activate("m42"), Status::kOk);
  EXPECT_EQ(mgr->stats().staging_hits, 1u);
  EXPECT_EQ(mgr->stats().reconfigurations, 1u);
}

TEST_F(SdManagerFixture, OversizedModuleRejected) {
  storage::Fat32Volume host_vol(host_io);
  ASSERT_EQ(host_vol.mount(), Status::kOk);
  std::vector<u8> big(128 * 1024, 1);  // > slot_bytes
  ASSERT_EQ(host_vol.write_file("BIG.PB", big), Status::kOk);
  EXPECT_EQ(mgr->register_module("big", 50, "BIG.PB"), Status::kNoSpace);
}

}  // namespace
}  // namespace rvcap
