// Robustness and property tests: interconnect fuzzing against a
// reference model, filesystem fragmentation, misprogramming, and
// failure-injection scenarios.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "axi/crossbar.hpp"
#include "bitstream/generator.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "cpu/cpu.hpp"
#include "driver/rvcap_driver.hpp"
#include "mem/sram.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

// ---------------------------------------------------------------------------
// Crossbar fuzz: two managers, two memories, random traffic vs. a
// reference model (addresses disjoint per manager to keep ordering
// deterministic).
// ---------------------------------------------------------------------------

class XbarFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(XbarFuzz, RandomTrafficMatchesReferenceModel) {
  sim::Simulator s;
  axi::AxiCrossbar xbar("xbar");
  mem::AxiSram mem_a("a", 8192), mem_b("b", 8192);
  axi::AxiPort m0, m1;
  xbar.add_manager(&m0);
  xbar.add_manager(&m1);
  xbar.add_subordinate(axi::AddrRange{0x0000, 0x2000}, &mem_a.port());
  xbar.add_subordinate(axi::AddrRange{0x8000, 0x2000}, &mem_b.port());
  s.add(&xbar);
  s.add(&mem_a);
  s.add(&mem_b);

  SplitMix64 rng(GetParam());
  std::map<Addr, u64> ref;

  for (int step = 0; step < 300; ++step) {
    axi::AxiPort& port = (rng.next() & 1) ? m1 : m0;
    const bool manager1 = (&port == &m1);
    // Manager 0 owns even 8-byte slots, manager 1 odd ones: no cross-
    // manager write races, matching real software partitioning.
    Addr addr = (rng.next_below(512) * 16) + (manager1 ? 8 : 0);
    if (rng.next() & 1) addr += 0x8000;
    if (addr >= 0x2000 && addr < 0x8000) addr &= 0x1FFF;

    if (rng.next() & 1) {
      const u64 value = rng.next();
      EXPECT_EQ(test::bfm_write64(s, port, addr, value), axi::Resp::kOkay);
      ref[addr] = value;
    } else {
      const auto [v, resp] = test::bfm_read64(s, port, addr);
      EXPECT_EQ(resp, axi::Resp::kOkay);
      const auto it = ref.find(addr);
      EXPECT_EQ(v, it == ref.end() ? 0 : it->second) << "addr " << addr;
    }
  }
  EXPECT_EQ(xbar.decode_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XbarFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// FAT32 fragmentation: interleaved writes/deletes force fragmented
// cluster chains; data must survive.
// ---------------------------------------------------------------------------

TEST(Fat32Fragmentation, FragmentedChainsStayIntact) {
  storage::SdCard card(131072);
  storage::MemBlockIo io(card);
  ASSERT_EQ(storage::fat32_format(io), Status::kOk);
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);

  SplitMix64 rng(123);
  // Interleave small files to checkerboard the FAT...
  std::vector<u8> small(4096);
  for (int i = 0; i < 40; ++i) {
    for (auto& b : small) b = rng.next_byte();
    char name[16];
    std::snprintf(name, sizeof name, "S%02d.BIN", i);
    ASSERT_EQ(vol.write_file(name, small), Status::kOk);
  }
  // ...then free every other one...
  for (int i = 0; i < 40; i += 2) {
    char name[16];
    std::snprintf(name, sizeof name, "S%02d.BIN", i);
    ASSERT_EQ(vol.remove(name), Status::kOk);
  }
  // ...and write a large file into the holes (fragmented by design).
  std::vector<u8> big(40 * 4096);
  for (auto& b : big) b = rng.next_byte();
  ASSERT_EQ(vol.write_file("BIG.BIN", big), Status::kOk);

  std::vector<u8> back;
  ASSERT_EQ(vol.read_file("BIG.BIN", back), Status::kOk);
  EXPECT_EQ(back, big);
  // The survivors too.
  for (int i = 1; i < 40; i += 2) {
    char name[16];
    std::snprintf(name, sizeof name, "S%02d.BIN", i);
    u32 size = 0;
    EXPECT_EQ(vol.file_size(name, &size), Status::kOk) << name;
    EXPECT_EQ(size, 4096u);
  }
}

// ---------------------------------------------------------------------------
// Misprogramming and failure injection on the full SoC
// ---------------------------------------------------------------------------

struct Misuse : ::testing::Test {
  Misuse() : soc(SocConfig{}), drv(soc.cpu(), soc.plic()) {}
  ArianeSoc soc;
  driver::RvCapDriver drv;
};

TEST_F(Misuse, ReconfigWithoutSelectIcapNeverTouchesIcap) {
  ScopedLogLevel quiet(LogLevel::kError);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  // Forgotten select_ICAP: stream goes to the (decoupled) RM route.
  drv.decouple_accel(true);
  ASSERT_EQ(drv.reconfigure_RP(MemoryMap::kPbitStagingBase,
                               static_cast<u32>(pbit.size()),
                               driver::DmaMode::kInterrupt),
            Status::kOk);  // the DMA itself completes fine
  drv.decouple_accel(false);
  EXPECT_EQ(soc.icap().words_consumed(), 0u);
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
  // All beats were dropped by the isolator, none leaked to the RM.
  EXPECT_EQ(soc.rvcap().isolator().dropped_beats(), (pbit.size() + 7) / 8);
}

TEST_F(Misuse, ZeroLengthDmaWriteIsIgnored) {
  ScopedLogLevel quiet(LogLevel::kError);
  soc.cpu().store32_uncached(MemoryMap::kDmaCtrl.base +
                                 rvcap_ctrl::AxiDma::kMm2sCr,
                             rvcap_ctrl::AxiDma::kCrRunStop);
  soc.cpu().store32_uncached(MemoryMap::kDmaCtrl.base +
                                 rvcap_ctrl::AxiDma::kMm2sLength,
                             0);
  soc.sim().run_cycles(100);
  EXPECT_TRUE(soc.rvcap().dma().mm2s_idle());
}

TEST_F(Misuse, RmRegisterAccessWhileDecoupledIsBlocked) {
  // Load a module first so registers exist behind the isolator.
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, driver::DmaMode::kInterrupt),
            Status::kOk);
  soc.sim().run_cycles(4);
  ASSERT_EQ(drv.rm_reg_read(0), 512u);

  drv.decouple_accel(true);
  EXPECT_EQ(drv.rm_reg_read(0), 0u);  // reads as zeros while isolated
  drv.rm_reg_write(0, 64);            // dropped
  drv.decouple_accel(false);
  EXPECT_EQ(drv.rm_reg_read(0), 512u) << "write must not have landed";
  EXPECT_GE(soc.rvcap().rp_control().blocked_rm_accesses(), 2u);
}

TEST_F(Misuse, UnmappedCpuAccessGetsErrorNotHang) {
  ScopedLogLevel quiet(LogLevel::kOff);
  const u64 errors_before = soc.cpu().bus_errors();
  (void)soc.cpu().load32_uncached(0x7000'0000);  // hole in the map
  EXPECT_EQ(soc.cpu().bus_errors(), errors_before + 1);
}

TEST_F(Misuse, PlicClaimWithNothingPendingReturnsZero) {
  const u32 src = soc.cpu().load32_uncached(
      MemoryMap::kPlic.base + irq::Plic::kClaimComplete);
  EXPECT_EQ(src, 0u);
}

TEST_F(Misuse, BackToBackReconfigurationsAreStable) {
  // Ten consecutive swaps; every one must land cleanly.
  for (int i = 0; i < 10; ++i) {
    const u32 rm = (i % 3) + 1;
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm, "m"});
    soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", rm, MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    ASSERT_EQ(drv.init_reconfig_process(m, driver::DmaMode::kInterrupt),
              Status::kOk)
        << "iteration " << i;
    const auto st = soc.config_memory().partition_state(soc.rp0_handle());
    ASSERT_TRUE(st.loaded);
    ASSERT_EQ(st.rm_id, rm);
  }
  EXPECT_FALSE(soc.icap().crc_error());
}

// ---------------------------------------------------------------------------
// CPU buffer transfers: alignment edge cases
// ---------------------------------------------------------------------------

class BufferAlignment : public ::testing::TestWithParam<std::tuple<u32, u32>> {
};

TEST_P(BufferAlignment, ReadWriteBufferRoundtrip) {
  const auto [offset, len] = GetParam();
  ArianeSoc soc((SocConfig()));
  SplitMix64 rng(offset * 1000 + len);
  std::vector<u8> data(len);
  for (auto& b : data) b = rng.next_byte();

  const Addr base = MemoryMap::kDdr.base + 0x5000 + offset;
  soc.cpu().write_buffer(base, data);
  std::vector<u8> back(len, 0xEE);
  soc.cpu().read_buffer(base, back);
  EXPECT_EQ(back, data);

  // And the bytes really are in DDR where they belong.
  std::vector<u8> direct(len);
  soc.ddr().peek(base, direct);
  EXPECT_EQ(direct, data);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BufferAlignment,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 7u),
                       ::testing::Values(1u, 7u, 8u, 65u, 513u)));

}  // namespace
}  // namespace rvcap
