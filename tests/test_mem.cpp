#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "mem/ddr.hpp"
#include "mem/sram.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using mem::DdrController;
using test::bfm_read64;
using test::bfm_read_burst;
using test::bfm_write64;
using test::bfm_write_burst;

struct DdrFixture : ::testing::Test {
  DdrFixture() : ddr("ddr") { s.add(&ddr); }
  sim::Simulator s;
  DdrController ddr;
};

TEST_F(DdrFixture, BackdoorPokePeekRoundtrip) {
  const u8 data[] = {1, 2, 3, 4, 5};
  ddr.poke(0x1234, data);
  u8 out[5] = {};
  ddr.peek(0x1234, out);
  EXPECT_EQ(0, std::memcmp(data, out, 5));
}

TEST_F(DdrFixture, UntouchedMemoryReadsZero) {
  EXPECT_EQ(ddr.peek64(0x900000), 0u);
  u8 out[16] = {0xFF};
  ddr.peek(0x900000, out);
  for (u8 b : out) EXPECT_EQ(b, 0);
}

TEST_F(DdrFixture, AxiWriteVisibleViaBackdoor) {
  bfm_write64(s, ddr.port(), 0x100, 0x0102030405060708ULL);
  EXPECT_EQ(ddr.peek64(0x100), 0x0102030405060708ULL);
}

TEST_F(DdrFixture, BackdoorVisibleViaAxiRead) {
  ddr.poke64(0x200, 0xFEEDFACECAFEBEEFULL);
  EXPECT_EQ(bfm_read64(s, ddr.port(), 0x200).first, 0xFEEDFACECAFEBEEFULL);
}

TEST_F(DdrFixture, WriteStrobesAreHonored) {
  ddr.poke64(0x300, 0xAAAAAAAAAAAAAAAAULL);
  bfm_write64(s, ddr.port(), 0x300, 0x00000000BBBBBBBBULL, 0x0F);
  EXPECT_EQ(ddr.peek64(0x300), 0xAAAAAAAABBBBBBBBULL);
}

TEST_F(DdrFixture, FirstBeatLatencyThenStreaming) {
  // A 16-beat burst should cost roughly latency + 16 cycles, not 16x
  // latency: the controller pipelines the data phase.
  for (u32 i = 0; i < 16; ++i) ddr.poke64(0x400 + 8 * i, i);
  const Cycles t0 = s.now();
  const auto beats = bfm_read_burst(s, ddr.port(), 0x400, 16);
  const Cycles dt = s.now() - t0;
  for (u32 i = 0; i < 16; ++i) EXPECT_EQ(beats[i], i);
  EXPECT_GE(dt, 16u);
  EXPECT_LE(dt, 16u + 24u);
}

TEST_F(DdrFixture, BackToBackBurstsPipelineLatency) {
  // Two sequential bursts should not pay the full first-access latency
  // twice: the second AR's countdown overlaps the first's data phase.
  const Cycles t0 = s.now();
  (void)bfm_read_burst(s, ddr.port(), 0x0, 16);
  const Cycles one = s.now() - t0;

  ddr.port().ar.push(axi::AxiAr{0x0, 15, 3});
  ddr.port().ar.push(axi::AxiAr{0x80, 15, 3});
  const Cycles t1 = s.now();
  u32 got = 0;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (ddr.port().r.can_pop()) {
          ddr.port().r.pop();
          ++got;
        }
        return got == 32;
      },
      10000));
  const Cycles two = s.now() - t1;
  EXPECT_LT(two, 2 * one - 4);
}

TEST_F(DdrFixture, FullDuplexReadWriteStreamsConcurrently) {
  // AXI4 R and W data channels are independent: a saturating read
  // stream plus a saturating write stream complete in roughly the time
  // of either alone, not their sum.
  const u32 beats = 64;
  u32 ar_sent = 0, w_sent = 0, r_got = 0, b_got = 0;
  ddr.port().aw.push(axi::AxiAw{0x1000, 63, 3});
  const Cycles t0 = s.now();
  ASSERT_TRUE(s.run_until(
      [&] {
        if (ar_sent < 4 &&
            ddr.port().ar.push(axi::AxiAr{ar_sent * 0x80, 15, 3})) {
          ++ar_sent;
        }
        if (w_sent < beats && ddr.port().w.can_push()) {
          ddr.port().w.push(axi::AxiW{w_sent, 0xFF, w_sent + 1 == beats});
          ++w_sent;
        }
        while (ddr.port().r.can_pop()) {
          ddr.port().r.pop();
          ++r_got;
        }
        while (ddr.port().b.can_pop()) {
          ddr.port().b.pop();
          ++b_got;
        }
        return r_got == beats && b_got == 1;
      },
      10000));
  const Cycles dt = s.now() - t0;
  EXPECT_GE(dt, beats);           // each channel is 1 beat/cycle max
  EXPECT_LE(dt, beats + 64);      // but they overlap, not serialize
}

TEST_F(DdrFixture, BurstWriteReadbackRandomPayload) {
  SplitMix64 rng(77);
  std::vector<u64> payload(32);
  for (auto& v : payload) v = rng.next();
  ASSERT_EQ(bfm_write_burst(s, ddr.port(), 0x2000,
                            std::span<const u64>(payload).first(16)),
            axi::Resp::kOkay);
  ASSERT_EQ(bfm_write_burst(s, ddr.port(), 0x2080,
                            std::span<const u64>(payload).subspan(16)),
            axi::Resp::kOkay);
  const auto a = bfm_read_burst(s, ddr.port(), 0x2000, 16);
  const auto b = bfm_read_burst(s, ddr.port(), 0x2080, 16);
  for (u32 i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], payload[i]);
    EXPECT_EQ(b[i], payload[16 + i]);
  }
}

TEST_F(DdrFixture, PagesAllocatedLazily) {
  DdrController::Config cfg;
  EXPECT_EQ(cfg.size_bytes, 1ULL << 30);
  // Touch two distant pages on a fresh controller; both work.
  ddr.poke64(0, 1);
  ddr.poke64((1ULL << 29), 2);
  EXPECT_EQ(ddr.peek64(0), 1u);
  EXPECT_EQ(ddr.peek64(1ULL << 29), 2u);
}

struct SramFixture : ::testing::Test {
  SramFixture() : ram("boot", 4096) { s.add(&ram); }
  sim::Simulator s;
  mem::AxiSram ram;
};

TEST_F(SramFixture, SingleCycleClassAccess) {
  bfm_write64(s, ram.port(), 0x10, 0x1122334455667788ULL);
  const Cycles t0 = s.now();
  EXPECT_EQ(bfm_read64(s, ram.port(), 0x10).first, 0x1122334455667788ULL);
  EXPECT_LE(s.now() - t0, 4u);
}

TEST_F(SramFixture, BackdoorAndBusAgree) {
  const u8 blob[] = "boot.bin";
  ram.poke(0x40, {blob, sizeof blob});
  u8 out[sizeof blob] = {};
  ram.peek(0x40, out);
  EXPECT_STREQ(reinterpret_cast<const char*>(out), "boot.bin");
}

TEST_F(SramFixture, BurstRoundtrip) {
  std::vector<u64> data{9, 8, 7, 6};
  bfm_write_burst(s, ram.port(), 0x100, data);
  EXPECT_EQ(bfm_read_burst(s, ram.port(), 0x100, 4), data);
}

}  // namespace
}  // namespace rvcap
