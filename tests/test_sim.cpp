#include <gtest/gtest.h>

#include "sim/fifo.hpp"
#include "sim/simulator.hpp"

namespace rvcap::sim {
namespace {

TEST(Fifo, PushPopOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.push(3));
  EXPECT_EQ(*f.pop(), 1);
  EXPECT_EQ(*f.pop(), 2);
  EXPECT_EQ(*f.pop(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(Fifo, RespectsCapacity) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_FALSE(f.push(3));  // full: back-pressure
  EXPECT_TRUE(f.full());
  f.pop();
  EXPECT_TRUE(f.push(3));
}

TEST(Fifo, VacancyTracksOccupancy) {
  Fifo<int> f(8);
  EXPECT_EQ(f.vacancy(), 8u);
  f.push(1);
  f.push(2);
  EXPECT_EQ(f.vacancy(), 6u);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Fifo, FrontPeeksWithoutConsuming) {
  Fifo<int> f(2);
  EXPECT_EQ(f.front(), nullptr);
  f.push(42);
  ASSERT_NE(f.front(), nullptr);
  EXPECT_EQ(*f.front(), 42);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fifo, LifetimeCounters) {
  Fifo<int> f(4);
  for (int i = 0; i < 3; ++i) f.push(i);
  f.pop();
  EXPECT_EQ(f.total_pushed(), 3u);
  EXPECT_EQ(f.total_popped(), 1u);
}

TEST(Fifo, ClearEmpties) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
}

class Counter : public Component {
 public:
  Counter() : Component("counter") {}
  void tick() override { ++count; }
  bool busy() const override { return count < target; }
  u64 count = 0;
  u64 target = 0;
};

TEST(Simulator, TicksComponentsOncePerCycle) {
  Simulator s;
  Counter a, b;
  s.add(&a);
  s.add(&b);
  s.run_cycles(10);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(a.count, 10u);
  EXPECT_EQ(b.count, 10u);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator s;
  Counter a;
  s.add(&a);
  EXPECT_TRUE(s.run_until([&] { return a.count >= 7; }, 100));
  EXPECT_EQ(a.count, 7u);
}

TEST(Simulator, RunUntilWatchdogExpires) {
  Simulator s;
  Counter a;
  s.add(&a);
  EXPECT_FALSE(s.run_until([] { return false; }, 50));
  EXPECT_EQ(s.now(), 50u);
}

TEST(Simulator, RunUntilIdleUsesBusyFlags) {
  Simulator s;
  Counter a;
  a.target = 25;
  s.add(&a);
  EXPECT_TRUE(s.run_until_idle(1000));
  EXPECT_GE(a.count, 25u);
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator s;
  const Cycles t0 = s.now();
  s.step();
  EXPECT_EQ(s.now(), t0 + 1);
  s.run_cycles(0);
  EXPECT_EQ(s.now(), t0 + 1);
}

}  // namespace
}  // namespace rvcap::sim
