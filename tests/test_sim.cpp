#include <gtest/gtest.h>

#include "sim/fifo.hpp"
#include "sim/simulator.hpp"

namespace rvcap::sim {
namespace {

TEST(Fifo, PushPopOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.push(3));
  EXPECT_EQ(*f.pop(), 1);
  EXPECT_EQ(*f.pop(), 2);
  EXPECT_EQ(*f.pop(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(Fifo, RespectsCapacity) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_FALSE(f.push(3));  // full: back-pressure
  EXPECT_TRUE(f.full());
  f.pop();
  EXPECT_TRUE(f.push(3));
}

TEST(Fifo, VacancyTracksOccupancy) {
  Fifo<int> f(8);
  EXPECT_EQ(f.vacancy(), 8u);
  f.push(1);
  f.push(2);
  EXPECT_EQ(f.vacancy(), 6u);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Fifo, FrontPeeksWithoutConsuming) {
  Fifo<int> f(2);
  EXPECT_EQ(f.front(), nullptr);
  f.push(42);
  ASSERT_NE(f.front(), nullptr);
  EXPECT_EQ(*f.front(), 42);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fifo, LifetimeCounters) {
  Fifo<int> f(4);
  for (int i = 0; i < 3; ++i) f.push(i);
  f.pop();
  EXPECT_EQ(f.total_pushed(), 3u);
  EXPECT_EQ(f.total_popped(), 1u);
}

TEST(Fifo, ClearEmpties) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
}

class Counter : public Component {
 public:
  Counter() : Component("counter") {}
  bool tick() override {
    ++count;
    return true;  // free-running: never sleeps, as under the flat loop
  }
  bool busy() const override { return count < target; }
  u64 count = 0;
  u64 target = 0;
};

TEST(Simulator, TicksComponentsOncePerCycle) {
  Simulator s;
  Counter a, b;
  s.add(&a);
  s.add(&b);
  s.run_cycles(10);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(a.count, 10u);
  EXPECT_EQ(b.count, 10u);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator s;
  Counter a;
  s.add(&a);
  EXPECT_TRUE(s.run_until([&] { return a.count >= 7; }, 100));
  EXPECT_EQ(a.count, 7u);
}

TEST(Simulator, RunUntilWatchdogExpires) {
  Simulator s;
  Counter a;
  s.add(&a);
  EXPECT_FALSE(s.run_until([] { return false; }, 50));
  EXPECT_EQ(s.now(), 50u);
}

TEST(Simulator, RunUntilIdleUsesBusyFlags) {
  Simulator s;
  Counter a;
  a.target = 25;
  s.add(&a);
  EXPECT_TRUE(s.run_until_idle(1000));
  EXPECT_GE(a.count, 25u);
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator s;
  const Cycles t0 = s.now();
  s.step();
  EXPECT_EQ(s.now(), t0 + 1);
  s.run_cycles(0);
  EXPECT_EQ(s.now(), t0 + 1);
}

// ---------------------------------------------------------------------
// Activity-scheduled kernel (DESIGN.md §9)
// ---------------------------------------------------------------------

// Fires one value into the FIFO at cycle `at`, sleeping on the time
// wheel until then; quiescent forever after.
class PulseProducer : public Component {
 public:
  PulseProducer(Fifo<int>& out, Cycles at)
      : Component("producer"), out_(out), at_(at) {}
  bool tick() override {
    if (sim_now() == at_) {
      out_.push(static_cast<int>(sim_now()));
      return true;
    }
    if (sim_now() < at_) wake_at(at_);
    return false;
  }

 private:
  Fifo<int>& out_;
  Cycles at_;
};

// Pops whenever data is present, recording the cycle of each pop;
// sleeps on empty (woken by the FIFO's push notification).
class SleepyConsumer : public Component {
 public:
  explicit SleepyConsumer(Fifo<int>& in) : Component("consumer"), in_(in) {
    in_.watch(this);
  }
  bool tick() override {
    if (in_.pop().has_value()) {
      popped_at.push_back(sim_now());
      return true;
    }
    return false;
  }
  std::vector<Cycles> popped_at;

 private:
  Fifo<int>& in_;
};

TEST(ScheduledKernel, FifoWakeDeliversSameCycleAsFlat) {
  // The producer (earlier tick slot) pushes at cycle 25; under the flat
  // loop the consumer, ticking later the same cycle, pops at 25. The
  // scheduled kernel must reproduce that cycle stamp even though the
  // consumer slept from cycle 1 and the clock jumped over cycles 1..24.
  for (const auto mode : {Simulator::Mode::kFlat, Simulator::Mode::kScheduled}) {
    Simulator s(mode);
    Fifo<int> link(4);
    PulseProducer p(link, 25);
    SleepyConsumer c(link);
    s.add(&p);
    s.add(&c);
    s.run_cycles(100);
    ASSERT_EQ(c.popped_at.size(), 1u) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(c.popped_at[0], 25u) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(s.now(), 100u);
  }
}

TEST(ScheduledKernel, TimeSkipsToScheduledWake) {
  Simulator s;
  Fifo<int> link(4);
  PulseProducer p(link, 1000);
  SleepyConsumer c(link);
  s.add(&p);
  s.add(&c);
  s.run_cycles(5000);
  ASSERT_EQ(c.popped_at.size(), 1u);
  EXPECT_EQ(c.popped_at[0], 1000u);
  const SimStats st = s.stats();
  // Two jumps: to the wake at 1000, then to the end of the window.
  EXPECT_GE(st.time_skip_jumps, 2u);
  EXPECT_GT(st.cycles_skipped, 4900u);
  // Only a handful of real ticks were needed out of 2 * 5000.
  EXPECT_LT(st.ticks_issued, 20u);
  EXPECT_EQ(st.ticks_issued + st.ticks_skipped, 2u * 5000u);
}

TEST(ScheduledKernel, SleepForeverComponentLetsIdleTerminate) {
  // A component that never reports progress and is never busy: the
  // design quiesces immediately and stays quiescent.
  class Dead : public Component {
   public:
    Dead() : Component("dead") {}
    bool tick() override {
      ++ticks;
      return false;
    }
    u64 ticks = 0;
  };
  Simulator s;
  Dead d;
  s.add(&d);
  EXPECT_TRUE(s.run_until_idle(100));
  s.run_cycles(1000);
  EXPECT_LE(d.ticks, 1u);  // at most its initial activation tick
  EXPECT_GE(s.stats().cycles_skipped, 999u);
}

TEST(ScheduledKernel, WakeupCounterTracksSleepTransitions) {
  Simulator s;
  Fifo<int> link(4);
  SleepyConsumer c(link);
  s.add(&c);
  s.run_cycles(3);  // consumer goes to sleep after its first tick
  const u64 before = s.stats().wakeups;
  link.push(7);  // host-side push: wakes the sleeping consumer
  s.run_cycles(3);
  // One wake from the push, one self-wake from the consumer's own pop
  // (its activation is consumed before the tick runs).
  EXPECT_EQ(s.stats().wakeups, before + 2);
  ASSERT_EQ(c.popped_at.size(), 1u);
}

TEST(ScheduledKernel, RunUntilNeverJumpsTime) {
  // run_until predicates may be time-dependent, so the scheduled
  // kernel must evaluate them at every cycle boundary even with an
  // empty active set — and the watchdog budget is anchored at entry.
  Simulator s;
  u64 calls = 0;
  EXPECT_FALSE(s.run_until([&] {
    ++calls;
    return false;
  }, 50));
  EXPECT_EQ(s.now(), 50u);
  EXPECT_EQ(calls, 51u);  // entry check + one per cycle
  // An initially-true predicate consumes none of the budget.
  EXPECT_TRUE(s.run_until([] { return true; }, 0));
  EXPECT_EQ(s.now(), 50u);
}

TEST(ScheduledKernel, ModeSwitchReactivatesSleepers) {
  Simulator s;
  Fifo<int> link(4);
  SleepyConsumer c(link);
  s.add(&c);
  s.run_cycles(10);  // consumer asleep, clock skipping
  const u64 issued_before = s.stats().ticks_issued;
  s.set_mode(Simulator::Mode::kFlat);
  s.run_cycles(10);
  // Flat mode ticks it every cycle again.
  EXPECT_EQ(s.stats().ticks_issued, issued_before + 10);
}

TEST(ScheduledKernel, FlatModeIssuesEveryTick) {
  Simulator s(Simulator::Mode::kFlat);
  Counter a, b;
  s.add(&a);
  s.add(&b);
  s.run_cycles(100);
  const SimStats st = s.stats();
  EXPECT_EQ(st.ticks_issued, 200u);
  EXPECT_EQ(st.ticks_skipped, 0u);
  EXPECT_EQ(st.time_skip_jumps, 0u);
}

}  // namespace
}  // namespace rvcap::sim
