// Stream-cipher RM: a non-image module through the full DPR + DMA path.
#include <gtest/gtest.h>

#include <cstring>

#include "accel/stream_cipher.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using accel::StreamCipher;
using driver::DmaMode;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

TEST(CipherUnit, KeystreamIsDeterministicAndKeyed) {
  EXPECT_EQ(StreamCipher::keystream(1, 0), StreamCipher::keystream(1, 0));
  EXPECT_NE(StreamCipher::keystream(1, 0), StreamCipher::keystream(2, 0));
  EXPECT_NE(StreamCipher::keystream(1, 0), StreamCipher::keystream(1, 1));
}

TEST(CipherUnit, EncryptDecryptRoundtrip) {
  StreamCipher enc, dec;
  enc.reg_write(0, 0xDEAD);
  enc.reg_write(1, 0xBEEF);
  dec.reg_write(0, 0xDEAD);
  dec.reg_write(1, 0xBEEF);

  axi::AxisFifo a(4), b(4), c(4);
  SplitMix64 rng(5);
  for (int i = 0; i < 32; ++i) {
    const u64 plain = rng.next();
    a.push(axi::AxisBeat{plain, 0xFF, i == 31});
    enc.tick(a, b);
    dec.tick(b, c);
    const axi::AxisBeat out = *c.pop();
    EXPECT_EQ(out.data, plain) << "beat " << i;
    EXPECT_EQ(out.last, i == 31);
  }
}

TEST(CipherUnit, PacketBoundaryRestartsKeystream) {
  StreamCipher ciph;
  ciph.reg_write(0, 7);
  axi::AxisFifo in(4), out(4);
  in.push(axi::AxisBeat{0, 0xFF, true});  // packet 1, one beat
  ciph.tick(in, out);
  const u64 first = out.pop()->data;
  in.push(axi::AxisBeat{0, 0xFF, true});  // packet 2, one beat
  ciph.tick(in, out);
  EXPECT_EQ(out.pop()->data, first) << "same beat index, same keystream";
}

TEST(CipherSoC, EndToEndThroughPartition) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  // Configure the cipher module into RP0.
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdCipher, "cipher"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdCipher,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  soc.sim().run_cycles(4);
  ASSERT_EQ(soc.rm_slot().active_rm(), accel::kRmIdCipher);

  // Key through the RP control interface.
  drv.rm_reg_write(0, 0x12345678);
  drv.rm_reg_write(1, 0x9ABCDEF0);
  const u64 key = 0x9ABCDEF012345678ULL;

  // Encrypt a buffer via acceleration mode.
  SplitMix64 rng(77);
  std::vector<u8> plain(16 * 1024);
  for (auto& b : plain) b = rng.next_byte();
  soc.ddr().poke(MemoryMap::kImageInBase, plain);
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase,
                                static_cast<u32>(plain.size()),
                                MemoryMap::kImageOutBase,
                                static_cast<u32>(plain.size()),
                                DmaMode::kInterrupt),
            Status::kOk);

  // Verify against the reference keystream.
  std::vector<u8> cipher_text(plain.size());
  soc.ddr().peek(MemoryMap::kImageOutBase, cipher_text);
  for (usize beat = 0; beat < plain.size() / 8; ++beat) {
    u64 p = 0, ct = 0;
    std::memcpy(&p, plain.data() + beat * 8, 8);
    std::memcpy(&ct, cipher_text.data() + beat * 8, 8);
    ASSERT_EQ(ct, p ^ StreamCipher::keystream(key, beat)) << "beat " << beat;
  }

  // Cipher runs at II=1: full line rate once the pipe fills.
  // (Decrypt = encrypt: running it back restores the plaintext.)
  drv.rm_reg_write(0, 0x12345678);  // reset beat index via key rewrite
  soc.ddr().poke(MemoryMap::kImageInBase, cipher_text);
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase,
                                static_cast<u32>(plain.size()),
                                MemoryMap::kImageOutBase,
                                static_cast<u32>(plain.size()),
                                DmaMode::kInterrupt),
            Status::kOk);
  std::vector<u8> round(plain.size());
  soc.ddr().peek(MemoryMap::kImageOutBase, round);
  EXPECT_EQ(round, plain);
}

TEST(CipherSoC, SwapBetweenFilterAndCipher) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  for (const u32 rm : {accel::kRmIdSobel, accel::kRmIdCipher,
                       accel::kRmIdSobel}) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm, "m"});
    soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", rm, MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
    soc.sim().run_cycles(4);
    ASSERT_EQ(soc.rm_slot().active_rm(), rm);
  }
}

}  // namespace
}  // namespace rvcap
