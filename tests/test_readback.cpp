// Configuration-memory readback: ICAP read path, ICAP2AXIS, the RV-CAP
// DMA capture flow, and the HWICAP read-FIFO flow — including safe-DPR
// verification of a loaded module.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/readback.hpp"
#include "common/bytes.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "hwicap/hwicap.hpp"
#include "common/units.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using bitstream::build_readback_request;
using bitstream::build_readback_sequence;
using bitstream::build_readback_trailer;
using driver::DmaMode;
using fabric::FrameAddr;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

// The FDRI payload a generated bitstream wrote into a partition's
// frames, reconstructed host-side for comparison with readback data.
std::vector<u32> expected_frames(const fabric::DeviceGeometry& dev,
                                 const fabric::Partition& rp, u32 rm_id) {
  const auto pbit = bitstream::generate_partial_bitstream(
      dev, rp, {rm_id, "x"});
  bitstream::ParsedBitstream parsed;
  EXPECT_EQ(bitstream::parse_bitstream(pbit, &parsed), Status::kOk);
  // Re-extract the payload words from the serialized form: locate the
  // type-2 FDRI packet and take its payload.
  std::vector<u32> words(pbit.size() / 4);
  for (usize i = 0; i < words.size(); ++i) {
    words[i] = load_be32(std::span<const u8>(pbit).subspan(i * 4, 4));
  }
  const u32 total = rp.frame_count(dev) * fabric::kFrameWords;
  for (usize i = 0; i + 1 < words.size(); ++i) {
    const auto h = bitstream::decode_packet(words[i]);
    if (h.type == 2 && h.count == total) {
      return {words.begin() + static_cast<long>(i) + 1,
              words.begin() + static_cast<long>(i) + 1 + total};
    }
  }
  ADD_FAILURE() << "FDRI payload not found";
  return {};
}

// ---------------------------------------------------------------------------
// ICAP primitive read path
// ---------------------------------------------------------------------------

struct IcapReadFixture : ::testing::Test {
  IcapReadFixture()
      : dev(fabric::DeviceGeometry::kintex7_325t()),
        rp(fabric::case_study_partition(dev)),
        cfg(dev),
        icap("icap", cfg) {
    cfg.register_partition(rp);
    s.add(&icap);
  }

  void feed_words(std::span<const u32> words) {
    usize i = 0;
    while (i < words.size()) {
      if (icap.port().push(words[i])) ++i;
      s.step();
    }
  }

  fabric::DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory cfg;
  icap::Icap icap;
  sim::Simulator s;
};

TEST_F(IcapReadFixture, ReadsBackWrittenFrame) {
  // Write one frame directly into config memory, then read it back.
  const FrameAddr fa = rp.base_frame(dev);
  std::vector<u32> frame(fabric::kFrameWords);
  for (u32 i = 0; i < fabric::kFrameWords; ++i) frame[i] = 0xF00D0000 + i;
  cfg.write_frame(fa, frame);

  feed_words(build_readback_sequence(fa, fabric::kFrameWords));
  std::vector<u32> got;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (icap.read_port().can_pop()) {
          got.push_back(*icap.read_port().pop());
        }
        return got.size() == fabric::kFrameWords;
      },
      100'000));
  EXPECT_EQ(got, frame);
  // The trailer DESYNC executes after the turnaround.
  ASSERT_TRUE(s.run_until([&] { return !icap.synced(); }, 1000));
}

TEST_F(IcapReadFixture, UnwrittenFramesReadBackZero) {
  feed_words(build_readback_sequence(FrameAddr{0, 5, 0}, 8));
  std::vector<u32> got;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (icap.read_port().can_pop()) {
          got.push_back(*icap.read_port().pop());
        }
        return got.size() == 8;
      },
      10'000));
  for (u32 w : got) EXPECT_EQ(w, 0u);
}

TEST_F(IcapReadFixture, ReadbackCrossesFrameBoundary) {
  const FrameAddr fa = rp.base_frame(dev);
  FrameAddr fb = fa;
  ASSERT_TRUE(dev.next_frame(&fb));
  std::vector<u32> f0(fabric::kFrameWords, 0xAAAA0001);
  std::vector<u32> f1(fabric::kFrameWords, 0xBBBB0002);
  cfg.write_frame(fa, f0);
  cfg.write_frame(fb, f1);
  feed_words(build_readback_sequence(fa, 2 * fabric::kFrameWords));
  std::vector<u32> got;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (icap.read_port().can_pop()) {
          got.push_back(*icap.read_port().pop());
        }
        return got.size() == 2 * fabric::kFrameWords;
      },
      100'000));
  EXPECT_EQ(got[0], 0xAAAA0001u);
  EXPECT_EQ(got[fabric::kFrameWords], 0xBBBB0002u);
}

TEST_F(IcapReadFixture, HalfDuplexStallsInputDuringReadback) {
  const FrameAddr fa = rp.base_frame(dev);
  cfg.write_frame(fa, std::vector<u32>(fabric::kFrameWords, 1));
  feed_words(build_readback_request(fa, fabric::kFrameWords));
  s.run_cycles(4);
  EXPECT_TRUE(icap.readback_active());
  // Input words pushed now must not be consumed until the read drains.
  const u64 consumed_before = icap.words_consumed();
  icap.port().push(bitstream::kNop);
  s.run_cycles(10);
  EXPECT_EQ(icap.words_consumed(), consumed_before);
  // Drain the read; then the NOP goes through.
  u32 drained = 0;
  ASSERT_TRUE(s.run_until(
      [&] {
        while (icap.read_port().can_pop()) {
          icap.read_port().pop();
          ++drained;
        }
        return drained == fabric::kFrameWords;
      },
      100'000));
  ASSERT_TRUE(s.run_until(
      [&] { return icap.words_consumed() == consumed_before + 1; }, 1000));
}

TEST(ReadbackSequence, RequestPlusTrailerEqualsFullSequence) {
  const FrameAddr fa{1, 2, 0};
  auto full = build_readback_sequence(fa, 100);
  auto req = build_readback_request(fa, 100);
  auto tail = build_readback_trailer();
  req.insert(req.end(), tail.begin(), tail.end());
  EXPECT_EQ(full, req);
}

// ---------------------------------------------------------------------------
// Command-builder edge cases
// ---------------------------------------------------------------------------

TEST(ReadbackSequence, ZeroWordRequestRejectedEverywhere) {
  const FrameAddr fa{0, 4, 0};
  // Builders refuse to emit a zero-length FDRO read at every level.
  EXPECT_TRUE(build_readback_request(fa, 0).empty());
  EXPECT_TRUE(build_readback_sequence(fa, 0).empty());
  EXPECT_TRUE(bitstream::build_readback_bytes(fa, 0).empty());

  // Drivers reject before touching the hardware.
  ArianeSoc soc{[] {
    SocConfig c;
    c.with_hwicap = true;
    return c;
  }()};
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  EXPECT_EQ(drv.readback(fa, 0, 0x8C00'0000, 0x8D00'0000,
                         DmaMode::kBlocking),
            Status::kInvalidArgument);
  driver::HwIcapDriver hw(soc.cpu());
  EXPECT_EQ(hw.readback(fa, std::span<u32>{}), Status::kInvalidArgument);
}

// The FDRO read request of the built sequence: last one or two words of
// the request half.
TEST(ReadbackSequence, WordCountAtType1BoundaryUsesSingleHeader) {
  const FrameAddr fa{0, 4, 0};
  const auto seq = build_readback_request(fa, bitstream::kType1MaxCount);
  const auto h = bitstream::decode_packet(seq.back());
  EXPECT_EQ(h.type, 1u);
  EXPECT_EQ(h.op, bitstream::PacketOp::kRead);
  EXPECT_EQ(h.reg, static_cast<u32>(bitstream::ConfigReg::kFdro));
  EXPECT_EQ(h.count, bitstream::kType1MaxCount);
  // No type-2 header anywhere in the request.
  for (const u32 w : seq) {
    EXPECT_NE(bitstream::decode_packet(w).type, 2u);
  }
}

TEST(ReadbackSequence, WordCountPastType1BoundaryTakesType2Form) {
  const FrameAddr fa{0, 4, 0};
  const u32 words = bitstream::kType1MaxCount + 1;
  const auto seq = build_readback_request(fa, words);
  const auto t2 = bitstream::decode_packet(seq.back());
  EXPECT_EQ(t2.type, 2u);
  EXPECT_EQ(t2.op, bitstream::PacketOp::kRead);
  EXPECT_EQ(t2.count, words);
  const auto t1 = bitstream::decode_packet(seq[seq.size() - 2]);
  EXPECT_EQ(t1.type, 1u);
  EXPECT_EQ(t1.op, bitstream::PacketOp::kRead);
  EXPECT_EQ(t1.reg, static_cast<u32>(bitstream::ConfigReg::kFdro));
  EXPECT_EQ(t1.count, 0u);  // count lives in the type-2 word
}

TEST(ReadbackSequence, FrameWriteBuilderRequiresExactlyOneFrame) {
  const FrameAddr fa{0, 4, 1};
  const std::vector<u32> short_frame(fabric::kFrameWords - 1, 1);
  const std::vector<u32> long_frame(fabric::kFrameWords + 1, 1);
  const std::vector<u32> exact(fabric::kFrameWords, 1);
  EXPECT_TRUE(bitstream::build_frame_write_sequence(fa, short_frame).empty());
  EXPECT_TRUE(bitstream::build_frame_write_sequence(fa, long_frame).empty());
  EXPECT_TRUE(bitstream::build_frame_write_bytes(fa, short_frame).empty());
  EXPECT_FALSE(bitstream::build_frame_write_sequence(fa, exact).empty());
}

// ---------------------------------------------------------------------------
// RV-CAP DMA readback + safe-DPR verification
// ---------------------------------------------------------------------------

struct RvCapReadbackFixture : ::testing::Test {
  RvCapReadbackFixture() : soc(SocConfig{}), drv(soc.cpu(), soc.plic()) {}

  void load_module(u32 rm_id) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, "m"});
    soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", rm_id, MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
};

TEST_F(RvCapReadbackFixture, FullPartitionReadbackMatchesLoadedBitstream) {
  load_module(accel::kRmIdMedian);

  const Addr cmd = 0x8C00'0000, dst = 0x8D00'0000;
  u32 words = 0;
  ASSERT_EQ(drv.readback_partition(soc.device(), soc.rp0(), cmd, dst,
                                   &words),
            Status::kOk);
  const u32 expected_words =
      soc.rp0().frame_count(soc.device()) * fabric::kFrameWords;
  ASSERT_EQ(words, expected_words);

  const auto expect =
      expected_frames(soc.device(), soc.rp0(), accel::kRmIdMedian);
  for (u32 i = 0; i < expected_words; ++i) {
    // Readback lands LE in DDR (ICAP2AXIS undoes the config byte swap).
    u8 raw[4];
    soc.ddr().peek(dst + u64{i} * 4, raw);
    ASSERT_EQ(load_be32(raw), expect[i]) << "word " << i;
  }
}

TEST_F(RvCapReadbackFixture, ReadbackThroughputNearIcapRate) {
  load_module(accel::kRmIdSobel);
  const u32 words = 200 * fabric::kFrameWords;  // 161.6 KB
  const Cycles t0 = soc.sim().now();
  ASSERT_EQ(drv.readback(soc.rp0().base_frame(soc.device()), words,
                         0x8C00'0000, 0x8D00'0000),
            Status::kOk);
  const double mbps = throughput_mbps(u64{words} * 4,
                                      soc.sim().now() - t0);
  EXPECT_GT(mbps, 300.0);  // DMA-rate readback, like the write path
  EXPECT_LT(mbps, 400.0);
}

TEST_F(RvCapReadbackFixture, OddWordCountRejected) {
  EXPECT_EQ(drv.readback(FrameAddr{0, 2, 0}, 3, 0x8C00'0000, 0x8D00'0000),
            Status::kInvalidArgument);
  EXPECT_EQ(drv.readback(FrameAddr{0, 2, 0}, 0, 0x8C00'0000, 0x8D00'0000),
            Status::kInvalidArgument);
}

TEST_F(RvCapReadbackFixture, ModuleStillActiveAfterReadback) {
  load_module(accel::kRmIdGaussian);
  u32 words = 0;
  ASSERT_EQ(drv.readback_partition(soc.device(), soc.rp0(), 0x8C00'0000,
                                   0x8D00'0000, &words),
            Status::kOk);
  // Readback is non-destructive: the module stays loaded and usable.
  const auto st = soc.config_memory().partition_state(soc.rp0_handle());
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdGaussian);
  soc.sim().run_cycles(4);
  EXPECT_EQ(soc.rm_slot().active_rm(), accel::kRmIdGaussian);
}

// ---------------------------------------------------------------------------
// HWICAP read-FIFO path
// ---------------------------------------------------------------------------

TEST(HwicapReadback, ReadFifoPathMatchesConfigMemory) {
  SocConfig cfg;
  cfg.with_hwicap = true;
  ArianeSoc soc(cfg);
  driver::RvCapDriver loader(soc.cpu(), soc.plic());
  driver::HwIcapDriver hw(soc.cpu(), 16);

  // Load a module with RV-CAP, read it back through the HWICAP.
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(loader.init_reconfig_process(m, DmaMode::kInterrupt),
            Status::kOk);

  std::vector<u32> out(fabric::kFrameWords);
  ASSERT_EQ(hw.readback(soc.rp0().base_frame(soc.device()), out),
            Status::kOk);
  const auto expect =
      expected_frames(soc.device(), soc.rp0(), accel::kRmIdSobel);
  for (u32 i = 0; i < fabric::kFrameWords; ++i) {
    ASSERT_EQ(out[i], expect[i]) << "word " << i;
  }
}

// ---------------------------------------------------------------------------
// HWICAP keyhole misuse: trailer written before the read has drained
// ---------------------------------------------------------------------------

struct HwicapKeyholeFixture : ::testing::Test {
  HwicapKeyholeFixture()
      : soc([] {
          SocConfig c;
          c.with_hwicap = true;
          return c;
        }()),
        loader(soc.cpu(), soc.plic()),
        base(MemoryMap::kHwicap.base) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"});
    soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
    driver::ReconfigModule m{"", accel::kRmIdSobel,
                             MemoryMap::kPbitStagingBase,
                             static_cast<u32>(pbit.size())};
    EXPECT_EQ(loader.init_reconfig_process(m, DmaMode::kInterrupt),
              Status::kOk);
  }

  void push_words(std::span<const u32> words) {
    for (const u32 w : words) {
      soc.cpu().store32_uncached(base + hwicap::HwIcap::kWf, w);
    }
  }

  bool poll_done(u32 iters) {
    for (u32 i = 0; i < iters; ++i) {
      if (soc.cpu().load32_uncached(base + hwicap::HwIcap::kSr) &
          hwicap::HwIcap::kSrDone) {
        return true;
      }
    }
    return false;
  }

  ArianeSoc soc;
  driver::RvCapDriver loader;
  Addr base;
};

TEST_F(HwicapKeyholeFixture, TrailerBeforeDrainAbsorbedByTurnaround) {
  // Misuse: the desync trailer is queued in the same keyhole flush as
  // the read request, before any readback word has been drained. The
  // port turns around after the FDRO packet and stops consuming input,
  // but the trailer (4 words) fits exactly in the ICAP input buffer, so
  // the core's flush still completes and the data survives intact.
  const FrameAddr fa = soc.rp0().base_frame(soc.device());
  push_words(build_readback_request(fa, fabric::kFrameWords));
  push_words(build_readback_trailer());
  soc.cpu().store32_uncached(base + hwicap::HwIcap::kCr,
                             hwicap::HwIcap::kCrWrite);
  ASSERT_TRUE(poll_done(200'000));

  // The DESYNC is parked behind the stalled port, not executed.
  EXPECT_TRUE(soc.icap().synced());
  const u64 desyncs_before = soc.icap().desync_count();

  // The read drains normally.
  soc.cpu().store32_uncached(base + hwicap::HwIcap::kSz, fabric::kFrameWords);
  soc.cpu().store32_uncached(base + hwicap::HwIcap::kCr,
                             hwicap::HwIcap::kCrRead);
  std::vector<u32> out;
  while (out.size() < fabric::kFrameWords) {
    u32 occupancy = 0;
    for (u32 poll = 0; poll < 100'000 && occupancy == 0; ++poll) {
      occupancy = soc.cpu().load32_uncached(base + hwicap::HwIcap::kRfo);
    }
    ASSERT_NE(occupancy, 0u);
    out.push_back(soc.cpu().load32_uncached(base + hwicap::HwIcap::kRf));
  }
  const auto expect =
      expected_frames(soc.device(), soc.rp0(), accel::kRmIdSobel);
  for (u32 i = 0; i < fabric::kFrameWords; ++i) {
    ASSERT_EQ(out[i], expect[i]) << "word " << i;
  }

  // Once the read has drained, the parked trailer goes through and the
  // DESYNC finally executes.
  ASSERT_TRUE(soc.sim().run_until(
      [&] { return soc.icap().desync_count() > desyncs_before; }, 10'000));
  EXPECT_FALSE(soc.icap().synced());
}

TEST_F(HwicapKeyholeFixture, BatchedSecondRequestWedgesFlushUntilReset) {
  // Worse misuse: two complete request+trailer sequences batched into
  // one flush. The 20 words behind the first FDRO packet exceed the
  // ICAP input buffer, the write FIFO can never drain, and SR.Done
  // never sets — the keyhole is wedged until the core is reset.
  const FrameAddr fa = soc.rp0().base_frame(soc.device());
  const auto request = build_readback_request(fa, fabric::kFrameWords);
  const auto trailer = build_readback_trailer();
  push_words(request);
  push_words(trailer);
  push_words(request);
  push_words(trailer);
  soc.cpu().store32_uncached(base + hwicap::HwIcap::kCr,
                             hwicap::HwIcap::kCrWrite);
  EXPECT_FALSE(poll_done(50'000));
  EXPECT_TRUE(soc.hwicap().transfer_active());

  // Recovery: soft-reset the core first (dropping the words still queued
  // in its write FIFO — clearing the port first would let them drain into
  // the revived port mid-reset and re-wedge it), then abort the ICAP
  // (RP-control abort pulse). A fresh readback then works end to end.
  soc.cpu().store32_uncached(base + hwicap::HwIcap::kCr,
                             hwicap::HwIcap::kCrSwReset);
  soc.icap().abort();
  ASSERT_TRUE(poll_done(1'000));

  driver::HwIcapDriver hw(soc.cpu(), 16);
  std::vector<u32> out(fabric::kFrameWords);
  ASSERT_EQ(hw.readback(fa, out), Status::kOk);
  const auto expect =
      expected_frames(soc.device(), soc.rp0(), accel::kRmIdSobel);
  for (u32 i = 0; i < fabric::kFrameWords; ++i) {
    ASSERT_EQ(out[i], expect[i]) << "word " << i;
  }
}

}  // namespace
}  // namespace rvcap
