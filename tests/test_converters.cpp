// Width converter + AXI4->Lite bridge + lite-slave base, including the
// full chain the paper inserts in front of the HWICAP (§III-C).
#include <gtest/gtest.h>

#include "axi/lite_bridge.hpp"
#include "axi/width_converter.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

using axi::AxiToLiteBridge;
using axi::Resp;
using axi::WidthConverter64To32;
using test::bfm_read64;
using test::bfm_write64;
using test::ScratchRegs;

// A 32-bit AXI4 (not lite) echo device used downstream of the width
// converter alone: stores writes, serves reads, 32-bit beats.
class Echo32 : public sim::Component {
 public:
  Echo32() : Component("echo32") {}
  axi::AxiPort port;
  std::map<Addr, u32> mem;

  bool tick() override {
    if (const axi::AxiAr* ar = port.ar.front()) {
      if (port.r.can_push()) {
        port.r.push(axi::AxiR{mem[ar->addr], Resp::kOkay, true});
        port.ar.pop();
      }
    }
    const axi::AxiAw* aw = port.aw.front();
    const axi::AxiW* w = port.w.front();
    if (aw != nullptr && w != nullptr && port.b.can_push()) {
      mem[aw->addr] = static_cast<u32>(w->data);
      port.aw.pop();
      port.w.pop();
      port.b.push(axi::AxiB{Resp::kOkay});
    }
    return true;  // test harness device: never sleeps
  }
  bool busy() const override { return !port.idle(); }
};

struct WidthConvFixture : ::testing::Test {
  WidthConvFixture() : conv("conv") {
    s.add(&conv);
    s.add(&echo);
    pump.conv = &conv;
    pump.echo = &echo;
    s.add(&pump);
  }

  // Shuttles beats between the converter's downstream link and the echo
  // device's port (links are distinct objects; a tiny wire joins them).
  struct Wire : sim::Component {
    Wire() : Component("wire") {}
    WidthConverter64To32* conv = nullptr;
    Echo32* echo = nullptr;
    bool tick() override {
      auto& d = conv->downstream();
      auto& p = echo->port;
      if (d.ar.can_pop() && p.ar.can_push()) p.ar.push(*d.ar.pop());
      if (d.aw.can_pop() && p.aw.can_push()) p.aw.push(*d.aw.pop());
      if (d.w.can_pop() && p.w.can_push()) p.w.push(*d.w.pop());
      if (p.r.can_pop() && d.r.can_push()) d.r.push(*p.r.pop());
      if (p.b.can_pop() && d.b.can_push()) d.b.push(*p.b.pop());
      return true;  // test harness wire: never sleeps
    }
  };

  sim::Simulator s;
  WidthConverter64To32 conv;
  Echo32 echo;
  Wire pump;
};

TEST_F(WidthConvFixture, SplitsFull64BitWriteIntoTwoHalves) {
  EXPECT_EQ(bfm_write64(s, conv.upstream(), 0x100, 0xAAAAAAAA55555555ULL),
            Resp::kOkay);
  EXPECT_EQ(echo.mem[0x100], 0x55555555u);
  EXPECT_EQ(echo.mem[0x104], 0xAAAAAAAAu);
}

TEST_F(WidthConvFixture, LowHalf32BitWriteTargetsLowAddr) {
  bfm_write64(s, conv.upstream(), 0x200, 0x00000000DEADBEEFULL, 0x0F);
  EXPECT_EQ(echo.mem[0x200], 0xDEADBEEFu);
  EXPECT_EQ(echo.mem.count(0x204), 0u);
}

TEST_F(WidthConvFixture, HighHalf32BitWriteTargetsHighAddr) {
  bfm_write64(s, conv.upstream(), 0x204, 0xCAFEF00D00000000ULL, 0xF0);
  EXPECT_EQ(echo.mem[0x204], 0xCAFEF00Du);
  EXPECT_EQ(echo.mem.count(0x200), 0u);
}

TEST_F(WidthConvFixture, Reassembles64BitRead) {
  echo.mem[0x300] = 0x11111111;
  echo.mem[0x304] = 0x22222222;
  const auto [v, r] = bfm_read64(s, conv.upstream(), 0x300);
  EXPECT_EQ(r, Resp::kOkay);
  EXPECT_EQ(v, 0x2222222211111111ULL);
}

TEST_F(WidthConvFixture, Positions32BitReadInAddressedLane) {
  echo.mem[0x404] = 0xABCD1234;
  conv.upstream().ar.push(axi::AxiAr{0x404, 0, 2});  // 32-bit read
  ASSERT_TRUE(s.run_until([&] { return conv.upstream().r.can_pop(); }, 1000));
  const axi::AxiR r = *conv.upstream().r.pop();
  EXPECT_EQ(r.data >> 32, 0xABCD1234u);  // high lane for addr bit2=1
}

TEST_F(WidthConvFixture, BurstRejectedWithSlvErr) {
  conv.upstream().ar.push(axi::AxiAr{0x0, 3, 3});
  ASSERT_TRUE(s.run_until([&] { return conv.upstream().r.can_pop(); }, 1000));
  EXPECT_EQ(conv.upstream().r.pop()->resp, Resp::kSlvErr);
}

TEST_F(WidthConvFixture, RandomWriteReadRoundtrip) {
  SplitMix64 rng(123);
  for (int i = 0; i < 50; ++i) {
    const Addr a = (rng.next_below(256)) * 8;
    const u64 v = rng.next();
    bfm_write64(s, conv.upstream(), a, v);
    EXPECT_EQ(bfm_read64(s, conv.upstream(), a).first, v) << "addr " << a;
  }
}

// ---- full chain: 64-bit bus -> width conv -> lite bridge -> registers
struct HwicapPathFixture : ::testing::Test {
  HwicapPathFixture() : conv("conv"), bridge("bridge"), regs("regs") {
    s.add(&conv);
    s.add(&bridge);
    s.add(&regs);
    glue.f = this;
    s.add(&glue);
  }

  struct Glue : sim::Component {
    Glue() : Component("glue") {}
    HwicapPathFixture* f = nullptr;
    bool tick() override {
      auto& c = f->conv.downstream();
      auto& b = f->bridge.upstream();
      if (c.ar.can_pop() && b.ar.can_push()) b.ar.push(*c.ar.pop());
      if (c.aw.can_pop() && b.aw.can_push()) b.aw.push(*c.aw.pop());
      if (c.w.can_pop() && b.w.can_push()) b.w.push(*c.w.pop());
      if (b.r.can_pop() && c.r.can_push()) c.r.push(*b.r.pop());
      if (b.b.can_pop() && c.b.can_push()) c.b.push(*b.b.pop());
      auto& bd = f->bridge.downstream();
      auto& p = f->regs.port();
      if (bd.ar.can_pop() && p.ar.can_push()) p.ar.push(*bd.ar.pop());
      if (bd.aw.can_pop() && p.aw.can_push()) p.aw.push(*bd.aw.pop());
      if (bd.w.can_pop() && p.w.can_push()) p.w.push(*bd.w.pop());
      if (p.r.can_pop() && bd.r.can_push()) bd.r.push(*p.r.pop());
      if (p.b.can_pop() && bd.b.can_push()) bd.b.push(*p.b.pop());
      return true;  // test harness glue: never sleeps
    }
  };

  sim::Simulator s;
  WidthConverter64To32 conv;
  AxiToLiteBridge bridge;
  ScratchRegs regs;
  Glue glue;
};

TEST_F(HwicapPathFixture, Register32BitWriteArrives) {
  bfm_write64(s, conv.upstream(), 0x10C, u64{0x00000001} << 32, 0xF0);
  ASSERT_EQ(regs.write_log.size(), 1u);
  EXPECT_EQ(regs.write_log[0].first, 0x10Cu);
  EXPECT_EQ(regs.write_log[0].second, 1u);
}

TEST_F(HwicapPathFixture, RegisterReadBack) {
  regs.regs[0x114] = 1024;  // e.g. HWICAP write-FIFO vacancy
  conv.upstream().ar.push(axi::AxiAr{0x114, 0, 2});
  ASSERT_TRUE(s.run_until([&] { return conv.upstream().r.can_pop(); }, 1000));
  EXPECT_EQ(conv.upstream().r.pop()->data >> 32, 1024u);
}

TEST_F(HwicapPathFixture, ChainAddsPipelineLatency) {
  // Each hop is registered: the round trip must cost >1 cycle but stay
  // bounded (the CPU-side store cost model depends on this).
  const Cycles t0 = s.now();
  bfm_write64(s, conv.upstream(), 0x100, 5, 0x0F);
  const Cycles dt = s.now() - t0;
  EXPECT_GE(dt, 4u);
  EXPECT_LE(dt, 32u);
}

TEST_F(HwicapPathFixture, BackToBackWritesAllArrive) {
  for (u32 i = 0; i < 20; ++i) {
    bfm_write64(s, conv.upstream(), 0x100, i, 0x0F);
  }
  ASSERT_EQ(regs.write_log.size(), 20u);
  for (u32 i = 0; i < 20; ++i) EXPECT_EQ(regs.write_log[i].second, i);
}

TEST(LiteSlave, LatencyIsConfigurable) {
  sim::Simulator s;
  ScratchRegs fast("fast", 0);
  ScratchRegs slow("slow", 8);
  s.add(&fast);
  s.add(&slow);
  fast.port().ar.push(axi::LiteAr{0});
  slow.port().ar.push(axi::LiteAr{0});
  ASSERT_TRUE(s.run_until([&] { return fast.port().r.can_pop(); }, 100));
  const Cycles t_fast = s.now();
  ASSERT_TRUE(s.run_until([&] { return slow.port().r.can_pop(); }, 100));
  EXPECT_GT(s.now(), t_fast);
}

}  // namespace
}  // namespace rvcap
