// Bitstream compression codec + the inline hardware decompressor
// (RT-ICAP-style extension).
#include <gtest/gtest.h>

#include "bitstream/compress.hpp"
#include "bitstream/generator.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using bitstream::compress_bitstream;
using bitstream::compression_ratio;
using bitstream::decompress_bitstream;
using bitstream::FrameFill;
using driver::DmaMode;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

// ---------------------------------------------------------------------------
// Host codec
// ---------------------------------------------------------------------------

class CodecRoundtrip : public ::testing::TestWithParam<u64> {};

TEST_P(CodecRoundtrip, RandomWordsSurvive) {
  SplitMix64 rng(GetParam());
  std::vector<u8> raw(4 * rng.next_range(1, 5000));
  for (auto& b : raw) b = rng.next_byte();
  // Sprinkle zero runs so both record types appear.
  for (usize i = 0; i + 64 < raw.size(); i += 256) {
    std::fill(raw.begin() + static_cast<long>(i),
              raw.begin() + static_cast<long>(i) + 64, 0);
  }
  std::vector<u8> packed, unpacked;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);
  ASSERT_EQ(decompress_bitstream(packed, &unpacked), Status::kOk);
  // Decompression may append up to one padding zero word.
  ASSERT_GE(unpacked.size(), raw.size());
  ASSERT_LE(unpacked.size() - raw.size(), 4u);
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), unpacked.begin()));
  for (usize i = raw.size(); i < unpacked.size(); ++i) {
    EXPECT_EQ(unpacked[i], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Codec, AllZerosCompressesMassively) {
  const std::vector<u8> raw(400 * 1024, 0);
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);
  EXPECT_GT(compression_ratio(raw.size(), packed.size()), 1000.0);
}

TEST(Codec, IncompressibleDataHasTinyOverhead) {
  SplitMix64 rng(99);
  std::vector<u8> raw(100 * 1024);
  for (auto& b : raw) b = static_cast<u8>(rng.next_range(1, 255));
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);
  EXPECT_LT(packed.size(), raw.size() * 101 / 100 + 64);
}

TEST(Codec, SparseCaseStudyBitstreamCompressesWell) {
  const auto dev = fabric::DeviceGeometry::kintex7_325t();
  const auto rp = fabric::case_study_partition(dev);
  const auto sparse = bitstream::generate_partial_bitstream(
      dev, rp, {1, "s"}, FrameFill::kSparse);
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(sparse, &packed), Status::kOk);
  // Sparse frames are 15/16 zero words: expect roughly 5x.
  EXPECT_GT(compression_ratio(sparse.size(), packed.size()), 4.0);
}

TEST(Codec, UnalignedInputRejected) {
  const u8 odd[] = {1, 2, 3};
  std::vector<u8> out;
  EXPECT_EQ(compress_bitstream(odd, &out), Status::kInvalidArgument);
}

TEST(Codec, BadMagicRejected) {
  std::vector<u8> junk(64, 0x11);
  std::vector<u8> out;
  EXPECT_EQ(decompress_bitstream(junk, &out), Status::kProtocolError);
}

TEST(Codec, TruncatedLiteralRunRejected) {
  std::vector<u8> raw(64, 0x22);
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);
  packed.resize(packed.size() - 8);  // drop literal payload
  std::vector<u8> out;
  EXPECT_EQ(decompress_bitstream(packed, &out), Status::kProtocolError);
}

// ---------------------------------------------------------------------------
// End-to-end: compressed reconfiguration through the SoC
// ---------------------------------------------------------------------------

struct CompressedReconfig : ::testing::TestWithParam<FrameFill> {};

TEST_P(CompressedReconfig, LoadsModuleIdenticallyToRawPath) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  const auto raw = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdMedian, "m"}, GetParam());
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);
  soc.ddr().poke(MemoryMap::kPbitStagingBase, packed);

  driver::ReconfigModule m{"", accel::kRmIdMedian,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(packed.size())};
  ASSERT_EQ(drv.init_reconfig_process_compressed(m, DmaMode::kInterrupt),
            Status::kOk);
  // Let the trailing decompressed words drain into the ICAP.
  ASSERT_TRUE(soc.sim().run_until_idle(2'000'000));

  EXPECT_FALSE(soc.icap().crc_error());
  EXPECT_FALSE(soc.rvcap().decompressor().format_error());
  const auto st = soc.config_memory().partition_state(soc.rp0_handle());
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, accel::kRmIdMedian);
  EXPECT_EQ(soc.icap().words_consumed(), raw.size() / 4);
}

INSTANTIATE_TEST_SUITE_P(Fills, CompressedReconfig,
                         ::testing::Values(FrameFill::kHashed,
                                           FrameFill::kSparse));

TEST(CompressedReconfigTiming, SavesFetchBytesNotReconfigTime) {
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  const auto raw = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "s"},
      FrameFill::kSparse);
  std::vector<u8> packed;
  ASSERT_EQ(compress_bitstream(raw, &packed), Status::kOk);

  // Raw transfer.
  soc.ddr().poke(MemoryMap::kPbitStagingBase, raw);
  driver::ReconfigModule m_raw{"", accel::kRmIdSobel,
                               MemoryMap::kPbitStagingBase,
                               static_cast<u32>(raw.size())};
  ASSERT_EQ(drv.init_reconfig_process(m_raw, DmaMode::kInterrupt),
            Status::kOk);
  const double tr_raw = drv.last_timing().reconfig_us();

  // Compressed transfer of the same module.
  soc.ddr().poke(MemoryMap::kPbitStagingBase, packed);
  driver::ReconfigModule m_z{"", accel::kRmIdSobel,
                             MemoryMap::kPbitStagingBase,
                             static_cast<u32>(packed.size())};
  ASSERT_EQ(drv.init_reconfig_process_compressed(m_z, DmaMode::kInterrupt),
            Status::kOk);
  ASSERT_TRUE(soc.sim().run_until_idle(2'000'000));
  EXPECT_TRUE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);

  // Fetch volume shrinks ~5x; reconfiguration time cannot beat the
  // ICAP's word rate (every frame word still has to be written).
  EXPECT_GT(compression_ratio(raw.size(), packed.size()), 4.0);
  EXPECT_GT(drv.last_timing().reconfig_us(), tr_raw * 0.5);
}

TEST(DecompressorUnit, PassthroughWhenDisabled) {
  sim::Simulator s;
  axi::AxisFifo in(4), out(4);
  rvcap_ctrl::Decompressor d("d", in, out);
  s.add(&d);
  in.push(axi::AxisBeat{0x1234, 0xFF, true});
  s.run_cycles(3);
  ASSERT_TRUE(out.can_pop());
  EXPECT_EQ(out.pop()->data, 0x1234u);
  EXPECT_FALSE(d.format_error());
}

TEST(DecompressorUnit, BadMagicSetsFormatError) {
  ScopedLogLevel quiet(LogLevel::kError);
  sim::Simulator s;
  axi::AxisFifo in(4), out(4);
  rvcap_ctrl::Decompressor d("d", in, out);
  s.add(&d);
  d.set_enabled(true);
  in.push(axi::AxisBeat{0xFFFFFFFFFFFFFFFFULL, 0xFF, true});
  s.run_cycles(5);
  EXPECT_TRUE(d.format_error());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace rvcap
