// FIR filter RM: reference semantics, streaming model, and the SDR
// use case through the full SoC.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "accel/fir_filter.hpp"
#include "bitstream/generator.hpp"
#include "common/rng.hpp"
#include "driver/rvcap_driver.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using accel::FirFilter;
using accel::fir_highpass_coeffs;
using accel::fir_lowpass_coeffs;
using accel::fir_passthrough_coeffs;
using accel::fir_reference;
using accel::kFirTaps;
using driver::DmaMode;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

std::vector<i16> make_tone(usize n, double cycles_per_sample, i16 amp,
                           u64 noise_seed = 0) {
  std::vector<i16> s(n);
  SplitMix64 rng(noise_seed + 1);
  for (usize i = 0; i < n; ++i) {
    double v = amp * std::sin(2.0 * 3.14159265358979 * cycles_per_sample *
                              static_cast<double>(i));
    if (noise_seed != 0) v += static_cast<double>(rng.next_below(64)) - 32;
    s[i] = static_cast<i16>(std::clamp(v, -32768.0, 32767.0));
  }
  return s;
}

TEST(FirReference, PassthroughIsNearIdentity) {
  const auto x = make_tone(256, 0.05, 10000);
  const auto y = fir_reference(x, fir_passthrough_coeffs());
  for (usize i = 0; i < x.size(); ++i) {
    // 32767/32768 scaling loses at most 1 LSB per unit amplitude.
    EXPECT_NEAR(y[i], x[i], std::abs(x[i]) / 1024 + 1) << i;
  }
}

TEST(FirReference, LowpassAttenuatesHighFrequency) {
  auto energy = [](std::span<const i16> v) {
    double e = 0;
    for (usize i = kFirTaps; i < v.size(); ++i) e += double(v[i]) * v[i];
    return e;
  };
  const auto lo_tone = make_tone(512, 0.01, 10000);  // slow
  const auto hi_tone = make_tone(512, 0.45, 10000);  // near Nyquist
  const auto lo_out = fir_reference(lo_tone, fir_lowpass_coeffs());
  const auto hi_out = fir_reference(hi_tone, fir_lowpass_coeffs());
  EXPECT_GT(energy(lo_out), energy(lo_tone) * 0.5);
  EXPECT_LT(energy(hi_out), energy(hi_tone) * 0.05);
}

TEST(FirReference, HighpassDoesTheOpposite) {
  auto energy = [](std::span<const i16> v) {
    double e = 0;
    for (usize i = kFirTaps; i < v.size(); ++i) e += double(v[i]) * v[i];
    return e;
  };
  const auto lo_tone = make_tone(512, 0.01, 10000);
  const auto lo_out = fir_reference(lo_tone, fir_highpass_coeffs());
  EXPECT_LT(energy(lo_out), energy(lo_tone) * 0.05);
}

TEST(FirStreaming, BitExactVsReference) {
  FirFilter fir;
  // Program low-pass coefficients through the register interface.
  const auto c = fir_lowpass_coeffs();
  for (u32 r = 0; r < kFirTaps / 2; ++r) {
    fir.reg_write(r, (u32{static_cast<u16>(c[2 * r + 1])} << 16) |
                         static_cast<u16>(c[2 * r]));
  }
  const auto x = make_tone(1024, 0.07, 9000, /*noise=*/5);
  const auto golden = fir_reference(x, c);

  axi::AxisFifo in(4), out(4);
  std::vector<i16> got;
  usize fed = 0;
  while (got.size() < x.size()) {
    if (fed < x.size() && in.can_push()) {
      u64 beat = 0;
      for (u32 l = 0; l < 4; ++l) {
        beat |= u64{static_cast<u16>(x[fed + l])} << (16 * l);
      }
      in.push(axi::AxisBeat{beat, 0xFF, fed + 4 == x.size()});
      fed += 4;
    }
    fir.tick(in, out);
    while (out.can_pop()) {
      const u64 d = out.pop()->data;
      for (u32 l = 0; l < 4; ++l) {
        got.push_back(static_cast<i16>((d >> (16 * l)) & 0xFFFF));
      }
    }
  }
  ASSERT_EQ(got.size(), golden.size());
  for (usize i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], golden[i]) << i;
}

TEST(FirStreaming, CoefficientRegistersReadBack) {
  FirFilter fir;
  fir.reg_write(0, 0xBEEF1234);
  EXPECT_EQ(fir.reg_read(0), 0xBEEF1234u);
  EXPECT_EQ(fir.reg_read(9), accel::kRmIdFir);
}

TEST(FirSoC, SdrChannelSwapThroughDpr) {
  // The SDR scenario: swap between a FIR channel filter and the cipher
  // module at runtime; the FIR's coefficients select the channel.
  ArianeSoc soc((SocConfig()));
  driver::RvCapDriver drv(soc.cpu(), soc.plic());

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdFir, "fir"});
  soc.ddr().poke(MemoryMap::kPbitStagingBase, pbit);
  driver::ReconfigModule m{"", accel::kRmIdFir,
                           MemoryMap::kPbitStagingBase,
                           static_cast<u32>(pbit.size())};
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  soc.sim().run_cycles(4);
  ASSERT_EQ(soc.rm_slot().active_rm(), accel::kRmIdFir);

  // Program the low-pass channel via the RP control interface.
  const auto c = fir_lowpass_coeffs();
  for (u32 r = 0; r < kFirTaps / 2; ++r) {
    drv.rm_reg_write(r, (u32{static_cast<u16>(c[2 * r + 1])} << 16) |
                            static_cast<u16>(c[2 * r]));
  }

  const auto x = make_tone(4096, 0.06, 8000, /*noise=*/9);
  std::vector<u8> raw(x.size() * 2);
  std::memcpy(raw.data(), x.data(), raw.size());
  soc.ddr().poke(MemoryMap::kImageInBase, raw);
  ASSERT_EQ(drv.run_accelerator(MemoryMap::kImageInBase,
                                static_cast<u32>(raw.size()),
                                MemoryMap::kImageOutBase,
                                static_cast<u32>(raw.size()),
                                DmaMode::kInterrupt),
            Status::kOk);

  std::vector<u8> out_raw(raw.size());
  soc.ddr().peek(MemoryMap::kImageOutBase, out_raw);
  std::vector<i16> got(x.size());
  std::memcpy(got.data(), out_raw.data(), out_raw.size());
  EXPECT_EQ(got, fir_reference(x, c));
  EXPECT_EQ(drv.rm_reg_read(8), x.size());  // samples-processed counter
}

}  // namespace
}  // namespace rvcap
