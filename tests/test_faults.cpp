// Deterministic fault injection + self-healing reconfiguration.
//
// Covers the FaultInjector itself (determinism, plans) and the recovery
// pipeline end to end: for every instrumented site, activation under
// the default RecoveryPolicy must converge to kOk with the RP coupled
// to a verified configuration — and when recovery is impossible, the RP
// must be left decoupled, never coupled to a corrupt partition.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bitstream/generator.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/scrubber.hpp"
#include "driver/spi_sd.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using driver::DprManager;
using driver::FailStage;
using sim::FaultInjector;
using soc::ArianeSoc;
using soc::SocConfig;
namespace sites = sim::fault_sites;

// ---------------------------------------------------------------------
// FaultInjector unit behaviour
// ---------------------------------------------------------------------

TEST(FaultInjector, UnarmedAndUnknownSitesNeverFire) {
  FaultInjector fi(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.should_fire("no.such.site"));
  }
  EXPECT_EQ(fi.total_fires(), 0u);
}

TEST(FaultInjector, TypoedSiteNameIsAHardError) {
  FaultInjector fi(7);
  // Neither canonical nor declared: arm must refuse and leave the site
  // unarmed instead of silently creating a no-op site.
  EXPECT_EQ(fi.arm("sd.read.tokn", /*count=*/1), Status::kNotFound);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(fi.should_fire("sd.read.tokn"));
  }
  EXPECT_EQ(fi.total_fires(), 0u);
  // Canonical names arm without any declaration.
  EXPECT_EQ(fi.arm(sites::kSdReadToken, /*count=*/1), Status::kOk);
  EXPECT_TRUE(fi.should_fire(sites::kSdReadToken));
}

TEST(FaultInjector, DeclaredSitesArmAndSurviveReseed) {
  FaultInjector fi(7);
  EXPECT_FALSE(fi.known("test.site"));
  fi.declare_site("test.site");
  EXPECT_TRUE(fi.known("test.site"));
  EXPECT_EQ(fi.arm("test.site", /*count=*/1), Status::kOk);
  EXPECT_TRUE(fi.should_fire("test.site"));
  fi.reseed(8);  // clears armed plans, keeps the declared registry
  EXPECT_TRUE(fi.known("test.site"));
  EXPECT_EQ(fi.arm("test.site", /*count=*/1), Status::kOk);
}

TEST(FaultInjector, CanonicalSiteListIsSortedAndComplete) {
  const auto& all = sites::all();
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  for (std::string_view name : all) {
    EXPECT_TRUE(sites::is_canonical(name)) << name;
  }
  // Every site the components consult must be enumerable, including
  // the network plant's.
  const std::set<std::string_view> s(all.begin(), all.end());
  EXPECT_TRUE(s.count(sites::kSdReadToken));
  EXPECT_TRUE(s.count(sites::kSdReadCrc));
  EXPECT_TRUE(s.count(sites::kIcapCrcCorrupt));
  EXPECT_TRUE(s.count(sites::kNetDrop));
  EXPECT_TRUE(s.count(sites::kNetDup));
  EXPECT_TRUE(s.count(sites::kNetReorder));
  EXPECT_TRUE(s.count(sites::kNetCorrupt));
  EXPECT_TRUE(s.count(sites::kNetServerStall));
  EXPECT_FALSE(sites::is_canonical("no.such.site"));
}

TEST(FaultInjector, CountLimitsFires) {
  FaultInjector fi(7);
  fi.declare_site("x");
  fi.arm("x", /*count=*/2);
  u32 fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (fi.should_fire("x")) ++fired;
  }
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(fi.fires("x"), 2u);
  EXPECT_EQ(fi.queries("x"), 50u);
}

TEST(FaultInjector, SkipDelaysFirstFire) {
  FaultInjector fi(7);
  fi.declare_site("x");
  fi.arm("x", /*count=*/1, /*probability=*/1.0, /*skip=*/3);
  EXPECT_FALSE(fi.should_fire("x"));
  EXPECT_FALSE(fi.should_fire("x"));
  EXPECT_FALSE(fi.should_fire("x"));
  EXPECT_TRUE(fi.should_fire("x"));
  EXPECT_FALSE(fi.should_fire("x"));
}

TEST(FaultInjector, UnlimitedCountKeepsFiring) {
  FaultInjector fi(7);
  fi.declare_site("x");
  fi.arm("x", /*count=*/0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fi.should_fire("x"));
  }
}

TEST(FaultInjector, ProbabilityIsSeedDeterministic) {
  FaultInjector a(42), b(42), c(43);
  a.declare_site("p");
  b.declare_site("p");
  c.declare_site("p");
  a.arm("p", 0, 0.5);
  b.arm("p", 0, 0.5);
  c.arm("p", 0, 0.5);
  u32 same = 0, diff_seed_same = 0;
  for (int i = 0; i < 400; ++i) {
    const bool fa = a.should_fire("p");
    if (fa == b.should_fire("p")) ++same;
    if (fa == c.should_fire("p")) ++diff_seed_same;
  }
  EXPECT_EQ(same, 400u);            // identical seeds agree exactly
  EXPECT_LT(diff_seed_same, 400u);  // a different seed diverges
  // Roughly half fire at p=0.5.
  EXPECT_GT(a.fires("p"), 100u);
  EXPECT_LT(a.fires("p"), 300u);
}

TEST(FaultInjector, SiteStreamsAreInterleavingIndependent) {
  // The decisions at site "a" must not depend on how often other sites
  // are queried in between.
  FaultInjector x(9), y(9);
  x.declare_site("a");
  y.declare_site("a");
  y.declare_site("b");
  x.arm("a", 0, 0.5);
  y.arm("a", 0, 0.5);
  y.arm("b", 0, 0.5);
  std::vector<bool> xs, ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(x.should_fire("a"));
    ys.push_back(y.should_fire("a"));
    y.should_fire("b");
    y.should_fire("b");
  }
  EXPECT_EQ(xs, ys);
}

TEST(FaultInjector, ValueIsDeterministicAndBounded) {
  FaultInjector a(5), b(5);
  for (int i = 0; i < 64; ++i) {
    const u64 va = a.value("v", 97);
    EXPECT_EQ(va, b.value("v", 97));
    EXPECT_LT(va, 97u);
  }
  EXPECT_EQ(a.value("v", 0), 0u);
}

TEST(FaultInjector, DisarmStopsFiring) {
  FaultInjector fi(1);
  fi.declare_site("x");
  fi.declare_site("y");
  fi.arm("x", 0);
  EXPECT_TRUE(fi.should_fire("x"));
  fi.disarm("x");
  EXPECT_FALSE(fi.should_fire("x"));
  fi.arm("x", 0);
  fi.arm("y", 0);
  fi.disarm_all();
  EXPECT_FALSE(fi.should_fire("x"));
  EXPECT_FALSE(fi.should_fire("y"));
}

// ---------------------------------------------------------------------
// Recovery over pre-staged modules (rp0, DMA/ICAP fault sites)
// ---------------------------------------------------------------------

struct RecoveryWorld {
  RecoveryWorld()
      : soc(make_config()),
        drv(soc.cpu(), soc.plic()),
        hwicap_drv(soc.cpu()),
        scrubber(drv, soc.device(),
                 driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000}),
        fi(0x5EED),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    mgr.attach_fallback(&hwicap_drv);
    mgr.attach_scrubber(&scrubber, &soc.rp0());
    stage("sobel", accel::kRmIdSobel, 0x8A00'0000);
    stage("median", accel::kRmIdMedian, 0x8B00'0000);
  }

  static SocConfig make_config() {
    SocConfig cfg;
    cfg.with_hwicap = true;  // fallback path available
    return cfg;
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  bool decoupled() { return soc.rvcap().rp_control().decoupled(); }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::HwIcapDriver hwicap_drv;
  driver::Scrubber scrubber;
  FaultInjector fi;
  DprManager mgr;
};

struct FaultRecoveryFixture : ::testing::Test, RecoveryWorld {};

TEST_F(FaultRecoveryFixture, NoFaultsCleanActivation) {
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().recoveries, 0u);
  EXPECT_EQ(mgr.journal_events(), 0u);
}

TEST_F(FaultRecoveryFixture, RecoversFromDmaSlvErr) {
  fi.arm(sites::kDmaMm2sSlvErr, /*count=*/1);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().dma_errors, 1u);
  EXPECT_EQ(mgr.stats().recoveries, 1u);
  EXPECT_GE(mgr.stats().blank_passes, 1u);
  EXPECT_EQ(mgr.stats().scrub_verifies, 1u);
  const auto j = mgr.journal();
  ASSERT_GE(j.size(), 2u);
  EXPECT_EQ(j.front().stage, FailStage::kDma);
  EXPECT_EQ(j.front().status, Status::kIoError);
  EXPECT_EQ(j.back().stage, FailStage::kRecovered);
  EXPECT_EQ(j.back().status, Status::kOk);
}

TEST_F(FaultRecoveryFixture, RecoversFromDmaStallTimeout) {
  // Shrink the WFI bound so the wedged transfer times out quickly.
  auto t = drv.timeouts();
  t.irq_wait_cycles = 3'000'000;
  drv.set_timeouts(t);
  fi.arm(sites::kDmaMm2sStall, /*count=*/1);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().dma_timeouts, 1u);
  EXPECT_EQ(mgr.stats().recoveries, 1u);
}

TEST_F(FaultRecoveryFixture, RecoversFromEarlyIoc) {
  fi.arm(sites::kDmaMm2sEarlyIoc, /*count=*/1);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().config_failures, 1u);
  EXPECT_EQ(mgr.stats().recoveries, 1u);
}

TEST_F(FaultRecoveryFixture, RecoversFromIcapSyncLoss) {
  fi.arm(sites::kIcapSyncLoss, /*count=*/1);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().recoveries, 1u);
}

TEST_F(FaultRecoveryFixture, RecoversFromIcapCrcCorruption) {
  fi.arm(sites::kIcapCrcCorrupt, /*count=*/1);
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().recoveries, 1u);
}

TEST_F(FaultRecoveryFixture, CorruptedRepairReloadNeverReplacesGoldenSnapshot) {
  // Regression: scrub_and_repair() must keep the existing snapshot
  // authoritative when the repair reload is itself corrupted. The old
  // behaviour re-snapshotted right after the reload, recording the
  // damaged image as golden — every later scrub then silently compared
  // against corruption.
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(scrubber.snapshot(soc.rp0()), Status::kOk);

  // Calibrate: count the injector queries one full scrub pass makes at
  // the ICAP write port (armed at p=0 so nothing fires), so the real
  // plan below can skip past the detection scrub.
  fi.arm(sites::kIcapCrcCorrupt, FaultInjector::Plan{0, 0.0, 0});
  bool clean = false;
  ASSERT_EQ(scrubber.scrub(soc.rp0(), &clean), Status::kOk);
  ASSERT_TRUE(clean);
  const u64 per_pass = fi.queries(sites::kIcapCrcCorrupt);

  // Land an upset so the next scrub detects, then corrupt the repair
  // reload itself: skip past the detection pass and ~50 words into the
  // reload, well inside the FDRI frame payload.
  fabric::FrameAddr fa = soc.rp0().base_frame(soc.device());
  ASSERT_TRUE(soc.device().next_frame(&fa));
  ASSERT_TRUE(soc.config_memory().inject_upset(fa, /*word=*/7, /*bit=*/3));
  fi.arm(sites::kIcapCrcCorrupt,
         FaultInjector::Plan{1, 1.0, static_cast<u32>(per_pass) + 50});

  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const driver::ReconfigModule m{"sobel", accel::kRmIdSobel, 0x8A00'0000,
                                 static_cast<u32>(pbit.size())};
  EXPECT_EQ(scrubber.scrub_and_repair(soc.rp0(), m), Status::kCrcError);
  EXPECT_EQ(fi.fires(sites::kIcapCrcCorrupt), 1u);
  EXPECT_EQ(scrubber.stats().repairs, 0u);
  // The corrupted pass tripped the bitstream CRC and invalidated the
  // partition rather than leaving the damage live.
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);

  // The snapshot survived: a clean reload scrubs clean against it, and
  // a repair through the same entry point now counts.
  ASSERT_EQ(drv.init_reconfig_process(m, DmaMode::kInterrupt), Status::kOk);
  EXPECT_EQ(scrubber.scrub(soc.rp0(), &clean), Status::kOk);
  EXPECT_TRUE(clean);
  ASSERT_TRUE(soc.config_memory().inject_upset(fa, /*word=*/9, /*bit=*/1));
  EXPECT_EQ(scrubber.scrub_and_repair(soc.rp0(), m), Status::kOk);
  EXPECT_EQ(scrubber.stats().repairs, 1u);
}

TEST_F(FaultRecoveryFixture, FallsBackToHwicapAfterRepeatedDmaFailures) {
  DprManager::RecoveryPolicy p;
  p.fallback_after_failures = 1;
  mgr.set_policy(p);
  fi.arm(sites::kDmaMm2sSlvErr, /*count=*/0);  // DMA path always fails
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(mgr.active_module(), "sobel");
  EXPECT_FALSE(decoupled());
  EXPECT_EQ(mgr.stats().fallback_reconfigs, 1u);
  EXPECT_GE(mgr.stats().dma_errors, 1u);
}

TEST_F(FaultRecoveryFixture, ExhaustedRetriesLeaveRpDecoupled) {
  DprManager::RecoveryPolicy p;
  p.hwicap_fallback = false;  // no escape hatch
  mgr.set_policy(p);
  fi.arm(sites::kDmaMm2sSlvErr, /*count=*/0);
  EXPECT_EQ(mgr.activate("sobel"), Status::kIoError);
  EXPECT_TRUE(decoupled());
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
  EXPECT_EQ(mgr.stats().retries_exhausted, 1u);
  const auto j = mgr.journal();
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.back().stage, FailStage::kExhausted);
}

TEST_F(FaultRecoveryFixture, CorruptPinnedImageNeverCouples) {
  // Flip one byte of the pre-staged image: the golden CRC from
  // registration no longer matches and there is no SD copy to reload,
  // so every attempt must be refused before the ICAP sees a word.
  u8 byte = 0;
  soc.ddr().peek(0x8A00'0100, std::span(&byte, 1));
  byte ^= 0xFF;
  soc.ddr().poke(0x8A00'0100, std::span<const u8>(&byte, 1));
  EXPECT_EQ(mgr.activate("sobel"), Status::kCrcError);
  EXPECT_TRUE(decoupled());
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
  EXPECT_EQ(mgr.stats().staged_crc_failures, mgr.policy().max_attempts);
  EXPECT_EQ(mgr.stats().reconfigurations, 0u);
}

TEST_F(FaultRecoveryFixture, ActivationFailureKeepsPreviousModuleOut) {
  // A good module is active; switching to another module fails hard.
  // The RP must end decoupled and blanked, not left on the stale or the
  // partial configuration.
  ASSERT_EQ(mgr.activate("sobel"), Status::kOk);
  DprManager::RecoveryPolicy p;
  p.hwicap_fallback = false;
  mgr.set_policy(p);
  fi.arm(sites::kDmaMm2sSlvErr, /*count=*/0);
  EXPECT_EQ(mgr.activate("median"), Status::kIoError);
  EXPECT_TRUE(decoupled());
  EXPECT_FALSE(soc.config_memory().partition_state(soc.rp0_handle()).loaded);
}

TEST_F(FaultRecoveryFixture, SameSeedSameJournal) {
  // Probabilistic, unlimited faults: whatever sequence of failures,
  // recoveries, or exhaustion plays out, an identically-seeded world
  // must reproduce it exactly — statuses, journal, and fire counts.
  const auto scenario = [](RecoveryWorld& w) {
    DprManager::RecoveryPolicy p;
    p.hwicap_fallback = false;       // keep the run on one path
    p.scrub_after_recovery = false;  // and free of long readback waits
    w.mgr.set_policy(p);
    w.fi.arm(sites::kDmaMm2sSlvErr, 0, 0.5);
    w.fi.arm(sites::kIcapCrcCorrupt, 3, 0.001);
    std::vector<Status> out;
    out.push_back(w.mgr.activate("sobel"));
    out.push_back(w.mgr.activate("median"));
    return out;
  };
  const auto s1 = scenario(*this);
  const auto j1 = mgr.journal();
  const auto report1 = fi.fire_report();

  // Fresh, identically-seeded world must reproduce the exact journal.
  RecoveryWorld other;
  const auto s2 = scenario(other);
  const auto j2 = other.mgr.journal();

  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(j1.empty());  // p=0.5 over many transfers: events occur

  ASSERT_EQ(j1.size(), j2.size());
  for (usize i = 0; i < j1.size(); ++i) {
    EXPECT_EQ(j1[i].mtime, j2[i].mtime) << i;
    EXPECT_EQ(j1[i].stage, j2[i].stage) << i;
    EXPECT_EQ(j1[i].status, j2[i].status) << i;
    EXPECT_EQ(j1[i].rm_id, j2[i].rm_id) << i;
    EXPECT_EQ(j1[i].attempt, j2[i].attempt) << i;
  }
  EXPECT_EQ(report1, other.fi.fire_report());
}

// ---------------------------------------------------------------------
// Recovery over SD-backed modules (staging fault sites)
// ---------------------------------------------------------------------

struct SdFaultFixture : ::testing::Test {
  SdFaultFixture()
      : soc(SocConfig{}),
        drv(soc.cpu(), soc.plic()),
        small("RPA", {{0, 2}}),
        host_io(soc.sd_card()),
        fi(0xF00D) {
    handle = soc.add_partition(small);
    EXPECT_EQ(storage::fat32_format(host_io), Status::kOk);
    storage::Fat32Volume host_vol(host_io);
    EXPECT_EQ(host_vol.mount(), Status::kOk);
    for (u32 id : {60u, 61u}) {
      const auto pbit = bitstream::generate_partial_bitstream(
          soc.device(), small, {id, "m"});
      EXPECT_EQ(host_vol.write_file("M" + std::to_string(id) + ".PB", pbit),
                Status::kOk);
    }

    sd = std::make_unique<driver::SpiSdDriver>(soc.cpu());
    EXPECT_EQ(sd->init_card(), Status::kOk);
    io = std::make_unique<driver::CpuBlockIo>(*sd,
                                              soc.sd_card().block_count());
    vol = std::make_unique<storage::Fat32Volume>(*io);
    EXPECT_EQ(vol->mount(), Status::kOk);

    DprManager::Config cfg;
    cfg.num_slots = 2;
    cfg.slot_bytes = 64 * 1024;
    mgr = std::make_unique<DprManager>(drv, soc.config_memory(), handle,
                                       vol.get(), cfg);
    for (u32 id : {60u, 61u}) {
      EXPECT_EQ(mgr->register_module("m" + std::to_string(id), id,
                                     "M" + std::to_string(id) + ".PB"),
                Status::kOk);
    }
    // Faults armed per test; attach after host-side setup so formatting
    // traffic is not subject to injection.
    soc.attach_fault_injector(&fi);
    mgr->set_fault_injector(&fi);
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  fabric::Partition small;
  usize handle = 0;
  storage::MemBlockIo host_io;
  FaultInjector fi;
  std::unique_ptr<driver::SpiSdDriver> sd;
  std::unique_ptr<driver::CpuBlockIo> io;
  std::unique_ptr<storage::Fat32Volume> vol;
  std::unique_ptr<DprManager> mgr;
};

TEST_F(SdFaultFixture, SdTokenDropRecoveredByDriverRetry) {
  fi.arm(sim::fault_sites::kSdReadToken, /*count=*/1);
  ASSERT_EQ(mgr->activate("m60"), Status::kOk);
  EXPECT_GE(sd->reads_recovered(), 1u);
  // Transparent to the manager: no journal event, no manager retry.
  EXPECT_EQ(mgr->journal_events(), 0u);
}

TEST_F(SdFaultFixture, SdCrcCorruptionRecoveredByDriverRetry) {
  fi.arm(sim::fault_sites::kSdReadCrc, /*count=*/1);
  ASSERT_EQ(mgr->activate("m60"), Status::kOk);
  EXPECT_GE(sd->reads_recovered(), 1u);
}

TEST_F(SdFaultFixture, StagedBitFlipCaughtByCrcAndReloaded) {
  fi.arm(sim::fault_sites::kStageBitFlip, /*count=*/1);
  ASSERT_EQ(mgr->activate("m60"), Status::kOk);
  EXPECT_EQ(mgr->active_module(), "m60");
  EXPECT_EQ(mgr->stats().staged_crc_failures, 1u);
  EXPECT_EQ(mgr->stats().staging_loads, 2u);  // corrupt load + reload
  EXPECT_EQ(mgr->stats().recoveries, 1u);
  const auto j = mgr->journal();
  ASSERT_GE(j.size(), 2u);
  EXPECT_EQ(j.front().stage, FailStage::kStagedCrc);
  EXPECT_EQ(j.back().stage, FailStage::kRecovered);
}

TEST_F(SdFaultFixture, BlockingModeDetectsDmaError) {
  fi.arm(sim::fault_sites::kDmaMm2sSlvErr, /*count=*/1);
  ASSERT_EQ(mgr->activate("m60", DmaMode::kBlocking), Status::kOk);
  EXPECT_EQ(mgr->stats().dma_errors, 1u);
  EXPECT_EQ(mgr->stats().recoveries, 1u);
}

// to_string coverage for the recovery-stage enum.
TEST(FailStageNames, AllDistinctAndNonEmpty) {
  const FailStage all[] = {
      FailStage::kStaging,   FailStage::kStagedCrc, FailStage::kDma,
      FailStage::kIcap,      FailStage::kActivate,  FailStage::kScrub,
      FailStage::kBlank,     FailStage::kRecovered, FailStage::kExhausted,
  };
  std::set<std::string_view> seen;
  for (const FailStage s : all) {
    const auto name = driver::to_string(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(seen.insert(name).second) << name;
  }
}

}  // namespace
}  // namespace rvcap
