// Dual-mode kernel equivalence (DESIGN.md §9).
//
// The activity-scheduled kernel must be indistinguishable from the flat
// reference loop at cycle granularity: a skipped tick is one that would
// have been a no-op. These tests run complete workloads — end-to-end
// DMA reconfigurations, the HWICAP baseline, and fault-injected
// self-healing activations — once under Simulator::Mode::kFlat and once
// under Mode::kScheduled, and assert the outcomes are identical: same
// now() at every milestone, same driver timing, same throughput, and
// bit-for-bit identical DprManager failure journals under the same
// fault seed. Any divergence here means a component broke the activity
// contract (returned false from a tick that changed state, or mutated
// state without raising a wake).
#include <gtest/gtest.h>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/reconfig_service.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/scrub_service.hpp"
#include "driver/scrubber.hpp"
#include "fabric/seu_process.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using driver::DprManager;
using sim::FaultInjector;
using sim::Simulator;
using soc::ArianeSoc;
using soc::SocConfig;
namespace sites = sim::fault_sites;

// ---------------------------------------------------------------------
// Clean reconfigurations: both DPR paths, both completion modes
// ---------------------------------------------------------------------

/// Everything observable about one reconfiguration run.
struct ReconfigOutcome {
  Cycles final_cycle = 0;
  Cycles decision_ticks = 0;
  Cycles reconfig_ticks = 0;
  u64 icap_words = 0;
  u64 frames_committed = 0;
  u64 clint_mtime = 0;
  bool loaded = false;

  bool operator==(const ReconfigOutcome&) const = default;
};

ReconfigOutcome run_rvcap(Simulator::Mode mode, DmaMode dma_mode) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  const Status st = drv.init_reconfig_process(m, dma_mode);
  ReconfigOutcome o;
  o.final_cycle = soc.sim().now();
  o.decision_ticks = drv.last_timing().decision_ticks;
  o.reconfig_ticks = drv.last_timing().reconfig_ticks;
  o.icap_words = soc.icap().words_consumed();
  o.frames_committed = soc.icap().frames_committed();
  o.clint_mtime = soc.clint().mtime();
  o.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return o;
}

ReconfigOutcome run_hwicap(Simulator::Mode mode, u32 unroll) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  cfg.with_hwicap = true;
  ArianeSoc soc(cfg);
  driver::HwIcapDriver drv(soc.cpu(), unroll);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  const Status st = drv.init_reconfig_process(m);
  ReconfigOutcome o;
  o.final_cycle = soc.sim().now();
  o.reconfig_ticks = drv.last_timing().reconfig_ticks;
  o.icap_words = soc.icap().words_consumed();
  o.frames_committed = soc.icap().frames_committed();
  o.clint_mtime = soc.clint().mtime();
  o.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return o;
}

void expect_same(const ReconfigOutcome& flat, const ReconfigOutcome& sched) {
  EXPECT_EQ(flat.final_cycle, sched.final_cycle);
  EXPECT_EQ(flat.decision_ticks, sched.decision_ticks);
  EXPECT_EQ(flat.reconfig_ticks, sched.reconfig_ticks);
  EXPECT_EQ(flat.icap_words, sched.icap_words);
  EXPECT_EQ(flat.frames_committed, sched.frames_committed);
  EXPECT_EQ(flat.clint_mtime, sched.clint_mtime);
  EXPECT_TRUE(flat.loaded);
  EXPECT_TRUE(sched.loaded);
}

TEST(KernelEquivalence, RvcapInterruptModeIdentical) {
  expect_same(run_rvcap(Simulator::Mode::kFlat, DmaMode::kInterrupt),
              run_rvcap(Simulator::Mode::kScheduled, DmaMode::kInterrupt));
}

TEST(KernelEquivalence, RvcapBlockingModeIdentical) {
  expect_same(run_rvcap(Simulator::Mode::kFlat, DmaMode::kBlocking),
              run_rvcap(Simulator::Mode::kScheduled, DmaMode::kBlocking));
}

TEST(KernelEquivalence, HwicapBaselineIdentical) {
  expect_same(run_hwicap(Simulator::Mode::kFlat, 16),
              run_hwicap(Simulator::Mode::kScheduled, 16));
}

// ---------------------------------------------------------------------
// Long idle stretches: the time-skip must not shift device time bases
// ---------------------------------------------------------------------

TEST(KernelEquivalence, IdleStretchKeepsClintPhase) {
  ReconfigOutcome out[2];
  int i = 0;
  for (const auto mode :
       {Simulator::Mode::kFlat, Simulator::Mode::kScheduled}) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    ArianeSoc soc(cfg);
    // An odd cycle count lands mid-way through a CLINT divider period,
    // so a lazily derived mtime with the wrong phase would show here.
    soc.sim().run_cycles(1'234'567);
    out[i].final_cycle = soc.sim().now();
    out[i].clint_mtime = soc.clint().mtime();
    ++i;
  }
  EXPECT_EQ(out[0].final_cycle, out[1].final_cycle);
  EXPECT_EQ(out[0].clint_mtime, out[1].clint_mtime);
}

// ---------------------------------------------------------------------
// Fault-injected self-healing: bit-identical journals per seed
// ---------------------------------------------------------------------

/// The RecoveryWorld of test_faults.cpp, parameterized by kernel mode.
struct RecoveryRun {
  explicit RecoveryRun(Simulator::Mode mode)
      : soc(make_config(mode)),
        drv(soc.cpu(), soc.plic()),
        hwicap_drv(soc.cpu()),
        scrubber(drv, soc.device(),
                 driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000}),
        fi(0x5EED),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    mgr.attach_fallback(&hwicap_drv);
    mgr.attach_scrubber(&scrubber, &soc.rp0());
    stage("sobel", accel::kRmIdSobel, 0x8A00'0000);
    stage("median", accel::kRmIdMedian, 0x8B00'0000);
  }

  static SocConfig make_config(Simulator::Mode mode) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    cfg.with_hwicap = true;
    return cfg;
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::HwIcapDriver hwicap_drv;
  driver::Scrubber scrubber;
  FaultInjector fi;
  DprManager mgr;
};

void expect_same_journal(const std::vector<DprManager::JournalEntry>& a,
                         const std::vector<DprManager::JournalEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mtime, b[i].mtime) << "entry " << i;
    EXPECT_EQ(a[i].stage, b[i].stage) << "entry " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "entry " << i;
    EXPECT_EQ(a[i].rm_id, b[i].rm_id) << "entry " << i;
    EXPECT_EQ(a[i].attempt, b[i].attempt) << "entry " << i;
  }
}

TEST(KernelEquivalence, DmaFaultRecoveryJournalIdentical) {
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  flat.fi.arm(sites::kDmaMm2sSlvErr, /*count=*/1);
  sched.fi.arm(sites::kDmaMm2sSlvErr, /*count=*/1);
  ASSERT_EQ(flat.mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(sched.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  EXPECT_EQ(flat.mgr.stats().recoveries, 1u);
  EXPECT_EQ(sched.mgr.stats().recoveries, 1u);
  expect_same_journal(flat.mgr.journal(), sched.mgr.journal());
}

TEST(KernelEquivalence, IcapCorruptionRecoveryJournalIdentical) {
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  flat.fi.arm(sites::kIcapCrcCorrupt, /*count=*/1);
  sched.fi.arm(sites::kIcapCrcCorrupt, /*count=*/1);
  ASSERT_EQ(flat.mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(sched.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  expect_same_journal(flat.mgr.journal(), sched.mgr.journal());
  // The injected-fault streams must also have advanced identically:
  // the scheduled kernel issues the same should_fire() queries in the
  // same order, or the seeds would desynchronize.
  EXPECT_EQ(flat.fi.queries(sites::kIcapCrcCorrupt),
            sched.fi.queries(sites::kIcapCrcCorrupt));
  EXPECT_EQ(flat.fi.total_fires(), sched.fi.total_fires());
}

TEST(KernelEquivalence, BackToBackActivationsIdentical) {
  // Module swaps exercise decouple/recouple, RM slot wake paths and
  // the already-active fast path in both kernels.
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  for (const char* name : {"sobel", "median", "median", "sobel"}) {
    ASSERT_EQ(flat.mgr.activate(name), Status::kOk);
    ASSERT_EQ(sched.mgr.activate(name), Status::kOk);
    EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now()) << name;
  }
  EXPECT_EQ(flat.mgr.stats().reconfigurations,
            sched.mgr.stats().reconfigurations);
  EXPECT_EQ(flat.mgr.stats().already_active_hits,
            sched.mgr.stats().already_active_hits);
}

// ---------------------------------------------------------------------
// Background SEU process + scrub repair: identical histories per seed
// ---------------------------------------------------------------------

/// Everything observable about one radiation-under-scrub run.
struct SeuOutcome {
  Cycles final_cycle = 0;
  std::vector<fabric::SeuProcess::Event> events;
  std::vector<driver::ScrubService::JournalEntry> journal;
  u64 landed = 0;
  u64 detections = 0;
  u64 rewrites = 0;
  u64 reloads = 0;
  u64 repaired = 0;
  u64 self_cancelled = 0;
  u64 passes = 0;
  u64 mttd_total = 0;
  u64 mttr_total = 0;
  u64 upset_queries = 0;
};

SeuOutcome run_seu(Simulator::Mode mode) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  FaultInjector fi(0xBEEF);
  soc.attach_fault_injector(&fi);
  DprManager mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr);
  mgr.set_fault_injector(&fi);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  soc.ddr().poke(0x8A00'0000, pbit);
  EXPECT_EQ(mgr.register_staged("sobel", accel::kRmIdSobel, 0x8A00'0000,
                                static_cast<u32>(pbit.size())),
            Status::kOk);

  driver::ReconfigService svc(mgr, driver::ReconfigService::Config{});
  driver::ScrubService::Config sc;
  sc.cmd_staging = 0x8C00'0000;
  sc.rb_buffer = 0x8D00'0000;
  sc.frames_per_slice = 128;
  driver::ScrubService scrub(drv, soc.config_memory(), svc, sc);
  scrub.watch_partition(soc.rp0_handle(), "sobel");
  scrub.install_upset_feed();

  driver::ReconfigService::ActivationRequest req;
  req.module = "sobel";
  req.priority = 1;
  EXPECT_EQ(svc.submit(req, nullptr), Status::kOk);
  svc.drain();

  fabric::SeuProcess::Config pc;
  pc.mean_cycles = 30'000;
  pc.targets = {soc.rp0_handle()};
  fabric::SeuProcess seu("seu0", soc.config_memory(), fi, pc);
  soc.sim().add(&seu);
  fi.arm(sites::kSeuUpset, /*count=*/5);

  // Scrub until the armed upset budget has fired out and every landed
  // hit is resolved (each pass advances sim time, so pending events on
  // the wheel get their chance to land).
  for (int pass = 0; pass < 20; ++pass) {
    if (fi.fires(sites::kSeuUpset) >= 5 && scrub.pending_upsets() == 0) {
      break;
    }
    EXPECT_EQ(scrub.scrub_pass(), Status::kOk);
  }
  EXPECT_EQ(scrub.pending_upsets(), 0u);

  SeuOutcome o;
  o.final_cycle = soc.sim().now();
  o.events = seu.log();
  o.journal = scrub.journal();
  o.landed = seu.landed();
  o.detections = scrub.stats().detections;
  o.rewrites = scrub.stats().frame_rewrites;
  o.reloads = scrub.stats().partition_reloads;
  o.repaired = scrub.stats().upsets_repaired;
  o.self_cancelled = scrub.stats().upsets_self_cancelled;
  o.passes = scrub.stats().passes;
  o.mttd_total = scrub.stats().mttd_cycles_total;
  o.mttr_total = scrub.stats().mttr_cycles_total;
  o.upset_queries = fi.queries(sites::kSeuUpset);
  return o;
}

TEST(KernelEquivalence, SeuScrubRepairHistoryIdentical) {
  const SeuOutcome flat = run_seu(Simulator::Mode::kFlat);
  const SeuOutcome sched = run_seu(Simulator::Mode::kScheduled);

  // The run is non-vacuous: upsets landed and repairs happened.
  EXPECT_GT(flat.landed, 0u);
  EXPECT_FALSE(flat.journal.empty());

  // Same seed, different kernel: the upset schedule must be identical
  // to the cycle — the SeuProcess rides the time wheel, so a wake
  // delivered early or late would shift every `at` below.
  EXPECT_EQ(flat.final_cycle, sched.final_cycle);
  ASSERT_EQ(flat.events.size(), sched.events.size());
  for (usize i = 0; i < flat.events.size(); ++i) {
    EXPECT_EQ(flat.events[i].at, sched.events[i].at) << i;
    EXPECT_EQ(flat.events[i].fa, sched.events[i].fa) << i;
    EXPECT_EQ(flat.events[i].word, sched.events[i].word) << i;
    EXPECT_EQ(flat.events[i].bit, sched.events[i].bit) << i;
    EXPECT_EQ(flat.events[i].landed, sched.events[i].landed) << i;
  }

  // Detection and repair history, including the cycle stamps feeding
  // MTTD/MTTR, must match entry for entry.
  ASSERT_EQ(flat.journal.size(), sched.journal.size());
  for (usize i = 0; i < flat.journal.size(); ++i) {
    EXPECT_TRUE(flat.journal[i] == sched.journal[i]) << "entry " << i;
  }
  EXPECT_EQ(flat.landed, sched.landed);
  EXPECT_EQ(flat.detections, sched.detections);
  EXPECT_EQ(flat.rewrites, sched.rewrites);
  EXPECT_EQ(flat.reloads, sched.reloads);
  EXPECT_EQ(flat.repaired, sched.repaired);
  EXPECT_EQ(flat.self_cancelled, sched.self_cancelled);
  EXPECT_EQ(flat.passes, sched.passes);
  EXPECT_EQ(flat.mttd_total, sched.mttd_total);
  EXPECT_EQ(flat.mttr_total, sched.mttr_total);
  EXPECT_EQ(flat.upset_queries, sched.upset_queries);
}

// ---------------------------------------------------------------------
// Trace-stream equivalence: the observability layer sees one history
// ---------------------------------------------------------------------

/// Full event stream of a traced reconfiguration: wrap-proof digest,
/// lifetime count, and the retained ring for entry-level diffing.
struct TraceOutcome {
  u64 digest = 0;
  u64 total = 0;
  std::vector<obs::TraceEvent> events;
  std::vector<std::string> sources;
};

TraceOutcome run_traced_rvcap(Simulator::Mode mode, DmaMode dma_mode) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  ArianeSoc soc(cfg);
  soc.sim().obs().sink().set_enabled(true);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  EXPECT_TRUE(ok(drv.init_reconfig_process(m, dma_mode)));
  const obs::TraceSink& sink = soc.sim().obs().sink();
  TraceOutcome o;
  o.digest = sink.digest();
  o.total = sink.total_events();
  o.events.assign(sink.events().begin(), sink.events().end());
  o.sources = sink.sources();
  return o;
}

TEST(KernelEquivalence, TraceStreamIdentical) {
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "built with RVCAP_NO_TRACE";
  for (const auto dma_mode : {DmaMode::kInterrupt, DmaMode::kBlocking}) {
    const TraceOutcome flat =
        run_traced_rvcap(Simulator::Mode::kFlat, dma_mode);
    const TraceOutcome sched =
        run_traced_rvcap(Simulator::Mode::kScheduled, dma_mode);

    // A reconfiguration is trace-dense: far more events than the ring
    // retains, so the digest (not the ring) is the real equivalence
    // check. The ring suffix is diffed too for a readable failure.
    EXPECT_GT(flat.total, 0u);
    EXPECT_EQ(flat.sources, sched.sources);
    EXPECT_EQ(flat.total, sched.total);
    ASSERT_EQ(flat.events.size(), sched.events.size());
    for (usize i = 0; i < flat.events.size(); ++i) {
      const obs::TraceEvent& a = flat.events[i];
      const obs::TraceEvent& b = sched.events[i];
      ASSERT_TRUE(a.ts == b.ts && a.kind == b.kind && a.src == b.src &&
                  a.a0 == b.a0 && a.a1 == b.a1 && a.a2 == b.a2)
          << "ring entry " << i << ": flat {ts=" << a.ts << ", "
          << obs::event_name(a.kind) << "} vs sched {ts=" << b.ts << ", "
          << obs::event_name(b.kind) << "}";
    }
    EXPECT_EQ(flat.digest, sched.digest);
  }
}

// ---------------------------------------------------------------------
// Mid-run mode switching stays consistent
// ---------------------------------------------------------------------

TEST(KernelEquivalence, ModeSwitchMidRunMatchesFlat) {
  // Reference: pure flat run. Candidate: flat for the first half of
  // the reconfiguration's setup, then switched to scheduled. The final
  // outcome must match the reference exactly.
  const ReconfigOutcome ref =
      run_rvcap(Simulator::Mode::kFlat, DmaMode::kInterrupt);

  SocConfig cfg;
  cfg.sim_mode = Simulator::Mode::kFlat;
  ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  soc.sim().run_cycles(1000);  // some flat-mode history first
  soc.sim().set_mode(Simulator::Mode::kScheduled);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  ASSERT_TRUE(ok(drv.init_reconfig_process(m, DmaMode::kInterrupt)));
  EXPECT_EQ(soc.sim().now() - 1000, ref.final_cycle);
  EXPECT_EQ(drv.last_timing().reconfig_ticks, ref.reconfig_ticks);
  EXPECT_EQ(soc.icap().frames_committed(), ref.frames_committed);
}

}  // namespace
}  // namespace rvcap
