// Dual-mode kernel equivalence (DESIGN.md §9).
//
// The activity-scheduled kernel must be indistinguishable from the flat
// reference loop at cycle granularity: a skipped tick is one that would
// have been a no-op. These tests run complete workloads — end-to-end
// DMA reconfigurations, the HWICAP baseline, and fault-injected
// self-healing activations — once under Simulator::Mode::kFlat and once
// under Mode::kScheduled, and assert the outcomes are identical: same
// now() at every milestone, same driver timing, same throughput, and
// bit-for-bit identical DprManager failure journals under the same
// fault seed. Any divergence here means a component broke the activity
// contract (returned false from a tick that changed state, or mutated
// state without raising a wake).
#include <gtest/gtest.h>

#include "accel/rm_slot.hpp"
#include "bitstream/generator.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/scrubber.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"

namespace rvcap {
namespace {

using driver::DmaMode;
using driver::DprManager;
using sim::FaultInjector;
using sim::Simulator;
using soc::ArianeSoc;
using soc::SocConfig;
namespace sites = sim::fault_sites;

// ---------------------------------------------------------------------
// Clean reconfigurations: both DPR paths, both completion modes
// ---------------------------------------------------------------------

/// Everything observable about one reconfiguration run.
struct ReconfigOutcome {
  Cycles final_cycle = 0;
  Cycles decision_ticks = 0;
  Cycles reconfig_ticks = 0;
  u64 icap_words = 0;
  u64 frames_committed = 0;
  u64 clint_mtime = 0;
  bool loaded = false;

  bool operator==(const ReconfigOutcome&) const = default;
};

ReconfigOutcome run_rvcap(Simulator::Mode mode, DmaMode dma_mode) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  const Status st = drv.init_reconfig_process(m, dma_mode);
  ReconfigOutcome o;
  o.final_cycle = soc.sim().now();
  o.decision_ticks = drv.last_timing().decision_ticks;
  o.reconfig_ticks = drv.last_timing().reconfig_ticks;
  o.icap_words = soc.icap().words_consumed();
  o.frames_committed = soc.icap().frames_committed();
  o.clint_mtime = soc.clint().mtime();
  o.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return o;
}

ReconfigOutcome run_hwicap(Simulator::Mode mode, u32 unroll) {
  SocConfig cfg;
  cfg.sim_mode = mode;
  cfg.with_hwicap = true;
  ArianeSoc soc(cfg);
  driver::HwIcapDriver drv(soc.cpu(), unroll);
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  const Status st = drv.init_reconfig_process(m);
  ReconfigOutcome o;
  o.final_cycle = soc.sim().now();
  o.reconfig_ticks = drv.last_timing().reconfig_ticks;
  o.icap_words = soc.icap().words_consumed();
  o.frames_committed = soc.icap().frames_committed();
  o.clint_mtime = soc.clint().mtime();
  o.loaded = ok(st) &&
             soc.config_memory().partition_state(soc.rp0_handle()).loaded;
  return o;
}

void expect_same(const ReconfigOutcome& flat, const ReconfigOutcome& sched) {
  EXPECT_EQ(flat.final_cycle, sched.final_cycle);
  EXPECT_EQ(flat.decision_ticks, sched.decision_ticks);
  EXPECT_EQ(flat.reconfig_ticks, sched.reconfig_ticks);
  EXPECT_EQ(flat.icap_words, sched.icap_words);
  EXPECT_EQ(flat.frames_committed, sched.frames_committed);
  EXPECT_EQ(flat.clint_mtime, sched.clint_mtime);
  EXPECT_TRUE(flat.loaded);
  EXPECT_TRUE(sched.loaded);
}

TEST(KernelEquivalence, RvcapInterruptModeIdentical) {
  expect_same(run_rvcap(Simulator::Mode::kFlat, DmaMode::kInterrupt),
              run_rvcap(Simulator::Mode::kScheduled, DmaMode::kInterrupt));
}

TEST(KernelEquivalence, RvcapBlockingModeIdentical) {
  expect_same(run_rvcap(Simulator::Mode::kFlat, DmaMode::kBlocking),
              run_rvcap(Simulator::Mode::kScheduled, DmaMode::kBlocking));
}

TEST(KernelEquivalence, HwicapBaselineIdentical) {
  expect_same(run_hwicap(Simulator::Mode::kFlat, 16),
              run_hwicap(Simulator::Mode::kScheduled, 16));
}

// ---------------------------------------------------------------------
// Long idle stretches: the time-skip must not shift device time bases
// ---------------------------------------------------------------------

TEST(KernelEquivalence, IdleStretchKeepsClintPhase) {
  ReconfigOutcome out[2];
  int i = 0;
  for (const auto mode :
       {Simulator::Mode::kFlat, Simulator::Mode::kScheduled}) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    ArianeSoc soc(cfg);
    // An odd cycle count lands mid-way through a CLINT divider period,
    // so a lazily derived mtime with the wrong phase would show here.
    soc.sim().run_cycles(1'234'567);
    out[i].final_cycle = soc.sim().now();
    out[i].clint_mtime = soc.clint().mtime();
    ++i;
  }
  EXPECT_EQ(out[0].final_cycle, out[1].final_cycle);
  EXPECT_EQ(out[0].clint_mtime, out[1].clint_mtime);
}

// ---------------------------------------------------------------------
// Fault-injected self-healing: bit-identical journals per seed
// ---------------------------------------------------------------------

/// The RecoveryWorld of test_faults.cpp, parameterized by kernel mode.
struct RecoveryRun {
  explicit RecoveryRun(Simulator::Mode mode)
      : soc(make_config(mode)),
        drv(soc.cpu(), soc.plic()),
        hwicap_drv(soc.cpu()),
        scrubber(drv, soc.device(),
                 driver::Scrubber::Config{0x8C00'0000, 0x8D00'0000}),
        fi(0x5EED),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    mgr.attach_fallback(&hwicap_drv);
    mgr.attach_scrubber(&scrubber, &soc.rp0());
    stage("sobel", accel::kRmIdSobel, 0x8A00'0000);
    stage("median", accel::kRmIdMedian, 0x8B00'0000);
  }

  static SocConfig make_config(Simulator::Mode mode) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    cfg.with_hwicap = true;
    return cfg;
  }

  void stage(const char* name, u32 rm_id, Addr addr) {
    const auto pbit = bitstream::generate_partial_bitstream(
        soc.device(), soc.rp0(), {rm_id, name});
    soc.ddr().poke(addr, pbit);
    ASSERT_EQ(mgr.register_staged(name, rm_id, addr,
                                  static_cast<u32>(pbit.size())),
              Status::kOk);
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  driver::HwIcapDriver hwicap_drv;
  driver::Scrubber scrubber;
  FaultInjector fi;
  DprManager mgr;
};

void expect_same_journal(const std::vector<DprManager::JournalEntry>& a,
                         const std::vector<DprManager::JournalEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mtime, b[i].mtime) << "entry " << i;
    EXPECT_EQ(a[i].stage, b[i].stage) << "entry " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "entry " << i;
    EXPECT_EQ(a[i].rm_id, b[i].rm_id) << "entry " << i;
    EXPECT_EQ(a[i].attempt, b[i].attempt) << "entry " << i;
  }
}

TEST(KernelEquivalence, DmaFaultRecoveryJournalIdentical) {
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  flat.fi.arm(sites::kDmaMm2sSlvErr, /*count=*/1);
  sched.fi.arm(sites::kDmaMm2sSlvErr, /*count=*/1);
  ASSERT_EQ(flat.mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(sched.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  EXPECT_EQ(flat.mgr.stats().recoveries, 1u);
  EXPECT_EQ(sched.mgr.stats().recoveries, 1u);
  expect_same_journal(flat.mgr.journal(), sched.mgr.journal());
}

TEST(KernelEquivalence, IcapCorruptionRecoveryJournalIdentical) {
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  flat.fi.arm(sites::kIcapCrcCorrupt, /*count=*/1);
  sched.fi.arm(sites::kIcapCrcCorrupt, /*count=*/1);
  ASSERT_EQ(flat.mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(sched.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  expect_same_journal(flat.mgr.journal(), sched.mgr.journal());
  // The injected-fault streams must also have advanced identically:
  // the scheduled kernel issues the same should_fire() queries in the
  // same order, or the seeds would desynchronize.
  EXPECT_EQ(flat.fi.queries(sites::kIcapCrcCorrupt),
            sched.fi.queries(sites::kIcapCrcCorrupt));
  EXPECT_EQ(flat.fi.total_fires(), sched.fi.total_fires());
}

TEST(KernelEquivalence, BackToBackActivationsIdentical) {
  // Module swaps exercise decouple/recouple, RM slot wake paths and
  // the already-active fast path in both kernels.
  RecoveryRun flat(Simulator::Mode::kFlat);
  RecoveryRun sched(Simulator::Mode::kScheduled);
  for (const char* name : {"sobel", "median", "median", "sobel"}) {
    ASSERT_EQ(flat.mgr.activate(name), Status::kOk);
    ASSERT_EQ(sched.mgr.activate(name), Status::kOk);
    EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now()) << name;
  }
  EXPECT_EQ(flat.mgr.stats().reconfigurations,
            sched.mgr.stats().reconfigurations);
  EXPECT_EQ(flat.mgr.stats().already_active_hits,
            sched.mgr.stats().already_active_hits);
}

// ---------------------------------------------------------------------
// Mid-run mode switching stays consistent
// ---------------------------------------------------------------------

TEST(KernelEquivalence, ModeSwitchMidRunMatchesFlat) {
  // Reference: pure flat run. Candidate: flat for the first half of
  // the reconfiguration's setup, then switched to scheduled. The final
  // outcome must match the reference exactly.
  const ReconfigOutcome ref =
      run_rvcap(Simulator::Mode::kFlat, DmaMode::kInterrupt);

  SocConfig cfg;
  cfg.sim_mode = Simulator::Mode::kFlat;
  ArianeSoc soc(cfg);
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const auto pbit = bitstream::generate_partial_bitstream(
      soc.device(), soc.rp0(), {accel::kRmIdSobel, "sobel"});
  const Addr staging = soc::MemoryMap::kPbitStagingBase;
  soc.ddr().poke(staging, pbit);
  soc.sim().run_cycles(1000);  // some flat-mode history first
  soc.sim().set_mode(Simulator::Mode::kScheduled);
  driver::ReconfigModule m{"", accel::kRmIdSobel, staging,
                           static_cast<u32>(pbit.size())};
  ASSERT_TRUE(ok(drv.init_reconfig_process(m, DmaMode::kInterrupt)));
  EXPECT_EQ(soc.sim().now() - 1000, ref.final_cycle);
  EXPECT_EQ(drv.last_timing().reconfig_ticks, ref.reconfig_ticks);
  EXPECT_EQ(soc.icap().frames_committed(), ref.frames_committed);
}

}  // namespace
}  // namespace rvcap
