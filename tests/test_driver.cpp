// Driver-layer units not covered by the integration suites: timer
// consistency dance, SPI/SD driver error paths, console, and the
// Listing-1/-2 API surface details.
#include <gtest/gtest.h>

#include "driver/console.hpp"
#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/spi_sd.hpp"
#include "driver/timer.hpp"
#include "soc/ariane_soc.hpp"
#include "storage/fat32.hpp"

namespace rvcap {
namespace {

using soc::ArianeSoc;
using soc::MemoryMap;
using soc::SocConfig;

struct DriverFixture : ::testing::Test {
  DriverFixture() : soc(SocConfig{}) {}
  ArianeSoc soc;
};

TEST_F(DriverFixture, TimerTicksToMicroseconds) {
  EXPECT_DOUBLE_EQ(driver::TimerDriver::ticks_to_us(5), 1.0);
  EXPECT_DOUBLE_EQ(driver::TimerDriver::ticks_to_us(5'000'000), 1e6);
}

TEST_F(DriverFixture, TimerReadsAreMonotonic) {
  driver::TimerDriver timer(soc.cpu());
  u64 prev = timer.read_mtime();
  for (int i = 0; i < 20; ++i) {
    soc.sim().run_cycles(100);
    const u64 now = timer.read_mtime();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST_F(DriverFixture, ConsoleWritesArriveInOrder) {
  driver::uart_puts(soc.cpu(), "abc");
  driver::uart_puts(soc.cpu(), "def");
  EXPECT_EQ(soc.uart().output(), "abcdef");
  soc.uart().clear_output();
  EXPECT_TRUE(soc.uart().output().empty());
}

TEST_F(DriverFixture, SpiSdBlockIoBeforeInitFails) {
  driver::SpiSdDriver sd(soc.cpu());
  std::array<u8, storage::kBlockSize> buf{};
  EXPECT_EQ(sd.read_block(0, buf), Status::kIoError);
  EXPECT_EQ(sd.write_block(0, buf), Status::kIoError);
  EXPECT_FALSE(sd.initialized());
}

TEST_F(DriverFixture, SpiSdWrongBufferSizeRejected) {
  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  std::array<u8, 100> wrong{};
  EXPECT_EQ(sd.read_block(0, wrong), Status::kInvalidArgument);
}

TEST_F(DriverFixture, SpiSdBlockRoundtripThroughCpu) {
  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  std::array<u8, storage::kBlockSize> block{};
  for (usize i = 0; i < block.size(); ++i) block[i] = static_cast<u8>(i * 3);
  ASSERT_EQ(sd.write_block(77, block), Status::kOk);
  std::array<u8, storage::kBlockSize> back{};
  ASSERT_EQ(sd.read_block(77, back), Status::kOk);
  EXPECT_EQ(back, block);
  // And the card's backing store agrees.
  std::array<u8, storage::kBlockSize> direct{};
  soc.sd_card().backdoor_read(77, direct);
  EXPECT_EQ(direct, block);
}

TEST_F(DriverFixture, SpiTransferAccruesSimulatedTime) {
  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  std::array<u8, storage::kBlockSize> block{};
  const Cycles t0 = soc.sim().now();
  ASSERT_EQ(sd.read_block(0, block), Status::kOk);
  const Cycles dt = soc.sim().now() - t0;
  // >= 518 byte exchanges * 32 wire cycles each.
  EXPECT_GT(dt, 518u * 32u);
}

TEST_F(DriverFixture, InitRModulesMissingFileFails) {
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  storage::MemBlockIo host_io(soc.sd_card());
  ASSERT_EQ(storage::fat32_format(host_io), Status::kOk);
  driver::SpiSdDriver sd(soc.cpu());
  ASSERT_EQ(sd.init_card(), Status::kOk);
  driver::CpuBlockIo io(sd, soc.sd_card().block_count());
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  driver::ReconfigModule mods[] = {{"GHOST.PB", 1, 0, 0}};
  EXPECT_EQ(drv.init_RModules(mods, vol), Status::kNotFound);
}

TEST_F(DriverFixture, SelectLinesReflectInStatus) {
  driver::RvCapDriver drv(soc.cpu(), soc.plic());
  const Addr status = MemoryMap::kRpCtrl.base +
                      rvcap_ctrl::RpControl::kStatus;
  drv.decouple_accel(true);
  EXPECT_TRUE(soc.cpu().load32_uncached(status) &
              rvcap_ctrl::RpControl::kStDecoupled);
  drv.select_ICAP(true);
  EXPECT_TRUE(soc.cpu().load32_uncached(status) &
              rvcap_ctrl::RpControl::kStIcapSelected);
  drv.select_decompress(true);
  EXPECT_TRUE(soc.cpu().load32_uncached(status) &
              rvcap_ctrl::RpControl::kStDecompress);
  drv.select_decompress(false);
  drv.select_ICAP(false);
  drv.decouple_accel(false);
  const u32 st = soc.cpu().load32_uncached(status);
  EXPECT_FALSE(st & (rvcap_ctrl::RpControl::kStDecoupled |
                     rvcap_ctrl::RpControl::kStIcapSelected |
                     rvcap_ctrl::RpControl::kStDecompress));
}

TEST(HwIcapDriverUnit, UnrollAccessors) {
  ArianeSoc soc((SocConfig()));
  driver::HwIcapDriver drv(soc.cpu(), 16);
  EXPECT_EQ(drv.unroll(), 16u);
  drv.set_unroll(0);  // clamped to 1
  EXPECT_EQ(drv.unroll(), 1u);
  drv.set_unroll(64);
  EXPECT_EQ(drv.unroll(), 64u);
}

TEST(HwIcapDriverUnit, InitIcapResetsCore) {
  SocConfig cfg;
  cfg.with_hwicap = true;
  ArianeSoc soc(cfg);
  driver::HwIcapDriver drv(soc.cpu(), 16);
  // Push junk into the write FIFO, then init must clear it.
  soc.cpu().store32_uncached(MemoryMap::kHwicap.base + hwicap::HwIcap::kWf,
                             0x123);
  ASSERT_EQ(drv.init_icap(), Status::kOk);
  EXPECT_EQ(soc.cpu().load32_uncached(MemoryMap::kHwicap.base +
                                      hwicap::HwIcap::kWfv),
            soc.hwicap().write_fifo_depth());
}

TEST(ReconfigModuleStruct, DefaultsAreEmpty) {
  const driver::ReconfigModule m;
  EXPECT_TRUE(m.pbit_name.empty());
  EXPECT_EQ(m.rm_id, 0u);
  EXPECT_EQ(m.start_address, 0u);
  EXPECT_EQ(m.pbit_size, 0u);
}

}  // namespace
}  // namespace rvcap
