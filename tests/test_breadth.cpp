// Breadth coverage: writer multi-section streams, DMA partial beats,
// nested FAT32 directories, SPI FIFO behaviour, SD OCR, and DDR write
// strobes through bursts.
#include <gtest/gtest.h>

#include <cstring>

#include "axi/crossbar.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/writer.hpp"
#include "common/rng.hpp"
#include "fabric/pbit_layout.hpp"
#include "mem/ddr.hpp"
#include "rvcap/dma.hpp"
#include "sim/simulator.hpp"
#include "storage/fat32.hpp"
#include "storage/sd_card.hpp"
#include "storage/spi.hpp"
#include "testutil.hpp"

namespace rvcap {
namespace {

// ---------------------------------------------------------------------------
// Bitstream writer sections
// ---------------------------------------------------------------------------

TEST(WriterSections, ThreeSectionsRoundtripThroughParser) {
  bitstream::BitstreamWriter writer;
  std::vector<bitstream::BitstreamWriter::Section> secs(3);
  for (u32 s = 0; s < 3; ++s) {
    secs[s].start = fabric::FrameAddr{s, 2 + 3 * s, 0};
    secs[s].frame_words.assign((s + 1) * fabric::kFrameWords,
                               0x1000 + s);
  }
  const auto bytes =
      bitstream::BitstreamWriter::to_bytes(writer.build(secs));
  bitstream::ParsedBitstream parsed;
  ASSERT_EQ(bitstream::parse_bitstream(bytes, &parsed), Status::kOk);
  EXPECT_TRUE(parsed.crc_ok);
  ASSERT_EQ(parsed.sections.size(), 3u);
  for (u32 s = 0; s < 3; ++s) {
    EXPECT_EQ(parsed.sections[s].start, secs[s].start);
    EXPECT_EQ(parsed.sections[s].frame_count, s + 1);
  }
  // Control-word budget: fixed + 4 per range (pbit_layout contract).
  const u32 payload = (1 + 2 + 3) * fabric::kFrameWords;
  EXPECT_EQ(bytes.size() / 4,
            fabric::kPbitFixedControlWords +
                3 * fabric::kPbitWordsPerRange + payload);
}

TEST(WriterSections, EmptySectionListStillWellFormed) {
  bitstream::BitstreamWriter writer;
  const auto bytes = bitstream::BitstreamWriter::to_bytes(writer.build({}));
  bitstream::ParsedBitstream parsed;
  ASSERT_EQ(bitstream::parse_bitstream(bytes, &parsed), Status::kOk);
  EXPECT_TRUE(parsed.crc_ok);
  EXPECT_EQ(parsed.payload_words, 0u);
  EXPECT_EQ(bytes.size() / 4, fabric::kPbitFixedControlWords);
}

// ---------------------------------------------------------------------------
// DMA S2MM partial-keep beats
// ---------------------------------------------------------------------------

TEST(DmaPartialBeats, S2mmHonorsKeepStrobes) {
  sim::Simulator s;
  mem::DdrController ddr("ddr");
  rvcap_ctrl::AxiDma dma("dma");
  axi::AxiCrossbar xbar("x");
  xbar.add_manager(&dma.mem_port());
  xbar.add_subordinate(axi::AddrRange{0, 1 << 20}, &ddr.port());
  s.add(&xbar);
  s.add(&ddr);
  s.add(&dma);

  // Pre-fill the destination so untouched lanes are visible.
  ddr.poke64(0x1000, 0xEEEEEEEEEEEEEEEEULL);
  ddr.poke64(0x1008, 0xEEEEEEEEEEEEEEEEULL);

  auto wr = [&](Addr a, u32 v) {
    dma.port().aw.push(axi::LiteAw{a});
    dma.port().w.push(axi::LiteW{v, 0xF});
    ASSERT_TRUE(s.run_until([&] { return dma.port().b.can_pop(); }, 10000));
    dma.port().b.pop();
  };
  wr(rvcap_ctrl::AxiDma::kS2mmCr, rvcap_ctrl::AxiDma::kCrRunStop);
  wr(rvcap_ctrl::AxiDma::kS2mmDa, 0x1000);
  wr(rvcap_ctrl::AxiDma::kS2mmLength, 12);  // 1.5 beats

  // Beat 1: full; beat 2: low half only.
  ASSERT_TRUE(s.run_until(
      [&] { return dma.s2mm_stream().can_push(); }, 1000));
  dma.s2mm_stream().push(axi::AxisBeat{0x1111222233334444ULL, 0xFF, false});
  ASSERT_TRUE(s.run_until(
      [&] { return dma.s2mm_stream().can_push(); }, 1000));
  dma.s2mm_stream().push(axi::AxisBeat{0x00000000AAAABBBBULL, 0x0F, true});
  ASSERT_TRUE(s.run_until([&] { return dma.s2mm_idle(); }, 100000));

  EXPECT_EQ(ddr.peek64(0x1000), 0x1111222233334444ULL);
  EXPECT_EQ(ddr.peek64(0x1008), 0xEEEEEEEEAAAABBBBULL)
      << "upper lanes of the partial beat must stay untouched";
}

// ---------------------------------------------------------------------------
// FAT32 nested directories
// ---------------------------------------------------------------------------

TEST(Fat32Nested, DeepDirectoryTree) {
  storage::SdCard card(131072);
  storage::MemBlockIo io(card);
  ASSERT_EQ(storage::fat32_format(io), Status::kOk);
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);

  ASSERT_EQ(vol.make_dir("A"), Status::kOk);
  ASSERT_EQ(vol.make_dir("A/B"), Status::kOk);
  ASSERT_EQ(vol.make_dir("A/B/C"), Status::kOk);
  const u8 d[] = {1, 2, 3, 4};
  ASSERT_EQ(vol.write_file("A/B/C/DEEP.BIN", d), Status::kOk);

  std::vector<u8> back;
  ASSERT_EQ(vol.read_file("A/B/C/DEEP.BIN", back), Status::kOk);
  EXPECT_EQ(back.size(), 4u);

  // Path components must resolve as directories.
  EXPECT_EQ(vol.read_file("A/B/DEEP.BIN", back), Status::kNotFound);
  std::vector<storage::DirEntryInfo> ls;
  ASSERT_EQ(vol.list("A/B", ls), Status::kOk);
  ASSERT_EQ(ls.size(), 1u);
  EXPECT_TRUE(ls[0].is_dir);
  EXPECT_EQ(ls[0].name, "C");
}

TEST(Fat32Nested, MkdirUnderMissingParentFails) {
  storage::SdCard card(131072);
  storage::MemBlockIo io(card);
  ASSERT_EQ(storage::fat32_format(io), Status::kOk);
  storage::Fat32Volume vol(io);
  ASSERT_EQ(vol.mount(), Status::kOk);
  EXPECT_EQ(vol.make_dir("NO/SUCH"), Status::kNotFound);
  const u8 d[] = {1};
  EXPECT_EQ(vol.write_file("NO/FILE.BIN", d), Status::kNotFound);
}

// ---------------------------------------------------------------------------
// SPI controller FIFO limits, SD OCR
// ---------------------------------------------------------------------------

TEST(SpiLimits, TxFifoOverflowDropsSilently) {
  sim::Simulator s;
  storage::SdCard card(4096);
  storage::SpiController spi("spi", card, 4);
  s.add(&spi);
  // Controller disabled: nothing drains, so pushes past depth 16 drop.
  for (u32 i = 0; i < 32; ++i) {
    spi.port().aw.push(axi::LiteAw{storage::SpiController::kDtr});
    spi.port().w.push(axi::LiteW{i, 0xF});
    ASSERT_TRUE(s.run_until([&] { return spi.port().b.can_pop(); }, 1000));
    spi.port().b.pop();
  }
  spi.port().ar.push(axi::LiteAr{storage::SpiController::kSr});
  ASSERT_TRUE(s.run_until([&] { return spi.port().r.can_pop(); }, 1000));
  EXPECT_TRUE(spi.port().r.pop()->data & storage::SpiController::kSrTxFull);
}

TEST(SdOcr, Cmd58ReportsBlockAddressing) {
  storage::SdCard card(4096);
  auto cmd = [&](u8 c, u32 arg) {
    std::array<u8, 6> f{static_cast<u8>(0x40 | c), static_cast<u8>(arg >> 24),
                        static_cast<u8>(arg >> 16), static_cast<u8>(arg >> 8),
                        static_cast<u8>(arg), 0};
    f[5] = static_cast<u8>((storage::SdCard::crc7({f.data(), 5}) << 1) | 1);
    for (u8 b : f) card.exchange(b, true);
    u8 r = 0xFF;
    for (int i = 0; i < 10 && r == 0xFF; ++i) r = card.exchange(0xFF, true);
    return r;
  };
  cmd(0, 0);
  cmd(55, 0);
  cmd(41, 0x40000000);
  cmd(55, 0);
  cmd(41, 0x40000000);
  ASSERT_TRUE(card.initialized());
  EXPECT_EQ(cmd(58, 0), 0x00);
  const u8 ocr0 = card.exchange(0xFF, true);
  EXPECT_TRUE(ocr0 & 0x40) << "CCS bit: SDHC block addressing";
}

// ---------------------------------------------------------------------------
// DDR strobed burst writes
// ---------------------------------------------------------------------------

TEST(DdrStrobes, PartialStrobesInsideBurst) {
  sim::Simulator s;
  mem::DdrController ddr("ddr");
  s.add(&ddr);
  ddr.poke64(0x0, 0xFFFFFFFFFFFFFFFFULL);
  ddr.poke64(0x8, 0xFFFFFFFFFFFFFFFFULL);

  ddr.port().aw.push(axi::AxiAw{0x0, 1, 3});
  ddr.port().w.push(axi::AxiW{0x00000000000000AAULL, 0x01, false});
  ddr.port().w.push(axi::AxiW{0xBB00000000000000ULL, 0x80, true});
  ASSERT_TRUE(s.run_until([&] { return ddr.port().b.can_pop(); }, 1000));
  ddr.port().b.pop();

  EXPECT_EQ(ddr.peek64(0x0), 0xFFFFFFFFFFFFFFAAULL);
  EXPECT_EQ(ddr.peek64(0x8), 0xBBFFFFFFFFFFFFFFULL);
}

}  // namespace
}  // namespace rvcap
