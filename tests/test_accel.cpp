// Golden filters, streaming RM models, and the RM slot.
#include <gtest/gtest.h>

#include <numeric>

#include "accel/rm_slot.hpp"
#include "accel/stream_filter.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace rvcap {
namespace {

using accel::apply_golden;
using accel::FilterKind;
using accel::Image;
using accel::make_test_image;
using accel::StreamFilter;

TEST(GoldenFilters, TestImageIsDeterministic) {
  const Image a = make_test_image(64, 64, 5);
  const Image b = make_test_image(64, 64, 5);
  const Image c = make_test_image(64, 64, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(GoldenFilters, SobelOfConstantImageIsZero) {
  Image flat{16, 16, std::vector<u8>(256, 77)};
  const Image out = apply_golden(FilterKind::kSobel, flat);
  for (u8 p : out.pixels) EXPECT_EQ(p, 0);
}

TEST(GoldenFilters, MedianAndGaussianPreserveConstantImage) {
  Image flat{16, 16, std::vector<u8>(256, 123)};
  EXPECT_EQ(apply_golden(FilterKind::kMedian, flat).pixels, flat.pixels);
  EXPECT_EQ(apply_golden(FilterKind::kGaussian, flat).pixels, flat.pixels);
}

TEST(GoldenFilters, SobelDetectsVerticalEdge) {
  Image img{16, 16, std::vector<u8>(256, 0)};
  for (u32 y = 0; y < 16; ++y) {
    for (u32 x = 8; x < 16; ++x) img.pixels[y * 16 + x] = 200;
  }
  const Image out = apply_golden(FilterKind::kSobel, img);
  // Strong response at the edge columns, zero far from it.
  EXPECT_GT(out.at(8, 8), 200);
  EXPECT_EQ(out.at(2, 8), 0);
  EXPECT_EQ(out.at(14, 8), 0);
}

TEST(GoldenFilters, MedianRemovesSaltNoise) {
  Image img{16, 16, std::vector<u8>(256, 50)};
  img.pixels[8 * 16 + 8] = 255;  // single salt pixel
  const Image out = apply_golden(FilterKind::kMedian, img);
  EXPECT_EQ(out.at(8, 8), 50);
}

TEST(GoldenFilters, GaussianReducesVariance) {
  const Image img = make_test_image(64, 64, 11);
  const Image out = apply_golden(FilterKind::kGaussian, img);
  auto variance = [](const Image& im) {
    const double mean =
        std::accumulate(im.pixels.begin(), im.pixels.end(), 0.0) /
        im.pixels.size();
    double v = 0;
    for (u8 p : im.pixels) v += (p - mean) * (p - mean);
    return v / im.pixels.size();
  };
  EXPECT_LT(variance(out), variance(img));
}

TEST(GoldenFilters, GaussianKernelNormalization) {
  // An impulse of 16 spreads exactly the kernel weights (rounded).
  Image img{8, 8, std::vector<u8>(64, 0)};
  img.pixels[3 * 8 + 3] = 160;
  const Image out = apply_golden(FilterKind::kGaussian, img);
  EXPECT_EQ(out.at(3, 3), 40u);  // 4/16 * 160
  EXPECT_EQ(out.at(2, 3), 20u);  // 2/16 * 160
  EXPECT_EQ(out.at(2, 2), 10u);  // 1/16 * 160
}

// ---------------------------------------------------------------------------
// Streaming filter model vs golden
// ---------------------------------------------------------------------------

struct StreamHarness {
  explicit StreamHarness(const accel::StreamFilterParams& p)
      : filter(p), in(8), out(8) {}

  /// Push a whole image through the stream interface; returns output.
  std::vector<u8> run(const Image& img, u32 width, u32 height,
                      Cycles* cycles = nullptr) {
    filter.reg_write(0, width);
    filter.reg_write(1, height);
    const usize total = usize{width} * height;
    std::vector<u8> result;
    usize fed = 0;
    sim::Simulator s;
    const Cycles t0 = s.now();
    while (result.size() < total) {
      if (fed < total && in.can_push()) {
        u64 data = 0;
        for (u32 i = 0; i < 8; ++i) {
          data |= u64{img.pixels[fed + i]} << (8 * i);
        }
        in.push(axi::AxisBeat{data, 0xFF, fed + 8 == total});
        fed += 8;
      }
      filter.tick(in, out);
      s.step();
      while (out.can_pop()) {
        const axi::AxisBeat b = *out.pop();
        for (u32 i = 0; i < 8; ++i) {
          result.push_back(static_cast<u8>(b.data >> (8 * i)));
        }
        if (b.last) {
          EXPECT_EQ(result.size(), total);
        }
      }
      if (s.now() > 100'000'000) ADD_FAILURE() << "stream stall";
    }
    if (cycles != nullptr) *cycles = s.now() - t0;
    return result;
  }

  StreamFilter filter;
  axi::AxisFifo in;
  axi::AxisFifo out;
};

class StreamVsGolden
    : public ::testing::TestWithParam<std::tuple<FilterKind, u32, u32>> {};

TEST_P(StreamVsGolden, BitExactAcrossSizes) {
  const auto [kind, w, h] = GetParam();
  accel::StreamFilterParams p;
  p.kind = kind;
  p.default_width = w;
  p.default_height = h;
  p.cycles_per_row = w / 8;  // unpaced: functional check only
  p.startup_latency = 4;
  StreamHarness harness(p);
  const Image img = make_test_image(w, h, 42 + w + h);
  const auto result = harness.run(img, w, h);
  const Image golden = apply_golden(kind, img);
  EXPECT_EQ(result, golden.pixels);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKinds, StreamVsGolden,
    ::testing::Combine(::testing::Values(FilterKind::kSobel,
                                         FilterKind::kMedian,
                                         FilterKind::kGaussian),
                       ::testing::Values(16u, 64u, 128u),
                       ::testing::Values(8u, 33u, 64u)));

TEST(StreamFilterTiming, CalibratedSobelMatchesTableIV) {
  StreamHarness harness(accel::sobel_params());
  const Image img = make_test_image(512, 512, 3);
  Cycles cycles = 0;
  const auto result = harness.run(img, 512, 512, &cycles);
  EXPECT_EQ(result, apply_golden(FilterKind::kSobel, img).pixels);
  // Core-level time excludes DMA/driver overhead: slightly below the
  // 588 us Table IV reports for the full measured path.
  EXPECT_NEAR(cycles_to_us(cycles), 585.0, 10.0);
}

TEST(StreamFilterTiming, FilterOrderingMatchesTableIV) {
  const Image img = make_test_image(512, 512, 4);
  Cycles t_sobel = 0, t_median = 0, t_gauss = 0;
  StreamHarness(accel::sobel_params()).run(img, 512, 512, &t_sobel);
  StreamHarness(accel::median_params()).run(img, 512, 512, &t_median);
  StreamHarness(accel::gaussian_params()).run(img, 512, 512, &t_gauss);
  EXPECT_LT(t_sobel, t_median);
  EXPECT_LT(t_median, t_gauss);
}

TEST(StreamFilterTiming, BackToBackFramesWithoutReconfig) {
  StreamHarness harness(accel::sobel_params());
  const Image a = make_test_image(64, 64, 1);
  const Image b = make_test_image(64, 64, 2);
  const auto ra = harness.run(a, 64, 64);
  const auto rb = harness.run(b, 64, 64);
  EXPECT_EQ(ra, apply_golden(FilterKind::kSobel, a).pixels);
  EXPECT_EQ(rb, apply_golden(FilterKind::kSobel, b).pixels);
  EXPECT_EQ(harness.filter.frames_completed(), 2u);
}

TEST(StreamFilterRegs, GeometryLockedMidFrame) {
  accel::StreamFilterParams p = accel::sobel_params();
  p.default_width = 64;
  p.default_height = 16;
  StreamFilter f(p);
  axi::AxisFifo in(8), out(8);
  // Feed one full row so a frame is in flight.
  for (int i = 0; i < 8; ++i) in.push(axi::AxisBeat{0, 0xFF, false});
  for (int i = 0; i < 16; ++i) f.tick(in, out);
  f.reg_write(0, 128);  // must be ignored mid-frame
  EXPECT_EQ(f.reg_read(0), 64u);
  f.reg_write(0, 60);  // and non-beat-multiples are always rejected
  EXPECT_EQ(f.reg_read(0), 64u);
}

// ---------------------------------------------------------------------------
// RM slot
// ---------------------------------------------------------------------------

struct SlotFixture : ::testing::Test {
  SlotFixture()
      : dev(fabric::DeviceGeometry::kintex7_325t()),
        rp(fabric::case_study_partition(dev)),
        cfg(dev),
        in(4),
        slot_in(4) {
    handle = cfg.register_partition(rp);
    slot = std::make_unique<accel::RmSlot>("slot", cfg, handle, slot_in);
    accel::register_case_study_filters(*slot);
    s.add(slot.get());
  }

  void load(u32 rm_id) {
    cfg.notify_rcrc();
    const auto addrs = rp.frame_addrs(dev);
    std::vector<u32> frame(fabric::kFrameWords, 0);
    fabric::RmManifest{rm_id, static_cast<u32>(addrs.size())}.encode(
        std::span(frame).subspan(0, 4));
    cfg.write_frame(addrs[0], frame);
    std::vector<u32> plain(fabric::kFrameWords, 1);
    for (usize i = 1; i < addrs.size(); ++i) cfg.write_frame(addrs[i], plain);
  }

  fabric::DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory cfg;
  axi::AxisFifo in;
  axi::AxisFifo slot_in;
  std::unique_ptr<accel::RmSlot> slot;
  sim::Simulator s;
  usize handle = 0;
};

TEST_F(SlotFixture, ActivatesRegisteredModule) {
  EXPECT_EQ(slot->active_rm(), 0u);
  load(accel::kRmIdMedian);
  s.run_cycles(2);
  EXPECT_EQ(slot->active_rm(), accel::kRmIdMedian);
  EXPECT_EQ(slot->rm_reg_read(3), static_cast<u32>(FilterKind::kMedian));
}

TEST_F(SlotFixture, SwapReplacesBehaviorFresh) {
  load(accel::kRmIdSobel);
  s.run_cycles(2);
  slot->rm_reg_write(0, 64);
  EXPECT_EQ(slot->rm_reg_read(0), 64u);
  load(accel::kRmIdSobel);  // reload same module
  s.run_cycles(2);
  // Fresh logic: configuration wiped the register back to its default.
  EXPECT_EQ(slot->rm_reg_read(0), 512u);
  EXPECT_EQ(slot->activations(), 2u);
}

TEST_F(SlotFixture, UnknownRmIdStaysInactive) {
  ScopedLogLevel quiet(LogLevel::kError);
  load(250);
  s.run_cycles(4);
  EXPECT_EQ(slot->active_rm(), 0u);
}

TEST_F(SlotFixture, InvalidationDeactivates) {
  load(accel::kRmIdGaussian);
  s.run_cycles(2);
  ASSERT_EQ(slot->active_rm(), accel::kRmIdGaussian);
  // Stray frame write wrecks the partition.
  cfg.write_frame(rp.frame_addrs(dev)[5],
                  std::vector<u32>(fabric::kFrameWords, 9));
  s.run_cycles(2);
  EXPECT_EQ(slot->active_rm(), 0u);
  EXPECT_EQ(slot->rm_reg_read(3), 0u);
}

TEST_F(SlotFixture, UnconfiguredSlotSinksBeats) {
  slot_in.push(axi::AxisBeat{0x1234});
  s.run_cycles(3);
  EXPECT_TRUE(slot_in.empty());
  EXPECT_TRUE(slot->out().empty());
}

TEST(RmIdMapping, RoundTrips) {
  for (FilterKind k : {FilterKind::kSobel, FilterKind::kMedian,
                       FilterKind::kGaussian}) {
    EXPECT_EQ(accel::rm_id_to_kind(accel::kind_to_rm_id(k)), k);
  }
  EXPECT_THROW(accel::rm_id_to_kind(99), std::invalid_argument);
}

}  // namespace
}  // namespace rvcap
