// ICAP fuzzing: arbitrary word streams must never activate a partition,
// corrupt tracker state, or wedge the primitive.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "common/bytes.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "icap/icap.hpp"
#include "sim/simulator.hpp"

namespace rvcap {
namespace {

struct FuzzRig {
  FuzzRig()
      : dev(fabric::DeviceGeometry::kintex7_325t()),
        rp(fabric::case_study_partition(dev)),
        cfg(dev),
        icap("icap", cfg) {
    handle = cfg.register_partition(rp);
    s.add(&icap);
  }

  void feed(std::span<const u32> words) {
    usize i = 0;
    while (i < words.size()) {
      if (icap.port().push(words[i])) ++i;
      s.step();
      // Drain any readback data a fuzzed FDRO request produced.
      while (icap.read_port().can_pop()) icap.read_port().pop();
    }
    s.run_until(
        [&] {
          while (icap.read_port().can_pop()) icap.read_port().pop();
          return !icap.busy();
        },
        10'000'000);
  }

  fabric::DeviceGeometry dev;
  fabric::Partition rp;
  fabric::ConfigMemory cfg;
  icap::Icap icap;
  sim::Simulator s;
  usize handle = 0;
};

class IcapFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(IcapFuzz, RandomWordsNeverActivateModules) {
  ScopedLogLevel quiet(LogLevel::kOff);
  FuzzRig rig;
  SplitMix64 rng(GetParam());
  std::vector<u32> words(20'000);
  for (auto& w : words) {
    // Mix of pure noise and "almost valid" material: sync words,
    // packet headers, command writes.
    switch (rng.next_below(5)) {
      case 0: w = bitstream::kSyncWord; break;
      case 1: w = bitstream::kNop; break;
      case 2:
        w = bitstream::type1(bitstream::PacketOp::kWrite,
                             static_cast<bitstream::ConfigReg>(
                                 rng.next_below(16)),
                             static_cast<u32>(rng.next_below(8)));
        break;
      default: w = static_cast<u32>(rng.next()); break;
    }
  }
  rig.feed(words);
  EXPECT_FALSE(rig.cfg.partition_state(rig.handle).loaded)
      << "noise must never produce a validly-activated module";
  EXPECT_EQ(rig.icap.words_consumed(), words.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcapFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

class BitstreamBitflipFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(BitstreamBitflipFuzz, SingleBitflipNeverFalselyActivates) {
  ScopedLogLevel quiet(LogLevel::kOff);
  FuzzRig rig;
  SplitMix64 rng(GetParam());
  // Small partition bitstream for speed.
  const fabric::Partition small("small", {{0, 2}});
  const usize h = rig.cfg.register_partition(small);
  auto pbit =
      bitstream::generate_partial_bitstream(rig.dev, small, {5, "x"});
  // Flip one random bit.
  const usize byte = rng.next_below(pbit.size());
  pbit[byte] ^= static_cast<u8>(1u << rng.next_below(8));

  std::vector<u32> words(pbit.size() / 4);
  for (usize i = 0; i < words.size(); ++i) {
    words[i] = load_be32(std::span<const u8>(pbit).subspan(i * 4, 4));
  }
  rig.feed(words);

  // Either the stream survives structurally (flip in padding/dummy
  // words, or in payload where the CRC catches it) or it doesn't —
  // but a load may only be reported with a clean CRC.
  const auto st = rig.cfg.partition_state(h);
  if (st.loaded) {
    EXPECT_FALSE(rig.icap.crc_error())
        << "activation with a failed CRC is forbidden";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamBitflipFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace rvcap
