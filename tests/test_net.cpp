// Fault-tolerant networked bitstream delivery (DESIGN.md §12).
//
// Covers the acquisition path end to end: the shared RetrySchedule
// discipline, the lossy NetLink + BitstreamServer plant, the chunked
// NetFetcher (CRC-per-chunk, timeout/retry/backoff, resume, circuit
// breaker), the integrity-verified BitstreamCache, the
// BitstreamDelivery degradation chain (cache -> net -> SD fallback),
// and the full DprManager stack staging remote modules over a lossy
// link — including same-seed determinism across both simulation
// kernels, the property that makes network fault schedules replayable.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitstream/generator.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "driver/bitstream_source.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/spi_sd.hpp"
#include "net/net_fetcher.hpp"
#include "sim/fault_injector.hpp"
#include "soc/ariane_soc.hpp"
#include "soc/memory_map.hpp"
#include "soc/service_regs.hpp"
#include "storage/fat32.hpp"
#include "storage/sd_card.hpp"

namespace rvcap {
namespace {

using driver::BitstreamCache;
using driver::BitstreamDelivery;
using driver::DeliveryPath;
using driver::DprManager;
using driver::NetBitstreamSource;
using driver::SdBitstreamSource;
using net::NetFetcher;
using sim::FaultInjector;
using sim::Simulator;
using soc::ArianeSoc;
using soc::MemoryMap;
using soc::ServiceRegs;
using soc::SocConfig;
namespace sites = sim::fault_sites;

// ---------------------------------------------------------------------
// RetrySchedule: the shared bounded-retry discipline
// ---------------------------------------------------------------------

TEST(RetrySchedule, BudgetsAttemptsAndFirstAttemptIsFree) {
  RetrySchedule sched(RetryPolicy{3, 1000, 0, 0});
  ASSERT_TRUE(sched.next());
  EXPECT_EQ(sched.attempt(), 1u);
  EXPECT_EQ(sched.delay(), 0u);  // no wait before the first try
  EXPECT_EQ(sched.retries(), 0u);
  ASSERT_TRUE(sched.next());
  ASSERT_TRUE(sched.next());
  EXPECT_EQ(sched.retries(), 2u);
  EXPECT_TRUE(sched.exhausted());
  EXPECT_FALSE(sched.next());
}

TEST(RetrySchedule, ZeroAttemptsNeverRuns) {
  RetrySchedule sched(RetryPolicy{0, 0, 0, 0});
  EXPECT_FALSE(sched.next());
}

TEST(RetrySchedule, ExponentialBackoffIsCapped) {
  RetrySchedule sched(RetryPolicy{5, 1000, 4000, 0});
  std::vector<u64> delays;
  while (sched.next()) delays.push_back(sched.delay());
  EXPECT_EQ(delays, (std::vector<u64>{0, 1000, 2000, 4000, 4000}));
}

TEST(RetrySchedule, ZeroBaseKeepsTightLoop) {
  RetrySchedule sched(RetryPolicy{4, 0, 0, 500});
  while (sched.next()) EXPECT_EQ(sched.delay(), 0u);
}

TEST(RetrySchedule, JitterIsSeedDeterministicAndBounded) {
  const RetryPolicy p{6, 1000, 0, 500};
  RetrySchedule a(p, 7), b(p, 7), c(p, 8);
  bool diverged = false;
  while (a.next()) {
    ASSERT_TRUE(b.next());
    ASSERT_TRUE(c.next());
    EXPECT_EQ(a.delay(), b.delay());
    if (a.delay() != c.delay()) diverged = true;
    if (a.attempt() >= 2) {
      const u64 base = u64{1000} << (a.attempt() - 2);
      EXPECT_GE(a.delay(), base);
      EXPECT_LE(a.delay(), base + base / 2);  // jitter <= 500 permille
    }
  }
  EXPECT_TRUE(diverged);  // a different seed draws different jitter
}

// ---------------------------------------------------------------------
// World: SoC with the network plant + a driver-side fetcher
// ---------------------------------------------------------------------

std::vector<u8> make_image(usize bytes, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u8> v(bytes);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

struct NetWorld {
  explicit NetWorld(Simulator::Mode mode = Simulator::Mode::kScheduled,
                    u64 fault_seed = 0x5EED,
                    NetFetcher::Config fcfg = NetFetcher::Config{})
      : soc(make_config(mode)),
        fi(fault_seed),
        fetcher(soc.cpu(), soc.net_link(), fcfg) {
    soc.attach_fault_injector(&fi);
  }

  static SocConfig make_config(Simulator::Mode mode) {
    SocConfig cfg;
    cfg.sim_mode = mode;
    cfg.with_net = true;
    return cfg;
  }

  std::vector<u8> publish(const char* name, usize bytes, u64 seed) {
    auto img = make_image(bytes, seed);
    soc.net_server().add_image(name, img);
    return img;
  }

  std::vector<u8> read_ddr(Addr a, usize n) {
    std::vector<u8> v(n);
    soc.cpu().read_buffer(a, v);
    return v;
  }

  ArianeSoc soc;
  FaultInjector fi;
  NetFetcher fetcher;
};

constexpr Addr kDest = 0x8A00'0000;

// ---------------------------------------------------------------------
// NetFetcher over a clean and a lossy link
// ---------------------------------------------------------------------

TEST(NetFetcher, CleanFetchDeliversExactImage) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 10'000, 1);  // 10 chunks, odd tail
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(bytes, 10'000u);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_EQ(w.fetcher.fetches_ok(), 1u);
  EXPECT_EQ(w.fetcher.chunk_retries(), 0u);
  EXPECT_EQ(w.soc.net_server().served(), 10u);
  EXPECT_EQ(w.soc.net_link().delivered(), 20u);  // 10 RRQs + 10 data
}

TEST(NetFetcher, UnknownImageFailsFastWithoutRetry) {
  NetWorld w;
  u32 bytes = 0;
  EXPECT_EQ(w.fetcher.fetch("no-such.pbit", kDest, 1 << 20, &bytes),
            Status::kNotFound);
  EXPECT_EQ(bytes, 0u);
  // A definitive server error must not burn the retry budget.
  EXPECT_EQ(w.fetcher.chunk_retries(), 0u);
  EXPECT_EQ(w.soc.net_server().errors(), 1u);
}

TEST(NetFetcher, OversizedImageIsRefusedBeforeDdr) {
  NetWorld w;
  w.publish("big.pbit", 10'000, 2);
  u32 bytes = 0;
  EXPECT_EQ(w.fetcher.fetch("big.pbit", kDest, 4096, &bytes),
            Status::kNoSpace);
  EXPECT_EQ(w.fetcher.fetches_ok(), 0u);
}

TEST(NetFetcher, DroppedFramesAreRetriedToCompletion) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 10'000, 3);
  w.fi.arm(sites::kNetDrop, /*count=*/3);  // eat the first three frames
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_EQ(w.soc.net_link().dropped(), 3u);
  EXPECT_EQ(w.fetcher.chunk_timeouts(), 3u);
  EXPECT_EQ(w.fetcher.chunk_retries(), 3u);
}

TEST(NetFetcher, CorruptedChunksAreRejectedByCrcAndRefetched) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 10'000, 4);
  w.fi.arm(sites::kNetCorrupt, /*count=*/2);
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  // Corruption never reaches DDR: the refetched copies are golden.
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_EQ(w.soc.net_link().corrupted(), 2u);
  EXPECT_EQ(w.fetcher.chunk_crc_errors(), 2u);
}

TEST(NetFetcher, DuplicatesAndReordersAreAbsorbed) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 20'000, 5);
  w.fi.arm(sites::kNetDup, 0, 0.3);
  w.fi.arm(sites::kNetReorder, 0, 0.3);
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_GT(w.soc.net_link().duplicated(), 0u);
}

TEST(NetFetcher, ServerStallLooksLikeTimeoutAndIsRetried) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 5'000, 6);
  w.fi.arm(sites::kNetServerStall, /*count=*/1);
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_EQ(w.soc.net_server().stalled(), 1u);
  EXPECT_GE(w.fetcher.chunk_timeouts(), 1u);
}

// A fetcher tuned for fast failure tests: short timeouts, two attempts,
// a two-failure breaker with a short cooldown.
NetFetcher::Config fast_fail_config() {
  NetFetcher::Config cfg;
  cfg.response_timeout = 2'000;
  cfg.retry = RetryPolicy{2, 500, 2'000, 0};
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 20'000;
  return cfg;
}

TEST(NetFetcher, LinkOutageTimesOutThenBreakerFailsFast) {
  NetWorld w(Simulator::Mode::kScheduled, 0x5EED, fast_fail_config());
  const auto img = w.publish("sobel.pbit", 5'000, 7);
  w.soc.net_link().set_down(true);

  u32 bytes = 0;
  EXPECT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kTimeout);
  EXPECT_FALSE(w.fetcher.breaker_open());
  EXPECT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kTimeout);
  EXPECT_TRUE(w.fetcher.breaker_open());
  EXPECT_EQ(w.fetcher.breaker_trips(), 1u);

  // Open breaker: instant kUnavailable, not a single frame on the wire.
  const u64 accepted = w.soc.net_link().accepted();
  EXPECT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kUnavailable);
  EXPECT_EQ(w.fetcher.breaker_fast_fails(), 1u);
  EXPECT_EQ(w.soc.net_link().accepted(), accepted);

  // Cooldown elapses with the link back up: the half-open probe
  // succeeds and closes the breaker.
  w.soc.net_link().set_down(false);
  w.soc.sim().run_cycles(fast_fail_config().breaker_cooldown);
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_FALSE(w.fetcher.breaker_open());
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
}

TEST(NetFetcher, InterruptedTransferResumesFromHighWaterChunk) {
  NetFetcher::Config cfg;
  cfg.response_timeout = 3'000;
  cfg.retry = RetryPolicy{2, 0, 0, 0};
  NetWorld w(Simulator::Mode::kScheduled, 0x5EED, cfg);
  const auto img = w.publish("sobel.pbit", 10'000, 8);

  // Let chunks 0..4 through (10 frames: RRQ + data each), then eat
  // everything — the transfer dies at chunk 5.
  w.fi.arm(sites::kNetDrop, FaultInjector::Plan{0, 1.0, 10});
  u32 bytes = 0;
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kTimeout);
  EXPECT_EQ(w.fetcher.fetches_failed(), 1u);

  // Link heals; the refetch continues at chunk 5 instead of restarting.
  w.fi.disarm(sites::kNetDrop);
  const u64 served_before = w.soc.net_server().served();
  ASSERT_EQ(w.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(w.fetcher.resumed_transfers(), 1u);
  EXPECT_EQ(w.soc.net_server().served() - served_before, 5u);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
}

// ---------------------------------------------------------------------
// Same seed, both kernels: identical damage schedule, identical run
// ---------------------------------------------------------------------

TEST(NetKernelEquivalence, LossyFetchIsBitIdenticalAcrossKernels) {
  NetWorld flat(Simulator::Mode::kFlat);
  NetWorld sched(Simulator::Mode::kScheduled);
  const auto img_f = flat.publish("sobel.pbit", 20'000, 9);
  const auto img_s = sched.publish("sobel.pbit", 20'000, 9);
  for (NetWorld* w : {&flat, &sched}) {
    w->fi.arm(sites::kNetDrop, 0, 0.05);
    w->fi.arm(sites::kNetCorrupt, 0, 0.01);
  }
  u32 bf = 0, bs = 0;
  ASSERT_EQ(flat.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bf),
            Status::kOk);
  ASSERT_EQ(sched.fetcher.fetch("sobel.pbit", kDest, 1 << 20, &bs),
            Status::kOk);
  // Identical cycle count, identical damage schedule, identical
  // recovery work — or a component broke the activity contract.
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  EXPECT_EQ(flat.soc.net_link().dropped(), sched.soc.net_link().dropped());
  EXPECT_EQ(flat.soc.net_link().corrupted(),
            sched.soc.net_link().corrupted());
  EXPECT_EQ(flat.soc.net_link().delivered(),
            sched.soc.net_link().delivered());
  EXPECT_EQ(flat.fetcher.chunk_retries(), sched.fetcher.chunk_retries());
  EXPECT_EQ(flat.fetcher.chunk_timeouts(), sched.fetcher.chunk_timeouts());
  EXPECT_EQ(flat.fetcher.chunk_crc_errors(),
            sched.fetcher.chunk_crc_errors());
  EXPECT_EQ(flat.fi.total_fires(), sched.fi.total_fires());
  EXPECT_EQ(bf, bs);
  EXPECT_EQ(flat.read_ddr(kDest, img_f.size()), img_f);
  EXPECT_EQ(sched.read_ddr(kDest, img_s.size()), img_s);
}

// ---------------------------------------------------------------------
// BitstreamCache: verified hits, poison, LRU
// ---------------------------------------------------------------------

BitstreamCache::Config small_cache() {
  BitstreamCache::Config cfg;
  cfg.base = 0x8C00'0000;
  cfg.slot_bytes = 64 * 1024;
  cfg.slots = 2;
  return cfg;
}

TEST(BitstreamCache, HitVerifiesDigestAndCopiesBytes) {
  ArianeSoc soc;
  BitstreamCache cache(soc.cpu(), small_cache());
  const auto img = make_image(10'000, 10);
  soc.ddr().poke(kDest, img);
  cache.insert("a", kDest, static_cast<u32>(img.size()));

  u32 bytes = 0;
  ASSERT_TRUE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_EQ(bytes, 10'000u);
  std::vector<u8> out(img.size());
  soc.cpu().read_buffer(0x8B00'0000, out);
  EXPECT_EQ(out, img);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.lookup("b", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BitstreamCache, PoisonedEntryIsEvictedNeverServed) {
  ArianeSoc soc;
  const auto cfg = small_cache();
  BitstreamCache cache(soc.cpu(), cfg);
  const auto img = make_image(10'000, 11);
  soc.ddr().poke(kDest, img);
  cache.insert("a", kDest, static_cast<u32>(img.size()));

  // A DDR upset lands in the cached copy.
  const u8 flipped = static_cast<u8>(img[100] ^ 0x40);
  soc.ddr().poke(cfg.base + 100, std::span<const u8>(&flipped, 1));

  u32 bytes = 0;
  EXPECT_FALSE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_EQ(cache.poisoned(), 1u);
  // The entry is gone, not retried: the next lookup is a plain miss.
  EXPECT_FALSE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_EQ(cache.poisoned(), 1u);
  // Reinserting a good copy works again.
  cache.insert("a", kDest, static_cast<u32>(img.size()));
  EXPECT_TRUE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));
}

TEST(BitstreamCache, LruEvictionPrefersStaleEntries) {
  ArianeSoc soc;
  BitstreamCache cache(soc.cpu(), small_cache());  // two slots
  const auto a = make_image(4'000, 12);
  const auto b = make_image(4'000, 13);
  const auto c = make_image(4'000, 14);
  soc.ddr().poke(0x8A00'0000, a);
  soc.ddr().poke(0x8A10'0000, b);
  soc.ddr().poke(0x8A20'0000, c);
  cache.insert("a", 0x8A00'0000, 4'000);
  cache.insert("b", 0x8A10'0000, 4'000);
  u32 bytes = 0;
  ASSERT_TRUE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));  // a is MRU
  cache.insert("c", 0x8A20'0000, 4'000);  // evicts b, the LRU entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup("a", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_TRUE(cache.lookup("c", 0x8B00'0000, 1 << 20, &bytes));
  EXPECT_FALSE(cache.lookup("b", 0x8B00'0000, 1 << 20, &bytes));
}

// ---------------------------------------------------------------------
// BitstreamDelivery: cache -> net -> SD fallback degradation chain
// ---------------------------------------------------------------------

TEST(BitstreamDelivery, NetFetchesArePromotedToCacheHits) {
  NetWorld w;
  const auto img = w.publish("sobel.pbit", 10'000, 15);
  NetBitstreamSource net_src(w.fetcher);
  BitstreamCache cache(w.soc.cpu(), small_cache());
  BitstreamDelivery delivery(w.soc.cpu());
  delivery.set_primary(&net_src);
  delivery.attach_cache(&cache);
  delivery.set_net_stats(&w.fetcher);

  u32 bytes = 0;
  ASSERT_EQ(delivery.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  ASSERT_EQ(delivery.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(delivery.net_deliveries(), 1u);
  EXPECT_EQ(delivery.cache_hits(), 1u);
  EXPECT_EQ(w.fetcher.fetches_ok(), 1u);  // second hit never hit the wire
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);

  const auto journal = delivery.journal();
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal[0].path, DeliveryPath::kNet);
  EXPECT_EQ(journal[1].path, DeliveryPath::kCache);
}

/// SD volume (host-formatted, CPU-mounted) holding one image file.
struct SdRig {
  SdRig(ArianeSoc& soc, const char* path, std::span<const u8> img)
      : host_io(soc.sd_card()) {
    EXPECT_EQ(storage::fat32_format(host_io), Status::kOk);
    storage::Fat32Volume host_vol(host_io);
    EXPECT_EQ(host_vol.mount(), Status::kOk);
    EXPECT_EQ(host_vol.write_file(path, img), Status::kOk);
    sd = std::make_unique<driver::SpiSdDriver>(soc.cpu());
    EXPECT_EQ(sd->init_card(), Status::kOk);
    io = std::make_unique<driver::CpuBlockIo>(*sd,
                                              soc.sd_card().block_count());
    vol = std::make_unique<storage::Fat32Volume>(*io);
    EXPECT_EQ(vol->mount(), Status::kOk);
  }

  storage::MemBlockIo host_io;
  std::unique_ptr<driver::SpiSdDriver> sd;
  std::unique_ptr<driver::CpuBlockIo> io;
  std::unique_ptr<storage::Fat32Volume> vol;
};

TEST(BitstreamDelivery, LinkOutageFallsBackToSdAndJournalsIt) {
  NetWorld w(Simulator::Mode::kScheduled, 0x5EED, fast_fail_config());
  const auto img = w.publish("SOBEL.PB", 10'000, 16);
  SdRig rig(w.soc, "SOBEL.PB", img);

  NetBitstreamSource net_src(w.fetcher);
  SdBitstreamSource sd_src(w.soc.cpu(), *rig.vol);
  BitstreamDelivery delivery(w.soc.cpu());
  delivery.set_primary(&net_src);
  delivery.set_fallback(&sd_src);
  delivery.set_net_stats(&w.fetcher);
  delivery.set_mailbox(MemoryMap::kServiceRegs.base);

  w.soc.net_link().set_down(true);
  u32 bytes = 0;
  ASSERT_EQ(delivery.fetch("SOBEL.PB", kDest, 1 << 20, &bytes),
            Status::kOk);
  EXPECT_EQ(bytes, 10'000u);
  EXPECT_EQ(w.read_ddr(kDest, img.size()), img);
  EXPECT_EQ(delivery.sd_fallbacks(), 1u);
  EXPECT_EQ(delivery.failures(), 0u);

  const auto journal = delivery.journal();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].path, DeliveryPath::kSdFallback);
  EXPECT_EQ(journal[0].status, Status::kOk);

  // The degradation is visible to software through the ServiceRegs
  // net telemetry block.
  auto reg = [&](Addr off) {
    return w.soc.cpu().load32_uncached(MemoryMap::kServiceRegs.base + off);
  };
  EXPECT_EQ(reg(ServiceRegs::kNetSdFallbacks), 1u);
  EXPECT_EQ(reg(ServiceRegs::kNetDeliveryFails), 0u);
  EXPECT_EQ(reg(ServiceRegs::kNetFetchFails), 1u);
}

TEST(BitstreamDelivery, TotalOutageWithoutFallbackFailsCleanly) {
  NetWorld w(Simulator::Mode::kScheduled, 0x5EED, fast_fail_config());
  w.publish("sobel.pbit", 10'000, 17);
  NetBitstreamSource net_src(w.fetcher);
  BitstreamDelivery delivery(w.soc.cpu());
  delivery.set_primary(&net_src);
  delivery.set_net_stats(&w.fetcher);
  delivery.set_mailbox(MemoryMap::kServiceRegs.base);

  w.soc.net_link().set_down(true);
  u32 bytes = 0;
  EXPECT_EQ(delivery.fetch("sobel.pbit", kDest, 1 << 20, &bytes),
            Status::kTimeout);
  EXPECT_EQ(delivery.failures(), 1u);
  const auto journal = delivery.journal();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].path, DeliveryPath::kFailed);
  EXPECT_EQ(journal[0].status, Status::kTimeout);
  EXPECT_EQ(w.soc.cpu().load32_uncached(MemoryMap::kServiceRegs.base +
                                        ServiceRegs::kNetDeliveryFails),
            1u);
}

// ---------------------------------------------------------------------
// Full stack: DprManager staging remote modules over the lossy link
// ---------------------------------------------------------------------

/// SoC + DprManager whose modules live on the repository server.
struct RemoteWorld {
  explicit RemoteWorld(Simulator::Mode mode = Simulator::Mode::kScheduled,
                       u64 fault_seed = 0x5EED)
      : soc(NetWorld::make_config(mode)),
        drv(soc.cpu(), soc.plic()),
        fi(fault_seed),
        fetcher(soc.cpu(), soc.net_link(), NetFetcher::Config{}),
        net_src(fetcher),
        cache(soc.cpu(), cache_config()),
        delivery(soc.cpu()),
        mgr(drv, soc.config_memory(), soc.rp0_handle(), nullptr) {
    soc.attach_fault_injector(&fi);
    mgr.set_fault_injector(&fi);
    delivery.set_primary(&net_src);
    delivery.attach_cache(&cache);
    delivery.set_net_stats(&fetcher);
    mgr.attach_source(&delivery);
    publish("sobel.pbit", accel::kRmIdSobel);
    publish("median.pbit", accel::kRmIdMedian);
    EXPECT_EQ(mgr.register_remote("sobel", accel::kRmIdSobel, "sobel.pbit"),
              Status::kOk);
    EXPECT_EQ(
        mgr.register_remote("median", accel::kRmIdMedian, "median.pbit"),
        Status::kOk);
  }

  static BitstreamCache::Config cache_config() {
    BitstreamCache::Config cfg;
    cfg.base = 0x8E00'0000;  // clear of the manager's staging slots
    return cfg;
  }

  void publish(const char* image, u32 rm_id) {
    soc.net_server().add_image(
        image, bitstream::generate_partial_bitstream(soc.device(), soc.rp0(),
                                                     {rm_id, image}));
  }

  ArianeSoc soc;
  driver::RvCapDriver drv;
  FaultInjector fi;
  NetFetcher fetcher;
  NetBitstreamSource net_src;
  BitstreamCache cache;
  BitstreamDelivery delivery;
  DprManager mgr;
};

TEST(RemoteDpr, RemoteModulesActivateOverLossyLink) {
  RemoteWorld w;
  w.fi.arm(sites::kNetDrop, 0, 0.03);
  w.fi.arm(sites::kNetCorrupt, 0, 0.01);
  ASSERT_EQ(w.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(w.mgr.active_module(), "sobel");
  EXPECT_TRUE(
      w.soc.config_memory().partition_state(w.soc.rp0_handle()).loaded);
  ASSERT_EQ(w.mgr.activate("median"), Status::kOk);
  ASSERT_EQ(w.mgr.activate("sobel"), Status::kOk);  // staged image reused
  EXPECT_EQ(w.mgr.stats().reconfigurations, 3u);
  EXPECT_EQ(w.mgr.stats().staging_loads, 2u);
  EXPECT_EQ(w.mgr.stats().staging_hits, 1u);
  // The link really was lossy and the fetcher really recovered.
  EXPECT_GT(w.soc.net_link().dropped() + w.soc.net_link().corrupted(), 0u);
  EXPECT_EQ(w.fetcher.fetches_ok(), 2u);
  EXPECT_EQ(w.fetcher.fetches_failed(), 0u);
}

TEST(RemoteDpr, DetachedSourceFailsRemoteStaging) {
  RemoteWorld w;
  w.mgr.attach_source(nullptr);
  EXPECT_EQ(w.mgr.activate("sobel"), Status::kInternal);
}

TEST(NetKernelEquivalence, RemoteReconfigOverLossyLinkIsIdentical) {
  RemoteWorld flat(Simulator::Mode::kFlat);
  RemoteWorld sched(Simulator::Mode::kScheduled);
  for (RemoteWorld* w : {&flat, &sched}) {
    w->fi.arm(sites::kNetDrop, 0, 0.05);
    w->fi.arm(sites::kNetCorrupt, 0, 0.01);
  }
  ASSERT_EQ(flat.mgr.activate("sobel"), Status::kOk);
  ASSERT_EQ(sched.mgr.activate("sobel"), Status::kOk);
  EXPECT_EQ(flat.soc.sim().now(), sched.soc.sim().now());
  EXPECT_EQ(flat.soc.icap().words_consumed(),
            sched.soc.icap().words_consumed());
  EXPECT_EQ(flat.soc.net_link().dropped(), sched.soc.net_link().dropped());
  EXPECT_EQ(flat.fetcher.chunk_retries(), sched.fetcher.chunk_retries());
  EXPECT_EQ(flat.fi.total_fires(), sched.fi.total_fires());
  // Both kernels must see the same golden module land.
  EXPECT_TRUE(
      flat.soc.config_memory().partition_state(flat.soc.rp0_handle()).loaded);
  EXPECT_TRUE(sched.soc.config_memory()
                  .partition_state(sched.soc.rp0_handle())
                  .loaded);
}

}  // namespace
}  // namespace rvcap
