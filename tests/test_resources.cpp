// Resource database (Tables I/II/III data) and the state-of-the-art
// controller models (Table II harness inputs).
#include <gtest/gtest.h>

#include "resources/database.hpp"
#include "soa/controllers.hpp"

namespace rvcap {
namespace {

using resources::Entry;
using resources::ResourceDb;
using resources::ResourceVec;
using resources::Source;
using soa::DprControllerModel;
using soa::literature_controllers;

TEST(ResourceVecTest, Arithmetic) {
  const ResourceVec a{1, 2, 3, 4}, b{10, 20, 30, 40};
  EXPECT_EQ(a + b, (ResourceVec{11, 22, 33, 44}));
  EXPECT_EQ(a * 3, (ResourceVec{3, 6, 9, 12}));
  ResourceVec c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(ResourceVecTest, Covers) {
  const ResourceVec big{100, 100, 10, 10};
  EXPECT_TRUE(big.covers({100, 50, 0, 10}));
  EXPECT_FALSE(big.covers({101, 0, 0, 0}));
  EXPECT_FALSE(big.covers({0, 0, 11, 0}));
}

struct DbFixture : ::testing::Test {
  ResourceDb db = ResourceDb::paper_database();
};

TEST_F(DbFixture, TableI_RvCapRowsSumToTableIITotal) {
  // Table I lists RV-CAP as (RP cntrl + AXI modules) + DMA; Table II
  // reports the combined controller as 2317 LUT / 3953 FF / 6 BRAM.
  const std::string_view parts[] = {"rvcap.rp_ctrl_axi", "rvcap.dma"};
  const ResourceVec total = db.total(parts);
  EXPECT_EQ(total, db.find("soa.rvcap")->res);
  EXPECT_EQ(total, (ResourceVec{2317, 3953, 6, 0}));
}

TEST_F(DbFixture, TableI_HwicapRowsSumToTableIITotal) {
  const std::string_view parts[] = {"hwicap_deploy.axi_modules",
                                    "hwicap_deploy.axi_hwicap"};
  const ResourceVec total = db.total(parts);
  EXPECT_EQ(total, db.find("soa.axi_hwicap_rv64")->res);
  EXPECT_EQ(total, (ResourceVec{1377, 2200, 2, 0}));
}

TEST_F(DbFixture, TableIII_ComponentsSumToFullSoc) {
  const std::string_view parts[] = {"soc.ariane_core",
                                    "soc.peripherals_bootmem",
                                    "soc.rvcap_controller", "soc.rp"};
  const ResourceVec total = db.total(parts);
  EXPECT_EQ(total, db.find("soc.full")->res);
  EXPECT_EQ(total, (ResourceVec{74393, 64059, 92, 47}));
}

TEST_F(DbFixture, TableIII_RmUtilizationPercentages) {
  const ResourceVec rp = db.find("soc.rp")->res;
  // Paper: Gaussian 28.15% LUT, 12.07% FF, 13.33% BRAM.
  const auto g = utilization_pct(db.find("soc.rm.gaussian")->res, rp);
  EXPECT_NEAR(g.luts, 28.15, 0.02);
  EXPECT_NEAR(g.ffs, 12.07, 0.02);
  EXPECT_NEAR(g.brams, 13.33, 0.01);
  // Median 72.65% LUT; Sobel 57.18% LUT / 50.37% FF.
  EXPECT_NEAR(utilization_pct(db.find("soc.rm.median")->res, rp).luts,
              72.65, 0.02);
  const auto s = utilization_pct(db.find("soc.rm.sobel")->res, rp);
  EXPECT_NEAR(s.luts, 57.18, 0.02);
  EXPECT_NEAR(s.ffs, 50.37, 0.02);
}

TEST_F(DbFixture, LookupAndPrefixQueries) {
  EXPECT_NE(db.find("soa.zycap"), nullptr);
  EXPECT_EQ(db.find("soa.nonexistent"), nullptr);
  EXPECT_EQ(db.under("soc.rm.").size(), 3u);
  EXPECT_GE(db.under("soa.").size(), 10u);
  const std::string_view missing[] = {"nope"};
  EXPECT_THROW((void)db.total(missing), std::out_of_range);
}

TEST_F(DbFixture, ProvenanceTagged) {
  EXPECT_EQ(db.find("soa.zycap")->source, Source::kLiterature);
  EXPECT_EQ(db.find("soc.full")->source, Source::kPaperReported);
  EXPECT_EQ(to_string(Source::kModelDerived), "model");
}

TEST(UtilizationPct, ZeroDenominatorIsZero) {
  const auto p = resources::utilization_pct({5, 5, 5, 5}, {10, 0, 10, 0});
  EXPECT_DOUBLE_EQ(p.luts, 50.0);
  EXPECT_DOUBLE_EQ(p.ffs, 0.0);
}

// ---------------------------------------------------------------------------
// State-of-the-art controller models
// ---------------------------------------------------------------------------

TEST(SoaModels, AllEightLiteratureRowsPresent) {
  const auto specs = literature_controllers();
  ASSERT_EQ(specs.size(), 8u);
  const ResourceDb db = ResourceDb::paper_database();
  for (const auto& s : specs) {
    EXPECT_NE(db.find(s.key), nullptr) << s.key;
  }
}

TEST(SoaModels, CalibratedModelsReproduceReportedThroughput) {
  for (const auto& spec : literature_controllers()) {
    const DprControllerModel model(spec);
    const double mbps = model.throughput_mbps(650892);
    EXPECT_NEAR(mbps, spec.reported_mbps, spec.reported_mbps * 0.005)
        << spec.name;
  }
}

TEST(SoaModels, DmaControllersStayUnderIcapCeiling) {
  for (const auto& spec : literature_controllers()) {
    const DprControllerModel model(spec);
    EXPECT_LE(model.throughput_mbps(650892), 400.0) << spec.name;
    EXPECT_GE(spec.cycles_per_word, 1.0)
        << spec.name << ": nothing beats the 32-bit-per-cycle port";
  }
}

TEST(SoaModels, SetupOverheadHurtsSmallBitstreamsMore) {
  const auto specs = literature_controllers();
  const auto& zycap = specs[1];
  ASSERT_EQ(zycap.key, "soa.zycap");
  const DprControllerModel model(zycap);
  EXPECT_LT(model.throughput_mbps(10'000), model.throughput_mbps(650'892));
}

TEST(SoaModels, KeyholeControllersAreOrdersOfMagnitudeSlower) {
  const auto specs = literature_controllers();
  double hwicap_arm = 0, vipin = 0;
  for (const auto& s : specs) {
    const DprControllerModel m(s);
    if (s.key == "soa.axi_hwicap_arm") hwicap_arm = m.throughput_mbps(650892);
    if (s.key == "soa.vipin") vipin = m.throughput_mbps(650892);
  }
  EXPECT_GT(vipin / hwicap_arm, 25.0);
}

}  // namespace
}  // namespace rvcap
