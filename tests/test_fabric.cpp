#include <gtest/gtest.h>

#include "fabric/config_memory.hpp"
#include "fabric/geometry.hpp"
#include "fabric/pbit_layout.hpp"

namespace rvcap {
namespace {

using fabric::case_study_partition;
using fabric::ColumnType;
using fabric::DeviceGeometry;
using fabric::FrameAddr;
using fabric::kFrameWords;
using fabric::Partition;
using fabric::plan_partition;
using fabric::RmManifest;
using resources::ResourceVec;

TEST(Geometry, FramesPerColumnMatch7Series) {
  EXPECT_EQ(fabric::frames_per_column(ColumnType::kClb), 36u);
  EXPECT_EQ(fabric::frames_per_column(ColumnType::kDsp), 28u);
  EXPECT_EQ(fabric::frames_per_column(ColumnType::kBram), 156u);
}

TEST(Geometry, ResourcesPerColumnRow) {
  EXPECT_EQ(fabric::resources_per_column(ColumnType::kClb),
            (ResourceVec{400, 800, 0, 0}));
  EXPECT_EQ(fabric::resources_per_column(ColumnType::kDsp),
            (ResourceVec{0, 0, 0, 20}));
  EXPECT_EQ(fabric::resources_per_column(ColumnType::kBram),
            (ResourceVec{0, 0, 10, 0}));
}

TEST(Geometry, ModelDeviceApproximatesK325T) {
  const auto dev = DeviceGeometry::kintex7_325t();
  const ResourceVec total = dev.total_resources();
  // Real XC7K325T: 203800 LUT, 407600 FF, 445 BRAM36, 840 DSP.
  EXPECT_NEAR(total.luts, 203800, 203800 * 0.05);
  EXPECT_NEAR(total.ffs, 407600, 407600 * 0.05);
  EXPECT_NEAR(total.brams, 445, 445 * 0.10);
  EXPECT_EQ(total.dsps, 840u);
  EXPECT_EQ(dev.rows(), 7u);
}

TEST(Geometry, FrameAddrEncodeDecodeRoundtrip) {
  const FrameAddr fa{5, 301, 97};
  EXPECT_EQ(FrameAddr::decode(fa.encode()), fa);
}

TEST(Geometry, NextFrameWalksMinorColumnRow) {
  const auto dev = DeviceGeometry::kintex7_325t();
  FrameAddr fa{0, 0, 0};
  const u32 col0_frames = dev.frames_in_column(0);
  for (u32 i = 1; i < col0_frames; ++i) {
    ASSERT_TRUE(dev.next_frame(&fa));
    EXPECT_EQ(fa.column, 0u);
    EXPECT_EQ(fa.minor, i);
  }
  ASSERT_TRUE(dev.next_frame(&fa));
  EXPECT_EQ(fa.column, 1u);
  EXPECT_EQ(fa.minor, 0u);
}

TEST(Geometry, NextFrameEndsAtDeviceEnd) {
  const auto dev = DeviceGeometry::kintex7_325t();
  FrameAddr fa{dev.rows() - 1, dev.num_columns() - 1,
               dev.frames_in_column(dev.num_columns() - 1) - 1};
  EXPECT_FALSE(dev.next_frame(&fa));
}

TEST(Geometry, WalkVisitsEveryFrameExactlyOnce) {
  const auto dev = DeviceGeometry::kintex7_325t();
  FrameAddr fa{0, 0, 0};
  u32 count = 1;
  while (dev.next_frame(&fa)) ++count;
  EXPECT_EQ(count, dev.total_frames());
}

TEST(CaseStudyPartition, MatchesPaperResources) {
  const auto dev = DeviceGeometry::kintex7_325t();
  const Partition rp = case_study_partition(dev);
  // Table III: RP = 3200 LUTs, 6400 FFs, 30 BRAMs, 20 DSPs.
  EXPECT_EQ(rp.resources(dev), (ResourceVec{3200, 6400, 30, 20}));
}

TEST(CaseStudyPartition, PbitSizeIsExactly650892Bytes) {
  const auto dev = DeviceGeometry::kintex7_325t();
  const Partition rp = case_study_partition(dev);
  EXPECT_EQ(rp.frame_count(dev), 805u);
  EXPECT_EQ(fabric::count_ranges(rp), 1u);
  EXPECT_EQ(rp.pbit_bytes(dev), 650892u);  // §IV-A
}

TEST(Partition, RangeCountingSplitsGaps) {
  const Partition p("p", {{0, 5}, {0, 6}, {0, 9}, {1, 10}, {1, 11}});
  EXPECT_EQ(fabric::count_ranges(p), 3u);
}

TEST(PlanPartition, CoversRequestedResources) {
  const auto dev = DeviceGeometry::kintex7_325t();
  const auto p =
      plan_partition(dev, "RP1", ResourceVec{1200, 2400, 10, 20}, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->resources(dev).covers(ResourceVec{1200, 2400, 10, 20}));
}

TEST(PlanPartition, ImpossibleRequestFails) {
  const auto dev = DeviceGeometry::kintex7_325t();
  EXPECT_FALSE(
      plan_partition(dev, "RPX", ResourceVec{10'000'000, 0, 0, 0}, 0)
          .has_value());
}

TEST(PlanPartition, AvoidsReservedColumns) {
  const auto dev = DeviceGeometry::kintex7_325t();
  const auto p1 = plan_partition(dev, "A", ResourceVec{400, 800, 0, 0}, 0);
  ASSERT_TRUE(p1.has_value());
  const auto p2 = plan_partition(dev, "B", ResourceVec{400, 800, 0, 0}, 0,
                                 p1->columns());
  ASSERT_TRUE(p2.has_value());
  for (const auto& c1 : p1->columns()) {
    for (const auto& c2 : p2->columns()) {
      EXPECT_FALSE(c1 == c2);
    }
  }
}

// ---------------------------------------------------------------------------
// Configuration memory / RM activation tracking
// ---------------------------------------------------------------------------

struct CfgMemFixture : ::testing::Test {
  CfgMemFixture()
      : dev(DeviceGeometry::kintex7_325t()),
        rp(case_study_partition(dev)),
        cfg(dev) {
    handle = cfg.register_partition(rp);
    addrs = rp.frame_addrs(dev);
  }

  std::vector<u32> frame_with_manifest(u32 rm_id) const {
    std::vector<u32> words(kFrameWords, 0xA5A5A5A5);
    RmManifest m{rm_id, static_cast<u32>(addrs.size())};
    m.encode(std::span(words).subspan(0, 4));
    return words;
  }

  void load_full(u32 rm_id) {
    cfg.notify_rcrc();
    std::vector<u32> plain(kFrameWords, 0x5A5A5A5A);
    for (usize i = 0; i < addrs.size(); ++i) {
      cfg.write_frame(addrs[i],
                      i == 0 ? frame_with_manifest(rm_id) : plain);
    }
  }

  DeviceGeometry dev;
  Partition rp;
  fabric::ConfigMemory cfg;
  usize handle = 0;
  std::vector<FrameAddr> addrs;
};

TEST_F(CfgMemFixture, FullInOrderPassActivatesModule) {
  load_full(7);
  const auto st = cfg.partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 7u);
  EXPECT_EQ(st.loads_completed, 1u);
}

TEST_F(CfgMemFixture, PartialPassLeavesModuleInactive) {
  cfg.notify_rcrc();
  std::vector<u32> plain(kFrameWords, 1);
  for (usize i = 0; i < addrs.size() / 2; ++i) {
    cfg.write_frame(addrs[i], i == 0 ? frame_with_manifest(3) : plain);
  }
  EXPECT_FALSE(cfg.partition_state(handle).loaded);
}

TEST_F(CfgMemFixture, OutOfOrderWriteInvalidates) {
  load_full(1);
  ASSERT_TRUE(cfg.partition_state(handle).loaded);
  // A stray write into the middle of the partition wrecks it.
  cfg.write_frame(addrs[10], std::vector<u32>(kFrameWords, 9));
  EXPECT_FALSE(cfg.partition_state(handle).loaded);
}

TEST_F(CfgMemFixture, ReloadSwapsModule) {
  load_full(1);
  EXPECT_EQ(cfg.partition_state(handle).rm_id, 1u);
  load_full(2);
  const auto st = cfg.partition_state(handle);
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.rm_id, 2u);
  EXPECT_EQ(st.loads_completed, 2u);
}

TEST_F(CfgMemFixture, BadManifestPreventsActivation) {
  cfg.notify_rcrc();
  std::vector<u32> plain(kFrameWords, 2);
  for (usize i = 0; i < addrs.size(); ++i) {
    cfg.write_frame(addrs[i], plain);  // no manifest anywhere
  }
  EXPECT_FALSE(cfg.partition_state(handle).loaded);
}

TEST_F(CfgMemFixture, CrcErrorInvalidatesTouchedPartition) {
  load_full(4);
  ASSERT_TRUE(cfg.partition_state(handle).loaded);
  // Next pass loads fully but then reports a CRC error.
  load_full(5);
  cfg.notify_crc_error();
  EXPECT_FALSE(cfg.partition_state(handle).loaded);
}

TEST_F(CfgMemFixture, CrcErrorDoesNotTouchOtherPassPartitions) {
  load_full(4);
  cfg.notify_rcrc();    // a new pass that never touches the partition
  cfg.notify_crc_error();
  EXPECT_TRUE(cfg.partition_state(handle).loaded);
}

TEST_F(CfgMemFixture, InvalidFrameAddressCounted) {
  cfg.write_frame(FrameAddr{99, 99, 99}, std::vector<u32>(kFrameWords, 0));
  EXPECT_EQ(cfg.bad_address_writes(), 1u);
  EXPECT_EQ(cfg.frames_written(), 0u);
}

TEST_F(CfgMemFixture, FrameReadbackMatchesWrite) {
  const auto words = frame_with_manifest(9);
  cfg.write_frame(addrs[0], words);
  const auto* back = cfg.frame(addrs[0]);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, words);
  EXPECT_EQ(cfg.frame(addrs[1]), nullptr);
}

TEST(Manifest, EncodeDecodeRoundtrip) {
  std::vector<u32> frame(kFrameWords, 0);
  RmManifest m{42, 805};
  m.encode(std::span(frame).subspan(0, 4));
  const auto back = RmManifest::decode(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rm_id, 42u);
  EXPECT_EQ(back->frame_count, 805u);
}

TEST(Manifest, CorruptedChecksumRejected) {
  std::vector<u32> frame(kFrameWords, 0);
  RmManifest{42, 805}.encode(std::span(frame).subspan(0, 4));
  frame[1] ^= 1;  // flip a bit in rm_id
  EXPECT_FALSE(RmManifest::decode(frame).has_value());
}

}  // namespace
}  // namespace rvcap
