#include "rvcap/controller.hpp"

#include <cassert>

namespace rvcap::rvcap_ctrl {

RvCapController::RvCapController(icap::Icap& icap, axi::AxiPort& ddr_port,
                                 const axi::AddrRange& ddr_window,
                                 const AxiDma::Config& dma_cfg)
    : icap_(icap),
      dma_("rvcap.dma", dma_cfg),
      switch_("rvcap.axis_switch"),
      decomp_("rvcap.decompressor", switch_.to_icap(), decomp_out_),
      axis2icap_("rvcap.axis2icap", decomp_out_, icap.port()),
      icap2axis_("rvcap.icap2axis", icap.read_port(), switch_.from_icap()),
      isolator_("rvcap.isolator"),
      rp_ctrl_("rvcap.rp_ctrl", isolator_, switch_),
      ddr_xbar_("rvcap.ddr_xbar"),
      dma_ctrl_conv_("rvcap.dma_ctrl.widthconv"),
      dma_ctrl_bridge_("rvcap.dma_ctrl.litebridge"),
      rp_ctrl_conv_("rvcap.rp_ctrl.widthconv"),
      rp_ctrl_bridge_("rvcap.rp_ctrl.litebridge"),
      w_dma_conv_bridge_("rvcap.w0", dma_ctrl_conv_.downstream(),
                         dma_ctrl_bridge_.upstream()),
      w_dma_bridge_dev_("rvcap.w1", dma_ctrl_bridge_.downstream(),
                        dma_.port()),
      w_rp_conv_bridge_("rvcap.w2", rp_ctrl_conv_.downstream(),
                        rp_ctrl_bridge_.upstream()),
      w_rp_bridge_dev_("rvcap.w3", rp_ctrl_bridge_.downstream(),
                       rp_ctrl_.port()),
      w_dma_to_switch_("rvcap.w4", dma_.mm2s_stream(), switch_.from_dma()),
      w_switch_to_iso_("rvcap.w5", switch_.to_rm(), isolator_.in_to_rp()),
      w_iso_to_switch_("rvcap.w6", isolator_.out_from_rp(),
                       switch_.from_rm()),
      w_switch_to_dma_("rvcap.w7", switch_.to_dma(), dma_.s2mm_stream()) {
  // Additional crossbar: manager 0 = CPU path, manager 1 = DMA.
  ddr_xbar_.add_manager(&main_bus_ddr_port_);
  ddr_xbar_.add_manager(&dma_.mem_port());
  ddr_xbar_.add_subordinate(ddr_window, &ddr_port);
  rp_ctrl_.attach_decompressor(&decomp_);
  rp_ctrl_.set_abort_hook([this] { abort_datapath(); });
  icap2axis_.set_gate(&switch_);
}

void RvCapController::abort_datapath() {
  switch_.from_dma().clear();
  switch_.to_icap().clear();
  switch_.from_icap().clear();
  switch_.to_dma().clear();
  decomp_out_.clear();
  decomp_.reset_stream();
  axis2icap_.reset_stream();
  icap_.abort();
}

void RvCapController::register_components(sim::Simulator& sim) {
  assert(!registered_);
  registered_ = true;
  // Dataflow order: control converters first, then engines, then the
  // stream fabric toward the ICAP/RM.
  sim.add(&dma_ctrl_conv_);
  sim.add(&w_dma_conv_bridge_);
  sim.add(&dma_ctrl_bridge_);
  sim.add(&w_dma_bridge_dev_);
  sim.add(&rp_ctrl_conv_);
  sim.add(&w_rp_conv_bridge_);
  sim.add(&rp_ctrl_bridge_);
  sim.add(&w_rp_bridge_dev_);
  sim.add(&rp_ctrl_);
  sim.add(&ddr_xbar_);
  sim.add(&dma_);
  sim.add(&w_dma_to_switch_);
  sim.add(&switch_);
  sim.add(&decomp_);
  sim.add(&axis2icap_);
  sim.add(&icap2axis_);
  sim.add(&w_switch_to_iso_);
  sim.add(&isolator_);
  sim.add(&w_iso_to_switch_);
  sim.add(&w_switch_to_dma_);
}

}  // namespace rvcap::rvcap_ctrl
