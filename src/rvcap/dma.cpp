#include "rvcap/dma.hpp"

#include <bit>

#include "common/log.hpp"
#include "obs/observability.hpp"

namespace rvcap::rvcap_ctrl {

AxiDma::AxiDma(std::string name, const Config& cfg)
    : AxiLiteSlave(std::move(name)), cfg_(cfg) {
  s2mm_buf_.reserve(cfg_.max_burst_beats);
  mem_.watch(this);
  mm2s_out_.watch(this);
  s2mm_in_.watch(this);
}

void AxiDma::on_register(obs::Observability& o) {
  const std::string prefix(name());
  obs::CounterRegistry& c = o.counters();
  c.register_fn(prefix + ".mm2s_bytes", [this] { return mm2s_bytes_total_; });
  c.register_fn(prefix + ".s2mm_bytes", [this] { return s2mm_bytes_total_; });
  c.register_fn(prefix + ".mm2s_jobs", [this] { return mm2s_done_count_; });
  c.register_fn(prefix + ".mm2s_out_hwm", [this] {
    return static_cast<u64>(mm2s_out_.high_water());
  });
  c.register_fn(prefix + ".s2mm_in_hwm", [this] {
    return static_cast<u64>(s2mm_in_.high_water());
  });
  mm2s_latency_ = c.histogram(prefix + ".mm2s_job_cycles");
  s2mm_latency_ = c.histogram(prefix + ".s2mm_job_cycles");
}

u32 AxiDma::read_reg(Addr addr) {
  switch (addr & 0xFF) {
    case kMm2sCr: return mm2s_cr_;
    case kMm2sSr: return mm2s_sr_;
    case kMm2sSa: return static_cast<u32>(mm2s_sa_);
    case kMm2sSaMsb: return static_cast<u32>(mm2s_sa_ >> 32);
    case kMm2sBeats: return static_cast<u32>(mm2s_beats_streamed_);
    case kS2mmCr: return s2mm_cr_;
    case kS2mmSr: return s2mm_sr_;
    case kS2mmDa: return static_cast<u32>(s2mm_da_);
    case kS2mmDaMsb: return static_cast<u32>(s2mm_da_ >> 32);
    default: return 0;
  }
}

void AxiDma::write_reg(Addr addr, u32 value) {
  switch (addr & 0xFF) {
    case kMm2sCr:
      if (value & kCrReset) {
        mm2s_cr_ = 0;
        mm2s_sr_ = kSrHalted;
        mm2s_job_.reset();
        mm2s_out_.clear();
        mm2s_beats_streamed_ = 0;
        mm2s_fault_beat_ = 0;
        mm2s_early_ioc_beat_ = 0;
        mm2s_stalled_ = false;
        break;
      }
      mm2s_cr_ = value;
      if (value & kCrRunStop) {
        mm2s_sr_ &= ~kSrHalted;
      } else {
        mm2s_sr_ |= kSrHalted;
      }
      break;
    case kMm2sSr:
      // Write-1-to-clear for interrupt bits; error causes stay sticky
      // until soft reset, as on the Xilinx core.
      mm2s_sr_ &= ~(value & (kSrIocIrq | kSrErrIrq));
      break;
    case kMm2sSa:
      mm2s_sa_ = (mm2s_sa_ & ~u64{0xFFFFFFFF}) | value;
      break;
    case kMm2sSaMsb:
      mm2s_sa_ = (mm2s_sa_ & 0xFFFFFFFF) | (u64{value} << 32);
      break;
    case kMm2sLength: {
      const u64 bytes = value & 0x03FFFFFF;
      if ((mm2s_cr_ & kCrRunStop) && bytes > 0 && !mm2s_job_.has_value()) {
        const u64 beats = (bytes + 7) / 8;
        mm2s_job_ = Mm2sJob{mm2s_sa_, bytes, beats};
        mm2s_job_bytes_ = bytes;
        mm2s_start_cycle_ = sim_now();
        RVCAP_TRACE(trace_sink(), obs::EventKind::kDmaMm2sStart, trace_src(),
                    sim_now(), mm2s_sa_, bytes);
        mm2s_sr_ &= ~kSrIdle;
        mm2s_beats_streamed_ = 0;
        mm2s_fault_beat_ = 0;
        mm2s_early_ioc_beat_ = 0;
        if (fault_ != nullptr) {
          namespace fs = sim::fault_sites;
          if (fault_->should_fire(fs::kDmaMm2sSlvErr)) {
            mm2s_fault_beat_ = 1 + fault_->value(fs::kDmaMm2sSlvErr, beats);
          }
          if (fault_->should_fire(fs::kDmaMm2sStall)) mm2s_stalled_ = true;
          if (beats > 1 && fault_->should_fire(fs::kDmaMm2sEarlyIoc)) {
            mm2s_early_ioc_beat_ =
                1 + fault_->value(fs::kDmaMm2sEarlyIoc, beats - 1);
          }
        }
      } else {
        log_warn("dma: MM2S length write ignored (halted or busy)");
      }
      break;
    }
    case kS2mmCr:
      if (value & kCrReset) {
        s2mm_cr_ = 0;
        s2mm_sr_ = kSrHalted;
        s2mm_job_.reset();
        s2mm_buf_.clear();
        s2mm_in_.clear();
        break;
      }
      s2mm_cr_ = value;
      if (value & kCrRunStop) {
        s2mm_sr_ &= ~kSrHalted;
      } else {
        s2mm_sr_ |= kSrHalted;
      }
      break;
    case kS2mmSr:
      s2mm_sr_ &= ~(value & kSrIocIrq);
      break;
    case kS2mmDa:
      s2mm_da_ = (s2mm_da_ & ~u64{0xFFFFFFFF}) | value;
      break;
    case kS2mmDaMsb:
      s2mm_da_ = (s2mm_da_ & 0xFFFFFFFF) | (u64{value} << 32);
      break;
    case kS2mmLength: {
      const u64 bytes = value & 0x03FFFFFF;
      if ((s2mm_cr_ & kCrRunStop) && bytes > 0 && !s2mm_job_.has_value()) {
        s2mm_job_ = S2mmJob{s2mm_da_, bytes};
        s2mm_job_bytes_ = bytes;
        s2mm_start_cycle_ = sim_now();
        RVCAP_TRACE(trace_sink(), obs::EventKind::kDmaS2mmStart, trace_src(),
                    sim_now(), s2mm_da_, bytes);
        s2mm_sr_ &= ~kSrIdle;
      } else {
        log_warn("dma: S2MM length write ignored (halted or busy)");
      }
      break;
    }
    default:
      break;
  }
  update_irqs();
}

bool AxiDma::device_tick() {
  const bool mm2s = tick_mm2s();
  const bool s2mm = tick_s2mm();
  if (mm2s || s2mm) update_irqs();
  return mm2s || s2mm;
}

bool AxiDma::tick_mm2s() {
  if (!mm2s_job_.has_value()) {
    // Drain read data from bursts that were in flight when the job
    // ended early (injected error or premature IOC); left in place it
    // would wedge the memory crossbar and poison the next transfer.
    if (mem_.r.can_pop()) {
      const axi::AxiR r = *mem_.r.pop();
      if (r.last && mm2s_bursts_outstanding_ > 0) --mm2s_bursts_outstanding_;
      return true;
    }
    return false;
  }
  if (mm2s_stalled_) return false;  // injected wedge: sleeps until reset
  bool progress = false;
  Mm2sJob& j = *mm2s_job_;

  // Issue read bursts, keeping up to max_outstanding in flight.
  if (j.bytes_left_to_request > 0 &&
      mm2s_bursts_outstanding_ < cfg_.max_outstanding &&
      mem_.ar.can_push()) {
    const u64 beats_needed = (j.bytes_left_to_request + 7) / 8;
    const u32 beats =
        static_cast<u32>(std::min<u64>(beats_needed, cfg_.max_burst_beats));
    mem_.ar.push(axi::AxiAr{j.addr, static_cast<u8>(beats - 1), 3});
    j.addr += u64{beats} * 8;
    j.bytes_left_to_request -=
        std::min<u64>(j.bytes_left_to_request, u64{beats} * 8);
    ++mm2s_bursts_outstanding_;
    progress = true;
  }

  // Move read data into the output stream, one beat per cycle.
  if (mem_.r.can_pop() && mm2s_out_.can_push()) {
    const axi::AxiR r = *mem_.r.pop();
    if (r.last) --mm2s_bursts_outstanding_;
    ++mm2s_beats_streamed_;
    if (mm2s_fault_beat_ != 0 && mm2s_beats_streamed_ == mm2s_fault_beat_) {
      // Injected SLVERR on the read channel: the engine drops the
      // transfer and halts with DMASlvErr, as the Xilinx core does.
      mm2s_job_.reset();
      mm2s_fault_beat_ = 0;
      mm2s_cr_ &= ~kCrRunStop;
      mm2s_sr_ |= kSrDmaSlvErr | kSrErrIrq | kSrHalted;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kDmaMm2sError, trace_src(),
                  sim_now(), mm2s_sr_);
      return true;
    }
    const bool early = (mm2s_early_ioc_beat_ != 0 &&
                        mm2s_beats_streamed_ == mm2s_early_ioc_beat_);
    const bool stream_last = (j.beats_left_to_stream == 1) || early;
    mm2s_out_.push(axi::AxisBeat{r.data, 0xFF, stream_last});
    if (--j.beats_left_to_stream == 0 || early) {
      // `early` is the injected premature-IOC fault: completion is
      // signalled with part of the bitstream never streamed.
      mm2s_job_.reset();
      mm2s_early_ioc_beat_ = 0;
      mm2s_sr_ |= kSrIdle | kSrIocIrq;
      ++mm2s_done_count_;
      mm2s_bytes_total_ += mm2s_job_bytes_;
      const Cycles lat = sim_now() - mm2s_start_cycle_;
      if (mm2s_latency_ != nullptr) mm2s_latency_->record(lat);
      RVCAP_TRACE(trace_sink(), obs::EventKind::kDmaMm2sDone, trace_src(),
                  sim_now(), mm2s_job_bytes_, mm2s_beats_streamed_, lat);
    }
    progress = true;
  }
  return progress;
}

bool AxiDma::tick_s2mm() {
  if (!s2mm_job_.has_value()) return false;
  bool progress = false;
  S2mmJob& j = *s2mm_job_;

  // Accept stream beats into the burst buffer, one per cycle.
  if (j.bytes_left > 0 && s2mm_buf_.size() < cfg_.max_burst_beats &&
      s2mm_in_.can_pop()) {
    const axi::AxisBeat b = *s2mm_in_.pop();
    s2mm_buf_.push_back(b);
    j.bytes_left -= std::min<u64>(j.bytes_left, std::popcount(b.keep));
    progress = true;
  }

  // Flush a full burst (or the final partial burst).
  const bool final_flush = (j.bytes_left == 0 && !s2mm_buf_.empty());
  if ((s2mm_buf_.size() == cfg_.max_burst_beats || final_flush) &&
      mem_.aw.can_push() && mem_.w.vacancy() >= s2mm_buf_.size()) {
    mem_.aw.push(axi::AxiAw{
        j.addr, static_cast<u8>(s2mm_buf_.size() - 1), 3});
    for (usize i = 0; i < s2mm_buf_.size(); ++i) {
      mem_.w.push(axi::AxiW{s2mm_buf_[i].data, s2mm_buf_[i].keep,
                            i + 1 == s2mm_buf_.size()});
    }
    j.addr += s2mm_buf_.size() * 8;
    s2mm_buf_.clear();
    ++j.bursts_in_flight;
    progress = true;
  }

  // Retire write responses.
  if (mem_.b.can_pop()) {
    mem_.b.pop();
    --j.bursts_in_flight;
    progress = true;
  }

  if (j.bytes_left == 0 && s2mm_buf_.empty() && j.bursts_in_flight == 0) {
    s2mm_job_.reset();
    s2mm_sr_ |= kSrIdle | kSrIocIrq;
    s2mm_bytes_total_ += s2mm_job_bytes_;
    const Cycles lat = sim_now() - s2mm_start_cycle_;
    if (s2mm_latency_ != nullptr) s2mm_latency_->record(lat);
    RVCAP_TRACE(trace_sink(), obs::EventKind::kDmaS2mmDone, trace_src(),
                sim_now(), s2mm_job_bytes_, 0, lat);
    progress = true;
  }
  return progress;
}

void AxiDma::update_irqs() {
  mm2s_irq_.set(((mm2s_sr_ & kSrIocIrq) && (mm2s_cr_ & kCrIocIrqEn)) ||
                ((mm2s_sr_ & kSrErrIrq) && (mm2s_cr_ & kCrErrIrqEn)));
  s2mm_irq_.set((s2mm_sr_ & kSrIocIrq) && (s2mm_cr_ & kCrIocIrqEn));
}

bool AxiDma::device_busy() const {
  return mm2s_job_.has_value() || s2mm_job_.has_value() || !mem_.idle() ||
         mm2s_out_.can_pop() || s2mm_in_.can_pop();
}

}  // namespace rvcap::rvcap_ctrl
