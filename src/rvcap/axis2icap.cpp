#include "rvcap/axis2icap.hpp"

namespace rvcap::rvcap_ctrl {

Axis2Icap::Axis2Icap(std::string name, axi::AxisFifo& in,
                     sim::Fifo<u32>& icap_port)
    : Component(std::move(name)), in_(in), out_(icap_port) {
  in_.watch(this);
  out_.watch(this);
}

bool Axis2Icap::tick() {
  if (!out_.can_push()) return false;  // ICAP back-pressure

  if (have_high_) {
    out_.push(high_word_);
    ++words_;
    have_high_ = false;
    return true;
  }
  if (const axi::AxisBeat* b = in_.front()) {
    const u32 lo = static_cast<u32>(b->data & 0xFFFFFFFF);
    const u32 hi = static_cast<u32>(b->data >> 32);
    const bool hi_valid = (b->keep & 0xF0) != 0;
    out_.push(bswap(lo));
    ++words_;
    if (hi_valid) {
      high_word_ = bswap(hi);
      have_high_ = true;
    }
    in_.pop();
    return true;
  }
  return false;
}

bool Axis2Icap::busy() const { return have_high_ || in_.can_pop(); }

}  // namespace rvcap::rvcap_ctrl
