#include "rvcap/rp_control.hpp"

#include "rvcap/decompressor.hpp"

namespace rvcap::rvcap_ctrl {

RpControl::RpControl(std::string name, axi::AxisIsolator& isolator,
                     axi::AxisSwitch& axis_switch)
    : AxiLiteSlave(std::move(name)), isolator_(isolator),
      switch_(axis_switch) {}

u32 RpControl::read_reg(Addr addr) {
  const Addr off = addr & 0xFF;
  if (off == kControl) {
    return (decouple_ ? kCtlDecouple : 0) |
           (select_icap_ ? kCtlSelectIcap : 0) |
           (decompress_ ? kCtlDecompress : 0);
  }
  if (off == kStatus) {
    u32 st = 0;
    if (decouple_) st |= kStDecoupled;
    if (select_icap_) st |= kStIcapSelected;
    if (rm_ != nullptr) st |= kStRmActive;
    if (decompress_) st |= kStDecompress;
    if (decomp_ != nullptr && decomp_->busy()) st |= kStDraining;
    st |= (rm_id_ & 0xFF) << 8;
    return st;
  }
  if (off >= kRmRegBase && off < kRmRegBase + 4 * kNumRmRegs) {
    if (decouple_ || rm_ == nullptr) {
      ++blocked_accesses_;  // decoupled: fabric reads back zeros
      return 0;
    }
    return rm_->rm_reg_read(static_cast<u32>((off - kRmRegBase) / 4));
  }
  return 0;
}

void RpControl::write_reg(Addr addr, u32 value) {
  const Addr off = addr & 0xFF;
  if (off == kControl) {
    decouple_ = (value & kCtlDecouple) != 0;
    select_icap_ = (value & kCtlSelectIcap) != 0;
    isolator_.set_decoupled(decouple_);
    switch_.set_select_icap(select_icap_);
    const bool want_decompress = (value & kCtlDecompress) != 0;
    if (want_decompress != decompress_) {
      decompress_ = want_decompress;
      if (decomp_ != nullptr) decomp_->set_enabled(decompress_);
    }
    // Abort is a pulse, not stored state: it fires once per write.
    if ((value & kCtlIcapAbort) != 0 && abort_hook_) abort_hook_();
    return;
  }
  if (off >= kRmRegBase && off < kRmRegBase + 4 * kNumRmRegs) {
    if (decouple_ || rm_ == nullptr) {
      ++blocked_accesses_;  // dropped while isolated
      return;
    }
    rm_->rm_reg_write(static_cast<u32>((off - kRmRegBase) / 4), value);
  }
}

}  // namespace rvcap::rvcap_ctrl
