// Xilinx-AXI-DMA-style engine (direct register mode) — Fig. 2
// component 1.
//
// Master on the DDR side (64-bit AXI, max burst 16 as configured in
// §IV-A), AXI-Stream on the datapath side, AXI4-Lite control port for
// the CPU. MM2S fetches the partial bitstream (or accelerator input)
// from DDR and streams it out; S2MM writes the accelerator output
// stream back. Completion raises IOC interrupts toward the PLIC,
// enabling the paper's non-blocking reconfiguration mode.
#pragma once

#include <optional>

#include "axi/lite_slave.hpp"
#include "irq/plic.hpp"
#include "obs/counters.hpp"
#include "sim/fault_injector.hpp"

namespace rvcap::rvcap_ctrl {

class AxiDma : public axi::AxiLiteSlave {
 public:
  // Register offsets (Xilinx AXI DMA direct register mode).
  static constexpr Addr kMm2sCr = 0x00;
  static constexpr Addr kMm2sSr = 0x04;
  static constexpr Addr kMm2sSa = 0x18;
  static constexpr Addr kMm2sSaMsb = 0x1C;
  /// Read-only beat counter for the in-flight MM2S job (vendor cores
  /// expose the same through the transferred-bytes field): the progress
  /// probe the watchdog uses to tell "slow" from "wedged".
  static constexpr Addr kMm2sBeats = 0x24;
  static constexpr Addr kMm2sLength = 0x28;
  static constexpr Addr kS2mmCr = 0x30;
  static constexpr Addr kS2mmSr = 0x34;
  static constexpr Addr kS2mmDa = 0x48;
  static constexpr Addr kS2mmDaMsb = 0x4C;
  static constexpr Addr kS2mmLength = 0x58;

  static constexpr u32 kCrRunStop = 1u << 0;
  static constexpr u32 kCrReset = 1u << 2;
  static constexpr u32 kCrIocIrqEn = 1u << 12;
  static constexpr u32 kCrErrIrqEn = 1u << 14;
  static constexpr u32 kSrHalted = 1u << 0;
  static constexpr u32 kSrIdle = 1u << 1;
  static constexpr u32 kSrDmaIntErr = 1u << 4;
  static constexpr u32 kSrDmaSlvErr = 1u << 5;
  static constexpr u32 kSrDmaDecErr = 1u << 6;
  static constexpr u32 kSrIocIrq = 1u << 12;
  static constexpr u32 kSrErrIrq = 1u << 14;
  static constexpr u32 kSrErrMask = kSrDmaIntErr | kSrDmaSlvErr | kSrDmaDecErr;

  struct Config {
    u32 max_burst_beats = 16;  // §IV-A: "maximum AXI burst size ... 16"
    u32 max_outstanding = 2;   // pipelined reads toward the MIG
  };

  AxiDma(std::string name, const Config& cfg);
  explicit AxiDma(std::string name) : AxiDma(std::move(name), Config{}) {}

  /// Memory-side manager link (connect to the additional crossbar).
  axi::AxiPort& mem_port() { return mem_; }
  /// Datapath: MM2S output / S2MM input streams.
  axi::AxisFifo& mm2s_stream() { return mm2s_out_; }
  axi::AxisFifo& s2mm_stream() { return s2mm_in_; }

  void set_mm2s_irq(irq::IrqLine line) { mm2s_irq_ = line; }
  void set_s2mm_irq(irq::IrqLine line) { s2mm_irq_ = line; }

  /// Optional fault injection (sites: dma.mm2s.slverr, dma.mm2s.stall,
  /// dma.mm2s.early_ioc). Faults are planned when a job starts and
  /// cleared by soft reset (kCrReset).
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }

  bool mm2s_idle() const { return !mm2s_job_.has_value(); }
  bool s2mm_idle() const { return !s2mm_job_.has_value(); }
  u64 mm2s_transfers() const { return mm2s_done_count_; }

  void on_register(obs::Observability& o) override;

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;
  bool device_tick() override;
  bool device_busy() const override;

 private:
  struct Mm2sJob {
    u64 addr;
    u64 bytes_left_to_request;
    u64 beats_left_to_stream;
  };
  struct S2mmJob {
    u64 addr;
    u64 bytes_left;       // stream bytes still to accept
    u32 bursts_in_flight = 0;
    u32 beats_buffered = 0;  // beats accepted but burst not yet issued
  };

  bool tick_mm2s();
  bool tick_s2mm();
  void update_irqs();

  Config cfg_;
  axi::AxiPort mem_;
  axi::AxisFifo mm2s_out_{8};
  axi::AxisFifo s2mm_in_{8};

  // MM2S state.
  u32 mm2s_cr_ = 0;
  u32 mm2s_sr_ = kSrHalted;
  u64 mm2s_sa_ = 0;
  std::optional<Mm2sJob> mm2s_job_;
  u64 mm2s_job_bytes_ = 0;        // descriptor size, for the done event
  Cycles mm2s_start_cycle_ = 0;
  u64 mm2s_bytes_total_ = 0;      // lifetime bytes moved (obs counter)
  u32 mm2s_bursts_outstanding_ = 0;
  u64 mm2s_done_count_ = 0;
  u64 mm2s_beats_streamed_ = 0;   // beats moved for the current job
  u64 mm2s_fault_beat_ = 0;       // injected SLVERR at this beat (1-based)
  u64 mm2s_early_ioc_beat_ = 0;   // injected premature completion (1-based)
  bool mm2s_stalled_ = false;     // injected wedge

  // S2MM state.
  u32 s2mm_cr_ = 0;
  u32 s2mm_sr_ = kSrHalted;
  u64 s2mm_da_ = 0;
  std::optional<S2mmJob> s2mm_job_;
  std::vector<axi::AxisBeat> s2mm_buf_;
  u64 s2mm_job_bytes_ = 0;
  Cycles s2mm_start_cycle_ = 0;
  u64 s2mm_bytes_total_ = 0;

  irq::IrqLine mm2s_irq_;
  irq::IrqLine s2mm_irq_;
  sim::FaultInjector* fault_ = nullptr;
  obs::Histogram* mm2s_latency_ = nullptr;  // job cycles, per descriptor
  obs::Histogram* s2mm_latency_ = nullptr;
};

}  // namespace rvcap::rvcap_ctrl
