#include "rvcap/decompressor.hpp"

#include "common/log.hpp"

namespace rvcap::rvcap_ctrl {

using bitstream::kCompressMagic;
using bitstream::kLiteralTag;
using bitstream::kRunCountMask;
using bitstream::kZeroTag;

Decompressor::Decompressor(std::string name, axi::AxisFifo& in,
                           axi::AxisFifo& out)
    : Component(std::move(name)), in_(in), out_(out) {
  in_.watch(this);
  out_.watch(this);
}

void Decompressor::set_enabled(bool e) {
  enabled_ = e;
  state_ = State::kMagic;
  run_left_ = 0;
  have_pending_in_ = false;
  have_pending_out_ = false;
  saw_last_in_ = false;
  format_error_ = false;
  wake();
}

bool Decompressor::next_input_word(u32* w) {
  if (have_pending_in_) {
    *w = pending_in_;
    have_pending_in_ = false;
    ++words_in_;
    return true;
  }
  if (const axi::AxisBeat* b = in_.front()) {
    *w = bswap(static_cast<u32>(b->data & 0xFFFFFFFF));
    if ((b->keep & 0xF0) != 0) {
      pending_in_ = bswap(static_cast<u32>(b->data >> 32));
      have_pending_in_ = true;
    }
    if (b->last) saw_last_in_ = true;
    in_.pop();
    ++words_in_;
    return true;
  }
  return false;
}

void Decompressor::emit_word(u32 w) {
  ++words_out_;
  if (!have_pending_out_) {
    pending_out_ = w;
    have_pending_out_ = true;
    return;
  }
  const u64 data =
      (u64{bswap(w)} << 32) | bswap(pending_out_);
  out_.push(axi::AxisBeat{data, 0xFF, false});
  have_pending_out_ = false;
}

bool Decompressor::tick() {
  if (!enabled_) {
    // Passthrough wire.
    if (in_.can_pop() && out_.can_push()) {
      out_.push(*in_.pop());
      return true;
    }
    return false;
  }
  if (format_error_) return false;
  if (!out_.can_push()) return false;  // downstream back-pressure

  // Every decoder transition either consumes an input word or emits an
  // output word, so these counters (plus the half-beat flush below)
  // capture all observable progress.
  const u64 in0 = words_in_;
  const u64 out0 = words_out_;
  const bool pend0 = have_pending_out_;
  const auto moved = [&] {
    return words_in_ != in0 || words_out_ != out0 ||
           have_pending_out_ != pend0;
  };

  // Emit at most one beat (two words) per cycle.
  for (int half = 0; half < 2; ++half) {
    switch (state_) {
      case State::kMagic: {
        u32 w;
        if (!next_input_word(&w)) return moved();
        if (w != kCompressMagic) {
          format_error_ = true;
          log_warn("decompressor: bad magic 0x", std::hex, w);
          return moved();
        }
        state_ = State::kHeader;
        break;
      }
      case State::kHeader: {
        u32 w;
        if (!next_input_word(&w)) return moved();
        const u32 tag = w >> 28;
        run_left_ = w & kRunCountMask;
        if (tag == kLiteralTag) {
          state_ = run_left_ > 0 ? State::kLiteral : State::kHeader;
        } else if (tag == kZeroTag) {
          state_ = run_left_ > 0 ? State::kZeros : State::kHeader;
        } else {
          format_error_ = true;
          log_warn("decompressor: bad record tag");
          return moved();
        }
        break;
      }
      case State::kLiteral: {
        u32 w;
        if (!next_input_word(&w)) return moved();
        emit_word(w);
        if (--run_left_ == 0) state_ = State::kHeader;
        break;
      }
      case State::kZeros:
        emit_word(0);
        if (--run_left_ == 0) state_ = State::kHeader;
        break;
    }
  }

  // Odd total word count: flush the final half-beat once the input
  // stream has ended (the original bitstream had an odd word count).
  if (saw_last_in_ && !have_pending_in_ && run_left_ == 0 &&
      have_pending_out_ && out_.can_push()) {
    out_.push(axi::AxisBeat{u64{bswap(pending_out_)}, 0x0F, true});
    have_pending_out_ = false;
  }
  return moved();
}

bool Decompressor::busy() const {
  return in_.can_pop() || have_pending_in_ ||
         (enabled_ && (run_left_ > 0 || have_pending_out_));
}

}  // namespace rvcap::rvcap_ctrl
