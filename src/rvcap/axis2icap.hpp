// AXIS2ICAP converter (Fig. 2 component 5).
//
// "Responsible for converting a 64-bit data word fetched from the DDR
// memory into two 32-bit data words, which are written in order to the
// ICAP data port. Besides, the valid stream signal is inverted and
// connected to the ICAP [CSIB] port. The R/W select input port is
// permanently set to zero [write]." (§III-B)
//
// One 32-bit word leaves per cycle, so a saturated 64-bit stream is
// consumed at one beat per two cycles — exactly the ICAP's 400 MB/s.
// Byte lanes are reordered from the little-endian bus to the
// big-endian configuration word order (the block's bit-swap function).
#pragma once

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::rvcap_ctrl {

class Axis2Icap : public sim::Component {
 public:
  Axis2Icap(std::string name, axi::AxisFifo& in, sim::Fifo<u32>& icap_port);

  bool tick() override;
  bool busy() const override;

  u64 words_emitted() const { return words_; }

  /// Abort support: drop the buffered half-beat so the next transfer
  /// starts on a fresh 64-bit boundary.
  void reset_stream() {
    have_high_ = false;
    high_word_ = 0;
    wake();
  }

 private:
  static u32 bswap(u32 v) {
    return (v >> 24) | ((v >> 8) & 0xFF00) | ((v << 8) & 0xFF0000) |
           (v << 24);
  }

  axi::AxisFifo& in_;
  sim::Fifo<u32>& out_;
  bool have_high_ = false;
  u32 high_word_ = 0;
  u64 words_ = 0;
};

}  // namespace rvcap::rvcap_ctrl
