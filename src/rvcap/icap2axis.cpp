#include "rvcap/icap2axis.hpp"

namespace rvcap::rvcap_ctrl {

Icap2Axis::Icap2Axis(std::string name, sim::Fifo<u32>& icap_read_port,
                     axi::AxisFifo& out)
    : Component(std::move(name)), in_(icap_read_port), out_(out) {
  in_.watch(this);
  out_.watch(this);
}

bool Icap2Axis::tick() {
  // One 32-bit word per cycle from the port; a beat leaves every two.
  if (gate_ != nullptr && !gate_->select_icap()) return false;
  if (!in_.can_pop()) return false;
  if (!have_low_) {
    low_word_ = bswap(*in_.pop());
    have_low_ = true;
    return true;
  }
  if (!out_.can_push()) return false;  // hold high word until space frees
  const u32 high = bswap(*in_.pop());
  out_.push(axi::AxisBeat{(u64{high} << 32) | low_word_, 0xFF, false});
  ++beats_;
  have_low_ = false;
  return true;
}

bool Icap2Axis::busy() const {
  if (gate_ != nullptr && !gate_->select_icap()) return have_low_;
  return have_low_ || in_.can_pop();
}

}  // namespace rvcap::rvcap_ctrl
