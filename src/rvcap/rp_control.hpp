// RP control interface (Fig. 2 component 3).
//
// The memory-mapped block the driver's decouple_accel()/select_ICAP()
// calls hit: it drives the AXI isolator's decouple input and the
// AXI-Stream switch's select input, and forwards R/W control-register
// accesses to the reconfigurable module when the partition is coupled.
#pragma once

#include <array>
#include <functional>

#include "axi/isolator.hpp"
#include "axi/lite_slave.hpp"
#include "axi/stream_switch.hpp"

namespace rvcap::rvcap_ctrl {

/// Control-register view a reconfigurable module exposes through the RP
/// control interface while coupled.
class RmRegisterFile {
 public:
  virtual ~RmRegisterFile() = default;
  virtual u32 rm_reg_read(u32 index) = 0;
  virtual void rm_reg_write(u32 index, u32 value) = 0;
};

class RpControl : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kControl = 0x00;  // bit0 decouple, bit1 select_ICAP
  static constexpr Addr kStatus = 0x04;
  static constexpr Addr kRmRegBase = 0x10;  // 16 forwarded RM registers
  static constexpr u32 kNumRmRegs = 16;

  static constexpr u32 kCtlDecouple = 1u << 0;
  static constexpr u32 kCtlSelectIcap = 1u << 1;
  static constexpr u32 kCtlDecompress = 1u << 2;
  /// Self-clearing pulse: abort the ICAP-side datapath (flush stream
  /// FIFOs, reset the decompressor/AXIS2ICAP packers, desync the ICAP).
  /// Reads back as 0.
  static constexpr u32 kCtlIcapAbort = 1u << 4;
  static constexpr u32 kStDecoupled = 1u << 0;
  static constexpr u32 kStIcapSelected = 1u << 1;
  static constexpr u32 kStRmActive = 1u << 2;
  static constexpr u32 kStDecompress = 1u << 3;
  /// The ICAP-side datapath (decompressor) still holds in-flight data:
  /// software must not flip routes until this clears.
  static constexpr u32 kStDraining = 1u << 4;

  RpControl(std::string name, axi::AxisIsolator& isolator,
            axi::AxisSwitch& axis_switch);

  /// Wire the optional bitstream decompressor (controlled by bit 2).
  void attach_decompressor(class Decompressor* d) { decomp_ = d; }

  /// Invoked on a kCtlIcapAbort pulse; the controller wires its
  /// datapath-flush routine here.
  void set_abort_hook(std::function<void()> hook) {
    abort_hook_ = std::move(hook);
  }

  /// The SoC wires the active RM's register file here (nullptr while
  /// the partition holds no module).
  void attach_rm(RmRegisterFile* rm, u32 rm_id) {
    rm_ = rm;
    rm_id_ = rm_id;
  }
  void detach_rm() {
    rm_ = nullptr;
    rm_id_ = 0;
  }

  bool decoupled() const { return decouple_; }
  bool icap_selected() const { return select_icap_; }
  u64 blocked_rm_accesses() const { return blocked_accesses_; }

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;

 private:
  axi::AxisIsolator& isolator_;
  axi::AxisSwitch& switch_;
  class Decompressor* decomp_ = nullptr;
  bool decouple_ = false;
  bool select_icap_ = false;
  bool decompress_ = false;
  RmRegisterFile* rm_ = nullptr;
  u32 rm_id_ = 0;
  u64 blocked_accesses_ = 0;
  std::function<void()> abort_hook_;
};

}  // namespace rvcap::rvcap_ctrl
