// ICAP2AXIS converter — the readback mirror of AXIS2ICAP.
//
// Packs pairs of 32-bit FDRO readback words into 64-bit AXI-Stream
// beats toward the DMA's S2MM channel (byte order reversed back to the
// little-endian bus convention, undoing AXIS2ICAP's swap), enabling
// RV-CAP to *read* the configuration memory at DMA rate.
#pragma once

#include "axi/stream_switch.hpp"
#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::rvcap_ctrl {

class Icap2Axis : public sim::Component {
 public:
  Icap2Axis(std::string name, sim::Fifo<u32>& icap_read_port,
            axi::AxisFifo& out);

  /// Only capture from the (shared) ICAP read port while the stream
  /// switch routes the ICAP — otherwise another controller (e.g. the
  /// AXI_HWICAP's read FIFO) owns the readback data. Registers for
  /// select-change wakeups so an un-gating reopens the pipeline.
  void set_gate(axi::AxisSwitch* sw) {
    gate_ = sw;
    if (sw != nullptr) sw->watch_select(this);
  }

  bool tick() override;
  bool busy() const override;

  u64 beats_emitted() const { return beats_; }

 private:
  static u32 bswap(u32 v) {
    return (v >> 24) | ((v >> 8) & 0xFF00) | ((v << 8) & 0xFF0000) |
           (v << 24);
  }

  sim::Fifo<u32>& in_;
  axi::AxisFifo& out_;
  const axi::AxisSwitch* gate_ = nullptr;
  bool have_low_ = false;
  u32 low_word_ = 0;
  u64 beats_ = 0;
};

}  // namespace rvcap::rvcap_ctrl
