// Streaming bitstream decompressor (RT-ICAP-style extension).
//
// Sits between the AXI-Stream switch's ICAP route and the AXIS2ICAP
// converter. In passthrough mode it is a plain wire; with decompression
// enabled (RP-control register bit) it decodes the RVZ0 zero-run /
// literal-run format so the word stream entering the ICAP is identical
// to the uncompressed bitstream. Expansion emits at most one 64-bit
// beat per cycle — the ICAP stays the throughput bound, so compression
// saves storage and DDR fetch bandwidth rather than reconfiguration
// time (quantified in bench_compression).
#pragma once

#include "axi/types.hpp"
#include "bitstream/compress.hpp"
#include "sim/component.hpp"

namespace rvcap::rvcap_ctrl {

class Decompressor : public sim::Component {
 public:
  Decompressor(std::string name, axi::AxisFifo& in, axi::AxisFifo& out);

  void set_enabled(bool e);
  bool enabled() const { return enabled_; }

  bool tick() override;
  bool busy() const override;

  u64 words_in() const { return words_in_; }
  u64 words_out() const { return words_out_; }
  bool format_error() const { return format_error_; }

  /// Abort support: drop buffered half-beats and return the decoder to
  /// its initial state (next stream starts at the magic word again).
  void reset_stream() {
    have_pending_in_ = false;
    pending_in_ = 0;
    saw_last_in_ = false;
    have_pending_out_ = false;
    pending_out_ = 0;
    state_ = State::kMagic;
    run_left_ = 0;
    format_error_ = false;
    wake();
  }

 private:
  static u32 bswap(u32 v) {
    return (v >> 24) | ((v >> 8) & 0xFF00) | ((v << 8) & 0xFF0000) |
           (v << 24);
  }

  /// Pull the next logical (config-byte-order) word from the input
  /// stream; false when no input is available this cycle.
  bool next_input_word(u32* w);
  /// Queue one logical output word; emits a beat every second word.
  void emit_word(u32 w);

  axi::AxisFifo& in_;
  axi::AxisFifo& out_;
  bool enabled_ = false;

  // Input unpacking: one buffered half-beat.
  bool have_pending_in_ = false;
  u32 pending_in_ = 0;
  bool saw_last_in_ = false;  // the DMA marked the final input beat

  // Output packing.
  bool have_pending_out_ = false;
  u32 pending_out_ = 0;

  // Decoder state.
  enum class State { kMagic, kHeader, kLiteral, kZeros };
  State state_ = State::kMagic;
  u32 run_left_ = 0;
  bool format_error_ = false;

  u64 words_in_ = 0;
  u64 words_out_ = 0;
};

}  // namespace rvcap::rvcap_ctrl
