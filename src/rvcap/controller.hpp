// The RV-CAP controller: composite of Fig. 2.
//
// Owns the DMA engine (1), the control-path width/protocol converters
// (2), the RP control interface (3), the AXI-Stream switch (4), the
// AXIS2ICAP converter (5), the PR isolator, and the additional crossbar
// to the DDR controller. The SoC assembly binds:
//   * dma_ctrl_port() and rp_ctrl_port() as subordinates of the main
//     64-bit crossbar (the controller's two CPU-facing interfaces);
//   * main_bus_ddr_port() as the main crossbar's DDR window, routed
//     through the additional crossbar so CPU and DMA share the DDR;
//   * the reconfigurable module's streams behind the isolator.
#pragma once

#include "axi/crossbar.hpp"
#include "axi/isolator.hpp"
#include "axi/lite_bridge.hpp"
#include "axi/stream_switch.hpp"
#include "axi/width_converter.hpp"
#include "axi/wires.hpp"
#include "icap/icap.hpp"
#include "rvcap/axis2icap.hpp"
#include "rvcap/decompressor.hpp"
#include "rvcap/dma.hpp"
#include "rvcap/icap2axis.hpp"
#include "rvcap/rp_control.hpp"
#include "sim/simulator.hpp"

namespace rvcap::rvcap_ctrl {

class RvCapController {
 public:
  /// `ddr_port`: the DDR controller's AXI subordinate port;
  /// `ddr_window`: its address window (shared by CPU and DMA).
  RvCapController(icap::Icap& icap, axi::AxiPort& ddr_port,
                  const axi::AddrRange& ddr_window,
                  const AxiDma::Config& dma_cfg = AxiDma::Config{});

  /// Register every internal component with the simulator, in dataflow
  /// order. Must be called exactly once.
  void register_components(sim::Simulator& sim);

  // ---- main-crossbar-facing subordinate ports ----
  axi::AxiPort& dma_ctrl_port() { return dma_ctrl_conv_.upstream(); }
  axi::AxiPort& rp_ctrl_port() { return rp_ctrl_conv_.upstream(); }
  axi::AxiPort& main_bus_ddr_port() { return main_bus_ddr_port_; }

  // ---- RM-side stream attachment points (behind the isolator) ----
  axi::AxisFifo& rm_input() { return isolator_.out_to_rp(); }
  axi::AxisFifo& rm_output_in() { return isolator_.in_from_rp(); }

  /// Flush every stage of the reconfiguration datapath: stream FIFOs
  /// between DMA and ICAP, the decompressor and AXIS2ICAP packers, and
  /// the ICAP FSM itself. Wired to RpControl's kCtlIcapAbort pulse so
  /// the driver can recover from a failed transfer without stale beats
  /// poisoning the next attempt.
  void abort_datapath();

  AxiDma& dma() { return dma_; }
  RpControl& rp_control() { return rp_ctrl_; }
  axi::AxisSwitch& axis_switch() { return switch_; }
  axi::AxisIsolator& isolator() { return isolator_; }
  Axis2Icap& axis2icap() { return axis2icap_; }
  Icap2Axis& icap2axis() { return icap2axis_; }
  Decompressor& decompressor() { return decomp_; }

 private:
  // Datapath.
  icap::Icap& icap_;
  AxiDma dma_;
  axi::AxisSwitch switch_;
  axi::AxisFifo decomp_out_{4};  // decompressor -> AXIS2ICAP link
  Decompressor decomp_;
  Axis2Icap axis2icap_;
  Icap2Axis icap2axis_;
  axi::AxisIsolator isolator_;
  RpControl rp_ctrl_;

  // DDR side: additional crossbar shared by the CPU path and the DMA.
  axi::AxiPort main_bus_ddr_port_;
  axi::AxiCrossbar ddr_xbar_;

  // Control path: per-interface 64->32 width conversion + AXI4-Lite
  // protocol conversion (Fig. 2 component 2).
  axi::WidthConverter64To32 dma_ctrl_conv_;
  axi::AxiToLiteBridge dma_ctrl_bridge_;
  axi::WidthConverter64To32 rp_ctrl_conv_;
  axi::AxiToLiteBridge rp_ctrl_bridge_;

  // Wires.
  axi::AxiWire w_dma_conv_bridge_;
  axi::LiteWire w_dma_bridge_dev_;
  axi::AxiWire w_rp_conv_bridge_;
  axi::LiteWire w_rp_bridge_dev_;
  axi::AxisWire w_dma_to_switch_;
  axi::AxisWire w_switch_to_iso_;
  axi::AxisWire w_iso_to_switch_;
  axi::AxisWire w_switch_to_dma_;

  bool registered_ = false;
};

}  // namespace rvcap::rvcap_ctrl
