#include "sim/fault_injector.hpp"

#include <algorithm>

namespace rvcap::sim {

namespace fault_sites {

const std::vector<std::string_view>& all() {
  // Lexicographically sorted so fire_report() order matches.
  static const std::vector<std::string_view> kAll = {
      kDmaMm2sEarlyIoc, kDmaMm2sSlvErr, kDmaMm2sStall,
      kIcapCrcCorrupt,  kIcapSyncLoss,  kNetCorrupt,
      kNetDrop,         kNetDup,        kNetReorder,
      kNetServerStall,  kSdReadCrc,     kSdReadToken,
      kSeuUpset,        kStageBitFlip,
  };
  return kAll;
}

bool is_canonical(std::string_view name) {
  const auto& reg = all();
  return std::binary_search(reg.begin(), reg.end(), name);
}

}  // namespace fault_sites

FaultInjector::Site& FaultInjector::site(std::string_view name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    Site s;
    // Independent decision/parameter streams per site, derived from the
    // global seed and the site name so cross-site query interleaving
    // cannot perturb a site's sequence.
    const u64 h = fnv1a(name);
    s.decide = SplitMix64(seed_ ^ h);
    s.aux = SplitMix64(seed_ ^ (h * 0x9E3779B97F4A7C15ULL + 1));
    it = sites_.emplace(std::string(name), s).first;
  }
  return it->second;
}

Status FaultInjector::arm(std::string_view name, const Plan& plan) {
  if (!known(name)) return Status::kNotFound;
  Site& s = site(name);
  s.plan = plan;
  s.armed = true;
  s.fired = 0;
  s.skipped = 0;
  return Status::kOk;
}

void FaultInjector::disarm(std::string_view name) {
  auto it = sites_.find(name);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::disarm_all() {
  for (auto& [name, s] : sites_) s.armed = false;
}

bool FaultInjector::should_fire(std::string_view name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) return false;  // never queried while armed
  Site& s = it->second;
  s.queries++;
  if (!s.armed) return false;
  if (s.plan.count != 0 && s.fired >= s.plan.count) return false;
  if (s.skipped < s.plan.skip) {
    s.skipped++;
    return false;
  }
  bool fire = true;
  if (s.plan.probability < 1.0) fire = s.decide.next_double() < s.plan.probability;
  if (fire) {
    s.fired++;
    s.fires++;
  }
  return fire;
}

u64 FaultInjector::value(std::string_view name, u64 bound) {
  if (bound == 0) return 0;
  return site(name).aux.next_below(bound);
}

u64 FaultInjector::fires(std::string_view name) const {
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fires;
}

u64 FaultInjector::queries(std::string_view name) const {
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.queries;
}

u64 FaultInjector::total_fires() const {
  u64 n = 0;
  for (const auto& [name, s] : sites_) n += s.fires;
  return n;
}

std::vector<std::pair<std::string, u64>> FaultInjector::fire_report() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(sites_.size());
  for (const auto& [name, s] : sites_) out.emplace_back(name, s.fires);
  return out;
}

}  // namespace rvcap::sim
