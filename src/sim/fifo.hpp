// Bounded FIFO channel — the hardware-handshake primitive of the model.
//
// Every valid/ready interface in the SoC (AXI channels, AXI-Stream links,
// the ICAP input port, HWICAP's write FIFO) is modelled as a bounded
// Fifo<T>. A producer that finds the FIFO full must retry next cycle,
// which is exactly AXI back-pressure; a consumer draining at most one
// element per tick models a 1-beat-per-cycle port. Throughput therefore
// emerges from structure, not from annotated delays.
#pragma once

#include <cassert>
#include <deque>
#include <optional>
#include <utility>

#include "common/types.hpp"

namespace rvcap::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(usize capacity) : capacity_(capacity) { assert(capacity_ > 0); }

  bool can_push() const { return q_.size() < capacity_; }
  bool can_pop() const { return !q_.empty(); }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= capacity_; }
  usize size() const { return q_.size(); }
  usize capacity() const { return capacity_; }
  usize vacancy() const { return capacity_ - q_.size(); }

  /// Push; returns false (and drops nothing) when full.
  bool push(T v) {
    if (full()) return false;
    q_.push_back(std::move(v));
    ++pushed_;
    return true;
  }

  /// Peek the head without consuming; nullptr when empty.
  const T* front() const { return q_.empty() ? nullptr : &q_.front(); }

  /// Pop the head; std::nullopt when empty.
  std::optional<T> pop() {
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    ++popped_;
    return v;
  }

  void clear() { q_.clear(); }

  /// Lifetime counters (used by tests and throughput probes).
  u64 total_pushed() const { return pushed_; }
  u64 total_popped() const { return popped_; }

 private:
  usize capacity_;
  std::deque<T> q_;
  u64 pushed_ = 0;
  u64 popped_ = 0;
};

}  // namespace rvcap::sim
