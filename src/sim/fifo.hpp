// Bounded FIFO channel — the hardware-handshake primitive of the model.
//
// Every valid/ready interface in the SoC (AXI channels, AXI-Stream links,
// the ICAP input port, HWICAP's write FIFO) is modelled as a bounded
// Fifo<T>. A producer that finds the FIFO full must retry next cycle,
// which is exactly AXI back-pressure; a consumer draining at most one
// element per tick models a 1-beat-per-cycle port. Throughput therefore
// emerges from structure, not from annotated delays.
//
// The FIFO doubles as the kernel's wake source: components register via
// watch(), and every successful push, successful pop, and clear
// re-activates all watchers. A push wakes the sleeping consumer the
// cycle data arrives; a pop wakes a producer that went to sleep on
// back-pressure. Watchers include the endpoint that caused the event —
// a self-wake is harmless (its next tick either makes progress or
// returns false and re-sleeps).
#pragma once

#include <cassert>
#include <deque>
#include <optional>
#include <utility>

#include "common/types.hpp"
#include "sim/component.hpp"

namespace rvcap::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(usize capacity) : capacity_(capacity) { assert(capacity_ > 0); }

  bool can_push() const { return q_.size() < capacity_; }
  bool can_pop() const { return !q_.empty(); }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= capacity_; }
  usize size() const { return q_.size(); }
  usize capacity() const { return capacity_; }
  usize vacancy() const { return capacity_ - q_.size(); }

  /// Register a component to be re-activated whenever this FIFO's
  /// state changes. Every component must watch every FIFO its tick
  /// reads OR writes (see the activity contract in component.hpp).
  void watch(Component* c) { watchers_.add(c); }

  /// Push; returns false (and drops nothing) when full.
  bool push(T v) {
    if (full()) return false;
    q_.push_back(std::move(v));
    ++pushed_;
    if (q_.size() > hwm_) hwm_ = q_.size();
    watchers_.notify();
    return true;
  }

  /// Peek the head without consuming; nullptr when empty.
  const T* front() const { return q_.empty() ? nullptr : &q_.front(); }

  /// Mutable tail access — fault models corrupt a just-pushed element
  /// in place (payload only; occupancy and counters are untouched, so
  /// no watcher notification is needed).
  T* back() { return q_.empty() ? nullptr : &q_.back(); }

  /// Pop the head; std::nullopt when empty.
  std::optional<T> pop() {
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    ++popped_;
    watchers_.notify();
    return v;
  }

  void clear() {
    q_.clear();
    watchers_.notify();
  }

  /// Lifetime counters (used by tests and link probes).
  u64 total_pushed() const { return pushed_; }
  u64 total_popped() const { return popped_; }
  /// Deepest occupancy ever reached (obs/ high-water counters).
  usize high_water() const { return hwm_; }

 private:
  usize capacity_;
  std::deque<T> q_;
  WakeList watchers_;
  u64 pushed_ = 0;
  u64 popped_ = 0;
  usize hwm_ = 0;
};

}  // namespace rvcap::sim
