// Base class for clocked hardware components.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace rvcap::sim {

/// A clocked component. The Simulator calls tick() exactly once per core
/// clock cycle, in registration order. Components communicate only
/// through Fifo channels, so the (deterministic) tick order introduces at
/// most one cycle of skew on any link — negligible at the 10^5-cycle
/// scale of the paper's measurements and fully reproducible.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advance one core-clock cycle.
  virtual void tick() = 0;

  /// True while the component has unfinished internal work. The
  /// simulator's run_until_idle() uses this to detect quiescence.
  virtual bool busy() const { return false; }

  std::string_view name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace rvcap::sim
