// Base class for clocked hardware components, plus the activity
// contract of the quiescence-aware kernel (DESIGN.md §9).
//
// A component's tick() now reports whether it made progress. The
// scheduled kernel uses that to let quiescent components sleep; wake
// sources (Fifo, ConfigMemory, AxisSwitch — anything a sleeping
// component's next tick could observe) re-activate them through
// Component::wake(). The contract that makes sleeping sound:
//
//   * tick() returns true iff it changed any observable state (moved a
//     beat, advanced a counter, latched a register). A false-returning
//     tick would stay a no-op if re-run, until an external event fires.
//   * A component registers itself (via Fifo::watch etc.) on EVERY
//     channel its tick reads or writes — its own and its neighbours'.
//     Spurious wakes are harmless (the extra tick changes nothing);
//     missing wakes are bugs (the component sleeps through work).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rvcap::obs {
class Observability;
class TraceSink;
}  // namespace rvcap::obs

namespace rvcap::sim {

class Component;
class Simulator;

/// Fixed-capacity list of components to re-activate on an event.
/// Channel primitives embed one. Capacity covers the widest fan-out in
/// the SoC; overflow asserts instead of silently dropping a watcher
/// (a dropped watcher would sleep through its wake and diverge).
class WakeList {
 public:
  static constexpr usize kCapacity = 8;

  void add(Component* c) {
    for (usize i = 0; i < count_; ++i) {
      if (watchers_[i] == c) return;  // idempotent
    }
    assert(count_ < kCapacity && "WakeList overflow: raise kCapacity");
    watchers_[count_++] = c;
  }

  inline void notify() const;  // defined after Component

 private:
  Component* watchers_[kCapacity] = {};
  usize count_ = 0;
};

/// Dense bitset over component slots — the scheduled kernel's active
/// set. Scanned word-by-word in ascending slot order so the intra-cycle
/// tick order is exactly registration order, as in the flat loop.
class ActiveSet {
 public:
  void resize(usize bits) { words_.resize((bits + 63) / 64, 0); }

  /// Set bit i; returns true when it was previously clear.
  bool set(usize i) {
    u64& w = words_[i >> 6];
    const u64 m = u64{1} << (i & 63);
    if ((w & m) != 0) return false;
    w |= m;
    return true;
  }

  bool test(usize i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  bool none() const {
    for (const u64 w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  std::vector<u64>& words() { return words_; }
  const std::vector<u64>& words() const { return words_; }

 private:
  std::vector<u64> words_;
};

/// Kernel state shared between the Simulator and every registered
/// component, so Component::wake() is a couple of inline instructions.
struct KernelHooks {
  ActiveSet active;
  u64 wakeups = 0;          // sleep -> active transitions
  usize sleeping_busy = 0;  // sleepers whose busy() was true at sleep
};

/// A clocked component. The Simulator calls tick() at most once per
/// core clock cycle, in registration order. Components communicate only
/// through Fifo channels, so the (deterministic) tick order introduces
/// at most one cycle of skew on any link — negligible at the 10^5-cycle
/// scale of the paper's measurements and fully reproducible.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advance one core-clock cycle. Returns whether the tick made
  /// progress (see the activity contract above). The flat kernel
  /// ignores the return value; the scheduled kernel parks the
  /// component after a false return until something wakes it.
  virtual bool tick() = 0;

  /// True while the component has unfinished internal work. The
  /// simulator's run_until_idle() uses this to detect quiescence.
  virtual bool busy() const { return false; }

  std::string_view name() const { return name_; }

  /// Re-activate this component. If its tick turn for the current
  /// cycle has not passed yet it runs this cycle, otherwise next
  /// cycle — exactly when the flat loop would have it observe the
  /// event. No-op before registration; waking an awake component is
  /// free.
  void wake() {
    if (hooks_ == nullptr) return;
    if (!hooks_->active.set(slot_)) return;
    ++hooks_->wakeups;
    if (sleeping_busy_) {
      sleeping_busy_ = false;
      --hooks_->sleeping_busy;
    }
  }

  /// Idle-until hint: schedule a wake at absolute cycle t (no-op
  /// before registration; t <= now wakes immediately).
  void wake_at(Cycles t);

  /// Current simulation time, readable from inside tick(). 0 before
  /// registration with a Simulator.
  Cycles sim_now() const { return now_ptr_ != nullptr ? *now_ptr_ : 0; }

  /// Observability hook, called once from Simulator::add(). Override
  /// to register counters/histograms and cache histogram handles.
  /// Trace emission does NOT require overriding this: trace_sink() and
  /// trace_src() are wired by add() itself.
  virtual void on_register(obs::Observability& o) { (void)o; }

 protected:
  /// The simulator's event sink (nullptr before registration) and this
  /// component's interned source id — the two arguments RVCAP_TRACE
  /// call sites pass.
  obs::TraceSink* trace_sink() const { return trace_sink_; }
  u16 trace_src() const { return trace_src_; }
  obs::Observability* observability() const { return obs_; }

 private:
  friend class Simulator;

  std::string name_;
  KernelHooks* hooks_ = nullptr;    // set by Simulator::add()
  const Cycles* now_ptr_ = nullptr;
  Simulator* sim_ = nullptr;
  obs::Observability* obs_ = nullptr;
  obs::TraceSink* trace_sink_ = nullptr;
  u16 trace_src_ = 0;
  u32 slot_ = 0;
  bool sleeping_busy_ = false;
};

inline void WakeList::notify() const {
  for (usize i = 0; i < count_; ++i) watchers_[i]->wake();
}

}  // namespace rvcap::sim
