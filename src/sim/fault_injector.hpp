// Deterministic fault-injection framework.
//
// Safe DPR (Di Carlo et al., §II) means surviving the failures the
// field actually produces: SD transfer glitches, AXI error responses,
// DMA engines that stall or signal completion early, ICAP sync loss,
// and bit flips in staged bitstreams. Each instrumented component
// queries a named *site* on a central FaultInjector; a site fires
// according to an armed plan (trigger count, probability, skip) driven
// by a per-site SplitMix64 stream seeded from (global seed, site name).
// Because every site owns its stream, the decision sequence at one site
// is independent of query interleaving at the others, so any failure
// scenario is reproducible from a single seed.
//
// Components hold a nullable FaultInjector*; the null check is the only
// cost on the fault-free path. Unarmed sites never fire.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace rvcap::sim {

/// Canonical site names (components pass these to should_fire()).
namespace fault_sites {
/// SD card swallows the 0xFE start token of a single-block read.
inline constexpr std::string_view kSdReadToken = "sd.read.token";
/// SD card corrupts the CRC16 trailing a read data block.
inline constexpr std::string_view kSdReadCrc = "sd.read.crc";
/// AXI DMA MM2S aborts mid-transfer with a SLVERR-style error.
inline constexpr std::string_view kDmaMm2sSlvErr = "dma.mm2s.slverr";
/// AXI DMA MM2S engine wedges (never completes, never errors).
inline constexpr std::string_view kDmaMm2sStall = "dma.mm2s.stall";
/// AXI DMA MM2S raises IOC before the full length streamed.
inline constexpr std::string_view kDmaMm2sEarlyIoc = "dma.mm2s.early_ioc";
/// ICAP drops sync mid-bitstream (remaining words ignored).
inline constexpr std::string_view kIcapSyncLoss = "icap.sync_loss";
/// One configuration word is corrupted at the ICAP port (CRC check
/// at the end of the pass then fails).
inline constexpr std::string_view kIcapCrcCorrupt = "icap.crc";
/// One bit of a freshly staged DDR bitstream copy flips.
inline constexpr std::string_view kStageBitFlip = "stage.bitflip";
/// Radiation-induced configuration-memory upset (fabric::SeuProcess
/// consumes this site's streams for event gating, Poisson spacing and
/// target selection; arm it to switch the background process on).
inline constexpr std::string_view kSeuUpset = "seu.upset";
/// Network link loses a frame in flight.
inline constexpr std::string_view kNetDrop = "net.link.drop";
/// Network link delivers a frame twice.
inline constexpr std::string_view kNetDup = "net.link.dup";
/// Network link delays a frame past a later one.
inline constexpr std::string_view kNetReorder = "net.link.reorder";
/// Network link flips one payload bit of a data frame.
inline constexpr std::string_view kNetCorrupt = "net.link.corrupt";
/// Bitstream server swallows a request (client sees a timeout).
inline constexpr std::string_view kNetServerStall = "net.server.stall";

/// Every canonical site name, lexicographically sorted. FaultInjector
/// arms only names from this registry (or names declared at runtime
/// via declare_site), so a typo'd site string is a hard error instead
/// of a silently armed no-op that never fires.
const std::vector<std::string_view>& all();
/// True when `name` is in the canonical registry above.
bool is_canonical(std::string_view name);
}  // namespace fault_sites

class FaultInjector {
 public:
  /// How an armed site decides to fire.
  struct Plan {
    u32 count = 1;            // max fires; 0 = unlimited
    double probability = 1.0; // chance per eligible query
    u32 skip = 0;             // let this many queries pass first
  };

  explicit FaultInjector(u64 seed = 1) : seed_(seed) {}

  /// Drop every site and restart all decision streams from `seed`.
  void reseed(u64 seed) {
    seed_ = seed;
    sites_.clear();
  }
  u64 seed() const { return seed_; }

  /// Register a non-canonical site name (component-local or test-only)
  /// so arm() accepts it. Declarations survive reseed().
  void declare_site(std::string_view name) {
    declared_.emplace(name);
  }

  /// Arm `name`. Returns Status::kNotFound — and arms nothing — when
  /// the name is neither canonical (fault_sites::all()) nor declared;
  /// a typo'd site string is a hard error, not a silent no-op.
  Status arm(std::string_view name, const Plan& plan);
  Status arm(std::string_view name, u32 count, double probability = 1.0,
             u32 skip = 0) {
    return arm(name, Plan{count, probability, skip});
  }
  void disarm(std::string_view name);
  /// Disarm every site (streams and counters survive for reporting).
  void disarm_all();
  /// True when `name` would be accepted by arm().
  bool known(std::string_view name) const {
    return fault_sites::is_canonical(name) || declared_.count(name) != 0;
  }

  /// One injection decision at `name`. Consumes one step of the site's
  /// decision stream per eligible query; unarmed sites never fire and
  /// cost one map lookup.
  bool should_fire(std::string_view name);

  /// Deterministic auxiliary value in [0, bound) from the site's
  /// parameter stream (which bit to flip, which beat to abort on...).
  u64 value(std::string_view name, u64 bound);

  u64 fires(std::string_view name) const;
  u64 queries(std::string_view name) const;
  u64 total_fires() const;

  /// (site, fires) pairs in lexicographic site order — a deterministic
  /// digest for same-seed reproducibility checks.
  std::vector<std::pair<std::string, u64>> fire_report() const;

 private:
  struct Site {
    Plan plan{};
    bool armed = false;
    u32 fired = 0;       // fires against the current plan
    u32 skipped = 0;     // queries skipped against the current plan
    u64 queries = 0;     // lifetime
    u64 fires = 0;       // lifetime
    SplitMix64 decide{0};
    SplitMix64 aux{0};
  };

  static u64 fnv1a(std::string_view s) {
    u64 h = 0xCBF29CE484222325ULL;
    for (const char c : s) {
      h ^= static_cast<u8>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  Site& site(std::string_view name);

  u64 seed_;
  std::map<std::string, Site, std::less<>> sites_;
  std::set<std::string, std::less<>> declared_;
};

}  // namespace rvcap::sim
