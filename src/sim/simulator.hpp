// Cycle-stepped simulation kernel, in two interchangeable flavours.
//
// Mode::kFlat is the original loop: tick every registered component
// every cycle, in registration order. Mode::kScheduled (the default)
// is the quiescence-aware kernel: only components in the active set
// tick; a component whose tick() reports no progress is parked until a
// watched channel event or a scheduled wake re-activates it, and when
// the active set empties the clock jumps straight to the next scheduled
// wake. Both kernels are cycle-for-cycle equivalent by construction —
// a skipped tick is one that would have been a no-op — and the
// kernel-equivalence test suite holds them to that (DESIGN.md §9).
#pragma once

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "obs/observability.hpp"
#include "sim/component.hpp"

namespace rvcap::sim {

/// Work-avoidance counters of the kernel (Simulator::stats()). The
/// speedup is observable here, not inferred: ticks_skipped counts the
/// component-ticks the flat loop would have executed that the
/// scheduled kernel proved unnecessary.
struct SimStats {
  u64 ticks_issued = 0;     // component ticks actually executed
  u64 ticks_skipped = 0;    // ticks avoided (sleepers + skipped cycles)
  u64 wakeups = 0;          // sleep -> active transitions
  u64 time_skip_jumps = 0;  // multi-cycle fast-forwards
  u64 cycles_skipped = 0;   // cycles no component ticked in
};

class Simulator {
 public:
  enum class Mode : u8 {
    kFlat,       // tick everything, always (reference kernel)
    kScheduled,  // activity-scheduled kernel (default)
  };

  explicit Simulator(Mode mode = Mode::kScheduled) : mode_(mode) {
    // The kernel's own work-avoidance counters live at stable indices
    // 0..4 of every registry (no SoC component registers earlier).
    obs_.counters().register_fn("sim.ticks_issued",
                                [this] { return stats_.ticks_issued; });
    obs_.counters().register_fn("sim.ticks_skipped",
                                [this] { return stats_.ticks_skipped; });
    obs_.counters().register_fn("sim.wakeups",
                                [this] { return hooks_.wakeups; });
    obs_.counters().register_fn("sim.time_skip_jumps",
                                [this] { return stats_.time_skip_jumps; });
    obs_.counters().register_fn("sim.cycles_skipped",
                                [this] { return stats_.cycles_skipped; });
  }

  /// Register a component. The simulator does NOT own components; the
  /// SoC assembly owns them and registers in dataflow order. Newly
  /// added components start active.
  void add(Component* c) {
    c->hooks_ = &hooks_;
    c->now_ptr_ = &now_;
    c->sim_ = this;
    c->slot_ = static_cast<u32>(components_.size());
    c->sleeping_busy_ = false;
    c->obs_ = &obs_;
    c->trace_sink_ = &obs_.sink();
    c->trace_src_ = obs_.sink().intern(c->name_);
    components_.push_back(c);
    hooks_.active.resize(components_.size());
    hooks_.active.set(c->slot_);
    c->on_register(obs_);
  }

  /// The per-simulation observability bundle (trace sink + counters).
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  /// Current simulation time in core-clock cycles.
  Cycles now() const { return now_; }

  Mode mode() const { return mode_; }

  /// Switch kernels mid-run. Always safe: every component is
  /// re-activated, so the scheduled kernel re-derives quiescence
  /// itself on the next step.
  void set_mode(Mode m) {
    mode_ = m;
    wake_all();
  }

  /// Advance exactly n cycles. The scheduled kernel may cover an idle
  /// stretch in one jump to the next scheduled wake, but time and
  /// component state land exactly where the flat loop would put them.
  void run_cycles(Cycles n) {
    const Cycles end = now_ + n;
    if (mode_ == Mode::kFlat) {
      while (now_ < end) step_flat();
      return;
    }
    while (now_ < end) {
      service_wheel();
      if (hooks_.active.none()) {
        const Cycles target = std::min(end, next_wake_at());
        if (target > now_) {
          const Cycles jumped = target - now_;
          stats_.cycles_skipped += jumped;
          stats_.ticks_skipped += components_.size() * jumped;
          ++stats_.time_skip_jumps;
          now_ = target;
        }
        continue;  // re-service the wheel at the new time
      }
      step_scheduled();
    }
  }

  /// Advance until pred() is true, up to max_cycles more cycles.
  /// Returns true when the predicate fired, false on cycle budget
  /// exhaustion (a watchdog against deadlocked handshakes). The
  /// budget is anchored at entry — before the first pred() call — so
  /// an initially-true predicate consumes none of it and a false one
  /// gets exactly max_cycles, in either kernel mode. The predicate is
  /// evaluated once per cycle at the same cycle boundaries as the flat
  /// loop; the scheduled kernel never jumps time here, because pred()
  /// may be time-dependent.
  bool run_until(const std::function<bool()>& pred,
                 Cycles max_cycles = kDefaultWatchdog) {
    const Cycles end = now_ + max_cycles;
    while (!pred()) {
      if (now_ >= end) return false;
      step();
    }
    return true;
  }

  /// Advance until the design is quiescent, up to max_cycles.
  bool run_until_idle(Cycles max_cycles = kDefaultWatchdog) {
    return run_until([this] { return all_idle(); }, max_cycles);
  }

  /// Advance one cycle (mode-aware; never jumps time).
  void step() {
    if (mode_ == Mode::kFlat) {
      step_flat();
      return;
    }
    service_wheel();
    if (hooks_.active.none()) {
      // Tickless cycle: nothing can change, only time advances.
      stats_.ticks_skipped += components_.size();
      ++stats_.cycles_skipped;
      ++now_;
      return;
    }
    step_scheduled();
  }

  /// Quiescence check. A sleeping component's busy() inputs are frozen
  /// (any mutation would have woken it), so its busy() was sampled once
  /// when it went to sleep; only active components need a live scan.
  /// In flat mode every bit stays set, making this the original linear
  /// scan.
  bool all_idle() const {
    if (hooks_.sleeping_busy > 0) return false;
    const auto& words = hooks_.active.words();
    for (usize w = 0; w < words.size(); ++w) {
      u64 pend = words[w];
      while (pend != 0) {
        const u32 bit = static_cast<u32>(std::countr_zero(pend));
        pend &= pend - 1;
        if (components_[w * 64 + bit]->busy()) return false;
      }
    }
    return true;
  }

  usize component_count() const { return components_.size(); }

  SimStats stats() const {
    SimStats s = stats_;
    s.wakeups = hooks_.wakeups;
    return s;
  }

  void reset_stats() {
    stats_ = SimStats{};
    hooks_.wakeups = 0;
  }

  static constexpr Cycles kDefaultWatchdog = 500'000'000;

 private:
  friend class Component;

  struct Wake {
    Cycles at;
    u32 slot;
    bool operator>(const Wake& o) const { return at > o.at; }
  };

  void schedule_wake(u32 slot, Cycles t) {
    if (t <= now_) {
      components_[slot]->wake();
      return;
    }
    wheel_.push(Wake{t, slot});
  }

  Cycles next_wake_at() const {
    return wheel_.empty() ? std::numeric_limits<Cycles>::max()
                          : wheel_.top().at;
  }

  void service_wheel() {
    while (!wheel_.empty() && wheel_.top().at <= now_) {
      components_[wheel_.top().slot]->wake();
      wheel_.pop();
    }
  }

  void wake_all() {
    for (Component* c : components_) {
      hooks_.active.set(c->slot_);
      c->sleeping_busy_ = false;
    }
    hooks_.sleeping_busy = 0;
  }

  void step_flat() {
    for (Component* c : components_) {
      ++stats_.ticks_issued;
      // Keep the active set conservatively fresh so a later switch to
      // the scheduled kernel starts from a safe state. Bits are never
      // cleared in flat mode.
      if (c->tick()) hooks_.active.set(c->slot_);
    }
    ++now_;
  }

  void step_scheduled() {
    auto& words = hooks_.active.words();
    u64 executed = 0;
    for (usize w = 0; w < words.size(); ++w) {
      u64 pend = words[w];
      while (pend != 0) {
        const u32 bit = static_cast<u32>(std::countr_zero(pend));
        const u64 mask = u64{1} << bit;
        words[w] &= ~mask;  // consume the activation
        Component* c = components_[w * 64 + bit];
        ++executed;
        if (c->tick()) {
          // Progress: stays active next cycle.
          words[w] |= mask;
        } else if ((words[w] & mask) == 0 && !c->sleeping_busy_ &&
                   c->busy()) {
          // Going to sleep while busy (e.g. stalled on back-pressure):
          // record it so all_idle() stays exact without waking it.
          c->sleeping_busy_ = true;
          ++hooks_.sleeping_busy;
        }
        // Wakes raised during this tick target the rest of THIS cycle
        // only for slots after the current one; slots at or before it
        // (including self-wakes) run next cycle — exactly the
        // observation order of the flat loop.
        pend = (bit == 63) ? 0 : (words[w] & ~((mask << 1) - 1));
      }
    }
    stats_.ticks_issued += executed;
    stats_.ticks_skipped += components_.size() - executed;
    ++now_;
  }

  std::vector<Component*> components_;
  obs::Observability obs_;
  KernelHooks hooks_;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<Wake>> wheel_;
  SimStats stats_;
  Cycles now_ = 0;
  Mode mode_;
};

}  // namespace rvcap::sim
