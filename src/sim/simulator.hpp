// Cycle-stepped simulation kernel.
//
// A deliberately simple kernel: one global 100 MHz clock, components
// ticked in registration order. The paper's measurements span 10^3..10^7
// cycles, so a flat tick loop is both fast enough (tens of millions of
// component-ticks per second) and easier to validate than a
// discrete-event queue.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "sim/component.hpp"

namespace rvcap::sim {

class Simulator {
 public:
  Simulator() = default;

  /// Register a component. The simulator does NOT own components; the
  /// SoC assembly owns them and registers in dataflow order.
  void add(Component* c) { components_.push_back(c); }

  /// Current simulation time in core-clock cycles.
  Cycles now() const { return now_; }

  /// Advance exactly n cycles.
  void run_cycles(Cycles n) {
    const Cycles end = now_ + n;
    while (now_ < end) step();
  }

  /// Advance until pred() is true, up to max_cycles more cycles.
  /// Returns true when the predicate fired, false on cycle budget
  /// exhaustion (a watchdog against deadlocked handshakes).
  bool run_until(const std::function<bool()>& pred,
                 Cycles max_cycles = kDefaultWatchdog) {
    const Cycles end = now_ + max_cycles;
    while (!pred()) {
      if (now_ >= end) return false;
      step();
    }
    return true;
  }

  /// Advance until every component reports !busy(), up to max_cycles.
  bool run_until_idle(Cycles max_cycles = kDefaultWatchdog) {
    return run_until([this] { return all_idle(); }, max_cycles);
  }

  /// Advance one cycle: tick every component once.
  void step() {
    for (Component* c : components_) c->tick();
    ++now_;
  }

  bool all_idle() const {
    for (const Component* c : components_)
      if (c->busy()) return false;
    return true;
  }

  usize component_count() const { return components_.size(); }

  static constexpr Cycles kDefaultWatchdog = 500'000'000;

 private:
  std::vector<Component*> components_;
  Cycles now_ = 0;
};

}  // namespace rvcap::sim
