// Measurement probes: non-intrusive utilization counters over FIFO
// links.
//
// A probe samples a Fifo's lifetime push counter each cycle and tracks
// transfer activity over a window, giving benches link-utilization
// numbers (e.g. "the ICAP port was busy 99.4% of the transfer") without
// touching the components themselves.
#pragma once

#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace rvcap::sim {

template <typename T>
class ThroughputProbe : public Component {
 public:
  ThroughputProbe(std::string name, const Fifo<T>& link)
      : Component(std::move(name)), link_(link),
        last_count_(link.total_popped()) {}

  void tick() override {
    ++cycles_;
    const u64 now = link_.total_popped();
    if (now != last_count_) {
      transfers_ += now - last_count_;
      ++active_cycles_;
      last_count_ = now;
    }
  }

  /// Restart the measurement window.
  void reset() {
    cycles_ = 0;
    active_cycles_ = 0;
    transfers_ = 0;
    last_count_ = link_.total_popped();
  }

  Cycles window_cycles() const { return cycles_; }
  u64 transfers() const { return transfers_; }

  /// Fraction of cycles with at least one transfer, 0..1.
  double utilization() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(active_cycles_) / cycles_;
  }
  /// Average transfers per cycle over the window.
  double rate() const {
    return cycles_ == 0 ? 0.0 : static_cast<double>(transfers_) / cycles_;
  }

 private:
  const Fifo<T>& link_;
  u64 last_count_;
  Cycles cycles_ = 0;
  Cycles active_cycles_ = 0;
  u64 transfers_ = 0;
};

}  // namespace rvcap::sim
