// Measurement probes: non-intrusive utilization counters over FIFO
// links.
//
// A probe watches a Fifo and samples its lifetime pop counter, giving
// benches link-utilization numbers (e.g. "the ICAP port was busy 99.4%
// of the transfer") without touching the components themselves. The
// probe is quiescence-friendly: it only ticks on cycles following link
// activity (every pop wakes it), and derives the window length from
// simulation time instead of counting its own ticks — so flat and
// scheduled kernels report identical numbers.
#pragma once

#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace rvcap::sim {

template <typename T>
class ThroughputProbe : public Component {
 public:
  ThroughputProbe(std::string name, Fifo<T>& link)
      : Component(std::move(name)), link_(link),
        last_count_(link.total_popped()) {
    link_.watch(this);
  }

  bool tick() override {
    const u64 count = link_.total_popped();
    if (count != last_count_) {
      transfers_ += count - last_count_;
      ++active_cycles_;
      last_count_ = count;
    }
    // Observational only: never keeps the simulation awake.
    return false;
  }

  /// Restart the measurement window.
  void reset() {
    window_start_ = sim_now();
    active_cycles_ = 0;
    transfers_ = 0;
    last_count_ = link_.total_popped();
  }

  Cycles window_cycles() const { return sim_now() - window_start_; }
  u64 transfers() const { return transfers_; }

  /// Fraction of cycles with at least one transfer, 0..1.
  double utilization() const {
    const Cycles w = window_cycles();
    return w == 0 ? 0.0 : static_cast<double>(active_cycles_) / w;
  }
  /// Average transfers per cycle over the window.
  double rate() const {
    const Cycles w = window_cycles();
    return w == 0 ? 0.0 : static_cast<double>(transfers_) / w;
  }

 private:
  Fifo<T>& link_;
  u64 last_count_;
  Cycles window_start_ = 0;
  Cycles active_cycles_ = 0;
  u64 transfers_ = 0;
};

}  // namespace rvcap::sim
