#include "sim/simulator.hpp"

namespace rvcap::sim {

// Out-of-line: component.hpp only forward-declares Simulator, keeping
// the hot wake() path header-inline without an include cycle.
void Component::wake_at(Cycles t) {
  if (sim_ == nullptr) return;
  sim_->schedule_wake(slot_, t);
}

}  // namespace rvcap::sim
