// Intentionally header-only kernel; this TU anchors the library target.
#include "sim/simulator.hpp"

namespace rvcap::sim {
// No out-of-line definitions: Simulator is header-only for inlining in
// the hot tick loop.
}  // namespace rvcap::sim
