#include "icap/icap.hpp"

#include "common/log.hpp"
#include "obs/observability.hpp"

namespace rvcap::icap {

using bitstream::Cmd;
using bitstream::ConfigReg;
using bitstream::decode_packet;
using bitstream::PacketHeader;
using bitstream::PacketOp;

Icap::Icap(std::string name, fabric::ConfigMemory& cfg)
    : Component(std::move(name)), cfg_(cfg) {
  frame_buf_.reserve(fabric::kFrameWords);
  in_.watch(this);     // words arriving on the write port
  rdata_.watch(this);  // reader draining the readback FIFO
}

void Icap::on_register(obs::Observability& o) {
  const std::string prefix(name());
  obs::CounterRegistry& c = o.counters();
  c.register_fn(prefix + ".words", [this] { return words_; });
  c.register_fn(prefix + ".frames", [this] { return frames_committed_; });
  c.register_fn(prefix + ".readback_words",
                [this] { return words_read_back_; });
  c.register_fn(prefix + ".desyncs", [this] { return desyncs_; });
  c.register_fn(prefix + ".port_hwm",
                [this] { return static_cast<u64>(in_.high_water()); });
}

bool Icap::tick() {
  // Half-duplex 32-bit port: while a readback drains, input stalls.
  if (read_words_left_ > 0) {
    return emit_read_word();
  }
  // One 32-bit word per cycle: the 400 MB/s physical ceiling.
  if (auto w = in_.pop()) {
    ++words_;
    RVCAP_TRACE(trace_sink(), obs::EventKind::kIcapWord, trace_src(),
                sim_now(), *w);
    consume(*w);
    return true;
  }
  return false;
}

bool Icap::busy() const { return in_.can_pop() || read_words_left_ > 0; }

void Icap::abort() {
  in_.clear();
  rdata_.clear();
  read_words_left_ = 0;
  read_word_in_frame_ = 0;
  state_ = State::kUnsynced;
  cur_reg_ = 0;
  payload_left_ = 0;
  fdri_pending_type2_ = false;
  fdro_pending_type2_ = false;
  frame_buf_.clear();
  crc_.reset();
  wcfg_ = false;
  clear_errors();
}

void Icap::start_readback(u32 words) {
  read_words_left_ = words;
  read_word_in_frame_ = 0;
}

bool Icap::emit_read_word() {
  if (!rdata_.can_push()) return false;  // reader back-pressure
  const fabric::FrameAddr fa = fabric::FrameAddr::decode(far_);
  const std::vector<u32>* frame = cfg_.frame(fa);
  const u32 word = (frame != nullptr && read_word_in_frame_ < frame->size())
                       ? (*frame)[read_word_in_frame_]
                       : 0;  // unwritten frames read back as zeros
  rdata_.push(word);
  ++words_read_back_;
  RVCAP_TRACE(trace_sink(), obs::EventKind::kIcapReadWord, trace_src(),
              sim_now(), word);
  if (++read_word_in_frame_ == fabric::kFrameWords) {
    read_word_in_frame_ = 0;
    fabric::FrameAddr next = fa;
    if (cfg_.device().next_frame(&next)) far_ = next.encode();
  }
  --read_words_left_;
  return true;
}

void Icap::consume(u32 word) {
  if (fault_ != nullptr && state_ != State::kUnsynced) {
    namespace fs = sim::fault_sites;
    if (fault_->should_fire(fs::kIcapSyncLoss)) {
      // Injected sync loss: the FSM falls out of sync and swallows
      // this and every following word until the next sync sequence.
      state_ = State::kUnsynced;
      cur_reg_ = 0;
      payload_left_ = 0;
      fdri_pending_type2_ = false;
      fdro_pending_type2_ = false;
      frame_buf_.clear();
      wcfg_ = false;
      return;
    }
    if ((state_ == State::kType1Data || state_ == State::kType2Data) &&
        fault_->should_fire(fs::kIcapCrcCorrupt)) {
      // Injected single-bit upset on the 32-bit write port; the
      // bitstream's trailing CRC check catches the divergence.
      word ^= 1u << fault_->value(fs::kIcapCrcCorrupt, 32);
    }
  }
  switch (state_) {
    case State::kUnsynced:
      if (word == bitstream::kSyncWord) state_ = State::kSynced;
      return;

    case State::kSynced: {
      const PacketHeader h = decode_packet(word);
      if (h.type == 1) {
        if (h.op == PacketOp::kNop) return;
        if (h.op == PacketOp::kRead) {
          // FDRO readback request (other registers read as no-ops).
          if (h.reg == static_cast<u32>(ConfigReg::kFdro)) {
            if (h.count == 0) {
              fdro_pending_type2_ = true;
            } else {
              start_readback(h.count);
            }
          }
          return;
        }
        if (h.op != PacketOp::kWrite) return;
        cur_reg_ = h.reg;
        payload_left_ = h.count;
        if (cur_reg_ == static_cast<u32>(ConfigReg::kFdri) &&
            payload_left_ == 0) {
          fdri_pending_type2_ = true;
          return;
        }
        if (payload_left_ > 0) state_ = State::kType1Data;
        return;
      }
      if (h.type == 2 && h.op == PacketOp::kWrite && fdri_pending_type2_) {
        fdri_pending_type2_ = false;
        cur_reg_ = static_cast<u32>(ConfigReg::kFdri);
        payload_left_ = h.count;
        if (payload_left_ > 0) state_ = State::kType2Data;
        return;
      }
      if (h.type == 2 && h.op == PacketOp::kRead && fdro_pending_type2_) {
        fdro_pending_type2_ = false;
        if (h.count > 0) start_readback(h.count);
        return;
      }
      // Anything else between packets is a protocol violation; the real
      // device would abort configuration. Log and ignore.
      log_debug("icap: unexpected word 0x", std::hex, word);
      return;
    }

    case State::kType1Data:
    case State::kType2Data: {
      const State before = state_;
      reg_write(cur_reg_, word);
      // DESYNC inside the payload moves to kUnsynced; keep that.
      if (--payload_left_ == 0 && state_ == before) state_ = State::kSynced;
      return;
    }
  }
}

void Icap::reg_write(u32 reg, u32 data) {
  switch (static_cast<ConfigReg>(reg)) {
    case ConfigReg::kCrc:
      if (data != crc_.value()) {
        crc_error_ = true;
        cfg_.notify_crc_error();
        log_warn("icap: CRC mismatch (expected 0x", std::hex, crc_.value(),
                 ", got 0x", data, ")");
      }
      crc_.reset();
      return;

    case ConfigReg::kFar:
      crc_.update(reg, data);
      far_ = data;
      frame_buf_.clear();
      return;

    case ConfigReg::kFdri:
      crc_.update(reg, data);
      frame_word(data);
      return;

    case ConfigReg::kIdcode:
      crc_.update(reg, data);
      if (data != bitstream::kIdCode) {
        idcode_mismatch_ = true;
        log_warn("icap: IDCODE mismatch");
      }
      return;

    case ConfigReg::kCmd:
      crc_.update(reg, data);
      switch (static_cast<Cmd>(data)) {
        case Cmd::kRcrc:
          crc_.reset();
          cfg_.notify_rcrc();
          break;
        case Cmd::kWcfg:
          wcfg_ = true;
          break;
        case Cmd::kDesync:
          state_ = State::kUnsynced;
          wcfg_ = false;
          frame_buf_.clear();
          ++desyncs_;
          RVCAP_TRACE(trace_sink(), obs::EventKind::kIcapDesync, trace_src(),
                      sim_now(), words_);
          // The legacy per-component counter was pre-incremented at the
          // top of tick(), so a DESYNC during the tick at cycle T
          // recorded T+1; preserved for bit-identical journals.
          last_desync_ = sim_now() + 1;
          break;
        case Cmd::kNull:
        case Cmd::kLfrm:
        case Cmd::kRcfg:
        case Cmd::kStart:
        case Cmd::kGrestore:
        default:  // no functional effect here
          break;
      }
      return;

    case ConfigReg::kFdro:
    case ConfigReg::kCtl0:
    case ConfigReg::kMask:
    case ConfigReg::kStat:
    case ConfigReg::kCor0:
    default:  // default keeps reg values outside the enum covered
      crc_.update(reg, data);
      return;
  }
}

void Icap::frame_word(u32 data) {
  if (!wcfg_ || idcode_mismatch_) return;  // not in write-config mode
  frame_buf_.push_back(data);
  if (frame_buf_.size() < fabric::kFrameWords) return;

  const fabric::FrameAddr fa = fabric::FrameAddr::decode(far_);
  cfg_.write_frame(fa, frame_buf_);
  ++frames_committed_;
  RVCAP_TRACE(trace_sink(), obs::EventKind::kIcapFrame, trace_src(),
              sim_now(), far_);
  frame_buf_.clear();
  // FAR auto-increment in device configuration order.
  fabric::FrameAddr next = fa;
  if (cfg_.device().next_frame(&next)) {
    far_ = next.encode();
  }
}

}  // namespace rvcap::icap
