// ICAPE2 primitive model.
//
// The internal configuration access port of 7-series devices: a 32-bit
// write port clocked at up to 100 MHz, i.e. a hard 400 MB/s ceiling —
// the reference point of every throughput number in the paper
// ("the maximum theoretical ICAP throughput ... is 400 MB/s", §IV-C).
//
// The component consumes at most one word per cycle from its input
// FIFO, runs the configuration-packet FSM (sync hunt, type-1/2 decode,
// FAR auto-increment, CRC check, commands), and commits completed
// frames into the ConfigMemory. Both the RV-CAP datapath (via
// AXIS2ICAP) and the AXI_HWICAP baseline feed the same primitive.
#pragma once

#include "bitstream/packets.hpp"
#include "fabric/config_memory.hpp"
#include "sim/component.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fifo.hpp"

namespace rvcap::icap {

class Icap : public sim::Component {
 public:
  Icap(std::string name, fabric::ConfigMemory& cfg);

  /// 32-bit write port; producers push configuration words here.
  sim::Fifo<u32>& port() { return in_; }

  /// 32-bit read port: FDRO readback words appear here (§III-C: the
  /// port also *reads* the configuration memory). While a readback is
  /// draining, the (half-duplex) port does not consume input words.
  sim::Fifo<u32>& read_port() { return rdata_; }

  bool tick() override;
  bool busy() const override;

  // ---- status ----
  bool synced() const { return state_ != State::kUnsynced; }
  bool crc_error() const { return crc_error_; }
  bool idcode_mismatch() const { return idcode_mismatch_; }
  u64 words_consumed() const { return words_; }
  u64 frames_committed() const { return frames_committed_; }
  u64 words_read_back() const { return words_read_back_; }
  bool readback_active() const { return read_words_left_ > 0; }
  /// Cycle of the most recent DESYNC (end of a configuration pass).
  Cycles last_desync_cycle() const { return last_desync_; }
  u64 desync_count() const { return desyncs_; }

  /// Clear sticky error flags (driver-visible reset).
  void clear_errors() {
    crc_error_ = false;
    idcode_mismatch_ = false;
  }

  /// Driver-initiated abort (RP-control abort pulse): flush both port
  /// FIFOs and return the FSM to the unsynced state with a clean CRC,
  /// discarding any partially received frame and sticky errors.
  void abort();

  /// Optional fault injection (sites: icap.sync_loss, icap.crc).
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }

  void on_register(obs::Observability& o) override;

 private:
  enum class State {
    kUnsynced,   // hunting for the sync word
    kSynced,     // expecting a packet header
    kType1Data,  // consuming type-1 payload
    kType2Data,  // consuming type-2 payload (FDRI frames)
  };

  void consume(u32 word);
  void reg_write(u32 reg, u32 data);
  void frame_word(u32 data);

  fabric::ConfigMemory& cfg_;
  sim::Fifo<u32> in_{4};

  State state_ = State::kUnsynced;
  u32 cur_reg_ = 0;
  u32 payload_left_ = 0;
  bool fdri_pending_type2_ = false;  // FDRI count 0: expect type-2 next
  bool fdro_pending_type2_ = false;  // FDRO read count 0: type-2 next

  // Readback state.
  sim::Fifo<u32> rdata_{4};
  u32 read_words_left_ = 0;
  u32 read_word_in_frame_ = 0;
  u64 words_read_back_ = 0;
  void start_readback(u32 words);
  bool emit_read_word();

  u32 far_ = 0;
  std::vector<u32> frame_buf_;
  bitstream::ConfigCrc crc_;
  bool wcfg_ = false;

  bool crc_error_ = false;
  bool idcode_mismatch_ = false;
  u64 words_ = 0;
  u64 frames_committed_ = 0;
  u64 desyncs_ = 0;
  Cycles last_desync_ = 0;
  sim::FaultInjector* fault_ = nullptr;
};

}  // namespace rvcap::icap
