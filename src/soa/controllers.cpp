#include "soa/controllers.hpp"

namespace rvcap::soa {

namespace {

/// Solve cycles_per_word so the model reproduces the controller's
/// reported throughput at the paper's evaluation size (650 892 bytes),
/// given its fixed setup overhead.
double calibrate_cpw(double reported_mbps, u32 freq_mhz, u32 setup_cycles,
                     u64 eval_bytes = 650892) {
  const double words = static_cast<double>((eval_bytes + 3) / 4);
  const double total_cycles = static_cast<double>(eval_bytes) *
                              (freq_mhz * 1.0) / reported_mbps;
  return (total_cycles - setup_cycles) / words;
}

DprControllerSpec make(std::string key, std::string name,
                       std::string processor, bool drivers, double mbps,
                       u32 setup_cycles) {
  DprControllerSpec s;
  s.key = std::move(key);
  s.name = std::move(name);
  s.processor = std::move(processor);
  s.custom_drivers = drivers;
  s.freq_mhz = 100;
  s.reported_mbps = mbps;
  s.setup_cycles = setup_cycles;
  s.cycles_per_word = calibrate_cpw(mbps, s.freq_mhz, setup_cycles);
  return s;
}

}  // namespace

std::vector<DprControllerSpec> literature_controllers() {
  // Setup overheads reflect each architecture: DMA-based controllers
  // pay a descriptor/register setup; PCAP pays a Linux driver entry;
  // keyhole controllers have negligible setup (their per-word cost
  // dominates by orders of magnitude).
  return {
      make("soa.vipin", "Vipin et al. [12]", "MicroBlaze", false, 399.8,
           80),
      make("soa.zycap", "ZyCAP [13]", "ARM", true, 382.0, 400),
      make("soa.anderson", "Di Carlo et al. [14]", "LEON3", true, 395.4,
           300),
      make("soa.ac_icap", "AC_ICAP [16]", "MicroBlaze", false, 380.47,
           200),
      make("soa.rt_icap", "RT-ICAP [15]", "Patmos", true, 382.2, 150),
      make("soa.pcap", "PCAP [24]", "ARM", false, 128.0, 2000),
      make("soa.xilinx_prc", "Xilinx PRC [25]", "ARM", false, 396.5, 150),
      make("soa.axi_hwicap_arm", "Xilinx AXI_HWICAP [26]", "ARM", false,
           14.3, 500),
  };
}

}  // namespace rvcap::soa
