// Parametric models of the state-of-the-art DPR controllers compared
// in Table II.
//
// Eight related-work controllers cannot be rebuilt from their papers at
// RTL fidelity; instead each is modelled as (configuration-port width,
// per-word port cycles, fixed setup overhead, software per-word cost),
// instantiated from the architecture its paper describes and calibrated
// against its reported throughput. The Table II harness then *runs*
// every row over the same 650 892-byte transfer — the literature rows
// reproduce their reported numbers (sanity), while the RV-CAP and
// AXI_HWICAP-with-RISC-V rows come from the full SoC simulation, so the
// comparison's shape (who wins, by what factor) is genuinely measured
// for our contribution and its baseline.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "resources/resource_vec.hpp"

namespace rvcap::soa {

struct DprControllerSpec {
  std::string key;        // ResourceDb key under "soa."
  std::string name;       // display name, as in Table II
  std::string processor;  // managing CPU
  bool custom_drivers = false;
  u32 freq_mhz = 100;
  double reported_mbps = 0;  // the related work's own number

  // ---- transfer model ----
  /// Cycles the configuration port needs per 32-bit word (1.0 for a
  /// DMA-fed ICAP at port rate; >1 when the datapath cannot keep the
  /// port busy every cycle).
  double cycles_per_word = 1.0;
  /// Fixed software/DMA setup overhead per reconfiguration.
  u32 setup_cycles = 0;
};

class DprControllerModel {
 public:
  explicit DprControllerModel(const DprControllerSpec& spec) : spec_(spec) {}

  /// Cycles (at spec.freq_mhz) to move `bytes` of bitstream.
  Cycles transfer_cycles(u64 bytes) const {
    const u64 words = (bytes + 3) / 4;
    return spec_.setup_cycles +
           static_cast<Cycles>(static_cast<double>(words) *
                               spec_.cycles_per_word);
  }

  double throughput_mbps(u64 bytes) const {
    const double seconds = static_cast<double>(transfer_cycles(bytes)) /
                           (spec_.freq_mhz * 1e6);
    return static_cast<double>(bytes) / 1e6 / seconds;
  }

  const DprControllerSpec& spec() const { return spec_; }

 private:
  DprControllerSpec spec_;
};

/// The eight literature rows of Table II (the RV-CAP and
/// AXI_HWICAP-with-RISC-V rows are measured by the SoC simulation, not
/// modelled here).
std::vector<DprControllerSpec> literature_controllers();

}  // namespace rvcap::soa
