// Performance-counter window registers (DESIGN.md §11).
//
// An AXI4-Lite register file next to ServiceRegs exposing the
// simulator's CounterRegistry to driver-side code, the way firmware on
// the real Genesys2 would read a hardware performance monitor: write
// an index into SELECT, then read the latched 64-bit value through
// VALUE_LO/VALUE_HI. The select wraps modulo the registered counter
// count, so firmware can scan the whole window with a free-running
// index and COUNT tells it where the window ends.
//
// Reads sample the live registry (counters registered via sampled
// getters cost one std::function call per MMIO read — off the
// simulation hot path by construction). VALUE_LO latches the full
// 64-bit value so a LO/HI pair is tear-free even while counters move.
#pragma once

#include "axi/lite_slave.hpp"
#include "obs/counters.hpp"

namespace rvcap::soc {

class PerfRegs : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kSelect = 0x00;   // RW: counter index (wraps)
  static constexpr Addr kCount = 0x04;    // RO: registered counters
  static constexpr Addr kValueLo = 0x08;  // RO: latches the 64-bit value
  static constexpr Addr kValueHi = 0x0C;  // RO: high half of the latch

  explicit PerfRegs(std::string name) : AxiLiteSlave(std::move(name)) {}

  /// Attach the registry this window reads. The SoC assembly binds the
  /// owning Simulator's registry right after construction.
  void bind(const obs::CounterRegistry* reg) { reg_ = reg; }

  u32 select() const { return select_; }

 protected:
  u32 read_reg(Addr addr) override {
    switch (addr & 0xFF) {
      case kSelect:
        return select_;
      case kCount:
        return reg_ == nullptr ? 0
                               : static_cast<u32>(reg_->counter_count());
      case kValueLo: {
        const usize n = reg_ == nullptr ? 0 : reg_->counter_count();
        latch_ = n == 0 ? 0 : reg_->counter_value(select_ % n);
        return static_cast<u32>(latch_);
      }
      case kValueHi:
        return static_cast<u32>(latch_ >> 32);
      default:
        return 0;
    }
  }

  void write_reg(Addr addr, u32 value) override {
    if ((addr & 0xFF) == kSelect) select_ = value;
  }

 private:
  const obs::CounterRegistry* reg_ = nullptr;
  u32 select_ = 0;
  u64 latch_ = 0;
};

}  // namespace rvcap::soc
