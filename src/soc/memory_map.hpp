// SoC address map (Fig. 1) and PLIC interrupt source assignment.
#pragma once

#include "axi/types.hpp"

namespace rvcap::soc {

struct MemoryMap {
  /// On-chip boot memory holding application instructions + RM tables.
  static constexpr axi::AddrRange kBootMem{0x0001'0000, 0x0002'0000};
  /// Peripheral window served by one width/protocol converter chain.
  static constexpr axi::AddrRange kPeripherals{0x0200'0000, 0x2E00'0000};
  static constexpr axi::AddrRange kClint{0x0200'0000, 0x0001'0000};
  static constexpr axi::AddrRange kPlic{0x0C00'0000, 0x0400'0000};
  static constexpr axi::AddrRange kUart{0x1000'0000, 0x1000};
  static constexpr axi::AddrRange kSpi{0x2000'0000, 0x1000};
  /// Reconfiguration-service telemetry register file.
  static constexpr axi::AddrRange kServiceRegs{0x2100'0000, 0x1000};
  /// Performance-counter window (obs::CounterRegistry via MMIO).
  static constexpr axi::AddrRange kPerfRegs{0x2200'0000, 0x1000};
  /// AXI_HWICAP window (vendor-controller deployment, §III-C).
  static constexpr axi::AddrRange kHwicap{0x4000'0000, 0x1000};
  /// RV-CAP controller: DMA control + RP control interfaces.
  static constexpr axi::AddrRange kDmaCtrl{0x4100'0000, 0x1000};
  static constexpr axi::AddrRange kRpCtrl{0x4200'0000, 0x1000};
  /// External DDR.
  static constexpr axi::AddrRange kDdr{0x8000'0000, 1ULL << 30};

  /// Default staging area for partial bitstreams in DDR (§III-B step 1
  /// loads them from the SD card to a "defined destination address").
  static constexpr Addr kPbitStagingBase = 0x8800'0000;
  /// Image buffers for the acceleration-mode case study.
  static constexpr Addr kImageInBase = 0x9000'0000;
  static constexpr Addr kImageOutBase = 0x9100'0000;
};

struct IrqMap {
  static constexpr u32 kDmaMm2s = 1;
  static constexpr u32 kDmaS2mm = 2;
  static constexpr u32 kSpi = 3;
  /// Scrub service: a full scrub pass finished (level held until the
  /// supervisor acks via ScrubService::ack_irqs()).
  static constexpr u32 kScrubDone = 4;
  /// Scrub service: unrepairable damage or a transport error mid-pass.
  static constexpr u32 kScrubError = 5;
  static constexpr u32 kNumSources = 5;
};

}  // namespace rvcap::soc
