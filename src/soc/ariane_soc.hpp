// Full FPGA-based RISC-V SoC assembly (Fig. 1 + Fig. 2).
//
// Constructs and wires the platform the paper evaluates on: Ariane-class
// CPU context, 64-bit AXI-4 main crossbar, DDR, on-chip boot memory,
// SPI/SD card, CLINT (5 MHz timer), PLIC, the model Kintex-7 fabric with
// its ICAP and configuration memory, one case-study reconfigurable
// partition with stream isolator + RM slot, and — selectable per
// deployment — the RV-CAP controller and/or the AXI_HWICAP baseline.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "accel/rm_slot.hpp"
#include "accel/fir_filter.hpp"
#include "accel/stream_cipher.hpp"
#include "axi/crossbar.hpp"
#include "axi/lite_bridge.hpp"
#include "axi/lite_bus.hpp"
#include "axi/width_converter.hpp"
#include "axi/wires.hpp"
#include "cpu/cpu.hpp"
#include "fabric/config_memory.hpp"
#include "hwicap/hwicap.hpp"
#include "icap/icap.hpp"
#include "irq/clint.hpp"
#include "irq/plic.hpp"
#include "mem/ddr.hpp"
#include "mem/sram.hpp"
#include "net/bitstream_server.hpp"
#include "net/net_link.hpp"
#include "rvcap/controller.hpp"
#include "sim/simulator.hpp"
#include "soc/memory_map.hpp"
#include "soc/perf_regs.hpp"
#include "soc/service_regs.hpp"
#include "soc/uart.hpp"
#include "storage/sd_card.hpp"
#include "storage/spi.hpp"

namespace rvcap::soc {

/// Which model FPGA the SoC is implemented on (the paper's portability
/// claim: same controller and drivers on any DPR-capable Xilinx part).
enum class DeviceModel : u8 {
  kKintex7_325t,  // Genesys2, the paper's board
  kArtix7_100t,   // smaller 7-series part
};

struct SocConfig {
  DeviceModel device = DeviceModel::kKintex7_325t;
  /// Simulation kernel: activity-scheduled by default; kFlat retains
  /// the legacy tick-everything loop (dual-mode equivalence testing).
  sim::Simulator::Mode sim_mode = sim::Simulator::Mode::kScheduled;
  bool with_rvcap = true;    // instantiate the RV-CAP controller
  bool with_hwicap = false;  // instantiate the AXI_HWICAP baseline
  bool with_net = false;     // instantiate link + bitstream server
  net::NetLink::Config net_link{};
  net::BitstreamServer::Config net_server{};
  u32 hwicap_fifo_depth = 1024;  // paper resizes the vendor 64 -> 1024
  u32 spi_clock_divider = 4;     // 25 MHz SD SPI clock
  u32 sd_blocks = 131072;        // 64 MiB card
  cpu::CpuTimingModel timing{};
  rvcap_ctrl::AxiDma::Config dma{};
  mem::DdrController::Config ddr{};
};

class ArianeSoc {
 public:
  explicit ArianeSoc(const SocConfig& cfg = SocConfig{});

  // ---- top-level handles ----
  sim::Simulator& sim() { return sim_; }
  cpu::CpuContext& cpu() { return cpu_; }
  const SocConfig& config() const { return cfg_; }

  fabric::DeviceGeometry& device() { return dev_; }
  fabric::ConfigMemory& config_memory() { return cfg_mem_; }
  icap::Icap& icap() { return icap_; }
  mem::DdrController& ddr() { return ddr_; }
  mem::AxiSram& boot_mem() { return boot_; }
  storage::SdCard& sd_card() { return sd_; }
  irq::Clint& clint() { return clint_; }
  irq::Plic& plic() { return plic_; }
  Uart& uart() { return uart_; }
  ServiceRegs& service_regs() { return service_regs_; }
  PerfRegs& perf_regs() { return perf_regs_; }

  /// The case-study partition (RP0) and its tracking handle.
  const fabric::Partition& rp0() const { return rp0_; }
  usize rp0_handle() const { return rp0_handle_; }
  accel::RmSlot& rm_slot() { return *rm_slot_; }

  rvcap_ctrl::RvCapController& rvcap() { return *rvcap_; }
  hwicap::HwIcap& hwicap() { return *hwicap_; }
  bool has_rvcap() const { return rvcap_ != nullptr; }
  bool has_hwicap() const { return hwicap_ != nullptr; }

  /// Networked bitstream delivery plant (with_net deployments).
  net::NetLink& net_link() { return *net_link_; }
  net::BitstreamServer& net_server() { return *net_server_; }
  bool has_net() const { return net_link_ != nullptr; }

  /// Register an additional reconfigurable partition (reconfig-only:
  /// no stream plumbing); returns its ConfigMemory handle.
  usize add_partition(const fabric::Partition& p) {
    return cfg_mem_.register_partition(p);
  }

  /// Attach (or detach, with nullptr) a fault injector to every
  /// instrumented component: SD card, ICAP, the RV-CAP DMA, and the
  /// network plant when present.
  void attach_fault_injector(sim::FaultInjector* fi) {
    sd_.set_fault_injector(fi);
    icap_.set_fault_injector(fi);
    if (rvcap_) rvcap_->dma().set_fault_injector(fi);
    if (net_link_) net_link_->attach_fault_injector(fi);
    if (net_server_) net_server_->attach_fault_injector(fi);
  }

 private:
  SocConfig cfg_;
  sim::Simulator sim_;

  // Fabric substrate.
  fabric::DeviceGeometry dev_;
  fabric::ConfigMemory cfg_mem_;
  icap::Icap icap_;
  fabric::Partition rp0_;
  usize rp0_handle_;

  // Memories and peripherals.
  mem::DdrController ddr_;
  mem::AxiSram boot_;
  irq::Clint clint_;
  irq::Plic plic_;
  Uart uart_;
  ServiceRegs service_regs_;
  PerfRegs perf_regs_;
  storage::SdCard sd_;
  storage::SpiController spi_;

  // CPU and interconnect.
  cpu::CpuContext cpu_;
  axi::AxiCrossbar main_xbar_;

  // Peripheral converter chain: 64-bit bus -> 32-bit lite devices.
  axi::WidthConverter64To32 periph_conv_;
  axi::AxiToLiteBridge periph_bridge_;
  axi::LiteBus periph_bus_;
  axi::AxiWire periph_w0_;
  axi::LiteWire periph_w1_;

  // DPR controllers (deployment options).
  std::unique_ptr<rvcap_ctrl::RvCapController> rvcap_;
  std::unique_ptr<hwicap::HwIcap> hwicap_;
  std::unique_ptr<axi::WidthConverter64To32> hwicap_conv_;
  std::unique_ptr<axi::AxiToLiteBridge> hwicap_bridge_;
  std::unique_ptr<axi::AxiWire> hwicap_w0_;
  std::unique_ptr<axi::LiteWire> hwicap_w1_;

  // RM slot + stream plumbing (RV-CAP deployments only).
  std::unique_ptr<accel::RmSlot> rm_slot_;
  std::unique_ptr<axi::AxisWire> rm_out_wire_;

  // Direct DDR binding used when RV-CAP (and its crossbar) is absent.
  std::unique_ptr<axi::AxiWire> ddr_direct_wire_;
  std::unique_ptr<axi::AxiPort> ddr_direct_port_;

  // Networked bitstream delivery plant (with_net deployments).
  std::unique_ptr<net::NetLink> net_link_;
  std::unique_ptr<net::BitstreamServer> net_server_;
};

}  // namespace rvcap::soc
