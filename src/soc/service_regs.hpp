// Reconfiguration-service telemetry registers.
//
// A small AXI4-Lite register file on the peripheral bus the
// ReconfigService publishes its counters into after every terminal
// request event. On the real SoC this is how an external supervisor
// (or another hart) observes queue health without sharing memory with
// the service; here it also exercises the peripheral converter chain
// with a write-mostly device. All registers are plain read/write words.
#pragma once

#include <array>

#include "axi/lite_slave.hpp"

namespace rvcap::soc {

class ServiceRegs : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kSubmitted = 0x00;
  static constexpr Addr kAccepted = 0x04;
  static constexpr Addr kCompleted = 0x08;
  static constexpr Addr kFailed = 0x0C;
  static constexpr Addr kShed = 0x10;
  static constexpr Addr kRejectedFull = 0x14;
  static constexpr Addr kDeadlineMissed = 0x18;
  static constexpr Addr kCancelled = 0x1C;
  static constexpr Addr kCoalesced = 0x20;
  static constexpr Addr kQuarantineRejects = 0x24;
  static constexpr Addr kPreflightRejects = 0x28;
  static constexpr Addr kHangs = 0x2C;
  static constexpr Addr kQueueDepth = 0x30;
  static constexpr Addr kMaxQueueDepth = 0x34;

  explicit ServiceRegs(std::string name) : AxiLiteSlave(std::move(name)) {}

 protected:
  u32 read_reg(Addr addr) override {
    const usize i = (addr & 0xFF) / 4;
    return i < regs_.size() ? regs_[i] : 0;
  }
  void write_reg(Addr addr, u32 value) override {
    const usize i = (addr & 0xFF) / 4;
    if (i < regs_.size()) regs_[i] = value;
  }

 private:
  std::array<u32, 16> regs_{};
};

}  // namespace rvcap::soc
