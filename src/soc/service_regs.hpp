// Reconfiguration/scrub-service telemetry registers.
//
// A small AXI4-Lite register file on the peripheral bus the
// ReconfigService publishes its counters into after every terminal
// request event, and the ScrubService after every completed scrub
// pass. On the real SoC this is how an external supervisor (or
// another hart) observes queue and configuration-memory health without
// sharing memory with the services; here it also exercises the
// peripheral converter chain with a write-mostly device. All registers
// are plain read/write words.
#pragma once

#include <array>

#include "axi/lite_slave.hpp"

namespace rvcap::soc {

class ServiceRegs : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kSubmitted = 0x00;
  static constexpr Addr kAccepted = 0x04;
  static constexpr Addr kCompleted = 0x08;
  static constexpr Addr kFailed = 0x0C;
  static constexpr Addr kShed = 0x10;
  static constexpr Addr kRejectedFull = 0x14;
  static constexpr Addr kDeadlineMissed = 0x18;
  static constexpr Addr kCancelled = 0x1C;
  static constexpr Addr kCoalesced = 0x20;
  static constexpr Addr kQuarantineRejects = 0x24;
  static constexpr Addr kPreflightRejects = 0x28;
  static constexpr Addr kHangs = 0x2C;
  static constexpr Addr kQueueDepth = 0x30;
  static constexpr Addr kMaxQueueDepth = 0x34;

  // ---- scrub-service block (published per completed pass) ----
  static constexpr Addr kScrubPasses = 0x40;
  static constexpr Addr kScrubFrames = 0x44;
  static constexpr Addr kScrubDetections = 0x48;
  static constexpr Addr kScrubCorrectable = 0x4C;
  static constexpr Addr kScrubUncorrectable = 0x50;
  static constexpr Addr kScrubEssential = 0x54;
  static constexpr Addr kScrubBenign = 0x58;
  static constexpr Addr kScrubRewrites = 0x5C;
  static constexpr Addr kScrubReloads = 0x60;
  static constexpr Addr kScrubYields = 0x64;
  static constexpr Addr kScrubPending = 0x68;
  static constexpr Addr kScrubMeanMttd = 0x6C;  // core cycles
  static constexpr Addr kScrubMeanMttr = 0x70;  // core cycles
  static constexpr Addr kScrubFramesPerSec = 0x74;

  // ---- networked-delivery block (published per delivery) ----
  static constexpr Addr kNetFetchesOk = 0x80;
  static constexpr Addr kNetFetchFails = 0x84;
  static constexpr Addr kNetRetries = 0x88;
  static constexpr Addr kNetBreakerTrips = 0x8C;
  static constexpr Addr kNetCacheHits = 0x90;
  static constexpr Addr kNetCachePoisoned = 0x94;
  static constexpr Addr kNetSdFallbacks = 0x98;
  static constexpr Addr kNetDeliveryFails = 0x9C;

  explicit ServiceRegs(std::string name) : AxiLiteSlave(std::move(name)) {}

 protected:
  u32 read_reg(Addr addr) override {
    const usize i = (addr & 0xFF) / 4;
    return i < regs_.size() ? regs_[i] : 0;
  }
  void write_reg(Addr addr, u32 value) override {
    const usize i = (addr & 0xFF) / 4;
    if (i < regs_.size()) regs_[i] = value;
  }

 private:
  std::array<u32, 64> regs_{};
};

}  // namespace rvcap::soc
