// Console UART (transmit-only model): the driver's terminal messages
// ("a terminal message informs that the reconfiguration was
// successful", §III-C) land here and tests/examples can read them back.
#pragma once

#include <string>

#include "axi/lite_slave.hpp"

namespace rvcap::soc {

class Uart : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kThr = 0x00;  // transmit holding register
  static constexpr Addr kLsr = 0x14;  // line status (always ready)

  explicit Uart(std::string name) : AxiLiteSlave(std::move(name)) {}

  const std::string& output() const { return out_; }
  void clear_output() { out_.clear(); }

 protected:
  u32 read_reg(Addr addr) override {
    return ((addr & 0xFF) == kLsr) ? 0x60u : 0u;  // THR empty
  }
  void write_reg(Addr addr, u32 value) override {
    if ((addr & 0xFF) == kThr) out_.push_back(static_cast<char>(value));
  }

 private:
  std::string out_;
};

}  // namespace rvcap::soc
