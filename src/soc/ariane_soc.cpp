#include "soc/ariane_soc.hpp"

namespace rvcap::soc {

ArianeSoc::ArianeSoc(const SocConfig& cfg)
    : cfg_(cfg),
      sim_(cfg.sim_mode),
      dev_(cfg.device == DeviceModel::kArtix7_100t
               ? fabric::DeviceGeometry::artix7_100t()
               : fabric::DeviceGeometry::kintex7_325t()),
      cfg_mem_(dev_),
      icap_("icap", cfg_mem_),
      rp0_(fabric::case_study_partition(dev_)),
      rp0_handle_(cfg_mem_.register_partition(rp0_)),
      ddr_("ddr", cfg.ddr),
      boot_("boot_mem", MemoryMap::kBootMem.size, MemoryMap::kBootMem.base),
      clint_("clint"),
      plic_("plic", IrqMap::kNumSources),
      uart_("uart"),
      service_regs_("service_regs"),
      perf_regs_("perf_regs"),
      sd_(cfg.sd_blocks),
      spi_("spi", sd_, cfg.spi_clock_divider),
      cpu_(sim_, cfg.timing),
      main_xbar_("main_xbar"),
      periph_conv_("periph.widthconv"),
      periph_bridge_("periph.litebridge"),
      periph_bus_("periph.litebus"),
      periph_w0_("periph.w0", periph_conv_.downstream(),
                 periph_bridge_.upstream()),
      periph_w1_("periph.w1", periph_bridge_.downstream(),
                 periph_bus_.upstream()) {
  // ---- interconnect: managers ----
  main_xbar_.add_manager(&cpu_.port());

  // ---- peripheral chain windows ----
  periph_bus_.add_device(MemoryMap::kClint, &clint_.port());
  periph_bus_.add_device(MemoryMap::kPlic, &plic_.port());
  periph_bus_.add_device(MemoryMap::kUart, &uart_.port());
  periph_bus_.add_device(MemoryMap::kSpi, &spi_.port());
  periph_bus_.add_device(MemoryMap::kServiceRegs, &service_regs_.port());
  perf_regs_.bind(&sim_.obs().counters());
  periph_bus_.add_device(MemoryMap::kPerfRegs, &perf_regs_.port());
  main_xbar_.add_subordinate(MemoryMap::kPeripherals,
                             &periph_conv_.upstream());
  main_xbar_.add_subordinate(MemoryMap::kBootMem, &boot_.port());

  // ---- DPR controllers ----
  if (cfg_.with_rvcap) {
    rvcap_ = std::make_unique<rvcap_ctrl::RvCapController>(
        icap_, ddr_.port(), MemoryMap::kDdr, cfg_.dma);
    main_xbar_.add_subordinate(MemoryMap::kDmaCtrl,
                               &rvcap_->dma_ctrl_port());
    main_xbar_.add_subordinate(MemoryMap::kRpCtrl, &rvcap_->rp_ctrl_port());
    // CPU reaches DDR through the controller's additional crossbar.
    main_xbar_.add_subordinate(MemoryMap::kDdr,
                               &rvcap_->main_bus_ddr_port());
    rvcap_->dma().set_mm2s_irq(irq::IrqLine(&plic_, IrqMap::kDmaMm2s));
    rvcap_->dma().set_s2mm_irq(irq::IrqLine(&plic_, IrqMap::kDmaS2mm));
  } else {
    // Vendor-only deployment: the main crossbar drives DDR directly.
    ddr_direct_port_ = std::make_unique<axi::AxiPort>();
    ddr_direct_wire_ = std::make_unique<axi::AxiWire>(
        "ddr.direct", *ddr_direct_port_, ddr_.port());
    main_xbar_.add_subordinate(MemoryMap::kDdr, ddr_direct_port_.get());
  }

  if (cfg_.with_hwicap) {
    hwicap_ =
        std::make_unique<hwicap::HwIcap>("hwicap", icap_,
                                         cfg_.hwicap_fifo_depth);
    hwicap_conv_ = std::make_unique<axi::WidthConverter64To32>(
        "hwicap.widthconv");
    hwicap_bridge_ = std::make_unique<axi::AxiToLiteBridge>(
        "hwicap.litebridge");
    hwicap_w0_ = std::make_unique<axi::AxiWire>(
        "hwicap.w0", hwicap_conv_->downstream(), hwicap_bridge_->upstream());
    hwicap_w1_ = std::make_unique<axi::LiteWire>(
        "hwicap.w1", hwicap_bridge_->downstream(), hwicap_->port());
    main_xbar_.add_subordinate(MemoryMap::kHwicap,
                               &hwicap_conv_->upstream());
  }

  // ---- networked bitstream delivery plant ----
  if (cfg_.with_net) {
    net_link_ = std::make_unique<net::NetLink>("net_link", cfg_.net_link);
    net_server_ = std::make_unique<net::BitstreamServer>(
        "net_server", *net_link_, cfg_.net_server);
  }

  // ---- RM slot behind the isolator (needs the RV-CAP streams) ----
  if (cfg_.with_rvcap) {
    rm_slot_ = std::make_unique<accel::RmSlot>(
        "rm_slot", cfg_mem_, rp0_handle_, rvcap_->rm_input());
    accel::register_case_study_filters(*rm_slot_);
    accel::register_cipher(*rm_slot_);
    accel::register_fir(*rm_slot_);
    rm_out_wire_ = std::make_unique<axi::AxisWire>(
        "rm_slot.out", rm_slot_->out(), rvcap_->rm_output_in());
    rvcap_->rp_control().attach_rm(rm_slot_.get(), 0);
  }

  // ---- simulator registration (dataflow order) ----
  sim_.add(&main_xbar_);
  sim_.add(&periph_conv_);
  sim_.add(&periph_w0_);
  sim_.add(&periph_bridge_);
  sim_.add(&periph_w1_);
  sim_.add(&periph_bus_);
  sim_.add(&clint_);
  sim_.add(&plic_);
  sim_.add(&uart_);
  sim_.add(&service_regs_);
  sim_.add(&perf_regs_);
  sim_.add(&spi_);
  sim_.add(&boot_);
  if (rvcap_) rvcap_->register_components(sim_);
  if (hwicap_) {
    sim_.add(hwicap_conv_.get());
    sim_.add(hwicap_w0_.get());
    sim_.add(hwicap_bridge_.get());
    sim_.add(hwicap_w1_.get());
    sim_.add(hwicap_.get());
  }
  if (ddr_direct_wire_) sim_.add(ddr_direct_wire_.get());
  sim_.add(&ddr_);
  if (rm_slot_) {
    sim_.add(rm_slot_.get());
    sim_.add(rm_out_wire_.get());
  }
  sim_.add(&icap_);
  // Net plant last: existing deployments keep their registration order
  // (and therefore their golden traces) bit-identical.
  if (net_link_) {
    sim_.add(net_link_.get());
    sim_.add(net_server_.get());
  }
}

}  // namespace rvcap::soc
