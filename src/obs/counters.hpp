// Named perf counters and log2-bucket latency histograms (DESIGN.md
// §11). Components register at Simulator::add() time through
// Component::on_register(); drivers register in their constructors via
// CpuContext::simulator(). Two registration styles:
//
//   * counter(name)/histogram(name): the registry owns the storage and
//     hands back a stable pointer the instrumented code mutates inline.
//   * register_fn(name, fn): zero-overhead export of a counter a
//     component already maintains (e.g. Icap::words()) — the sampled
//     getter is only evaluated at snapshot/PerfRegs-read time, so the
//     hot path is untouched.
//
// Registration order is deterministic (SoC construction order), which
// gives every counter a stable index — the contract the PerfRegs MMIO
// window relies on.
#pragma once

#include <algorithm>
#include <bit>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace rvcap::obs {

/// Monotonic event/volume counter.
class Counter {
 public:
  void add(u64 n = 1) { value_ += n; }
  /// High-water-mark style update (still monotonic).
  void note_max(u64 v) { value_ = std::max(value_, v); }
  u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Latency histogram with log2 buckets. Bucket 0 holds exact-zero
/// samples ("zero-width"); bucket i (1..32) holds [2^(i-1), 2^i);
/// samples at or above 2^32 saturate into the top bucket. Exact
/// min/max/sum ride alongside so mean() is not bucket-quantised.
class Histogram {
 public:
  static constexpr usize kBuckets = 34;  // 0, 1..32, saturating top

  static usize bucket_index(u64 v) {
    if (v == 0) return 0;
    const usize w = static_cast<usize>(std::bit_width(v));
    return std::min<usize>(w, kBuckets - 1);
  }

  /// Inclusive upper bound of a bucket (for rendering).
  static u64 bucket_bound(usize i) {
    if (i == 0) return 0;
    if (i >= kBuckets - 1) return ~u64{0};
    return (u64{1} << i) - 1;
  }

  void record(u64 v) {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  void merge(const Histogram& o) {
    for (usize i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ == 0 ? 0 : min_; }
  u64 max() const { return max_; }
  u64 mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  u64 bucket(usize i) const { return i < kBuckets ? buckets_[i] : 0; }

  /// Smallest bucket upper bound covering fraction p (0..1) of the
  /// samples — a quantised percentile, clamped to the exact max.
  u64 percentile(double p) const {
    if (count_ == 0) return 0;
    const u64 target =
        static_cast<u64>(p * static_cast<double>(count_) + 0.5);
    u64 seen = 0;
    for (usize i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::min(bucket_bound(i), max_);
    }
    return max_;
  }

 private:
  u64 buckets_[kBuckets] = {};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~u64{0};
  u64 max_ = 0;
};

/// Registry of named counters and histograms with stable pointers and
/// deterministic indices.
class CounterRegistry {
 public:
  /// Find-or-create a registry-owned counter.
  Counter* counter(std::string_view name) {
    for (Entry& e : entries_) {
      if (e.name == name) return &e.owned;
    }
    entries_.push_back(Entry{std::string(name), {}, nullptr});
    return &entries_.back().owned;
  }

  /// Export an externally maintained value as a sampled counter.
  void register_fn(std::string_view name, std::function<u64()> fn) {
    for (Entry& e : entries_) {
      if (e.name == name) {
        e.fn = std::move(fn);
        return;
      }
    }
    entries_.push_back(Entry{std::string(name), {}, std::move(fn)});
  }

  /// Find-or-create a named histogram.
  Histogram* histogram(std::string_view name) {
    for (HistEntry& h : hists_) {
      if (h.name == name) return &h.hist;
    }
    hists_.push_back(HistEntry{std::string(name), {}});
    return &hists_.back().hist;
  }

  // ---- indexed access (registration order; PerfRegs window) ----
  usize counter_count() const { return entries_.size(); }
  std::string_view counter_name(usize i) const { return entries_[i].name; }
  u64 counter_value(usize i) const {
    const Entry& e = entries_[i];
    return e.fn ? e.fn() : e.owned.value();
  }
  /// Index of a named counter, or counter_count() when absent.
  usize counter_index(std::string_view name) const {
    for (usize i = 0; i < entries_.size(); ++i) {
      if (entries_[i].name == name) return i;
    }
    return entries_.size();
  }

  usize histogram_count() const { return hists_.size(); }
  std::string_view histogram_name(usize i) const { return hists_[i].name; }
  const Histogram& histogram_at(usize i) const { return hists_[i].hist; }

 private:
  struct Entry {
    std::string name;
    Counter owned;
    std::function<u64()> fn;  // when set, shadows `owned`
  };
  struct HistEntry {
    std::string name;
    Histogram hist;
  };

  // deque: growth never invalidates handed-out pointers.
  std::deque<Entry> entries_;
  std::deque<HistEntry> hists_;
};

}  // namespace rvcap::obs
