// The per-Simulator observability bundle: one TraceSink + one
// CounterRegistry. Owned by sim::Simulator and handed to every
// component at registration (Component::on_register) and to driver
// code via CpuContext::simulator().obs().
#pragma once

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace rvcap::obs {

class Observability {
 public:
  TraceSink& sink() { return sink_; }
  const TraceSink& sink() const { return sink_; }
  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

 private:
  TraceSink sink_;
  CounterRegistry counters_;
};

}  // namespace rvcap::obs
