// Non-intrusive utilization probe over a Fifo link — the obs/ home of
// what used to be sim::ThroughputProbe (sim/probe.hpp, removed).
//
// A probe watches a Fifo and samples its lifetime pop counter, giving
// benches link-utilization numbers (e.g. "the ICAP port was busy 99.4%
// of the transfer") without touching the components themselves. It is
// quiescence-friendly: it only ticks on cycles following link activity
// (every pop wakes it) and derives the window length from simulation
// time instead of counting its own ticks — so flat and scheduled
// kernels report identical numbers.
//
// Header-only on purpose: it needs sim::Component, and rvcap_sim links
// rvcap_obs — a compiled probe here would invert that edge.
#pragma once

#include "obs/counters.hpp"
#include "obs/observability.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace rvcap::obs {

template <typename T>
class LinkProbe : public sim::Component {
 public:
  LinkProbe(std::string name, sim::Fifo<T>& link)
      : Component(std::move(name)), link_(link),
        last_count_(link.total_popped()) {
    link_.watch(this);
  }

  bool tick() override {
    const u64 count = link_.total_popped();
    if (count != last_count_) {
      transfers_ += count - last_count_;
      ++active_cycles_;
      last_count_ = count;
    }
    // Observational only: never keeps the simulation awake.
    return false;
  }

  /// Export the window's counters under "<name>.*".
  void on_register(Observability& o) override {
    const std::string prefix(name());
    o.counters().register_fn(prefix + ".transfers",
                             [this] { return transfers_; });
    o.counters().register_fn(prefix + ".active_cycles", [this] {
      return static_cast<u64>(active_cycles_);
    });
  }

  /// Restart the measurement window.
  void reset() {
    window_start_ = sim_now();
    active_cycles_ = 0;
    transfers_ = 0;
    last_count_ = link_.total_popped();
  }

  Cycles window_cycles() const { return sim_now() - window_start_; }
  u64 transfers() const { return transfers_; }

  /// Fraction of cycles with at least one transfer, 0..1.
  double utilization() const {
    const Cycles w = window_cycles();
    return w == 0 ? 0.0 : static_cast<double>(active_cycles_) / w;
  }
  /// Average transfers per cycle over the window.
  double rate() const {
    const Cycles w = window_cycles();
    return w == 0 ? 0.0 : static_cast<double>(transfers_) / w;
  }

 private:
  sim::Fifo<T>& link_;
  u64 last_count_;
  Cycles window_start_ = 0;
  Cycles active_cycles_ = 0;
  u64 transfers_ = 0;
};

}  // namespace rvcap::obs
