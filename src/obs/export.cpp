#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace rvcap::obs {
namespace {

// 100 MHz core clock: cycles -> microseconds with two fixed decimals.
void append_us(std::string& out, Cycles cycles) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%02" PRIu64, cycles / 100,
                cycles % 100);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string chrome_trace_json(const Observability& o) {
  const TraceSink& sink = o.sink();
  std::string out;
  out.reserve(sink.events().size() * 96 + 4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name every track (pid) and every source (tid) that
  // appears in the retained window, so Perfetto shows labelled tracks
  // even for an empty stream's process list.
  std::set<std::pair<int, int>> seen;  // (pid, tid)
  for (const TraceEvent& e : sink.events()) {
    seen.emplace(static_cast<int>(event_track(e.kind)) + 1, e.src + 1);
  }
  std::set<int> pids;
  for (const auto& [pid, tid] : seen) pids.insert(pid);
  for (int pid : pids) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    append_escaped(out, track_name(static_cast<Track>(pid - 1)));
    out += "\"}}";
  }
  for (const auto& [pid, tid] : seen) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, sink.source_name(static_cast<u16>(tid - 1)));
    out += "\"}}";
  }

  for (const TraceEvent& e : sink.events()) {
    sep();
    const int pid = static_cast<int>(event_track(e.kind)) + 1;
    const int tid = e.src + 1;
    const bool span = duration_in_a2(e.kind) && e.a2 > 0;
    const Cycles start = span && e.a2 <= e.ts ? e.ts - e.a2 : e.ts;
    out += "{\"name\":\"";
    append_escaped(out, event_name(e.kind));
    out += "\",\"ph\":\"";
    out += span ? "X" : "i";
    out += "\",\"ts\":";
    append_us(out, start);
    if (span) {
      out += ",\"dur\":";
      append_us(out, e.a2);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"a0\":" +
           std::to_string(e.a0) + ",\"a1\":" + std::to_string(e.a1) +
           ",\"a2\":" + std::to_string(e.a2) + "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const Observability& o, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = chrome_trace_json(o);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

std::string stats_text(const Observability& o) {
  std::ostringstream out;
  const CounterRegistry& reg = o.counters();
  out << "== counters (" << reg.counter_count() << ") ==\n";
  for (usize i = 0; i < reg.counter_count(); ++i) {
    out << "  [" << i << "] " << reg.counter_name(i) << " = "
        << reg.counter_value(i) << "\n";
  }
  out << "== histograms (" << reg.histogram_count() << ") ==\n";
  for (usize i = 0; i < reg.histogram_count(); ++i) {
    const Histogram& h = reg.histogram_at(i);
    out << "  " << reg.histogram_name(i) << ": n=" << h.count()
        << " min=" << h.min() << " mean=" << h.mean()
        << " p99=" << h.percentile(0.99) << " max=" << h.max() << "\n";
    if (h.count() != 0) {
      out << "    buckets:";
      for (usize b = 0; b < Histogram::kBuckets; ++b) {
        if (h.bucket(b) == 0) continue;
        out << " [<=" << Histogram::bucket_bound(b) << "]=" << h.bucket(b);
      }
      out << "\n";
    }
  }
  const TraceSink& sink = o.sink();
  out << "== trace ==\n"
      << "  enabled=" << (sink.enabled() ? 1 : 0)
      << " total=" << sink.total_events()
      << " retained=" << sink.events().size()
      << " dropped=" << sink.dropped_events() << " digest=0x" << std::hex
      << sink.digest() << std::dec << "\n";
  return out.str();
}

}  // namespace rvcap::obs
