// Snapshot exporters: Chrome-trace JSON (chrome://tracing / Perfetto)
// and a flat-text stats dump. Any test or bench can snapshot mid-run;
// nothing here mutates the Observability it reads.
#pragma once

#include <string>

#include "obs/observability.hpp"

namespace rvcap::obs {

/// Chrome trace event format: {"traceEvents": [...]}. One Perfetto
/// "process" per Track (pid = track, named via metadata events), one
/// "thread" per interned source. Timestamps are microseconds at the
/// 100 MHz core clock (1 cycle = 0.01 us). Kinds with duration_in_a2()
/// become complete ("X") spans ending at ts; the rest are instants.
std::string chrome_trace_json(const Observability& o);

/// Write chrome_trace_json() to a file. Returns false on I/O failure.
bool write_chrome_trace(const Observability& o, const std::string& path);

/// Human-readable dump: every counter (registration order), every
/// histogram (count/min/mean/p99/max + sparkline buckets), and the
/// sink's stream totals.
std::string stats_text(const Observability& o);

}  // namespace rvcap::obs
