#include "obs/trace.hpp"

namespace rvcap::obs {

std::string_view event_name(EventKind k) {
  switch (k) {
    case EventKind::kAxiRead: return "axi_read";
    case EventKind::kAxiWrite: return "axi_write";
    case EventKind::kAxisBeat: return "axis_beat";
    case EventKind::kIcapWord: return "icap_word";
    case EventKind::kIcapFrame: return "icap_frame";
    case EventKind::kIcapDesync: return "icap_desync";
    case EventKind::kIcapReadWord: return "icap_read_word";
    case EventKind::kDmaMm2sStart: return "dma_mm2s_start";
    case EventKind::kDmaMm2sDone: return "dma_mm2s_done";
    case EventKind::kDmaMm2sError: return "dma_mm2s_error";
    case EventKind::kDmaS2mmStart: return "dma_s2mm_start";
    case EventKind::kDmaS2mmDone: return "dma_s2mm_done";
    case EventKind::kSvcSubmit: return "svc_submit";
    case EventKind::kSvcAdmit: return "svc_admit";
    case EventKind::kSvcReject: return "svc_reject";
    case EventKind::kSvcCoalesce: return "svc_coalesce";
    case EventKind::kSvcShed: return "svc_shed";
    case EventKind::kSvcCancel: return "svc_cancel";
    case EventKind::kSvcDeadlineMiss: return "svc_deadline_miss";
    case EventKind::kSvcDispatch: return "svc_dispatch";
    case EventKind::kSvcComplete: return "svc_complete";
    case EventKind::kSvcFail: return "svc_fail";
    case EventKind::kSvcHang: return "svc_hang";
    case EventKind::kScrubUpset: return "scrub_upset";
    case EventKind::kScrubPass: return "scrub_pass";
    case EventKind::kScrubDetect: return "scrub_detect";
    case EventKind::kScrubRewrite: return "scrub_rewrite";
    case EventKind::kScrubReload: return "scrub_reload";
    case EventKind::kIrqRaise: return "irq_raise";
    case EventKind::kIrqLower: return "irq_lower";
    case EventKind::kIrqClaim: return "irq_claim";
    case EventKind::kIrqComplete: return "irq_complete";
    case EventKind::kNetTx: return "net_tx";
    case EventKind::kNetRx: return "net_rx";
    case EventKind::kNetDrop: return "net_drop";
    case EventKind::kNetDup: return "net_dup";
    case EventKind::kNetCorrupt: return "net_corrupt";
    case EventKind::kNetReorder: return "net_reorder";
    case EventKind::kNetFetchStart: return "net_fetch_start";
    case EventKind::kNetFetchDone: return "net_fetch_done";
    case EventKind::kNetFetchFail: return "net_fetch_fail";
    case EventKind::kNetRetry: return "net_retry";
    case EventKind::kNetBreakerOpen: return "net_breaker_open";
    case EventKind::kNetBreakerClose: return "net_breaker_close";
    case EventKind::kNetCacheHit: return "net_cache_hit";
    case EventKind::kNetCacheMiss: return "net_cache_miss";
    case EventKind::kNetCachePoison: return "net_cache_poison";
    case EventKind::kNetFallback: return "net_fallback";
  }
  return "?";
}

Track event_track(EventKind k) {
  switch (k) {
    case EventKind::kAxiRead:
    case EventKind::kAxiWrite:
      return Track::kBus;
    case EventKind::kAxisBeat:
      return Track::kStream;
    case EventKind::kIcapWord:
    case EventKind::kIcapFrame:
    case EventKind::kIcapDesync:
    case EventKind::kIcapReadWord:
      return Track::kIcap;
    case EventKind::kDmaMm2sStart:
    case EventKind::kDmaMm2sDone:
    case EventKind::kDmaMm2sError:
    case EventKind::kDmaS2mmStart:
    case EventKind::kDmaS2mmDone:
      return Track::kDma;
    case EventKind::kSvcSubmit:
    case EventKind::kSvcAdmit:
    case EventKind::kSvcReject:
    case EventKind::kSvcCoalesce:
    case EventKind::kSvcShed:
    case EventKind::kSvcCancel:
    case EventKind::kSvcDeadlineMiss:
    case EventKind::kSvcDispatch:
    case EventKind::kSvcComplete:
    case EventKind::kSvcFail:
    case EventKind::kSvcHang:
      return Track::kService;
    case EventKind::kScrubUpset:
    case EventKind::kScrubPass:
    case EventKind::kScrubDetect:
    case EventKind::kScrubRewrite:
    case EventKind::kScrubReload:
      return Track::kScrub;
    case EventKind::kIrqRaise:
    case EventKind::kIrqLower:
    case EventKind::kIrqClaim:
    case EventKind::kIrqComplete:
      return Track::kIrq;
    case EventKind::kNetTx:
    case EventKind::kNetRx:
    case EventKind::kNetDrop:
    case EventKind::kNetDup:
    case EventKind::kNetCorrupt:
    case EventKind::kNetReorder:
    case EventKind::kNetFetchStart:
    case EventKind::kNetFetchDone:
    case EventKind::kNetFetchFail:
    case EventKind::kNetRetry:
    case EventKind::kNetBreakerOpen:
    case EventKind::kNetBreakerClose:
    case EventKind::kNetCacheHit:
    case EventKind::kNetCacheMiss:
    case EventKind::kNetCachePoison:
    case EventKind::kNetFallback:
      return Track::kNet;
  }
  return Track::kBus;
}

std::string_view track_name(Track t) {
  switch (t) {
    case Track::kBus: return "AXI Bus";
    case Track::kStream: return "AXI-Stream";
    case Track::kIcap: return "ICAP";
    case Track::kDma: return "DMA";
    case Track::kService: return "ReconfigService";
    case Track::kScrub: return "Scrub";
    case Track::kIrq: return "IRQ";
    case Track::kNet: return "Net";
  }
  return "?";
}

bool duration_in_a2(EventKind k) {
  switch (k) {
    case EventKind::kAxiRead:
    case EventKind::kAxiWrite:
    case EventKind::kDmaMm2sDone:
    case EventKind::kDmaS2mmDone:
    case EventKind::kScrubPass:
    case EventKind::kNetFetchDone:
      return true;
    case EventKind::kAxisBeat:
    case EventKind::kIcapWord:
    case EventKind::kIcapFrame:
    case EventKind::kIcapDesync:
    case EventKind::kIcapReadWord:
    case EventKind::kDmaMm2sStart:
    case EventKind::kDmaMm2sError:
    case EventKind::kDmaS2mmStart:
    case EventKind::kSvcSubmit:
    case EventKind::kSvcAdmit:
    case EventKind::kSvcReject:
    case EventKind::kSvcCoalesce:
    case EventKind::kSvcShed:
    case EventKind::kSvcCancel:
    case EventKind::kSvcDeadlineMiss:
    case EventKind::kSvcDispatch:
    case EventKind::kSvcComplete:
    case EventKind::kSvcFail:
    case EventKind::kSvcHang:
    case EventKind::kScrubUpset:
    case EventKind::kScrubDetect:
    case EventKind::kScrubRewrite:
    case EventKind::kScrubReload:
    case EventKind::kIrqRaise:
    case EventKind::kIrqLower:
    case EventKind::kIrqClaim:
    case EventKind::kIrqComplete:
    case EventKind::kNetTx:
    case EventKind::kNetRx:
    case EventKind::kNetDrop:
    case EventKind::kNetDup:
    case EventKind::kNetCorrupt:
    case EventKind::kNetReorder:
    case EventKind::kNetFetchStart:
    case EventKind::kNetFetchFail:
    case EventKind::kNetRetry:
    case EventKind::kNetBreakerOpen:
    case EventKind::kNetBreakerClose:
    case EventKind::kNetCacheHit:
    case EventKind::kNetCacheMiss:
    case EventKind::kNetCachePoison:
    case EventKind::kNetFallback:
      return false;
  }
  return false;
}

}  // namespace rvcap::obs
