// Typed event tracing for the whole SoC (DESIGN.md §11).
//
// Every interesting hardware or driver action — an AXI burst retiring,
// an ICAP word consumed, a DMA descriptor completing, a service queue
// decision, a scrub repair, an IRQ claim — is one fixed-size
// TraceEvent pushed into a bounded TraceSink ring. Emission goes
// through the RVCAP_TRACE macro, which compiles to nothing under
// RVCAP_NO_TRACE and to a null-check + enabled-check otherwise, so the
// instrumented hot paths cost nothing when tracing is off.
//
// Mode invariance: events are only emitted from progressing ticks
// (tick() returning true) or from externally driven calls (MMIO
// register accesses, driver code). The kernel-equivalence contract
// guarantees those occur at identical cycles in kFlat and kScheduled,
// so the event stream — not just the end state — is bit-identical
// across kernels. tests/test_trace.cpp holds the system to that.
//
// The ring drops the oldest events when full, but a running FNV-1a
// digest and a total count are updated on every emit, so golden-trace
// comparisons survive ring wraparound.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rvcap::obs {

/// Every typed record the SoC can emit. Event payloads ride in three
/// u64 slots (a0/a1/a2) whose meaning is per-kind; kinds whose a2 is a
/// duration in cycles are flagged by duration_in_a2() and exported as
/// Chrome complete ("X") events spanning [ts - a2, ts].
enum class EventKind : u8 {
  // ---- AXI bus (track kBus) ----
  kAxiRead,     // burst retired: a0=addr, a1=beats, a2=latency cycles
  kAxiWrite,    // burst retired: a0=addr, a1=beats, a2=latency cycles
  // ---- AXI-Stream (track kStream) ----
  kAxisBeat,    // beat moved: a0=data low 32, a1=last flag
  // ---- ICAP (track kIcap) ----
  kIcapWord,      // config word consumed: a0=word
  kIcapFrame,     // frame committed: a0=FAR
  kIcapDesync,    // DESYNC or sync loss: a0=words so far
  kIcapReadWord,  // readback word produced: a0=word
  // ---- DMA descriptor lifecycle (track kDma) ----
  kDmaMm2sStart,  // job accepted: a0=addr, a1=bytes
  kDmaMm2sDone,   // job retired: a0=bytes, a2=latency cycles
  kDmaMm2sError,  // decode/slverr abort: a0=status bits
  kDmaS2mmStart,  // a0=addr, a1=bytes
  kDmaS2mmDone,   // a0=bytes, a2=latency cycles
  // ---- ReconfigService queue (track kService) ----
  kSvcSubmit,        // a0=id, a1=priority
  kSvcAdmit,         // a0=id, a1=queue depth after admit
  kSvcReject,        // a0=id, a1=Status
  kSvcCoalesce,      // a0=id, a1=surviving id
  kSvcShed,          // a0=victim id
  kSvcCancel,        // a0=id
  kSvcDeadlineMiss,  // a0=id
  kSvcDispatch,      // a0=id, a1=wait mtime ticks
  kSvcComplete,      // a0=id, a1=active mtime ticks
  kSvcFail,          // a0=id, a1=Status
  kSvcHang,          // a0=id, a1=outstanding beats, a2=frozen polls
  // ---- Scrub engine (track kScrub) ----
  kScrubUpset,     // injected SEU: a0=frame, a1=word<<8|bit
  kScrubPass,      // full walk done: a0=pass#, a1=frames, a2=cycles
  kScrubDetect,    // syndrome hit: a0=frame, a1=class
  kScrubRewrite,   // frame repaired in place: a0=frame
  kScrubReload,    // escalated to full RM reload: a0=frame
  // ---- PLIC (track kIrq) ----
  kIrqRaise,     // source level 0->1: a0=source
  kIrqLower,     // source level 1->0: a0=source
  kIrqClaim,     // claim read returned source: a0=source
  kIrqComplete,  // completion write: a0=source
  // ---- Networked bitstream delivery (track kNet) ----
  kNetTx,           // frame accepted onto the link: a0=op, a1=chunk
  kNetRx,           // frame delivered off the link: a0=op, a1=chunk
  kNetDrop,         // frame lost in flight: a0=op, a1=chunk
  kNetDup,          // frame duplicated in flight: a0=op, a1=chunk
  kNetCorrupt,      // payload bit flipped in flight: a0=chunk, a1=bit
  kNetReorder,      // frame delayed past a later one: a0=op, a1=chunk
  kNetFetchStart,   // image fetch began: a0=image id, a1=total chunks
  kNetFetchDone,    // fetch completed: a0=image id, a1=bytes, a2=cycles
  kNetFetchFail,    // fetch gave up: a0=image id, a1=Status
  kNetRetry,        // chunk re-requested: a0=chunk, a1=attempt, a2=backoff
  kNetBreakerOpen,  // circuit breaker tripped: a0=consecutive failures
  kNetBreakerClose, // breaker closed after successful probe
  kNetCacheHit,     // verified cache hit: a0=image id
  kNetCacheMiss,    // cache miss: a0=image id
  kNetCachePoison,  // digest mismatch on hit, entry evicted: a0=image id
  kNetFallback,     // delivery degraded: a0=image id, a1=DeliveryPath
};

/// Perfetto track (exported as one "process" per track).
enum class Track : u8 {
  kBus, kStream, kIcap, kDma, kService, kScrub, kIrq, kNet
};

std::string_view event_name(EventKind k);
Track event_track(EventKind k);
std::string_view track_name(Track t);
/// True when a2 carries a duration in cycles ending at ts.
bool duration_in_a2(EventKind k);

struct TraceEvent {
  Cycles ts = 0;   // core-clock cycle of emission
  EventKind kind = EventKind::kAxiRead;
  u16 src = 0;     // interned source name (TraceSink::sources())
  u64 a0 = 0;
  u64 a1 = 0;
  u64 a2 = 0;
};

/// Bounded ring of TraceEvents plus a wrap-proof running digest.
/// Disabled by default: enabling is an explicit per-run opt-in so the
/// default build and benches pay only a predicted-false branch.
class TraceSink {
 public:
  static constexpr usize kDefaultCapacity = usize{1} << 15;

  explicit TraceSink(usize capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  void set_capacity(usize cap) {
    capacity_ = cap;
    trim();
  }

  /// Intern a source name; stable small id for TraceEvent::src.
  u16 intern(std::string_view name) {
    for (usize i = 0; i < sources_.size(); ++i) {
      if (sources_[i] == name) return static_cast<u16>(i);
    }
    sources_.emplace_back(name);
    return static_cast<u16>(sources_.size() - 1);
  }

  void emit(EventKind kind, u16 src, Cycles ts, u64 a0 = 0, u64 a1 = 0,
            u64 a2 = 0) {
    if (!enabled_) return;
    TraceEvent e;
    e.ts = ts;
    e.kind = kind;
    e.src = src;
    e.a0 = a0;
    e.a1 = a1;
    e.a2 = a2;
    fold(e);
    ++total_;
    ring_.push_back(e);
    trim();
  }

  /// Events currently retained (oldest first). May be a suffix of the
  /// full stream once total_events() exceeds the capacity.
  const std::deque<TraceEvent>& events() const { return ring_; }
  const std::vector<std::string>& sources() const { return sources_; }
  std::string_view source_name(u16 src) const {
    return src < sources_.size() ? std::string_view(sources_[src])
                                 : std::string_view("?");
  }

  /// Lifetime emit count (unaffected by ring eviction).
  u64 total_events() const { return total_; }
  u64 dropped_events() const { return dropped_; }
  /// FNV-1a over every event ever emitted — the golden-trace anchor.
  u64 digest() const { return digest_; }

  void clear() {
    ring_.clear();
    total_ = 0;
    dropped_ = 0;
    digest_ = kFnvOffset;
  }

 private:
  static constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
  static constexpr u64 kFnvPrime = 0x100000001b3ull;

  void fold_word(u64 w) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (w >> (i * 8)) & 0xff;
      digest_ *= kFnvPrime;
    }
  }

  void fold(const TraceEvent& e) {
    fold_word(e.ts);
    fold_word((u64{e.src} << 8) | static_cast<u64>(e.kind));
    fold_word(e.a0);
    fold_word(e.a1);
    fold_word(e.a2);
  }

  void trim() {
    while (ring_.size() > capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
  }

  std::deque<TraceEvent> ring_;
  std::vector<std::string> sources_;
  usize capacity_;
  u64 total_ = 0;
  u64 dropped_ = 0;
  u64 digest_ = kFnvOffset;
  bool enabled_ = false;
};

/// Compile-time switch the tests use to GTEST_SKIP() trace assertions
/// in an RVCAP_NO_TRACE build.
constexpr bool trace_compiled_in() {
#ifndef RVCAP_NO_TRACE
  return true;
#else
  return false;
#endif
}

}  // namespace rvcap::obs

// Emission macro: evaluates its arguments only when the sink exists
// and is enabled; vanishes entirely under RVCAP_NO_TRACE.
#ifndef RVCAP_NO_TRACE
#define RVCAP_TRACE(sinkptr, ...)                                     \
  do {                                                                \
    ::rvcap::obs::TraceSink* rvcap_trace_sink_ = (sinkptr);           \
    if (rvcap_trace_sink_ != nullptr && rvcap_trace_sink_->enabled()) \
      rvcap_trace_sink_->emit(__VA_ARGS__);                           \
  } while (0)
#else
// Disabled: a constant-false branch keeps the arguments type-checked
// and "used" (no -Wunused warnings at call sites) while guaranteeing
// they are never evaluated; the optimiser removes the block entirely.
#define RVCAP_TRACE(sinkptr, ...)                                       \
  do {                                                                  \
    if (false) {                                                        \
      ::rvcap::obs::TraceSink* rvcap_trace_sink_ = (sinkptr);           \
      if (rvcap_trace_sink_ != nullptr && rvcap_trace_sink_->enabled()) \
        rvcap_trace_sink_->emit(__VA_ARGS__);                           \
    }                                                                   \
  } while (0)
#endif
