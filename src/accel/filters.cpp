#include "accel/filters.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "common/rng.hpp"

namespace rvcap::accel {

Image make_test_image(u32 width, u32 height, u64 seed) {
  Image img{width, height, std::vector<u8>(usize{width} * height)};
  SplitMix64 rng(seed);
  for (u32 y = 0; y < height; ++y) {
    for (u32 x = 0; x < width; ++x) {
      // Diagonal gradient + blocky structure + noise: gives every
      // filter meaningful edges to respond to.
      const u32 grad = (x + y) / 4;
      const u32 block = ((x / 32) ^ (y / 32)) & 1 ? 64 : 0;
      const u32 noise = static_cast<u32>(rng.next_below(32));
      img.pixels[usize{y} * width + x] =
          static_cast<u8>(std::min<u32>(255, grad + block + noise));
    }
  }
  return img;
}

namespace {

u8 clamp255(int v) { return static_cast<u8>(std::clamp(v, 0, 255)); }

/// Window fetch with horizontal replicate.
u8 px(std::span<const u8> row, int x) {
  const int w = static_cast<int>(row.size());
  return row[static_cast<usize>(std::clamp(x, 0, w - 1))];
}

}  // namespace

void filter_row(FilterKind kind, std::span<const u8> above,
                std::span<const u8> cur, std::span<const u8> below,
                std::span<u8> out) {
  const int w = static_cast<int>(cur.size());
  for (int x = 0; x < w; ++x) {
    const u8 p00 = px(above, x - 1), p01 = px(above, x), p02 = px(above, x + 1);
    const u8 p10 = px(cur, x - 1), p11 = px(cur, x), p12 = px(cur, x + 1);
    const u8 p20 = px(below, x - 1), p21 = px(below, x), p22 = px(below, x + 1);
    switch (kind) {
      case FilterKind::kSobel: {
        const int gx = -p00 + p02 - 2 * p10 + 2 * p12 - p20 + p22;
        const int gy = -p00 - 2 * p01 - p02 + p20 + 2 * p21 + p22;
        out[static_cast<usize>(x)] = clamp255(std::abs(gx) + std::abs(gy));
        break;
      }
      case FilterKind::kMedian: {
        std::array<u8, 9> v{p00, p01, p02, p10, p11, p12, p20, p21, p22};
        std::nth_element(v.begin(), v.begin() + 4, v.end());
        out[static_cast<usize>(x)] = v[4];
        break;
      }
      case FilterKind::kGaussian: {
        const int sum = p00 + 2 * p01 + p02 + 2 * p10 + 4 * p11 + 2 * p12 +
                        p20 + 2 * p21 + p22;
        out[static_cast<usize>(x)] = static_cast<u8>((sum + 8) / 16);
        break;
      }
    }
  }
}

Image apply_golden(FilterKind kind, const Image& in) {
  Image out{in.width, in.height,
            std::vector<u8>(usize{in.width} * in.height)};
  for (u32 y = 0; y < in.height; ++y) {
    const u32 ya = (y == 0) ? 0 : y - 1;
    const u32 yb = (y + 1 == in.height) ? y : y + 1;
    const auto row = [&](u32 yy) {
      return std::span<const u8>(in.pixels).subspan(usize{yy} * in.width,
                                                    in.width);
    };
    filter_row(kind, row(ya), row(y), row(yb),
               std::span<u8>(out.pixels).subspan(usize{y} * in.width,
                                                 in.width));
  }
  return out;
}

}  // namespace rvcap::accel
