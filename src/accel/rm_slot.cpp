#include "accel/rm_slot.hpp"

#include <stdexcept>

#include "accel/stream_filter.hpp"
#include "common/log.hpp"

namespace rvcap::accel {

RmSlot::RmSlot(std::string name, fabric::ConfigMemory& cfg,
               usize partition_handle, axi::AxisFifo& in)
    : Component(std::move(name)), cfg_(cfg), handle_(partition_handle),
      in_(in) {
  in_.watch(this);
  out_.watch(this);
  cfg_.add_observer(this);
}

void RmSlot::register_behavior(
    u32 rm_id, std::function<std::unique_ptr<RmBehavior>()> make) {
  factories_[rm_id] = std::move(make);
}

bool RmSlot::tick() {
  bool progress = false;
  const auto st = cfg_.partition_state(handle_);
  const u32 wanted = st.loaded ? st.rm_id : 0;
  // A completed reload of the same module is still a fresh
  // configuration: the logic comes up in its initial state.
  if (wanted != active_id_ ||
      (wanted != 0 && st.loads_completed != active_load_count_)) {
    active_.reset();
    active_id_ = 0;
    if (wanted != 0) {
      const auto it = factories_.find(wanted);
      if (it == factories_.end()) {
        log_warn("rm_slot: no behavior registered for rm_id ", wanted);
      } else {
        active_ = it->second();
        active_->reset();
        active_id_ = wanted;
        active_load_count_ = st.loads_completed;
        ++activations_;
        log_debug("rm_slot: activated rm_id ", wanted);
      }
    }
    progress = true;
  }
  if (active_ != nullptr) {
    const u64 pushed_before = out_.total_pushed();
    if (active_->tick(in_, out_)) progress = true;
    if (st.essential_upsets != 0 && out_.total_pushed() != pushed_before) {
      // An outstanding essential upset garbles the module's datapath:
      // the beat it just emitted comes out corrupted, and stays that
      // way until the scrub service repairs the frame.
      if (axi::AxisBeat* beat = out_.back()) beat->data ^= kSeuCorruptMask;
      ++corrupted_beats_;
    }
  } else if (in_.can_pop()) {
    // Unconfigured fabric: beats fall on the floor (the isolator should
    // have prevented them from arriving in the first place).
    in_.pop();
    progress = true;
  }
  return progress;
}

bool RmSlot::busy() const {
  return (active_ != nullptr && active_->busy()) || in_.can_pop() ||
         out_.can_pop();
}

u32 RmSlot::rm_reg_read(u32 index) {
  if (index == 15) return active_id_;
  return active_ ? active_->reg_read(index) : 0;
}

void RmSlot::rm_reg_write(u32 index, u32 value) {
  if (active_ != nullptr) {
    active_->reg_write(index, value);
    wake();  // a register write may unblock module-side work
  }
}

void register_case_study_filters(RmSlot& slot) {
  slot.register_behavior(kRmIdSobel, [] {
    return std::make_unique<StreamFilter>(sobel_params());
  });
  slot.register_behavior(kRmIdMedian, [] {
    return std::make_unique<StreamFilter>(median_params());
  });
  slot.register_behavior(kRmIdGaussian, [] {
    return std::make_unique<StreamFilter>(gaussian_params());
  });
}

FilterKind rm_id_to_kind(u32 rm_id) {
  switch (rm_id) {
    case kRmIdSobel: return FilterKind::kSobel;
    case kRmIdMedian: return FilterKind::kMedian;
    case kRmIdGaussian: return FilterKind::kGaussian;
    default: throw std::invalid_argument("unknown rm_id");
  }
}

u32 kind_to_rm_id(FilterKind kind) {
  switch (kind) {
    case FilterKind::kSobel: return kRmIdSobel;
    case FilterKind::kMedian: return kRmIdMedian;
    case FilterKind::kGaussian: return kRmIdGaussian;
  }
  throw std::invalid_argument("unknown kind");
}

}  // namespace rvcap::accel
