// RM slot: binds a reconfigurable partition's configuration state to a
// live module behavior.
//
// Each cycle the slot polls the configuration memory: when a complete,
// valid configuration pass activates rm_id X, the slot instantiates the
// registered behavior for X (in reset state — fresh logic) and drives
// it with the partition's stream endpoints. When the partition becomes
// invalid (partial overwrite, CRC error), the module vanishes, exactly
// as the fabric's logic would.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "accel/filters.hpp"
#include "accel/rm_behavior.hpp"
#include "fabric/config_memory.hpp"
#include "rvcap/rp_control.hpp"
#include "sim/component.hpp"

namespace rvcap::accel {

class RmSlot : public sim::Component, public rvcap_ctrl::RmRegisterFile {
 public:
  /// `in` is the stream into the partition (isolator's RP-side output);
  /// the slot owns the RP-side output stream toward the isolator.
  RmSlot(std::string name, fabric::ConfigMemory& cfg, usize partition_handle,
         axi::AxisFifo& in);

  /// Register the behavior configured by bitstreams carrying `rm_id`.
  void register_behavior(u32 rm_id,
                         std::function<std::unique_ptr<RmBehavior>()> make);

  axi::AxisFifo& out() { return out_; }

  /// Currently active module id (0 = partition empty/invalid).
  u32 active_rm() const { return active_id_; }
  RmBehavior* behavior() { return active_.get(); }
  u64 activations() const { return activations_; }

  /// Output beats garbled while the partition carried an outstanding
  /// essential upset (visible SEU damage; see kSeuCorruptMask).
  u64 corrupted_beats() const { return corrupted_beats_; }

  bool tick() override;
  bool busy() const override;

  // RmRegisterFile (forwarded by the RP control interface).
  u32 rm_reg_read(u32 index) override;
  void rm_reg_write(u32 index, u32 value) override;

 private:
  fabric::ConfigMemory& cfg_;
  usize handle_;
  axi::AxisFifo& in_;
  axi::AxisFifo out_{4};
  std::map<u32, std::function<std::unique_ptr<RmBehavior>()>> factories_;
  std::unique_ptr<RmBehavior> active_;
  u32 active_id_ = 0;
  u64 active_load_count_ = 0;  // loads_completed at activation time
  u64 activations_ = 0;
  u64 corrupted_beats_ = 0;
};

/// XOR pattern applied to every output beat of a module whose
/// partition has an outstanding essential upset: flipped configuration
/// bits in LUTs/routing garble the datapath deterministically until a
/// scrub repairs the frame.
inline constexpr u64 kSeuCorruptMask = 0xA5A5'A5A5'A5A5'A5A5ULL;

/// Canonical rm_ids of the case-study filters (§IV-D); the bitstream
/// generator and the slot registry must agree on these.
inline constexpr u32 kRmIdSobel = 1;
inline constexpr u32 kRmIdMedian = 2;
inline constexpr u32 kRmIdGaussian = 3;

/// Register the three case-study filter behaviors on a slot.
void register_case_study_filters(RmSlot& slot);

FilterKind rm_id_to_kind(u32 rm_id);
u32 kind_to_rm_id(FilterKind kind);

}  // namespace rvcap::accel
