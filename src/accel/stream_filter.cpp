#include "accel/stream_filter.hpp"

#include "common/log.hpp"

namespace rvcap::accel {

StreamFilterParams sobel_params() {
  return StreamFilterParams{FilterKind::kSobel, 512, 512, 114, 150};
}
StreamFilterParams median_params() {
  return StreamFilterParams{FilterKind::kMedian, 512, 512, 116, 180};
}
StreamFilterParams gaussian_params() {
  return StreamFilterParams{FilterKind::kGaussian, 512, 512, 117, 250};
}

StreamFilter::StreamFilter(const StreamFilterParams& p) : p_(p) {
  reset();
}

void StreamFilter::reset() {
  width_ = p_.default_width;
  height_ = p_.default_height;
  for (auto& r : rows_) r.clear();
  rows_valid_ = 0;
  cur_row_.clear();
  out_rows_emitted_ = 0;
  out_bytes_.clear();
  stall_acc_ = 0;
  stall_pending_ = 0;
  startup_remaining_ = p_.startup_latency;
  out_beats_emitted_total_ = 0;
}

u32 StreamFilter::reg_read(u32 index) {
  switch (index) {
    case 0: return width_;
    case 1: return height_;
    case 2: return static_cast<u32>(frames_done_);
    case 3: return static_cast<u32>(p_.kind);
    default: return 0;
  }
}

void StreamFilter::reg_write(u32 index, u32 value) {
  // Geometry registers only take effect between frames, and widths
  // must be whole beats (the HLS cores have the same restriction).
  if (index == 0 && value >= 8 && value % 8 == 0 && rows_valid_ == 0) {
    width_ = value;
  } else if (index == 1 && value >= 1 && rows_valid_ == 0) {
    height_ = value;
  }
}

void StreamFilter::produce_output_row(u32 y) {
  const auto row = [&](u32 yy) -> std::span<const u8> {
    return rows_[yy % 3];
  };
  const u32 ya = (y == 0) ? 0 : y - 1;
  const u32 yb = (y + 1 >= rows_valid_) ? rows_valid_ - 1 : y + 1;
  std::vector<u8> out(width_);
  filter_row(p_.kind, row(ya), row(y), row(yb), out);
  out_bytes_.insert(out_bytes_.end(), out.begin(), out.end());
  ++out_rows_emitted_;
}

void StreamFilter::accept_beat(u64 data) {
  for (int i = 0; i < 8; ++i) {
    cur_row_.push_back(static_cast<u8>(data >> (8 * i)));
  }
  if (cur_row_.size() < width_) return;

  // Row complete: rotate into the ring.
  const u32 k = rows_valid_;
  rows_[k % 3] = std::move(cur_row_);
  cur_row_.clear();
  ++rows_valid_;

  if (k >= 1) produce_output_row(k - 1);
  if (k + 1 == height_) produce_output_row(k);  // bottom border row
}

bool StreamFilter::tick(axi::AxisFifo& in, axi::AxisFifo& out) {
  bool progress = false;
  // Input side: accept one beat per cycle while the output backlog is
  // bounded (creates upstream back-pressure at the core's pace).
  const bool frame_incomplete = rows_valid_ < height_;
  if (frame_incomplete && out_bytes_.size() < usize{3} * width_ &&
      in.can_pop()) {
    accept_beat(in.pop()->data);
    progress = true;
  }

  // Output side: pipeline fill, then paced beat emission. The
  // countdowns are per-cycle costs, so they count as progress.
  if (startup_remaining_ > 0) {
    --startup_remaining_;
    return true;
  }
  if (stall_pending_ > 0) {
    --stall_pending_;
    return true;
  }
  if (out_bytes_.size() >= 8 && out.can_push()) {
    progress = true;
    u64 data = 0;
    for (int i = 0; i < 8; ++i) {
      data |= u64{out_bytes_.front()} << (8 * i);
      out_bytes_.pop_front();
    }
    ++out_beats_emitted_total_;
    const u64 frame_beats = (u64{width_} / 8) * height_;
    const bool last =
        (out_beats_emitted_total_ % frame_beats) == 0 && out_bytes_.empty() &&
        rows_valid_ == height_;
    out.push(axi::AxisBeat{data, 0xFF, last});
    if (last) {
      ++frames_done_;
      // Ready for the next frame without reconfiguration.
      rows_valid_ = 0;
      out_rows_emitted_ = 0;
      startup_remaining_ = p_.startup_latency;
    }
    // Pacing: spread (cycles_per_row - beats_per_row) stall cycles
    // across the row's beats (Bresenham accumulation).
    const u32 bpr = width_ / 8;
    if (p_.cycles_per_row > bpr) {
      const u32 extra = p_.cycles_per_row - bpr;
      stall_pending_ += extra / bpr;
      stall_acc_ += extra % bpr;
      if (stall_acc_ >= bpr) {
        ++stall_pending_;
        stall_acc_ -= bpr;
      }
    }
  }
  return progress;
}

bool StreamFilter::busy() const {
  return rows_valid_ > 0 || !cur_row_.empty() || !out_bytes_.empty();
}

}  // namespace rvcap::accel
