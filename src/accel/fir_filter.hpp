// Streaming FIR filter RM — the software-defined-radio module class.
//
// The paper's introduction motivates adaptive SoCs with domains like
// software-defined radio (§II: "different applications can be
// exchanged at runtime ... e.g. cyber-physical systems, software-
// defined radio"). This module is a 16-tap FIR over signed 16-bit
// samples, four samples per 64-bit AXI-Stream beat, with coefficients
// programmed through the RM control registers — the classic SDR
// channel-filter kernel.
//
// Arithmetic: y[n] = clamp_i16( (sum_k c[k] * x[n-k]) >> 15 ), i.e.
// Q1.15 coefficients. A software reference (fir_reference) defines the
// exact semantics; the streaming model is bit-identical by construction.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "accel/rm_behavior.hpp"

namespace rvcap::accel {

inline constexpr u32 kRmIdFir = 5;
inline constexpr u32 kFirTaps = 16;

/// Software reference over a full sample buffer (x[n<0] = 0).
std::vector<i16> fir_reference(std::span<const i16> samples,
                               std::span<const i16> coeffs);

/// Common coefficient sets (Q1.15).
std::array<i16, kFirTaps> fir_lowpass_coeffs();
std::array<i16, kFirTaps> fir_highpass_coeffs();
std::array<i16, kFirTaps> fir_passthrough_coeffs();

class FirFilter final : public RmBehavior {
 public:
  FirFilter() { reset(); }

  bool tick(axi::AxisFifo& in, axi::AxisFifo& out) override;
  bool busy() const override { return false; }
  void reset() override;

  // regs 0..7: coefficient pairs (two i16 per register, low = even
  // tap); reg 8: samples processed; reg 9: id tag.
  u32 reg_read(u32 index) override;
  void reg_write(u32 index, u32 value) override;

 private:
  i16 step(i16 x);

  std::array<i16, kFirTaps> coeffs_{};
  std::array<i16, kFirTaps> delay_line_{};
  u64 samples_done_ = 0;
};

void register_fir(class RmSlot& slot);

}  // namespace rvcap::accel
