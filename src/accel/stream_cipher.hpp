// Stream-cipher RM — a non-image reconfigurable module.
//
// The paper's controller is filter-agnostic: any module with a 64-bit
// AXI-Stream interface can live in the partition. This XOR-keystream
// cipher (encrypt/decrypt are the same operation) demonstrates the
// ecosystem beyond §IV-D's image filters and gives the multi-module
// examples a second workload class. The keystream is a 64-bit LFSR
// seeded through the RM control registers.
#pragma once

#include "accel/rm_behavior.hpp"

namespace rvcap::accel {

/// rm_id under which the cipher is registered with slots.
inline constexpr u32 kRmIdCipher = 4;

class StreamCipher final : public RmBehavior {
 public:
  StreamCipher() { reset(); }

  bool tick(axi::AxisFifo& in, axi::AxisFifo& out) override;
  bool busy() const override { return false; }
  void reset() override;

  // reg 0/1: key low/high, reg 2: beats processed, reg 3: id tag.
  u32 reg_read(u32 index) override;
  void reg_write(u32 index, u32 value) override;

  /// Reference model: the keystream the hardware applies, for a given
  /// key and beat index sequence (tests/golden).
  static u64 keystream(u64 key, u64 beat_index);

 private:
  u64 key_ = 0;
  u64 beat_index_ = 0;
  u64 beats_done_ = 0;
};

/// Register the cipher on a slot (alongside the case-study filters).
void register_cipher(class RmSlot& slot);

}  // namespace rvcap::accel
