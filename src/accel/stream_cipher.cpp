#include "accel/stream_cipher.hpp"

#include "accel/rm_slot.hpp"

namespace rvcap::accel {

void StreamCipher::reset() {
  key_ = 0;
  beat_index_ = 0;
  beats_done_ = 0;
}

u64 StreamCipher::keystream(u64 key, u64 beat_index) {
  // SplitMix-style mix of (key, index): deterministic, invertible-free,
  // and trivially matched by a software reference.
  u64 z = key + beat_index * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool StreamCipher::tick(axi::AxisFifo& in, axi::AxisFifo& out) {
  // Full-rate: one beat per cycle, II=1.
  if (!in.can_pop() || !out.can_push()) return false;
  const axi::AxisBeat b = *in.pop();
  axi::AxisBeat o = b;
  o.data ^= keystream(key_, beat_index_++);
  out.push(o);
  ++beats_done_;
  if (b.last) beat_index_ = 0;  // keystream restarts per packet
  return true;
}

u32 StreamCipher::reg_read(u32 index) {
  switch (index) {
    case 0: return static_cast<u32>(key_);
    case 1: return static_cast<u32>(key_ >> 32);
    case 2: return static_cast<u32>(beats_done_);
    case 3: return kRmIdCipher;
    default: return 0;
  }
}

void StreamCipher::reg_write(u32 index, u32 value) {
  if (index == 0) {
    key_ = (key_ & ~u64{0xFFFFFFFF}) | value;
    beat_index_ = 0;
  } else if (index == 1) {
    key_ = (key_ & 0xFFFFFFFF) | (u64{value} << 32);
    beat_index_ = 0;
  }
}

void register_cipher(RmSlot& slot) {
  slot.register_behavior(kRmIdCipher,
                         [] { return std::make_unique<StreamCipher>(); });
}

}  // namespace rvcap::accel
