// Behavioural interface of a reconfigurable module.
//
// An RmBehavior is what the partial bitstream "configures into" the
// partition: the RmSlot instantiates the behavior whose rm_id the
// configuration memory reports and drives it with the RP's stream
// endpoints each cycle.
#pragma once

#include <memory>

#include "axi/types.hpp"
#include "common/types.hpp"

namespace rvcap::accel {

class RmBehavior {
 public:
  virtual ~RmBehavior() = default;

  /// Advance one cycle: consume from `in` / produce into `out`
  /// (at most one beat each, like any 100 MHz stream stage).
  /// Returns true iff observable state changed — an idle module lets
  /// the hosting slot sleep under the scheduled kernel.
  virtual bool tick(axi::AxisFifo& in, axi::AxisFifo& out) = 0;

  virtual bool busy() const = 0;

  /// Control registers forwarded by the RP control interface.
  virtual u32 reg_read(u32 index) = 0;
  virtual void reg_write(u32 index, u32 value) = 0;

  /// Reset internal state (the slot calls this on (re)activation —
  /// freshly configured logic comes up in its initial state).
  virtual void reset() = 0;
};

/// Factory signature used by the RM registry.
using RmFactory = std::unique_ptr<RmBehavior> (*)();

}  // namespace rvcap::accel
