// Streaming 3x3 filter RM — the HLS-generated hardware model.
//
// Structure of a Vivado-HLS window filter: a 64-bit AXI-Stream input
// (8 pixels/beat), two line buffers, replicate borders, 64-bit output
// stream. Output pacing models the synthesized core's throughput: each
// output row of W/8 beats takes `cycles_per_row` cycles, the calibrated
// initiation interval that reproduces Table IV's per-filter compute
// times (Sobel 588 us < Median 598 us < Gaussian 606 us at 512x512):
// the window datapaths differ (|Gx|+|Gy| vs 9-way median network vs
// multiply-accumulate tree), giving each core a slightly different II.
//
// Functional output is computed with the same row kernels as the golden
// software filters, so data is bit-identical end to end.
#pragma once

#include <deque>

#include "accel/filters.hpp"
#include "accel/rm_behavior.hpp"

namespace rvcap::accel {

struct StreamFilterParams {
  FilterKind kind = FilterKind::kSobel;
  u32 default_width = 512;
  u32 default_height = 512;
  /// Calibrated core II: cycles to produce one output row of width/8
  /// beats (>= width/8; see Table IV calibration in DESIGN.md).
  u32 cycles_per_row = 114;
  /// Pipeline fill latency before the first output beat.
  u32 startup_latency = 150;
};

/// Calibrated parameters of the three case-study filters.
StreamFilterParams sobel_params();
StreamFilterParams median_params();
StreamFilterParams gaussian_params();

class StreamFilter final : public RmBehavior {
 public:
  explicit StreamFilter(const StreamFilterParams& p);

  bool tick(axi::AxisFifo& in, axi::AxisFifo& out) override;
  bool busy() const override;
  void reset() override;

  // reg 0: width (pixels), reg 1: height, reg 2: frames completed,
  // reg 3: filter kind id.
  u32 reg_read(u32 index) override;
  void reg_write(u32 index, u32 value) override;

  u64 frames_completed() const { return frames_done_; }

 private:
  void accept_beat(u64 data);
  void produce_output_row(u32 y);

  StreamFilterParams p_;
  u32 width_;
  u32 height_;

  std::vector<u8> rows_[3];     // ring of the last three complete rows
  u32 rows_valid_ = 0;          // number of complete rows received
  std::vector<u8> cur_row_;     // row being assembled from beats
  u32 out_rows_emitted_ = 0;    // output rows queued so far
  std::deque<u8> out_bytes_;    // bytes awaiting beat emission
  u64 frames_done_ = 0;

  // Output pacing (Bresenham over cycles_per_row / beats_per_row).
  u32 stall_acc_ = 0;
  u32 stall_pending_ = 0;
  u32 startup_remaining_ = 0;
  u64 out_beats_emitted_total_ = 0;
};

}  // namespace rvcap::accel
