// Golden (software) image filters and the shared per-row kernels.
//
// The case study (§IV-D) uses three HLS 3x3 filters — Sobel, Median,
// Gaussian — on 512x512 8-bit grayscale images. The golden functions
// here define the reference semantics (replicate borders); the
// streaming RM models in stream_filter.* call the same row kernels, so
// hardware output is bit-identical to software by construction and the
// examples/tests can verify end-to-end data integrity.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rvcap::accel {

enum class FilterKind : u8 { kSobel, kMedian, kGaussian };

constexpr std::string_view to_string(FilterKind k) {
  switch (k) {
    case FilterKind::kSobel: return "Sobel";
    case FilterKind::kMedian: return "Median";
    case FilterKind::kGaussian: return "Gaussian";
  }
  return "?";
}

struct Image {
  u32 width = 0;
  u32 height = 0;
  std::vector<u8> pixels;  // row-major, width*height

  u8 at(u32 x, u32 y) const { return pixels[usize{y} * width + x]; }
  bool operator==(const Image&) const = default;
};

/// Deterministic synthetic test image (gradients + seeded noise), the
/// workload generator for the Table IV benches.
Image make_test_image(u32 width, u32 height, u64 seed);

/// Apply one filter row: out[x] for x in [0, width) computed from the
/// three input rows (above/cur/below may alias at the borders —
/// replicate semantics are the caller's responsibility).
void filter_row(FilterKind kind, std::span<const u8> above,
                std::span<const u8> cur, std::span<const u8> below,
                std::span<u8> out);

/// Full-image golden filters (replicate borders).
Image apply_golden(FilterKind kind, const Image& in);

}  // namespace rvcap::accel
