#include "accel/fir_filter.hpp"

#include <algorithm>

#include "accel/rm_slot.hpp"

namespace rvcap::accel {

std::vector<i16> fir_reference(std::span<const i16> samples,
                               std::span<const i16> coeffs) {
  std::vector<i16> out(samples.size());
  for (usize n = 0; n < samples.size(); ++n) {
    i64 acc = 0;
    for (usize k = 0; k < coeffs.size(); ++k) {
      const i64 x = (n >= k) ? samples[n - k] : 0;
      acc += x * coeffs[k];
    }
    acc >>= 15;
    out[n] = static_cast<i16>(std::clamp<i64>(acc, -32768, 32767));
  }
  return out;
}

std::array<i16, kFirTaps> fir_passthrough_coeffs() {
  std::array<i16, kFirTaps> c{};
  c[0] = 32767;  // ~1.0 in Q1.15
  return c;
}

std::array<i16, kFirTaps> fir_lowpass_coeffs() {
  // Symmetric moving-average-like smoother (sums to ~1.0 in Q1.15).
  return {512,  1024, 1536, 2048, 2560, 3072, 3584, 4096,
          4096, 3584, 3072, 2560, 2048, 1536, 1024, 512};
}

std::array<i16, kFirTaps> fir_highpass_coeffs() {
  // Alternating-sign kernel: passes fast transitions, kills DC.
  return {-512,  1024, -1536, 2048, -2560, 3072, -3584, 4096,
          -4096, 3584, -3072, 2560, -2048, 1536, -1024, 512};
}

void FirFilter::reset() {
  coeffs_ = fir_passthrough_coeffs();
  delay_line_.fill(0);
  samples_done_ = 0;
}

i16 FirFilter::step(i16 x) {
  // Shift the delay line and accumulate (the synthesized core does
  // this as a systolic MAC chain at II=1).
  for (usize k = kFirTaps - 1; k > 0; --k) {
    delay_line_[k] = delay_line_[k - 1];
  }
  delay_line_[0] = x;
  i64 acc = 0;
  for (usize k = 0; k < kFirTaps; ++k) {
    acc += i64{delay_line_[k]} * coeffs_[k];
  }
  acc >>= 15;
  ++samples_done_;
  return static_cast<i16>(std::clamp<i64>(acc, -32768, 32767));
}

bool FirFilter::tick(axi::AxisFifo& in, axi::AxisFifo& out) {
  if (!in.can_pop() || !out.can_push()) return false;
  const axi::AxisBeat b = *in.pop();
  u64 result = 0;
  for (u32 lane = 0; lane < 4; ++lane) {
    const i16 x = static_cast<i16>((b.data >> (16 * lane)) & 0xFFFF);
    const i16 y = step(x);
    result |= (u64{static_cast<u16>(y)} << (16 * lane));
  }
  out.push(axi::AxisBeat{result, b.keep, b.last});
  if (b.last) delay_line_.fill(0);  // packet boundary resets state
  return true;
}

u32 FirFilter::reg_read(u32 index) {
  if (index < kFirTaps / 2) {
    const u16 lo = static_cast<u16>(coeffs_[2 * index]);
    const u16 hi = static_cast<u16>(coeffs_[2 * index + 1]);
    return (u32{hi} << 16) | lo;
  }
  if (index == 8) return static_cast<u32>(samples_done_);
  if (index == 9) return kRmIdFir;
  return 0;
}

void FirFilter::reg_write(u32 index, u32 value) {
  if (index < kFirTaps / 2) {
    coeffs_[2 * index] = static_cast<i16>(value & 0xFFFF);
    coeffs_[2 * index + 1] = static_cast<i16>(value >> 16);
    delay_line_.fill(0);  // coefficient swap restarts the filter
  }
}

void register_fir(RmSlot& slot) {
  slot.register_behavior(kRmIdFir,
                         [] { return std::make_unique<FirFilter>(); });
}

}  // namespace rvcap::accel
