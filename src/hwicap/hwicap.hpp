// AXI_HWICAP model — the vendor DPR controller baseline (§III-C).
//
// Xilinx's AXI_HWICAP (PG134) exposes the ICAP through an AXI4-Lite
// register file with a software-filled write FIFO: the CPU writes
// 32-bit configuration words into the keyhole WF register, triggers CR
// write, and polls the done bit. Per the paper, the reproduction
// resizes the internal write FIFO from the default 64 to 1024 words
// "to improve the time transfer".
//
// Throughput of this path is limited by the CPU's uncached register
// stores, not the ICAP: that is the mechanism behind the 8.23 MB/s
// (16-unrolled) vs 398.1 MB/s contrast of Table I.
#pragma once

#include "axi/lite_slave.hpp"
#include "icap/icap.hpp"

namespace rvcap::hwicap {

class HwIcap : public axi::AxiLiteSlave {
 public:
  // PG134 register offsets.
  static constexpr Addr kGier = 0x01C;
  static constexpr Addr kIsr = 0x020;
  static constexpr Addr kIer = 0x028;
  static constexpr Addr kWf = 0x100;   // keyhole write FIFO
  static constexpr Addr kRf = 0x104;
  static constexpr Addr kSz = 0x108;
  static constexpr Addr kCr = 0x10C;
  static constexpr Addr kSr = 0x110;
  static constexpr Addr kWfv = 0x114;  // write FIFO vacancy
  static constexpr Addr kRfo = 0x118;

  static constexpr u32 kCrWrite = 1u << 0;
  static constexpr u32 kCrRead = 1u << 1;
  static constexpr u32 kCrFifoClear = 1u << 2;
  static constexpr u32 kCrSwReset = 1u << 3;
  static constexpr u32 kSrDone = 1u << 0;
  static constexpr u32 kIsrDone = 1u << 0;

  HwIcap(std::string name, icap::Icap& icap, u32 write_fifo_depth = 1024,
         u32 read_fifo_depth = 256);

  u32 write_fifo_depth() const { return fifo_.capacity(); }
  u64 words_written() const { return words_written_; }
  bool transfer_active() const { return writing_ || read_left_ > 0; }

  void on_register(obs::Observability& o) override;

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;
  bool device_tick() override;
  bool device_busy() const override;

 private:
  icap::Icap& icap_;
  sim::Fifo<u32> fifo_;
  sim::Fifo<u32> rfifo_;
  bool writing_ = false;     // CR.Write asserted, FIFO draining to ICAP
  u32 sz_ = 0;               // words to read on CR.Read
  u32 read_left_ = 0;        // readback words still to capture
  bool gier_ = false;
  u32 ier_ = 0;
  u32 isr_ = 0;
  u64 words_written_ = 0;
  u64 dropped_words_ = 0;
};

}  // namespace rvcap::hwicap
