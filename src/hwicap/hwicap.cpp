#include "hwicap/hwicap.hpp"

#include "common/log.hpp"
#include "obs/observability.hpp"

namespace rvcap::hwicap {

HwIcap::HwIcap(std::string name, icap::Icap& icap, u32 write_fifo_depth,
               u32 read_fifo_depth)
    : AxiLiteSlave(std::move(name)), icap_(icap), fifo_(write_fifo_depth),
      rfifo_(read_fifo_depth) {
  icap_.port().watch(this);       // vacancy reopens the drain
  icap_.read_port().watch(this);  // readback words arriving
}

void HwIcap::on_register(obs::Observability& o) {
  const std::string prefix(name());
  obs::CounterRegistry& c = o.counters();
  c.register_fn(prefix + ".words_written", [this] { return words_written_; });
  c.register_fn(prefix + ".dropped_words", [this] { return dropped_words_; });
  c.register_fn(prefix + ".write_fifo_hwm",
                [this] { return static_cast<u64>(fifo_.high_water()); });
  c.register_fn(prefix + ".read_fifo_hwm",
                [this] { return static_cast<u64>(rfifo_.high_water()); });
}

bool HwIcap::device_tick() {
  bool progress = false;
  if (writing_) {
    // Drain one word per cycle into the ICAP primitive.
    if (fifo_.can_pop() && icap_.port().can_push()) {
      icap_.port().push(*fifo_.pop());
      progress = true;
    }
    if (fifo_.empty()) {
      writing_ = false;
      isr_ |= kIsrDone;
      progress = true;
    }
  }
  if (read_left_ > 0) {
    // Capture one readback word per cycle into the read FIFO.
    if (icap_.read_port().can_pop() && rfifo_.can_push()) {
      rfifo_.push(*icap_.read_port().pop());
      if (--read_left_ == 0) isr_ |= kIsrDone;
      progress = true;
    }
  }
  return progress;
}

u32 HwIcap::read_reg(Addr addr) {
  switch (addr & 0xFFF) {
    case kGier: return gier_ ? 0x80000000u : 0;
    case kIsr: return isr_;
    case kIer: return ier_;
    case kSr: {
      u32 sr = 0;
      if (!writing_ && read_left_ == 0) sr |= kSrDone;
      return sr;
    }
    case kWfv: return static_cast<u32>(fifo_.vacancy());
    case kRf: {
      const auto w = rfifo_.pop();
      return w.has_value() ? *w : 0;
    }
    case kRfo: return static_cast<u32>(rfifo_.size());
    case kSz: return sz_;
    default: return 0;
  }
}

void HwIcap::write_reg(Addr addr, u32 value) {
  switch (addr & 0xFFF) {
    case kGier:
      gier_ = (value & 0x80000000u) != 0;
      break;
    case kIsr:
      isr_ &= ~value;  // write-1-to-clear
      break;
    case kIer:
      ier_ = value;
      break;
    case kWf:
      // Keyhole register: pushes into the write FIFO. Words written
      // into a full FIFO are lost, exactly as on the IP core — the
      // driver must respect WFV.
      if (!fifo_.push(value)) {
        ++dropped_words_;
        log_warn("hwicap: write FIFO overflow, word dropped");
      }
      break;
    case kSz:
      sz_ = value & 0x0FFFFFFF;
      break;
    case kCr:
      if (value & kCrSwReset) {
        fifo_.clear();
        rfifo_.clear();
        writing_ = false;
        read_left_ = 0;
        break;
      }
      if (value & kCrFifoClear) {
        fifo_.clear();
        rfifo_.clear();
      }
      if (value & kCrWrite) writing_ = true;
      if (value & kCrRead) read_left_ = sz_;
      break;
    default:
      break;
  }
}

bool HwIcap::device_busy() const {
  return writing_ || fifo_.can_pop() || read_left_ > 0;
}

}  // namespace rvcap::hwicap
