// SD card model speaking the SD SPI-mode protocol.
//
// Implements the subset a bare-metal FAT32 driver needs: CMD0 (reset),
// CMD8 (interface condition), CMD55/ACMD41 (init), CMD58 (OCR, reports
// SDHC so addressing is in blocks), CMD17 (single-block read) and CMD24
// (single-block write), with start tokens, CRC16 on data, data-response
// and busy signalling. Byte-level full duplex: exchange() consumes one
// MOSI byte and returns the MISO byte, exactly what the SPI controller
// shifts per 8 clocks.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/fault_injector.hpp"
#include "storage/block_io.hpp"

namespace rvcap::storage {

class SdCard {
 public:
  explicit SdCard(u32 num_blocks);

  /// Full-duplex SPI byte exchange. cs_low = chip select asserted.
  u8 exchange(u8 mosi, bool cs_low);

  bool initialized() const { return initialized_; }
  u32 block_count() const { return num_blocks_; }

  // ---- backdoor (no protocol, no simulated time) ----
  Status backdoor_read(u32 lba, std::span<u8> buf) const;
  Status backdoor_write(u32 lba, std::span<const u8> buf);

  /// Optional fault injection (sites: sd.read.token, sd.read.crc).
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }

  /// Lifetime counters for tests.
  u64 blocks_read() const { return blocks_read_; }
  u64 blocks_written() const { return blocks_written_; }
  u64 crc_errors() const { return crc_errors_; }

  /// CRC16-CCITT over a data block, as SD cards compute it.
  static u16 crc16(std::span<const u8> data);
  /// CRC7 over a 5-byte command header (CMD byte + 4 arg bytes).
  static u8 crc7(std::span<const u8> data);

 private:
  enum class State {
    kIdle,           // waiting for a command byte
    kCommand,        // collecting the 6-byte command frame
    kResponseWait,   // Ncr gap before R1
    kResponse,       // shifting out the response bytes
    kReadToken,      // gap before the 0xFE start token
    kReadData,       // shifting out 512 data bytes + CRC16
    kWriteWaitToken, // waiting for the host's 0xFE token
    kWriteData,      // collecting 512 data bytes + CRC16
    kWriteBusy,      // data response sent, card busy (0x00)
  };

  void execute_command();
  u8* block(u32 lba);
  const u8* block(u32 lba) const;

  u32 num_blocks_;
  mutable std::unordered_map<u32, std::unique_ptr<std::array<u8, kBlockSize>>>
      blocks_;

  State state_ = State::kIdle;
  std::array<u8, 6> cmd_{};
  usize cmd_fill_ = 0;
  std::vector<u8> response_;
  usize resp_pos_ = 0;
  u32 gap_bytes_ = 0;  // idle 0xFF bytes before responding
  u32 data_lba_ = 0;
  std::array<u8, kBlockSize + 2> data_buf_{};  // block + CRC16
  usize data_pos_ = 0;
  u32 busy_bytes_ = 0;
  bool acmd_ = false;        // previous command was CMD55
  bool initialized_ = false; // ACMD41 completed
  u32 acmd41_polls_ = 0;     // require a couple of ACMD41 retries
  bool after_response_read_ = false;  // CMD17: data phase follows R1
  bool after_response_write_ = false; // CMD24: host data phase follows R1

  u64 blocks_read_ = 0;
  u64 blocks_written_ = 0;
  u64 crc_errors_ = 0;
  sim::FaultInjector* fault_ = nullptr;
};

/// Backdoor BlockIo binding over the card (host-side format/tests).
class MemBlockIo final : public BlockIo {
 public:
  explicit MemBlockIo(SdCard& card) : card_(card) {}

  Status read(u32 lba, std::span<u8> buf) override {
    return card_.backdoor_read(lba, buf);
  }
  Status write(u32 lba, std::span<const u8> buf) override {
    return card_.backdoor_write(lba, buf);
  }
  u32 block_count() const override { return card_.block_count(); }

 private:
  SdCard& card_;
};

}  // namespace rvcap::storage
