// AXI SPI controller peripheral (Xilinx AXI Quad SPI-style register
// subset) connecting the SoC bus to the external SD card (§III-A).
//
// Register map (offsets from the device base):
//   0x60 SPICR  — control: bit0 enable, bit5 tx-fifo reset, bit6 rx-fifo
//                 reset
//   0x64 SPISR  — status: bit0 rx empty, bit1 rx full, bit2 tx empty,
//                 bit3 tx full, bit4 transfer busy
//   0x68 SPIDTR — transmit data (push one byte into the TX FIFO)
//   0x6C SPIDRR — receive data (pop one byte from the RX FIFO)
//   0x70 SPISSR — slave select, active-low bit0
//
// One byte takes 8 * clock_divider core cycles on the wire; divider 4
// models the 25 MHz high-speed SD SPI clock from the 100 MHz core clock.
#pragma once

#include "axi/lite_slave.hpp"
#include "sim/fifo.hpp"
#include "storage/sd_card.hpp"

namespace rvcap::storage {

class SpiController : public axi::AxiLiteSlave {
 public:
  static constexpr Addr kCr = 0x60;
  static constexpr Addr kSr = 0x64;
  static constexpr Addr kDtr = 0x68;
  static constexpr Addr kDrr = 0x6C;
  static constexpr Addr kSsr = 0x70;

  static constexpr u32 kSrRxEmpty = 1u << 0;
  static constexpr u32 kSrRxFull = 1u << 1;
  static constexpr u32 kSrTxEmpty = 1u << 2;
  static constexpr u32 kSrTxFull = 1u << 3;
  static constexpr u32 kSrBusy = 1u << 4;

  SpiController(std::string name, SdCard& card, u32 clock_divider = 4);

  u32 clock_divider() const { return divider_; }
  u64 bytes_transferred() const { return bytes_; }

 protected:
  u32 read_reg(Addr addr) override;
  void write_reg(Addr addr, u32 value) override;
  bool device_tick() override;
  bool device_busy() const override;

 private:
  SdCard& card_;
  u32 divider_;
  sim::Fifo<u8> tx_{16};
  sim::Fifo<u8> rx_{16};
  u32 ssr_ = 0x1;  // deselected (active low)
  bool enabled_ = false;
  u32 shift_countdown_ = 0;
  bool shifting_ = false;
  u8 shift_byte_ = 0;
  u64 bytes_ = 0;
};

}  // namespace rvcap::storage
