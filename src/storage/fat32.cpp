#include "storage/fat32.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/bytes.hpp"
#include "common/log.hpp"

namespace rvcap::storage {

namespace {

constexpr u32 kReservedSectors = 32;
constexpr u32 kNumFats = 2;

/// Entries (FAT cells) per FAT sector: 512 / 4.
constexpr u32 kCellsPerSector = kBlockSize / 4;

void put_bpb(std::span<u8> s, const Fat32FormatParams& p, u32 total_sectors,
             u32 fat_size) {
  s[0] = 0xEB;  // jmp short
  s[1] = 0x58;
  s[2] = 0x90;
  std::memcpy(s.data() + 3, "RVCAPFAT", 8);     // OEM name
  store_le16(s.subspan(0x0B), kBlockSize);      // bytes per sector
  s[0x0D] = p.sectors_per_cluster;
  store_le16(s.subspan(0x0E), static_cast<u16>(kReservedSectors));
  s[0x10] = kNumFats;
  store_le16(s.subspan(0x11), 0);               // FAT32: no root entries
  store_le16(s.subspan(0x13), 0);               // total16 = 0
  s[0x15] = 0xF8;                               // media: fixed disk
  store_le16(s.subspan(0x16), 0);               // FAT16 size = 0
  store_le16(s.subspan(0x18), 63);              // geometry (unused)
  store_le16(s.subspan(0x1A), 255);
  store_le32(s.subspan(0x1C), 0);               // hidden
  store_le32(s.subspan(0x20), total_sectors);
  store_le32(s.subspan(0x24), fat_size);
  store_le16(s.subspan(0x28), 0);               // ext flags: mirrored
  store_le16(s.subspan(0x2A), 0);               // version 0.0
  store_le32(s.subspan(0x2C), 2);               // root cluster
  store_le16(s.subspan(0x30), 1);               // FSInfo sector
  store_le16(s.subspan(0x32), 6);               // backup boot sector
  s[0x40] = 0x80;                               // drive number
  s[0x42] = 0x29;                               // extended boot sig
  store_le32(s.subspan(0x43), 0x52564341);      // volume id "RVCA"
  std::string label = p.volume_label;
  label.resize(11, ' ');
  std::memcpy(s.data() + 0x47, label.data(), 11);
  std::memcpy(s.data() + 0x52, "FAT32   ", 8);
  s[0x1FE] = 0x55;
  s[0x1FF] = 0xAA;
}

}  // namespace

Status fat32_format(BlockIo& dev, const Fat32FormatParams& params) {
  const u32 total = dev.block_count();
  const u32 spc = params.sectors_per_cluster;
  if (spc == 0 || (spc & (spc - 1)) != 0) return Status::kInvalidArgument;
  if (total < 2048) return Status::kInvalidArgument;  // < 1 MiB

  // Fixed-point iteration for the FAT size (how real mkfs.fat sizes it).
  u32 fat_size = 1;
  for (int i = 0; i < 16; ++i) {
    const u32 data_sectors = total - kReservedSectors - kNumFats * fat_size;
    const u32 clusters = data_sectors / spc;
    const u32 needed = (clusters + 2 + kCellsPerSector - 1) / kCellsPerSector;
    if (needed <= fat_size) break;
    fat_size = needed;
  }

  std::array<u8, kBlockSize> sector{};

  // Boot sector + backup copy.
  put_bpb(sector, params, total, fat_size);
  if (auto st = dev.write(0, sector); !ok(st)) return st;
  if (auto st = dev.write(6, sector); !ok(st)) return st;

  // FSInfo.
  sector.fill(0);
  store_le32(std::span(sector).subspan(0), 0x41615252);
  store_le32(std::span(sector).subspan(484), 0x61417272);
  const u32 data_sectors = total - kReservedSectors - kNumFats * fat_size;
  store_le32(std::span(sector).subspan(488), data_sectors / spc - 1);
  store_le32(std::span(sector).subspan(492), 3);  // next-free hint
  store_le32(std::span(sector).subspan(508), 0xAA550000);
  if (auto st = dev.write(1, sector); !ok(st)) return st;

  // Zero both FATs.
  sector.fill(0);
  for (u32 f = 0; f < kNumFats; ++f) {
    for (u32 i = 0; i < fat_size; ++i) {
      if (auto st = dev.write(kReservedSectors + f * fat_size + i, sector);
          !ok(st)) {
        return st;
      }
    }
  }
  // FAT[0], FAT[1], FAT[2]=EOC for the root directory.
  store_le32(std::span(sector).subspan(0), 0x0FFFFFF8);
  store_le32(std::span(sector).subspan(4), 0x0FFFFFFF);
  store_le32(std::span(sector).subspan(8), 0x0FFFFFFF);
  if (auto st = dev.write(kReservedSectors, sector); !ok(st)) return st;
  if (auto st = dev.write(kReservedSectors + fat_size, sector); !ok(st)) {
    return st;
  }

  // Zero the root directory cluster.
  sector.fill(0);
  const u32 data_start = kReservedSectors + kNumFats * fat_size;
  for (u32 i = 0; i < spc; ++i) {
    if (auto st = dev.write(data_start + i, sector); !ok(st)) return st;
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Mount and low-level helpers
// ---------------------------------------------------------------------------

Status Fat32Volume::mount() {
  std::array<u8, kBlockSize> s{};
  if (auto st = read_sector(0, s); !ok(st)) return st;
  if (s[0x1FE] != 0x55 || s[0x1FF] != 0xAA) return Status::kProtocolError;
  if (load_le16(std::span(s).subspan(0x0B)) != kBlockSize) {
    return Status::kNotSupported;
  }
  if (std::memcmp(s.data() + 0x52, "FAT32   ", 8) != 0) {
    return Status::kNotSupported;
  }
  sectors_per_cluster_ = s[0x0D];
  reserved_sectors_ = load_le16(std::span(s).subspan(0x0E));
  num_fats_ = s[0x10];
  total_sectors_ = load_le32(std::span(s).subspan(0x20));
  fat_size_ = load_le32(std::span(s).subspan(0x24));
  root_cluster_ = load_le32(std::span(s).subspan(0x2C));
  if (sectors_per_cluster_ == 0 || num_fats_ == 0 || fat_size_ == 0) {
    return Status::kProtocolError;
  }
  data_start_ = reserved_sectors_ + num_fats_ * fat_size_;
  total_clusters_ =
      (total_sectors_ - data_start_) / sectors_per_cluster_;
  alloc_hint_ = 3;
  fat_cache_sector_ = ~u32{0};
  fat_cache_dirty_ = false;
  mounted_ = true;
  return Status::kOk;
}

Status Fat32Volume::read_sector(u32 lba, std::span<u8> buf) {
  return dev_.read(lba, buf);
}

Status Fat32Volume::write_sector(u32 lba, std::span<const u8> buf) {
  return dev_.write(lba, buf);
}

u32 Fat32Volume::cluster_lba(u32 cluster) const {
  return data_start_ + (cluster - 2) * sectors_per_cluster_;
}

Status Fat32Volume::fat_load(u32 sector_index) {
  if (fat_cache_sector_ == sector_index) return Status::kOk;
  if (auto st = fat_flush(); !ok(st)) return st;
  if (auto st = read_sector(reserved_sectors_ + sector_index, fat_cache_);
      !ok(st)) {
    return st;
  }
  fat_cache_sector_ = sector_index;
  return Status::kOk;
}

Status Fat32Volume::fat_flush() {
  if (!fat_cache_dirty_ || fat_cache_sector_ == ~u32{0}) return Status::kOk;
  // Mirror the dirty sector into every FAT copy.
  for (u32 f = 0; f < num_fats_; ++f) {
    if (auto st = write_sector(
            reserved_sectors_ + f * fat_size_ + fat_cache_sector_,
            fat_cache_);
        !ok(st)) {
      return st;
    }
  }
  fat_cache_dirty_ = false;
  return Status::kOk;
}

Status Fat32Volume::fat_get(u32 cluster, u32* value) {
  if (cluster < 2 || cluster >= total_clusters_ + 2) {
    return Status::kOutOfRange;
  }
  if (auto st = fat_load(cluster / kCellsPerSector); !ok(st)) return st;
  *value = load_le32(std::span(fat_cache_)
                         .subspan((cluster % kCellsPerSector) * 4)) &
           0x0FFFFFFF;
  return Status::kOk;
}

Status Fat32Volume::fat_set(u32 cluster, u32 value) {
  if (cluster < 2 || cluster >= total_clusters_ + 2) {
    return Status::kOutOfRange;
  }
  if (auto st = fat_load(cluster / kCellsPerSector); !ok(st)) return st;
  store_le32(
      std::span(fat_cache_).subspan((cluster % kCellsPerSector) * 4),
      value & 0x0FFFFFFF);
  fat_cache_dirty_ = true;
  return Status::kOk;
}

Status Fat32Volume::alloc_cluster(u32 hint, u32* out) {
  const u32 n = total_clusters_;
  u32 c = std::max<u32>(hint, 2);
  for (u32 scanned = 0; scanned < n; ++scanned, ++c) {
    if (c >= n + 2) c = 2;
    u32 v = 0;
    if (auto st = fat_get(c, &v); !ok(st)) return st;
    if (v == 0) {
      if (auto st = fat_set(c, 0x0FFFFFFF); !ok(st)) return st;
      alloc_hint_ = c + 1;
      *out = c;
      return Status::kOk;
    }
  }
  return Status::kNoSpace;
}

Status Fat32Volume::free_chain(u32 first) {
  u32 c = first;
  // No valid chain has more links than the volume has clusters; a FAT
  // corrupted into a cycle (or cross-linked into a longer walk) trips
  // the bound instead of spinning forever.
  for (u32 hops = 0; c >= 2 && c < kEoc; ++hops) {
    if (hops >= total_clusters_) {
      log_warn("fat32: cluster chain cycle detected while freeing");
      fat_flush();
      return Status::kIoError;
    }
    u32 next = 0;
    if (auto st = fat_get(c, &next); !ok(st)) return st;
    if (auto st = fat_set(c, 0); !ok(st)) return st;
    if (next == 0) break;  // broken chain: stop rather than loop
    c = next;
  }
  return fat_flush();
}

u32 Fat32Volume::free_clusters() {
  u32 count = 0;
  for (u32 c = 2; c < total_clusters_ + 2; ++c) {
    u32 v = 0;
    if (!ok(fat_get(c, &v))) return count;
    if (v == 0) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Names and directory scanning
// ---------------------------------------------------------------------------

Status Fat32Volume::to_83(std::string_view name, std::array<u8, 11>* out) {
  out->fill(' ');
  if (name.empty() || name == "." || name == "..") {
    return Status::kInvalidArgument;
  }
  const auto dot = name.rfind('.');
  const std::string_view base =
      (dot == std::string_view::npos) ? name : name.substr(0, dot);
  const std::string_view ext =
      (dot == std::string_view::npos) ? "" : name.substr(dot + 1);
  if (base.empty() || base.size() > 8 || ext.size() > 3) {
    return Status::kInvalidArgument;
  }
  for (usize i = 0; i < base.size(); ++i) {
    const char c = base[i];
    if (c == '/' || c == '\\' || c == ' ') return Status::kInvalidArgument;
    (*out)[i] = static_cast<u8>(std::toupper(static_cast<unsigned char>(c)));
  }
  for (usize i = 0; i < ext.size(); ++i) {
    const char c = ext[i];
    if (c == '/' || c == '\\' || c == ' ') return Status::kInvalidArgument;
    (*out)[8 + i] =
        static_cast<u8>(std::toupper(static_cast<unsigned char>(c)));
  }
  return Status::kOk;
}

namespace {

std::string from_83(const std::array<u8, 11>& raw) {
  std::string base, ext;
  for (int i = 0; i < 8; ++i) {
    if (raw[i] != ' ') base.push_back(static_cast<char>(raw[i]));
  }
  for (int i = 8; i < 11; ++i) {
    if (raw[i] != ' ') ext.push_back(static_cast<char>(raw[i]));
  }
  return ext.empty() ? base : base + "." + ext;
}

}  // namespace

template <typename Fn>
Status Fat32Volume::scan_dir(u32 dir_cluster, Fn&& fn) {
  u32 c = dir_cluster;
  std::array<u8, kBlockSize> sec{};
  u32 hops = 0;
  while (c >= 2 && c < kEoc) {
    if (++hops > total_clusters_) {
      log_warn("fat32: directory chain cycle detected");
      return Status::kIoError;
    }
    for (u32 s = 0; s < sectors_per_cluster_; ++s) {
      const u32 lba = cluster_lba(c) + s;
      if (auto st = read_sector(lba, sec); !ok(st)) return st;
      for (u32 off = 0; off < kBlockSize; off += kEntrySize) {
        const u8 first = sec[off];
        if (first == 0x00) return Status::kOk;  // end of directory
        if (first == kDeleted) continue;
        RawEntry e;
        std::memcpy(e.name.data(), sec.data() + off, 11);
        e.attr = sec[off + 0x0B];
        if (e.attr == 0x0F) continue;  // LFN entries: skip
        e.first_cluster =
            (u32{load_le16(std::span(sec).subspan(off + 0x14))} << 16) |
            load_le16(std::span(sec).subspan(off + 0x1A));
        e.size = load_le32(std::span(sec).subspan(off + 0x1C));
        if (fn(e, EntryLoc{lba, off})) return Status::kOk;
      }
    }
    u32 next = 0;
    if (auto st = fat_get(c, &next); !ok(st)) return st;
    c = next;
  }
  return Status::kOk;
}

Status Fat32Volume::find_in_dir(u32 dir_cluster,
                                const std::array<u8, 11>& name,
                                RawEntry* entry, EntryLoc* loc) {
  bool found = false;
  const Status st = scan_dir(dir_cluster, [&](const RawEntry& e,
                                              const EntryLoc& l) {
    if (e.name == name) {
      if (entry != nullptr) *entry = e;
      if (loc != nullptr) *loc = l;
      found = true;
      return true;
    }
    return false;
  });
  if (!ok(st)) return st;
  return found ? Status::kOk : Status::kNotFound;
}

Status Fat32Volume::update_entry(const EntryLoc& loc, const RawEntry& e) {
  std::array<u8, kBlockSize> sec{};
  if (auto st = read_sector(loc.lba, sec); !ok(st)) return st;
  std::memcpy(sec.data() + loc.offset, e.name.data(), 11);
  sec[loc.offset + 0x0B] = e.attr;
  store_le16(std::span(sec).subspan(loc.offset + 0x14),
             static_cast<u16>(e.first_cluster >> 16));
  store_le16(std::span(sec).subspan(loc.offset + 0x1A),
             static_cast<u16>(e.first_cluster & 0xFFFF));
  store_le32(std::span(sec).subspan(loc.offset + 0x1C), e.size);
  return write_sector(loc.lba, sec);
}

Status Fat32Volume::add_dir_entry(u32 dir_cluster, const RawEntry& entry) {
  // Find a free (0x00 / 0xE5) slot, extending the chain when full.
  u32 c = dir_cluster;
  std::array<u8, kBlockSize> sec{};
  for (u32 hops = 0;; ++hops) {
    if (hops > total_clusters_) {
      log_warn("fat32: directory chain cycle detected while appending");
      return Status::kIoError;
    }
    for (u32 s = 0; s < sectors_per_cluster_; ++s) {
      const u32 lba = cluster_lba(c) + s;
      if (auto st = read_sector(lba, sec); !ok(st)) return st;
      for (u32 off = 0; off < kBlockSize; off += kEntrySize) {
        if (sec[off] == 0x00 || sec[off] == kDeleted) {
          return update_entry(EntryLoc{lba, off}, entry);
        }
      }
    }
    u32 next = 0;
    if (auto st = fat_get(c, &next); !ok(st)) return st;
    if (next >= kEoc) {
      u32 fresh = 0;
      if (auto st = alloc_cluster(alloc_hint_, &fresh); !ok(st)) return st;
      if (auto st = fat_set(c, fresh); !ok(st)) return st;
      if (auto st = fat_flush(); !ok(st)) return st;
      // Zero the new directory cluster.
      sec.fill(0);
      for (u32 s = 0; s < sectors_per_cluster_; ++s) {
        if (auto st = write_sector(cluster_lba(fresh) + s, sec); !ok(st)) {
          return st;
        }
      }
      next = fresh;
    }
    c = next;
  }
}

Status Fat32Volume::resolve_parent(std::string_view path, u32* parent_cluster,
                                   std::array<u8, 11>* leaf) {
  if (!mounted_) return Status::kInternal;
  while (!path.empty() && path.front() == '/') path.remove_prefix(1);
  if (path.empty()) return Status::kInvalidArgument;

  u32 dir = root_cluster_;
  while (true) {
    const auto slash = path.find('/');
    const std::string_view comp =
        (slash == std::string_view::npos) ? path : path.substr(0, slash);
    if (slash == std::string_view::npos) {
      if (auto st = to_83(comp, leaf); !ok(st)) return st;
      *parent_cluster = dir;
      return Status::kOk;
    }
    std::array<u8, 11> name{};
    if (auto st = to_83(comp, &name); !ok(st)) return st;
    RawEntry e;
    if (auto st = find_in_dir(dir, name, &e, nullptr); !ok(st)) return st;
    if ((e.attr & kAttrDir) == 0) return Status::kNotFound;
    dir = e.first_cluster;
    path = path.substr(slash + 1);
  }
}

// ---------------------------------------------------------------------------
// File operations
// ---------------------------------------------------------------------------

Status Fat32Volume::write_chain(std::span<const u8> data, u32* first_cluster) {
  *first_cluster = 0;
  if (data.empty()) return Status::kOk;
  const u32 cbytes = cluster_bytes();
  u32 prev = 0;
  std::array<u8, kBlockSize> sec{};
  for (usize pos = 0; pos < data.size(); pos += cbytes) {
    u32 c = 0;
    if (auto st = alloc_cluster(alloc_hint_, &c); !ok(st)) return st;
    if (prev == 0) {
      *first_cluster = c;
    } else {
      if (auto st = fat_set(prev, c); !ok(st)) return st;
    }
    prev = c;
    const usize chunk = std::min<usize>(cbytes, data.size() - pos);
    for (u32 s = 0; s * kBlockSize < chunk; ++s) {
      const usize off = pos + usize{s} * kBlockSize;
      const usize n = std::min<usize>(kBlockSize, data.size() - off);
      std::memcpy(sec.data(), data.data() + off, n);
      if (n < kBlockSize) std::memset(sec.data() + n, 0, kBlockSize - n);
      if (auto st = write_sector(cluster_lba(c) + s, sec); !ok(st)) return st;
    }
  }
  return fat_flush();
}

Status Fat32Volume::write_file(std::string_view path,
                               std::span<const u8> data) {
  if (data.size() > 0xFFFFFFFFULL) return Status::kInvalidArgument;
  u32 parent = 0;
  std::array<u8, 11> name{};
  if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;

  RawEntry existing;
  EntryLoc loc;
  const Status found = find_in_dir(parent, name, &existing, &loc);
  if (found == Status::kOk && (existing.attr & kAttrDir) != 0) {
    return Status::kAlreadyExists;  // path names a directory
  }
  if (found != Status::kOk && found != Status::kNotFound) return found;

  // Overwrite semantics: drop the old chain, then write the new one.
  if (found == Status::kOk && existing.first_cluster != 0) {
    if (auto st = free_chain(existing.first_cluster); !ok(st)) return st;
  }
  u32 first = 0;
  if (auto st = write_chain(data, &first); !ok(st)) return st;

  RawEntry e;
  e.name = name;
  e.attr = kAttrArchive;
  e.first_cluster = first;
  e.size = static_cast<u32>(data.size());
  if (found == Status::kOk) return update_entry(loc, e);
  return add_dir_entry(parent, e);
}

Status Fat32Volume::file_size(std::string_view path, u32* size) {
  u32 parent = 0;
  std::array<u8, 11> name{};
  if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;
  RawEntry e;
  if (auto st = find_in_dir(parent, name, &e, nullptr); !ok(st)) return st;
  if ((e.attr & kAttrDir) != 0) return Status::kInvalidArgument;
  *size = e.size;
  return Status::kOk;
}

Status Fat32Volume::read_file_range(std::string_view path, u32 offset,
                                    std::span<u8> out) {
  u32 parent = 0;
  std::array<u8, 11> name{};
  if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;
  RawEntry e;
  if (auto st = find_in_dir(parent, name, &e, nullptr); !ok(st)) return st;
  if ((e.attr & kAttrDir) != 0) return Status::kInvalidArgument;
  if (u64{offset} + out.size() > e.size) return Status::kOutOfRange;
  if (out.empty()) return Status::kOk;

  const u32 cbytes = cluster_bytes();
  // Overlength guard: a file of e.size bytes can span at most this many
  // clusters, so any walk past it means the FAT is cross-linked or
  // cyclic — fail instead of reading unrelated clusters.
  const u32 max_hops = (e.size + cbytes - 1) / cbytes;
  u32 hops = 0;
  u32 c = e.first_cluster;
  for (u32 skip = offset / cbytes; skip > 0; --skip) {
    if (auto st = fat_get(c, &c); !ok(st)) return st;
    if (c < 2 || c >= kEoc) return Status::kIoError;
    if (++hops >= max_hops) return Status::kIoError;
  }
  u32 in_cluster = offset % cbytes;
  usize done = 0;
  std::array<u8, kBlockSize> sec{};
  while (done < out.size()) {
    const u32 s = in_cluster / kBlockSize;
    const u32 in_sec = in_cluster % kBlockSize;
    if (auto st = read_sector(cluster_lba(c) + s, sec); !ok(st)) return st;
    const usize n =
        std::min<usize>(kBlockSize - in_sec, out.size() - done);
    std::memcpy(out.data() + done, sec.data() + in_sec, n);
    done += n;
    in_cluster += static_cast<u32>(n);
    if (in_cluster == cbytes && done < out.size()) {
      in_cluster = 0;
      if (auto st = fat_get(c, &c); !ok(st)) return st;
      if (c < 2 || c >= kEoc) return Status::kIoError;
      if (++hops >= max_hops) return Status::kIoError;
    }
  }
  return Status::kOk;
}

Status Fat32Volume::read_file(std::string_view path, std::vector<u8>& out) {
  u32 size = 0;
  if (auto st = file_size(path, &size); !ok(st)) return st;
  out.resize(size);
  if (size == 0) return Status::kOk;
  return read_file_range(path, 0, out);
}

Status Fat32Volume::remove(std::string_view path) {
  u32 parent = 0;
  std::array<u8, 11> name{};
  if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;
  RawEntry e;
  EntryLoc loc;
  if (auto st = find_in_dir(parent, name, &e, &loc); !ok(st)) return st;

  if ((e.attr & kAttrDir) != 0) {
    // Only empty directories are removable.
    bool has_children = false;
    const Status st =
        scan_dir(e.first_cluster, [&](const RawEntry& child, const EntryLoc&) {
          const std::string n = from_83(child.name);
          if (n != "." && n != "..") {
            has_children = true;
            return true;
          }
          return false;
        });
    if (!ok(st)) return st;
    if (has_children) return Status::kDeviceBusy;
  }
  if (e.first_cluster != 0) {
    if (auto st = free_chain(e.first_cluster); !ok(st)) return st;
  }
  std::array<u8, kBlockSize> sec{};
  if (auto st = read_sector(loc.lba, sec); !ok(st)) return st;
  sec[loc.offset] = kDeleted;
  return write_sector(loc.lba, sec);
}

Status Fat32Volume::make_dir(std::string_view path) {
  u32 parent = 0;
  std::array<u8, 11> name{};
  if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;
  if (find_in_dir(parent, name, nullptr, nullptr) == Status::kOk) {
    return Status::kAlreadyExists;
  }
  u32 c = 0;
  if (auto st = alloc_cluster(alloc_hint_, &c); !ok(st)) return st;
  if (auto st = fat_flush(); !ok(st)) return st;

  // Zero the cluster, then write "." and ".." entries.
  std::array<u8, kBlockSize> sec{};
  for (u32 s = 0; s < sectors_per_cluster_; ++s) {
    if (auto st = write_sector(cluster_lba(c) + s, sec); !ok(st)) return st;
  }
  auto put_dot = [&](u32 off, const char* n, u32 cluster) {
    std::memset(sec.data() + off, ' ', 11);
    std::memcpy(sec.data() + off, n, std::strlen(n));
    sec[off + 0x0B] = kAttrDir;
    store_le16(std::span(sec).subspan(off + 0x14),
               static_cast<u16>(cluster >> 16));
    store_le16(std::span(sec).subspan(off + 0x1A),
               static_cast<u16>(cluster & 0xFFFF));
  };
  put_dot(0, ".", c);
  put_dot(32, "..", parent == root_cluster_ ? 0 : parent);
  if (auto st = write_sector(cluster_lba(c), sec); !ok(st)) return st;

  RawEntry e;
  e.name = name;
  e.attr = kAttrDir;
  e.first_cluster = c;
  e.size = 0;
  return add_dir_entry(parent, e);
}

Status Fat32Volume::list(std::string_view path, std::vector<DirEntryInfo>& out) {
  out.clear();
  u32 dir = root_cluster_;
  if (!path.empty() && path != "/") {
    u32 parent = 0;
    std::array<u8, 11> name{};
    if (auto st = resolve_parent(path, &parent, &name); !ok(st)) return st;
    RawEntry e;
    if (auto st = find_in_dir(parent, name, &e, nullptr); !ok(st)) return st;
    if ((e.attr & kAttrDir) == 0) return Status::kInvalidArgument;
    dir = e.first_cluster;
  }
  return scan_dir(dir, [&](const RawEntry& e, const EntryLoc&) {
    const std::string n = from_83(e.name);
    if (n == "." || n == "..") return false;
    out.push_back(DirEntryInfo{n, e.size, e.first_cluster,
                               (e.attr & kAttrDir) != 0});
    return false;
  });
}

}  // namespace rvcap::storage
