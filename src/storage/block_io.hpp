// Block-device abstraction under the FAT32 layer.
//
// The same FAT32 code runs in two bindings:
//  * MemBlockIo  — direct backdoor into the SD-card model (host-side
//    formatting and fast test setup);
//  * the driver layer's SpiSdBlockIo — every block goes through the CPU
//    model, the SPI controller, and the SD SPI protocol, accruing
//    simulated time (the paper's software path).
#pragma once

#include <span>

#include "common/status.hpp"
#include "common/types.hpp"

namespace rvcap::storage {

inline constexpr u32 kBlockSize = 512;

class BlockIo {
 public:
  virtual ~BlockIo() = default;

  /// Read one 512-byte block; buf.size() must be kBlockSize.
  virtual Status read(u32 lba, std::span<u8> buf) = 0;
  /// Write one 512-byte block.
  virtual Status write(u32 lba, std::span<const u8> buf) = 0;
  virtual u32 block_count() const = 0;
};

}  // namespace rvcap::storage
