#include "storage/spi.hpp"

namespace rvcap::storage {

SpiController::SpiController(std::string name, SdCard& card, u32 clock_divider)
    : AxiLiteSlave(std::move(name)), card_(card), divider_(clock_divider) {}

bool SpiController::device_tick() {
  if (!shifting_) {
    if (enabled_ && tx_.can_pop() && rx_.can_push()) {
      shift_byte_ = *tx_.pop();
      shift_countdown_ = 8 * divider_;
      shifting_ = true;
      return true;
    }
    return false;
  }
  if (--shift_countdown_ == 0) {
    const u8 miso = card_.exchange(shift_byte_, (ssr_ & 1) == 0);
    rx_.push(miso);  // vacancy was checked before starting the shift
    ++bytes_;
    shifting_ = false;
  }
  return true;  // the shift countdown advanced
}

u32 SpiController::read_reg(Addr addr) {
  switch (addr & 0xFF) {
    case kSr: {
      u32 sr = 0;
      if (rx_.empty()) sr |= kSrRxEmpty;
      if (rx_.full()) sr |= kSrRxFull;
      if (tx_.empty() && !shifting_) sr |= kSrTxEmpty;
      if (tx_.full()) sr |= kSrTxFull;
      if (shifting_) sr |= kSrBusy;
      return sr;
    }
    case kDrr: {
      const auto b = rx_.pop();
      return b.has_value() ? u32{*b} : 0xFFu;
    }
    case kSsr:
      return ssr_;
    case kCr:
      return enabled_ ? 0x1u : 0x0u;
    default:
      return 0;
  }
}

void SpiController::write_reg(Addr addr, u32 value) {
  switch (addr & 0xFF) {
    case kCr:
      enabled_ = (value & 1) != 0;
      if (value & (1u << 5)) tx_.clear();
      if (value & (1u << 6)) rx_.clear();
      break;
    case kDtr:
      tx_.push(static_cast<u8>(value & 0xFF));  // full FIFO drops, as HW
      break;
    case kSsr:
      ssr_ = value & 1;
      break;
    default:
      break;
  }
}

bool SpiController::device_busy() const {
  return shifting_ || tx_.can_pop();
}

}  // namespace rvcap::storage
