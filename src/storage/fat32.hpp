// Minimal FAT32 implementation (format + volume operations).
//
// The paper (§III-A) develops "a set of file I/O software functions
// based on the minimalist implementation of the file allocation table
// (FAT32) ... to support file reading, writing, and overwriting". This
// module reproduces that layer from scratch:
//   * fat32_format(): mkfs — BPB, FSInfo, two FAT copies, root dir;
//   * Fat32Volume: mount, 8.3 path lookup (subdirectories supported,
//     no long file names — a bare-metal driver restriction), file
//     create/read/write/overwrite/remove, directory listing, free-space
//     accounting via a 1-sector FAT cache.
//
// All I/O goes through the BlockIo binding, so the same code runs both
// host-side (test setup) and on the simulated CPU through the SPI/SD
// stack where every block access costs simulated time.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "storage/block_io.hpp"

namespace rvcap::storage {

struct Fat32FormatParams {
  u8 sectors_per_cluster = 8;     // 4 KiB clusters
  std::string volume_label = "RVCAP";
};

/// Format the device with a FAT32 filesystem. Requires at least ~1 MiB
/// of blocks (FAT32 needs a minimum cluster count to be recognizable).
Status fat32_format(BlockIo& dev, const Fat32FormatParams& params = {});

struct DirEntryInfo {
  std::string name;  // canonical 8.3 form, e.g. "SOBEL.PB"
  u32 size = 0;
  u32 first_cluster = 0;
  bool is_dir = false;
};

class Fat32Volume {
 public:
  explicit Fat32Volume(BlockIo& dev) : dev_(dev) {}

  /// Parse the BPB; must be called (and succeed) before any file op.
  Status mount();
  bool mounted() const { return mounted_; }

  // Paths are '/'-separated 8.3 components, case-insensitive
  // ("bits/sobel.pb" == "BITS/SOBEL.PB").
  Status write_file(std::string_view path, std::span<const u8> data);
  Status read_file(std::string_view path, std::vector<u8>& out);
  /// Read [offset, offset+out.size()) of the file — the driver uses
  /// this to stream partial bitstreams into DDR chunk by chunk.
  Status read_file_range(std::string_view path, u32 offset,
                         std::span<u8> out);
  Status file_size(std::string_view path, u32* size);
  Status remove(std::string_view path);
  Status make_dir(std::string_view path);
  Status list(std::string_view path, std::vector<DirEntryInfo>& out);

  u32 free_clusters();
  u32 total_clusters() const { return total_clusters_; }
  u32 cluster_bytes() const { return sectors_per_cluster_ * kBlockSize; }

  /// Convert a name component to its 11-byte 8.3 directory form;
  /// returns kInvalidArgument for names that do not fit.
  static Status to_83(std::string_view name, std::array<u8, 11>* out);

 private:
  static constexpr u32 kEoc = 0x0FFFFFF8;   // >= kEoc means end-of-chain
  static constexpr u32 kEntrySize = 32;
  static constexpr u8 kAttrDir = 0x10;
  static constexpr u8 kAttrArchive = 0x20;
  static constexpr u8 kDeleted = 0xE5;

  struct RawEntry {
    std::array<u8, 11> name;
    u8 attr = 0;
    u32 first_cluster = 0;
    u32 size = 0;
  };
  struct EntryLoc {
    u32 lba = 0;   // sector holding the 32-byte entry
    u32 offset = 0;
  };

  Status read_sector(u32 lba, std::span<u8> buf);
  Status write_sector(u32 lba, std::span<const u8> buf);

  u32 cluster_lba(u32 cluster) const;
  Status fat_get(u32 cluster, u32* value);
  Status fat_set(u32 cluster, u32 value);
  Status fat_flush();
  Status fat_load(u32 sector_index);
  Status alloc_cluster(u32 hint, u32* out);
  Status free_chain(u32 first);

  /// Walk a directory chain; invokes fn(entry, loc) per live entry.
  /// fn returns true to stop the scan.
  template <typename Fn>
  Status scan_dir(u32 dir_cluster, Fn&& fn);

  Status find_in_dir(u32 dir_cluster, const std::array<u8, 11>& name,
                     RawEntry* entry, EntryLoc* loc);
  Status add_dir_entry(u32 dir_cluster, const RawEntry& entry);
  Status update_entry(const EntryLoc& loc, const RawEntry& entry);

  /// Resolve the parent directory of `path`; returns the final
  /// component via `leaf`.
  Status resolve_parent(std::string_view path, u32* parent_cluster,
                        std::array<u8, 11>* leaf);
  Status write_chain(std::span<const u8> data, u32* first_cluster);

  BlockIo& dev_;
  bool mounted_ = false;
  u32 sectors_per_cluster_ = 0;
  u32 reserved_sectors_ = 0;
  u32 num_fats_ = 0;
  u32 fat_size_ = 0;       // sectors per FAT
  u32 total_sectors_ = 0;
  u32 root_cluster_ = 0;
  u32 data_start_ = 0;     // first data sector
  u32 total_clusters_ = 0;
  u32 alloc_hint_ = 2;

  // 1-sector FAT cache (write-back, mirrored to the second FAT).
  std::array<u8, kBlockSize> fat_cache_{};
  u32 fat_cache_sector_ = ~u32{0};
  bool fat_cache_dirty_ = false;
};

}  // namespace rvcap::storage
