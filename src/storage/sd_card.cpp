#include "storage/sd_card.hpp"

#include <cstring>

#include "common/log.hpp"

namespace rvcap::storage {

namespace {
constexpr u8 kR1Idle = 0x01;
constexpr u8 kR1Ok = 0x00;
constexpr u8 kR1IllegalCmd = 0x04;
constexpr u8 kTokenStart = 0xFE;
constexpr u8 kDataAccepted = 0x05;
constexpr u8 kDataCrcError = 0x0B;
}  // namespace

SdCard::SdCard(u32 num_blocks) : num_blocks_(num_blocks) {}

u8* SdCard::block(u32 lba) {
  auto& b = blocks_[lba];
  if (!b) {
    b = std::make_unique<std::array<u8, kBlockSize>>();
    b->fill(0);
  }
  return b->data();
}

const u8* SdCard::block(u32 lba) const {
  const auto it = blocks_.find(lba);
  return it == blocks_.end() ? nullptr : it->second->data();
}

u16 SdCard::crc16(std::span<const u8> data) {
  u16 crc = 0;
  for (u8 byte : data) {
    crc ^= static_cast<u16>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<u16>((crc << 1) ^ 0x1021)
                           : static_cast<u16>(crc << 1);
    }
  }
  return crc;
}

u8 SdCard::crc7(std::span<const u8> data) {
  u8 crc = 0;
  for (u8 byte : data) {
    for (int i = 7; i >= 0; --i) {
      crc = static_cast<u8>(crc << 1);
      if (((byte >> i) & 1) ^ ((crc >> 7) & 1)) crc ^= 0x09;
      crc &= 0x7F;
    }
  }
  return crc;
}

u8 SdCard::exchange(u8 mosi, bool cs_low) {
  if (!cs_low) {
    // Deselected: the card tristates (reads as 0xFF) and aborts any
    // half-collected command frame.
    state_ = State::kIdle;
    cmd_fill_ = 0;
    return 0xFF;
  }

  switch (state_) {
    case State::kIdle:
      if ((mosi & 0xC0) == 0x40) {  // start + transmission bit
        cmd_[0] = mosi;
        cmd_fill_ = 1;
        state_ = State::kCommand;
      }
      return 0xFF;

    case State::kCommand:
      cmd_[cmd_fill_++] = mosi;
      if (cmd_fill_ == 6) {
        execute_command();
      }
      return 0xFF;

    case State::kResponseWait:
      if (gap_bytes_ > 0) {
        --gap_bytes_;
        return 0xFF;
      }
      state_ = State::kResponse;
      [[fallthrough]];

    case State::kResponse: {
      const u8 out = response_[resp_pos_++];
      if (resp_pos_ == response_.size()) {
        if (after_response_read_) {
          after_response_read_ = false;
          gap_bytes_ = 2;  // Nac: token latency
          state_ = State::kReadToken;
        } else if (after_response_write_) {
          after_response_write_ = false;
          data_pos_ = 0;
          state_ = State::kWriteWaitToken;
        } else {
          state_ = State::kIdle;
        }
      }
      return out;
    }

    case State::kReadToken:
      if (gap_bytes_ > 0) {
        --gap_bytes_;
        return 0xFF;
      }
      // Injected transient: the start token is never sent, so the
      // host's bounded token hunt times out for this read.
      if (fault_ != nullptr &&
          fault_->should_fire(sim::fault_sites::kSdReadToken)) {
        state_ = State::kIdle;
        return 0xFF;
      }
      // Prepare the data + CRC buffer and emit the start token.
      {
        const u8* src = block(data_lba_);
        if (src != nullptr) {
          std::memcpy(data_buf_.data(), src, kBlockSize);
        } else {
          std::memset(data_buf_.data(), 0, kBlockSize);
        }
        const u16 crc = crc16({data_buf_.data(), kBlockSize});
        data_buf_[kBlockSize] = static_cast<u8>(crc >> 8);
        data_buf_[kBlockSize + 1] = static_cast<u8>(crc);
        // Injected transfer corruption: flip a data byte after the CRC
        // was computed, so the host-side CRC16 check fails.
        if (fault_ != nullptr &&
            fault_->should_fire(sim::fault_sites::kSdReadCrc)) {
          const usize at =
              fault_->value(sim::fault_sites::kSdReadCrc, kBlockSize);
          data_buf_[at] ^= 0xFF;
        }
        data_pos_ = 0;
        state_ = State::kReadData;
        ++blocks_read_;
      }
      return kTokenStart;

    case State::kReadData: {
      const u8 out = data_buf_[data_pos_++];
      if (data_pos_ == data_buf_.size()) state_ = State::kIdle;
      return out;
    }

    case State::kWriteWaitToken:
      if (mosi == kTokenStart) {
        data_pos_ = 0;
        state_ = State::kWriteData;
      }
      return 0xFF;

    case State::kWriteData:
      data_buf_[data_pos_++] = mosi;
      if (data_pos_ == data_buf_.size()) {
        const u16 crc = crc16({data_buf_.data(), kBlockSize});
        const u16 sent = static_cast<u16>((u16{data_buf_[kBlockSize]} << 8) |
                                          data_buf_[kBlockSize + 1]);
        state_ = State::kWriteBusy;
        busy_bytes_ = 4;
        if (crc == sent) {
          std::memcpy(block(data_lba_), data_buf_.data(), kBlockSize);
          ++blocks_written_;
          response_ = {kDataAccepted};
        } else {
          ++crc_errors_;
          response_ = {kDataCrcError};
        }
        resp_pos_ = 0;
        return 0xFF;
      }
      return 0xFF;

    case State::kWriteBusy:
      if (resp_pos_ < response_.size()) return response_[resp_pos_++];
      if (busy_bytes_ > 0) {
        --busy_bytes_;
        return 0x00;  // busy
      }
      state_ = State::kIdle;
      return 0xFF;
  }
  return 0xFF;
}

void SdCard::execute_command() {
  const u8 cmd = cmd_[0] & 0x3F;
  const u32 arg = (u32{cmd_[1]} << 24) | (u32{cmd_[2]} << 16) |
                  (u32{cmd_[3]} << 8) | u32{cmd_[4]};
  const bool was_acmd = acmd_;
  acmd_ = false;
  resp_pos_ = 0;
  gap_bytes_ = 1;  // Ncr >= 1 byte
  state_ = State::kResponseWait;
  after_response_read_ = false;
  after_response_write_ = false;

  // CMD0 requires a valid CRC7 (the only command checked in SPI mode).
  if (cmd == 0) {
    const u8 crc = crc7({cmd_.data(), 5});
    if (static_cast<u8>((crc << 1) | 1) != cmd_[5]) {
      response_ = {kR1IllegalCmd};
      return;
    }
    initialized_ = false;
    acmd41_polls_ = 0;
    response_ = {kR1Idle};
    return;
  }

  if (was_acmd && cmd == 41) {  // ACMD41: SD_SEND_OP_COND
    if (++acmd41_polls_ >= 2) initialized_ = true;
    response_ = {initialized_ ? kR1Ok : kR1Idle};
    return;
  }

  switch (cmd) {
    case 8:  // SEND_IF_COND -> R7: R1 + 4 bytes echoing voltage/pattern
      response_ = {kR1Idle, 0x00, 0x00, static_cast<u8>((arg >> 8) & 0xFF),
                   static_cast<u8>(arg & 0xFF)};
      break;
    case 55:  // APP_CMD prefix
      acmd_ = true;
      response_ = {initialized_ ? kR1Ok : kR1Idle};
      break;
    case 58:  // READ_OCR -> R3: R1 + OCR (CCS=1: SDHC block addressing)
      response_ = {initialized_ ? kR1Ok : kR1Idle, 0xC0, 0xFF, 0x80, 0x00};
      break;
    case 17:  // READ_SINGLE_BLOCK
      if (!initialized_ || arg >= num_blocks_) {
        response_ = {static_cast<u8>(initialized_ ? 0x40 : kR1IllegalCmd)};
      } else {
        data_lba_ = arg;
        response_ = {kR1Ok};
        after_response_read_ = true;
      }
      break;
    case 24:  // WRITE_BLOCK
      if (!initialized_ || arg >= num_blocks_) {
        response_ = {static_cast<u8>(initialized_ ? 0x40 : kR1IllegalCmd)};
      } else {
        data_lba_ = arg;
        response_ = {kR1Ok};
        after_response_write_ = true;
      }
      break;
    default:
      log_debug("sdcard: illegal CMD", static_cast<int>(cmd));
      response_ = {kR1IllegalCmd};
      break;
  }
}

Status SdCard::backdoor_read(u32 lba, std::span<u8> buf) const {
  if (buf.size() != kBlockSize) return Status::kInvalidArgument;
  if (lba >= num_blocks_) return Status::kOutOfRange;
  const u8* src = block(lba);
  if (src != nullptr) {
    std::memcpy(buf.data(), src, kBlockSize);
  } else {
    std::memset(buf.data(), 0, kBlockSize);
  }
  return Status::kOk;
}

Status SdCard::backdoor_write(u32 lba, std::span<const u8> buf) {
  if (buf.size() != kBlockSize) return Status::kInvalidArgument;
  if (lba >= num_blocks_) return Status::kOutOfRange;
  auto& b = blocks_[lba];
  if (!b) b = std::make_unique<std::array<u8, kBlockSize>>();
  std::memcpy(b->data(), buf.data(), kBlockSize);
  return Status::kOk;
}

}  // namespace rvcap::storage
