#include "cpu/cpu.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rvcap::cpu {

axi::AxiR CpuContext::blocking_read(Addr a, u8 size) {
  while (!port_.ar.push(axi::AxiAr{a, 0, size})) sim_.step();
  ++bus_reads_;
  if (!sim_.run_until([&] { return port_.r.can_pop(); })) {
    log_error("cpu: read timeout at 0x", std::hex, a);
    return axi::AxiR{0, axi::Resp::kSlvErr, true};
  }
  const axi::AxiR r = *port_.r.pop();
  if (r.resp != axi::Resp::kOkay) ++bus_errors_;
  return r;
}

void CpuContext::blocking_write(Addr a, u64 data, u8 strb, u8 size) {
  while (!port_.aw.push(axi::AxiAw{a, 0, size})) sim_.step();
  while (!port_.w.push(axi::AxiW{data, strb, true})) sim_.step();
  ++bus_writes_;
  if (!sim_.run_until([&] { return port_.b.can_pop(); })) {
    log_error("cpu: write timeout at 0x", std::hex, a);
    return;
  }
  if (port_.b.pop()->resp != axi::Resp::kOkay) ++bus_errors_;
}

u32 CpuContext::load32_uncached(Addr a) {
  sim_.run_cycles(tm_.uncached_access_core_cycles);
  const axi::AxiR r = blocking_read(a, 2);
  return static_cast<u32>((a & 4) ? (r.data >> 32) : r.data);
}

void CpuContext::store32_uncached(Addr a, u32 v) {
  sim_.run_cycles(tm_.uncached_access_core_cycles);
  const bool high = (a & 4) != 0;
  blocking_write(a, high ? (u64{v} << 32) : u64{v},
                 high ? 0xF0 : 0x0F, 2);
}

u64 CpuContext::load64_uncached(Addr a) {
  sim_.run_cycles(tm_.uncached_access_core_cycles);
  return blocking_read(a, 3).data;
}

void CpuContext::store64_uncached(Addr a, u64 v) {
  sim_.run_cycles(tm_.uncached_access_core_cycles);
  blocking_write(a, v, 0xFF, 3);
}

u64 CpuContext::load64(Addr a) {
  sim_.run_cycles(tm_.cached_access_core_cycles);
  return blocking_read(a, 3).data;
}

void CpuContext::store64(Addr a, u64 v) {
  sim_.run_cycles(tm_.cached_access_core_cycles);
  blocking_write(a, v, 0xFF, 3);
}

u8 CpuContext::load8(Addr a) {
  sim_.run_cycles(tm_.cached_access_core_cycles);
  const axi::AxiR r = blocking_read(a & ~Addr{7}, 3);
  return static_cast<u8>(r.data >> (8 * (a & 7)));
}

void CpuContext::store8(Addr a, u8 v) {
  sim_.run_cycles(tm_.cached_access_core_cycles);
  blocking_write(a & ~Addr{7}, u64{v} << (8 * (a & 7)),
                 static_cast<u8>(1u << (a & 7)), 3);
}

void CpuContext::read_buffer(Addr a, std::span<u8> out) {
  usize done = 0;
  while (done < out.size()) {
    const Addr base = (a + done) & ~Addr{7};
    const u32 avail_beats = 16;
    // Burst read up to 16 beats.
    const usize want = out.size() - done + ((a + done) & 7);
    const u32 beats =
        static_cast<u32>(std::min<usize>(avail_beats, (want + 7) / 8));
    while (!port_.ar.push(axi::AxiAr{base, static_cast<u8>(beats - 1), 3})) {
      sim_.step();
    }
    ++bus_reads_;
    for (u32 b = 0; b < beats; ++b) {
      if (!sim_.run_until([&] { return port_.r.can_pop(); })) return;
      const axi::AxiR r = *port_.r.pop();
      if (r.resp != axi::Resp::kOkay) ++bus_errors_;
      for (u32 i = 0; i < 8 && done < out.size(); ++i) {
        const Addr byte_addr = base + u64{b} * 8 + i;
        if (byte_addr < a + done) continue;  // pre-alignment bytes
        out[done++] = static_cast<u8>(r.data >> (8 * i));
      }
      sim_.run_cycles(tm_.cached_access_core_cycles);
    }
  }
}

void CpuContext::write_buffer(Addr a, std::span<const u8> data) {
  usize done = 0;
  while (done < data.size()) {
    const Addr addr = a + done;
    const Addr base = addr & ~Addr{7};
    const usize remaining = data.size() - done + (addr & 7);
    const u32 beats = static_cast<u32>(std::min<usize>(16, (remaining + 7) / 8));
    while (!port_.aw.push(axi::AxiAw{base, static_cast<u8>(beats - 1), 3})) {
      sim_.step();
    }
    ++bus_writes_;
    usize cursor = done;
    for (u32 b = 0; b < beats; ++b) {
      u64 word = 0;
      u8 strb = 0;
      for (u32 i = 0; i < 8; ++i) {
        const Addr byte_addr = base + u64{b} * 8 + i;
        if (byte_addr >= a + cursor && cursor < data.size() &&
            byte_addr == a + cursor) {
          word |= u64{data[cursor]} << (8 * i);
          strb |= static_cast<u8>(1u << i);
          ++cursor;
        }
      }
      while (!port_.w.push(axi::AxiW{word, strb, b + 1 == beats})) {
        sim_.step();
      }
      sim_.run_cycles(tm_.cached_access_core_cycles);
    }
    done = cursor;
    if (!sim_.run_until([&] { return port_.b.can_pop(); })) return;
    if (port_.b.pop()->resp != axi::Resp::kOkay) ++bus_errors_;
  }
}

u32 CpuContext::wait_for_irq(const irq::Plic& plic, Addr plic_claim_addr,
                             Cycles timeout) {
  if (!sim_.run_until([&] { return plic.eip(); }, timeout)) return 0;
  sim_.run_cycles(tm_.irq_entry_cycles);
  return load32_uncached(plic_claim_addr);
}

void CpuContext::complete_irq(Addr plic_claim_addr, u32 source) {
  store32_uncached(plic_claim_addr, source);
}

}  // namespace rvcap::cpu
