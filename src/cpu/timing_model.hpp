// Instruction-timing model of the Ariane (CVA6) core for the driver
// software layer.
//
// The drivers in src/driver are real C++ running against the simulated
// bus; this model charges the core-side cycles a load/store/branch
// costs on Ariane *in addition to* the simulated bus round trip. The
// constants are calibrated against the paper's §IV-B measurements and
// matter most for the AXI_HWICAP baseline, whose throughput is purely
// software-limited:
//
//  * Ariane is a single-issue in-order core that does NOT speculate
//    past accesses to non-cacheable regions ("the Ariane core is not
//    allowed to start speculative memory access to the non-cacheable
//    memory address area of the HWICAP", §IV-B). Every MMIO access
//    therefore drains the pipeline: uncached_access_core_cycles.
//  * The loop closing a FIFO-write iteration (pointer increment,
//    compare, conditional branch) cannot overlap the pending MMIO
//    store, costing loop_overhead_cycles per iteration. Unrolling by U
//    divides this term by U — reproducing the paper's 4.16 -> 8.23 MB/s
//    gain at U=16 and the "<5% beyond U=16" saturation.
//
// With the simulated bus round trip of ~12 cycles through the
// crossbar + width converter + protocol converter chain:
//   per-word cost(U) = 12 + uncached + loop/U
//   U=1:  ~93 cycles/word -> ~4.3 MB/s;  U=16: ~48 -> ~8.3 MB/s.
#pragma once

#include "common/types.hpp"

namespace rvcap::cpu {

struct CpuTimingModel {
  /// Core-side pipeline-drain cost of an access to a non-cacheable
  /// (MMIO) region, excluding the bus round trip.
  u32 uncached_access_core_cycles = 36;

  /// Core-side cost of a cached data access (D$ hit path); the bus
  /// transaction itself is still simulated for correctness.
  u32 cached_access_core_cycles = 1;

  /// Per-iteration loop-control cost that cannot be speculated past a
  /// pending non-cacheable access (compare + taken branch + refetch).
  u32 loop_overhead_cycles = 44;

  /// Function call/return overhead (driver API boundaries).
  u32 call_overhead_cycles = 8;

  /// Trap entry to first handler instruction (mret path included in
  /// the handler's own cost).
  u32 irq_entry_cycles = 40;

  /// Generic per-"instruction bundle" cost used by spend() annotations
  /// in the drivers (ALU-dominated bookkeeping code, IPC ~1).
  u32 cycles_per_instruction = 1;
};

}  // namespace rvcap::cpu
