// CPU software-execution context.
//
// Co-simulation style: driver code (src/driver) is native C++ on the
// host call stack, but every memory access goes through this context,
// which (1) performs a real AXI transaction on the simulated bus as
// the crossbar's manager-0 and (2) advances simulated time by the bus
// round trip plus the CpuTimingModel's core-side cost. Blocking APIs
// run the simulator forward until the response arrives, so hardware
// (DMA, ICAP, SPI...) naturally progresses "while the CPU executes".
#pragma once

#include <functional>
#include <span>

#include "axi/types.hpp"
#include "common/status.hpp"
#include "cpu/timing_model.hpp"
#include "irq/plic.hpp"
#include "sim/simulator.hpp"

namespace rvcap::cpu {

class CpuContext {
 public:
  CpuContext(sim::Simulator& sim, const CpuTimingModel& tm = CpuTimingModel{})
      : sim_(sim), tm_(tm) {}

  /// The CPU's manager link; connect to the main crossbar.
  axi::AxiPort& port() { return port_; }
  sim::Simulator& simulator() { return sim_; }
  const CpuTimingModel& timing() const { return tm_; }
  Cycles now() const { return sim_.now(); }

  // ---- MMIO (non-cacheable) accesses: full pipeline drain ----
  u32 load32_uncached(Addr a);
  void store32_uncached(Addr a, u32 v);
  u64 load64_uncached(Addr a);
  void store64_uncached(Addr a, u64 v);

  // ---- cached accesses (driver data buffers in DDR) ----
  u64 load64(Addr a);
  void store64(Addr a, u64 v);
  u8 load8(Addr a);
  void store8(Addr a, u8 v);

  /// Bulk cached transfers (memcpy-style driver loops): issued as
  /// 16-beat bursts, charging one core cycle per beat — the amortized
  /// cost of streaming through the D$ with hardware refill. Addresses
  /// need not be 8-byte aligned but transfers are whole bytes.
  void read_buffer(Addr a, std::span<u8> out);
  void write_buffer(Addr a, std::span<const u8> data);

  /// Annotate straight-line software cost (bundles ~= instructions).
  void spend_instructions(u64 n) {
    sim_.run_cycles(n * tm_.cycles_per_instruction);
  }
  /// Per-iteration loop-control cost next to non-cacheable accesses.
  void spend_loop_overhead() { sim_.run_cycles(tm_.loop_overhead_cycles); }
  void spend_call_overhead() { sim_.run_cycles(tm_.call_overhead_cycles); }

  /// Busy-wait until pred() holds (polling is accounted by the caller's
  /// loop of MMIO reads; this variant is for hardware conditions).
  bool wait_for(const std::function<bool()>& pred,
                Cycles timeout = 100'000'000) {
    return sim_.run_until(pred, timeout);
  }

  /// Sleep until the PLIC raises an external interrupt, then claim it.
  /// Returns the claimed source id (0 on timeout). `plic_claim_addr` is
  /// the bus address of the claim/complete register.
  u32 wait_for_irq(const irq::Plic& plic, Addr plic_claim_addr,
                   Cycles timeout = 100'000'000);
  /// Signal completion for a claimed source.
  void complete_irq(Addr plic_claim_addr, u32 source);

  // ---- statistics ----
  u64 bus_reads() const { return bus_reads_; }
  u64 bus_writes() const { return bus_writes_; }
  u64 bus_errors() const { return bus_errors_; }

 private:
  axi::AxiR blocking_read(Addr a, u8 size);
  void blocking_write(Addr a, u64 data, u8 strb, u8 size);

  sim::Simulator& sim_;
  CpuTimingModel tm_;
  axi::AxiPort port_;
  u64 bus_reads_ = 0;
  u64 bus_writes_ = 0;
  u64 bus_errors_ = 0;
};

}  // namespace rvcap::cpu
