// Pre-flight admission validation of a staged partial bitstream.
//
// The self-healing pipeline (PR 1) catches configuration faults after
// they happen — mid-transfer, at the cost of a DMA transfer, a cleanup
// pass and usually a blanking pass. Admission control is cheaper: the
// staged DDR image is parsed offline BEFORE a single word reaches the
// ICAP, and an image that could never configure the target partition
// (bad sync framing, wrong device IDCODE, frame addresses outside the
// RP's floorplan) is rejected outright. A malicious or mis-targeted
// bitstream is therefore stopped while the fabric is still untouched.
#pragma once

#include <span>
#include <string_view>

#include "bitstream/parser.hpp"
#include "common/status.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

/// Verdict of a pre-flight check.
struct PreflightReport {
  Status status = Status::kOk;   // kOk = admissible
  std::string_view reason;       // human-readable rejection cause
  u32 frames = 0;                // frames the image would configure
};

/// Validate `bytes` (a staged partial bitstream) against the device and
/// the target partition. Pure software — no bus traffic, no ICAP words.
/// Rejections map to: kProtocolError (framing / missing sync word),
/// kInvalidArgument (IDCODE does not match the device),
/// kOutOfRange (a configured frame lies outside the partition).
PreflightReport preflight_check(std::span<const u8> bytes,
                                const fabric::DeviceGeometry& dev,
                                const fabric::Partition& part,
                                u32 expected_idcode);

}  // namespace rvcap::bitstream
