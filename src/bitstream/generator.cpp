#include "bitstream/generator.hpp"

#include <cassert>

namespace rvcap::bitstream {

u32 payload_word(u32 rm_id, u32 frame_index, u32 word_index, FrameFill fill) {
  if (fill == FrameFill::kSparse && (word_index % 16) != 0) return 0;
  u64 z = (u64{rm_id} << 40) ^ (u64{frame_index} << 16) ^ word_index;
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<u32>(z ^ (z >> 31));
}

std::vector<u8> generate_partial_bitstream(const fabric::DeviceGeometry& dev,
                                           const fabric::Partition& part,
                                           const RmDescriptor& rm,
                                           FrameFill fill) {
  const auto& cols = part.columns();
  const u32 total_frames = part.frame_count(dev);

  std::vector<BitstreamWriter::Section> sections;
  u32 frame_index = 0;
  usize i = 0;
  while (i < cols.size()) {
    // Collect one contiguous column range.
    usize j = i + 1;
    while (j < cols.size() && cols[j].row == cols[j - 1].row &&
           cols[j].column == cols[j - 1].column + 1) {
      ++j;
    }
    BitstreamWriter::Section sec;
    sec.start = fabric::FrameAddr{cols[i].row, cols[i].column, 0};
    for (usize c = i; c < j; ++c) {
      const u32 frames = dev.frames_in_column(cols[c].column);
      for (u32 f = 0; f < frames; ++f, ++frame_index) {
        for (u32 wi = 0; wi < fabric::kFrameWords; ++wi) {
          sec.frame_words.push_back(
              payload_word(rm.rm_id, frame_index, wi, fill));
        }
        if (frame_index == 0) {
          // Manifest lives in the first 4 words of the first frame.
          fabric::RmManifest m{rm.rm_id, total_frames};
          const usize base = sec.frame_words.size() - fabric::kFrameWords;
          m.encode(std::span(sec.frame_words).subspan(base, 4));
        }
      }
    }
    sections.push_back(std::move(sec));
    i = j;
  }

  const BitstreamWriter writer;
  const std::vector<u32> words = writer.build(sections);
  std::vector<u8> bytes = BitstreamWriter::to_bytes(words);
  assert(bytes.size() == part.pbit_bytes(dev));
  return bytes;
}

std::vector<u8> generate_blank_bitstream(const fabric::DeviceGeometry& dev,
                                         const fabric::Partition& part) {
  const auto& cols = part.columns();

  std::vector<BitstreamWriter::Section> sections;
  usize i = 0;
  while (i < cols.size()) {
    usize j = i + 1;
    while (j < cols.size() && cols[j].row == cols[j - 1].row &&
           cols[j].column == cols[j - 1].column + 1) {
      ++j;
    }
    BitstreamWriter::Section sec;
    sec.start = fabric::FrameAddr{cols[i].row, cols[i].column, 0};
    u32 frames = 0;
    for (usize c = i; c < j; ++c) frames += dev.frames_in_column(cols[c].column);
    sec.frame_words.assign(usize{frames} * fabric::kFrameWords, 0);
    sections.push_back(std::move(sec));
    i = j;
  }

  const BitstreamWriter writer;
  const std::vector<u32> words = writer.build(sections);
  std::vector<u8> bytes = BitstreamWriter::to_bytes(words);
  assert(bytes.size() == part.pbit_bytes(dev));
  return bytes;
}

}  // namespace rvcap::bitstream
