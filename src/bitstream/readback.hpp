// Readback / frame-repair command-sequence builders.
//
// To read configuration memory through the ICAP, software streams a
// short command sequence into the port (sync, RCFG, FAR, a type-1/2
// FDRO *read* request) and then drains the requested words from the
// read side. RV-CAP does this with one small MM2S transfer followed by
// an S2MM capture; the AXI_HWICAP does it through its read FIFO. Both
// consume sequences built here.
//
// The scrub service additionally writes single corrected frames back:
// build_frame_write_sequence() emits a minimal WCFG pass (sync, WCFG,
// FAR, FDRI payload, DESYNC) with no RCRC and no CRC check, so an
// in-place repair neither restarts the configuration-pass epoch nor
// risks a spurious CRC invalidation.
#pragma once

#include <span>
#include <vector>

#include "bitstream/packets.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

/// Largest word count a type-1 packet header can carry; longer reads
/// and payloads take the type-1(0) + type-2 form.
inline constexpr u32 kType1MaxCount = 0x7FF;

/// Request half: sync .. FDRO read request. The port turns around
/// after the last word; the keyhole driver must stop writing here.
/// A zero-word request is meaningless and returns an empty sequence —
/// callers must reject it before touching the hardware.
std::vector<u32> build_readback_request(const fabric::FrameAddr& start,
                                        u32 words);

/// Trailer written after the read has drained: NOP, DESYNC, NOP.
std::vector<u32> build_readback_trailer();

/// Full sequence (request + trailer) — suitable for the DMA path,
/// where the S2MM capture drains the port concurrently. Empty when
/// words == 0.
std::vector<u32> build_readback_sequence(const fabric::FrameAddr& start,
                                         u32 words);

/// Serialized (byte) form, padded to a whole number of 64-bit beats so
/// the DMA can stream it directly. Empty when words == 0.
std::vector<u8> build_readback_bytes(const fabric::FrameAddr& start,
                                     u32 words);

/// Single-frame rewrite: a self-contained WCFG pass writing
/// `frame_words` (kFrameWords of them) at `fa`. Empty when the word
/// count is not exactly one frame.
std::vector<u32> build_frame_write_sequence(const fabric::FrameAddr& fa,
                                            std::span<const u32> frame_words);

/// Serialized (byte) form of the frame rewrite, beat-padded for DMA.
std::vector<u8> build_frame_write_bytes(const fabric::FrameAddr& fa,
                                        std::span<const u32> frame_words);

}  // namespace rvcap::bitstream
