// Readback command-sequence builder.
//
// To read configuration memory through the ICAP, software streams a
// short command sequence into the port (sync, RCFG, FAR, a type-1/2
// FDRO *read* request) and then drains the requested words from the
// read side. RV-CAP does this with one small MM2S transfer followed by
// an S2MM capture; the AXI_HWICAP does it through its read FIFO. Both
// consume sequences built here.
#pragma once

#include <vector>

#include "bitstream/packets.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

/// Request half: sync .. FDRO read request. The port turns around
/// after the last word; the keyhole driver must stop writing here.
std::vector<u32> build_readback_request(const fabric::FrameAddr& start,
                                        u32 words);

/// Trailer written after the read has drained: NOP, DESYNC, NOP.
std::vector<u32> build_readback_trailer();

/// Full sequence (request + trailer) — suitable for the DMA path,
/// where the S2MM capture drains the port concurrently.
std::vector<u32> build_readback_sequence(const fabric::FrameAddr& start,
                                         u32 words);

/// Serialized (byte) form, padded to a whole number of 64-bit beats so
/// the DMA can stream it directly.
std::vector<u8> build_readback_bytes(const fabric::FrameAddr& start,
                                     u32 words);

}  // namespace rvcap::bitstream
