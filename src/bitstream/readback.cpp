#include "bitstream/readback.hpp"

#include "bitstream/writer.hpp"

namespace rvcap::bitstream {

std::vector<u32> build_readback_request(const fabric::FrameAddr& start,
                                        u32 words) {
  if (words == 0) return {};  // a zero-length FDRO read is a misuse
  std::vector<u32> w;
  w.push_back(kDummyWord);
  w.push_back(kBusWidthSync);
  w.push_back(kBusWidthDetect);
  w.push_back(kDummyWord);
  w.push_back(kSyncWord);
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  w.push_back(static_cast<u32>(Cmd::kRcfg));
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
  w.push_back(start.encode());
  if (words <= kType1MaxCount) {
    // Short reads fit the type-1 count field directly.
    w.push_back(type1(PacketOp::kRead, ConfigReg::kFdro, words));
  } else {
    w.push_back(type1(PacketOp::kRead, ConfigReg::kFdro, 0));
    w.push_back(type2(PacketOp::kRead, words));
  }
  return w;
}

std::vector<u32> build_readback_trailer() {
  return {kNop, type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
          static_cast<u32>(Cmd::kDesync), kNop};
}

std::vector<u32> build_readback_sequence(const fabric::FrameAddr& start,
                                         u32 words) {
  std::vector<u32> w = build_readback_request(start, words);
  if (w.empty()) return w;
  const std::vector<u32> tail = build_readback_trailer();
  w.insert(w.end(), tail.begin(), tail.end());
  return w;
}

std::vector<u8> build_readback_bytes(const fabric::FrameAddr& start,
                                     u32 words) {
  std::vector<u32> seq = build_readback_sequence(start, words);
  if (seq.empty()) return {};
  while (seq.size() % 2 != 0) seq.push_back(kNop);  // whole 64-bit beats
  return BitstreamWriter::to_bytes(seq);
}

std::vector<u32> build_frame_write_sequence(
    const fabric::FrameAddr& fa, std::span<const u32> frame_words) {
  if (frame_words.size() != fabric::kFrameWords) return {};
  std::vector<u32> w;
  w.reserve(frame_words.size() + 16);
  w.push_back(kDummyWord);
  w.push_back(kBusWidthSync);
  w.push_back(kBusWidthDetect);
  w.push_back(kDummyWord);
  w.push_back(kSyncWord);
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  w.push_back(static_cast<u32>(Cmd::kWcfg));
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
  w.push_back(fa.encode());
  // One frame always fits the type-1 count field (202 <= 0x7FF).
  static_assert(fabric::kFrameWords <= kType1MaxCount);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri,
                    static_cast<u32>(frame_words.size())));
  w.insert(w.end(), frame_words.begin(), frame_words.end());
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  w.push_back(static_cast<u32>(Cmd::kDesync));
  w.push_back(kNop);
  return w;
}

std::vector<u8> build_frame_write_bytes(const fabric::FrameAddr& fa,
                                        std::span<const u32> frame_words) {
  std::vector<u32> seq = build_frame_write_sequence(fa, frame_words);
  if (seq.empty()) return {};
  while (seq.size() % 2 != 0) seq.push_back(kNop);
  return BitstreamWriter::to_bytes(seq);
}

}  // namespace rvcap::bitstream
