#include "bitstream/readback.hpp"

#include "bitstream/writer.hpp"

namespace rvcap::bitstream {

std::vector<u32> build_readback_request(const fabric::FrameAddr& start,
                                        u32 words) {
  std::vector<u32> w;
  w.push_back(kDummyWord);
  w.push_back(kBusWidthSync);
  w.push_back(kBusWidthDetect);
  w.push_back(kDummyWord);
  w.push_back(kSyncWord);
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  w.push_back(static_cast<u32>(Cmd::kRcfg));
  w.push_back(kNop);
  w.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
  w.push_back(start.encode());
  w.push_back(type1(PacketOp::kRead, ConfigReg::kFdro, 0));
  w.push_back(type2(PacketOp::kRead, words));
  return w;
}

std::vector<u32> build_readback_trailer() {
  return {kNop, type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
          static_cast<u32>(Cmd::kDesync), kNop};
}

std::vector<u32> build_readback_sequence(const fabric::FrameAddr& start,
                                         u32 words) {
  std::vector<u32> w = build_readback_request(start, words);
  const std::vector<u32> tail = build_readback_trailer();
  w.insert(w.end(), tail.begin(), tail.end());
  return w;
}

std::vector<u8> build_readback_bytes(const fabric::FrameAddr& start,
                                     u32 words) {
  std::vector<u32> seq = build_readback_sequence(start, words);
  while (seq.size() % 2 != 0) seq.push_back(kNop);  // whole 64-bit beats
  return BitstreamWriter::to_bytes(seq);
}

}  // namespace rvcap::bitstream
