// 7-series configuration packet encoding (UG470-style).
//
// Type-1 packets address a configuration register and carry a short
// word count; type-2 packets extend the previous type-1 with a large
// count (used for FDRI frame payloads). The sync word, bus-width
// detection words, and NOPs are the framing around them.
#pragma once

#include "common/types.hpp"

namespace rvcap::bitstream {

inline constexpr u32 kDummyWord = 0xFFFFFFFF;
inline constexpr u32 kBusWidthSync = 0x000000BB;
inline constexpr u32 kBusWidthDetect = 0x11220044;
inline constexpr u32 kSyncWord = 0xAA995566;
inline constexpr u32 kNop = 0x20000000;

/// Model-device IDCODE (XC7K325T-class).
inline constexpr u32 kIdCode = 0x3651093;

enum class ConfigReg : u32 {
  kCrc = 0x00,
  kFar = 0x01,
  kFdri = 0x02,
  kFdro = 0x03,
  kCmd = 0x04,
  kCtl0 = 0x05,
  kMask = 0x06,
  kStat = 0x07,
  kCor0 = 0x09,
  kIdcode = 0x0C,
};

enum class Cmd : u32 {
  kNull = 0x0,
  kWcfg = 0x1,
  kLfrm = 0x3,   // DGHIGH: deassert GHIGH after config
  kRcfg = 0x4,   // read configuration (precedes FDRO readback)
  kStart = 0x5,
  kRcrc = 0x7,
  kGrestore = 0xA,
  kDesync = 0xD,
};

enum class PacketOp : u32 { kNop = 0, kRead = 1, kWrite = 2 };

/// Type-1 packet header: [31:29]=001, [28:27]=op, [26:13]=reg, [10:0]=count.
constexpr u32 type1(PacketOp op, ConfigReg reg, u32 count) {
  return (0x1u << 29) | (static_cast<u32>(op) << 27) |
         ((static_cast<u32>(reg) & 0x3FFF) << 13) | (count & 0x7FF);
}

/// Type-2 packet header: [31:29]=010, [28:27]=op, [26:0]=count.
constexpr u32 type2(PacketOp op, u32 count) {
  return (0x2u << 29) | (static_cast<u32>(op) << 27) | (count & 0x07FFFFFF);
}

struct PacketHeader {
  u32 type = 0;   // 1 or 2 (0 = not a packet header, e.g. NOP)
  PacketOp op = PacketOp::kNop;
  u32 reg = 0;    // type 1 only
  u32 count = 0;
};

constexpr PacketHeader decode_packet(u32 word) {
  PacketHeader h;
  h.type = (word >> 29) & 0x7;
  h.op = static_cast<PacketOp>((word >> 27) & 0x3);
  if (h.type == 1) {
    h.reg = (word >> 13) & 0x3FFF;
    h.count = word & 0x7FF;
  } else if (h.type == 2) {
    h.count = word & 0x07FFFFFF;
  }
  return h;
}

/// Running configuration CRC over (register, word) write pairs.
///
/// The 7-series device folds the 5-bit register address and 32-bit data
/// into a CRC-32C-style LFSR; this model uses the same structure (37-bit
/// message per write, poly 0x1EDC6F41, MSB-first). Bit-exact identity
/// with silicon is not required — only that the writer and the ICAP
/// model agree, which tests assert.
class ConfigCrc {
 public:
  void reset() { crc_ = 0; }

  void update(u32 reg, u32 word) {
    const u64 msg = (u64{reg & 0x1F} << 32) | word;
    for (int i = 36; i >= 0; --i) {
      const u32 bit = static_cast<u32>((msg >> i) & 1);
      const u32 top = (crc_ >> 31) & 1;
      crc_ <<= 1;
      if (bit ^ top) crc_ ^= 0x1EDC6F41;
    }
  }

  u32 value() const { return crc_; }

 private:
  u32 crc_ = 0;
};

}  // namespace rvcap::bitstream
