// Partial-bitstream compression (RT-ICAP-style extension, §II).
//
// The RT-ICAP related work compresses partial bitstreams before
// transfer to cut storage and fetch bandwidth. This module implements a
// hardware-friendly word-granular zero-run/literal-run codec:
//
//   word 0:      magic 0x52565A30 ("RVZ0")
//   records:     0xA??????? -> the next (header & 0x0FFFFFFF) words are
//                              literals
//                0x5??????? -> emit (header & 0x0FFFFFFF) zero words
//
// The decoder is a trivial streaming state machine (implemented in
// hardware by rvcap::rvcap_ctrl::Decompressor), so the decompressed
// word stream entering the ICAP is byte-identical to the original
// bitstream. Routing-dominated modules (sparse frames) compress ~5x;
// dense logic is stored as literal runs with ~0.1% overhead.
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace rvcap::bitstream {

inline constexpr u32 kCompressMagic = 0x52565A30;  // "RVZ0"
inline constexpr u32 kLiteralTag = 0xA;
inline constexpr u32 kZeroTag = 0x5;
inline constexpr u32 kRunCountMask = 0x0FFFFFFF;

/// Compress a serialized bitstream (must be a whole number of words).
/// The output is padded with a trailing zero-run to a 64-bit-beat
/// multiple so the DMA can stream it directly.
Status compress_bitstream(std::span<const u8> raw, std::vector<u8>* out);

/// Host-side reference decoder (tests / tooling).
Status decompress_bitstream(std::span<const u8> compressed,
                            std::vector<u8>* out);

/// Compression ratio achieved for a buffer (raw/compressed).
double compression_ratio(usize raw_bytes, usize compressed_bytes);

}  // namespace rvcap::bitstream
