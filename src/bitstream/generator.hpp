// Partial-bitstream generator: (device, partition, module) -> bytes.
//
// Stand-in for the Vivado synthesis/implementation/write_bitstream flow
// of the paper's §IV-A. Frame payloads are deterministic: the first
// frame carries the RmManifest that the configuration memory decodes to
// activate the module; the remaining words are a seeded hash of
// (rm_id, frame index, word index) so corruption anywhere is visible
// and compression experiments see realistic (incompressible) content
// unless `fill` requests sparse frames.
#pragma once

#include <vector>

#include "bitstream/writer.hpp"
#include "fabric/config_memory.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

struct RmDescriptor {
  u32 rm_id = 0;
  std::string name;
};

enum class FrameFill : u8 {
  kHashed,  // pseudo-random payload (default; incompressible)
  kSparse,  // mostly zero words (routing-dominated module; compressible)
};

/// Generate the serialized partial bitstream configuring `part` with
/// the module `rm`.
std::vector<u8> generate_partial_bitstream(
    const fabric::DeviceGeometry& dev, const fabric::Partition& part,
    const RmDescriptor& rm, FrameFill fill = FrameFill::kHashed);

/// The word a generated bitstream stores at (frame_index, word_index).
u32 payload_word(u32 rm_id, u32 frame_index, u32 word_index, FrameFill fill);

/// Generate a blanking bitstream for `part`: every frame written as
/// zeros, no manifest. Activating it wipes whatever configuration the
/// partition held (the recovery path's "known safe" state).
std::vector<u8> generate_blank_bitstream(const fabric::DeviceGeometry& dev,
                                         const fabric::Partition& part);

}  // namespace rvcap::bitstream
