#include "bitstream/preflight.hpp"

namespace rvcap::bitstream {

PreflightReport preflight_check(std::span<const u8> bytes,
                                const fabric::DeviceGeometry& dev,
                                const fabric::Partition& part,
                                u32 expected_idcode) {
  PreflightReport r;
  ParsedBitstream parsed;
  if (auto st = parse_bitstream(bytes, &parsed); !ok(st)) {
    r.status = Status::kProtocolError;
    r.reason = "malformed packet framing";
    return r;
  }
  if (!parsed.saw_sync) {
    r.status = Status::kProtocolError;
    r.reason = "missing sync word";
    return r;
  }
  if (parsed.idcode != expected_idcode) {
    r.status = Status::kInvalidArgument;
    r.reason = "IDCODE does not match the device";
    return r;
  }
  if (parsed.sections.empty()) {
    r.status = Status::kProtocolError;
    r.reason = "no configuration payload";
    return r;
  }

  // Walk every frame each FDRI section would write, in configuration
  // order, and require it to land inside the target RP's floorplan.
  for (const ParsedSection& sec : parsed.sections) {
    fabric::FrameAddr fa = sec.start;
    for (u32 i = 0; i < sec.frame_count; ++i) {
      if (!dev.valid(fa) || !part.contains(dev, fa)) {
        r.status = Status::kOutOfRange;
        r.reason = "frame address outside the target partition";
        return r;
      }
      ++r.frames;
      if (i + 1 < sec.frame_count && !dev.next_frame(&fa)) {
        r.status = Status::kOutOfRange;
        r.reason = "frame range runs past the end of the device";
        return r;
      }
    }
  }
  return r;
}

}  // namespace rvcap::bitstream
