#include "bitstream/compress.hpp"

#include "common/bytes.hpp"

namespace rvcap::bitstream {

namespace {
void push_word(std::vector<u8>* out, u32 w) {
  const usize n = out->size();
  out->resize(n + 4);
  store_be32(std::span(*out).subspan(n, 4), w);
}
}  // namespace

Status compress_bitstream(std::span<const u8> raw, std::vector<u8>* out) {
  if (raw.size() % 4 != 0) return Status::kInvalidArgument;
  out->clear();
  const usize n_words = raw.size() / 4;
  auto word = [&](usize i) { return load_be32(raw.subspan(i * 4, 4)); };

  push_word(out, kCompressMagic);
  usize i = 0;
  while (i < n_words) {
    if (word(i) == 0) {
      usize j = i;
      while (j < n_words && word(j) == 0 && (j - i) < kRunCountMask) ++j;
      push_word(out, (kZeroTag << 28) | static_cast<u32>(j - i));
      i = j;
      continue;
    }
    // Literal run: until the next zero *pair* (single zeros inside
    // literal data are cheaper inline than as a 1-word zero record).
    usize j = i;
    while (j < n_words && (j - i) < kRunCountMask) {
      if (word(j) == 0 && (j + 1 == n_words || word(j + 1) == 0)) break;
      ++j;
    }
    push_word(out, (u32{kLiteralTag} << 28) | static_cast<u32>(j - i));
    for (usize k = i; k < j; ++k) push_word(out, word(k));
    i = j;
  }
  // Pad to a whole 64-bit beat with an empty zero run.
  if ((out->size() / 4) % 2 != 0) push_word(out, kZeroTag << 28);
  return Status::kOk;
}

Status decompress_bitstream(std::span<const u8> compressed,
                            std::vector<u8>* out) {
  if (compressed.size() % 4 != 0 || compressed.size() < 4) {
    return Status::kInvalidArgument;
  }
  out->clear();
  const usize n_words = compressed.size() / 4;
  auto word = [&](usize i) { return load_be32(compressed.subspan(i * 4, 4)); };
  if (word(0) != kCompressMagic) return Status::kProtocolError;

  usize i = 1;
  while (i < n_words) {
    const u32 hdr = word(i++);
    const u32 tag = hdr >> 28;
    const u32 count = hdr & kRunCountMask;
    if (tag == kZeroTag) {
      for (u32 k = 0; k < count; ++k) push_word(out, 0);
    } else if (tag == kLiteralTag) {
      if (i + count > n_words) return Status::kProtocolError;
      for (u32 k = 0; k < count; ++k) push_word(out, word(i++));
    } else {
      return Status::kProtocolError;
    }
  }
  return Status::kOk;
}

double compression_ratio(usize raw_bytes, usize compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(raw_bytes) / compressed_bytes;
}

}  // namespace rvcap::bitstream
