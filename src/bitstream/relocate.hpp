// Partial-bitstream relocation.
//
// Two partitions with identical column-type footprints host the same
// logic; a module synthesized for one can be moved to the other by
// rewriting the frame addresses in its bitstream (and the CRC words
// that depend on them) — a classic DPR technique that avoids
// re-implementing per partition. The multi-partition scheduler uses
// this to instantiate one synthesized module in whichever compatible
// partition is free.
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

/// True when `to` can host any module implemented for `from`: the same
/// sequence of column types (and therefore per-range frame counts).
bool partitions_compatible(const fabric::DeviceGeometry& dev,
                           const fabric::Partition& from,
                           const fabric::Partition& to);

/// Rewrite `pbit` (implemented for `from`) to configure `to` instead.
/// FAR writes are retargeted range-by-range and both CRC checkpoints
/// are recomputed; everything else is copied verbatim, so the loaded
/// module is bit-identical. Returns kInvalidArgument for incompatible
/// partitions and kProtocolError for malformed bitstreams.
Status relocate_bitstream(const fabric::DeviceGeometry& dev,
                          const fabric::Partition& from,
                          const fabric::Partition& to,
                          std::span<const u8> pbit, std::vector<u8>* out);

}  // namespace rvcap::bitstream
