// Host-side partial-bitstream parser/validator.
//
// Independent reimplementation of the packet walk (the ICAP component
// is the cycle-accurate consumer; this parser is the offline validator
// the test-suite and the examples use to inspect generated files).
#pragma once

#include <span>
#include <vector>

#include "bitstream/packets.hpp"
#include "common/status.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

struct ParsedSection {
  fabric::FrameAddr start;
  u32 frame_count = 0;
};

struct ParsedBitstream {
  u32 idcode = 0;
  bool saw_sync = false;
  bool saw_desync = false;
  bool crc_present = false;
  bool crc_ok = false;
  u32 total_words = 0;
  u32 payload_words = 0;
  std::vector<ParsedSection> sections;
};

/// Parse a serialized bitstream. Returns kProtocolError for malformed
/// framing; CRC mismatches are reported in the result, not as a status
/// (the file is structurally valid, just corrupt).
Status parse_bitstream(std::span<const u8> bytes, ParsedBitstream* out);

}  // namespace rvcap::bitstream
