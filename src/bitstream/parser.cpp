#include "bitstream/parser.hpp"

#include "common/bytes.hpp"

namespace rvcap::bitstream {

Status parse_bitstream(std::span<const u8> bytes, ParsedBitstream* out) {
  *out = ParsedBitstream{};
  if (bytes.size() % 4 != 0) return Status::kProtocolError;
  const u32 n = static_cast<u32>(bytes.size() / 4);
  out->total_words = n;

  auto word = [&](u32 i) { return load_be32(bytes.subspan(usize{i} * 4, 4)); };

  // Hunt for the sync word.
  u32 i = 0;
  while (i < n && word(i) != kSyncWord) ++i;
  if (i == n) return Status::kProtocolError;
  out->saw_sync = true;
  ++i;

  ConfigCrc crc;
  bool crc_ok = true;
  u32 far = 0;
  bool counting_section = false;

  while (i < n) {
    const u32 w = word(i++);
    const PacketHeader h = decode_packet(w);
    if (h.type != 1) return Status::kProtocolError;  // stray word
    if (h.op == PacketOp::kNop) continue;
    if (h.op != PacketOp::kWrite) return Status::kProtocolError;

    u32 reg = h.reg;
    u32 count = h.count;
    if (reg == static_cast<u32>(ConfigReg::kFdri) && count == 0) {
      // Type-2 extension follows.
      if (i >= n) return Status::kProtocolError;
      const PacketHeader h2 = decode_packet(word(i++));
      if (h2.type != 2 || h2.op != PacketOp::kWrite) {
        return Status::kProtocolError;
      }
      count = h2.count;
    }

    for (u32 k = 0; k < count; ++k) {
      if (i >= n) return Status::kProtocolError;
      const u32 data = word(i++);
      switch (static_cast<ConfigReg>(reg)) {
        case ConfigReg::kCrc:
          out->crc_present = true;
          if (data != crc.value()) crc_ok = false;
          crc.reset();
          break;
        case ConfigReg::kFar:
          far = data;
          crc.update(reg, data);
          counting_section = false;
          break;
        case ConfigReg::kFdri:
          if (!counting_section) {
            out->sections.push_back(
                ParsedSection{fabric::FrameAddr::decode(far), 0});
            counting_section = true;
          }
          crc.update(reg, data);
          ++out->payload_words;
          break;
        case ConfigReg::kIdcode:
          out->idcode = data;
          crc.update(reg, data);
          break;
        case ConfigReg::kCmd:
          crc.update(reg, data);
          if (static_cast<Cmd>(data) == Cmd::kRcrc) crc.reset();
          if (static_cast<Cmd>(data) == Cmd::kDesync) {
            out->saw_desync = true;
            i = n;  // stop: trailing NOPs only
          }
          break;
        case ConfigReg::kFdro:
        case ConfigReg::kCtl0:
        case ConfigReg::kMask:
        case ConfigReg::kStat:
        case ConfigReg::kCor0:
        default:  // default keeps reg values outside the enum covered
          crc.update(reg, data);
          break;
      }
    }
    // Close FDRI sections and convert payload to frames.
    if (static_cast<ConfigReg>(reg) == ConfigReg::kFdri && count > 0) {
      if (count % fabric::kFrameWords != 0) return Status::kProtocolError;
      out->sections.back().frame_count = count / fabric::kFrameWords;
      counting_section = false;
    }
  }

  out->crc_ok = out->crc_present && crc_ok;
  return out->saw_desync ? Status::kOk : Status::kProtocolError;
}

}  // namespace rvcap::bitstream
