#include "bitstream/relocate.hpp"

#include <map>

#include "bitstream/packets.hpp"
#include "bitstream/writer.hpp"
#include "common/bytes.hpp"

namespace rvcap::bitstream {

bool partitions_compatible(const fabric::DeviceGeometry& dev,
                           const fabric::Partition& from,
                           const fabric::Partition& to) {
  const auto& a = from.columns();
  const auto& b = to.columns();
  if (a.size() != b.size()) return false;
  for (usize i = 0; i < a.size(); ++i) {
    if (dev.column(a[i].column) != dev.column(b[i].column)) return false;
    // Contiguity structure must match too, or the per-range FAR/FDRI
    // sections would not line up.
    if (i > 0) {
      const bool cont_a = a[i].row == a[i - 1].row &&
                          a[i].column == a[i - 1].column + 1;
      const bool cont_b = b[i].row == b[i - 1].row &&
                          b[i].column == b[i - 1].column + 1;
      if (cont_a != cont_b) return false;
    }
  }
  return true;
}

Status relocate_bitstream(const fabric::DeviceGeometry& dev,
                          const fabric::Partition& from,
                          const fabric::Partition& to,
                          std::span<const u8> pbit, std::vector<u8>* out) {
  if (!partitions_compatible(dev, from, to)) return Status::kInvalidArgument;
  if (pbit.size() % 4 != 0) return Status::kProtocolError;

  // Map each of `from`'s range-start FARs to `to`'s.
  std::map<u32, u32> far_map;
  {
    const auto& a = from.columns();
    const auto& b = to.columns();
    for (usize i = 0; i < a.size(); ++i) {
      const bool range_start =
          i == 0 || a[i].row != a[i - 1].row ||
          a[i].column != a[i - 1].column + 1;
      if (range_start) {
        far_map[fabric::FrameAddr{a[i].row, a[i].column, 0}.encode()] =
            fabric::FrameAddr{b[i].row, b[i].column, 0}.encode();
      }
    }
  }

  const usize n_words = pbit.size() / 4;
  auto word = [&](usize i) { return load_be32(pbit.subspan(i * 4, 4)); };
  std::vector<u32> result;
  result.reserve(n_words);

  // Walk the packet stream like the device does, rewriting FAR data
  // words and regenerating CRC checkpoints along the way.
  usize i = 0;
  while (i < n_words && word(i) != kSyncWord) result.push_back(word(i++));
  if (i == n_words) return Status::kProtocolError;
  result.push_back(word(i++));  // sync

  ConfigCrc crc;
  while (i < n_words) {
    const u32 w = word(i);
    const PacketHeader h = decode_packet(w);
    if (h.type != 1) return Status::kProtocolError;
    if (h.op != PacketOp::kWrite || h.count == 0) {
      result.push_back(w);  // NOPs, reads, zero-count headers
      ++i;
      // A zero-count FDRI write is followed by a type-2 header whose
      // payload we stream through below.
      u32 count = 0;
      u32 reg = h.reg;
      if (h.op == PacketOp::kWrite &&
          reg == static_cast<u32>(ConfigReg::kFdri) && i < n_words) {
        const PacketHeader h2 = decode_packet(word(i));
        if (h2.type == 2 && h2.op == PacketOp::kWrite) {
          result.push_back(word(i++));
          count = h2.count;
        }
      }
      for (u32 k = 0; k < count; ++k) {
        if (i >= n_words) return Status::kProtocolError;
        const u32 data = word(i++);
        crc.update(reg, data);
        result.push_back(data);
      }
      continue;
    }

    // Type-1 write with inline payload.
    result.push_back(w);
    ++i;
    for (u32 k = 0; k < h.count; ++k) {
      if (i >= n_words) return Status::kProtocolError;
      u32 data = word(i++);
      switch (static_cast<ConfigReg>(h.reg)) {
        case ConfigReg::kFar: {
          const auto it = far_map.find(data);
          if (it != far_map.end()) data = it->second;
          crc.update(h.reg, data);
          break;
        }
        case ConfigReg::kCrc:
          data = crc.value();  // recompute the checkpoint
          crc.reset();
          break;
        case ConfigReg::kCmd:
          crc.update(h.reg, data);
          if (static_cast<Cmd>(data) == Cmd::kRcrc) crc.reset();
          break;
        case ConfigReg::kFdri:
        case ConfigReg::kFdro:
        case ConfigReg::kCtl0:
        case ConfigReg::kMask:
        case ConfigReg::kStat:
        case ConfigReg::kCor0:
        case ConfigReg::kIdcode:
        default:  // default keeps reg values outside the enum covered
          crc.update(h.reg, data);
          break;
      }
      result.push_back(data);
    }
  }

  *out = BitstreamWriter::to_bytes(result);
  return Status::kOk;
}

}  // namespace rvcap::bitstream
