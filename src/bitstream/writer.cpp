#include "bitstream/writer.hpp"

#include "common/bytes.hpp"
#include "fabric/pbit_layout.hpp"

namespace rvcap::bitstream {

std::vector<u32> BitstreamWriter::build(
    std::span<const Section> sections) const {
  std::vector<u32> w;
  ConfigCrc crc;

  auto t1_write = [&](ConfigReg reg, u32 data) {
    w.push_back(type1(PacketOp::kWrite, reg, 1));
    w.push_back(data);
    if (reg != ConfigReg::kCrc) {
      crc.update(static_cast<u32>(reg), data);
    }
  };
  auto cmd = [&](Cmd c) { t1_write(ConfigReg::kCmd, static_cast<u32>(c)); };
  // A matching CRC-register write resets the device's running CRC, so
  // the writer mirrors that to stay in lockstep for the second check.
  auto write_crc = [&] {
    t1_write(ConfigReg::kCrc, crc.value());
    crc.reset();
  };
  auto nops = [&](u32 n) {
    for (u32 i = 0; i < n; ++i) w.push_back(kNop);
  };

  // ---- prologue: 23 words -------------------------------------------------
  for (int i = 0; i < 8; ++i) w.push_back(kDummyWord);
  w.push_back(kBusWidthSync);
  w.push_back(kBusWidthDetect);
  w.push_back(kDummyWord);
  w.push_back(kDummyWord);
  w.push_back(kSyncWord);
  w.push_back(kNop);
  cmd(Cmd::kRcrc);
  crc.reset();  // RCRC zeroes the running CRC on the device too
  nops(2);
  t1_write(ConfigReg::kIdcode, idcode_);
  cmd(Cmd::kWcfg);
  w.push_back(kNop);

  // ---- per-range FAR + FDRI ----------------------------------------------
  for (const Section& s : sections) {
    t1_write(ConfigReg::kFar, s.start.encode());
    w.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
    w.push_back(
        type2(PacketOp::kWrite, static_cast<u32>(s.frame_words.size())));
    for (u32 word : s.frame_words) {
      w.push_back(word);
      crc.update(static_cast<u32>(ConfigReg::kFdri), word);
    }
  }

  // ---- epilogue: 86 words (16 meaningful + 70 NOP flush padding) ----------
  write_crc();
  nops(2);
  cmd(Cmd::kGrestore);
  cmd(Cmd::kLfrm);
  cmd(Cmd::kStart);
  t1_write(ConfigReg::kFar, fabric::FrameAddr{0, 0, 0}.encode());
  write_crc();
  cmd(Cmd::kDesync);
  nops(70);

  return w;
}

std::vector<u8> BitstreamWriter::to_bytes(std::span<const u32> words) {
  std::vector<u8> bytes(words.size() * 4);
  for (usize i = 0; i < words.size(); ++i) {
    store_be32(std::span(bytes).subspan(i * 4, 4), words[i]);
  }
  return bytes;
}

}  // namespace rvcap::bitstream
