// Partial-bitstream writer — the reproduction's stand-in for the Vivado
// write_bitstream step.
//
// Produces the word sequence a 7-series partial bitstream carries:
// dummy/bus-width/sync framing, RCRC, IDCODE, WCFG, one FAR+FDRI
// section per contiguous column range, frame payload, CRC, GRESTORE /
// DGHIGH / START, a final CRC and DESYNC, NOP-padded so the control
// overhead is exactly fabric::kPbitFixedControlWords +
// kPbitWordsPerRange per range (tests assert byte-for-byte size
// agreement with Partition::pbit_bytes()).
#pragma once

#include <span>
#include <vector>

#include "bitstream/packets.hpp"
#include "fabric/geometry.hpp"

namespace rvcap::bitstream {

class BitstreamWriter {
 public:
  explicit BitstreamWriter(u32 idcode = kIdCode) : idcode_(idcode) {}

  /// A contiguous run of columns in one row plus its frame payload.
  struct Section {
    fabric::FrameAddr start;
    std::vector<u32> frame_words;  // multiple of kFrameWords
  };

  /// Build the full word stream for the given sections.
  std::vector<u32> build(std::span<const Section> sections) const;

  /// Serialize words big-endian (configuration byte order).
  static std::vector<u8> to_bytes(std::span<const u32> words);

 private:
  u32 idcode_;
};

}  // namespace rvcap::bitstream
