#include "net/net_link.hpp"

#include <algorithm>

#include "obs/observability.hpp"

namespace rvcap::net {

namespace sites = sim::fault_sites;

NetLink::NetLink(std::string name, Config cfg)
    : Component(std::move(name)),
      cfg_(cfg),
      a_tx_(cfg.queue_capacity),
      a_rx_(cfg.queue_capacity),
      b_tx_(cfg.queue_capacity),
      b_rx_(cfg.queue_capacity) {
  if (cfg_.cycles_per_byte == 0) cfg_.cycles_per_byte = 1;
  ab_.in = &a_tx_;
  ab_.out = &b_rx_;
  ba_.in = &b_tx_;
  ba_.out = &a_rx_;
  a_tx_.watch(this);
  a_rx_.watch(this);
  b_tx_.watch(this);
  b_rx_.watch(this);
}

void NetLink::on_register(obs::Observability& o) {
  obs::CounterRegistry& c = o.counters();
  c.register_fn("net.link.accepted", [this] { return accepted_; });
  c.register_fn("net.link.delivered", [this] { return delivered_; });
  c.register_fn("net.link.dropped", [this] { return dropped_; });
  c.register_fn("net.link.duplicated", [this] { return duplicated_; });
  c.register_fn("net.link.corrupted", [this] { return corrupted_; });
  c.register_fn("net.link.reordered", [this] { return reordered_; });
}

void NetLink::enqueue(Direction& d, NetFrame f, Cycles deliver_at) {
  InFlight e;
  e.frame = std::move(f);
  e.deliver_at = deliver_at;
  e.seq = seq_++;
  auto pos = std::upper_bound(
      d.flight.begin(), d.flight.end(), e,
      [](const InFlight& a, const InFlight& b) {
        return a.deliver_at != b.deliver_at ? a.deliver_at < b.deliver_at
                                            : a.seq < b.seq;
      });
  d.flight.insert(pos, std::move(e));
}

bool NetLink::accept_one(Direction& d) {
  if (!d.in->can_pop()) return false;
  NetFrame f = std::move(*d.in->pop());
  ++accepted_;
  const u64 op = static_cast<u64>(f.op);
  RVCAP_TRACE(trace_sink(), obs::EventKind::kNetTx, trace_src(), sim_now(),
              op, f.chunk, f.payload.size());

  if (down_) {
    // Hard outage: the wire eats everything, no fault stream consumed
    // (outages are scripted, not drawn).
    ++dropped_;
    RVCAP_TRACE(trace_sink(), obs::EventKind::kNetDrop, trace_src(),
                sim_now(), op, f.chunk, 0);
    return true;
  }

  // Serialization then propagation: frames in one direction share the
  // wire, so departure is serialized behind the previous frame.
  const Cycles depart =
      std::max(sim_now(), d.last_depart) +
      static_cast<Cycles>(f.wire_bytes()) * cfg_.cycles_per_byte;
  d.last_depart = depart;
  Cycles deliver_at = depart + cfg_.latency_cycles;

  // Fault sites, fixed query order so the damage schedule depends only
  // on the seed and the sequence of accepted frames.
  if (fi_ != nullptr) {
    if (fi_->should_fire(sites::kNetDrop)) {
      ++dropped_;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kNetDrop, trace_src(),
                  sim_now(), op, f.chunk, 0);
      return true;
    }
    if (!f.payload.empty() && fi_->should_fire(sites::kNetCorrupt)) {
      const u64 bit = fi_->value(sites::kNetCorrupt, f.payload.size() * 8);
      f.payload[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
      ++corrupted_;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kNetCorrupt, trace_src(),
                  sim_now(), f.chunk, bit, 0);
    }
    if (fi_->should_fire(sites::kNetDup)) {
      // The duplicate trails the original by one serialization slot.
      ++duplicated_;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kNetDup, trace_src(),
                  sim_now(), op, f.chunk, 0);
      enqueue(d, f,
              deliver_at + static_cast<Cycles>(f.wire_bytes()) *
                               cfg_.cycles_per_byte);
    }
    if (fi_->should_fire(sites::kNetReorder)) {
      // Delay past anything currently in flight in this direction.
      ++reordered_;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kNetReorder, trace_src(),
                  sim_now(), op, f.chunk, 0);
      Cycles latest = deliver_at;
      for (const InFlight& e : d.flight) {
        latest = std::max(latest, e.deliver_at);
      }
      deliver_at = latest + cfg_.latency_cycles;
    }
  }

  enqueue(d, std::move(f), deliver_at);
  return true;
}

bool NetLink::deliver_due(Direction& d) {
  bool progress = false;
  while (!d.flight.empty() && d.flight.front().deliver_at <= sim_now() &&
         d.out->can_push()) {
    InFlight e = std::move(d.flight.front());
    d.flight.erase(d.flight.begin());
    ++delivered_;
    RVCAP_TRACE(trace_sink(), obs::EventKind::kNetRx, trace_src(),
                sim_now(), static_cast<u64>(e.frame.op), e.frame.chunk,
                e.frame.payload.size());
    d.out->push(std::move(e.frame));
    progress = true;
  }
  return progress;
}

Cycles NetLink::next_deliver() const {
  Cycles t = ~Cycles{0};
  if (!ab_.flight.empty()) t = std::min(t, ab_.flight.front().deliver_at);
  if (!ba_.flight.empty()) t = std::min(t, ba_.flight.front().deliver_at);
  return t;
}

bool NetLink::tick() {
  bool progress = false;
  // Accept at most one frame per direction per cycle (the MAC ingests
  // one datagram per cycle), deliver everything due.
  progress |= accept_one(ab_);
  progress |= accept_one(ba_);
  progress |= deliver_due(ab_);
  progress |= deliver_due(ba_);
  if (!progress) {
    const Cycles t = next_deliver();
    if (t != ~Cycles{0} && t > sim_now()) wake_at(t);
  }
  return progress;
}

}  // namespace rvcap::net
