// Cycle-timed lossy network link — the acquisition path's fault model.
//
// Models the single switched Ethernet hop between an RV-CAP node and
// the fleet's bitstream repository as a full-duplex serial channel with
// configurable bandwidth (cycles per byte on the wire) and propagation
// latency. Endpoints exchange whole NetFrames through bounded Fifos —
// the same valid/ready discipline as every other channel in the SoC —
// so back-pressure and quiescence fall out of the existing kernel
// contract rather than bespoke timers.
//
// Loss is deterministic: at the instant a frame is accepted onto the
// wire the link consults four seeded sim::FaultInjector sites in fixed
// order — drop, corrupt, duplicate, reorder — so a single seed replays
// an identical damage schedule under both the flat and the scheduled
// kernel (frames are only accepted from progressing ticks at cycles
// the kernel-equivalence contract already pins). A fifth control,
// set_down(), models a hard outage: every accepted frame is lost until
// the link comes back up.
#pragma once

#include <string>
#include <vector>

#include "sim/component.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fifo.hpp"

namespace rvcap::obs {
class Counter;
}  // namespace rvcap::obs

namespace rvcap::net {

/// One protocol datagram. TFTP-style stop-and-wait vocabulary: the
/// client sends kRrq naming an image and a chunk index; the server
/// answers with kData (payload + CRC32 + image geometry) or kError
/// (Status in `status`).
struct NetFrame {
  enum class Op : u8 { kRrq, kData, kError };

  Op op = Op::kRrq;
  std::string image;        // image name (request and response)
  u32 chunk = 0;            // chunk index this frame requests/carries
  u32 total_chunks = 0;     // kData: image geometry
  u32 image_bytes = 0;      // kData: exact image size
  u32 crc = 0;              // kData: CRC32 of payload as sent
  u32 status = 0;           // kError: rvcap::Status as u32
  std::vector<u8> payload;  // kData: chunk bytes

  /// Serialized size on the wire (fixed header + name + payload).
  usize wire_bytes() const { return 24 + image.size() + payload.size(); }
};

class NetLink : public sim::Component {
 public:
  struct Config {
    u64 cycles_per_byte = 1;   // serialization rate (~100 MB/s at 1)
    Cycles latency_cycles = 500;  // propagation + switching delay
    usize queue_capacity = 8;  // per-endpoint fifo depth
  };

  NetLink(std::string name, Config cfg);

  /// Client (A) endpoint: push requests into a_tx(), pop responses
  /// from a_rx(). Server (B) endpoint mirrors it.
  sim::Fifo<NetFrame>& a_tx() { return a_tx_; }
  sim::Fifo<NetFrame>& a_rx() { return a_rx_; }
  sim::Fifo<NetFrame>& b_tx() { return b_tx_; }
  sim::Fifo<NetFrame>& b_rx() { return b_rx_; }

  void attach_fault_injector(sim::FaultInjector* fi) { fi_ = fi; }

  /// Hard outage: while down, every frame accepted from either
  /// endpoint is lost (clients see pure timeouts).
  void set_down(bool down) {
    down_ = down;
    wake();
  }
  bool is_down() const { return down_; }

  bool tick() override;
  bool busy() const override {
    return !ab_.flight.empty() || !ba_.flight.empty();
  }
  void on_register(obs::Observability& o) override;

  // ---- lifetime statistics ----
  u64 accepted() const { return accepted_; }
  u64 delivered() const { return delivered_; }
  u64 dropped() const { return dropped_; }
  u64 duplicated() const { return duplicated_; }
  u64 corrupted() const { return corrupted_; }
  u64 reordered() const { return reordered_; }

 private:
  struct InFlight {
    NetFrame frame;
    Cycles deliver_at = 0;
    u64 seq = 0;  // tie-break: acceptance order
  };

  /// One direction of the full-duplex pipe.
  struct Direction {
    sim::Fifo<NetFrame>* in = nullptr;
    sim::Fifo<NetFrame>* out = nullptr;
    std::vector<InFlight> flight;  // sorted by (deliver_at, seq)
    Cycles last_depart = 0;
  };

  bool accept_one(Direction& d);
  bool deliver_due(Direction& d);
  void enqueue(Direction& d, NetFrame f, Cycles deliver_at);
  Cycles next_deliver() const;

  Config cfg_;
  sim::Fifo<NetFrame> a_tx_;
  sim::Fifo<NetFrame> a_rx_;
  sim::Fifo<NetFrame> b_tx_;
  sim::Fifo<NetFrame> b_rx_;
  Direction ab_;
  Direction ba_;
  sim::FaultInjector* fi_ = nullptr;
  bool down_ = false;
  u64 seq_ = 0;
  u64 accepted_ = 0;
  u64 delivered_ = 0;
  u64 dropped_ = 0;
  u64 duplicated_ = 0;
  u64 corrupted_ = 0;
  u64 reordered_ = 0;
};

}  // namespace rvcap::net
