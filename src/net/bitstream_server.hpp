// Bitstream repository server model — the far end of the NetLink.
//
// Fronts a named repository of RM images (full partial bitstreams held
// in host memory, the fleet's golden store). Serves the TFTP-style
// stop-and-wait protocol one request at a time: pop an kRrq from the
// link's B endpoint, spend a fixed service delay (lookup + chunking on
// the server CPU), then answer with one kData frame carrying the
// requested chunk and its CRC32, or a kError frame for unknown images
// and out-of-range chunks. The "net.server.stall" fault site models a
// overloaded server that silently swallows a request — the client sees
// a pure timeout and must retry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/net_link.hpp"
#include "sim/component.hpp"
#include "sim/fault_injector.hpp"

namespace rvcap::net {

class BitstreamServer : public sim::Component {
 public:
  struct Config {
    u32 chunk_bytes = 1024;     // protocol chunk size
    Cycles service_cycles = 200;  // per-request lookup/chunk cost
  };

  BitstreamServer(std::string name, NetLink& link, Config cfg);

  /// Publish an image under `name`. Replaces any previous content.
  void add_image(std::string_view name, std::vector<u8> bytes) {
    images_[std::string(name)] = std::move(bytes);
  }
  bool has_image(std::string_view name) const {
    return images_.find(std::string(name)) != images_.end();
  }
  u32 chunk_bytes() const { return cfg_.chunk_bytes; }

  void attach_fault_injector(sim::FaultInjector* fi) { fi_ = fi; }

  bool tick() override;
  bool busy() const override { return pending_; }
  void on_register(obs::Observability& o) override;

  // ---- lifetime statistics ----
  u64 requests() const { return requests_; }
  u64 served() const { return served_; }
  u64 errors() const { return errors_; }
  u64 stalled() const { return stalled_; }

 private:
  NetFrame build_response(const NetFrame& req) const;

  Config cfg_;
  NetLink& link_;
  std::map<std::string, std::vector<u8>> images_;
  sim::FaultInjector* fi_ = nullptr;
  bool pending_ = false;   // response built, waiting for ready_at_
  NetFrame response_;
  Cycles ready_at_ = 0;
  u64 requests_ = 0;
  u64 served_ = 0;
  u64 errors_ = 0;
  u64 stalled_ = 0;
};

}  // namespace rvcap::net
