// TFTP-style chunked bitstream fetch client (driver side).
//
// Host-software driver in the co-simulation style of src/driver: plain
// C++ whose every memory touch and wait goes through cpu::CpuContext,
// so fetch time is simulated time. The protocol is stop-and-wait, one
// outstanding chunk request (pr_tftp.c's flow: fetch into DDR, hand
// the base address to the reconfiguration machinery).
//
// Robustness contract per chunk: CRC32 verified against the server's
// digest before a byte lands in DDR; timeout + bounded retry with
// capped exponential backoff and seeded jitter (common/retry.hpp);
// stale and duplicated frames discarded by (image, chunk) match. Per
// transfer: resumable — a failed fetch records its high-water chunk
// and a later fetch of the same image to the same address continues
// where it stopped instead of starting over. Across transfers: a
// circuit breaker counts consecutive failed fetches and, once open,
// fails fast with Status::kUnavailable until a cooldown elapses; the
// first fetch after cooldown is the half-open probe that closes the
// breaker on success. Never returns kOk with a partial image in DDR.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "cpu/cpu.hpp"
#include "net/net_link.hpp"
#include "obs/counters.hpp"

namespace rvcap::net {

class NetFetcher {
 public:
  struct Config {
    u32 chunk_bytes = 1024;          // must match the server's
    Cycles response_timeout = 50'000;  // per-attempt wait for a frame
    RetryPolicy retry{
        /*max_attempts=*/5,
        /*backoff_base=*/2'000,
        /*backoff_cap=*/32'000,
        /*jitter_permille=*/250,
    };
    u64 retry_seed = 0x5eed;     // jitter stream seed
    u32 breaker_threshold = 3;   // consecutive failures to open
    Cycles breaker_cooldown = 500'000;  // open -> half-open delay
  };

  NetFetcher(cpu::CpuContext& cpu, NetLink& link, Config cfg);

  /// Fetch `image` into DDR at `dest` (capacity bytes available).
  /// kOk: *bytes_out holds the exact image size and DDR holds a
  /// complete, chunk-CRC-verified copy. Any other status: DDR contents
  /// at `dest` are unspecified and must not be consumed.
  Status fetch(std::string_view image, Addr dest, u32 capacity,
               u32* bytes_out);

  /// Breaker state, for tests and the delivery layer's fast-path.
  bool breaker_open() const;

  // ---- lifetime statistics ----
  u64 fetches_ok() const { return fetches_ok_; }
  u64 fetches_failed() const { return fetches_failed_; }
  u64 chunk_retries() const { return chunk_retries_; }
  u64 chunk_timeouts() const { return chunk_timeouts_; }
  u64 chunk_crc_errors() const { return chunk_crc_errors_; }
  u64 stale_frames() const { return stale_frames_; }
  u64 resumed_transfers() const { return resumed_transfers_; }
  u64 breaker_trips() const { return breaker_trips_; }
  u64 breaker_fast_fails() const { return breaker_fast_fails_; }

 private:
  /// Partial-transfer state for resume: chunks [0, next_chunk) are
  /// verified in DDR at `dest`.
  struct Partial {
    Addr dest = 0;
    u32 next_chunk = 0;
    u32 total_chunks = 0;
    u32 image_bytes = 0;
  };

  Status fetch_chunk(std::string_view image, u32 chunk, Addr dest,
                     u32 capacity, Partial* p);
  Status wait_response(std::string_view image, u32 chunk, NetFrame* out);
  u16 image_id(std::string_view image);
  void note_result(std::string_view image, Status s);

  cpu::CpuContext& cpu_;
  NetLink& link_;
  Config cfg_;
  u64 retry_streams_ = 0;  // per-chunk-loop jitter stream counter

  std::map<std::string, Partial, std::less<>> partial_;
  std::map<std::string, u16, std::less<>> image_ids_;

  // Circuit breaker.
  u32 consecutive_failures_ = 0;
  bool open_ = false;
  Cycles open_until_ = 0;

  obs::TraceSink* sink_ = nullptr;
  u16 src_ = 0;
  obs::Histogram* fetch_hist_ = nullptr;
  obs::Histogram* chunk_hist_ = nullptr;
  obs::Histogram* backoff_hist_ = nullptr;

  u64 fetches_ok_ = 0;
  u64 fetches_failed_ = 0;
  u64 chunk_retries_ = 0;
  u64 chunk_timeouts_ = 0;
  u64 chunk_crc_errors_ = 0;
  u64 stale_frames_ = 0;
  u64 resumed_transfers_ = 0;
  u64 breaker_trips_ = 0;
  u64 breaker_fast_fails_ = 0;
};

}  // namespace rvcap::net
