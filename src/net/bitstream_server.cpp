#include "net/bitstream_server.hpp"

#include <span>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "obs/observability.hpp"

namespace rvcap::net {

namespace sites = sim::fault_sites;

BitstreamServer::BitstreamServer(std::string name, NetLink& link, Config cfg)
    : Component(std::move(name)), cfg_(cfg), link_(link) {
  if (cfg_.chunk_bytes == 0) cfg_.chunk_bytes = 1024;
  link_.b_rx().watch(this);
  link_.b_tx().watch(this);
}

void BitstreamServer::on_register(obs::Observability& o) {
  obs::CounterRegistry& c = o.counters();
  c.register_fn("net.server.requests", [this] { return requests_; });
  c.register_fn("net.server.served", [this] { return served_; });
  c.register_fn("net.server.errors", [this] { return errors_; });
  c.register_fn("net.server.stalled", [this] { return stalled_; });
}

NetFrame BitstreamServer::build_response(const NetFrame& req) const {
  NetFrame r;
  r.image = req.image;
  r.chunk = req.chunk;
  auto it = images_.find(req.image);
  if (it == images_.end()) {
    r.op = NetFrame::Op::kError;
    r.status = static_cast<u32>(Status::kNotFound);
    return r;
  }
  const std::vector<u8>& img = it->second;
  const u32 total =
      static_cast<u32>((img.size() + cfg_.chunk_bytes - 1) / cfg_.chunk_bytes);
  if (req.chunk >= total) {
    r.op = NetFrame::Op::kError;
    r.status = static_cast<u32>(Status::kOutOfRange);
    return r;
  }
  r.op = NetFrame::Op::kData;
  r.total_chunks = total;
  r.image_bytes = static_cast<u32>(img.size());
  const usize off = usize{req.chunk} * cfg_.chunk_bytes;
  const usize len = std::min<usize>(cfg_.chunk_bytes, img.size() - off);
  r.payload.assign(img.begin() + static_cast<long>(off),
                   img.begin() + static_cast<long>(off + len));
  r.crc = crc32(std::span<const u8>(r.payload));
  return r;
}

bool BitstreamServer::tick() {
  if (pending_) {
    if (sim_now() < ready_at_) return false;  // wheel wake pending
    if (!link_.b_tx().can_push()) return false;  // fifo pop wakes us
    link_.b_tx().push(std::move(response_));
    pending_ = false;
    return true;
  }
  if (!link_.b_rx().can_pop()) return false;
  NetFrame req = std::move(*link_.b_rx().pop());
  ++requests_;
  if (req.op != NetFrame::Op::kRrq) return true;  // drop strays
  if (fi_ != nullptr && fi_->should_fire(sites::kNetServerStall)) {
    // Overloaded server: request silently swallowed, client times out.
    ++stalled_;
    return true;
  }
  response_ = build_response(req);
  if (response_.op == NetFrame::Op::kError) {
    ++errors_;
  } else {
    ++served_;
  }
  pending_ = true;
  ready_at_ = sim_now() + cfg_.service_cycles;
  wake_at(ready_at_);
  return true;
}

}  // namespace rvcap::net
