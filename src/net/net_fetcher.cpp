#include "net/net_fetcher.hpp"

#include <span>
#include <utility>

#include "common/bytes.hpp"
#include "obs/observability.hpp"

namespace rvcap::net {

using Op = NetFrame::Op;

NetFetcher::NetFetcher(cpu::CpuContext& cpu, NetLink& link, Config cfg)
    : cpu_(cpu), link_(link), cfg_(cfg) {
  if (cfg_.chunk_bytes == 0) cfg_.chunk_bytes = 1024;
  obs::Observability& o = cpu_.simulator().obs();
  sink_ = &o.sink();
  src_ = sink_->intern("net_fetcher");
  obs::CounterRegistry& c = o.counters();
  c.register_fn("net.fetch.ok", [this] { return fetches_ok_; });
  c.register_fn("net.fetch.fail", [this] { return fetches_failed_; });
  c.register_fn("net.fetch.retries", [this] { return chunk_retries_; });
  c.register_fn("net.fetch.timeouts", [this] { return chunk_timeouts_; });
  c.register_fn("net.fetch.crc_errors", [this] { return chunk_crc_errors_; });
  c.register_fn("net.fetch.stale_frames", [this] { return stale_frames_; });
  c.register_fn("net.fetch.resumed", [this] { return resumed_transfers_; });
  c.register_fn("net.breaker.trips", [this] { return breaker_trips_; });
  c.register_fn("net.breaker.fast_fails",
                [this] { return breaker_fast_fails_; });
  fetch_hist_ = c.histogram("net.fetch.cycles");
  chunk_hist_ = c.histogram("net.chunk.cycles");
  backoff_hist_ = c.histogram("net.backoff.cycles");
}

bool NetFetcher::breaker_open() const {
  return open_ && cpu_.now() < open_until_;
}

u16 NetFetcher::image_id(std::string_view image) {
  auto it = image_ids_.find(image);
  if (it != image_ids_.end()) return it->second;
  const u16 id = static_cast<u16>(image_ids_.size());
  image_ids_.emplace(std::string(image), id);
  return id;
}

void NetFetcher::note_result(std::string_view image, Status s) {
  (void)image;
  const bool transport_ok = s == Status::kOk || s == Status::kNotFound ||
                            s == Status::kOutOfRange ||
                            s == Status::kNoSpace;
  if (transport_ok) {
    // The transport answered — the link and server are healthy even
    // when the answer is "no such image" or "too big".
    consecutive_failures_ = 0;
    if (open_) {
      open_ = false;
      RVCAP_TRACE(sink_, obs::EventKind::kNetBreakerClose, src_,
                  cpu_.now(), 0, 0, 0);
    }
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= cfg_.breaker_threshold) {
    open_ = true;
    open_until_ = cpu_.now() + cfg_.breaker_cooldown;
    ++breaker_trips_;
    RVCAP_TRACE(sink_, obs::EventKind::kNetBreakerOpen, src_, cpu_.now(),
                consecutive_failures_, 0, 0);
  }
}

Status NetFetcher::wait_response(std::string_view image, u32 chunk,
                                 NetFrame* out) {
  const Cycles deadline = cpu_.now() + cfg_.response_timeout;
  while (true) {
    const Cycles now = cpu_.now();
    if (now >= deadline) return Status::kTimeout;
    if (!cpu_.wait_for([this] { return link_.a_rx().can_pop(); },
                       deadline - now)) {
      return Status::kTimeout;
    }
    NetFrame f = std::move(*link_.a_rx().pop());
    cpu_.spend_instructions(10);  // header parse
    const bool match =
        f.image == image &&
        (f.op == Op::kError || (f.op == Op::kData && f.chunk == chunk));
    if (!match) {
      // Stale answer from an earlier attempt or a duplicate.
      ++stale_frames_;
      continue;
    }
    *out = std::move(f);
    return Status::kOk;
  }
}

Status NetFetcher::fetch_chunk(std::string_view image, u32 chunk, Addr dest,
                               u32 capacity, Partial* p) {
  RetrySchedule sched(cfg_.retry, cfg_.retry_seed ^ retry_streams_++);
  const Cycles c0 = cpu_.now();
  Status last = Status::kTimeout;
  while (sched.next()) {
    if (sched.attempt() > 1) {
      ++chunk_retries_;
      RVCAP_TRACE(sink_, obs::EventKind::kNetRetry, src_, cpu_.now(), chunk,
                  sched.attempt(), sched.delay());
      if (sched.delay() > 0) {
        backoff_hist_->record(sched.delay());
        cpu_.simulator().run_cycles(sched.delay());
      }
    }
    NetFrame rrq;
    rrq.op = Op::kRrq;
    rrq.image = std::string(image);
    rrq.chunk = chunk;
    if (!link_.a_tx().can_push() &&
        !cpu_.wait_for([this] { return link_.a_tx().can_push(); },
                       cfg_.response_timeout)) {
      ++chunk_timeouts_;
      last = Status::kTimeout;
      continue;
    }
    cpu_.spend_instructions(20);  // request marshalling
    link_.a_tx().push(std::move(rrq));

    NetFrame resp;
    last = wait_response(image, chunk, &resp);
    if (last == Status::kTimeout) {
      ++chunk_timeouts_;
      continue;
    }
    if (resp.op == Op::kError) {
      // Definitive server answer: retrying cannot help.
      return static_cast<Status>(resp.status);
    }
    // Software CRC over the payload before anything lands in DDR.
    cpu_.spend_instructions(resp.payload.size() / 8 + 8);
    if (crc32(std::span<const u8>(resp.payload)) != resp.crc) {
      ++chunk_crc_errors_;
      last = Status::kCrcError;
      continue;
    }
    if (resp.total_chunks == 0 || chunk >= resp.total_chunks ||
        resp.payload.empty()) {
      last = Status::kProtocolError;
      continue;
    }
    if (p->total_chunks == 0) {
      p->total_chunks = resp.total_chunks;
      p->image_bytes = resp.image_bytes;
      if (resp.image_bytes > capacity) return Status::kNoSpace;
    }
    cpu_.write_buffer(dest + u64{chunk} * cfg_.chunk_bytes,
                      std::span<const u8>(resp.payload));
    p->next_chunk = chunk + 1;
    chunk_hist_->record(cpu_.now() - c0);
    return Status::kOk;
  }
  return last;
}

Status NetFetcher::fetch(std::string_view image, Addr dest, u32 capacity,
                         u32* bytes_out) {
  if (bytes_out != nullptr) *bytes_out = 0;
  if (breaker_open()) {
    ++breaker_fast_fails_;
    RVCAP_TRACE(sink_, obs::EventKind::kNetFetchFail, src_, cpu_.now(),
                image_id(image),
                static_cast<u64>(Status::kUnavailable), 0);
    return Status::kUnavailable;
  }
  const Cycles t0 = cpu_.now();
  const u16 id = image_id(image);

  auto [it, inserted] = partial_.try_emplace(std::string(image));
  Partial& p = it->second;
  if (!inserted && p.dest == dest && p.next_chunk > 0) {
    // Continue the interrupted transfer: chunks [0, next_chunk) are
    // already verified in DDR at this address.
    ++resumed_transfers_;
  } else {
    p = Partial{};
    p.dest = dest;
  }
  RVCAP_TRACE(sink_, obs::EventKind::kNetFetchStart, src_, t0, id,
              p.total_chunks, 0);

  Status st = Status::kOk;
  while (true) {
    st = fetch_chunk(image, p.next_chunk, dest, capacity, &p);
    if (!ok(st)) break;
    if (p.total_chunks != 0 && p.next_chunk >= p.total_chunks) break;
  }
  note_result(image, st);
  if (ok(st)) {
    const u32 bytes = p.image_bytes;
    partial_.erase(it);
    ++fetches_ok_;
    if (bytes_out != nullptr) *bytes_out = bytes;
    fetch_hist_->record(cpu_.now() - t0);
    RVCAP_TRACE(sink_, obs::EventKind::kNetFetchDone, src_, cpu_.now(), id,
                bytes, cpu_.now() - t0);
    return Status::kOk;
  }
  // Keep resume state only for transport failures; definitive answers
  // (not found, too big) restart from scratch next time.
  if (st == Status::kNotFound || st == Status::kOutOfRange ||
      st == Status::kNoSpace || st == Status::kProtocolError) {
    partial_.erase(it);
  }
  ++fetches_failed_;
  RVCAP_TRACE(sink_, obs::EventKind::kNetFetchFail, src_, cpu_.now(), id,
              static_cast<u64>(st), 0);
  return st;
}

}  // namespace rvcap::net
