// The reconfig_module descriptor of Listing 2: "a unique input
// containing the bitstream name, the functionality of the RM, the start
// address ... where the bitstream is stored in the DDR, and the
// bitstream size".
#pragma once

#include <string>

#include "common/types.hpp"

namespace rvcap::driver {

struct ReconfigModule {
  std::string pbit_name;   // file name on the SD card's FAT32 volume
  u32 rm_id = 0;           // functionality of the RM
  Addr start_address = 0;  // DDR staging address (filled by init_RModules)
  u32 pbit_size = 0;       // bytes (filled by init_RModules)
  u32 crc32 = 0;           // CRC-32 of the image (filled by init_RModules)
};

/// DMA completion handling mode (Listing 1's `mode` parameter).
enum class DmaMode : u8 {
  kBlocking,   // poll the DMA status register
  kInterrupt,  // non-blocking: completion via PLIC interrupt
};

}  // namespace rvcap::driver
