// Configuration scrubber — safe-DPR integrity service.
//
// The Di Carlo et al. related work (§II) motivates DPR controllers for
// "safe ... real-time and mission-critical adaptive applications" that
// validate configuration data. This service provides the software side
// on top of RV-CAP's readback path:
//
//   snapshot():  after a module loads, read the partition back and
//                record a golden checksum of its frame data;
//   scrub():     read the partition back again and compare — detects
//                single-event upsets (SEUs) in configuration memory;
//   scrub_and_repair(): on a mismatch, recover by reloading the
//                module's partial bitstream (full-partition repair).
//
// All work runs on the CPU model: readbacks at DMA rate, checksum in
// software over the captured buffer, so scrub cycles have realistic
// costs the bench can report.
#pragma once

#include "driver/rvcap_driver.hpp"

namespace rvcap::driver {

class Scrubber {
 public:
  struct Config {
    Addr cmd_staging;  // scratch DDR for readback command sequences
    Addr rb_buffer;    // DDR buffer the readback lands in
  };

  struct Stats {
    u64 scrubs = 0;
    u64 detections = 0;
    u64 repairs = 0;
    u64 words_scrubbed = 0;
  };

  Scrubber(RvCapDriver& drv, const fabric::DeviceGeometry& dev,
           const Config& cfg)
      : drv_(drv), dev_(dev), cfg_(cfg) {}

  /// Record the golden checksum of a partition's current contents.
  Status snapshot(const fabric::Partition& part);

  /// Read the partition back and compare with the snapshot. Returns
  /// kOk when clean, kCrcError on a detected upset, other codes on
  /// transport errors. `clean` (optional) receives the verdict.
  Status scrub(const fabric::Partition& part, bool* clean = nullptr);

  /// scrub(); on detection, reload the module and verify the reload
  /// restored the golden contents before counting the repair. The
  /// snapshot itself is never replaced here — see scrub_and_repair().
  Status scrub_and_repair(const fabric::Partition& part,
                          const ReconfigModule& module,
                          DmaMode mode = DmaMode::kInterrupt);

  const Stats& stats() const { return stats_; }
  bool has_snapshot() const { return has_golden_; }

  /// When set, readbacks leave the RP decoupled afterwards — used by
  /// the recovery flow, which scrub-verifies a freshly loaded partition
  /// BEFORE coupling it to the system.
  void set_hold_decoupled(bool hold) { hold_decoupled_ = hold; }

 private:
  Status checksum_partition(const fabric::Partition& part, u32* crc_out,
                            u32* words_out);

  RvCapDriver& drv_;
  const fabric::DeviceGeometry& dev_;
  Config cfg_;
  bool has_golden_ = false;
  bool hold_decoupled_ = false;
  u32 golden_crc_ = 0;
  Stats stats_;
};

}  // namespace rvcap::driver
