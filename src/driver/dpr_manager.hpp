// DPR manager — runtime module management above the Listing-1 APIs.
//
// The paper's related work (ZyCAP's high-level interface, FOS) and its
// own outlook motivate a software layer that abstracts reconfiguration
// management: applications name modules; the manager keeps partial
// bitstreams staged in a DDR slot cache (loading from the FAT32 volume
// on a miss, LRU-evicting when full), skips reconfiguration when the
// requested module is already active, and accounts every cost.
//
// Self-healing activation (safe-DPR): activate() isolates the RP before
// touching the ICAP and only recouples it once a verified-good
// configuration is active. Each failed attempt runs the recovery state
// machine — DMA reset, datapath abort, partition blank — and retries up
// to a bounded budget, optionally degrading to the AXI_HWICAP fallback
// path; exhausted retries leave the RP decoupled over a blanked
// partition. Every event lands in a fixed-size failure journal.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "driver/hwicap_driver.hpp"
#include "driver/rvcap_driver.hpp"
#include "driver/scrubber.hpp"
#include "fabric/config_memory.hpp"
#include "sim/fault_injector.hpp"

namespace rvcap::driver {

class BitstreamSource;

/// Recovery pipeline stage a journal entry refers to.
enum class FailStage : u8 {
  kStaging,    // SD -> DDR load failed
  kStagedCrc,  // staged image failed its CRC-32 check
  kDma,        // RV-CAP DMA transfer errored or timed out
  kIcap,       // HWICAP fallback transfer failed
  kActivate,   // transfer "succeeded" but the partition did not activate
  kScrub,      // post-recovery readback verify failed
  kBlank,      // partition blanking pass failed
  kRecovered,  // activation succeeded after at least one failure
  kExhausted,  // retry budget spent; RP left decoupled and blanked
};

std::string_view to_string(FailStage s);

class DprManager {
 public:
  struct Config {
    Addr staging_base = soc::MemoryMap::kPbitStagingBase;
    u32 slot_bytes = 1 << 20;  // one staging slot per module, 1 MiB
    u32 num_slots = 4;
  };

  /// Knobs of the self-healing activation flow.
  struct RecoveryPolicy {
    u32 max_attempts = 3;          // total tries per activate() call
    bool verify_staged_crc = true; // CRC the DDR image before the ICAP
    bool hwicap_fallback = true;   // degrade to AXI_HWICAP when attached
    u32 fallback_after_failures = 2;  // consecutive DMA-path failures
    bool scrub_after_recovery = true; // readback-verify before recouple
    bool blank_on_failure = true;  // blank the partition after a failure
  };

  /// One failure-journal record; the journal is a fixed ring of the
  /// most recent kJournalCapacity events.
  struct JournalEntry {
    u64 mtime = 0;  // CLINT timestamp of the event
    FailStage stage{};
    Status status{};
    u32 rm_id = 0;
    u32 attempt = 0;
  };
  static constexpr usize kJournalCapacity = 32;

  struct Stats {
    u64 activation_requests = 0;
    u64 reconfigurations = 0;      // actual DPR transfers performed
    u64 already_active_hits = 0;   // requests satisfied without DPR
    u64 staging_hits = 0;          // bitstream already in DDR
    u64 staging_loads = 0;         // SD -> DDR loads performed
    u64 evictions = 0;             // LRU slot reclaims
    u64 total_reconfig_ticks = 0;  // CLINT ticks spent in T_r
    // ---- recovery pipeline counters ----
    u64 staging_failures = 0;      // SD -> DDR load errors
    u64 staged_crc_failures = 0;   // DDR image CRC mismatches
    u64 dma_errors = 0;            // DMA transfer errors (SLVERR etc.)
    u64 dma_timeouts = 0;          // DMA transfer timeouts (stalls)
    u64 dma_hangs = 0;             // transfers aborted by a watchdog
    u64 config_failures = 0;       // transfer ok but partition inactive
    u64 scrub_failures = 0;        // post-recovery verify mismatches
    u64 recoveries = 0;            // activations that needed a retry
    u64 fallback_reconfigs = 0;    // transfers via the HWICAP path
    u64 blank_passes = 0;          // partition blanking transfers
    u64 retries_exhausted = 0;     // activations that gave up
    u64 scrub_verifies = 0;        // post-recovery verify passes run
  };

  /// `volume` may be nullptr when every module is pre-staged.
  DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg, usize rp_handle,
             storage::Fat32Volume* volume, const Config& config);
  DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg, usize rp_handle,
             storage::Fat32Volume* volume)
      : DprManager(drv, cfg, rp_handle, volume, Config{}) {}

  /// Register a module backed by a bitstream file on the volume.
  Status register_module(std::string name, u32 rm_id,
                         std::string pbit_path);
  /// Register a module whose bitstream is already staged in DDR. The
  /// image is CRC'd now; that checksum is the golden reference the
  /// recovery flow verifies against before every transfer.
  Status register_staged(std::string name, u32 rm_id, Addr addr, u32 bytes);
  /// Register a module delivered by the attached BitstreamSource
  /// (network / cache / SD-fallback chain) under repository name
  /// `image`. Staging fetches the image into the slot cache and CRCs
  /// it there; like file-backed modules it is evictable and restaged
  /// on demand.
  Status register_remote(std::string name, u32 rm_id, std::string image);

  /// Ensure the module's bitstream is staged (no reconfiguration).
  Status prefetch(std::string_view name);

  /// Make the module active in the partition; no-op when it already is.
  /// Runs the self-healing flow under the current RecoveryPolicy.
  /// `force` skips the already-active fast path and rewrites every
  /// frame regardless — the scrub service's escalation path, where the
  /// partition still tracks as loaded but its configuration bits are
  /// known to be damaged.
  Status activate(std::string_view name, DmaMode mode = DmaMode::kInterrupt,
                  bool force = false);

  /// Name of the module currently active (empty when none/unknown).
  std::string active_module() const;

  /// Metadata of a module's staged DDR image. Stages the image first
  /// when it is not resident, so callers (admission preflight) can
  /// parse the exact bytes a subsequent activate() would stream.
  struct StagedInfo {
    Addr addr = 0;
    u32 bytes = 0;
    u32 rm_id = 0;
  };
  Status staged_image(std::string_view name, StagedInfo* out);

  /// Whether a module was registered under `name`.
  bool has_module(std::string_view name) const;

  /// Drop a module's staged image (quarantine support; no-op for
  /// pinned pre-staged modules, which have no backing file to reload).
  void discard_staged(std::string_view name);

  /// The underlying Listing-1 driver (watchdog installation point).
  RvCapDriver& driver() { return drv_; }
  /// The partition behind this manager's RP handle (floorplan checks).
  const fabric::Partition& partition() const {
    return cfg_.partition(rp_handle_);
  }
  const fabric::DeviceGeometry& device() const { return cfg_.device(); }

  void set_policy(const RecoveryPolicy& p) { policy_ = p; }
  const RecoveryPolicy& policy() const { return policy_; }

  /// Degraded-mode transfer path used after repeated DMA failures.
  void attach_fallback(HwIcapDriver* hwicap) { fallback_ = hwicap; }

  /// Post-recovery verification service. `part` must outlive the
  /// manager; it is the partition behind `rp_handle`.
  void attach_scrubber(Scrubber* scrubber, const fabric::Partition* part) {
    scrubber_ = scrubber;
    scrub_part_ = part;
  }

  /// Staging-path fault hook (sim::fault_sites::kStageBitFlip).
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }

  /// Delivery chain for register_remote modules. Must outlive the
  /// manager; nullptr detaches (remote staging then fails kInternal).
  void attach_source(BitstreamSource* source) { source_ = source; }

  /// Journal entries, oldest first (at most kJournalCapacity retained).
  std::vector<JournalEntry> journal() const;
  u64 journal_events() const { return journal_events_; }

  const Stats& stats() const { return stats_; }
  double total_reconfig_us() const {
    return TimerDriver::ticks_to_us(stats_.total_reconfig_ticks);
  }

 private:
  struct Module {
    std::string name;
    u32 rm_id = 0;
    std::string pbit_path;       // FAT32 path, or repository image name
                                 // for remote modules; empty pre-staged
    std::optional<u32> slot;     // staging slot index when resident
    Addr staged_addr = 0;
    u32 pbit_size = 0;
    u32 crc32 = 0;               // golden CRC of the staged image
    bool pinned = false;         // pre-staged: never evicted
    bool remote = false;         // staged through the BitstreamSource
  };

  Module* find(std::string_view name);
  Status ensure_staged(Module& m);
  u32 claim_slot(Module& m);
  void stage_bitflip_hook(const Module& m);
  u32 pick_victim_slot();
  void unstage(Module& m);
  u32 staged_image_crc(Addr addr, u32 bytes);
  /// Scratch DDR just past the slot cache, used for blank bitstreams.
  Addr scratch_addr() const {
    return config_.staging_base +
           u64{config_.num_slots} * config_.slot_bytes;
  }
  Status blank_partition(DmaMode mode, u32 attempt);
  void recover_datapath(DmaMode mode, u32 attempt);
  void record(FailStage stage, Status status, u32 rm_id, u32 attempt);

  RvCapDriver& drv_;
  fabric::ConfigMemory& cfg_;
  usize rp_handle_;
  storage::Fat32Volume* volume_;
  Config config_;
  RecoveryPolicy policy_;
  HwIcapDriver* fallback_ = nullptr;
  Scrubber* scrubber_ = nullptr;
  const fabric::Partition* scrub_part_ = nullptr;
  sim::FaultInjector* fault_ = nullptr;
  BitstreamSource* source_ = nullptr;
  std::vector<Module> modules_;
  std::vector<std::optional<usize>> slot_owner_;  // module index per slot
  std::vector<u64> slot_last_use_;
  u64 use_clock_ = 0;
  u32 consecutive_dma_failures_ = 0;
  std::array<JournalEntry, kJournalCapacity> journal_{};
  u64 journal_events_ = 0;
  Stats stats_;
};

}  // namespace rvcap::driver
