// DPR manager — runtime module management above the Listing-1 APIs.
//
// The paper's related work (ZyCAP's high-level interface, FOS) and its
// own outlook motivate a software layer that abstracts reconfiguration
// management: applications name modules; the manager keeps partial
// bitstreams staged in a DDR slot cache (loading from the FAT32 volume
// on a miss, LRU-evicting when full), skips reconfiguration when the
// requested module is already active, and accounts every cost.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/rvcap_driver.hpp"
#include "fabric/config_memory.hpp"

namespace rvcap::driver {

class DprManager {
 public:
  struct Config {
    Addr staging_base = soc::MemoryMap::kPbitStagingBase;
    u32 slot_bytes = 1 << 20;  // one staging slot per module, 1 MiB
    u32 num_slots = 4;
  };

  struct Stats {
    u64 activation_requests = 0;
    u64 reconfigurations = 0;      // actual DPR transfers performed
    u64 already_active_hits = 0;   // requests satisfied without DPR
    u64 staging_hits = 0;          // bitstream already in DDR
    u64 staging_loads = 0;         // SD -> DDR loads performed
    u64 evictions = 0;             // LRU slot reclaims
    u64 total_reconfig_ticks = 0;  // CLINT ticks spent in T_r
  };

  /// `volume` may be nullptr when every module is pre-staged.
  DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg, usize rp_handle,
             storage::Fat32Volume* volume, const Config& config);
  DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg, usize rp_handle,
             storage::Fat32Volume* volume)
      : DprManager(drv, cfg, rp_handle, volume, Config{}) {}

  /// Register a module backed by a bitstream file on the volume.
  Status register_module(std::string name, u32 rm_id,
                         std::string pbit_path);
  /// Register a module whose bitstream is already staged in DDR.
  Status register_staged(std::string name, u32 rm_id, Addr addr, u32 bytes);

  /// Ensure the module's bitstream is staged (no reconfiguration).
  Status prefetch(std::string_view name);

  /// Make the module active in the partition; no-op when it already is.
  Status activate(std::string_view name,
                  DmaMode mode = DmaMode::kInterrupt);

  /// Name of the module currently active (empty when none/unknown).
  std::string active_module() const;

  const Stats& stats() const { return stats_; }
  double total_reconfig_us() const {
    return TimerDriver::ticks_to_us(stats_.total_reconfig_ticks);
  }

 private:
  struct Module {
    std::string name;
    u32 rm_id = 0;
    std::string pbit_path;       // empty for pre-staged modules
    std::optional<u32> slot;     // staging slot index when resident
    Addr staged_addr = 0;
    u32 pbit_size = 0;
    bool pinned = false;         // pre-staged: never evicted
  };

  Module* find(std::string_view name);
  Status ensure_staged(Module& m);
  u32 pick_victim_slot();

  RvCapDriver& drv_;
  fabric::ConfigMemory& cfg_;
  usize rp_handle_;
  storage::Fat32Volume* volume_;
  Config config_;
  std::vector<Module> modules_;
  std::vector<std::optional<usize>> slot_owner_;  // module index per slot
  std::vector<u64> slot_last_use_;
  u64 use_clock_ = 0;
  Stats stats_;
};

}  // namespace rvcap::driver
