#include "driver/dpr_manager.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rvcap::driver {

DprManager::DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg,
                       usize rp_handle, storage::Fat32Volume* volume,
                       const Config& config)
    : drv_(drv), cfg_(cfg), rp_handle_(rp_handle), volume_(volume),
      config_(config), slot_owner_(config.num_slots),
      slot_last_use_(config.num_slots, 0) {}

Status DprManager::register_module(std::string name, u32 rm_id,
                                   std::string pbit_path) {
  if (volume_ == nullptr) return Status::kInvalidArgument;
  if (find(name) != nullptr) return Status::kAlreadyExists;
  u32 size = 0;
  if (auto st = volume_->file_size(pbit_path, &size); !ok(st)) return st;
  if (size > config_.slot_bytes) return Status::kNoSpace;
  Module m;
  m.name = std::move(name);
  m.rm_id = rm_id;
  m.pbit_path = std::move(pbit_path);
  m.pbit_size = size;
  modules_.push_back(std::move(m));
  return Status::kOk;
}

Status DprManager::register_staged(std::string name, u32 rm_id, Addr addr,
                                   u32 bytes) {
  if (find(name) != nullptr) return Status::kAlreadyExists;
  Module m;
  m.name = std::move(name);
  m.rm_id = rm_id;
  m.staged_addr = addr;
  m.pbit_size = bytes;
  m.pinned = true;
  modules_.push_back(std::move(m));
  return Status::kOk;
}

DprManager::Module* DprManager::find(std::string_view name) {
  for (Module& m : modules_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

u32 DprManager::pick_victim_slot() {
  u32 best = 0;
  u64 oldest = ~u64{0};
  for (u32 s = 0; s < config_.num_slots; ++s) {
    if (!slot_owner_[s].has_value()) return s;  // free slot
    if (slot_last_use_[s] < oldest) {
      oldest = slot_last_use_[s];
      best = s;
    }
  }
  return best;
}

Status DprManager::ensure_staged(Module& m) {
  if (m.pinned) return Status::kOk;
  if (m.slot.has_value()) {
    ++stats_.staging_hits;
    slot_last_use_[*m.slot] = ++use_clock_;
    return Status::kOk;
  }
  if (volume_ == nullptr) return Status::kInternal;

  const u32 slot = pick_victim_slot();
  if (slot_owner_[slot].has_value()) {
    Module& evicted = modules_[*slot_owner_[slot]];
    evicted.slot.reset();
    ++stats_.evictions;
    log_debug("dpr_manager: evicting ", evicted.name, " from slot ", slot);
  }

  // Stage via init_RModules (the Listing-1 step-1 path).
  ReconfigModule rm{m.pbit_path, m.rm_id, 0, 0};
  std::span<ReconfigModule> one(&rm, 1);
  if (auto st = drv_.init_RModules(
          one, *volume_,
          config_.staging_base + u64{slot} * config_.slot_bytes);
      !ok(st)) {
    return st;
  }
  m.staged_addr = rm.start_address;
  m.pbit_size = rm.pbit_size;
  m.slot = slot;
  slot_owner_[slot] = static_cast<usize>(&m - modules_.data());
  slot_last_use_[slot] = ++use_clock_;
  ++stats_.staging_loads;
  return Status::kOk;
}

Status DprManager::prefetch(std::string_view name) {
  Module* m = find(name);
  if (m == nullptr) return Status::kNotFound;
  return ensure_staged(*m);
}

Status DprManager::activate(std::string_view name, DmaMode mode) {
  ++stats_.activation_requests;
  Module* m = find(name);
  if (m == nullptr) return Status::kNotFound;

  const auto st = cfg_.partition_state(rp_handle_);
  if (st.loaded && st.rm_id == m->rm_id) {
    ++stats_.already_active_hits;
    return Status::kOk;
  }
  if (auto s = ensure_staged(*m); !ok(s)) return s;

  ReconfigModule rm{m->name, m->rm_id, m->staged_addr, m->pbit_size};
  if (auto s = drv_.init_reconfig_process(rm, mode); !ok(s)) return s;
  ++stats_.reconfigurations;
  stats_.total_reconfig_ticks += drv_.last_timing().reconfig_ticks;

  const auto after = cfg_.partition_state(rp_handle_);
  return (after.loaded && after.rm_id == m->rm_id) ? Status::kOk
                                                   : Status::kIoError;
}

std::string DprManager::active_module() const {
  const auto st = cfg_.partition_state(rp_handle_);
  if (!st.loaded) return {};
  for (const Module& m : modules_) {
    if (m.rm_id == st.rm_id) return m.name;
  }
  return {};
}

}  // namespace rvcap::driver
