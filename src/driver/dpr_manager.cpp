#include "driver/dpr_manager.hpp"

#include <algorithm>

#include "bitstream/generator.hpp"
#include "common/bytes.hpp"
#include "common/log.hpp"
#include "driver/bitstream_source.hpp"

namespace rvcap::driver {

std::string_view to_string(FailStage s) {
  switch (s) {
    case FailStage::kStaging: return "staging";
    case FailStage::kStagedCrc: return "staged_crc";
    case FailStage::kDma: return "dma";
    case FailStage::kIcap: return "icap";
    case FailStage::kActivate: return "activate";
    case FailStage::kScrub: return "scrub";
    case FailStage::kBlank: return "blank";
    case FailStage::kRecovered: return "recovered";
    case FailStage::kExhausted: return "exhausted";
  }
  return "unknown";
}

DprManager::DprManager(RvCapDriver& drv, fabric::ConfigMemory& cfg,
                       usize rp_handle, storage::Fat32Volume* volume,
                       const Config& config)
    : drv_(drv), cfg_(cfg), rp_handle_(rp_handle), volume_(volume),
      config_(config), slot_owner_(config.num_slots),
      slot_last_use_(config.num_slots, 0) {}

Status DprManager::register_module(std::string name, u32 rm_id,
                                   std::string pbit_path) {
  if (volume_ == nullptr) return Status::kInvalidArgument;
  if (find(name) != nullptr) return Status::kAlreadyExists;
  u32 size = 0;
  if (auto st = volume_->file_size(pbit_path, &size); !ok(st)) return st;
  if (size > config_.slot_bytes) return Status::kNoSpace;
  Module m;
  m.name = std::move(name);
  m.rm_id = rm_id;
  m.pbit_path = std::move(pbit_path);
  m.pbit_size = size;
  modules_.push_back(std::move(m));
  return Status::kOk;
}

Status DprManager::register_staged(std::string name, u32 rm_id, Addr addr,
                                   u32 bytes) {
  if (find(name) != nullptr) return Status::kAlreadyExists;
  Module m;
  m.name = std::move(name);
  m.rm_id = rm_id;
  m.staged_addr = addr;
  m.pbit_size = bytes;
  m.crc32 = staged_image_crc(addr, bytes);
  m.pinned = true;
  modules_.push_back(std::move(m));
  return Status::kOk;
}

Status DprManager::register_remote(std::string name, u32 rm_id,
                                   std::string image) {
  if (source_ == nullptr) return Status::kInvalidArgument;
  if (find(name) != nullptr) return Status::kAlreadyExists;
  Module m;
  m.name = std::move(name);
  m.rm_id = rm_id;
  m.pbit_path = std::move(image);
  m.remote = true;
  modules_.push_back(std::move(m));
  return Status::kOk;
}

DprManager::Module* DprManager::find(std::string_view name) {
  for (Module& m : modules_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

u32 DprManager::pick_victim_slot() {
  u32 best = 0;
  u64 oldest = ~u64{0};
  for (u32 s = 0; s < config_.num_slots; ++s) {
    if (!slot_owner_[s].has_value()) return s;  // free slot
    if (slot_last_use_[s] < oldest) {
      oldest = slot_last_use_[s];
      best = s;
    }
  }
  return best;
}

void DprManager::unstage(Module& m) {
  if (!m.slot.has_value()) return;
  slot_owner_[*m.slot].reset();
  m.slot.reset();
}

u32 DprManager::staged_image_crc(Addr addr, u32 bytes) {
  // Software CRC over the DDR image: cached burst reads plus roughly
  // one ALU bundle per word, so the check has a realistic cost.
  cpu::CpuContext& cpu = drv_.cpu_context();
  std::vector<u8> chunk(4096);
  u32 crc = 0;
  u32 done = 0;
  while (done < bytes) {
    const u32 n = std::min<u32>(static_cast<u32>(chunk.size()), bytes - done);
    cpu.read_buffer(addr + done, std::span(chunk).first(n));
    crc = crc32(std::span<const u8>(chunk).first(n), crc);
    cpu.spend_instructions(n / 4);
    done += n;
  }
  return crc;
}

u32 DprManager::claim_slot(Module& m) {
  const u32 slot = pick_victim_slot();
  if (slot_owner_[slot].has_value()) {
    Module& evicted = modules_[*slot_owner_[slot]];
    evicted.slot.reset();
    ++stats_.evictions;
    log_debug("dpr_manager: evicting ", evicted.name, " from slot ", slot);
  }
  m.slot = slot;
  slot_owner_[slot] = static_cast<usize>(&m - modules_.data());
  slot_last_use_[slot] = ++use_clock_;
  return slot;
}

void DprManager::stage_bitflip_hook(const Module& m) {
  // Fault hook: a bit flip landing in the staged image after the load
  // CRC was computed (DDR upset / bus corruption). The staged-CRC
  // verify in activate() is what catches it.
  if (fault_ != nullptr && m.pbit_size > 0 &&
      fault_->should_fire(sim::fault_sites::kStageBitFlip)) {
    const u64 bit = fault_->value(sim::fault_sites::kStageBitFlip,
                                  u64{m.pbit_size} * 8);
    cpu::CpuContext& cpu = drv_.cpu_context();
    u8 byte = 0;
    cpu.read_buffer(m.staged_addr + bit / 8, std::span(&byte, 1));
    byte ^= static_cast<u8>(1u << (bit % 8));
    cpu.write_buffer(m.staged_addr + bit / 8, std::span(&byte, 1));
  }
}

Status DprManager::ensure_staged(Module& m) {
  if (m.pinned) return Status::kOk;
  if (m.slot.has_value()) {
    ++stats_.staging_hits;
    slot_last_use_[*m.slot] = ++use_clock_;
    return Status::kOk;
  }

  if (m.remote) {
    // Acquisition through the delivery chain (cache -> net -> SD).
    // The chain guarantees complete-or-failed, never partial; the
    // golden CRC is taken over the bytes that actually landed, so the
    // pre-transfer verify in activate() covers the image's whole DDR
    // residence regardless of which source produced it.
    if (source_ == nullptr) return Status::kInternal;
    const u32 slot = claim_slot(m);
    const Addr addr = config_.staging_base + u64{slot} * config_.slot_bytes;
    u32 bytes = 0;
    if (auto st = source_->fetch(m.pbit_path, addr, config_.slot_bytes,
                                 &bytes);
        !ok(st)) {
      unstage(m);
      return st;
    }
    m.staged_addr = addr;
    m.pbit_size = bytes;
    m.crc32 = staged_image_crc(addr, bytes);
    ++stats_.staging_loads;
    stage_bitflip_hook(m);
    return Status::kOk;
  }

  if (volume_ == nullptr) return Status::kInternal;
  const u32 slot = claim_slot(m);

  // Stage via init_RModules (the Listing-1 step-1 path).
  ReconfigModule rm{m.pbit_path, m.rm_id, 0, 0};
  std::span<ReconfigModule> one(&rm, 1);
  if (auto st = drv_.init_RModules(
          one, *volume_,
          config_.staging_base + u64{slot} * config_.slot_bytes);
      !ok(st)) {
    unstage(m);
    return st;
  }
  m.staged_addr = rm.start_address;
  m.pbit_size = rm.pbit_size;
  m.crc32 = rm.crc32;
  ++stats_.staging_loads;
  stage_bitflip_hook(m);
  return Status::kOk;
}

Status DprManager::prefetch(std::string_view name) {
  Module* m = find(name);
  if (m == nullptr) return Status::kNotFound;
  return ensure_staged(*m);
}

void DprManager::record(FailStage stage, Status status, u32 rm_id,
                        u32 attempt) {
  JournalEntry& e = journal_[journal_events_ % kJournalCapacity];
  e.mtime = drv_.mtime();
  e.stage = stage;
  e.status = status;
  e.rm_id = rm_id;
  e.attempt = attempt;
  ++journal_events_;
}

std::vector<DprManager::JournalEntry> DprManager::journal() const {
  std::vector<JournalEntry> out;
  const u64 n = std::min<u64>(journal_events_, kJournalCapacity);
  out.reserve(n);
  for (u64 i = journal_events_ - n; i < journal_events_; ++i) {
    out.push_back(journal_[i % kJournalCapacity]);
  }
  return out;
}

Status DprManager::blank_partition(DmaMode mode, u32 attempt) {
  const auto blank = bitstream::generate_blank_bitstream(
      cfg_.device(), cfg_.partition(rp_handle_));
  drv_.cpu_context().write_buffer(scratch_addr(), blank);
  ReconfigModule rm{"<blank>", 0, scratch_addr(),
                    static_cast<u32>(blank.size())};
  const Status st =
      drv_.init_reconfig_process(rm, mode, /*hold_decoupled=*/true);
  ++stats_.blank_passes;
  if (!ok(st)) {
    record(FailStage::kBlank, st, 0, attempt);
    // Even the blanking pass failed: scrap whatever the transfer left
    // in the datapath so the next attempt starts clean.
    drv_.cleanup_after_failure();
  }
  return st;
}

void DprManager::recover_datapath(DmaMode mode, u32 attempt) {
  // Recovery state machine: DMA reset + settle + datapath abort, then
  // (policy permitting) overwrite the partially-written partition with
  // a blank configuration. The RP stays decoupled throughout.
  drv_.cleanup_after_failure();
  if (policy_.blank_on_failure) blank_partition(mode, attempt);
}

Status DprManager::activate(std::string_view name, DmaMode mode,
                            bool force) {
  ++stats_.activation_requests;
  Module* m = find(name);
  if (m == nullptr) return Status::kNotFound;

  const auto st0 = cfg_.partition_state(rp_handle_);
  if (!force && st0.loaded && st0.rm_id == m->rm_id) {
    ++stats_.already_active_hits;
    return Status::kOk;
  }

  // Safe-DPR activation: isolate the RP for the whole attempt sequence
  // and recouple only once a verified-good configuration is active.
  drv_.decouple_accel(true);
  Status last = Status::kInternal;
  bool failed_once = false;
  const u32 attempts = std::max<u32>(1, policy_.max_attempts);
  for (u32 attempt = 1; attempt <= attempts; ++attempt) {
    if (auto s = ensure_staged(*m); !ok(s)) {
      last = s;
      ++stats_.staging_failures;
      failed_once = true;
      record(FailStage::kStaging, s, m->rm_id, attempt);
      continue;
    }

    if (policy_.verify_staged_crc &&
        staged_image_crc(m->staged_addr, m->pbit_size) != m->crc32) {
      last = Status::kCrcError;
      ++stats_.staged_crc_failures;
      failed_once = true;
      record(FailStage::kStagedCrc, last, m->rm_id, attempt);
      // Drop the corrupt image so the next attempt reloads from SD.
      // Pinned modules have no backing file — their retries exhaust.
      unstage(*m);
      continue;
    }

    const bool use_fallback =
        policy_.hwicap_fallback && fallback_ != nullptr &&
        consecutive_dma_failures_ >= policy_.fallback_after_failures;
    ReconfigModule rm{m->name, m->rm_id, m->staged_addr, m->pbit_size,
                     m->crc32};
    Status s;
    if (use_fallback) {
      s = fallback_->init_reconfig_process(rm, /*hold_decoupled=*/true);
    } else {
      s = drv_.init_reconfig_process(rm, mode, /*hold_decoupled=*/true);
    }
    if (!ok(s)) {
      last = s;
      failed_once = true;
      if (use_fallback) {
        ++stats_.config_failures;
      } else {
        ++consecutive_dma_failures_;
        if (s == Status::kTimeout) {
          ++stats_.dma_timeouts;
        } else if (s == Status::kHang) {
          ++stats_.dma_hangs;
        } else {
          ++stats_.dma_errors;
        }
      }
      record(use_fallback ? FailStage::kIcap : FailStage::kDma, s,
             m->rm_id, attempt);
      recover_datapath(mode, attempt);
      continue;
    }

    const auto after = cfg_.partition_state(rp_handle_);
    if (!(after.loaded && after.rm_id == m->rm_id)) {
      last = Status::kIoError;
      failed_once = true;
      ++stats_.config_failures;
      if (!use_fallback) ++consecutive_dma_failures_;
      record(FailStage::kActivate, last, m->rm_id, attempt);
      recover_datapath(mode, attempt);
      continue;
    }

    // Post-recovery verification: read the partition back and check it
    // is stable BEFORE the RP rejoins the system. The scrubber reads
    // through the RV-CAP DMA, so it is skipped on fallback transfers —
    // those run precisely because the DMA path is known-bad, and a
    // readback over it would wedge the recovery it is meant to verify.
    if (failed_once && !use_fallback && policy_.scrub_after_recovery &&
        scrubber_ != nullptr && scrub_part_ != nullptr) {
      ++stats_.scrub_verifies;
      scrubber_->set_hold_decoupled(true);
      Status ss = scrubber_->snapshot(*scrub_part_);
      if (ok(ss)) ss = scrubber_->scrub(*scrub_part_);
      scrubber_->set_hold_decoupled(false);
      if (!ok(ss)) {
        last = ss;
        ++stats_.scrub_failures;
        record(FailStage::kScrub, ss, m->rm_id, attempt);
        recover_datapath(mode, attempt);
        continue;
      }
    }

    // Verified good: rejoin the RP and account the transfer.
    drv_.decouple_accel(false);
    ++stats_.reconfigurations;
    if (use_fallback) {
      ++stats_.fallback_reconfigs;
      stats_.total_reconfig_ticks += fallback_->last_timing().reconfig_ticks;
    } else {
      consecutive_dma_failures_ = 0;
      stats_.total_reconfig_ticks += drv_.last_timing().reconfig_ticks;
    }
    if (failed_once) {
      ++stats_.recoveries;
      record(FailStage::kRecovered, Status::kOk, m->rm_id, attempt);
    }
    return Status::kOk;
  }

  // Retry budget spent. The RP is left decoupled over a blanked
  // partition — never coupled to a partial or corrupt configuration.
  ++stats_.retries_exhausted;
  record(FailStage::kExhausted, last, m->rm_id, attempts);
  return last;
}

bool DprManager::has_module(std::string_view name) const {
  for (const Module& m : modules_) {
    if (m.name == name) return true;
  }
  return false;
}

Status DprManager::staged_image(std::string_view name, StagedInfo* out) {
  Module* m = find(name);
  if (m == nullptr) return Status::kNotFound;
  if (auto st = ensure_staged(*m); !ok(st)) return st;
  out->addr = m->staged_addr;
  out->bytes = m->pbit_size;
  out->rm_id = m->rm_id;
  return Status::kOk;
}

void DprManager::discard_staged(std::string_view name) {
  Module* m = find(name);
  if (m == nullptr || m->pinned) return;
  unstage(*m);
}

std::string DprManager::active_module() const {
  const auto st = cfg_.partition_state(rp_handle_);
  if (!st.loaded) return {};
  for (const Module& m : modules_) {
    if (m.rm_id == st.rm_id) return m.name;
  }
  return {};
}

}  // namespace rvcap::driver
