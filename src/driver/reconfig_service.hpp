// Deadline-aware reconfiguration service — the event-driven server
// layered on the DprManager.
//
// Applications do not call activate() directly on a shared RP: they
// submit asynchronous ActivationRequests {module, priority, deadline,
// client} into a bounded priority queue and the service drives the
// self-healing pipeline (PR 1) one request at a time through the
// non-blocking IRQ path. Three robustness layers ride on the queue:
//
//  * Admission control — before a request is even queued, the staged
//    bitstream is parsed offline (bitstream::preflight_check): bad sync
//    framing, a wrong device IDCODE or frame addresses outside the
//    target RP's floorplan reject the request before a single ICAP
//    word is written, and the module lands on a quarantine list so a
//    repeat submission fails fast without re-staging.
//
//  * Watchdog hang detection — the service installs itself as the
//    drivers' ProgressMonitor: during a transfer it probes the engine's
//    progress counter on a CLINT-paced interval, and a counter frozen
//    across N consecutive probes is declared a hang (distinct from a
//    bounded-iteration timeout, which a slow-but-moving transfer also
//    hits). The last register snapshot is recorded as a HangDiagnosis
//    and the wait aborts with Status::kHang, which flows into the
//    DprManager's recovery state machine (cleanup, blank, retry).
//
//  * Graceful degradation — at saturation the lowest-priority queued
//    request is shed with Status::kRejected rather than blocking the
//    queue; duplicate requests for the same module coalesce (the
//    surviving entry inherits the higher priority and the tighter
//    deadline); requests whose deadline has already passed complete
//    with kDeadlineMissed without touching the hardware; clients can
//    cancel while queued.
//
// Telemetry is mirrored into the soc::ServiceRegs MMIO block after
// every terminal event when a mailbox address is configured.
#pragma once

#include <string>
#include <vector>

#include "bitstream/packets.hpp"
#include "common/units.hpp"
#include "driver/dpr_manager.hpp"
#include "driver/progress.hpp"
#include "obs/observability.hpp"

namespace rvcap::driver {

class ReconfigService : public ProgressMonitor {
 public:
  using RequestId = u64;

  struct Config {
    usize queue_capacity = 8;
    DmaMode mode = DmaMode::kInterrupt;
    // ---- admission ----
    bool preflight = true;
    u32 expected_idcode = bitstream::kIdCode;
    // ---- watchdog ----
    u64 watchdog_interval_ticks = 50;  // CLINT ticks between probes
    u32 watchdog_stall_polls = 4;      // frozen probes => hang
    // ---- telemetry ----
    Addr mailbox_base = 0;  // soc::ServiceRegs base; 0 = disabled
  };

  /// A client's asynchronous activation request.
  struct ActivationRequest {
    std::string module;     // DprManager module name
    u32 priority = 0;       // higher wins
    u64 deadline_mtime = 0; // absolute CLINT deadline; 0 = none
    u32 client_id = 0;
    bool force = false;     // rewrite even if already active (scrub
                            // repair of a loaded-but-damaged partition)
  };

  /// Request lifecycle (terminal states carry the matching Status).
  enum class RequestState : u8 {
    kQueued,          // admitted, waiting for dispatch
    kActive,          // activation in flight
    kCompleted,       // terminal: activate() returned kOk
    kFailed,          // terminal: activate() failed (status says why)
    kShed,            // terminal: evicted by a higher-priority arrival
    kRejected,        // terminal: refused at admission
    kCancelled,       // terminal: client withdrew it while queued
    kDeadlineMissed,  // terminal: deadline passed before dispatch
    kCoalesced,       // terminal: merged into an earlier queued request
  };

  struct RequestRecord {
    RequestId id = 0;
    ActivationRequest req;
    RequestState state = RequestState::kQueued;
    Status status = Status::kOk;    // meaningful once terminal
    RequestId merged_into = 0;      // for kCoalesced
    u64 submit_mtime = 0;
    u64 start_mtime = 0;            // dispatch began (0 = never started)
    u64 done_mtime = 0;             // terminal timestamp
  };

  /// Post-mortem of a watchdog-declared hang.
  struct HangDiagnosis {
    u64 mtime = 0;              // when the hang was declared
    RequestId request = 0;
    TransferProgress snapshot;  // last register snapshot observed
    u64 expected_beats = 0;
    u64 outstanding_beats = 0;  // expected - last observed progress
    u32 polls_without_progress = 0;
  };

  struct Stats {
    u64 submitted = 0;
    u64 accepted = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 shed = 0;               // queued entries evicted at saturation
    u64 rejected_full = 0;      // arrivals refused at saturation
    u64 deadline_missed = 0;
    u64 cancelled = 0;
    u64 coalesced = 0;
    u64 quarantine_rejects = 0; // fast-fail resubmits of quarantined RMs
    u64 preflight_rejects = 0;  // images failing admission parsing
    u64 hangs = 0;              // watchdog-declared wedged transfers
    u64 max_queue_depth = 0;
  };

  ReconfigService(DprManager& mgr, const Config& cfg);
  explicit ReconfigService(DprManager& mgr)
      : ReconfigService(mgr, Config{}) {}

  /// Admission control. On kOk the request is queued and *id names it.
  /// Rejections: kNotFound (unknown module), kQuarantined (failed
  /// preflight before), kDeadlineMissed (already expired),
  /// kRejected (preflight failure or saturated queue).
  Status submit(const ActivationRequest& req, RequestId* id = nullptr);

  /// Withdraw a queued request. kNotFound for unknown ids; kDeviceBusy
  /// when it is already active; kInvalidArgument when already terminal.
  Status cancel(RequestId id);

  /// Dispatch the best queued request (highest priority, then tighter
  /// deadline, then FIFO). Returns false when the queue is empty.
  bool step();
  /// step() until the queue drains; returns requests dispatched.
  usize drain();

  usize queue_depth() const;
  bool quarantined(std::string_view module) const;

  const RequestRecord* record(RequestId id) const;
  const std::vector<RequestRecord>& history() const { return records_; }
  const std::vector<HangDiagnosis>& hang_log() const { return hangs_; }
  const Stats& stats() const { return stats_; }

  // ---- ProgressMonitor (installed on the drivers during dispatch) ----
  u64 poll_interval_cycles() const override {
    return cfg_.watchdog_interval_ticks * kCyclesPerClintTick;
  }
  void on_start(u64 expected_beats) override;
  bool on_poll(const TransferProgress& p) override;

 private:
  RequestRecord* find(RequestId id);
  RequestRecord* best_queued();
  void finish(RequestRecord& r, RequestState state, Status status);
  void publish_stats();
  Status preflight(const ActivationRequest& req);
  void trace(obs::EventKind kind, u64 a0, u64 a1 = 0, u64 a2 = 0);

  DprManager& mgr_;
  Config cfg_;
  std::vector<RequestRecord> records_;   // append-only; queue lives here
  std::vector<std::string> quarantine_;
  std::vector<HangDiagnosis> hangs_;
  Stats stats_;
  RequestId next_id_ = 1;
  RequestId active_ = 0;  // request currently dispatched (0 = none)

  // Watchdog state for the in-flight transfer.
  u64 wd_expected_beats_ = 0;
  u32 wd_last_beats_ = 0;
  u32 wd_stalled_polls_ = 0;
  bool wd_tripped_ = false;

  // Observability (bound to the CPU's simulator at construction).
  obs::TraceSink* sink_ = nullptr;
  u16 src_ = 0;
  obs::Histogram* wait_ticks_ = nullptr;    // submit -> dispatch, mtime
  obs::Histogram* active_ticks_ = nullptr;  // dispatch -> terminal, mtime
};

}  // namespace rvcap::driver
