#include "driver/rvcap_driver.hpp"

#include "bitstream/readback.hpp"

#include <algorithm>
#include <vector>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "soc/memory_map.hpp"
#include "soc/perf_regs.hpp"

namespace rvcap::driver {

using rvcap_ctrl::AxiDma;
using rvcap_ctrl::RpControl;

RvCapDriver::RvCapDriver(cpu::CpuContext& cpu, irq::Plic& plic,
                         Addr dma_base, Addr rp_base, Addr plic_base,
                         Addr clint_base, Addr perf_base)
    : cpu_(cpu), plic_(plic), dma_base_(dma_base), rp_base_(rp_base),
      plic_base_(plic_base), perf_base_(perf_base), timer_(cpu, clint_base) {
  // Enable the DMA completion sources at the PLIC (priority 1).
  cpu_.store32_uncached(plic_base_ + irq::Plic::kEnableBase,
                        (1u << soc::IrqMap::kDmaMm2s) |
                            (1u << soc::IrqMap::kDmaS2mm));
}

Status RvCapDriver::init_RModules(std::span<ReconfigModule> modules,
                                  storage::Fat32Volume& volume,
                                  Addr staging_base) {
  cpu_.spend_call_overhead();
  Addr next = staging_base;
  std::vector<u8> chunk(4096);
  for (ReconfigModule& m : modules) {
    u32 size = 0;
    if (auto st = volume.file_size(m.pbit_name, &size); !ok(st)) return st;
    m.pbit_size = size;
    m.start_address = next;
    m.crc32 = 0;
    // Stream SD -> DDR in cluster-sized chunks, accumulating the image
    // CRC so the staged copy can be verified before any ICAP transfer.
    u32 off = 0;
    while (off < size) {
      const u32 n = std::min<u32>(static_cast<u32>(chunk.size()), size - off);
      if (auto st = volume.read_file_range(
              m.pbit_name, off, std::span(chunk).first(n));
          !ok(st)) {
        return st;
      }
      m.crc32 = crc32(std::span<const u8>(chunk).first(n), m.crc32);
      cpu_.write_buffer(m.start_address + off, std::span(chunk).first(n));
      off += n;
    }
    next += (u64{size} + 63) & ~u64{63};  // 64-byte-aligned staging slots
  }
  return Status::kOk;
}

void RvCapDriver::decouple_accel(bool decouple) {
  const u32 cur = cpu_.load32_uncached(rp_base_ + RpControl::kControl);
  const u32 next = decouple ? (cur | RpControl::kCtlDecouple)
                            : (cur & ~RpControl::kCtlDecouple);
  cpu_.store32_uncached(rp_base_ + RpControl::kControl, next);
}

void RvCapDriver::select_ICAP(bool select) {
  const u32 cur = cpu_.load32_uncached(rp_base_ + RpControl::kControl);
  const u32 next = select ? (cur | RpControl::kCtlSelectIcap)
                          : (cur & ~RpControl::kCtlSelectIcap);
  cpu_.store32_uncached(rp_base_ + RpControl::kControl, next);
}

void RvCapDriver::select_decompress(bool enable) {
  const u32 cur = cpu_.load32_uncached(rp_base_ + RpControl::kControl);
  const u32 next = enable ? (cur | RpControl::kCtlDecompress)
                          : (cur & ~RpControl::kCtlDecompress);
  cpu_.store32_uncached(rp_base_ + RpControl::kControl, next);
}

Status RvCapDriver::init_reconfig_process_compressed(const ReconfigModule& m,
                                                     DmaMode mode,
                                                     bool hold_decoupled) {
  const u64 t0 = timer_.read_mtime();
  cpu_.spend_call_overhead();
  cpu_.spend_instructions(kDecisionInstructions);
  decouple_accel(true);
  select_ICAP(true);
  select_decompress(true);
  const u64 t1 = timer_.read_mtime();
  Status st = reconfigure_RP(m.start_address, m.pbit_size, mode);
  // The DMA finishes when the *compressed* stream has been fetched; the
  // decompressor keeps expanding into the ICAP. Wait for the drain
  // before touching any route (the kStDraining status bit).
  if (ok(st)) {
    bool drained = false;
    for (u32 i = 0; i < timeouts_.drain_poll_iters; ++i) {
      if (!(cpu_.load32_uncached(rp_base_ + RpControl::kStatus) &
            RpControl::kStDraining)) {
        drained = true;
        break;
      }
    }
    if (!drained) st = Status::kTimeout;
    // A couple more reads' worth of time lets the AXIS2ICAP/ICAP FIFOs
    // (a handful of words) empty.
    (void)cpu_.load32_uncached(rp_base_ + RpControl::kStatus);
    (void)cpu_.load32_uncached(rp_base_ + RpControl::kStatus);
  }
  const u64 t2 = timer_.read_mtime();
  select_decompress(false);
  select_ICAP(false);
  if (!hold_decoupled) decouple_accel(false);
  timing_.decision_ticks = t1 - t0;
  timing_.reconfig_ticks = t2 - t1;
  return st;
}

Status RvCapDriver::reconfigure_RP(Addr data, u32 pbit_size, DmaMode mode) {
  // dma_start(): set the CR run bit (+ irq enable for non-blocking).
  u32 cr = AxiDma::kCrRunStop;
  if (mode == DmaMode::kInterrupt) cr |= AxiDma::kCrIocIrqEn;
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sCr, cr);
  // dma_write_stream(): source address + length kick off the read.
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSa,
                        static_cast<u32>(data));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSaMsb,
                        static_cast<u32>(data >> 32));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sLength, pbit_size);
  return wait_mm2s_done(mode, pbit_size);
}

TransferProgress RvCapDriver::probe_mm2s() {
  TransferProgress p;
  p.beats = cpu_.load32_uncached(dma_base_ + AxiDma::kMm2sBeats);
  p.status = cpu_.load32_uncached(dma_base_ + AxiDma::kMm2sSr);
  p.rp_status = cpu_.load32_uncached(rp_base_ + RpControl::kStatus);
  p.mtime = timer_.read_mtime();
  return p;
}

Status RvCapDriver::wait_mm2s_done(DmaMode mode, u64 bytes) {
  if (monitor_ != nullptr) monitor_->on_start((bytes + 7) / 8);
  if (mode == DmaMode::kInterrupt) {
    u64 budget = timeouts_.irq_bound(bytes);
    while (true) {
      // With a monitor installed, sleep in watchdog-interval slices and
      // probe progress between them; otherwise one WFI for the bound.
      const u64 slice =
          monitor_ != nullptr
              ? std::min<u64>(budget, monitor_->poll_interval_cycles())
              : budget;
      const u32 src = cpu_.wait_for_irq(
          plic_, plic_base_ + irq::Plic::kClaimComplete, slice);
      if (src != 0) {
        // Acknowledge at the DMA (W1C) and complete at the PLIC.
        const u32 sr = cpu_.load32_uncached(dma_base_ + AxiDma::kMm2sSr);
        cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSr,
                              AxiDma::kSrIocIrq | AxiDma::kSrErrIrq);
        cpu_.complete_irq(plic_base_ + irq::Plic::kClaimComplete, src);
        if (sr & AxiDma::kSrErrMask) return Status::kIoError;
        return Status::kOk;
      }
      budget -= slice;
      if (monitor_ != nullptr && !monitor_->on_poll(probe_mm2s())) {
        return Status::kHang;
      }
      if (budget == 0) return Status::kTimeout;
    }
  }
  // Blocking: poll the status register's IOC bit.
  const u32 bound = timeouts_.mm2s_bound(bytes);
  Cycles next_probe =
      monitor_ != nullptr ? cpu_.now() + monitor_->poll_interval_cycles() : 0;
  for (u32 i = 0; i < bound; ++i) {
    const u32 sr = cpu_.load32_uncached(dma_base_ + AxiDma::kMm2sSr);
    if (sr & AxiDma::kSrErrMask) {
      cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSr, AxiDma::kSrErrIrq);
      return Status::kIoError;
    }
    if (sr & AxiDma::kSrIocIrq) {
      cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSr, AxiDma::kSrIocIrq);
      return Status::kOk;
    }
    if (monitor_ != nullptr && cpu_.now() >= next_probe) {
      if (!monitor_->on_poll(probe_mm2s())) return Status::kHang;
      next_probe = cpu_.now() + monitor_->poll_interval_cycles();
    }
  }
  return Status::kTimeout;
}

Status RvCapDriver::init_reconfig_process(const ReconfigModule& m,
                                          DmaMode mode,
                                          bool hold_decoupled) {
  // ---- decision phase (T_d): select the RM, prepare the fetch ----
  const u64 t0 = timer_.read_mtime();
  cpu_.spend_call_overhead();
  cpu_.spend_instructions(kDecisionInstructions);  // RM-table lookup etc.
  decouple_accel(true);
  select_ICAP(true);
  u32 cr = AxiDma::kCrRunStop;
  if (mode == DmaMode::kInterrupt) cr |= AxiDma::kCrIocIrqEn | AxiDma::kCrErrIrqEn;
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sCr, cr);
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSa,
                        static_cast<u32>(m.start_address));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSaMsb,
                        static_cast<u32>(m.start_address >> 32));
  const u64 t1 = timer_.read_mtime();

  // ---- reconfiguration phase (T_r): transfer begins at LENGTH write.
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sLength, m.pbit_size);
  const Status st = wait_mm2s_done(mode, m.pbit_size);
  const u64 t2 = timer_.read_mtime();

  select_ICAP(false);
  // Recouple the RP (end of Listing 1) — unless the caller is running
  // the verified-activation flow and keeps the RP isolated until the
  // new configuration checks out.
  if (!hold_decoupled) decouple_accel(false);

  timing_.decision_ticks = t1 - t0;
  timing_.reconfig_ticks = t2 - t1;
  return st;
}

void RvCapDriver::dma_reset() {
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sCr, AxiDma::kCrReset);
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmCr, AxiDma::kCrReset);
}

void RvCapDriver::icap_abort() {
  const u32 cur = cpu_.load32_uncached(rp_base_ + RpControl::kControl);
  cpu_.store32_uncached(rp_base_ + RpControl::kControl,
                        cur | RpControl::kCtlIcapAbort);
}

void RvCapDriver::cleanup_after_failure() {
  cpu_.spend_call_overhead();
  dma_reset();
  // Settle window: each status read advances simulated time, letting
  // the reset engine discard read bursts that were still in flight
  // toward the DDR when the transfer died.
  for (int i = 0; i < 16; ++i) {
    (void)cpu_.load32_uncached(dma_base_ + AxiDma::kMm2sSr);
  }
  icap_abort();
}

Status RvCapDriver::run_accelerator(Addr src, u32 in_bytes, Addr dst,
                                    u32 out_bytes, DmaMode mode) {
  cpu_.spend_call_overhead();
  // Acceleration mode: coupled RP, stream switch toward the RM.
  select_ICAP(false);
  decouple_accel(false);
  // S2MM first so the write channel is ready for the RM output.
  u32 cr = AxiDma::kCrRunStop;
  if (mode == DmaMode::kInterrupt) cr |= AxiDma::kCrIocIrqEn;
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmCr, cr);
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmDa, static_cast<u32>(dst));
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmDaMsb,
                        static_cast<u32>(dst >> 32));
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmLength, out_bytes);
  // MM2S feeds the RM.
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSa, static_cast<u32>(src));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSaMsb,
                        static_cast<u32>(src >> 32));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sLength, in_bytes);

  // Completion = S2MM wrote the full output image.
  if (mode == DmaMode::kInterrupt) {
    while (true) {
      const u32 src_id = cpu_.wait_for_irq(
          plic_, plic_base_ + irq::Plic::kClaimComplete);
      if (src_id == 0) return Status::kTimeout;
      if (src_id == soc::IrqMap::kDmaS2mm) {
        cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmSr,
                              AxiDma::kSrIocIrq);
        cpu_.complete_irq(plic_base_ + irq::Plic::kClaimComplete, src_id);
        break;
      }
      cpu_.complete_irq(plic_base_ + irq::Plic::kClaimComplete, src_id);
    }
  } else {
    const u32 bound = timeouts_.s2mm_bound(out_bytes);
    for (u32 i = 0; i < bound; ++i) {
      const u32 sr = cpu_.load32_uncached(dma_base_ + AxiDma::kS2mmSr);
      if (sr & AxiDma::kSrIocIrq) {
        cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmSr,
                              AxiDma::kSrIocIrq);
        break;
      }
    }
  }
  // Clear the MM2S completion flag as well.
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSr, AxiDma::kSrIocIrq);
  return Status::kOk;
}

Status RvCapDriver::wait_s2mm_done(DmaMode mode, u64 bytes) {
  if (mode == DmaMode::kInterrupt) {
    while (true) {
      const u32 src = cpu_.wait_for_irq(plic_, plic_base_ +
                                                  irq::Plic::kClaimComplete,
                                        timeouts_.irq_bound(bytes));
      if (src == 0) return Status::kTimeout;
      const bool s2mm = (src == soc::IrqMap::kDmaS2mm);
      if (s2mm) {
        cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmSr,
                              AxiDma::kSrIocIrq);
      }
      cpu_.complete_irq(plic_base_ + irq::Plic::kClaimComplete, src);
      if (s2mm) return Status::kOk;
    }
  }
  const u32 bound = timeouts_.s2mm_bound(bytes);
  for (u32 i = 0; i < bound; ++i) {
    const u32 sr = cpu_.load32_uncached(dma_base_ + AxiDma::kS2mmSr);
    if (sr & AxiDma::kSrIocIrq) {
      cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmSr, AxiDma::kSrIocIrq);
      return Status::kOk;
    }
  }
  return Status::kTimeout;
}

Status RvCapDriver::readback(const fabric::FrameAddr& start, u32 words,
                             Addr cmd_staging, Addr dst, DmaMode mode,
                             bool hold_decoupled) {
  if (words == 0 || words % 2 != 0) return Status::kInvalidArgument;
  cpu_.spend_call_overhead();

  // Stage the command sequence in DDR.
  const std::vector<u8> cmd = bitstream::build_readback_bytes(start, words);
  cpu_.write_buffer(cmd_staging, cmd);

  decouple_accel(true);
  select_ICAP(true);

  // S2MM first: capture `words` FDRO words.
  u32 cr = AxiDma::kCrRunStop;
  if (mode == DmaMode::kInterrupt) cr |= AxiDma::kCrIocIrqEn;
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmCr, cr);
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmDa, static_cast<u32>(dst));
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmDaMsb,
                        static_cast<u32>(dst >> 32));
  cpu_.store32_uncached(dma_base_ + AxiDma::kS2mmLength, words * 4);
  // MM2S streams the command sequence into the port.
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sCr, AxiDma::kCrRunStop);
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSa,
                        static_cast<u32>(cmd_staging));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSaMsb,
                        static_cast<u32>(cmd_staging >> 32));
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sLength,
                        static_cast<u32>(cmd.size()));

  const Status st = wait_s2mm_done(mode, u64{words} * 4);
  cpu_.store32_uncached(dma_base_ + AxiDma::kMm2sSr, AxiDma::kSrIocIrq);
  select_ICAP(false);
  if (!hold_decoupled) decouple_accel(false);
  return st;
}

Status RvCapDriver::write_frame(const fabric::FrameAddr& fa,
                                std::span<const u32> words, Addr cmd_staging,
                                DmaMode mode, bool hold_decoupled) {
  if (words.size() != fabric::kFrameWords) return Status::kInvalidArgument;
  cpu_.spend_call_overhead();

  const std::vector<u8> cmd = bitstream::build_frame_write_bytes(fa, words);
  cpu_.write_buffer(cmd_staging, cmd);

  decouple_accel(true);
  select_ICAP(true);
  const Status st =
      reconfigure_RP(cmd_staging, static_cast<u32>(cmd.size()), mode);
  select_ICAP(false);
  if (!hold_decoupled) decouple_accel(false);
  return st;
}

Status RvCapDriver::readback_partition(const fabric::DeviceGeometry& dev,
                                       const fabric::Partition& part,
                                       Addr cmd_staging, Addr dst,
                                       u32* words_read, DmaMode mode,
                                       bool hold_decoupled) {
  *words_read = 0;
  const auto& cols = part.columns();
  usize i = 0;
  while (i < cols.size()) {
    usize j = i + 1;
    u32 frames = dev.frames_in_column(cols[i].column);
    while (j < cols.size() && cols[j].row == cols[j - 1].row &&
           cols[j].column == cols[j - 1].column + 1) {
      frames += dev.frames_in_column(cols[j].column);
      ++j;
    }
    const u32 words = frames * fabric::kFrameWords;
    const fabric::FrameAddr start{cols[i].row, cols[i].column, 0};
    if (auto st = readback(start, words, cmd_staging,
                           dst + u64{*words_read} * 4, mode, hold_decoupled);
        !ok(st)) {
      return st;
    }
    *words_read += words;
    i = j;
  }
  return Status::kOk;
}

void RvCapDriver::rm_reg_write(u32 index, u32 value) {
  cpu_.store32_uncached(rp_base_ + RpControl::kRmRegBase + 4 * index, value);
}

u32 RvCapDriver::rm_reg_read(u32 index) {
  return cpu_.load32_uncached(rp_base_ + RpControl::kRmRegBase + 4 * index);
}

void RvCapDriver::perf_select(u32 index) {
  cpu_.store32_uncached(perf_base_ + soc::PerfRegs::kSelect, index);
}

u64 RvCapDriver::perf_read() {
  // LO latches the full 64-bit value; HI returns the latched half, so
  // the pair is tear-free even while the counter keeps moving.
  const u32 lo = cpu_.load32_uncached(perf_base_ + soc::PerfRegs::kValueLo);
  const u32 hi = cpu_.load32_uncached(perf_base_ + soc::PerfRegs::kValueHi);
  return (u64{hi} << 32) | lo;
}

u32 RvCapDriver::perf_count() {
  return cpu_.load32_uncached(perf_base_ + soc::PerfRegs::kCount);
}

}  // namespace rvcap::driver
