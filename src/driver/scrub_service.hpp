// Continuous frame-ECC scrub engine — background SEU mitigation.
//
// Where the one-shot Scrubber (scrubber.hpp) answers "is this
// partition still the one I loaded?", the ScrubService keeps a SoC
// alive under a continuous upset process: it walks every watched
// partition frame by frame at a configurable duty cycle, reads each
// frame back through the ICAP, computes the SECDED syndrome in
// software over the captured buffer and compares it with the golden
// check word the fabric recorded at configuration time
// (fabric/frame_ecc.hpp — the FRAME_ECC primitive's view).
//
// Verdict handling per frame:
//   clean          -> next frame;
//   correctable    -> the syndrome localizes the flipped bit: rewrite
//                     ONLY the affected frame (driver write_frame — a
//                     minimal WCFG pass), then re-read and verify the
//                     syndrome is clean before counting the repair;
//   uncorrectable  -> multi-bit damage (or a failed rewrite, or damage
//                     in the manifest-carrying base frame): fall back
//                     to a full-partition reload, submitted as a
//                     background client of the ReconfigService queue
//                     so admission control, watchdog and recovery all
//                     apply to the repair path too.
//
// The service is a polite background citizen: before every frame it
// yields — any request already queued on the ReconfigService (user
// reconfigurations outrank background repair) is dispatched first. A
// completed pass raises the PLIC scrub-complete interrupt; transport
// errors and failed repairs raise scrub-error. Both are level lines
// the supervisor lowers via ack_irqs().
//
// MTTD/MTTR accounting rides the ConfigMemory upset-observer feed
// (ground-truth injection times), and every counter is mirrored into
// the soc::ServiceRegs MMIO block after each pass, so an external
// supervisor can watch configuration-memory health over the bus.
#pragma once

#include <string>
#include <vector>

#include "driver/reconfig_service.hpp"
#include "driver/rvcap_driver.hpp"
#include "fabric/config_memory.hpp"
#include "irq/plic.hpp"
#include "obs/observability.hpp"

namespace rvcap::driver {

class ScrubService {
 public:
  /// client_id the service stamps on its reload requests.
  static constexpr u32 kClientId = 0xC5;

  struct Config {
    Addr cmd_staging = 0;       // scratch DDR for command sequences
    Addr rb_buffer = 0;         // DDR buffer readbacks land in
    u32 frames_per_slice = 8;   // duty cycle: frames scrubbed per step()
    u32 reload_priority = 0;    // priority of escalated reload requests
    DmaMode mode = DmaMode::kInterrupt;
    bool verify_rewrite = true; // re-read a rewritten frame before
                                // counting the repair
    Addr mailbox_base = 0;      // soc::ServiceRegs base; 0 = disabled
  };

  /// A partition under scrub. `module` names the DprManager module to
  /// reload on uncorrectable damage; empty = no reload source (the
  /// service can still detect and rewrite single-bit upsets).
  struct Watch {
    usize handle = 0;
    std::string module;
  };

  enum class Action : u8 {
    kRewrite,         // single-frame rewrite, verified clean
    kRewriteFailed,   // rewrite or its verify failed; reload follows
    kReload,          // full-partition reload escalation
    kTransportError,  // readback path failed
  };

  /// Repair journal — one entry per non-clean frame verdict, in scrub
  /// order. Plain data so dual-kernel equivalence can compare runs.
  struct JournalEntry {
    u64 at = 0;   // core cycles
    u32 far = 0;  // FrameAddr::encode()
    u8 cls = 0;   // fabric::EccClass
    u8 action = 0;  // Action
    u16 word = 0;
    u8 bit = 0;
    bool essential = false;

    bool operator==(const JournalEntry&) const = default;
  };

  struct Stats {
    u64 passes = 0;            // completed partition traversals
    u64 frames_scrubbed = 0;
    u64 detections = 0;        // frames with a non-clean syndrome
    u64 correctable = 0;
    u64 uncorrectable = 0;
    u64 essential = 0;         // correctable upsets in the essential mask
    u64 benign = 0;
    u64 frame_rewrites = 0;    // verified single-frame repairs
    u64 partition_reloads = 0; // escalations to the ReconfigService
    u64 rewrite_verify_failures = 0;
    u64 reload_failures = 0;
    u64 transport_errors = 0;
    u64 yields = 0;            // foreground requests dispatched first
    u64 done_irqs = 0;
    u64 error_irqs = 0;
    // ---- ground-truth upset accounting (observer feed) ----
    u64 upsets_seen = 0;
    u64 upsets_detected = 0;
    u64 upsets_repaired = 0;
    u64 upsets_self_cancelled = 0;  // same bit hit twice, cancelled out
    u64 mttd_cycles_total = 0;
    u64 mttr_cycles_total = 0;
    u64 last_pass_frames_per_sec = 0;
  };

  ScrubService(RvCapDriver& drv, fabric::ConfigMemory& mem,
               ReconfigService& svc, const Config& cfg);

  /// Add a partition to the scrub rotation.
  void watch_partition(usize handle, std::string module = {});

  /// Connect the scrub-complete / scrub-error PLIC lines.
  void set_irqs(irq::IrqLine done, irq::IrqLine error);
  /// Lower both interrupt lines (supervisor ack after claim/complete).
  void ack_irqs();

  /// Register this service as the ConfigMemory upset observer so every
  /// landed injection is timestamped for MTTD/MTTR.
  void install_upset_feed();
  /// Manual feed variant (tests chaining their own observer).
  void note_upset(const fabric::ConfigMemory::UpsetEvent& ev,
                  u64 now_cycles);

  /// Scrub one duty-cycle slice (frames_per_slice frames), yielding to
  /// queued reconfiguration requests between frames. Errors raise the
  /// scrub-error IRQ and return the transport/repair status.
  Status step();
  /// step() until one full pass over every watched partition finishes.
  Status scrub_pass();

  const Stats& stats() const { return stats_; }
  const std::vector<JournalEntry>& journal() const { return journal_; }

  /// Injected-and-unrepaired upsets the service knows about.
  u64 pending_upsets() const { return pending_.size(); }
  u64 pending_essential() const;
  /// Age (core cycles) of the oldest unrepaired upset; 0 when none.
  u64 max_pending_age(u64 now_cycles) const;

  double mean_mttd_cycles() const {
    return stats_.upsets_detected == 0
               ? 0.0
               : static_cast<double>(stats_.mttd_cycles_total) /
                     static_cast<double>(stats_.upsets_detected);
  }
  double mean_mttr_cycles() const {
    return stats_.upsets_repaired == 0
               ? 0.0
               : static_cast<double>(stats_.mttr_cycles_total) /
                     static_cast<double>(stats_.upsets_repaired);
  }

 private:
  struct PendingUpset {
    u32 far = 0;
    u64 injected_at = 0;
    u64 detected_at = 0;  // 0 = not yet observed by a scrub read
    bool essential = false;
  };

  u64 now() { return drv_.cpu_context().now(); }
  Status read_frame(const fabric::FrameAddr& fa, std::vector<u32>* out);
  Status scrub_frame(const Watch& w);
  Status escalate_reload(const Watch& w);
  void yield_to_queue();
  void finish_pass();
  void raise_done();
  void raise_error();
  void record(u64 at, const fabric::FrameAddr& fa, fabric::EccClass cls,
              Action action, u32 word, u32 bit, bool essential);
  void trace(obs::EventKind kind, u64 a0, u64 a1 = 0, u64 a2 = 0);
  void mark_detected(u32 far, u64 t);
  void resolve_repaired(u32 far, u64 t);
  void resolve_partition(usize handle, u64 t);
  void resolve_clean(u32 far, u64 t);
  void publish_stats();

  RvCapDriver& drv_;
  fabric::ConfigMemory& mem_;
  ReconfigService& svc_;
  Config cfg_;
  std::vector<Watch> watches_;
  std::vector<std::vector<fabric::FrameAddr>> addrs_;  // per watch
  std::vector<PendingUpset> pending_;
  std::vector<JournalEntry> journal_;
  Stats stats_;
  irq::IrqLine irq_done_;
  irq::IrqLine irq_error_;
  usize cur_watch_ = 0;
  usize cur_frame_ = 0;
  u64 pass_start_ = 0;  // cycle the current pass began

  // Observability (bound to the CPU's simulator at construction).
  obs::TraceSink* sink_ = nullptr;
  u16 src_ = 0;
  obs::Histogram* mttd_cycles_ = nullptr;  // inject -> syndrome hit
  obs::Histogram* mttr_cycles_ = nullptr;  // inject -> fabric clean
};

}  // namespace rvcap::driver
