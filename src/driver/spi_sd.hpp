// SPI + SD-card driver running on the CPU model (§III-A).
//
// Byte-level SD SPI protocol over the memory-mapped SPI controller:
// card init (CMD0/CMD8/ACMD41/CMD58), single-block read/write with CRC
// verification. Every register access is a timed uncached MMIO access,
// so loading a bitstream from the SD card costs realistic simulated
// time (which is why the paper stages bitstreams in DDR before
// measuring T_r).
#pragma once

#include "common/retry.hpp"
#include "common/status.hpp"
#include "cpu/cpu.hpp"
#include "soc/memory_map.hpp"
#include "storage/block_io.hpp"

namespace rvcap::driver {

class SpiSdDriver {
 public:
  explicit SpiSdDriver(cpu::CpuContext& cpu,
                       Addr spi_base = soc::MemoryMap::kSpi.base)
      : cpu_(cpu), base_(spi_base) {}

  /// Power-on initialization; must succeed before block I/O.
  Status init_card();
  bool initialized() const { return initialized_; }

  /// Single-block read with bounded retry: transient token timeouts and
  /// CRC mismatches are re-issued up to `read_retries()` times before
  /// the error escapes to the caller.
  Status read_block(u32 lba, std::span<u8> buf);
  Status write_block(u32 lba, std::span<const u8> buf);

  /// Extra attempts after a failed read (0 = fail fast).
  void set_read_retries(u32 n) { retry_policy_.max_attempts = n + 1; }
  u32 read_retries() const {
    return retry_policy_.max_attempts > 0 ? retry_policy_.max_attempts - 1
                                          : 0;
  }
  /// Full control over the shared retry discipline (common/retry.hpp);
  /// the default keeps the classic tight re-issue loop (no backoff).
  void set_retry_policy(const RetryPolicy& p) { retry_policy_ = p; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Reads that only succeeded after at least one retry.
  u64 reads_recovered() const { return reads_recovered_; }

  /// One full-duplex SPI byte (exposed for tests).
  u8 spi_xfer(u8 mosi);

 private:
  void select(bool on);
  /// Send a command frame; returns the R1 byte (0xFF on timeout).
  u8 command(u8 cmd, u32 arg);
  Status read_block_once(u32 lba, std::span<u8> buf);

  cpu::CpuContext& cpu_;
  Addr base_;
  bool initialized_ = false;
  RetryPolicy retry_policy_{/*max_attempts=*/3};  // 1 try + 2 retries
  u64 reads_recovered_ = 0;
};

/// BlockIo binding over the timed SPI/SD driver: lets the from-scratch
/// FAT32 run unmodified on the simulated CPU.
class CpuBlockIo final : public storage::BlockIo {
 public:
  CpuBlockIo(SpiSdDriver& sd, u32 block_count)
      : sd_(sd), blocks_(block_count) {}

  Status read(u32 lba, std::span<u8> buf) override {
    return sd_.read_block(lba, buf);
  }
  Status write(u32 lba, std::span<const u8> buf) override {
    return sd_.write_block(lba, buf);
  }
  u32 block_count() const override { return blocks_; }

 private:
  SpiSdDriver& sd_;
  u32 blocks_;
};

}  // namespace rvcap::driver
