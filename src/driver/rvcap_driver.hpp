// RV-CAP driver APIs — Listing 1 of the paper, with CLINT-timed
// decision (T_d) and reconfiguration (T_r) phases.
#pragma once

#include <span>
#include <vector>

#include "cpu/cpu.hpp"
#include "driver/progress.hpp"
#include "driver/reconfig_module.hpp"
#include "driver/timer.hpp"
#include "fabric/geometry.hpp"
#include "irq/plic.hpp"
#include "rvcap/dma.hpp"
#include "rvcap/rp_control.hpp"
#include "soc/memory_map.hpp"
#include "storage/fat32.hpp"

namespace rvcap::driver {

class RvCapDriver {
 public:
  struct Timing {
    u64 decision_ticks = 0;  // T_d in CLINT (5 MHz) ticks
    u64 reconfig_ticks = 0;  // T_r in CLINT ticks
    double decision_us() const { return TimerDriver::ticks_to_us(decision_ticks); }
    double reconfig_us() const { return TimerDriver::ticks_to_us(reconfig_ticks); }
  };

  /// Poll/wait bounds for every blocking loop in the driver. The
  /// per-transfer bounds default to 0 = "derive from the transfer
  /// size": expected beats x a slack factor plus a fixed floor, so a
  /// 4 KiB blanking pass times out orders of magnitude sooner than a
  /// 650 KiB RM image instead of sharing one multi-million-iteration
  /// ceiling. A non-zero field overrides the derivation (tests shrink
  /// them so timeout paths complete in milliseconds).
  struct Timeouts {
    u32 mm2s_poll_iters = 0;           // MM2S completion poll (blocking)
    u32 s2mm_poll_iters = 0;           // S2MM completion poll (blocking)
    u32 drain_poll_iters = 4'000'000;  // decompressor drain poll
    u64 irq_wait_cycles = 0;           // WFI bound (interrupt mode)

    // Size-derivation slack model (beats = 64-bit bus beats). Each
    // blocking poll iteration costs a full uncached-read round trip —
    // many core cycles — while the engine moves about a beat per
    // cycle, so even a few iterations per beat is generous.
    u32 poll_iters_floor = 20'000;     // MM2S floor (setup, DDR warmup)
    u32 mm2s_iters_per_beat = 8;
    u32 s2mm_iters_per_beat = 64;      // readback trickles out of FDRO
    u64 irq_cycles_floor = 4'000'000;  // WFI floor (interrupt mode)
    u64 irq_cycles_per_beat = 512;

    u32 mm2s_bound(u64 bytes) const {
      if (mm2s_poll_iters != 0) return mm2s_poll_iters;
      return saturate32(poll_iters_floor + beats(bytes) * mm2s_iters_per_beat);
    }
    u32 s2mm_bound(u64 bytes) const {
      if (s2mm_poll_iters != 0) return s2mm_poll_iters;
      return saturate32(poll_iters_floor + beats(bytes) * s2mm_iters_per_beat);
    }
    u64 irq_bound(u64 bytes) const {
      if (irq_wait_cycles != 0) return irq_wait_cycles;
      return irq_cycles_floor + beats(bytes) * irq_cycles_per_beat;
    }

   private:
    static u64 beats(u64 bytes) { return (bytes + 7) / 8; }
    static u32 saturate32(u64 v) {
      return v > 0xFFFF'FFFFull ? 0xFFFF'FFFFu : static_cast<u32>(v);
    }
  };

  void set_timeouts(const Timeouts& t) { timeouts_ = t; }
  const Timeouts& timeouts() const { return timeouts_; }

  RvCapDriver(cpu::CpuContext& cpu, irq::Plic& plic,
              Addr dma_base = soc::MemoryMap::kDmaCtrl.base,
              Addr rp_base = soc::MemoryMap::kRpCtrl.base,
              Addr plic_base = soc::MemoryMap::kPlic.base,
              Addr clint_base = soc::MemoryMap::kClint.base,
              Addr perf_base = soc::MemoryMap::kPerfRegs.base);

  /// Step 1 (Listing 1): read each module's pbit size from the FAT32
  /// volume and load the bitstream from the SD card to its DDR staging
  /// address. Fills start_address/pbit_size of each descriptor.
  Status init_RModules(std::span<ReconfigModule> modules,
                       storage::Fat32Volume& volume,
                       Addr staging_base = soc::MemoryMap::kPbitStagingBase);

  /// Full Listing-1 reconfiguration: decouple -> select ICAP ->
  /// reconfigure_RP -> recouple, measuring T_d and T_r via the CLINT.
  /// `hold_decoupled` skips the final recouple: the safe-DPR recovery
  /// flow keeps the RP isolated until the configuration is verified.
  Status init_reconfig_process(const ReconfigModule& m, DmaMode mode,
                               bool hold_decoupled = false);

  /// Individual steps (exposed for tests and ablations).
  void decouple_accel(bool decouple);
  void select_ICAP(bool select);
  void select_decompress(bool enable);
  Status reconfigure_RP(Addr data, u32 pbit_size, DmaMode mode);

  /// Listing-1 flow for an RVZ0-compressed bitstream (RT-ICAP-style
  /// extension): enables the inline decompressor for the transfer.
  /// `m.pbit_size` is the COMPRESSED byte count.
  Status init_reconfig_process_compressed(const ReconfigModule& m,
                                          DmaMode mode,
                                          bool hold_decoupled = false);

  // ---- failure cleanup (the recovery state machine's ops) ----
  /// Soft-reset both DMA channels, dropping any wedged or errored job.
  void dma_reset();
  /// Pulse the RP-control abort bit: flush the stream datapath and
  /// desync the ICAP.
  void icap_abort();
  /// Full cleanup after a failed transfer: DMA reset, a settle window
  /// that drains in-flight DDR read beats, then the datapath abort.
  /// Leaves decouple/select_ICAP routing bits untouched.
  void cleanup_after_failure();

  /// Acceleration mode: stream `in_bytes` from `src` through the RM and
  /// write `out_bytes` back to `dst` (Fig. 2 datapath, select_ICAP=0).
  Status run_accelerator(Addr src, u32 in_bytes, Addr dst, u32 out_bytes,
                         DmaMode mode);

  /// Configuration-memory readback (§III-C: the ICAP path also reads):
  /// stream a readback command sequence via MM2S, capture `words` FDRO
  /// words via S2MM into `dst`. `words` must be even (the ICAP2AXIS
  /// block packs word pairs into 64-bit beats).
  Status readback(const fabric::FrameAddr& start, u32 words,
                  Addr cmd_staging, Addr dst,
                  DmaMode mode = DmaMode::kInterrupt,
                  bool hold_decoupled = false);

  /// Single-frame rewrite (scrub repair): stream a minimal WCFG pass
  /// writing `words` (exactly one frame) at `fa` — no RCRC, no CRC
  /// check, so a repair cannot invalidate an unrelated pass. Wraps the
  /// transfer in the usual decouple/select_ICAP routing.
  Status write_frame(const fabric::FrameAddr& fa, std::span<const u32> words,
                     Addr cmd_staging, DmaMode mode = DmaMode::kInterrupt,
                     bool hold_decoupled = false);

  /// Read back every frame of a partition (one pass per contiguous
  /// column range); on return *words_read holds the total word count
  /// landed at `dst`. The basis of safe-DPR verification flows.
  Status readback_partition(const fabric::DeviceGeometry& dev,
                            const fabric::Partition& part, Addr cmd_staging,
                            Addr dst, u32* words_read,
                            DmaMode mode = DmaMode::kInterrupt,
                            bool hold_decoupled = false);

  /// Snapshot the in-flight MM2S transfer: beat counter, status
  /// register, RP-control status, CLINT timestamp. Three uncached reads
  /// plus the mtime dance — cheap enough to poll from a watchdog.
  TransferProgress probe_mm2s();

  /// Install a ProgressMonitor observing (and possibly aborting) every
  /// MM2S wait; nullptr detaches. The monitor is called from inside
  /// wait loops, so it must not start transfers itself.
  void set_progress_monitor(ProgressMonitor* m) { monitor_ = m; }
  ProgressMonitor* progress_monitor() const { return monitor_; }

  /// Write an RM control register through the RP control interface.
  void rm_reg_write(u32 index, u32 value);
  u32 rm_reg_read(u32 index);

  const Timing& last_timing() const { return timing_; }

  /// Current CLINT mtime (exposed so services can timestamp events).
  u64 mtime() { return timer_.read_mtime(); }

  // ---- PerfRegs window (soc::PerfRegs MMIO; firmware-style access) ----
  /// Select the counter index the next perf_read() returns. Indices
  /// wrap modulo perf_count(), so a free-running scan is safe.
  void perf_select(u32 index);
  /// Read the selected counter's latched 64-bit value (LO then HI).
  u64 perf_read();
  /// Number of counters registered behind the window.
  u32 perf_count();

  /// The CPU context driver services run on (scrubber, manager).
  cpu::CpuContext& cpu_context() { return cpu_; }

  /// Calibrated software cost of the RM-selection phase (descriptor
  /// lookup, FAT32 metadata checks, API entry) in instruction bundles;
  /// together with the six MMIO accesses of the decision phase this
  /// reproduces the paper's T_d = 18 us.
  static constexpr u64 kDecisionInstructions = 1350;

 private:
  Status wait_mm2s_done(DmaMode mode, u64 bytes);
  Status wait_s2mm_done(DmaMode mode, u64 bytes);

  cpu::CpuContext& cpu_;
  irq::Plic& plic_;
  Addr dma_base_;
  Addr rp_base_;
  Addr plic_base_;
  Addr perf_base_;
  TimerDriver timer_;
  Timing timing_;
  Timeouts timeouts_;
  ProgressMonitor* monitor_ = nullptr;
};

}  // namespace rvcap::driver
