#include "driver/scrubber.hpp"

#include "bitstream/packets.hpp"
#include "common/bytes.hpp"

namespace rvcap::driver {

Status Scrubber::checksum_partition(const fabric::Partition& part,
                                    u32* crc_out, u32* words_out) {
  u32 words = 0;
  if (auto st = drv_.readback_partition(dev_, part, cfg_.cmd_staging,
                                        cfg_.rb_buffer, &words,
                                        DmaMode::kInterrupt, hold_decoupled_);
      !ok(st)) {
    return st;
  }
  // Software checksum over the captured buffer (cached burst reads +
  // one ALU bundle per word).
  bitstream::ConfigCrc crc;
  std::vector<u8> chunk(4096);
  cpu::CpuContext& cpu = drv_.cpu_context();
  u32 done = 0;
  while (done < words) {
    const u32 n = std::min<u32>(static_cast<u32>(chunk.size() / 4),
                                words - done);
    cpu.read_buffer(cfg_.rb_buffer + u64{done} * 4,
                    std::span(chunk).first(usize{n} * 4));
    for (u32 k = 0; k < n; ++k) {
      crc.update(0, load_be32(std::span<const u8>(chunk).subspan(
                        usize{k} * 4, 4)));
    }
    cpu.spend_instructions(n);  // the checksum loop itself
    done += n;
  }
  *crc_out = crc.value();
  *words_out = words;
  return Status::kOk;
}

Status Scrubber::snapshot(const fabric::Partition& part) {
  u32 crc = 0, words = 0;
  if (auto st = checksum_partition(part, &crc, &words); !ok(st)) return st;
  golden_crc_ = crc;
  has_golden_ = true;
  return Status::kOk;
}

Status Scrubber::scrub(const fabric::Partition& part, bool* clean) {
  if (!has_golden_) return Status::kInternal;
  u32 crc = 0, words = 0;
  if (auto st = checksum_partition(part, &crc, &words); !ok(st)) return st;
  ++stats_.scrubs;
  stats_.words_scrubbed += words;
  const bool is_clean = (crc == golden_crc_);
  if (clean != nullptr) *clean = is_clean;
  if (!is_clean) {
    ++stats_.detections;
    return Status::kCrcError;
  }
  return Status::kOk;
}

Status Scrubber::scrub_and_repair(const fabric::Partition& part,
                                  const ReconfigModule& module,
                                  DmaMode mode) {
  bool clean = true;
  const Status st = scrub(part, &clean);
  if (ok(st) && clean) return Status::kOk;
  if (st != Status::kCrcError) return st;

  // Full-partition repair: reload the module's bitstream.
  if (auto rs = drv_.init_reconfig_process(module, mode); !ok(rs)) return rs;
  // Verify the reload actually restored the golden contents before
  // counting the repair. The EXISTING snapshot stays authoritative: if
  // the reload itself was corrupted (a CRC error mid-transfer leaves
  // the partition invalidated, or an upset landed during the pass),
  // re-snapshotting here would record the damaged image as golden and
  // every later scrub would silently compare against corruption.
  if (auto vs = scrub(part, &clean); !ok(vs)) return vs;
  if (!clean) return Status::kCrcError;
  ++stats_.repairs;
  return Status::kOk;
}

}  // namespace rvcap::driver
