// Transfer-progress probing shared by the reconfiguration drivers.
//
// A wedged engine and a slow engine look identical to a timeout: both
// just have not finished yet. The probe disambiguates them — each wait
// loop periodically snapshots the engine's progress counter and status
// registers and hands the snapshot to an installed ProgressMonitor.
// A monitor that sees the counter freeze across consecutive polls can
// declare a hang (the wait returns Status::kHang immediately, long
// before the size-derived timeout would) and diagnose it from the last
// snapshot; a monitor that sees progress lets the wait continue.
#pragma once

#include "common/types.hpp"

namespace rvcap::driver {

/// Register snapshot of an in-flight transfer, taken mid-wait. Field
/// meaning depends on the path: RV-CAP DMA (beats = MM2S beat counter,
/// status = MM2S SR) or AXI_HWICAP (beats = keyhole words written,
/// status = HWICAP SR).
struct TransferProgress {
  u64 mtime = 0;      // CLINT timestamp of the snapshot
  u32 beats = 0;      // engine progress counter
  u32 status = 0;     // engine status register
  u32 rp_status = 0;  // RP-control status bits (0 for HWICAP probes)
};

/// Installed into a driver to observe (and possibly abort) its waits.
/// Drivers call on_start() when a wait begins and on_poll() roughly
/// every poll_interval_cycles() of simulated time during the wait.
class ProgressMonitor {
 public:
  virtual ~ProgressMonitor() = default;

  /// Simulated core cycles between on_poll() callbacks.
  virtual u64 poll_interval_cycles() const = 0;

  /// A new wait begins for a transfer of `expected_beats` total beats
  /// (progress-counter units). Resets any stall tracking.
  virtual void on_start(u64 expected_beats) = 0;

  /// Mid-wait snapshot. Return false to abort the wait: the driver
  /// stops waiting and returns Status::kHang to its caller.
  virtual bool on_poll(const TransferProgress& p) = 0;
};

}  // namespace rvcap::driver
