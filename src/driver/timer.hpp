// Software timer module over the CLINT real-time counter (§III-A).
//
// "A set of software timer modules is created to access the local
// interrupt controller (CLINT) of the SoC core and use it as a
// real-time counter to measure the reconfiguration time." All paper
// measurements are mtime deltas at 5 MHz (200 ns resolution).
#pragma once

#include "cpu/cpu.hpp"
#include "irq/clint.hpp"
#include "soc/memory_map.hpp"

namespace rvcap::driver {

class TimerDriver {
 public:
  explicit TimerDriver(cpu::CpuContext& cpu,
                       Addr clint_base = soc::MemoryMap::kClint.base)
      : cpu_(cpu), base_(clint_base) {}

  /// Read the 64-bit mtime with the hi/lo/hi consistency dance a
  /// 32-bit-access driver needs.
  u64 read_mtime() {
    while (true) {
      const u32 hi0 = cpu_.load32_uncached(base_ + irq::Clint::kMtimeHi);
      const u32 lo = cpu_.load32_uncached(base_ + irq::Clint::kMtimeLo);
      const u32 hi1 = cpu_.load32_uncached(base_ + irq::Clint::kMtimeHi);
      if (hi0 == hi1) return (u64{hi0} << 32) | lo;
    }
  }

  static double ticks_to_us(u64 ticks) {
    return static_cast<double>(ticks) * 1e6 /
           static_cast<double>(kClintClockHz);
  }

 private:
  cpu::CpuContext& cpu_;
  Addr base_;
};

}  // namespace rvcap::driver
