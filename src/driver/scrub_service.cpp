#include "driver/scrub_service.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/units.hpp"
#include "soc/service_regs.hpp"

namespace rvcap::driver {

using fabric::EccClass;
using fabric::FrameAddr;
using fabric::kFrameWords;

ScrubService::ScrubService(RvCapDriver& drv, fabric::ConfigMemory& mem,
                           ReconfigService& svc, const Config& cfg)
    : drv_(drv), mem_(mem), svc_(svc), cfg_(cfg) {
  if (cfg_.frames_per_slice == 0) cfg_.frames_per_slice = 1;
  obs::Observability& o = drv_.cpu_context().simulator().obs();
  sink_ = &o.sink();
  src_ = sink_->intern("scrub_service");
  obs::CounterRegistry& c = o.counters();
  c.register_fn("scrub.passes", [this] { return stats_.passes; });
  c.register_fn("scrub.frames", [this] { return stats_.frames_scrubbed; });
  c.register_fn("scrub.detections", [this] { return stats_.detections; });
  c.register_fn("scrub.rewrites", [this] { return stats_.frame_rewrites; });
  c.register_fn("scrub.reloads", [this] { return stats_.partition_reloads; });
  c.register_fn("scrub.pending", [this] { return pending_upsets(); });
  mttd_cycles_ = c.histogram("scrub.mttd_cycles");
  mttr_cycles_ = c.histogram("scrub.mttr_cycles");
}

void ScrubService::trace(obs::EventKind kind, u64 a0, u64 a1, u64 a2) {
  RVCAP_TRACE(sink_, kind, src_, drv_.cpu_context().now(), a0, a1, a2);
}

void ScrubService::watch_partition(usize handle, std::string module) {
  watches_.push_back({handle, std::move(module)});
  addrs_.push_back(mem_.partition(handle).frame_addrs(mem_.device()));
}

void ScrubService::set_irqs(irq::IrqLine done, irq::IrqLine error) {
  irq_done_ = done;
  irq_error_ = error;
}

void ScrubService::ack_irqs() {
  irq_done_.set(false);
  irq_error_.set(false);
}

void ScrubService::install_upset_feed() {
  // now() is a pure read of the simulated clock — safe from inside a
  // ConfigMemory notification (no bus access, no time advance).
  mem_.set_upset_observer([this](const fabric::ConfigMemory::UpsetEvent& ev) {
    note_upset(ev, drv_.cpu_context().now());
  });
}

void ScrubService::note_upset(const fabric::ConfigMemory::UpsetEvent& ev,
                              u64 now_cycles) {
  ++stats_.upsets_seen;
  // Upsets on frames outside any loaded partition are still scrubbed
  // (the frame was written at some point), so track every landed one.
  pending_.push_back({ev.fa.encode(), now_cycles, 0, ev.essential});
  trace(obs::EventKind::kScrubUpset, ev.fa.encode(),
        (u64{ev.word} << 8) | ev.bit);
}

u64 ScrubService::pending_essential() const {
  u64 n = 0;
  for (const PendingUpset& p : pending_) n += p.essential ? 1 : 0;
  return n;
}

u64 ScrubService::max_pending_age(u64 now_cycles) const {
  u64 age = 0;
  for (const PendingUpset& p : pending_) {
    if (now_cycles > p.injected_at) age = std::max(age, now_cycles - p.injected_at);
  }
  return age;
}

void ScrubService::mark_detected(u32 far, u64 t) {
  for (PendingUpset& p : pending_) {
    if (p.far == far && p.detected_at == 0) {
      p.detected_at = t;
      ++stats_.upsets_detected;
      stats_.mttd_cycles_total += t - p.injected_at;
      if (mttd_cycles_ != nullptr) mttd_cycles_->record(t - p.injected_at);
    }
  }
}

void ScrubService::resolve_repaired(u32 far, u64 t) {
  // Only upsets whose flip is actually gone from the fabric count as
  // repaired — one landing between the verify read and now stays
  // pending for the next pass.
  if (mem_.outstanding_flips(FrameAddr::decode(far)) != 0) return;
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->far != far) {
      ++it;
      continue;
    }
    if (it->detected_at == 0) {
      it->detected_at = t;
      ++stats_.upsets_detected;
      stats_.mttd_cycles_total += t - it->injected_at;
      if (mttd_cycles_ != nullptr) mttd_cycles_->record(t - it->injected_at);
    }
    ++stats_.upsets_repaired;
    stats_.mttr_cycles_total += t - it->injected_at;
    if (mttr_cycles_ != nullptr) mttr_cycles_->record(t - it->injected_at);
    it = pending_.erase(it);
  }
}

void ScrubService::resolve_partition(usize handle, u64 t) {
  const fabric::Partition& part = mem_.partition(handle);
  const fabric::DeviceGeometry& dev = mem_.device();
  auto it = pending_.begin();
  while (it != pending_.end()) {
    const FrameAddr fa = FrameAddr::decode(it->far);
    if (!part.contains(dev, fa) || mem_.outstanding_flips(fa) != 0) {
      ++it;
      continue;
    }
    if (it->detected_at == 0) {
      it->detected_at = t;
      ++stats_.upsets_detected;
      stats_.mttd_cycles_total += t - it->injected_at;
      if (mttd_cycles_ != nullptr) mttd_cycles_->record(t - it->injected_at);
    }
    ++stats_.upsets_repaired;
    stats_.mttr_cycles_total += t - it->injected_at;
    if (mttr_cycles_ != nullptr) mttr_cycles_->record(t - it->injected_at);
    it = pending_.erase(it);
  }
}

void ScrubService::resolve_clean(u32 far, u64 /*t*/) {
  // A clean syndrome with pending upsets on the frame means the flips
  // cancelled out (the same bit hit an even number of times): the
  // fabric is intact, so the entries are closed rather than repaired.
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->far != far ||
        mem_.outstanding_flips(FrameAddr::decode(far)) != 0) {
      ++it;
      continue;
    }
    ++stats_.upsets_self_cancelled;
    it = pending_.erase(it);
  }
}

void ScrubService::record(u64 at, const FrameAddr& fa, EccClass cls,
                          Action action, u32 word, u32 bit, bool essential) {
  journal_.push_back({at, fa.encode(), static_cast<u8>(cls),
                      static_cast<u8>(action), static_cast<u16>(word),
                      static_cast<u8>(bit), essential});
}

void ScrubService::raise_done() {
  irq_done_.set(true);
  ++stats_.done_irqs;
}

void ScrubService::raise_error() {
  irq_error_.set(true);
  ++stats_.error_irqs;
}

void ScrubService::yield_to_queue() {
  // Background repair never outranks a foreground request that is
  // already admitted: dispatch the queue dry before touching the ICAP.
  while (svc_.queue_depth() > 0) {
    if (!svc_.step()) break;
    ++stats_.yields;
  }
}

Status ScrubService::read_frame(const FrameAddr& fa, std::vector<u32>* out) {
  if (auto st = drv_.readback(fa, kFrameWords, cfg_.cmd_staging,
                              cfg_.rb_buffer, cfg_.mode);
      !ok(st)) {
    return st;
  }
  std::vector<u8> raw(usize{kFrameWords} * 4);
  cpu::CpuContext& cpu = drv_.cpu_context();
  cpu.read_buffer(cfg_.rb_buffer, raw);
  out->resize(kFrameWords);
  for (u32 k = 0; k < kFrameWords; ++k) {
    (*out)[k] = load_be32(std::span<const u8>(raw).subspan(usize{k} * 4, 4));
  }
  cpu.spend_instructions(kFrameWords);  // the syndrome loop
  return Status::kOk;
}

Status ScrubService::escalate_reload(const Watch& w) {
  ++stats_.partition_reloads;
  if (w.module.empty()) {
    ++stats_.reload_failures;
    return Status::kNotFound;  // no reload source registered
  }
  ReconfigService::ActivationRequest req;
  req.module = w.module;
  req.priority = cfg_.reload_priority;
  req.client_id = kClientId;
  // The partition may still track as loaded (SEUs bypass the
  // activation trackers) — force the rewrite anyway.
  req.force = true;
  ReconfigService::RequestId id = 0;
  if (auto st = svc_.submit(req, &id); !ok(st)) {
    ++stats_.reload_failures;
    return st;
  }
  // drain() dispatches best-first, so foreground requests that arrive
  // meanwhile still jump ahead of this background reload.
  svc_.drain();
  if (!mem_.partition_state(w.handle).loaded) {
    ++stats_.reload_failures;
    const auto* rec = svc_.record(id);
    return rec != nullptr && !ok(rec->status) ? rec->status
                                              : Status::kInternal;
  }
  resolve_partition(w.handle, now());
  return Status::kOk;
}

Status ScrubService::scrub_frame(const Watch& w) {
  const FrameAddr fa = addrs_[cur_watch_][cur_frame_];
  std::vector<u32> words;
  if (auto st = read_frame(fa, &words); !ok(st)) {
    ++stats_.transport_errors;
    record(now(), fa, EccClass::kClean, Action::kTransportError, 0, 0, false);
    return st;
  }
  ++stats_.frames_scrubbed;

  const fabric::FrameEcc* golden = mem_.frame_ecc(fa);
  if (golden == nullptr) return Status::kInternal;  // loaded => written
  const fabric::EccDecode d =
      fabric::decode_frame_ecc(*golden, fabric::compute_frame_ecc(words),
                               kFrameWords);
  if (d.cls == EccClass::kClean) {
    resolve_clean(fa.encode(), now());
    return Status::kOk;
  }

  ++stats_.detections;
  trace(obs::EventKind::kScrubDetect, fa.encode(), static_cast<u64>(d.cls));
  mark_detected(fa.encode(), now());
  const auto ps = mem_.partition_state(w.handle);

  if (d.cls == EccClass::kCorrectable) {
    ++stats_.correctable;
    const bool essential = fabric::essential_bit(
        ps.rm_id, static_cast<u32>(cur_frame_), d.word, d.bit);
    essential ? ++stats_.essential : ++stats_.benign;
    // The base frame carries the RM manifest: rewriting it alone would
    // restart the partition's configuration pass, so escalate instead.
    if (cur_frame_ != 0) {
      words[d.word] ^= 1u << d.bit;
      Status st = drv_.write_frame(fa, words, cfg_.cmd_staging, cfg_.mode);
      if (ok(st) && cfg_.verify_rewrite) {
        std::vector<u32> check;
        st = read_frame(fa, &check);
        if (ok(st) &&
            fabric::decode_frame_ecc(*mem_.frame_ecc(fa),
                                     fabric::compute_frame_ecc(check),
                                     kFrameWords)
                    .cls != EccClass::kClean) {
          // >2 flips can alias to a single-bit syndrome; the verify
          // read catches the miscorrection and forces a reload.
          st = Status::kCrcError;
        }
      }
      if (ok(st)) {
        ++stats_.frame_rewrites;
        trace(obs::EventKind::kScrubRewrite, fa.encode());
        record(now(), fa, d.cls, Action::kRewrite, d.word, d.bit, essential);
        resolve_repaired(fa.encode(), now());
        return Status::kOk;
      }
      ++stats_.rewrite_verify_failures;
      record(now(), fa, d.cls, Action::kRewriteFailed, d.word, d.bit,
             essential);
    }
  } else {
    ++stats_.uncorrectable;
  }

  trace(obs::EventKind::kScrubReload, fa.encode());
  record(now(), fa, d.cls, Action::kReload, d.word, d.bit, false);
  return escalate_reload(w);
}

void ScrubService::finish_pass() {
  ++stats_.passes;
  const u64 elapsed = now() - pass_start_;
  const u64 frames = addrs_[cur_watch_].size();
  stats_.last_pass_frames_per_sec =
      elapsed == 0 ? 0 : frames * kCoreClockHz / elapsed;
  trace(obs::EventKind::kScrubPass, stats_.passes, frames, elapsed);
  cur_frame_ = 0;
  cur_watch_ = (cur_watch_ + 1) % watches_.size();
  raise_done();
}

Status ScrubService::step() {
  if (watches_.empty()) return Status::kOk;
  drv_.cpu_context().spend_call_overhead();
  Status result = Status::kOk;
  for (u32 budget = cfg_.frames_per_slice; budget > 0; --budget) {
    yield_to_queue();
    const Watch& w = watches_[cur_watch_];
    if (cur_frame_ == 0) pass_start_ = now();
    if (!mem_.partition_state(w.handle).loaded) {
      // Nothing coherent to scrub against. With a reload source the
      // partition is brought back; without one the (empty) pass
      // completes trivially so rotation and scrub_pass() still advance.
      if (!w.module.empty()) {
        if (auto st = escalate_reload(w); !ok(st)) {
          raise_error();
          result = st;
          break;
        }
        continue;
      }
      ++stats_.passes;
      cur_frame_ = 0;
      cur_watch_ = (cur_watch_ + 1) % watches_.size();
      continue;
    }
    if (auto st = scrub_frame(w); !ok(st)) {
      raise_error();
      result = st;
      break;
    }
    if (++cur_frame_ >= addrs_[cur_watch_].size()) {
      // A pass boundary ends the slice: counters stay crisp (exactly
      // one partition traversal per pass) and the supervisor sees the
      // done IRQ before the next traversal starts.
      finish_pass();
      break;
    }
  }
  publish_stats();
  return result;
}

Status ScrubService::scrub_pass() {
  if (watches_.empty()) return Status::kOk;
  const u64 target = stats_.passes + watches_.size();
  u64 guard = 0;
  while (stats_.passes < target) {
    if (auto st = step(); !ok(st)) return st;
    if (++guard > 1'000'000) return Status::kTimeout;
  }
  return Status::kOk;
}

void ScrubService::publish_stats() {
  if (cfg_.mailbox_base == 0) return;
  cpu::CpuContext& cpu = drv_.cpu_context();
  const Addr b = cfg_.mailbox_base;
  using R = soc::ServiceRegs;
  const auto w32 = [&](Addr off, u64 v) {
    cpu.store32_uncached(b + off, static_cast<u32>(v));
  };
  w32(R::kScrubPasses, stats_.passes);
  w32(R::kScrubFrames, stats_.frames_scrubbed);
  w32(R::kScrubDetections, stats_.detections);
  w32(R::kScrubCorrectable, stats_.correctable);
  w32(R::kScrubUncorrectable, stats_.uncorrectable);
  w32(R::kScrubEssential, stats_.essential);
  w32(R::kScrubBenign, stats_.benign);
  w32(R::kScrubRewrites, stats_.frame_rewrites);
  w32(R::kScrubReloads, stats_.partition_reloads);
  w32(R::kScrubYields, stats_.yields);
  w32(R::kScrubPending, pending_.size());
  w32(R::kScrubMeanMttd, static_cast<u64>(mean_mttd_cycles()));
  w32(R::kScrubMeanMttr, static_cast<u64>(mean_mttr_cycles()));
  w32(R::kScrubFramesPerSec, stats_.last_pass_frames_per_sec);
}

}  // namespace rvcap::driver
