#include "driver/bitstream_source.hpp"

#include <algorithm>
#include <span>

#include "common/bytes.hpp"
#include "obs/observability.hpp"
#include "soc/service_regs.hpp"

namespace rvcap::driver {

// ---------------------------------------------------------------- SD

Status SdBitstreamSource::fetch(std::string_view image, Addr dest,
                                u32 capacity, u32* bytes_out) {
  if (bytes_out != nullptr) *bytes_out = 0;
  u32 size = 0;
  if (auto st = volume_.file_size(image, &size); !ok(st)) return st;
  if (size > capacity) return Status::kNoSpace;
  std::vector<u8> chunk(4096);
  u32 done = 0;
  while (done < size) {
    const u32 n = std::min<u32>(static_cast<u32>(chunk.size()), size - done);
    if (auto st = volume_.read_file_range(image, done,
                                          std::span(chunk).first(n));
        !ok(st)) {
      return st;
    }
    cpu_.write_buffer(dest + done, std::span<const u8>(chunk).first(n));
    done += n;
  }
  if (bytes_out != nullptr) *bytes_out = size;
  return Status::kOk;
}

bool SdBitstreamSource::has_image(std::string_view image) const {
  u32 size = 0;
  return ok(volume_.file_size(image, &size));
}

// ------------------------------------------------------------- cache

BitstreamCache::BitstreamCache(cpu::CpuContext& cpu, const Config& cfg)
    : cpu_(cpu), cfg_(cfg), entries_(cfg.slots) {
  obs::Observability& o = cpu_.simulator().obs();
  sink_ = &o.sink();
  src_ = sink_->intern("bitstream_cache");
  obs::CounterRegistry& c = o.counters();
  c.register_fn("net.cache.hits", [this] { return hits_; });
  c.register_fn("net.cache.misses", [this] { return misses_; });
  c.register_fn("net.cache.poisoned", [this] { return poisoned_; });
  c.register_fn("net.cache.evictions", [this] { return evictions_; });
  c.register_fn("net.cache.inserts", [this] { return inserts_; });
}

BitstreamCache::Entry* BitstreamCache::find(std::string_view image) {
  for (Entry& e : entries_) {
    if (e.valid && e.image == image) return &e;
  }
  return nullptr;
}

u32 BitstreamCache::ddr_crc(Addr addr, u32 bytes) {
  // Timed software CRC, same cost model as the manager's staged-image
  // verify: cached burst reads plus ~one bundle per word.
  std::vector<u8> chunk(4096);
  u32 crc = 0;
  u32 done = 0;
  while (done < bytes) {
    const u32 n = std::min<u32>(static_cast<u32>(chunk.size()), bytes - done);
    cpu_.read_buffer(addr + done, std::span(chunk).first(n));
    crc = crc32(std::span<const u8>(chunk).first(n), crc);
    cpu_.spend_instructions(n / 4);
    done += n;
  }
  return crc;
}

void BitstreamCache::ddr_copy(Addr src, Addr dst, u32 bytes) {
  std::vector<u8> chunk(4096);
  u32 done = 0;
  while (done < bytes) {
    const u32 n = std::min<u32>(static_cast<u32>(chunk.size()), bytes - done);
    cpu_.read_buffer(src + done, std::span(chunk).first(n));
    cpu_.write_buffer(dst + done, std::span<const u8>(chunk).first(n));
    done += n;
  }
}

bool BitstreamCache::lookup(std::string_view image, Addr dest, u32 capacity,
                            u32* bytes_out) {
  Entry* e = find(image);
  if (e == nullptr) {
    ++misses_;
    RVCAP_TRACE(sink_, obs::EventKind::kNetCacheMiss, src_, cpu_.now(),
                0, 0, 0);
    return false;
  }
  const usize slot = static_cast<usize>(e - entries_.data());
  // Integrity rule: the digest is checked on EVERY hit; a cached image
  // is only as good as its bytes are right now.
  if (ddr_crc(slot_addr(slot), e->bytes) != e->crc) {
    e->valid = false;
    ++poisoned_;
    RVCAP_TRACE(sink_, obs::EventKind::kNetCachePoison, src_, cpu_.now(),
                0, 0, 0);
    ++misses_;
    return false;
  }
  if (e->bytes > capacity) {
    ++misses_;
    return false;
  }
  ddr_copy(slot_addr(slot), dest, e->bytes);
  e->last_use = ++use_clock_;
  ++hits_;
  RVCAP_TRACE(sink_, obs::EventKind::kNetCacheHit, src_, cpu_.now(),
              e->bytes, 0, 0);
  if (bytes_out != nullptr) *bytes_out = e->bytes;
  return true;
}

void BitstreamCache::insert(std::string_view image, Addr src, u32 bytes) {
  if (bytes == 0 || bytes > cfg_.slot_bytes || entries_.empty()) return;
  Entry* e = find(image);
  if (e == nullptr) {
    // LRU victim (invalid slots first).
    usize best = 0;
    u64 oldest = ~u64{0};
    for (usize i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].valid) {
        best = i;
        oldest = 0;
        break;
      }
      if (entries_[i].last_use < oldest) {
        oldest = entries_[i].last_use;
        best = i;
      }
    }
    e = &entries_[best];
    if (e->valid) ++evictions_;
  }
  const usize slot = static_cast<usize>(e - entries_.data());
  ddr_copy(src, slot_addr(slot), bytes);
  e->image = std::string(image);
  e->bytes = bytes;
  e->crc = ddr_crc(slot_addr(slot), bytes);
  e->last_use = ++use_clock_;
  e->valid = true;
  ++inserts_;
}

void BitstreamCache::invalidate(std::string_view image) {
  Entry* e = find(image);
  if (e != nullptr) e->valid = false;
}

// ---------------------------------------------------------- delivery

std::string_view to_string(DeliveryPath p) {
  switch (p) {
    case DeliveryPath::kCache: return "cache";
    case DeliveryPath::kNet: return "net";
    case DeliveryPath::kSdFallback: return "sd_fallback";
    case DeliveryPath::kFailed: return "failed";
  }
  return "unknown";
}

BitstreamDelivery::BitstreamDelivery(cpu::CpuContext& cpu) : cpu_(cpu) {
  obs::Observability& o = cpu_.simulator().obs();
  sink_ = &o.sink();
  src_ = sink_->intern("bitstream_delivery");
  obs::CounterRegistry& c = o.counters();
  c.register_fn("net.delivery.ok", [this] { return ok_; });
  c.register_fn("net.delivery.cache_hits", [this] { return cache_hits_; });
  c.register_fn("net.delivery.net", [this] { return net_ok_; });
  c.register_fn("net.delivery.sd_fallbacks",
                [this] { return sd_fallbacks_; });
  c.register_fn("net.delivery.failures", [this] { return failures_; });
  delivery_hist_ = c.histogram("net.delivery.cycles");
}

u16 BitstreamDelivery::image_id(std::string_view image) {
  auto it = image_ids_.find(image);
  if (it != image_ids_.end()) return it->second;
  const u16 id = static_cast<u16>(image_ids_.size());
  image_ids_.emplace(std::string(image), id);
  return id;
}

void BitstreamDelivery::record(std::string_view image, DeliveryPath path,
                               Status status, Cycles cycles) {
  Record r;
  r.image = std::string(image);
  r.path = path;
  r.status = status;
  r.cycles = cycles;
  if (journal_.size() < kJournalCapacity) {
    journal_.push_back(std::move(r));
  } else {
    journal_[journal_events_ % kJournalCapacity] = std::move(r);
  }
  ++journal_events_;
  delivery_hist_->record(cycles);
  publish_stats();
}

std::vector<BitstreamDelivery::Record> BitstreamDelivery::journal() const {
  std::vector<Record> out;
  const u64 n = std::min<u64>(journal_events_, kJournalCapacity);
  out.reserve(n);
  for (u64 i = journal_events_ - n; i < journal_events_; ++i) {
    out.push_back(journal_[i % kJournalCapacity]);
  }
  return out;
}

void BitstreamDelivery::publish_stats() {
  if (mailbox_ == 0) return;
  using Regs = soc::ServiceRegs;
  auto put = [this](Addr off, u64 v) {
    cpu_.store32_uncached(mailbox_ + off, static_cast<u32>(v));
  };
  if (net_stats_ != nullptr) {
    put(Regs::kNetFetchesOk, net_stats_->fetches_ok());
    put(Regs::kNetFetchFails, net_stats_->fetches_failed());
    put(Regs::kNetRetries, net_stats_->chunk_retries());
    put(Regs::kNetBreakerTrips, net_stats_->breaker_trips());
  }
  if (cache_ != nullptr) {
    put(Regs::kNetCacheHits, cache_->hits());
    put(Regs::kNetCachePoisoned, cache_->poisoned());
  }
  put(Regs::kNetSdFallbacks, sd_fallbacks_);
  put(Regs::kNetDeliveryFails, failures_);
}

Status BitstreamDelivery::fetch(std::string_view image, Addr dest,
                                u32 capacity, u32* bytes_out) {
  const Cycles t0 = cpu_.now();
  const u16 id = image_id(image);

  if (cache_ != nullptr &&
      cache_->lookup(image, dest, capacity, bytes_out)) {
    ++ok_;
    ++cache_hits_;
    record(image, DeliveryPath::kCache, Status::kOk, cpu_.now() - t0);
    return Status::kOk;
  }

  Status primary_st = Status::kNotFound;
  if (primary_ != nullptr) {
    primary_st = primary_->fetch(image, dest, capacity, bytes_out);
    if (ok(primary_st)) {
      ++ok_;
      ++net_ok_;
      if (cache_ != nullptr && bytes_out != nullptr) {
        cache_->insert(image, dest, *bytes_out);
      }
      record(image, DeliveryPath::kNet, Status::kOk, cpu_.now() - t0);
      return Status::kOk;
    }
  }

  // Graceful degradation: the primary could not deliver — try the
  // local copy before giving up.
  if (fallback_ != nullptr && fallback_->has_image(image)) {
    RVCAP_TRACE(sink_, obs::EventKind::kNetFallback, src_, cpu_.now(), id,
                static_cast<u64>(DeliveryPath::kSdFallback),
                static_cast<u64>(primary_st));
    const Status st = fallback_->fetch(image, dest, capacity, bytes_out);
    if (ok(st)) {
      ++ok_;
      ++sd_fallbacks_;
      if (cache_ != nullptr && bytes_out != nullptr) {
        cache_->insert(image, dest, *bytes_out);
      }
      record(image, DeliveryPath::kSdFallback, Status::kOk,
             cpu_.now() - t0);
      return Status::kOk;
    }
    ++failures_;
    record(image, DeliveryPath::kFailed, st, cpu_.now() - t0);
    return st;
  }

  ++failures_;
  RVCAP_TRACE(sink_, obs::EventKind::kNetFallback, src_, cpu_.now(), id,
              static_cast<u64>(DeliveryPath::kFailed),
              static_cast<u64>(primary_st));
  record(image, DeliveryPath::kFailed, primary_st, cpu_.now() - t0);
  return primary_st;
}

bool BitstreamDelivery::has_image(std::string_view image) const {
  if (fallback_ != nullptr && fallback_->has_image(image)) return true;
  return primary_ != nullptr && primary_->has_image(image);
}

}  // namespace rvcap::driver
