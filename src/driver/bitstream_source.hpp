// Uniform bitstream acquisition: SD, network, verified DDR cache.
//
// The DprManager used to know exactly one way to find bytes — a FAT32
// path on the local SD card. Fleet deployment adds a second: pull the
// image from a shared repository over a lossy link (net::NetFetcher).
// BitstreamSource abstracts "get image X into DDR at Y, completely or
// not at all" so the staging path is source-agnostic, and
// BitstreamDelivery composes the concrete sources into the degradation
// chain the service relies on:
//
//   verified cache -> network -> SD fallback -> fail
//
// The in-DDR BitstreamCache is integrity-checked on EVERY hit: the
// stored CRC32 is recomputed over the cached bytes before they are
// copied out, and a mismatch poisons the entry (evicted, counted,
// traced) and falls through to a real source — a cache can go bad
// under the same DDR upsets the rest of the system models, and a
// poisoned hit must never masquerade as a fetch. Every delivery's path
// lands in a bounded journal and, when a mailbox is configured, in the
// soc::ServiceRegs net block.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "cpu/cpu.hpp"
#include "net/net_fetcher.hpp"
#include "obs/counters.hpp"
#include "storage/fat32.hpp"

namespace rvcap::driver {

/// Where to get a named image from. fetch() either lands the complete
/// image at `dest` (returning its exact size) or fails leaving the
/// destination unspecified — partial images are never reported as ok.
class BitstreamSource {
 public:
  virtual ~BitstreamSource() = default;
  virtual Status fetch(std::string_view image, Addr dest, u32 capacity,
                       u32* bytes_out) = 0;
  virtual bool has_image(std::string_view image) const = 0;
  virtual std::string_view source_name() const = 0;
};

/// Local SD card: `image` is a FAT32 path on the volume. The classic
/// path, now also the fallback when the network is out.
class SdBitstreamSource : public BitstreamSource {
 public:
  SdBitstreamSource(cpu::CpuContext& cpu, storage::Fat32Volume& volume)
      : cpu_(cpu), volume_(volume) {}

  Status fetch(std::string_view image, Addr dest, u32 capacity,
               u32* bytes_out) override;
  bool has_image(std::string_view image) const override;
  std::string_view source_name() const override { return "sd"; }

 private:
  cpu::CpuContext& cpu_;
  storage::Fat32Volume& volume_;
};

/// Networked repository via the TFTP-style fetcher. has_image() is
/// optimistic — only the server knows its catalogue, and asking costs
/// a round trip; fetch() reports kNotFound definitively.
class NetBitstreamSource : public BitstreamSource {
 public:
  explicit NetBitstreamSource(net::NetFetcher& fetcher)
      : fetcher_(fetcher) {}

  Status fetch(std::string_view image, Addr dest, u32 capacity,
               u32* bytes_out) override {
    return fetcher_.fetch(image, dest, capacity, bytes_out);
  }
  bool has_image(std::string_view) const override { return true; }
  std::string_view source_name() const override { return "net"; }

  net::NetFetcher& fetcher() { return fetcher_; }
  const net::NetFetcher& fetcher() const { return fetcher_; }

 private:
  net::NetFetcher& fetcher_;
};

/// Integrity-verified image cache in a dedicated DDR region. Slot
/// granular (one image per fixed-size slot, LRU eviction); the digest
/// recorded at insert is re-verified on every lookup before a byte is
/// copied out.
class BitstreamCache {
 public:
  struct Config {
    Addr base = 0;           // DDR region start (caller-reserved)
    u32 slot_bytes = 1 << 20;
    u32 slots = 4;
  };

  BitstreamCache(cpu::CpuContext& cpu, const Config& cfg);

  /// Verified hit: copies the cached image to `dest` and returns true.
  /// A digest mismatch evicts the entry (poisoned) and returns false.
  bool lookup(std::string_view image, Addr dest, u32 capacity,
              u32* bytes_out);
  /// Copy `bytes` at `src` into a cache slot under `image`. Oversized
  /// images are not cached (no error — caching is best-effort).
  void insert(std::string_view image, Addr src, u32 bytes);
  /// Drop an entry (e.g. the repository updated the image).
  void invalidate(std::string_view image);

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  u64 poisoned() const { return poisoned_; }
  u64 evictions() const { return evictions_; }
  u64 inserts() const { return inserts_; }

 private:
  struct Entry {
    std::string image;
    u32 bytes = 0;
    u32 crc = 0;
    u64 last_use = 0;
    bool valid = false;
  };

  Entry* find(std::string_view image);
  u32 ddr_crc(Addr addr, u32 bytes);
  void ddr_copy(Addr src, Addr dst, u32 bytes);
  Addr slot_addr(usize i) const {
    return cfg_.base + u64{static_cast<u32>(i)} * cfg_.slot_bytes;
  }

  cpu::CpuContext& cpu_;
  Config cfg_;
  std::vector<Entry> entries_;
  u64 use_clock_ = 0;
  obs::TraceSink* sink_ = nullptr;
  u16 src_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 poisoned_ = 0;
  u64 evictions_ = 0;
  u64 inserts_ = 0;
};

/// How a delivery was ultimately satisfied.
enum class DeliveryPath : u8 { kCache, kNet, kSdFallback, kFailed };
std::string_view to_string(DeliveryPath p);

/// The degradation chain: cache, then primary (network), then fallback
/// (SD). Successful real fetches are inserted into the cache so the
/// next request for the same image is a local copy.
class BitstreamDelivery : public BitstreamSource {
 public:
  /// One delivery's outcome; the journal is a bounded ring of the most
  /// recent kJournalCapacity entries.
  struct Record {
    std::string image;
    DeliveryPath path = DeliveryPath::kFailed;
    Status status = Status::kOk;
    Cycles cycles = 0;   // delivery latency
  };
  static constexpr usize kJournalCapacity = 32;

  explicit BitstreamDelivery(cpu::CpuContext& cpu);

  void set_primary(BitstreamSource* s) { primary_ = s; }
  void set_fallback(BitstreamSource* s) { fallback_ = s; }
  void attach_cache(BitstreamCache* c) { cache_ = c; }
  /// soc::ServiceRegs base for the net telemetry block; 0 = disabled.
  void set_mailbox(Addr base) { mailbox_ = base; }
  /// Fetcher whose retry/breaker stats the mailbox mirrors (optional).
  void set_net_stats(const net::NetFetcher* f) { net_stats_ = f; }

  Status fetch(std::string_view image, Addr dest, u32 capacity,
               u32* bytes_out) override;
  bool has_image(std::string_view image) const override;
  std::string_view source_name() const override { return "delivery"; }

  std::vector<Record> journal() const;
  u64 journal_events() const { return journal_events_; }

  u64 deliveries_ok() const { return ok_; }
  u64 cache_hits() const { return cache_hits_; }
  u64 net_deliveries() const { return net_ok_; }
  u64 sd_fallbacks() const { return sd_fallbacks_; }
  u64 failures() const { return failures_; }

 private:
  void record(std::string_view image, DeliveryPath path, Status status,
              Cycles cycles);
  void publish_stats();
  u16 image_id(std::string_view image);

  cpu::CpuContext& cpu_;
  BitstreamSource* primary_ = nullptr;
  BitstreamSource* fallback_ = nullptr;
  BitstreamCache* cache_ = nullptr;
  const net::NetFetcher* net_stats_ = nullptr;
  Addr mailbox_ = 0;

  std::vector<Record> journal_;
  u64 journal_events_ = 0;
  std::map<std::string, u16, std::less<>> image_ids_;

  obs::TraceSink* sink_ = nullptr;
  u16 src_ = 0;
  obs::Histogram* delivery_hist_ = nullptr;

  u64 ok_ = 0;
  u64 cache_hits_ = 0;
  u64 net_ok_ = 0;
  u64 sd_fallbacks_ = 0;
  u64 failures_ = 0;
};

}  // namespace rvcap::driver
