// AXI_HWICAP driver — Listing 2 of the paper, with the §IV-B software
// optimization: the keyhole-register store loop is unrolled because
// Ariane cannot speculate past non-cacheable accesses, so each loop
// iteration otherwise stalls the pipeline on the conditional branch.
#pragma once

#include <span>

#include "cpu/cpu.hpp"
#include "driver/progress.hpp"
#include "driver/reconfig_module.hpp"
#include "driver/timer.hpp"
#include "fabric/geometry.hpp"
#include "soc/memory_map.hpp"

namespace rvcap::driver {

class HwIcapDriver {
 public:
  struct Timing {
    u64 reconfig_ticks = 0;  // decouple -> recouple, CLINT ticks (§IV-B)
    double reconfig_us() const { return TimerDriver::ticks_to_us(reconfig_ticks); }
  };

  /// Poll bounds for the driver's blocking loops. done_poll_iters
  /// defaults to 0 = "derive from the number of words just flushed":
  /// the ICAPE consumes roughly a word per cycle while each poll
  /// iteration costs an uncached-read round trip, so floor + words x
  /// slack bounds any healthy flush with orders-of-magnitude margin.
  /// A non-zero field overrides the derivation (tests shrink it).
  struct Timeouts {
    u32 done_poll_iters = 0;       // SR.Done poll after a CR write
    u32 rfo_poll_iters = 100'000;  // read-FIFO-occupancy poll

    u32 done_iters_floor = 5'000;  // covers CR latency + tiny flushes
    u32 done_iters_per_word = 16;

    u32 done_bound(u32 words) const {
      if (done_poll_iters != 0) return done_poll_iters;
      const u64 v = u64{done_iters_floor} + u64{words} * done_iters_per_word;
      return v > 0xFFFF'FFFFull ? 0xFFFF'FFFFu : static_cast<u32>(v);
    }
  };

  void set_timeouts(const Timeouts& t) { timeouts_ = t; }
  const Timeouts& timeouts() const { return timeouts_; }

  HwIcapDriver(cpu::CpuContext& cpu, u32 unroll_factor = 16,
               Addr hwicap_base = soc::MemoryMap::kHwicap.base,
               Addr rp_base = soc::MemoryMap::kRpCtrl.base,
               Addr clint_base = soc::MemoryMap::kClint.base);

  /// Loop-unroll factor of the FIFO store loop (1 = the naive driver).
  void set_unroll(u32 u) { unroll_ = (u == 0) ? 1 : u; }
  u32 unroll() const { return unroll_; }

  /// Reset the core and disable the global interrupt (Listing 2's
  /// init_icap()).
  Status init_icap();

  /// Full Listing-2 flow: decouple -> init -> transfer -> recouple,
  /// measured as the paper does ("from decoupling the RP till it is
  /// coupled again"). `hold_decoupled` skips the final recouple for the
  /// verified-activation recovery flow.
  Status init_reconfig_process(const ReconfigModule& m,
                               bool hold_decoupled = false);

  /// Keyhole transfer only (the fill/flush loop).
  Status reconfigure_RP(Addr data, u32 pbit_size);

  void decouple_accel(bool decouple);

  /// Configuration readback through the core's read FIFO: write the
  /// command sequence into the keyhole, set SZ, trigger CR.Read, then
  /// drain RF — all software-paced uncached accesses, like the write
  /// path.
  Status readback(const fabric::FrameAddr& start, std::span<u32> out);

  const Timing& last_timing() const { return timing_; }

  /// Install a ProgressMonitor observing the keyhole transfer loop
  /// (progress counter = words written so far); nullptr detaches.
  void set_progress_monitor(ProgressMonitor* m) { monitor_ = m; }
  ProgressMonitor* progress_monitor() const { return monitor_; }

 private:
  u32 read_fifo_vacancy();
  Status icap_done(u32 flushed_words);  // poll SR until the flush completes

  cpu::CpuContext& cpu_;
  u32 unroll_;
  Addr base_;
  Addr rp_base_;
  TimerDriver timer_;
  Timing timing_;
  Timeouts timeouts_;
  ProgressMonitor* monitor_ = nullptr;
};

}  // namespace rvcap::driver
