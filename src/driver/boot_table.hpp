// Reconfigurable-module boot table in on-chip boot memory.
//
// §III-A: "on-chip boot memory is used to store application
// instructions for execution" — alongside the binary, deployments keep
// a table describing the available RMs (name, rm_id, bitstream file)
// so the application discovers its module set at startup instead of
// hard-coding it. This module defines that on-memory format and the
// CPU-side pack/parse routines.
//
// Layout (little-endian, at a fixed offset in boot memory):
//   0x00  magic  "RVBT" (0x52564254)
//   0x04  version (1)
//   0x08  entry count N
//   0x0C  reserved
//   0x10  N entries of 32 bytes:
//         0x00 rm_id
//         0x04 flags (bit0: compressed bitstream)
//         0x08 8.3 file name, 16 bytes, NUL padded
//         0x18 reserved (8 bytes)
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "cpu/cpu.hpp"
#include "driver/reconfig_module.hpp"
#include "mem/sram.hpp"
#include "soc/memory_map.hpp"

namespace rvcap::driver {

struct BootTableEntry {
  u32 rm_id = 0;
  bool compressed = false;
  std::string pbit_name;  // 8.3 path on the SD card, <= 15 chars
};

inline constexpr u32 kBootTableMagic = 0x52564254;  // "RVBT"
inline constexpr u32 kBootTableVersion = 1;
inline constexpr Addr kBootTableOffset = 0x1000;  // after the binary

/// Host/provisioning side: serialize the table into a boot image blob.
Status pack_boot_table(std::span<const BootTableEntry> entries,
                       std::vector<u8>* out);

/// Target side: parse the table from boot memory through the CPU model
/// (timed bus reads, as firmware would).
Status read_boot_table(cpu::CpuContext& cpu, std::vector<BootTableEntry>* out,
                       Addr boot_base = soc::MemoryMap::kBootMem.base,
                       Addr table_offset = kBootTableOffset);

/// Convenience: turn table entries into ReconfigModule descriptors
/// ready for init_RModules.
std::vector<ReconfigModule> to_reconfig_modules(
    std::span<const BootTableEntry> entries);

}  // namespace rvcap::driver
