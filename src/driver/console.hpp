// Console output helper: the driver's terminal messages go through the
// memory-mapped UART ("a terminal message informs that the
// reconfiguration was successful", §III-C).
#pragma once

#include <string_view>

#include "cpu/cpu.hpp"
#include "soc/memory_map.hpp"
#include "soc/uart.hpp"

namespace rvcap::driver {

inline void uart_puts(cpu::CpuContext& cpu, std::string_view s,
                      Addr uart_base = soc::MemoryMap::kUart.base) {
  for (char c : s) {
    cpu.store32_uncached(uart_base + soc::Uart::kThr,
                         static_cast<u32>(static_cast<unsigned char>(c)));
  }
}

}  // namespace rvcap::driver
