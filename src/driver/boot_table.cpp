#include "driver/boot_table.hpp"

#include "common/bytes.hpp"

namespace rvcap::driver {

namespace {
constexpr usize kHeaderBytes = 16;
constexpr usize kEntryBytes = 32;
constexpr usize kNameBytes = 16;
}  // namespace

Status pack_boot_table(std::span<const BootTableEntry> entries,
                       std::vector<u8>* out) {
  out->assign(kHeaderBytes + entries.size() * kEntryBytes, 0);
  store_le32(std::span(*out).subspan(0x00), kBootTableMagic);
  store_le32(std::span(*out).subspan(0x04), kBootTableVersion);
  store_le32(std::span(*out).subspan(0x08),
             static_cast<u32>(entries.size()));
  usize off = kHeaderBytes;
  for (const BootTableEntry& e : entries) {
    if (e.pbit_name.size() >= kNameBytes) return Status::kInvalidArgument;
    store_le32(std::span(*out).subspan(off + 0x00), e.rm_id);
    store_le32(std::span(*out).subspan(off + 0x04),
               e.compressed ? 1u : 0u);
    std::copy(e.pbit_name.begin(), e.pbit_name.end(),
              out->begin() + static_cast<long>(off) + 0x08);
    off += kEntryBytes;
  }
  return Status::kOk;
}

Status read_boot_table(cpu::CpuContext& cpu,
                       std::vector<BootTableEntry>* out, Addr boot_base,
                       Addr table_offset) {
  out->clear();
  const Addr base = boot_base + table_offset;
  u8 header[kHeaderBytes];
  cpu.read_buffer(base, header);
  if (load_le32(std::span<const u8>(header).subspan(0x00)) !=
      kBootTableMagic) {
    return Status::kNotFound;
  }
  if (load_le32(std::span<const u8>(header).subspan(0x04)) !=
      kBootTableVersion) {
    return Status::kNotSupported;
  }
  const u32 count = load_le32(std::span<const u8>(header).subspan(0x08));
  if (count > 256) return Status::kProtocolError;

  std::vector<u8> raw(usize{count} * kEntryBytes);
  cpu.read_buffer(base + kHeaderBytes, raw);
  for (u32 i = 0; i < count; ++i) {
    const auto rec = std::span<const u8>(raw).subspan(usize{i} * kEntryBytes,
                                                      kEntryBytes);
    BootTableEntry e;
    e.rm_id = load_le32(rec.subspan(0x00));
    e.compressed = (load_le32(rec.subspan(0x04)) & 1) != 0;
    const auto name = rec.subspan(0x08, kNameBytes);
    for (u8 c : name) {
      if (c == 0) break;
      e.pbit_name.push_back(static_cast<char>(c));
    }
    if (e.pbit_name.empty()) return Status::kProtocolError;
    out->push_back(std::move(e));
  }
  return Status::kOk;
}

std::vector<ReconfigModule> to_reconfig_modules(
    std::span<const BootTableEntry> entries) {
  std::vector<ReconfigModule> mods;
  mods.reserve(entries.size());
  for (const BootTableEntry& e : entries) {
    mods.push_back(ReconfigModule{e.pbit_name, e.rm_id, 0, 0});
  }
  return mods;
}

}  // namespace rvcap::driver
