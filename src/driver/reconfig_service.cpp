#include "driver/reconfig_service.hpp"

#include <algorithm>
#include <vector>

#include "bitstream/preflight.hpp"
#include "common/log.hpp"
#include "soc/service_regs.hpp"

namespace rvcap::driver {

ReconfigService::ReconfigService(DprManager& mgr, const Config& cfg)
    : mgr_(mgr), cfg_(cfg) {
  obs::Observability& o = mgr_.driver().cpu_context().simulator().obs();
  sink_ = &o.sink();
  src_ = sink_->intern("reconfig_service");
  obs::CounterRegistry& c = o.counters();
  c.register_fn("service.queue_depth",
                [this] { return static_cast<u64>(queue_depth()); });
  c.register_fn("service.accepted", [this] { return stats_.accepted; });
  c.register_fn("service.completed", [this] { return stats_.completed; });
  c.register_fn("service.hangs", [this] { return stats_.hangs; });
  wait_ticks_ = c.histogram("service.wait_ticks");
  active_ticks_ = c.histogram("service.active_ticks");
}

void ReconfigService::trace(obs::EventKind kind, u64 a0, u64 a1, u64 a2) {
  RVCAP_TRACE(sink_, kind, src_, mgr_.driver().cpu_context().now(), a0, a1,
              a2);
}

ReconfigService::RequestRecord* ReconfigService::find(RequestId id) {
  if (id == 0 || id > records_.size()) return nullptr;
  return &records_[id - 1];
}

const ReconfigService::RequestRecord* ReconfigService::record(
    RequestId id) const {
  if (id == 0 || id > records_.size()) return nullptr;
  return &records_[id - 1];
}

usize ReconfigService::queue_depth() const {
  usize n = 0;
  for (const RequestRecord& r : records_) {
    if (r.state == RequestState::kQueued) ++n;
  }
  return n;
}

bool ReconfigService::quarantined(std::string_view module) const {
  return std::find(quarantine_.begin(), quarantine_.end(), module) !=
         quarantine_.end();
}

void ReconfigService::finish(RequestRecord& r, RequestState state,
                             Status status) {
  r.state = state;
  r.status = status;
  r.done_mtime = mgr_.driver().mtime();
}

void ReconfigService::publish_stats() {
  if (cfg_.mailbox_base == 0) return;
  cpu::CpuContext& cpu = mgr_.driver().cpu_context();
  const Addr b = cfg_.mailbox_base;
  using soc::ServiceRegs;
  cpu.store32_uncached(b + ServiceRegs::kSubmitted,
                       static_cast<u32>(stats_.submitted));
  cpu.store32_uncached(b + ServiceRegs::kAccepted,
                       static_cast<u32>(stats_.accepted));
  cpu.store32_uncached(b + ServiceRegs::kCompleted,
                       static_cast<u32>(stats_.completed));
  cpu.store32_uncached(b + ServiceRegs::kFailed,
                       static_cast<u32>(stats_.failed));
  cpu.store32_uncached(b + ServiceRegs::kShed, static_cast<u32>(stats_.shed));
  cpu.store32_uncached(b + ServiceRegs::kRejectedFull,
                       static_cast<u32>(stats_.rejected_full));
  cpu.store32_uncached(b + ServiceRegs::kDeadlineMissed,
                       static_cast<u32>(stats_.deadline_missed));
  cpu.store32_uncached(b + ServiceRegs::kCancelled,
                       static_cast<u32>(stats_.cancelled));
  cpu.store32_uncached(b + ServiceRegs::kCoalesced,
                       static_cast<u32>(stats_.coalesced));
  cpu.store32_uncached(b + ServiceRegs::kQuarantineRejects,
                       static_cast<u32>(stats_.quarantine_rejects));
  cpu.store32_uncached(b + ServiceRegs::kPreflightRejects,
                       static_cast<u32>(stats_.preflight_rejects));
  cpu.store32_uncached(b + ServiceRegs::kHangs,
                       static_cast<u32>(stats_.hangs));
  cpu.store32_uncached(b + ServiceRegs::kQueueDepth,
                       static_cast<u32>(queue_depth()));
  cpu.store32_uncached(b + ServiceRegs::kMaxQueueDepth,
                       static_cast<u32>(stats_.max_queue_depth));
}

Status ReconfigService::preflight(const ActivationRequest& req) {
  DprManager::StagedInfo info;
  if (auto st = mgr_.staged_image(req.module, &info); !ok(st)) return st;

  // Pull the staged image out of DDR and validate it offline. The copy
  // costs cached burst reads — simulated time, but zero ICAP traffic.
  std::vector<u8> bytes(info.bytes);
  mgr_.driver().cpu_context().read_buffer(info.addr, bytes);
  const auto report = bitstream::preflight_check(
      bytes, mgr_.device(), mgr_.partition(), cfg_.expected_idcode);
  if (!ok(report.status)) {
    log_warn("reconfig_service: preflight rejected ", req.module, ": ",
             report.reason);
    ++stats_.preflight_rejects;
    quarantine_.emplace_back(req.module);
    // Drop the staged copy: a quarantined image must not occupy a slot,
    // and must never be re-staged on a resubmit.
    mgr_.discard_staged(req.module);
    return Status::kRejected;
  }
  return Status::kOk;
}

Status ReconfigService::submit(const ActivationRequest& req, RequestId* id) {
  ++stats_.submitted;
  if (!mgr_.has_module(req.module)) return Status::kNotFound;

  auto make_record = [&](RequestState state, Status status) -> RequestRecord& {
    RequestRecord r;
    r.id = next_id_++;
    r.req = req;
    r.submit_mtime = mgr_.driver().mtime();
    r.state = state;
    r.status = status;
    if (state != RequestState::kQueued) r.done_mtime = r.submit_mtime;
    records_.push_back(std::move(r));
    if (id != nullptr) *id = records_.back().id;
    return records_.back();
  };

  // Quarantine fast-fail: a module that failed preflight before is
  // refused without touching the staging cache or the volume.
  if (quarantined(req.module)) {
    ++stats_.quarantine_rejects;
    RequestRecord& r = make_record(RequestState::kRejected,
                                   Status::kQuarantined);
    trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
    trace(obs::EventKind::kSvcReject, r.id,
          static_cast<u64>(Status::kQuarantined));
    publish_stats();
    return Status::kQuarantined;
  }

  // Already-expired deadline: never admit work that cannot finish.
  if (req.deadline_mtime != 0 &&
      mgr_.driver().mtime() > req.deadline_mtime) {
    ++stats_.deadline_missed;
    RequestRecord& r =
        make_record(RequestState::kDeadlineMissed, Status::kDeadlineMissed);
    trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
    trace(obs::EventKind::kSvcDeadlineMiss, r.id);
    publish_stats();
    return Status::kDeadlineMissed;
  }

  // Pre-flight parse of the staged image (stages it on a miss).
  if (cfg_.preflight) {
    if (auto st = preflight(req); !ok(st)) {
      RequestRecord& r = make_record(RequestState::kRejected, st);
      trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
      trace(obs::EventKind::kSvcReject, r.id, static_cast<u64>(st));
      publish_stats();
      return st == Status::kRejected ? Status::kRejected : st;
    }
  }

  // Coalesce with a queued request for the same module: the survivor
  // inherits the higher priority and the tighter deadline.
  for (RequestRecord& q : records_) {
    if (q.state != RequestState::kQueued || q.req.module != req.module) {
      continue;
    }
    q.req.priority = std::max(q.req.priority, req.priority);
    if (req.deadline_mtime != 0 &&
        (q.req.deadline_mtime == 0 ||
         req.deadline_mtime < q.req.deadline_mtime)) {
      q.req.deadline_mtime = req.deadline_mtime;
    }
    q.req.force = q.req.force || req.force;
    ++stats_.coalesced;
    const RequestId parent = q.id;
    RequestRecord& r = make_record(RequestState::kCoalesced, Status::kOk);
    r.merged_into = parent;
    trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
    trace(obs::EventKind::kSvcCoalesce, r.id, parent);
    publish_stats();
    return Status::kOk;
  }

  // Saturation: shed the lowest-priority queued entry if the arrival
  // outranks it, otherwise refuse the arrival itself.
  if (queue_depth() >= cfg_.queue_capacity) {
    RequestRecord* victim = nullptr;
    for (RequestRecord& q : records_) {
      if (q.state != RequestState::kQueued) continue;
      if (victim == nullptr || q.req.priority < victim->req.priority ||
          (q.req.priority == victim->req.priority && q.id > victim->id)) {
        victim = &q;
      }
    }
    if (victim == nullptr || req.priority <= victim->req.priority) {
      ++stats_.rejected_full;
      RequestRecord& r = make_record(RequestState::kRejected,
                                     Status::kRejected);
      trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
      trace(obs::EventKind::kSvcReject, r.id,
            static_cast<u64>(Status::kRejected));
      publish_stats();
      return Status::kRejected;
    }
    ++stats_.shed;
    trace(obs::EventKind::kSvcShed, victim->id, victim->req.priority);
    finish(*victim, RequestState::kShed, Status::kRejected);
  }

  RequestRecord& r = make_record(RequestState::kQueued, Status::kOk);
  ++stats_.accepted;
  stats_.max_queue_depth = std::max<u64>(stats_.max_queue_depth,
                                         queue_depth());
  trace(obs::EventKind::kSvcSubmit, r.id, req.priority);
  trace(obs::EventKind::kSvcAdmit, r.id, queue_depth());
  publish_stats();
  return Status::kOk;
}

Status ReconfigService::cancel(RequestId id) {
  RequestRecord* r = find(id);
  if (r == nullptr) return Status::kNotFound;
  if (r->state == RequestState::kActive) return Status::kDeviceBusy;
  if (r->state != RequestState::kQueued) return Status::kInvalidArgument;
  ++stats_.cancelled;
  trace(obs::EventKind::kSvcCancel, r->id);
  finish(*r, RequestState::kCancelled, Status::kCancelled);
  publish_stats();
  return Status::kOk;
}

ReconfigService::RequestRecord* ReconfigService::best_queued() {
  RequestRecord* best = nullptr;
  for (RequestRecord& r : records_) {
    if (r.state != RequestState::kQueued) continue;
    if (best == nullptr) {
      best = &r;
      continue;
    }
    if (r.req.priority != best->req.priority) {
      if (r.req.priority > best->req.priority) best = &r;
      continue;
    }
    const u64 rd = r.req.deadline_mtime == 0 ? ~u64{0} : r.req.deadline_mtime;
    const u64 bd = best->req.deadline_mtime == 0 ? ~u64{0}
                                                 : best->req.deadline_mtime;
    if (rd != bd) {
      if (rd < bd) best = &r;
      continue;
    }
    if (r.id < best->id) best = &r;
  }
  return best;
}

bool ReconfigService::step() {
  RequestRecord* r = best_queued();
  if (r == nullptr) return false;

  const u64 now = mgr_.driver().mtime();
  if (r->req.deadline_mtime != 0 && now > r->req.deadline_mtime) {
    // Expired while queued: skip without touching the hardware.
    ++stats_.deadline_missed;
    trace(obs::EventKind::kSvcDeadlineMiss, r->id);
    finish(*r, RequestState::kDeadlineMissed, Status::kDeadlineMissed);
    publish_stats();
    return true;
  }

  r->state = RequestState::kActive;
  r->start_mtime = now;
  active_ = r->id;
  const u64 wait = now - r->submit_mtime;
  if (wait_ticks_ != nullptr) wait_ticks_->record(wait);
  trace(obs::EventKind::kSvcDispatch, r->id, wait);

  // The service doubles as the transfer watchdog for the dispatch.
  RvCapDriver& drv = mgr_.driver();
  ProgressMonitor* const prev = drv.progress_monitor();
  drv.set_progress_monitor(this);
  const Status s = mgr_.activate(r->req.module, cfg_.mode, r->req.force);
  drv.set_progress_monitor(prev);
  active_ = 0;

  if (ok(s)) {
    ++stats_.completed;
    finish(*r, RequestState::kCompleted, Status::kOk);
  } else {
    ++stats_.failed;
    finish(*r, RequestState::kFailed, s);
  }
  const u64 active = r->done_mtime - r->start_mtime;
  if (active_ticks_ != nullptr) active_ticks_->record(active);
  if (ok(s)) {
    trace(obs::EventKind::kSvcComplete, r->id, active);
  } else {
    trace(obs::EventKind::kSvcFail, r->id, static_cast<u64>(s), active);
  }
  publish_stats();
  return true;
}

usize ReconfigService::drain() {
  usize n = 0;
  while (step()) ++n;
  return n;
}

void ReconfigService::on_start(u64 expected_beats) {
  wd_expected_beats_ = expected_beats;
  wd_last_beats_ = 0;
  wd_stalled_polls_ = 0;
  wd_tripped_ = false;
}

bool ReconfigService::on_poll(const TransferProgress& p) {
  if (p.beats != wd_last_beats_) {
    // Progress (or a new job's counter reset): the engine is alive.
    wd_last_beats_ = p.beats;
    wd_stalled_polls_ = 0;
    return true;
  }
  if (++wd_stalled_polls_ < cfg_.watchdog_stall_polls) return true;

  // Counter frozen across N probes: declare the transfer wedged and
  // abort the wait. The driver returns kHang; the DprManager's recovery
  // state machine takes it from there (cleanup, blank, retry/fallback).
  ++stats_.hangs;
  wd_tripped_ = true;
  HangDiagnosis d;
  d.mtime = p.mtime;
  d.request = active_;
  d.snapshot = p;
  d.expected_beats = wd_expected_beats_;
  d.outstanding_beats =
      wd_expected_beats_ > p.beats ? wd_expected_beats_ - p.beats : 0;
  d.polls_without_progress = wd_stalled_polls_;
  hangs_.push_back(d);
  trace(obs::EventKind::kSvcHang, active_, d.outstanding_beats,
        d.polls_without_progress);
  log_warn("reconfig_service: watchdog hang, beats frozen at ", p.beats,
           " of ", wd_expected_beats_);
  return false;
}

}  // namespace rvcap::driver
