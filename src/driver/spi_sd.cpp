#include "driver/spi_sd.hpp"

#include <array>

#include "storage/sd_card.hpp"
#include "storage/spi.hpp"

namespace rvcap::driver {

using storage::SdCard;
using storage::SpiController;

u8 SpiSdDriver::spi_xfer(u8 mosi) {
  cpu_.store32_uncached(base_ + SpiController::kDtr, mosi);
  // The transfer takes 8*divider wire cycles; one status poll usually
  // suffices after the store's own round trip.
  while (cpu_.load32_uncached(base_ + SpiController::kSr) &
         SpiController::kSrRxEmpty) {
  }
  return static_cast<u8>(cpu_.load32_uncached(base_ + SpiController::kDrr));
}

void SpiSdDriver::select(bool on) {
  cpu_.store32_uncached(base_ + SpiController::kSsr, on ? 0u : 1u);
}

u8 SpiSdDriver::command(u8 cmd, u32 arg) {
  std::array<u8, 6> f{static_cast<u8>(0x40 | cmd),
                      static_cast<u8>(arg >> 24), static_cast<u8>(arg >> 16),
                      static_cast<u8>(arg >> 8), static_cast<u8>(arg), 0};
  f[5] = static_cast<u8>((SdCard::crc7({f.data(), 5}) << 1) | 1);
  for (u8 b : f) spi_xfer(b);
  for (int i = 0; i < 10; ++i) {
    const u8 r = spi_xfer(0xFF);
    if (r != 0xFF) return r;
  }
  return 0xFF;
}

Status SpiSdDriver::init_card() {
  cpu_.spend_call_overhead();
  cpu_.store32_uncached(base_ + SpiController::kCr, 1);  // enable
  select(false);
  for (int i = 0; i < 10; ++i) spi_xfer(0xFF);  // 80 dummy clocks
  select(true);

  if (command(0, 0) != 0x01) return Status::kIoError;
  command(8, 0x1AA);
  for (int i = 0; i < 4; ++i) spi_xfer(0xFF);  // drain R7 payload

  for (int i = 0; i < 32; ++i) {
    command(55, 0);
    if (command(41, 0x40000000) == 0x00) {
      initialized_ = true;
      break;
    }
  }
  if (!initialized_) return Status::kTimeout;
  command(58, 0);  // OCR: confirm block addressing
  for (int i = 0; i < 4; ++i) spi_xfer(0xFF);
  return Status::kOk;
}

Status SpiSdDriver::read_block_once(u32 lba, std::span<u8> buf) {
  if (command(17, lba) != 0x00) return Status::kIoError;
  // Hunt for the start token.
  u8 tok = 0xFF;
  for (int i = 0; i < 64 && tok != 0xFE; ++i) tok = spi_xfer(0xFF);
  if (tok != 0xFE) return Status::kTimeout;
  for (auto& b : buf) b = spi_xfer(0xFF);
  const u16 crc = static_cast<u16>((spi_xfer(0xFF) << 8) | spi_xfer(0xFF));
  if (crc != SdCard::crc16(buf)) return Status::kCrcError;
  return Status::kOk;
}

Status SpiSdDriver::read_block(u32 lba, std::span<u8> buf) {
  if (buf.size() != storage::kBlockSize) return Status::kInvalidArgument;
  if (!initialized_) return Status::kIoError;
  cpu_.spend_call_overhead();
  // SD transfers fail transiently (marginal wiring, clocking, card
  // state): a missing start token or a bad CRC is worth re-issuing the
  // command before giving up. The shared RetrySchedule bounds the
  // attempts; the default policy has no backoff, preserving the
  // classic tight re-issue loop.
  RetrySchedule sched(retry_policy_, lba);
  Status st = Status::kIoError;
  while (sched.next()) {
    if (sched.delay() > 0) cpu_.simulator().run_cycles(sched.delay());
    st = read_block_once(lba, buf);
    if (ok(st)) {
      if (sched.attempt() > 1) ++reads_recovered_;
      return st;
    }
    if (st != Status::kTimeout && st != Status::kCrcError) break;
  }
  return st;
}

Status SpiSdDriver::write_block(u32 lba, std::span<const u8> buf) {
  if (buf.size() != storage::kBlockSize) return Status::kInvalidArgument;
  if (!initialized_) return Status::kIoError;
  cpu_.spend_call_overhead();
  if (command(24, lba) != 0x00) return Status::kIoError;
  spi_xfer(0xFF);   // Nwr gap
  spi_xfer(0xFE);   // start token
  for (u8 b : buf) spi_xfer(b);
  const u16 crc = SdCard::crc16(buf);
  spi_xfer(static_cast<u8>(crc >> 8));
  spi_xfer(static_cast<u8>(crc));
  // Data response then busy.
  u8 resp = 0xFF;
  for (int i = 0; i < 8 && resp == 0xFF; ++i) resp = spi_xfer(0xFF);
  if ((resp & 0x1F) != 0x05) return Status::kIoError;
  for (int i = 0; i < 64; ++i) {
    if (spi_xfer(0xFF) == 0xFF) return Status::kOk;  // busy deasserted
  }
  return Status::kTimeout;
}

}  // namespace rvcap::driver
