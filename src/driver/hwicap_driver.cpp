#include "driver/hwicap_driver.hpp"

#include <vector>

#include "bitstream/readback.hpp"
#include "common/bytes.hpp"
#include "hwicap/hwicap.hpp"
#include "rvcap/rp_control.hpp"

namespace rvcap::driver {

using hwicap::HwIcap;
using rvcap_ctrl::RpControl;

HwIcapDriver::HwIcapDriver(cpu::CpuContext& cpu, u32 unroll_factor,
                           Addr hwicap_base, Addr rp_base, Addr clint_base)
    : cpu_(cpu), unroll_(unroll_factor == 0 ? 1 : unroll_factor),
      base_(hwicap_base), rp_base_(rp_base), timer_(cpu, clint_base) {}

Status HwIcapDriver::init_icap() {
  cpu_.spend_call_overhead();
  cpu_.store32_uncached(base_ + HwIcap::kCr, HwIcap::kCrSwReset);
  cpu_.store32_uncached(base_ + HwIcap::kGier, 0);  // global irq off
  return Status::kOk;
}

void HwIcapDriver::decouple_accel(bool decouple) {
  const u32 cur = cpu_.load32_uncached(rp_base_ + RpControl::kControl);
  const u32 next = decouple ? (cur | RpControl::kCtlDecouple)
                            : (cur & ~RpControl::kCtlDecouple);
  cpu_.store32_uncached(rp_base_ + RpControl::kControl, next);
}

u32 HwIcapDriver::read_fifo_vacancy() {
  return cpu_.load32_uncached(base_ + HwIcap::kWfv);
}

Status HwIcapDriver::icap_done(u32 flushed_words) {
  const u32 bound = timeouts_.done_bound(flushed_words);
  for (u32 i = 0; i < bound; ++i) {
    if (cpu_.load32_uncached(base_ + HwIcap::kSr) & HwIcap::kSrDone) {
      return Status::kOk;
    }
  }
  return Status::kTimeout;
}

Status HwIcapDriver::reconfigure_RP(Addr data, u32 pbit_size) {
  cpu_.spend_call_overhead();
  const u32 total_words = pbit_size / 4;
  u32 done_words = 0;
  if (monitor_ != nullptr) monitor_->on_start(total_words);

  // Cached staging chunk the words are loaded through (the bitstream
  // data itself streams through the D$; the keyhole stores dominate).
  std::vector<u8> chunk(4096);
  u32 chunk_base = ~0u;  // word index of chunk start

  auto word_at = [&](u32 wi) -> u32 {
    const u32 chunk_words = static_cast<u32>(chunk.size() / 4);
    if (chunk_base == ~0u || wi < chunk_base ||
        wi >= chunk_base + chunk_words) {
      const u32 n = std::min<u32>(chunk_words, total_words - wi);
      cpu_.read_buffer(data + u64{wi} * 4,
                       std::span(chunk).first(usize{n} * 4));
      chunk_base = wi;
    }
    return load_be32(
        std::span<const u8>(chunk).subspan(usize{wi - chunk_base} * 4, 4));
  };

  while (done_words < total_words) {
    // Keyhole progress probe: words written so far stand in for the
    // DMA path's beat counter (one probe per FIFO-sized flush).
    if (monitor_ != nullptr) {
      TransferProgress p;
      p.beats = done_words;
      p.status = cpu_.load32_uncached(base_ + HwIcap::kSr);
      p.mtime = timer_.read_mtime();
      if (!monitor_->on_poll(p)) return Status::kHang;
    }
    // read_fifo_vac(): how many words fit before the next flush.
    u32 vacancy = read_fifo_vacancy();
    u32 n = std::min(vacancy, total_words - done_words);
    const u32 round_words = n;

    // Unrolled keyhole store loop: one loop-control stall per U words.
    while (n >= unroll_) {
      cpu_.spend_loop_overhead();
      for (u32 j = 0; j < unroll_; ++j) {
        cpu_.store32_uncached(base_ + HwIcap::kWf, word_at(done_words++));
      }
      n -= unroll_;
    }
    while (n > 0) {  // tail (also per-iteration overhead)
      cpu_.spend_loop_overhead();
      cpu_.store32_uncached(base_ + HwIcap::kWf, word_at(done_words++));
      --n;
    }

    // write_to_icap(): flush the FIFO into the ICAPE primitive.
    cpu_.store32_uncached(base_ + HwIcap::kCr, HwIcap::kCrWrite);
    // icap_done(): wait for the configuration step to finish.
    if (auto st = icap_done(round_words); !ok(st)) return st;
  }
  return Status::kOk;
}

Status HwIcapDriver::readback(const fabric::FrameAddr& start,
                              std::span<u32> out) {
  if (out.empty()) return Status::kInvalidArgument;
  cpu_.spend_call_overhead();

  // Request half through the keyhole; the port turns around after it.
  const auto request =
      bitstream::build_readback_request(start, static_cast<u32>(out.size()));
  for (const u32 w : request) {
    cpu_.store32_uncached(base_ + HwIcap::kWf, w);
  }
  cpu_.store32_uncached(base_ + HwIcap::kCr, HwIcap::kCrWrite);
  if (auto st = icap_done(static_cast<u32>(request.size())); !ok(st)) {
    return st;
  }

  // Capture: SZ words into the read FIFO, drained via RF.
  usize got = 0;
  while (got < out.size()) {
    const u32 chunk = std::min<u32>(static_cast<u32>(out.size() - got), 128);
    cpu_.store32_uncached(base_ + HwIcap::kSz, chunk);
    cpu_.store32_uncached(base_ + HwIcap::kCr, HwIcap::kCrRead);
    for (u32 i = 0; i < chunk; ++i) {
      cpu_.spend_loop_overhead();
      bool ready = false;
      for (u32 poll = 0; poll < timeouts_.rfo_poll_iters; ++poll) {
        if (cpu_.load32_uncached(base_ + HwIcap::kRfo) != 0) {
          ready = true;
          break;
        }
      }
      if (!ready) return Status::kTimeout;
      out[got++] = cpu_.load32_uncached(base_ + HwIcap::kRf);
    }
    if (auto st = icap_done(chunk); !ok(st)) return st;
  }

  // Trailer: desynchronize the port again.
  const auto trailer = bitstream::build_readback_trailer();
  for (const u32 w : trailer) {
    cpu_.store32_uncached(base_ + HwIcap::kWf, w);
  }
  cpu_.store32_uncached(base_ + HwIcap::kCr, HwIcap::kCrWrite);
  return icap_done(static_cast<u32>(trailer.size()));
}

Status HwIcapDriver::init_reconfig_process(const ReconfigModule& m,
                                           bool hold_decoupled) {
  const u64 t0 = timer_.read_mtime();
  decouple_accel(true);
  init_icap();
  const Status st = reconfigure_RP(m.start_address, m.pbit_size);
  if (!hold_decoupled) decouple_accel(false);
  const u64 t1 = timer_.read_mtime();
  timing_.reconfig_ticks = t1 - t0;
  return st;
}

}  // namespace rvcap::driver
