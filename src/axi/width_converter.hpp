// AXI data-width converter, 64-bit upstream -> 32-bit downstream.
//
// Fig. 2 component 2 / §III-C: the Ariane SoC bus is 64-bit while the
// Xilinx DMA control port and the AXI_HWICAP are 32-bit, so a width
// converter sits in front of them. Data lanes are addressed (AXI
// convention): a 32-bit access at an addr with bit 2 set travels in bits
// [63:32] upstream and in the single 32-bit lane downstream.
//
// Only single-beat transactions traverse this component in the SoC (CPU
// MMIO to control registers); bursts are rejected with SLVERR, which is
// also what a real converter configured without burst splitting does.
#pragma once

#include <deque>

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class WidthConverter64To32 : public sim::Component {
 public:
  explicit WidthConverter64To32(std::string name);

  /// Link facing the 64-bit bus (this component is the subordinate).
  AxiPort& upstream() { return up_; }
  /// Link facing the 32-bit device (this component is the manager).
  AxiPort& downstream() { return down_; }

  bool tick() override;
  bool busy() const override;

 private:
  struct PendingRead {
    Addr addr;
    u8 halves_left;   // 1 for a 32-bit access, 2 for a 64-bit access
    u8 halves_total;
    u64 assembled = 0;
    Resp worst = Resp::kOkay;
  };
  struct PendingWrite {
    u8 halves_left;
    Resp worst = Resp::kOkay;
  };

  AxiPort up_;
  AxiPort down_;
  std::deque<PendingRead> reads_;
  std::deque<PendingWrite> writes_;
  bool aw_taken_ = false;  // AW consumed, waiting for the W beat
  AxiAw cur_aw_{};
};

}  // namespace rvcap::axi
