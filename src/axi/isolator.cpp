#include "axi/isolator.hpp"

namespace rvcap::axi {

AxisIsolator::AxisIsolator(std::string name) : Component(std::move(name)) {}

void AxisIsolator::tick() {
  if (in_to_rp_.can_pop()) {
    if (decoupled_) {
      in_to_rp_.pop();
      ++dropped_;
    } else if (out_to_rp_.can_push()) {
      out_to_rp_.push(*in_to_rp_.pop());
    }
  }
  if (in_from_rp_.can_pop()) {
    if (decoupled_) {
      in_from_rp_.pop();
      ++dropped_;
    } else if (out_from_rp_.can_push()) {
      out_from_rp_.push(*in_from_rp_.pop());
    }
  }
}

bool AxisIsolator::busy() const {
  return in_to_rp_.can_pop() || in_from_rp_.can_pop();
}

}  // namespace rvcap::axi
