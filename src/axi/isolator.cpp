#include "axi/isolator.hpp"

namespace rvcap::axi {

AxisIsolator::AxisIsolator(std::string name) : Component(std::move(name)) {
  in_to_rp_.watch(this);
  out_to_rp_.watch(this);
  in_from_rp_.watch(this);
  out_from_rp_.watch(this);
}

bool AxisIsolator::tick() {
  bool progress = false;
  if (in_to_rp_.can_pop()) {
    if (decoupled_) {
      in_to_rp_.pop();
      ++dropped_;
      progress = true;
    } else if (out_to_rp_.can_push()) {
      out_to_rp_.push(*in_to_rp_.pop());
      progress = true;
    }
  }
  if (in_from_rp_.can_pop()) {
    if (decoupled_) {
      in_from_rp_.pop();
      ++dropped_;
      progress = true;
    } else if (out_from_rp_.can_push()) {
      out_from_rp_.push(*in_from_rp_.pop());
      progress = true;
    }
  }
  return progress;
}

bool AxisIsolator::busy() const {
  return in_to_rp_.can_pop() || in_from_rp_.can_pop();
}

}  // namespace rvcap::axi
