#include "axi/stream_switch.hpp"

namespace rvcap::axi {

AxisSwitch::AxisSwitch(std::string name) : Component(std::move(name)) {}

void AxisSwitch::tick() {
  // Forward path: one beat per cycle toward the selected sink.
  if (from_dma_.can_pop()) {
    AxisFifo& sink = select_icap_ ? to_icap_ : to_rm_;
    if (sink.can_push()) sink.push(*from_dma_.pop());
  }
  // Return path: acceleration mode takes the RM output; in
  // reconfiguration mode the S2MM side carries ICAP readback data and
  // the RM output is parked (the RM is being swapped anyway).
  if (select_icap_) {
    if (from_icap_.can_pop() && to_dma_.can_push()) {
      to_dma_.push(*from_icap_.pop());
    }
  } else if (from_rm_.can_pop() && to_dma_.can_push()) {
    to_dma_.push(*from_rm_.pop());
  }
}

bool AxisSwitch::busy() const {
  return from_dma_.can_pop() || (!select_icap_ && from_rm_.can_pop()) ||
         (select_icap_ && from_icap_.can_pop());
}

}  // namespace rvcap::axi
