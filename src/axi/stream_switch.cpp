#include "axi/stream_switch.hpp"

namespace rvcap::axi {

AxisSwitch::AxisSwitch(std::string name) : Component(std::move(name)) {
  from_dma_.watch(this);
  to_icap_.watch(this);
  to_rm_.watch(this);
  from_rm_.watch(this);
  from_icap_.watch(this);
  to_dma_.watch(this);
}

bool AxisSwitch::tick() {
  bool progress = false;
  // Forward path: one beat per cycle toward the selected sink.
  if (from_dma_.can_pop()) {
    AxisFifo& sink = select_icap_ ? to_icap_ : to_rm_;
    if (sink.can_push()) {
      sink.push(*from_dma_.pop());
      progress = true;
    }
  }
  // Return path: acceleration mode takes the RM output; in
  // reconfiguration mode the S2MM side carries ICAP readback data and
  // the RM output is parked (the RM is being swapped anyway).
  if (select_icap_) {
    if (from_icap_.can_pop() && to_dma_.can_push()) {
      to_dma_.push(*from_icap_.pop());
      progress = true;
    }
  } else if (from_rm_.can_pop() && to_dma_.can_push()) {
    to_dma_.push(*from_rm_.pop());
    progress = true;
  }
  return progress;
}

bool AxisSwitch::busy() const {
  return from_dma_.can_pop() || (!select_icap_ && from_rm_.can_pop()) ||
         (select_icap_ && from_icap_.can_pop());
}

}  // namespace rvcap::axi
