// AXI4 -> AXI4-Lite protocol converter (Fig. 2 component 2, §III-C).
//
// Sits after the width converter, so the upstream side already carries
// 32-bit single-beat transactions; the bridge strips burst semantics and
// drives an AXI4-Lite subordinate port. Each direction adds one cycle of
// latency, matching a registered Xilinx protocol-converter instance.
#pragma once

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class AxiToLiteBridge : public sim::Component {
 public:
  explicit AxiToLiteBridge(std::string name);

  AxiPort& upstream() { return up_; }
  AxiLitePort& downstream() { return down_; }

  bool tick() override;
  bool busy() const override;

 private:
  AxiPort up_;
  AxiLitePort down_;
  bool aw_taken_ = false;
  LiteAw cur_aw_{};
};

}  // namespace rvcap::axi
