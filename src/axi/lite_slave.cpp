#include "axi/lite_slave.hpp"

namespace rvcap::axi {

AxiLiteSlave::AxiLiteSlave(std::string name, u32 response_latency)
    : Component(std::move(name)), latency_(response_latency) {
  port_.watch(this);
}

bool AxiLiteSlave::tick() {
  bool progress = device_tick();

  if (const LiteAr* ar = port_.ar.front()) {
    if (read_wait_ < latency_) {
      ++read_wait_;  // latency countdown is observable state
      progress = true;
    } else if (port_.r.can_push()) {
      port_.r.push(LiteR{read_reg(ar->addr), Resp::kOkay});
      port_.ar.pop();
      read_wait_ = 0;
      progress = true;
    }
  }

  const LiteAw* aw = port_.aw.front();
  const LiteW* w = port_.w.front();
  if (aw != nullptr && w != nullptr) {
    if (write_wait_ < latency_) {
      ++write_wait_;
      progress = true;
    } else if (port_.b.can_push()) {
      write_reg(aw->addr, w->data);
      port_.aw.pop();
      port_.w.pop();
      port_.b.push(LiteB{Resp::kOkay});
      write_wait_ = 0;
      progress = true;
    }
  }
  return progress;
}

bool AxiLiteSlave::busy() const { return !port_.idle() || device_busy(); }

}  // namespace rvcap::axi
