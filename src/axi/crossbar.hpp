// 64-bit AXI-4 crossbar — the SoC's main interconnect (Fig. 1) and the
// additional crossbar between the RV-CAP DMA and the DDR controller
// (Fig. 2, component 1).
//
// Routing model: address-decoded, round-robin arbitration per cycle,
// in-order per subordinate. Transaction origin is tracked with internal
// route queues instead of AXI IDs; since every subordinate in the SoC
// responds in order, this is behaviourally equivalent. Unmapped accesses
// get DECERR responses, as the Xilinx crossbar does.
#pragma once

#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class AxiCrossbar : public sim::Component {
 public:
  explicit AxiCrossbar(std::string name);

  /// Register a manager-side link; returns the manager index.
  usize add_manager(AxiPort* port);

  /// Register a subordinate behind an address window.
  /// Throws std::invalid_argument on overlapping windows.
  void add_subordinate(const AddrRange& range, AxiPort* port);

  bool tick() override;
  bool busy() const override;
  void on_register(obs::Observability& o) override;

  /// Count of address-decode failures (DECERR responses generated).
  u64 decode_errors() const { return decode_errors_; }

  /// Cycles manager m spent with an unaccepted AR/AW at the end of a
  /// progressing tick — the interconnect contention metric. Counted
  /// only inside progressing ticks so both kernels agree exactly.
  u64 stall_cycles(usize m) const { return stalls_[m]; }

 private:
  struct ReadRoute {
    usize manager;
    u32 beats_left;
    u32 beats_total;  // burst length, for the retire event
    Addr addr;
    Cycles start;     // AR accept cycle
  };
  struct WriteRoute {
    usize manager;
    u32 beats;
    Addr addr;
    Cycles start;     // AW accept cycle
  };
  struct ActiveWrite {
    usize sub;           // target subordinate index
    u32 beats_left;      // W beats still to forward
    bool to_error_sink;  // unmapped: swallow beats, answer DECERR
  };
  struct ErrorRead {
    u32 beats_left;  // DECERR R beats still owed to the manager
  };

  std::optional<usize> decode(Addr a) const;
  bool arbitrate_ar();
  bool arbitrate_aw();
  bool forward_w();
  bool return_r();
  bool return_b();
  bool drain_error_reads();

  std::vector<AxiPort*> managers_;
  std::vector<AddrRange> ranges_;
  std::vector<AxiPort*> subs_;

  // Per-subordinate queues of outstanding transactions (oldest first).
  std::vector<std::deque<ReadRoute>> read_routes_;
  std::vector<std::deque<WriteRoute>> write_routes_;
  // Per-manager in-progress write burst; AXI forbids interleaving W
  // beats of different bursts from one manager, so one slot suffices.
  std::vector<std::optional<ActiveWrite>> active_writes_;
  std::vector<std::deque<ErrorRead>> error_reads_;   // per manager
  std::vector<u32> pending_error_b_;                 // per manager

  usize rr_ar_ = 0;  // round-robin pointers
  usize rr_aw_ = 0;
  u64 decode_errors_ = 0;
  std::vector<u64> stalls_;  // per manager
};

}  // namespace rvcap::axi
