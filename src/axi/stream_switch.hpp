// AXI-Stream switch (Fig. 2 component 4).
//
// Selects whether the RV-CAP controller operates in *reconfiguration
// mode* (DMA read stream -> AXIS2ICAP -> ICAP) or *acceleration mode*
// (DMA read stream -> reconfigurable module, RM output -> DMA write
// stream). The select input is driven by the RP control interface's
// select_ICAP register, exactly as in Listing 1.
#pragma once

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class AxisSwitch : public sim::Component {
 public:
  explicit AxisSwitch(std::string name);

  /// true = reconfiguration mode (route to ICAP), false = acceleration.
  void set_select_icap(bool s) {
    select_icap_ = s;
    wake();
    select_watchers_.notify();  // gated neighbours re-evaluate routing
  }
  bool select_icap() const { return select_icap_; }

  /// Wake `c` whenever the select input changes (components whose tick
  /// reads select_icap() but no FIFO of the switch, e.g. ICAP2AXIS).
  void watch_select(sim::Component* c) { select_watchers_.add(c); }

  AxisFifo& from_dma() { return from_dma_; }   // DMA MM2S output
  AxisFifo& to_icap() { return to_icap_; }     // toward AXIS2ICAP
  AxisFifo& to_rm() { return to_rm_; }         // toward the RM input
  AxisFifo& from_rm() { return from_rm_; }     // RM output
  AxisFifo& from_icap() { return from_icap_; } // ICAP2AXIS readback data
  AxisFifo& to_dma() { return to_dma_; }       // DMA S2MM input

  bool tick() override;
  bool busy() const override;

 private:
  sim::WakeList select_watchers_;
  bool select_icap_ = false;
  AxisFifo from_dma_{4};
  AxisFifo to_icap_{4};
  AxisFifo to_rm_{4};
  AxisFifo from_rm_{4};
  AxisFifo from_icap_{4};
  AxisFifo to_dma_{4};
};

}  // namespace rvcap::axi
