// AXI isolation interface ("PR decoupler") between a reconfigurable
// partition and the static region (Fig. 1).
//
// While a partial bitstream is being written, the RP's logic toggles
// arbitrarily; the isolator clamps its interfaces so glitches cannot
// propagate into the static SoC. Decoupled stream traffic is dropped
// (the fabric drives constants on the static side) and this is counted,
// so tests can assert that reconfiguration without decoupling leaks
// beats while the paper's documented flow does not.
#pragma once

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class AxisIsolator : public sim::Component {
 public:
  explicit AxisIsolator(std::string name);

  void set_decoupled(bool d) {
    decoupled_ = d;
    wake();  // mode change can unblock parked beats
  }
  bool decoupled() const { return decoupled_; }

  /// static-region side -> RP side
  AxisFifo& in_to_rp() { return in_to_rp_; }
  AxisFifo& out_to_rp() { return out_to_rp_; }
  /// RP side -> static-region side
  AxisFifo& in_from_rp() { return in_from_rp_; }
  AxisFifo& out_from_rp() { return out_from_rp_; }

  u64 dropped_beats() const { return dropped_; }

  bool tick() override;
  bool busy() const override;

 private:
  bool decoupled_ = false;
  u64 dropped_ = 0;
  AxisFifo in_to_rp_{4};     // accepts beats from the static side
  AxisFifo out_to_rp_{4};    // delivers beats into the RP
  AxisFifo in_from_rp_{4};   // accepts beats from the RP
  AxisFifo out_from_rp_{4};  // delivers beats to the static side
};

}  // namespace rvcap::axi
