#include "axi/width_converter.hpp"

namespace rvcap::axi {

namespace {
Resp worse(Resp a, Resp b) {
  return static_cast<u8>(a) >= static_cast<u8>(b) ? a : b;
}
}  // namespace

WidthConverter64To32::WidthConverter64To32(std::string name)
    : Component(std::move(name)) {
  up_.watch(this);
  down_.watch(this);
}

bool WidthConverter64To32::tick() {
  bool progress = false;
  // --- read request path: split one upstream AR into 1..2 downstream ARs.
  if (const AxiAr* ar = up_.ar.front()) {
    if (ar->len != 0) {
      if (up_.r.can_push()) {
        up_.r.push(AxiR{0, Resp::kSlvErr, true});
        up_.ar.pop();
        progress = true;
      }
    } else {
      const u8 halves = (ar->size >= 3) ? 2 : 1;
      if (down_.ar.vacancy() >= halves) {
        const Addr base = ar->addr & ~Addr{7};
        if (halves == 2) {
          down_.ar.push(AxiAr{base, 0, 2});
          down_.ar.push(AxiAr{base + 4, 0, 2});
          reads_.push_back(PendingRead{base, 2, 2});
        } else {
          const Addr a = ar->addr & ~Addr{3};
          down_.ar.push(AxiAr{a, 0, 2});
          reads_.push_back(PendingRead{a, 1, 1});
        }
        up_.ar.pop();
        progress = true;
      }
    }
  }

  // --- read response path: assemble downstream R halves into one beat.
  if (const AxiR* r = down_.r.front()) {
    PendingRead& p = reads_.front();
    const u8 idx = p.halves_total - p.halves_left;  // 0 = first half
    const bool high_lane =
        (p.halves_total == 2) ? (idx == 1) : ((p.addr & 4) != 0);
    p.assembled |= (r->data & 0xFFFFFFFFULL) << (high_lane ? 32 : 0);
    p.worst = worse(p.worst, r->resp);
    down_.r.pop();
    progress = true;
    if (--p.halves_left == 0) {
      if (up_.r.can_push()) {
        up_.r.push(AxiR{p.assembled, p.worst, true});
        reads_.pop_front();
      } else {
        ++p.halves_left;  // retry the completion next cycle
        p.assembled &= high_lane ? 0xFFFFFFFFULL : ~0xFFFFFFFFULL;
      }
    }
  }

  // --- write request path.
  if (!aw_taken_) {
    if (const AxiAw* aw = up_.aw.front()) {
      if (aw->len != 0) {
        if (up_.b.can_push()) {
          up_.b.push(AxiB{Resp::kSlvErr});
          up_.aw.pop();
          progress = true;
        }
      } else {
        cur_aw_ = *aw;
        up_.aw.pop();
        aw_taken_ = true;
        progress = true;
      }
    }
  }
  if (aw_taken_) {
    if (const AxiW* w = up_.w.front()) {
      const bool lo = (w->strb & 0x0F) != 0;
      const bool hi = (w->strb & 0xF0) != 0;
      const u8 halves = static_cast<u8>(lo) + static_cast<u8>(hi);
      if (halves == 0) {
        // Strobe-less write: complete immediately with OKAY.
        if (up_.b.can_push()) {
          up_.b.push(AxiB{Resp::kOkay});
          up_.w.pop();
          aw_taken_ = false;
          progress = true;
        }
      } else if (down_.aw.vacancy() >= halves && down_.w.vacancy() >= halves) {
        const Addr base = cur_aw_.addr & ~Addr{7};
        if (lo) {
          down_.aw.push(AxiAw{base, 0, 2});
          down_.w.push(AxiW{w->data & 0xFFFFFFFFULL,
                            static_cast<u8>(w->strb & 0x0F), true});
        }
        if (hi) {
          down_.aw.push(AxiAw{base + 4, 0, 2});
          down_.w.push(
              AxiW{(w->data >> 32) & 0xFFFFFFFFULL,
                   static_cast<u8>((w->strb >> 4) & 0x0F), true});
        }
        writes_.push_back(PendingWrite{halves});
        up_.w.pop();
        aw_taken_ = false;
        progress = true;
      }
    }
  }

  // --- write response path: merge downstream Bs.
  if (const AxiB* b = down_.b.front()) {
    PendingWrite& p = writes_.front();
    p.worst = worse(p.worst, b->resp);
    if (p.halves_left == 1) {
      if (up_.b.can_push()) {
        up_.b.push(AxiB{p.worst});
        down_.b.pop();
        writes_.pop_front();
        progress = true;
      }
      // A blocked completion only re-merges the same worst-of resp —
      // idempotent, so it is not progress; the up_.b pop wakes us.
    } else {
      --p.halves_left;
      down_.b.pop();
      progress = true;
    }
  }
  return progress;
}

bool WidthConverter64To32::busy() const {
  return !reads_.empty() || !writes_.empty() || aw_taken_ || !up_.idle() ||
         !down_.idle();
}

}  // namespace rvcap::axi
