// Channel movers ("wires") joining ports owned by different components.
//
// Every component owns its own FIFO ports; where two owned ports face
// each other, a wire shuttles beats across at one per channel per
// cycle, like a registered link. Wires are the explicit interconnect
// glue of the SoC assembly. Each wire watches both of its endpoints so
// it wakes the cycle a beat lands on either side.
#pragma once

#include "axi/types.hpp"
#include "obs/observability.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

/// AXI-Stream link: from -> to.
class AxisWire : public sim::Component {
 public:
  AxisWire(std::string name, AxisFifo& from, AxisFifo& to)
      : Component(std::move(name)), from_(from), to_(to) {
    from_.watch(this);
    to_.watch(this);
  }

  bool tick() override {
    if (from_.can_pop() && to_.can_push()) {
      const AxisBeat b = *from_.pop();
      to_.push(b);
      ++beats_;
      RVCAP_TRACE(trace_sink(), obs::EventKind::kAxisBeat, trace_src(),
                  sim_now(), b.data & 0xFFFFFFFF, b.last ? 1 : 0);
      return true;
    }
    return false;
  }
  bool busy() const override { return from_.can_pop(); }

  void on_register(obs::Observability& o) override {
    o.counters().register_fn(std::string(name()) + ".beats",
                             [this] { return beats_; });
  }

  u64 beats_moved() const { return beats_; }

 private:
  AxisFifo& from_;
  AxisFifo& to_;
  u64 beats_ = 0;
};

/// Full AXI link between a manager-facing and a subordinate-facing port:
/// requests flow a->b, responses b->a.
class AxiWire : public sim::Component {
 public:
  AxiWire(std::string name, AxiPort& a, AxiPort& b)
      : Component(std::move(name)), a_(a), b_(b) {
    a_.watch(this);
    b_.watch(this);
  }

  bool tick() override {
    bool moved = false;
    if (a_.ar.can_pop() && b_.ar.can_push()) {
      b_.ar.push(*a_.ar.pop());
      moved = true;
    }
    if (a_.aw.can_pop() && b_.aw.can_push()) {
      b_.aw.push(*a_.aw.pop());
      moved = true;
    }
    if (a_.w.can_pop() && b_.w.can_push()) {
      b_.w.push(*a_.w.pop());
      moved = true;
    }
    if (b_.r.can_pop() && a_.r.can_push()) {
      a_.r.push(*b_.r.pop());
      moved = true;
    }
    if (b_.b.can_pop() && a_.b.can_push()) {
      a_.b.push(*b_.b.pop());
      moved = true;
    }
    return moved;
  }
  bool busy() const override {
    return a_.ar.can_pop() || a_.aw.can_pop() || a_.w.can_pop() ||
           b_.r.can_pop() || b_.b.can_pop();
  }

 private:
  AxiPort& a_;
  AxiPort& b_;
};

/// AXI4-Lite link, same direction convention as AxiWire.
class LiteWire : public sim::Component {
 public:
  LiteWire(std::string name, AxiLitePort& a, AxiLitePort& b)
      : Component(std::move(name)), a_(a), b_(b) {
    a_.watch(this);
    b_.watch(this);
  }

  bool tick() override {
    bool moved = false;
    if (a_.ar.can_pop() && b_.ar.can_push()) {
      b_.ar.push(*a_.ar.pop());
      moved = true;
    }
    if (a_.aw.can_pop() && b_.aw.can_push()) {
      b_.aw.push(*a_.aw.pop());
      moved = true;
    }
    if (a_.w.can_pop() && b_.w.can_push()) {
      b_.w.push(*a_.w.pop());
      moved = true;
    }
    if (b_.r.can_pop() && a_.r.can_push()) {
      a_.r.push(*b_.r.pop());
      moved = true;
    }
    if (b_.b.can_pop() && a_.b.can_push()) {
      a_.b.push(*b_.b.pop());
      moved = true;
    }
    return moved;
  }
  bool busy() const override {
    return a_.ar.can_pop() || a_.aw.can_pop() || a_.w.can_pop() ||
           b_.r.can_pop() || b_.b.can_pop();
  }

 private:
  AxiLitePort& a_;
  AxiLitePort& b_;
};

}  // namespace rvcap::axi
