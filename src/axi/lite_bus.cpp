#include "axi/lite_bus.hpp"

#include <stdexcept>

namespace rvcap::axi {

LiteBus::LiteBus(std::string name) : Component(std::move(name)) {
  up_.watch(this);
}

void LiteBus::add_device(const AddrRange& range, AxiLitePort* port) {
  for (const auto& r : ranges_) {
    if (r.overlaps(range)) {
      throw std::invalid_argument("LiteBus: overlapping window");
    }
  }
  port->watch(this);
  ranges_.push_back(range);
  devs_.push_back(port);
}

std::optional<usize> LiteBus::decode(Addr a) const {
  for (usize i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].contains(a)) return i;
  }
  return std::nullopt;
}

bool LiteBus::tick() {
  bool progress = false;
  // Requests.
  if (const LiteAr* ar = up_.ar.front()) {
    if (auto d = decode(ar->addr); d.has_value()) {
      if (devs_[*d]->ar.can_push()) {
        devs_[*d]->ar.push(*ar);
        read_route_.push_back(*d);
        up_.ar.pop();
        progress = true;
      }
    } else {
      ++decode_errors_;
      read_route_.push_back(kErrDev);
      up_.ar.pop();
      progress = true;
    }
  }
  const LiteAw* aw = up_.aw.front();
  const LiteW* w = up_.w.front();
  if (aw != nullptr && w != nullptr) {
    if (auto d = decode(aw->addr); d.has_value()) {
      if (devs_[*d]->aw.can_push() && devs_[*d]->w.can_push()) {
        devs_[*d]->aw.push(*aw);
        devs_[*d]->w.push(*w);
        write_route_.push_back(*d);
        up_.aw.pop();
        up_.w.pop();
        progress = true;
      }
    } else {
      ++decode_errors_;
      write_route_.push_back(kErrDev);
      up_.aw.pop();
      up_.w.pop();
      progress = true;
    }
  }
  // Responses (in request order; every device answers in order).
  if (!read_route_.empty() && up_.r.can_push()) {
    const usize d = read_route_.front();
    if (d == kErrDev) {
      up_.r.push(LiteR{0, Resp::kDecErr});
      read_route_.pop_front();
      progress = true;
    } else if (devs_[d]->r.can_pop()) {
      up_.r.push(*devs_[d]->r.pop());
      read_route_.pop_front();
      progress = true;
    }
  }
  if (!write_route_.empty() && up_.b.can_push()) {
    const usize d = write_route_.front();
    if (d == kErrDev) {
      up_.b.push(LiteB{Resp::kDecErr});
      write_route_.pop_front();
      progress = true;
    } else if (devs_[d]->b.can_pop()) {
      up_.b.push(*devs_[d]->b.pop());
      write_route_.pop_front();
      progress = true;
    }
  }
  return progress;
}

bool LiteBus::busy() const {
  return !read_route_.empty() || !write_route_.empty() || !up_.idle();
}

}  // namespace rvcap::axi
