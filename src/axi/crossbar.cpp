#include "axi/crossbar.hpp"

#include "common/log.hpp"
#include "obs/observability.hpp"

namespace rvcap::axi {

AxiCrossbar::AxiCrossbar(std::string name) : Component(std::move(name)) {}

usize AxiCrossbar::add_manager(AxiPort* port) {
  port->watch(this);
  managers_.push_back(port);
  active_writes_.emplace_back();
  error_reads_.emplace_back();
  pending_error_b_.push_back(0);
  stalls_.push_back(0);
  return managers_.size() - 1;
}

void AxiCrossbar::on_register(obs::Observability& o) {
  const std::string prefix(name());
  obs::CounterRegistry& c = o.counters();
  c.register_fn(prefix + ".decode_errors", [this] { return decode_errors_; });
  for (usize m = 0; m < managers_.size(); ++m) {
    c.register_fn(prefix + ".m" + std::to_string(m) + ".stall_cycles",
                  [this, m] { return stalls_[m]; });
  }
}

void AxiCrossbar::add_subordinate(const AddrRange& range, AxiPort* port) {
  for (const auto& r : ranges_) {
    if (r.overlaps(range)) {
      throw std::invalid_argument("AxiCrossbar: overlapping address window");
    }
  }
  port->watch(this);
  ranges_.push_back(range);
  subs_.push_back(port);
  read_routes_.emplace_back();
  write_routes_.emplace_back();
}

std::optional<usize> AxiCrossbar::decode(Addr a) const {
  for (usize i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].contains(a)) return i;
  }
  return std::nullopt;
}

bool AxiCrossbar::tick() {
  // Response paths first so a beat freed this cycle can be refilled by
  // the subordinate next cycle (keeps the pipe full at 1 beat/cycle).
  bool progress = return_r();
  progress |= return_b();
  progress |= drain_error_reads();
  progress |= forward_w();
  progress |= arbitrate_ar();
  progress |= arbitrate_aw();
  if (progress) {
    // Contention census, gated on progress so skipped (provably no-op)
    // ticks under the scheduled kernel never desynchronise the counts:
    // a manager whose request is still unaccepted after arbitration
    // lost this cycle to another master or to subordinate back-pressure.
    for (usize m = 0; m < managers_.size(); ++m) {
      if (managers_[m]->ar.front() != nullptr ||
          (managers_[m]->aw.front() != nullptr &&
           !active_writes_[m].has_value())) {
        ++stalls_[m];
      }
    }
  }
  return progress;
}

bool AxiCrossbar::arbitrate_ar() {
  const usize n = managers_.size();
  for (usize k = 0; k < n; ++k) {
    const usize m = (rr_ar_ + k) % n;
    const AxiAr* ar = managers_[m]->ar.front();
    if (ar == nullptr) continue;
    auto sub = decode(ar->addr);
    if (!sub) {
      // Unmapped read: owe the manager len+1 DECERR beats.
      ++decode_errors_;
      log_warn("axi: decode error on read addr=0x", std::hex, ar->addr);
      error_reads_[m].push_back(ErrorRead{u32{ar->len} + 1});
      managers_[m]->ar.pop();
      rr_ar_ = (m + 1) % n;
      return true;  // one AR accepted per cycle (shared decode stage)
    }
    if (!subs_[*sub]->ar.can_push()) continue;
    subs_[*sub]->ar.push(*ar);
    read_routes_[*sub].push_back(
        ReadRoute{m, u32{ar->len} + 1, u32{ar->len} + 1, ar->addr, sim_now()});
    managers_[m]->ar.pop();
    rr_ar_ = (m + 1) % n;
    return true;
  }
  return false;
}

bool AxiCrossbar::arbitrate_aw() {
  const usize n = managers_.size();
  for (usize k = 0; k < n; ++k) {
    const usize m = (rr_aw_ + k) % n;
    if (active_writes_[m].has_value()) continue;  // burst in flight
    const AxiAw* aw = managers_[m]->aw.front();
    if (aw == nullptr) continue;
    auto sub = decode(aw->addr);
    if (!sub) {
      ++decode_errors_;
      log_warn("axi: decode error on write addr=0x", std::hex, aw->addr);
      active_writes_[m] = ActiveWrite{0, u32{aw->len} + 1, true};
      managers_[m]->aw.pop();
      rr_aw_ = (m + 1) % n;
      return true;
    }
    if (!subs_[*sub]->aw.can_push()) continue;
    subs_[*sub]->aw.push(*aw);
    write_routes_[*sub].push_back(
        WriteRoute{m, u32{aw->len} + 1, aw->addr, sim_now()});
    active_writes_[m] = ActiveWrite{*sub, u32{aw->len} + 1, false};
    managers_[m]->aw.pop();
    rr_aw_ = (m + 1) % n;
    return true;
  }
  return false;
}

bool AxiCrossbar::forward_w() {
  bool progress = false;
  for (usize m = 0; m < managers_.size(); ++m) {
    auto& active = active_writes_[m];
    if (!active.has_value()) continue;
    const AxiW* w = managers_[m]->w.front();
    if (w == nullptr) continue;
    if (active->to_error_sink) {
      managers_[m]->w.pop();
      progress = true;
      if (--active->beats_left == 0) {
        ++pending_error_b_[m];
        active.reset();
      }
      continue;
    }
    AxiPort* sub = subs_[active->sub];
    if (!sub->w.can_push()) continue;
    sub->w.push(*w);
    managers_[m]->w.pop();
    progress = true;
    if (--active->beats_left == 0) active.reset();
  }
  return progress;
}

bool AxiCrossbar::return_r() {
  bool progress = false;
  for (usize s = 0; s < subs_.size(); ++s) {
    if (read_routes_[s].empty()) continue;
    const AxiR* r = subs_[s]->r.front();
    if (r == nullptr) continue;
    ReadRoute& route = read_routes_[s].front();
    AxiPort* mgr = managers_[route.manager];
    if (!mgr->r.can_push()) continue;
    mgr->r.push(*r);
    const bool last = r->last;  // r points into the FIFO; pop() frees it
    subs_[s]->r.pop();
    progress = true;
    if (--route.beats_left == 0 || last) {
      RVCAP_TRACE(trace_sink(), obs::EventKind::kAxiRead, trace_src(),
                  sim_now(), route.addr, route.beats_total,
                  sim_now() - route.start + 1);
      read_routes_[s].pop_front();
    }
  }
  return progress;
}

bool AxiCrossbar::return_b() {
  bool progress = false;
  for (usize s = 0; s < subs_.size(); ++s) {
    if (write_routes_[s].empty()) continue;
    const AxiB* b = subs_[s]->b.front();
    if (b == nullptr) continue;
    const WriteRoute& route = write_routes_[s].front();
    AxiPort* mgr = managers_[route.manager];
    if (!mgr->b.can_push()) continue;
    mgr->b.push(*b);
    subs_[s]->b.pop();
    RVCAP_TRACE(trace_sink(), obs::EventKind::kAxiWrite, trace_src(),
                sim_now(), route.addr, route.beats,
                sim_now() - route.start + 1);
    write_routes_[s].pop_front();
    progress = true;
  }
  return progress;
}

bool AxiCrossbar::drain_error_reads() {
  bool progress = false;
  for (usize m = 0; m < managers_.size(); ++m) {
    if (pending_error_b_[m] > 0 && managers_[m]->b.can_push()) {
      managers_[m]->b.push(AxiB{Resp::kDecErr});
      --pending_error_b_[m];
      progress = true;
    }
    if (error_reads_[m].empty()) continue;
    ErrorRead& er = error_reads_[m].front();
    if (!managers_[m]->r.can_push()) continue;
    managers_[m]->r.push(AxiR{0, Resp::kDecErr, er.beats_left == 1});
    progress = true;
    if (--er.beats_left == 0) error_reads_[m].pop_front();
  }
  return progress;
}

bool AxiCrossbar::busy() const {
  for (const auto& q : read_routes_)
    if (!q.empty()) return true;
  for (const auto& q : write_routes_)
    if (!q.empty()) return true;
  for (const auto& a : active_writes_)
    if (a.has_value()) return true;
  for (const auto& q : error_reads_)
    if (!q.empty()) return true;
  for (u32 p : pending_error_b_)
    if (p != 0) return true;
  return false;
}

}  // namespace rvcap::axi
