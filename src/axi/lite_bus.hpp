// AXI4-Lite demux: routes one upstream lite link to N peripheral ports
// by address window (the "peripheral bus" behind a width/protocol
// converter chain).
#pragma once

#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class LiteBus : public sim::Component {
 public:
  explicit LiteBus(std::string name);

  AxiLitePort& upstream() { return up_; }
  void add_device(const AddrRange& range, AxiLitePort* port);

  bool tick() override;
  bool busy() const override;

  u64 decode_errors() const { return decode_errors_; }

 private:
  std::optional<usize> decode(Addr a) const;

  AxiLitePort up_;
  std::vector<AddrRange> ranges_;
  std::vector<AxiLitePort*> devs_;
  std::deque<usize> read_route_;   // device index per outstanding read
  std::deque<usize> write_route_;  // device index per outstanding write
  static constexpr usize kErrDev = ~usize{0};
  u64 decode_errors_ = 0;
};

}  // namespace rvcap::axi
