#include "axi/lite_bridge.hpp"

namespace rvcap::axi {

AxiToLiteBridge::AxiToLiteBridge(std::string name)
    : Component(std::move(name)) {
  up_.watch(this);
  down_.watch(this);
}

bool AxiToLiteBridge::tick() {
  bool progress = false;
  // Read request.
  if (const AxiAr* ar = up_.ar.front()) {
    if (ar->len != 0) {
      if (up_.r.can_push()) {
        up_.r.push(AxiR{0, Resp::kSlvErr, true});
        up_.ar.pop();
        progress = true;
      }
    } else if (down_.ar.can_push()) {
      down_.ar.push(LiteAr{ar->addr});
      up_.ar.pop();
      progress = true;
    }
  }
  // Read response.
  if (const LiteR* r = down_.r.front()) {
    if (up_.r.can_push()) {
      up_.r.push(AxiR{u64{r->data}, r->resp, true});
      down_.r.pop();
      progress = true;
    }
  }
  // Write request: pair AW with its single W beat.
  if (!aw_taken_) {
    if (const AxiAw* aw = up_.aw.front()) {
      if (aw->len != 0) {
        if (up_.b.can_push()) {
          up_.b.push(AxiB{Resp::kSlvErr});
          up_.aw.pop();
          progress = true;
        }
      } else {
        cur_aw_ = LiteAw{aw->addr};
        up_.aw.pop();
        aw_taken_ = true;
        progress = true;
      }
    }
  }
  if (aw_taken_) {
    if (const AxiW* w = up_.w.front()) {
      if (down_.aw.can_push() && down_.w.can_push()) {
        down_.aw.push(cur_aw_);
        down_.w.push(LiteW{static_cast<u32>(w->data & 0xFFFFFFFFULL),
                           static_cast<u8>(w->strb & 0x0F)});
        up_.w.pop();
        aw_taken_ = false;
        progress = true;
      }
    }
  }
  // Write response.
  if (const LiteB* b = down_.b.front()) {
    if (up_.b.can_push()) {
      up_.b.push(AxiB{b->resp});
      down_.b.pop();
      progress = true;
    }
  }
  return progress;
}

bool AxiToLiteBridge::busy() const {
  return aw_taken_ || !up_.idle() || !down_.idle();
}

}  // namespace rvcap::axi
