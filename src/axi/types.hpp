// AXI4 / AXI4-Lite / AXI4-Stream beat-level types.
//
// The model keeps the channel structure of AXI (5 memory-mapped channels,
// valid/ready per channel) but drops fields that do not affect the
// paper's measurements: IDs (routing tables in the crossbar track
// transaction origin instead), QoS, cache hints, and exclusive accesses.
// Bursts are INCR-only, which is what both the Xilinx AXI DMA and the
// CPU's single-beat accesses generate.
#pragma once

#include "common/types.hpp"
#include "sim/fifo.hpp"

namespace rvcap::axi {

enum class Resp : u8 {
  kOkay = 0,
  kSlvErr = 2,  // subordinate signalled an error
  kDecErr = 3,  // address decode error (unmapped)
};

/// Read-address channel beat. len is beats-1 (AXI ARLEN encoding);
/// size is log2(bytes per beat).
struct AxiAr {
  Addr addr = 0;
  u8 len = 0;
  u8 size = 3;  // default 64-bit beats
};

/// Write-address channel beat.
struct AxiAw {
  Addr addr = 0;
  u8 len = 0;
  u8 size = 3;
};

/// Write-data channel beat.
struct AxiW {
  u64 data = 0;
  u8 strb = 0xFF;
  bool last = true;
};

/// Read-data channel beat.
struct AxiR {
  u64 data = 0;
  Resp resp = Resp::kOkay;
  bool last = true;
};

/// Write-response channel beat.
struct AxiB {
  Resp resp = Resp::kOkay;
};

/// One full-AXI4 link, owned by the link itself (the struct); the
/// manager pushes aw/w/ar and pops r/b, the subordinate does the
/// opposite. FIFO depths model the 2-deep skid buffers of typical AXI
/// register slices plus room for one full max-length data burst.
struct AxiPort {
  explicit AxiPort(usize addr_depth = 2, usize data_depth = 32)
      : aw(addr_depth), w(data_depth), ar(addr_depth), r(data_depth),
        b(addr_depth) {}

  sim::Fifo<AxiAw> aw;
  sim::Fifo<AxiW> w;
  sim::Fifo<AxiAr> ar;
  sim::Fifo<AxiR> r;
  sim::Fifo<AxiB> b;

  /// Wake `c` on any activity on any of the five channels.
  void watch(sim::Component* c) {
    aw.watch(c);
    w.watch(c);
    ar.watch(c);
    r.watch(c);
    b.watch(c);
  }

  bool idle() const {
    return aw.empty() && w.empty() && ar.empty() && r.empty() && b.empty();
  }
};

/// AXI4-Lite link: 32-bit, single-beat, no bursts.
struct LiteAw { Addr addr = 0; };
struct LiteW { u32 data = 0; u8 strb = 0xF; };
struct LiteAr { Addr addr = 0; };
struct LiteR { u32 data = 0; Resp resp = Resp::kOkay; };
struct LiteB { Resp resp = Resp::kOkay; };

struct AxiLitePort {
  explicit AxiLitePort(usize depth = 2)
      : aw(depth), w(depth), ar(depth), r(depth), b(depth) {}

  sim::Fifo<LiteAw> aw;
  sim::Fifo<LiteW> w;
  sim::Fifo<LiteAr> ar;
  sim::Fifo<LiteR> r;
  sim::Fifo<LiteB> b;

  /// Wake `c` on any activity on any of the five channels.
  void watch(sim::Component* c) {
    aw.watch(c);
    w.watch(c);
    ar.watch(c);
    r.watch(c);
    b.watch(c);
  }

  bool idle() const {
    return aw.empty() && w.empty() && ar.empty() && r.empty() && b.empty();
  }
};

/// AXI4-Stream beat: 64-bit data path throughout the SoC (Fig. 2).
struct AxisBeat {
  u64 data = 0;
  u8 keep = 0xFF;
  bool last = false;
};

using AxisFifo = sim::Fifo<AxisBeat>;

/// A contiguous, half-open address window on the bus.
struct AddrRange {
  Addr base = 0;
  u64 size = 0;

  bool contains(Addr a) const { return a >= base && a - base < size; }
  bool overlaps(const AddrRange& o) const {
    return base < o.base + o.size && o.base < base + size;
  }
};

}  // namespace rvcap::axi
