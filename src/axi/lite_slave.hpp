// Helper base for memory-mapped AXI4-Lite register blocks.
//
// CLINT, PLIC, SPI controller, the RV-CAP DMA register file, the RP
// control interface, and the AXI_HWICAP all derive from this: they only
// implement read_reg()/write_reg() on word offsets, and the base class
// handles the channel handshakes with a configurable response latency
// (register blocks in the real SoC answer in 1-2 cycles).
#pragma once

#include <deque>

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::axi {

class AxiLiteSlave : public sim::Component {
 public:
  AxiLiteSlave(std::string name, u32 response_latency = 1);

  AxiLitePort& port() { return port_; }

  bool tick() override;
  bool busy() const override;

 protected:
  /// Offset is relative to the device base (the crossbar routes by
  /// window, devices see full addresses; subclasses mask as needed).
  virtual u32 read_reg(Addr addr) = 0;
  virtual void write_reg(Addr addr, u32 value) = 0;

  /// Subclasses override to advance internal state each cycle; the
  /// return value is the activity contract of Component::tick()
  /// (true iff internal state changed). The default does nothing.
  virtual bool device_tick() { return false; }
  virtual bool device_busy() const { return false; }

 private:
  struct Delayed {
    u32 cycles_left;
  };

  AxiLitePort port_;
  u32 latency_;
  u32 read_wait_ = 0;   // cycles remaining before the head AR is served
  u32 write_wait_ = 0;
};

}  // namespace rvcap::axi
