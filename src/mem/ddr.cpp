#include "mem/ddr.hpp"

#include <cstring>

#include "common/bytes.hpp"

namespace rvcap::mem {

DdrController::DdrController(std::string name, const Config& cfg)
    : Component(std::move(name)), cfg_(cfg) {
  port_.watch(this);
}

u8* DdrController::page_for(Addr addr) {
  const u64 key = addr >> kPageShift;
  auto& p = pages_[key];
  if (!p) {
    p = std::make_unique<Page>();
    p->fill(0);
  }
  return p->data() + (addr & (kPageSize - 1));
}

const u8* DdrController::page_for(Addr addr) const {
  const auto it = pages_.find(addr >> kPageShift);
  if (it == pages_.end()) return nullptr;
  return it->second->data() + (addr & (kPageSize - 1));
}

u64 DdrController::read_beat(Addr addr) const {
  const Addr a = addr & ~Addr{7};
  const u8* p = page_for(a);
  if (p == nullptr) return 0;
  u64 v;
  std::memcpy(&v, p, 8);  // host is little-endian like the SoC
  return v;
}

void DdrController::write_beat(Addr addr, u64 data, u8 strb) {
  const Addr a = addr & ~Addr{7};
  u8* p = page_for(a);
  for (unsigned i = 0; i < 8; ++i) {
    if (strb & (1u << i)) p[i] = static_cast<u8>(data >> (8 * i));
  }
}

bool DdrController::tick() {
  bool progress = false;
  // Accept new requests (address channels are independent of the data bus).
  if (const axi::AxiAr* ar = port_.ar.front()) {
    reads_.push_back(ReadJob{ar->addr, u32{ar->len} + 1, cfg_.read_latency});
    port_.ar.pop();
    progress = true;
  }
  if (const axi::AxiAw* aw = port_.aw.front()) {
    writes_.push_back(WriteJob{aw->addr, u32{aw->len} + 1, cfg_.write_latency});
    port_.aw.pop();
    progress = true;
  }

  // Latency countdowns overlap across queued jobs (pipelined controller);
  // each decrement is observable state, keeping the controller awake
  // while bursts are in flight.
  for (auto& j : reads_) {
    if (j.wait > 0) {
      --j.wait;
      progress = true;
    }
  }
  for (auto& j : writes_) {
    if (j.data_done && j.wait > 0) {
      --j.wait;
      progress = true;
    }
  }

  // Full-duplex data movement: the AXI R and W channels are
  // independent, one beat each per cycle.
  if (!writes_.empty() && !writes_.front().data_done && port_.w.can_pop()) {
    WriteJob& j = writes_.front();
    const axi::AxiW w = *port_.w.pop();
    write_beat(j.addr, w.data, w.strb);
    j.addr += 8;
    ++beats_;
    progress = true;
    if (--j.beats_left == 0) j.data_done = true;
  }
  if (!reads_.empty() && reads_.front().wait == 0 && port_.r.can_push()) {
    ReadJob& j = reads_.front();
    const bool last = (j.beats_left == 1);
    port_.r.push(axi::AxiR{read_beat(j.addr), axi::Resp::kOkay, last});
    j.addr += 8;
    ++beats_;
    progress = true;
    if (--j.beats_left == 0) reads_.pop_front();
  }

  // Write responses (B channel is independent of the data bus).
  if (!writes_.empty()) {
    WriteJob& j = writes_.front();
    if (j.data_done && j.wait == 0 && port_.b.can_push()) {
      port_.b.push(axi::AxiB{axi::Resp::kOkay});
      writes_.pop_front();
      progress = true;
    }
  }
  return progress;
}

bool DdrController::busy() const {
  return !reads_.empty() || !writes_.empty() || !port_.idle();
}

void DdrController::poke(Addr addr, std::span<const u8> data) {
  for (usize i = 0; i < data.size(); ++i) *page_for(addr + i) = data[i];
}

void DdrController::peek(Addr addr, std::span<u8> out) const {
  for (usize i = 0; i < out.size(); ++i) {
    const u8* p = page_for(addr + i);
    out[i] = (p != nullptr) ? *p : 0;
  }
}

u64 DdrController::peek64(Addr addr) const { return read_beat(addr); }

void DdrController::poke64(Addr addr, u64 value) {
  write_beat(addr, value, 0xFF);
}

}  // namespace rvcap::mem
