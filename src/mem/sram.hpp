// On-chip SRAM (boot memory) — single-cycle BRAM-backed AXI subordinate.
//
// The paper's SoC keeps application instructions in on-chip boot memory;
// the reproduction also uses it to hold the RM metadata table that
// init_RModules fills in.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "axi/types.hpp"
#include "sim/component.hpp"

namespace rvcap::mem {

class AxiSram : public sim::Component {
 public:
  /// `bus_base`: the window base the crossbar maps this SRAM at; bus
  /// addresses are translated to internal offsets by subtracting it.
  AxiSram(std::string name, u64 size_bytes, Addr bus_base = 0);

  axi::AxiPort& port() { return port_; }
  u64 size_bytes() const { return data_.size(); }

  bool tick() override;
  bool busy() const override;

  // Backdoor.
  void poke(Addr addr, std::span<const u8> bytes);
  void peek(Addr addr, std::span<u8> out) const;

 private:
  struct ReadJob {
    Addr addr;
    u32 beats_left;
  };
  struct WriteJob {
    Addr addr;
    u32 beats_left;
  };

  u64 read_beat(Addr a) const;
  void write_beat(Addr a, u64 data, u8 strb);

  axi::AxiPort port_;
  Addr bus_base_;
  std::vector<u8> data_;
  std::deque<ReadJob> reads_;
  std::deque<WriteJob> writes_;
  u32 pending_b_ = 0;
};

}  // namespace rvcap::mem
