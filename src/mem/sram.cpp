#include "mem/sram.hpp"

#include <cstring>

namespace rvcap::mem {

AxiSram::AxiSram(std::string name, u64 size_bytes, Addr bus_base)
    : Component(std::move(name)), bus_base_(bus_base),
      data_(size_bytes, 0) {
  port_.watch(this);
}

u64 AxiSram::read_beat(Addr a) const {
  a &= ~Addr{7};
  if (a + 8 > data_.size()) return 0;
  u64 v;
  std::memcpy(&v, data_.data() + a, 8);
  return v;
}

void AxiSram::write_beat(Addr a, u64 data, u8 strb) {
  a &= ~Addr{7};
  if (a + 8 > data_.size()) return;
  for (unsigned i = 0; i < 8; ++i) {
    if (strb & (1u << i)) data_[a + i] = static_cast<u8>(data >> (8 * i));
  }
}

bool AxiSram::tick() {
  bool progress = false;
  if (const axi::AxiAr* ar = port_.ar.front()) {
    // Subordinates see bus addresses; translate to in-window offsets.
    reads_.push_back(
        ReadJob{(ar->addr - bus_base_) % data_.size(), u32{ar->len} + 1});
    port_.ar.pop();
    progress = true;
  }
  if (const axi::AxiAw* aw = port_.aw.front()) {
    writes_.push_back(
        WriteJob{(aw->addr - bus_base_) % data_.size(), u32{aw->len} + 1});
    port_.aw.pop();
    progress = true;
  }
  if (!reads_.empty() && port_.r.can_push()) {
    ReadJob& j = reads_.front();
    port_.r.push(axi::AxiR{read_beat(j.addr), axi::Resp::kOkay,
                           j.beats_left == 1});
    j.addr += 8;
    progress = true;
    if (--j.beats_left == 0) reads_.pop_front();
  }
  if (!writes_.empty() && port_.w.can_pop()) {
    WriteJob& j = writes_.front();
    const axi::AxiW w = *port_.w.pop();
    write_beat(j.addr, w.data, w.strb);
    j.addr += 8;
    progress = true;
    if (--j.beats_left == 0) {
      writes_.pop_front();
      ++pending_b_;
    }
  }
  if (pending_b_ > 0 && port_.b.can_push()) {
    port_.b.push(axi::AxiB{axi::Resp::kOkay});
    --pending_b_;
    progress = true;
  }
  return progress;
}

bool AxiSram::busy() const {
  return !reads_.empty() || !writes_.empty() || pending_b_ > 0 ||
         !port_.idle();
}

void AxiSram::poke(Addr addr, std::span<const u8> bytes) {
  for (usize i = 0; i < bytes.size() && addr + i < data_.size(); ++i) {
    data_[addr + i] = bytes[i];
  }
}

void AxiSram::peek(Addr addr, std::span<u8> out) const {
  for (usize i = 0; i < out.size(); ++i) {
    out[i] = (addr + i < data_.size()) ? data_[addr + i] : 0;
  }
}

}  // namespace rvcap::mem
