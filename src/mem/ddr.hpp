// DDR memory-controller model (Genesys2 DDR3 behind a MIG, 64-bit AXI).
//
// Timing envelope, not per-bank DRAM simulation:
//  * fixed first-access latency per burst (row activation + controller
//    pipeline), with latency countdowns of queued bursts overlapping the
//    data phase of earlier ones — a MIG keeps the data bus saturated on
//    back-to-back sequential bursts, which is what the RV-CAP DMA issues;
//  * full-duplex data movement, as on AXI4: the R and W channels are
//    independent, so a concurrent read + write stream (accelerator
//    mode: MM2S fetch + S2MM write-back) moves one beat per channel per
//    cycle. The MIG behind the port runs at a 4:1 clock ratio and keeps
//    up with both.
//
// Backing store is 4 KiB-paged and lazily allocated, so a 1 GiB address
// window costs only what is touched. Byte access helpers provide the
// test/bench backdoor (paper §IV preloads bitstreams into DDR too).
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>

#include "axi/types.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace rvcap::mem {

class DdrController : public sim::Component {
 public:
  struct Config {
    u32 read_latency = 16;   // cycles from AR accept to first R beat
    u32 write_latency = 10;  // cycles from last W beat to B response
    u64 size_bytes = 1ULL << 30;
  };

  DdrController(std::string name, const Config& cfg);
  explicit DdrController(std::string name)
      : DdrController(std::move(name), Config{}) {}

  axi::AxiPort& port() { return port_; }
  u64 size_bytes() const { return cfg_.size_bytes; }

  bool tick() override;
  bool busy() const override;

  // ---- backdoor access (no simulation time) ----
  void poke(Addr addr, std::span<const u8> data);
  void peek(Addr addr, std::span<u8> out) const;
  u64 peek64(Addr addr) const;
  void poke64(Addr addr, u64 value);

  /// Total data beats transferred (read + write), for utilization probes.
  u64 beats_transferred() const { return beats_; }

 private:
  static constexpr usize kPageShift = 12;
  static constexpr usize kPageSize = usize{1} << kPageShift;
  using Page = std::array<u8, kPageSize>;

  struct ReadJob {
    Addr addr;
    u32 beats_left;
    u32 wait;  // remaining first-access latency
  };
  struct WriteJob {
    Addr addr;
    u32 beats_left;
    u32 wait;        // latency before B after data complete
    bool data_done = false;
  };

  u8* page_for(Addr addr);
  const u8* page_for(Addr addr) const;  // nullptr if untouched
  u64 read_beat(Addr addr) const;
  void write_beat(Addr addr, u64 data, u8 strb);

  Config cfg_;
  axi::AxiPort port_;
  std::deque<ReadJob> reads_;
  std::deque<WriteJob> writes_;
  mutable std::unordered_map<u64, std::unique_ptr<Page>> pages_;
  u64 beats_ = 0;
};

}  // namespace rvcap::mem
