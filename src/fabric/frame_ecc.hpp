// Per-frame configuration ECC + essential-bits model.
//
// 7-series devices compute a SECDED syndrome over every configuration
// frame (the FRAME_ECC primitive exposes it during readback): a single
// flipped bit is localizable from the syndrome alone, a double flip is
// detectable but not correctable. The model uses the textbook
// construction — each bit contributes its 1-based position
// (word*32 + bit + 1) to an XOR accumulator, plus an overall parity
// bit. A zero syndrome with even parity is clean; a nonzero syndrome
// with odd parity points at the flipped bit; everything else (even
// parity, nonzero syndrome — or a syndrome outside the frame) is
// uncorrectable multi-bit damage. As on silicon, >2 simultaneous flips
// can alias to a plausible single-bit decode; the scrub service's
// verify-after-rewrite pass catches that case.
//
// Vivado's essential-bits files mark which configuration bits actually
// affect the routed design (typically a minority of the frame). The
// model stands in a deterministic hash: essential_bit() is a pure
// function of (rm_id, frame index, word, bit), so the fabric model and
// the driver-side scrub service classify upsets identically without
// sharing state, exactly like tooling-generated .ebd masks.
#pragma once

#include <span>
#include <string_view>

#include "common/types.hpp"

namespace rvcap::fabric {

/// SECDED check word of one configuration frame.
struct FrameEcc {
  u32 syndrome = 0;    // XOR of 1-based positions of set bits
  bool parity = false; // XOR of all frame bits

  constexpr bool operator==(const FrameEcc&) const = default;
};

FrameEcc compute_frame_ecc(std::span<const u32> words);

enum class EccClass : u8 {
  kClean,          // syndrome and parity match the golden reference
  kCorrectable,    // single flipped bit, localized by the syndrome
  kUncorrectable,  // multi-bit damage: frame must be rewritten whole
};

std::string_view to_string(EccClass c);

/// Verdict of comparing an observed frame ECC against the golden one
/// recorded when the frame was configured. word/bit are valid only for
/// kCorrectable.
struct EccDecode {
  EccClass cls = EccClass::kClean;
  u32 word = 0;
  u32 bit = 0;
};

EccDecode decode_frame_ecc(const FrameEcc& golden, const FrameEcc& observed,
                           u32 frame_words);

/// Essential-bits mask: does flipping (word, bit) of the RM's
/// frame_index-th frame change the function the module implements?
/// The manifest words of the base frame are always essential; the rest
/// follows a deterministic ~25% hash of the coordinates.
bool essential_bit(u32 rm_id, u32 frame_index, u32 word, u32 bit);

}  // namespace rvcap::fabric
