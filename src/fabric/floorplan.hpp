// ASCII floorplan rendering (Fig. 4: "overview of the full SoC
// floorplan on a Kintex-7 FPGA").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fabric/geometry.hpp"

namespace rvcap::fabric {

struct FloorplanRegion {
  std::string label;        // e.g. "RP0"
  const Partition* part = nullptr;
  char marker = '#';
};

/// Render the device as rows x columns of characters: '.' CLB, 'b'
/// BRAM, 'd' DSP, ':' CLK, '|' IO; partition cells take their region's
/// marker. A legend follows the grid.
std::string render_floorplan(const DeviceGeometry& dev,
                             std::span<const FloorplanRegion> regions);

}  // namespace rvcap::fabric
