#include "fabric/config_memory.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rvcap::fabric {

std::optional<RmManifest> RmManifest::decode(std::span<const u32> frame) {
  if (frame.size() < 4 || frame[0] != kMagic) return std::nullopt;
  RmManifest m;
  m.rm_id = frame[1];
  m.frame_count = frame[2];
  if (frame[3] != m.check()) return std::nullopt;
  return m;
}

void RmManifest::encode(std::span<u32> frame) const {
  frame[0] = kMagic;
  frame[1] = rm_id;
  frame[2] = frame_count;
  frame[3] = check();
}

ConfigMemory::ConfigMemory(const DeviceGeometry& dev) : dev_(dev) {}

usize ConfigMemory::register_partition(const Partition& p) {
  Tracker t{p, p.frame_addrs(dev_), 0, false, 0, 0, std::nullopt, 0, 0};
  trackers_.push_back(std::move(t));
  return trackers_.size() - 1;
}

u32 ConfigMemory::frame_index_in(const Tracker& t, const FrameAddr& fa) {
  const auto it = std::find(t.addrs.begin(), t.addrs.end(), fa);
  return static_cast<u32>(it - t.addrs.begin());
}

void ConfigMemory::write_frame(const FrameAddr& fa,
                               std::span<const u32> words) {
  if (!dev_.valid(fa) || words.size() != kFrameWords) {
    ++bad_address_writes_;
    log_warn("cfgmem: dropped frame write row=", fa.row, " col=", fa.column,
             " minor=", fa.minor);
    return;
  }
  StoredFrame& slot = frames_[fa.encode()];

  // Does this write restore a damaged frame to its exact pre-upset
  // contents? Then a loaded partition treats it as an in-place scrub
  // repair rather than the start/middle of a new configuration pass.
  bool restores_original = false;
  if (!slot.flips.empty() && slot.data.size() == words.size()) {
    std::vector<u32> original = slot.data;
    for (const u16 pos : slot.flips) {
      original[pos / 32] ^= 1u << (pos % 32);
    }
    restores_original =
        std::equal(original.begin(), original.end(), words.begin());
  }

  // Any write clears the frame's outstanding flips; settle the
  // essential-upset accounting of loaded partitions first.
  if (!slot.flips.empty()) {
    for (Tracker& t : trackers_) {
      if (!t.loaded || !t.part.contains(dev_, fa)) continue;
      const u32 fidx = frame_index_in(t, fa);
      for (const u16 pos : slot.flips) {
        if (essential_bit(t.rm_id, fidx, pos / 32, pos % 32) &&
            t.essential_upsets > 0) {
          --t.essential_upsets;
        }
      }
    }
  }

  slot.data.assign(words.begin(), words.end());
  slot.ecc = compute_frame_ecc(words);
  slot.flips.clear();
  ++frames_written_;
  bool repaired_in_place = false;

  for (Tracker& t : trackers_) {
    if (!t.part.contains(dev_, fa)) continue;
    t.touched_epoch = epoch_;
    if (t.loaded && restores_original && !(fa == t.addrs.front())) {
      // In-place repair of a non-base frame: the module never left.
      // (A base-frame rewrite still restarts the pass below — it
      // carries the manifest — so scrubbers reload the partition for
      // base-frame damage instead.)
      repaired_in_place = true;
      continue;
    }
    if (fa == t.addrs.front()) {
      // New pass over this partition begins at its base frame.
      t.progress = 1;
      t.loaded = false;
      t.manifest = RmManifest::decode(words);
      t.essential_upsets = 0;
    } else if (t.progress > 0 && t.progress < t.addrs.size() &&
               fa == t.addrs[t.progress]) {
      ++t.progress;
    } else {
      // Out-of-order write: the partition contents are now undefined.
      t.progress = 0;
      t.loaded = false;
      t.manifest.reset();
      t.essential_upsets = 0;
    }
    if (t.progress == t.addrs.size() && t.manifest.has_value() &&
        t.manifest->frame_count == t.addrs.size()) {
      t.loaded = true;
      t.rm_id = t.manifest->rm_id;
      ++t.loads_completed;
      t.essential_upsets = 0;
    }
  }
  if (repaired_in_place) ++frame_repairs_;
  observers_.notify();
}

const std::vector<u32>* ConfigMemory::frame(const FrameAddr& fa) const {
  const auto it = frames_.find(fa.encode());
  return it == frames_.end() ? nullptr : &it->second.data;
}

const FrameEcc* ConfigMemory::frame_ecc(const FrameAddr& fa) const {
  const auto it = frames_.find(fa.encode());
  return it == frames_.end() ? nullptr : &it->second.ecc;
}

u32 ConfigMemory::outstanding_flips(const FrameAddr& fa) const {
  const auto it = frames_.find(fa.encode());
  return it == frames_.end() ? 0 : static_cast<u32>(it->second.flips.size());
}

bool ConfigMemory::inject_upset(const FrameAddr& fa, u32 word_index,
                                u32 bit) {
  const auto it = frames_.find(fa.encode());
  if (it == frames_.end() || word_index >= it->second.data.size() ||
      bit >= 32) {
    return false;
  }
  StoredFrame& f = it->second;
  f.data[word_index] ^= (1u << bit);
  const u16 pos = static_cast<u16>(word_index * 32 + bit);
  const auto fit = std::find(f.flips.begin(), f.flips.end(), pos);
  const bool newly_flipped = (fit == f.flips.end());
  if (newly_flipped) {
    f.flips.push_back(pos);
  } else {
    f.flips.erase(fit);  // a second hit on the same bit restores it
  }

  UpsetEvent ev;
  ev.fa = fa;
  ev.word = word_index;
  ev.bit = bit;
  for (Tracker& t : trackers_) {
    if (!t.loaded || !t.part.contains(dev_, fa)) continue;
    ev.loaded_frame = true;
    if (essential_bit(t.rm_id, frame_index_in(t, fa), word_index, bit)) {
      ev.essential = true;
      if (newly_flipped) {
        ++t.essential_upsets;
      } else if (t.essential_upsets > 0) {
        --t.essential_upsets;
      }
    }
  }
  ev.total = ++upsets_injected_;
  last_upset_ = ev;
  if (upset_observer_) upset_observer_(ev);
  // An essential upset changes the hosted RM's observable behaviour;
  // wake the slots so both kernels see it at the injection cycle.
  observers_.notify();
  return true;
}

void ConfigMemory::notify_rcrc() {
  ++epoch_;
  observers_.notify();
}

void ConfigMemory::notify_crc_error() {
  for (Tracker& t : trackers_) {
    if (t.touched_epoch == epoch_) {
      t.progress = 0;
      t.loaded = false;
      t.manifest.reset();
      t.essential_upsets = 0;
    }
  }
  observers_.notify();
}

ConfigMemory::PartitionState ConfigMemory::partition_state(
    usize handle) const {
  const Tracker& t = trackers_.at(handle);
  return PartitionState{t.loaded,
                        t.rm_id,
                        t.progress,
                        static_cast<u32>(t.addrs.size()),
                        t.loads_completed,
                        t.essential_upsets};
}

}  // namespace rvcap::fabric
