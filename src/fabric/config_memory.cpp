#include "fabric/config_memory.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rvcap::fabric {

std::optional<RmManifest> RmManifest::decode(std::span<const u32> frame) {
  if (frame.size() < 4 || frame[0] != kMagic) return std::nullopt;
  RmManifest m;
  m.rm_id = frame[1];
  m.frame_count = frame[2];
  if (frame[3] != m.check()) return std::nullopt;
  return m;
}

void RmManifest::encode(std::span<u32> frame) const {
  frame[0] = kMagic;
  frame[1] = rm_id;
  frame[2] = frame_count;
  frame[3] = check();
}

ConfigMemory::ConfigMemory(const DeviceGeometry& dev) : dev_(dev) {}

usize ConfigMemory::register_partition(const Partition& p) {
  Tracker t{p, p.frame_addrs(dev_), 0, false, 0, 0, std::nullopt, 0};
  trackers_.push_back(std::move(t));
  return trackers_.size() - 1;
}

void ConfigMemory::write_frame(const FrameAddr& fa,
                               std::span<const u32> words) {
  if (!dev_.valid(fa) || words.size() != kFrameWords) {
    ++bad_address_writes_;
    log_warn("cfgmem: dropped frame write row=", fa.row, " col=", fa.column,
             " minor=", fa.minor);
    return;
  }
  frames_[fa.encode()] = std::vector<u32>(words.begin(), words.end());
  ++frames_written_;

  for (Tracker& t : trackers_) {
    if (!t.part.contains(dev_, fa)) continue;
    t.touched_epoch = epoch_;
    if (fa == t.addrs.front()) {
      // New pass over this partition begins at its base frame.
      t.progress = 1;
      t.loaded = false;
      t.manifest = RmManifest::decode(words);
    } else if (t.progress > 0 && t.progress < t.addrs.size() &&
               fa == t.addrs[t.progress]) {
      ++t.progress;
    } else {
      // Out-of-order write: the partition contents are now undefined.
      t.progress = 0;
      t.loaded = false;
      t.manifest.reset();
    }
    if (t.progress == t.addrs.size() && t.manifest.has_value() &&
        t.manifest->frame_count == t.addrs.size()) {
      t.loaded = true;
      t.rm_id = t.manifest->rm_id;
      ++t.loads_completed;
    }
  }
  observers_.notify();
}

const std::vector<u32>* ConfigMemory::frame(const FrameAddr& fa) const {
  const auto it = frames_.find(fa.encode());
  return it == frames_.end() ? nullptr : &it->second;
}

bool ConfigMemory::inject_upset(const FrameAddr& fa, u32 word_index,
                                u32 bit) {
  const auto it = frames_.find(fa.encode());
  if (it == frames_.end() || word_index >= it->second.size() || bit >= 32) {
    return false;
  }
  it->second[word_index] ^= (1u << bit);
  return true;
}

void ConfigMemory::notify_rcrc() {
  ++epoch_;
  observers_.notify();
}

void ConfigMemory::notify_crc_error() {
  for (Tracker& t : trackers_) {
    if (t.touched_epoch == epoch_) {
      t.progress = 0;
      t.loaded = false;
      t.manifest.reset();
    }
  }
  observers_.notify();
}

ConfigMemory::PartitionState ConfigMemory::partition_state(
    usize handle) const {
  const Tracker& t = trackers_.at(handle);
  return PartitionState{t.loaded, t.rm_id, t.progress,
                        static_cast<u32>(t.addrs.size()),
                        t.loads_completed};
}

}  // namespace rvcap::fabric
