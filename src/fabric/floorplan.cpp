#include "fabric/floorplan.hpp"

namespace rvcap::fabric {

namespace {
char column_char(ColumnType t) {
  switch (t) {
    case ColumnType::kClb: return '.';
    case ColumnType::kBram: return 'b';
    case ColumnType::kDsp: return 'd';
    case ColumnType::kClk: return ':';
    case ColumnType::kIo: return '|';
  }
  return '?';
}
}  // namespace

std::string render_floorplan(const DeviceGeometry& dev,
                             std::span<const FloorplanRegion> regions) {
  std::string out;
  out += "clock\nregion  columns (X" + std::to_string(0) + "..X" +
         std::to_string(dev.num_columns() - 1) + ")\n";
  for (u32 row = dev.rows(); row-- > 0;) {  // top row printed first
    out += "  Y" + std::to_string(row) + "   ";
    for (u32 col = 0; col < dev.num_columns(); ++col) {
      char c = column_char(dev.column(col));
      for (const FloorplanRegion& r : regions) {
        if (r.part == nullptr) continue;
        for (const auto& ref : r.part->columns()) {
          if (ref.row == row && ref.column == col) {
            c = r.marker;
            break;
          }
        }
      }
      out += c;
    }
    out += '\n';
  }
  out += "\n  legend: . CLB   b BRAM   d DSP   : clock   | IO\n";
  for (const FloorplanRegion& r : regions) {
    out += "          ";
    out += r.marker;
    out += " " + r.label;
    if (r.part != nullptr) {
      const auto res = r.part->resources(dev);
      out += "  (" + std::to_string(res.luts) + " LUT, " +
             std::to_string(res.ffs) + " FF, " + std::to_string(res.brams) +
             " BRAM, " + std::to_string(res.dsps) + " DSP, " +
             std::to_string(r.part->frame_count(dev)) + " frames)";
    }
    out += '\n';
  }
  return out;
}

}  // namespace rvcap::fabric
