#include "fabric/seu_process.hpp"

#include <cmath>

namespace rvcap::fabric {

namespace sites = sim::fault_sites;

SeuProcess::SeuProcess(std::string name, ConfigMemory& cfg,
                       sim::FaultInjector& fi, Config c)
    : Component(std::move(name)), mem_(cfg), fi_(fi), cfg_(std::move(c)) {
  if (cfg_.targets.empty()) {
    for (usize h = 0; h < mem_.num_partitions(); ++h) {
      cfg_.targets.push_back(h);
    }
  }
  if (cfg_.mean_cycles == 0) cfg_.mean_cycles = 1;
  if (cfg_.burst == 0) cfg_.burst = 1;
  addrs_.reserve(cfg_.targets.size());
  for (const usize h : cfg_.targets) {
    addrs_.push_back(mem_.partition(h).frame_addrs(mem_.device()));
  }
}

u64 SeuProcess::next_gap() {
  // u in (0, 1]: 20-bit resolution from the site's parameter stream.
  const double u =
      (static_cast<double>(fi_.value(sites::kSeuUpset, 1u << 20)) + 1.0) /
      static_cast<double>(1u << 20);
  const double gap = -static_cast<double>(cfg_.mean_cycles) * std::log(u);
  return gap < 1.0 ? 1 : static_cast<u64>(gap);
}

void SeuProcess::fire() {
  Event ev;
  ev.at = sim_now();
  ev.burst = cfg_.burst;
  // Draw the full target tuple unconditionally so the stream position
  // (and therefore every later event) is independent of gating.
  const usize ti = static_cast<usize>(
      fi_.value(sites::kSeuUpset, cfg_.targets.size()));
  const std::vector<FrameAddr>& addrs = addrs_[ti];
  ev.fa = addrs[fi_.value(sites::kSeuUpset, addrs.size())];
  ev.word = static_cast<u32>(fi_.value(sites::kSeuUpset, kFrameWords));
  ev.bit = static_cast<u32>(fi_.value(sites::kSeuUpset, 32));
  const bool enabled = fi_.should_fire(sites::kSeuUpset);
  if (enabled &&
      (!cfg_.only_loaded ||
       mem_.partition_state(cfg_.targets[ti]).loaded)) {
    for (u32 i = 0; i < cfg_.burst; ++i) {
      const u32 pos = ev.word * 32 + ev.bit + i;
      if (pos >= kFrameWords * 32) break;
      ev.landed |= mem_.inject_upset(ev.fa, pos / 32, pos % 32);
    }
  }
  if (ev.landed) ++landed_;
  log_.push_back(ev);
}

bool SeuProcess::tick() {
  if (!started_) {
    started_ = true;
    next_at_ = sim_now() + next_gap();
    wake_at(next_at_);
    return true;
  }
  if (sim_now() < next_at_) return false;  // wheel wake already pending
  fire();
  next_at_ = sim_now() + next_gap();
  wake_at(next_at_);
  return true;
}

}  // namespace rvcap::fabric
