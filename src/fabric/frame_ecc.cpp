#include "fabric/frame_ecc.hpp"

#include <bit>

namespace rvcap::fabric {

FrameEcc compute_frame_ecc(std::span<const u32> words) {
  FrameEcc e;
  u32 acc = 0;
  for (usize w = 0; w < words.size(); ++w) {
    u32 v = words[w];
    acc ^= v;
    const u32 base = static_cast<u32>(w) * 32 + 1;
    while (v != 0) {
      e.syndrome ^= base + static_cast<u32>(std::countr_zero(v));
      v &= v - 1;  // iterate set bits only
    }
  }
  e.parity = (std::popcount(acc) & 1) != 0;
  return e;
}

std::string_view to_string(EccClass c) {
  switch (c) {
    case EccClass::kClean: return "clean";
    case EccClass::kCorrectable: return "correctable";
    case EccClass::kUncorrectable: return "uncorrectable";
  }
  return "?";
}

EccDecode decode_frame_ecc(const FrameEcc& golden, const FrameEcc& observed,
                           u32 frame_words) {
  EccDecode d;
  const u32 diff = golden.syndrome ^ observed.syndrome;
  const bool parity_diff = golden.parity != observed.parity;
  if (diff == 0 && !parity_diff) {
    d.cls = EccClass::kClean;
    return d;
  }
  if (parity_diff && diff >= 1 && diff <= frame_words * 32) {
    d.cls = EccClass::kCorrectable;
    d.word = (diff - 1) / 32;
    d.bit = (diff - 1) % 32;
    return d;
  }
  d.cls = EccClass::kUncorrectable;
  return d;
}

bool essential_bit(u32 rm_id, u32 frame_index, u32 word, u32 bit) {
  if (frame_index == 0 && word < 4) return true;  // RM manifest words
  u64 x = (u64{rm_id} << 44) ^ (u64{frame_index} << 16) ^
          (u64{word} << 5) ^ u64{bit};
  x ^= 0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return (x & 3) == 0;
}

}  // namespace rvcap::fabric
