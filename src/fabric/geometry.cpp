#include "fabric/geometry.hpp"

#include <algorithm>
#include <stdexcept>

#include "fabric/pbit_layout.hpp"

namespace rvcap::fabric {

DeviceGeometry::DeviceGeometry(std::string name, u32 rows,
                               std::vector<ColumnType> columns,
                               u32 accel_window_start)
    : name_(std::move(name)), rows_(rows), columns_(std::move(columns)),
      accel_window_start_(accel_window_start) {
  if (rows_ == 0 || columns_.empty()) {
    throw std::invalid_argument("DeviceGeometry: empty device");
  }
  if (accel_window_start_ + 13 > columns_.size()) {
    throw std::invalid_argument("DeviceGeometry: window out of range");
  }
}

namespace {
/// The contiguous 13-column acceleration window every model device
/// carries: CLK C C B C C D C C B C C B = 1 CLK + 8 CLB + 3 BRAM +
/// 1 DSP, which is exactly the paper's case-study partition footprint.
void push_accel_window(std::vector<ColumnType>* cols) {
  using enum ColumnType;
  const ColumnType window[] = {kClk, kClb, kClb, kBram, kClb, kClb, kDsp,
                               kClb, kClb, kBram, kClb, kClb, kBram};
  for (ColumnType t : window) cols->push_back(t);
}
}  // namespace

DeviceGeometry DeviceGeometry::kintex7_325t() {
  using enum ColumnType;
  std::vector<ColumnType> cols;
  auto rep = [&](ColumnType t, u32 n) {
    for (u32 i = 0; i < n; ++i) cols.push_back(t);
  };
  // Left half: IO, CLK, 16 CLB, DSP, 16 CLB, BRAM, CLK.
  cols.push_back(kIo);
  cols.push_back(kClk);
  rep(kClb, 16);
  cols.push_back(kDsp);
  rep(kClb, 16);
  cols.push_back(kBram);
  cols.push_back(kClk);
  // Acceleration window (columns 37..49).
  push_accel_window(&cols);
  // Right half: 16 CLB, DSP, BRAM, CLK, 16 CLB, DSP x3, BRAM, CLK, IO.
  rep(kClb, 16);
  cols.push_back(kDsp);
  cols.push_back(kBram);
  cols.push_back(kClk);
  rep(kClb, 16);
  rep(kDsp, 3);
  cols.push_back(kBram);
  cols.push_back(kClk);
  cols.push_back(kIo);
  // Totals: 72 CLB, 6 BRAM, 6 DSP, 5 CLK, 2 IO over 7 rows ->
  // 201600 LUT / 403200 FF / 420 RAMB36 / 840 DSP48 (XC7K325T-class).
  return DeviceGeometry("xc7k325t-model", 7, std::move(cols), 37);
}

DeviceGeometry DeviceGeometry::artix7_100t() {
  using enum ColumnType;
  std::vector<ColumnType> cols;
  auto rep = [&](ColumnType t, u32 n) {
    for (u32 i = 0; i < n; ++i) cols.push_back(t);
  };
  // Left half: IO, CLK, 8 CLB, BRAM, 8 CLB.
  cols.push_back(kIo);
  cols.push_back(kClk);
  rep(kClb, 8);
  cols.push_back(kBram);
  rep(kClb, 8);
  // Acceleration window (columns 19..31).
  push_accel_window(&cols);
  // Right half: 8 CLB, DSP, CLK, 8 CLB, DSP, IO.
  rep(kClb, 8);
  cols.push_back(kDsp);
  cols.push_back(kClk);
  rep(kClb, 8);
  cols.push_back(kDsp);
  cols.push_back(kIo);
  // Totals over 4 rows: 40 CLB, 4 BRAM, 3 DSP, 3 CLK, 2 IO ->
  // 64000 LUT / 128000 FF / 160 RAMB36 / 240 DSP48
  // (XC7A100T: 63400 / 126800 / 135 / 240).
  return DeviceGeometry("xc7a100t-model", 4, std::move(cols), 19);
}

u32 DeviceGeometry::total_frames() const {
  u32 per_row = 0;
  for (ColumnType t : columns_) per_row += frames_per_column(t);
  return per_row * rows_;
}

resources::ResourceVec DeviceGeometry::total_resources() const {
  resources::ResourceVec per_row;
  for (ColumnType t : columns_) per_row += resources_per_column(t);
  return per_row * rows_;
}

bool DeviceGeometry::valid(const FrameAddr& fa) const {
  return fa.row < rows_ && fa.column < columns_.size() &&
         fa.minor < frames_in_column(fa.column);
}

bool DeviceGeometry::next_frame(FrameAddr* fa) const {
  if (!valid(*fa)) return false;
  if (fa->minor + 1 < frames_in_column(fa->column)) {
    ++fa->minor;
    return true;
  }
  fa->minor = 0;
  if (fa->column + 1 < columns_.size()) {
    ++fa->column;
    return true;
  }
  fa->column = 0;
  if (fa->row + 1 < rows_) {
    ++fa->row;
    return true;
  }
  return false;  // past the last frame
}

// ---------------------------------------------------------------------------

Partition::Partition(std::string name, std::vector<ColumnRef> columns)
    : name_(std::move(name)), cols_(std::move(columns)) {
  if (cols_.empty()) throw std::invalid_argument("Partition: no columns");
}

u32 Partition::frame_count(const DeviceGeometry& dev) const {
  u32 n = 0;
  for (const ColumnRef& c : cols_) n += dev.frames_in_column(c.column);
  return n;
}

resources::ResourceVec Partition::resources(const DeviceGeometry& dev) const {
  resources::ResourceVec r;
  for (const ColumnRef& c : cols_) {
    r += resources_per_column(dev.column(c.column));
  }
  return r;
}

std::vector<FrameAddr> Partition::frame_addrs(
    const DeviceGeometry& dev) const {
  std::vector<FrameAddr> out;
  out.reserve(frame_count(dev));
  for (const ColumnRef& c : cols_) {
    for (u32 m = 0; m < dev.frames_in_column(c.column); ++m) {
      out.push_back(FrameAddr{c.row, c.column, m});
    }
  }
  return out;
}

FrameAddr Partition::base_frame(const DeviceGeometry& dev) const {
  (void)dev;
  return FrameAddr{cols_.front().row, cols_.front().column, 0};
}

bool Partition::contains(const DeviceGeometry& dev,
                         const FrameAddr& fa) const {
  if (!dev.valid(fa)) return false;
  return std::any_of(cols_.begin(), cols_.end(), [&](const ColumnRef& c) {
    return c.row == fa.row && c.column == fa.column;
  });
}

u64 Partition::pbit_bytes(const DeviceGeometry& dev) const {
  const u32 ranges = count_ranges(*this);
  return 4ULL *
         (kPbitFixedControlWords + kPbitWordsPerRange * ranges +
          u64{frame_count(dev)} * kFrameWords);
}

u32 count_ranges(const Partition& p) {
  const auto& cols = p.columns();
  u32 ranges = 1;
  for (usize i = 1; i < cols.size(); ++i) {
    if (cols[i].row != cols[i - 1].row ||
        cols[i].column != cols[i - 1].column + 1) {
      ++ranges;
    }
  }
  return ranges;
}

// ---------------------------------------------------------------------------

std::optional<Partition> plan_partition(
    const DeviceGeometry& dev, std::string name,
    const resources::ResourceVec& need, u32 preferred_row,
    const std::vector<Partition::ColumnRef>& avoid) {
  if (preferred_row >= dev.rows()) return std::nullopt;
  resources::ResourceVec have;
  std::vector<Partition::ColumnRef> picked;

  auto taken = [&](u32 row, u32 col) {
    return std::any_of(avoid.begin(), avoid.end(),
                       [&](const Partition::ColumnRef& c) {
                         return c.row == row && c.column == col;
                       });
  };

  // Scan rows starting from the preferred one; within a row take any
  // column that still contributes to an uncovered requirement. This
  // yields mostly-contiguous ranges because the device interleaves
  // resource types.
  for (u32 dr = 0; dr < dev.rows() && !have.covers(need); ++dr) {
    const u32 row = (preferred_row + dr) % dev.rows();
    for (u32 col = 0; col < dev.num_columns() && !have.covers(need); ++col) {
      if (taken(row, col)) continue;
      const auto r = resources_per_column(dev.column(col));
      const bool useful = (r.luts > 0 && have.luts < need.luts) ||
                          (r.ffs > 0 && have.ffs < need.ffs) ||
                          (r.brams > 0 && have.brams < need.brams) ||
                          (r.dsps > 0 && have.dsps < need.dsps);
      if (!useful) continue;
      picked.push_back({row, col});
      have += r;
    }
  }
  if (!have.covers(need)) return std::nullopt;
  return Partition(std::move(name), std::move(picked));
}

Partition case_study_partition(const DeviceGeometry& dev) {
  // The device's contiguous acceleration window, middle row.
  std::vector<Partition::ColumnRef> cols;
  const u32 row = dev.rows() / 2;
  const u32 start = dev.accel_window_start();
  for (u32 c = start; c < start + 13; ++c) cols.push_back({row, c});
  return Partition("RP0", std::move(cols));
}

}  // namespace rvcap::fabric
