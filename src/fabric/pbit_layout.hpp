// Partial-bitstream size layout constants, shared between the fabric
// (which predicts sizes, e.g. for Fig. 3) and the bitstream writer
// (which must produce exactly these sizes; asserted in tests).
//
// A partial bitstream is:
//   fixed control prologue + epilogue   kPbitFixedControlWords
//   per contiguous column range         kPbitWordsPerRange
//       (FAR write = 2, FDRI type-1 = 1, FDRI type-2 = 1)
//   frame payload                       frames * kFrameWords
//
// With one range this gives 113 control words, so the paper's 805-frame
// case-study RP is 4 * (113 + 805*202) = 650 892 bytes — the pbit size
// reported in §IV-A.
#pragma once

#include "common/types.hpp"

namespace rvcap::fabric {

inline constexpr u32 kPbitWordsPerRange = 4;
inline constexpr u32 kPbitFixedControlWords = 109;

/// Number of contiguous column ranges in a partition (declared here to
/// avoid a geometry<->layout cycle; defined in geometry.cpp).
class Partition;
u32 count_ranges(const Partition& p);

}  // namespace rvcap::fabric
