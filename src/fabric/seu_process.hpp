// Background single-event-upset process — the radiation environment.
//
// A sim::Component that injects Poisson-spaced configuration upsets
// into ConfigMemory while the design runs, exactly the continuous
// threat model the scrub service exists for. Event times ride the
// kernel's time wheel (wake_at), so under the scheduled kernel the
// process costs nothing between events yet fires on the identical
// cycle as under the flat loop.
//
// Everything is drawn from the fault injector's "seu.upset" site
// streams, so a single seed replays the whole upset history:
//  * spacing   — exponential inter-arrival with a configurable mean
//                (core cycles), quantized to >= 1 cycle;
//  * gating    — each due event passes through should_fire(), so tests
//                arm the site to enable the process, cap the event
//                count with a plan, or disarm mid-run;
//  * targeting — partition (region mask), frame, word and bit come
//                from the site's parameter stream;
//  * burst     — an event flips `burst` adjacent bits (MBU), wrapping
//                across word boundaries within the frame.
//
// Events aimed at an unloaded partition are suppressed (no configured
// bits to hit) but still logged and still consume the same stream
// steps, so the schedule is independent of what lands.
#pragma once

#include <vector>

#include "fabric/config_memory.hpp"
#include "sim/component.hpp"
#include "sim/fault_injector.hpp"

namespace rvcap::fabric {

class SeuProcess : public sim::Component {
 public:
  struct Config {
    u64 mean_cycles = 200'000;   // mean exponential inter-arrival
    u32 burst = 1;               // adjacent bits per event (>1 = MBU)
    std::vector<usize> targets;  // partition handles (region mask)
    bool only_loaded = true;     // suppress events on unloaded targets
  };

  /// One scheduled upset event (landed or suppressed).
  struct Event {
    Cycles at = 0;
    FrameAddr fa{};
    u32 word = 0;
    u32 bit = 0;
    u32 burst = 1;
    bool landed = false;
  };

  SeuProcess(std::string name, ConfigMemory& cfg, sim::FaultInjector& fi,
             Config c);

  bool tick() override;
  /// Background radiation never holds the SoC busy: run_until_idle()
  /// quiesces with upsets still pending on the wheel.
  bool busy() const override { return false; }

  const Config& config() const { return cfg_; }
  const std::vector<Event>& log() const { return log_; }
  u64 events() const { return log_.size(); }
  u64 landed() const { return landed_; }

 private:
  void fire();
  u64 next_gap();

  ConfigMemory& mem_;
  sim::FaultInjector& fi_;
  Config cfg_;
  std::vector<std::vector<FrameAddr>> addrs_;  // per target, config order
  std::vector<Event> log_;
  Cycles next_at_ = 0;
  u64 landed_ = 0;
  bool started_ = false;
};

}  // namespace rvcap::fabric
