// 7-series-style device geometry model.
//
// The device is a grid of clock-region rows x resource columns; each
// column-row intersection is configured by a fixed number of frames of
// kFrameWords 32-bit words. The constants below follow the 7-series
// architecture (CLB columns of 50 CLBs per row, 36 frames per CLB
// column, 28 per DSP column, 156 per BRAM column) with ONE calibrated
// deviation: the model's frame length is 202 words instead of the
// silicon's 101. This makes the paper's case-study partition — 3200
// LUTs, 6400 FFs, 30 BRAMs, 20 DSPs = 8 CLB + 1 DSP + 3 BRAM + 1 CLK
// column-rows = 805 frames — produce a partial bitstream of exactly
// 650 892 bytes, the size the paper measures with (§IV-A). All derived
// sizes (Fig. 3 sweep) scale from the same constants.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "resources/resource_vec.hpp"

namespace rvcap::fabric {

enum class ColumnType : u8 { kClb, kDsp, kBram, kClk, kIo };

constexpr std::string_view to_string(ColumnType t) {
  switch (t) {
    case ColumnType::kClb: return "CLB";
    case ColumnType::kDsp: return "DSP";
    case ColumnType::kBram: return "BRAM";
    case ColumnType::kClk: return "CLK";
    case ColumnType::kIo: return "IO";
  }
  return "?";
}

/// Words per configuration frame (see header comment for calibration).
inline constexpr u32 kFrameWords = 202;

/// Frames needed to configure one column within one row.
constexpr u32 frames_per_column(ColumnType t) {
  switch (t) {
    case ColumnType::kClb: return 36;
    case ColumnType::kDsp: return 28;
    case ColumnType::kBram: return 156;  // 28 interconnect + 128 content
    case ColumnType::kClk: return 21;
    case ColumnType::kIo: return 44;
  }
  return 0;
}

/// Logic resources contained in one column-row.
constexpr resources::ResourceVec resources_per_column(ColumnType t) {
  switch (t) {
    // 50 CLBs per row, 8 LUT / 16 FF per CLB.
    case ColumnType::kClb: return {400, 800, 0, 0};
    case ColumnType::kDsp: return {0, 0, 0, 20};
    case ColumnType::kBram: return {0, 0, 10, 0};
    case ColumnType::kClk:
    case ColumnType::kIo: return {};
  }
  return {};
}

/// Frame address: packed (block already folded into per-column frame
/// counts, so FAR is row / column / minor). The minor field is 8 bits —
/// wide enough for BRAM columns' 156 frames.
struct FrameAddr {
  u32 row = 0;
  u32 column = 0;
  u32 minor = 0;

  constexpr u32 encode() const {
    return (row << 18) | ((column & 0x3FF) << 8) | (minor & 0xFF);
  }
  static constexpr FrameAddr decode(u32 far) {
    return {(far >> 18) & 0x3F, (far >> 8) & 0x3FF, far & 0xFF};
  }
  constexpr bool operator==(const FrameAddr&) const = default;
};

class DeviceGeometry {
 public:
  DeviceGeometry(std::string name, u32 rows, std::vector<ColumnType> columns,
                 u32 accel_window_start);

  /// The model of the Genesys2 board's Kintex-7 XC7K325T.
  static DeviceGeometry kintex7_325t();
  /// A smaller 7-series part (Arty-class Artix-7 XC7A100T): the
  /// portability claim of the paper's conclusion — the same controller,
  /// drivers and bitstream flow on a different device geometry.
  static DeviceGeometry artix7_100t();

  /// First column of the contiguous "acceleration window" that hosts
  /// the case-study partition (CLK + 8 CLB + 3 BRAM + 1 DSP columns;
  /// every model device provides one).
  u32 accel_window_start() const { return accel_window_start_; }

  const std::string& name() const { return name_; }
  u32 rows() const { return rows_; }
  u32 num_columns() const { return static_cast<u32>(columns_.size()); }
  ColumnType column(u32 i) const { return columns_[i]; }

  u32 frames_in_column(u32 col) const {
    return frames_per_column(columns_[col]);
  }
  /// Total configuration frames on the device.
  u32 total_frames() const;
  resources::ResourceVec total_resources() const;

  /// Advance a frame address by one frame in configuration order
  /// (minor, then column, then row). Returns false past the end.
  bool next_frame(FrameAddr* fa) const;
  bool valid(const FrameAddr& fa) const;

 private:
  std::string name_;
  u32 rows_;
  std::vector<ColumnType> columns_;
  u32 accel_window_start_;
};

/// A reconfigurable partition: a named set of column-rows (Xilinx
/// pblocks may span multiple ranges, so contiguity is not required).
class Partition {
 public:
  struct ColumnRef {
    u32 row;
    u32 column;
    constexpr bool operator==(const ColumnRef&) const = default;
  };

  Partition(std::string name, std::vector<ColumnRef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnRef>& columns() const { return cols_; }

  u32 frame_count(const DeviceGeometry& dev) const;
  resources::ResourceVec resources(const DeviceGeometry& dev) const;
  /// Partial-bitstream size in bytes for this partition (header/footer
  /// words + frame payload; see bitstream::kControlWords).
  u64 pbit_bytes(const DeviceGeometry& dev) const;

  /// Frame addresses of the partition, in configuration order.
  std::vector<FrameAddr> frame_addrs(const DeviceGeometry& dev) const;
  /// First frame of the partition (carries the RM manifest).
  FrameAddr base_frame(const DeviceGeometry& dev) const;
  bool contains(const DeviceGeometry& dev, const FrameAddr& fa) const;

 private:
  std::string name_;
  std::vector<ColumnRef> cols_;
};

/// Greedily pick columns (preferring a target row) to cover a resource
/// requirement; returns std::nullopt when the device cannot host it.
/// `avoid` lists column-rows already taken by other partitions or the
/// static region.
std::optional<Partition> plan_partition(
    const DeviceGeometry& dev, std::string name,
    const resources::ResourceVec& need, u32 preferred_row = 0,
    const std::vector<Partition::ColumnRef>& avoid = {});

/// The paper's case-study RP: 3200 LUT / 6400 FF / 30 BRAM / 20 DSP.
Partition case_study_partition(const DeviceGeometry& dev);

}  // namespace rvcap::fabric
