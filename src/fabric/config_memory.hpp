// FPGA configuration memory + reconfigurable-module activation tracking.
//
// Frames written through the ICAP land here. Each registered partition
// is tracked with an in-order progress pointer: a configuration pass
// that writes every frame of the partition, in configuration order,
// starting at its base frame, "activates" the module described by the
// manifest embedded in the first frame. Out-of-order or partial writes
// deactivate the partition (a half-configured region is garbage on real
// silicon; the functional model makes that state explicit instead).
//
// The ICAP reports RCRC (start of a configuration pass) and CRC errors;
// a CRC error invalidates every partition touched during the pass, so a
// corrupted bitstream can never activate an RM.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fabric/geometry.hpp"
#include "sim/component.hpp"

namespace rvcap::fabric {

/// Reconfigurable-module manifest embedded in the first frame of a
/// partition's bitstream (words 0..3).
struct RmManifest {
  static constexpr u32 kMagic = 0x524D4F44;  // "RMOD"

  u32 rm_id = 0;
  u32 frame_count = 0;

  u32 check() const { return kMagic ^ rm_id ^ frame_count; }

  static std::optional<RmManifest> decode(std::span<const u32> frame);
  void encode(std::span<u32> frame) const;
};

class ConfigMemory {
 public:
  explicit ConfigMemory(const DeviceGeometry& dev);

  const DeviceGeometry& device() const { return dev_; }

  /// Register a partition to be tracked; returns a handle.
  usize register_partition(const Partition& p);

  /// Components whose observable state derives from partition state
  /// (the RM slots) register here; they are woken whenever a frame
  /// write or ICAP notification may have changed it.
  void add_observer(sim::Component* c) { observers_.add(c); }

  /// Write one frame (kFrameWords words). Invalid addresses count as
  /// errors and are dropped.
  void write_frame(const FrameAddr& fa, std::span<const u32> words);

  /// Read a frame back; nullptr when never written.
  const std::vector<u32>* frame(const FrameAddr& fa) const;

  // ---- ICAP notifications ----
  void notify_rcrc();       // start of a configuration pass
  void notify_crc_error();  // pass failed: invalidate touched partitions

  // ---- partition state ----
  struct PartitionState {
    bool loaded = false;   // full in-order pass completed, manifest valid
    u32 rm_id = 0;         // valid when loaded
    u32 progress = 0;      // frames matched so far in the current pass
    u32 frame_count = 0;
    u64 loads_completed = 0;
  };
  PartitionState partition_state(usize handle) const;
  usize num_partitions() const { return trackers_.size(); }
  /// The partition geometry registered under `handle` (recovery uses it
  /// to build a blanking bitstream for the failed region).
  const Partition& partition(usize handle) const {
    return trackers_.at(handle).part;
  }

  u64 frames_written() const { return frames_written_; }
  u64 bad_address_writes() const { return bad_address_writes_; }

  /// Fault injection: flip one stored configuration bit in place (a
  /// single-event upset). Unlike write_frame this does NOT touch the
  /// activation trackers — an SEU corrupts silently, which is exactly
  /// what readback scrubbing exists to catch.
  /// Returns false when the frame has never been written.
  bool inject_upset(const FrameAddr& fa, u32 word_index, u32 bit);

 private:
  struct Tracker {
    Partition part;
    std::vector<FrameAddr> addrs;
    u32 progress = 0;
    bool loaded = false;
    u32 rm_id = 0;
    u64 loads_completed = 0;
    std::optional<RmManifest> manifest;
    u64 touched_epoch = 0;  // last pass that wrote into this partition
  };

  const DeviceGeometry& dev_;
  sim::WakeList observers_;
  std::map<u32, std::vector<u32>> frames_;  // key: FrameAddr::encode()
  std::vector<Tracker> trackers_;
  u64 frames_written_ = 0;
  u64 bad_address_writes_ = 0;
  u64 epoch_ = 1;
};

}  // namespace rvcap::fabric
