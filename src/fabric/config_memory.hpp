// FPGA configuration memory + reconfigurable-module activation tracking.
//
// Frames written through the ICAP land here. Each registered partition
// is tracked with an in-order progress pointer: a configuration pass
// that writes every frame of the partition, in configuration order,
// starting at its base frame, "activates" the module described by the
// manifest embedded in the first frame. Out-of-order or partial writes
// deactivate the partition (a half-configured region is garbage on real
// silicon; the functional model makes that state explicit instead).
//
// One exception mirrors silicon scrubbing: rewriting a single damaged
// frame of a LOADED partition with its exact pre-upset contents is an
// in-place repair — the module stays active, because the fabric never
// saw anything but a bit flip come and go. The memory keeps the ground
// truth needed to recognize that case: per-frame outstanding flipped
// bits (maintained by inject_upset, cleared by any write) plus the
// SECDED check word of the configured contents (fabric/frame_ecc.hpp,
// the FRAME_ECC primitive's readback view).
//
// The ICAP reports RCRC (start of a configuration pass) and CRC errors;
// a CRC error invalidates every partition touched during the pass, so a
// corrupted bitstream can never activate an RM.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fabric/frame_ecc.hpp"
#include "fabric/geometry.hpp"
#include "sim/component.hpp"

namespace rvcap::fabric {

/// Reconfigurable-module manifest embedded in the first frame of a
/// partition's bitstream (words 0..3).
struct RmManifest {
  static constexpr u32 kMagic = 0x524D4F44;  // "RMOD"

  u32 rm_id = 0;
  u32 frame_count = 0;

  u32 check() const { return kMagic ^ rm_id ^ frame_count; }

  static std::optional<RmManifest> decode(std::span<const u32> frame);
  void encode(std::span<u32> frame) const;
};

class ConfigMemory {
 public:
  explicit ConfigMemory(const DeviceGeometry& dev);

  const DeviceGeometry& device() const { return dev_; }

  /// Register a partition to be tracked; returns a handle.
  usize register_partition(const Partition& p);

  /// Components whose observable state derives from partition state
  /// (the RM slots) register here; they are woken whenever a frame
  /// write, an injected upset, or an ICAP notification may have
  /// changed it.
  void add_observer(sim::Component* c) { observers_.add(c); }

  /// Write one frame (kFrameWords words). Invalid addresses count as
  /// errors and are dropped.
  void write_frame(const FrameAddr& fa, std::span<const u32> words);

  /// Read a frame back; nullptr when never written.
  const std::vector<u32>* frame(const FrameAddr& fa) const;

  /// SECDED check word of the frame's CONFIGURED contents (recorded at
  /// write_frame time — what the FRAME_ECC primitive reports during
  /// readback); nullptr when never written. Injected upsets change the
  /// stored data but not this golden reference, which is exactly the
  /// divergence scrubbing decodes.
  const FrameEcc* frame_ecc(const FrameAddr& fa) const;

  /// Outstanding injected-and-unrepaired bit flips on a frame (ground
  /// truth for tests; the scrub service must rediscover them through
  /// readback).
  u32 outstanding_flips(const FrameAddr& fa) const;

  // ---- ICAP notifications ----
  void notify_rcrc();       // start of a configuration pass
  void notify_crc_error();  // pass failed: invalidate touched partitions

  // ---- partition state ----
  struct PartitionState {
    bool loaded = false;   // full in-order pass completed, manifest valid
    u32 rm_id = 0;         // valid when loaded
    u32 progress = 0;      // frames matched so far in the current pass
    u32 frame_count = 0;
    u64 loads_completed = 0;
    u64 essential_upsets = 0;  // outstanding essential flips while loaded
  };
  PartitionState partition_state(usize handle) const;
  usize num_partitions() const { return trackers_.size(); }
  /// The partition geometry registered under `handle` (recovery uses it
  /// to build a blanking bitstream for the failed region).
  const Partition& partition(usize handle) const {
    return trackers_.at(handle).part;
  }

  u64 frames_written() const { return frames_written_; }
  u64 bad_address_writes() const { return bad_address_writes_; }
  /// Loaded frames restored in place by a scrub rewrite (the repair
  /// exception above) without a reconfiguration pass.
  u64 frame_repairs() const { return frame_repairs_; }

  /// Fault injection: flip one stored configuration bit in place (a
  /// single-event upset). Unlike write_frame this does NOT touch the
  /// activation trackers — an SEU corrupts silently, which is exactly
  /// what readback scrubbing exists to catch. It does, however, record
  /// the flip for repair recognition, update the essential-upset count
  /// of any loaded partition hosting the frame, and notify the
  /// registered upset observer.
  /// Returns false when the frame has never been written.
  bool inject_upset(const FrameAddr& fa, u32 word_index, u32 bit);

  /// One successfully landed upset (inject_upset returned true).
  struct UpsetEvent {
    FrameAddr fa{};
    u32 word = 0;
    u32 bit = 0;
    bool loaded_frame = false;  // frame belongs to a loaded partition
    bool essential = false;     // ... and the bit is in its essential mask
    u64 total = 0;              // upsets_injected() after this event
  };
  using UpsetObserver = std::function<void(const UpsetEvent&)>;

  /// Tests and the scrub service register here to learn that an
  /// injection actually landed (count + last FrameAddr) instead of
  /// silently returning false. One observer; empty function detaches.
  void set_upset_observer(UpsetObserver obs) { upset_observer_ = std::move(obs); }

  u64 upsets_injected() const { return upsets_injected_; }
  const std::optional<UpsetEvent>& last_upset() const { return last_upset_; }

 private:
  struct StoredFrame {
    std::vector<u32> data;
    FrameEcc ecc;             // golden, of the configured contents
    std::vector<u16> flips;   // outstanding upset positions (word*32+bit)
  };

  struct Tracker {
    Partition part;
    std::vector<FrameAddr> addrs;
    u32 progress = 0;
    bool loaded = false;
    u32 rm_id = 0;
    u64 loads_completed = 0;
    std::optional<RmManifest> manifest;
    u64 touched_epoch = 0;  // last pass that wrote into this partition
    u64 essential_upsets = 0;
  };

  static u32 frame_index_in(const Tracker& t, const FrameAddr& fa);

  const DeviceGeometry& dev_;
  sim::WakeList observers_;
  std::map<u32, StoredFrame> frames_;  // key: FrameAddr::encode()
  std::vector<Tracker> trackers_;
  UpsetObserver upset_observer_;
  std::optional<UpsetEvent> last_upset_;
  u64 frames_written_ = 0;
  u64 bad_address_writes_ = 0;
  u64 frame_repairs_ = 0;
  u64 upsets_injected_ = 0;
  u64 epoch_ = 1;
};

}  // namespace rvcap::fabric
