#include "resources/database.hpp"

#include <stdexcept>

namespace rvcap::resources {

void ResourceDb::add(Entry e) { entries_.push_back(std::move(e)); }

const Entry* ResourceDb::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

ResourceVec ResourceDb::total(std::span<const std::string_view> names) const {
  ResourceVec sum;
  for (std::string_view n : names) {
    const Entry* e = find(n);
    if (e == nullptr) {
      throw std::out_of_range("ResourceDb: unknown entry " + std::string(n));
    }
    sum += e->res;
  }
  return sum;
}

std::vector<const Entry*> ResourceDb::under(std::string_view prefix) const {
  std::vector<const Entry*> out;
  for (const Entry& e : entries_) {
    if (e.name.size() > prefix.size() &&
        std::string_view(e.name).substr(0, prefix.size()) == prefix) {
      out.push_back(&e);
    }
  }
  return out;
}

UtilizationPct utilization_pct(const ResourceVec& used,
                               const ResourceVec& available) {
  auto pct = [](u32 u, u32 a) {
    return a == 0 ? 0.0 : 100.0 * static_cast<double>(u) / a;
  };
  return UtilizationPct{pct(used.luts, available.luts),
                        pct(used.ffs, available.ffs),
                        pct(used.brams, available.brams),
                        pct(used.dsps, available.dsps)};
}

ResourceDb ResourceDb::paper_database() {
  ResourceDb db;
  const auto P = Source::kPaperReported;
  const auto L = Source::kLiterature;

  // ---- Table I: the two controller deployments on the Ariane SoC ----
  db.add({"rvcap.rp_ctrl_axi", {420, 909, 0, 0}, P,
          "RP controller + AXI modules (width/protocol converters, "
          "stream switch, AXIS2ICAP)"});
  db.add({"rvcap.dma", {1897, 3044, 6, 0}, P,
          "soft DMA controller incl. internal buffers"});
  db.add({"hwicap_deploy.axi_modules", {909, 964, 0, 0}, P,
          "HWICAP-side width/protocol converters + PR decoupler"});
  db.add({"hwicap_deploy.axi_hwicap", {468, 1236, 2, 0}, P,
          "Xilinx AXI_HWICAP core, write FIFO resized to 1024"});

  // ---- Table II: state-of-the-art DPR controllers ----
  db.add({"soa.vipin", {586, 672, 8, 0}, L, "Vipin et al. [12], MicroBlaze"});
  db.add({"soa.zycap", {620, 806, 0, 0}, L, "ZyCAP [13], ARM"});
  db.add({"soa.anderson", {588, 278, 1, 0}, L, "Di Carlo et al. [14], LEON3"});
  db.add({"soa.ac_icap", {1286, 1193, 22, 0}, L, "AC_ICAP [16], MicroBlaze"});
  db.add({"soa.rt_icap", {289, 105, 0, 0}, L, "RT-ICAP [15], Patmos"});
  db.add({"soa.pcap", {0, 0, 0, 0}, L, "PCAP [24], hard block, ARM"});
  db.add({"soa.xilinx_prc", {1171, 1203, 0, 0}, L, "Xilinx PRC [25], ARM"});
  db.add({"soa.axi_hwicap_arm", {538, 688, 0, 0}, L,
          "Xilinx AXI_HWICAP [26], ARM"});
  db.add({"soa.axi_hwicap_rv64", {1377, 2200, 2, 0}, P,
          "AXI_HWICAP with RV64GC (this paper's baseline port)"});
  db.add({"soa.rvcap", {2317, 3953, 6, 0}, P, "RV-CAP (this paper)"});

  // ---- Table III: full SoC with one RP ----
  db.add({"soc.full", {74393, 64059, 92, 47}, P, "Full SoC"});
  db.add({"soc.ariane_core", {39940, 22500, 36, 27}, P, "Ariane core"});
  db.add({"soc.peripherals_bootmem", {28832, 31404, 20, 0}, P,
          "Peripherals & boot memory"});
  db.add({"soc.rvcap_controller", {2421, 3755, 6, 0}, P,
          "RV-CAP controller (in-SoC synthesis context)"});
  db.add({"soc.rp", {3200, 6400, 30, 20}, P, "Reconfigurable partition"});
  db.add({"soc.rm.gaussian", {901, 773, 4, 0}, P, "Gaussian RM"});
  db.add({"soc.rm.median", {2325, 998, 2, 0}, P, "Median RM"});
  db.add({"soc.rm.sobel", {1830, 3224, 2, 16}, P, "Sobel RM"});

  return db;
}

}  // namespace rvcap::resources
