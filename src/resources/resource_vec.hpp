// FPGA resource quantities (LUT / FF / BRAM36 / DSP48).
//
// Tables I, II and III of the paper are resource accounting over these
// four columns; the fabric model also uses them to size reconfigurable
// partitions.
#pragma once

#include "common/types.hpp"

namespace rvcap::resources {

struct ResourceVec {
  u32 luts = 0;
  u32 ffs = 0;
  u32 brams = 0;  // RAMB36 equivalents
  u32 dsps = 0;

  constexpr ResourceVec operator+(const ResourceVec& o) const {
    return {luts + o.luts, ffs + o.ffs, brams + o.brams, dsps + o.dsps};
  }
  constexpr ResourceVec& operator+=(const ResourceVec& o) {
    luts += o.luts;
    ffs += o.ffs;
    brams += o.brams;
    dsps += o.dsps;
    return *this;
  }
  constexpr ResourceVec operator*(u32 k) const {
    return {luts * k, ffs * k, brams * k, dsps * k};
  }
  constexpr bool operator==(const ResourceVec&) const = default;

  /// Componentwise "fits inside" (used for RP sizing).
  constexpr bool covers(const ResourceVec& need) const {
    return luts >= need.luts && ffs >= need.ffs && brams >= need.brams &&
           dsps >= need.dsps;
  }
};

}  // namespace rvcap::resources
